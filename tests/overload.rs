//! Integration tests of the overload-control subsystem: priority classes
//! and eviction, CoDel brownout escalation, concurrent-admission capacity
//! accounting, shutdown under standing overload, per-shard circuit
//! breakers and hedged execution.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use npcgra::nn::reference;
use npcgra::serve::overload::{BrownoutLevel, Priority};
use npcgra::serve::{ChaosConfig, ModelId, OverloadConfig, ServeConfig, ServeError, Server, WorkerExit};
use npcgra::{CgraSpec, ConvLayer, Tensor};

fn spec() -> CgraSpec {
    CgraSpec::np_cgra(4, 4)
}

fn pointwise_model(server: &Server) -> ModelId {
    let layer = ConvLayer::pointwise("pw", 4, 4, 4, 4);
    server.register("m", layer.clone(), layer.random_weights(1)).unwrap()
}

/// Regression for the queued-depth accounting race: admission's capacity
/// check and its queue push happen atomically under the queue lock, so a
/// storm of concurrent submitters can never over-admit past the bound or
/// drive the depth gauge beyond it.
#[test]
fn concurrent_admission_never_exceeds_capacity() {
    const CAPACITY: usize = 8;
    const THREADS: usize = 8;
    const PER_THREAD: usize = 4;
    // Zero workers: nothing drains, so exactly `CAPACITY` submissions can
    // ever succeed and the rest must shed as QueueFull.
    let server = Server::start(ServeConfig::for_spec(&spec()).with_workers(0).with_queue_capacity(CAPACITY));
    let id = pointwise_model(&server);
    let full = AtomicUsize::new(0);
    let tickets: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let (server, full) = (&server, &full);
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    for i in 0..PER_THREAD {
                        match server.submit(id, Tensor::random(4, 4, 4, (t * PER_THREAD + i) as u64)) {
                            Ok(ticket) => mine.push(ticket),
                            Err(ServeError::QueueFull { capacity }) => {
                                assert_eq!(capacity, CAPACITY);
                                full.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(other) => panic!("unexpected admission error: {other}"),
                        }
                    }
                    mine
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(tickets.len(), CAPACITY);
    assert_eq!(full.load(Ordering::Relaxed), THREADS * PER_THREAD - CAPACITY);
    let stats = server.shutdown();
    assert_eq!(stats.submitted, CAPACITY as u64);
    assert_eq!(stats.max_queue_depth, CAPACITY as u64, "depth gauge never exceeded the bound");
    assert_eq!(stats.rejected_queue_full, (THREADS * PER_THREAD - CAPACITY) as u64);
    assert_eq!(
        stats.rejected_shutdown, CAPACITY as u64,
        "every queued request was resolved at shutdown"
    );
    for t in tickets {
        assert_eq!(t.wait().unwrap_err(), ServeError::ShuttingDown);
    }
}

/// A full queue with lower-priority requests queued admits a
/// higher-priority arrival by evicting the oldest request of the lowest
/// backlogged class; same-or-higher-class arrivals still bounce QueueFull.
#[test]
fn priority_eviction_makes_room_for_higher_classes() {
    let server = Server::start(ServeConfig::for_spec(&spec()).with_workers(0).with_queue_capacity(2));
    let id = pointwise_model(&server);
    let input = || Tensor::random(4, 4, 4, 7);
    let be1 = server.submit_with_priority(id, input(), None, Priority::BestEffort).unwrap();
    let be2 = server.submit_with_priority(id, input(), None, Priority::BestEffort).unwrap();
    // Same class, full queue: no one below BestEffort to evict.
    let err = server
        .submit_with_priority(id, input(), None, Priority::BestEffort)
        .unwrap_err();
    assert!(matches!(err, ServeError::QueueFull { capacity: 2 }));
    // Interactive evicts the oldest BestEffort, then Batch the second.
    let i1 = server.submit_with_priority(id, input(), None, Priority::Interactive).unwrap();
    let b1 = server.submit_with_priority(id, input(), None, Priority::Batch).unwrap();
    for (victim, class) in [(be1, Priority::BestEffort), (be2, Priority::BestEffort)] {
        match victim.wait().unwrap_err() {
            ServeError::Overloaded { class: got, .. } => assert_eq!(got, class),
            other => panic!("evicted ticket resolved to {other}"),
        }
    }
    // Interactive also evicts Batch; a further Interactive finds nothing
    // below itself to evict.
    let i2 = server.submit_with_priority(id, input(), None, Priority::Interactive).unwrap();
    assert!(matches!(
        b1.wait().unwrap_err(),
        ServeError::Overloaded {
            class: Priority::Batch,
            ..
        }
    ));
    let err = server
        .submit_with_priority(id, input(), None, Priority::Interactive)
        .unwrap_err();
    assert!(matches!(err, ServeError::QueueFull { capacity: 2 }));
    drop((i1, i2));
    let stats = server.shutdown();
    assert_eq!(stats.priority_evictions, 3);
    assert_eq!(stats.overload_sheds[Priority::BestEffort.index()], 2);
    assert_eq!(stats.overload_sheds[Priority::Batch.index()], 1);
}

/// Standing queue delay (nothing drains, heads age past the CoDel target
/// window after window) climbs the brownout ladder until best-effort
/// traffic is shed at admission, and the escalation is visible in stats.
#[test]
fn brownout_ladder_sheds_best_effort_under_standing_delay() {
    let server = Server::start(
        ServeConfig::for_spec(&spec())
            .with_workers(0)
            .with_queue_capacity(256)
            .with_overload(OverloadConfig {
                delay_target: Some(Duration::from_micros(500)),
                delay_window: Duration::from_millis(2),
                ..OverloadConfig::default()
            }),
    );
    let id = pointwise_model(&server);
    let mut tickets = Vec::new();
    let mut shed = false;
    for i in 0..100 {
        // Interactive keeps arriving (and keeps the queue head aging);
        // at Drain even it is shed, which is fine — the ladder moved.
        if let Ok(t) = server.submit_with_priority(id, Tensor::random(4, 4, 4, i), None, Priority::Interactive) {
            tickets.push(t);
        }
        std::thread::sleep(Duration::from_millis(3));
        match server.submit_with_priority(id, Tensor::random(4, 4, 4, 1000 + i), None, Priority::BestEffort) {
            Err(ServeError::Overloaded { level, class }) => {
                assert!(level >= BrownoutLevel::ShedBestEffort);
                assert_eq!(class, Priority::BestEffort);
                shed = true;
                break;
            }
            Ok(t) => tickets.push(t),
            Err(other) => panic!("unexpected admission error: {other}"),
        }
    }
    assert!(shed, "standing delay never tripped the brownout ladder");
    let stats = server.stats();
    assert!(stats.brownout_escalations >= 1);
    assert!(stats.brownout_level >= BrownoutLevel::ShedBestEffort);
    assert!(stats.overload_sheds[Priority::BestEffort.index()] >= 1);
    drop(tickets);
    let _ = server.shutdown();
}

/// Shutdown while all three classes are queued past capacity: every
/// admitted ticket resolves (served or typed-shed, never a hang, never a
/// lost reply), and no worker panics on the way out.
#[test]
fn shutdown_under_overload_resolves_every_ticket() {
    let server = Server::start(
        ServeConfig::for_spec(&spec())
            .with_workers(2)
            .with_queue_capacity(12)
            .with_max_batch(4)
            .with_max_linger(Duration::from_millis(20))
            .with_overload(OverloadConfig {
                delay_target: Some(Duration::from_millis(1)),
                delay_window: Duration::from_millis(2),
                ..OverloadConfig::default()
            }),
    );
    let id = pointwise_model(&server);
    let mut tickets = Vec::new();
    let mut overflow = 0usize;
    for i in 0..36u64 {
        let class = Priority::ALL[(i % 3) as usize];
        match server.submit_with_priority(id, Tensor::random(4, 4, 4, i), None, class) {
            Ok(t) => tickets.push(t),
            // Past capacity / under brownout the shed must be typed.
            Err(ServeError::QueueFull { .. } | ServeError::Overloaded { .. }) => overflow += 1,
            Err(other) => panic!("unexpected admission error: {other}"),
        }
    }
    assert!(overflow > 0, "the load pattern must actually exceed capacity");
    let admitted = tickets.len();
    let stats = server.shutdown();
    let mut served = 0u64;
    let mut typed_shed = 0u64;
    for t in tickets {
        match t.wait_timeout(Duration::from_secs(30)) {
            Ok(_) => served += 1,
            Err(ServeError::ShuttingDown | ServeError::Overloaded { .. } | ServeError::DeadlineExceeded) => {
                typed_shed += 1;
            }
            Err(other) => panic!("ticket leaked or hung: {other}"),
        }
    }
    assert_eq!(served + typed_shed, admitted as u64, "every admitted ticket resolved");
    assert_eq!(stats.completed, served);
    assert_eq!(stats.late_replies, 0, "no replies landed after their tickets died");
    assert!(stats.worker_exits.iter().all(|e| *e == WorkerExit::Clean));
}

/// A shard whose first batch panics trips its circuit breaker open; after
/// the cooldown a probe batch closes it again, and every request still
/// completes (the worker is the only shard, so the probe is deterministic).
#[test]
fn circuit_breaker_opens_on_failure_and_probe_recloses() {
    let server = Server::start(
        ServeConfig::for_spec(&spec())
            .with_workers(1)
            .with_max_batch(1)
            .with_max_linger(Duration::from_micros(100))
            .with_chaos(ChaosConfig {
                panic_on_first_batch: Some(0),
                ..ChaosConfig::default()
            })
            .with_overload(OverloadConfig {
                breaker_window: 4,
                breaker_threshold: 0.5,
                breaker_min_samples: 1,
                breaker_cooldown: Duration::from_millis(1),
                ..OverloadConfig::default()
            }),
    );
    let id = pointwise_model(&server);
    // First request: the injected panic fails the batch (tripping the
    // breaker), the supervisor restarts the shard, the retry completes it.
    let r1 = server.submit(id, Tensor::random(4, 4, 4, 1)).unwrap().wait().unwrap();
    assert_eq!(r1.worker, 0);
    // Subsequent requests ride the probe (and then the re-closed breaker).
    for i in 2..5u64 {
        server.submit(id, Tensor::random(4, 4, 4, i)).unwrap().wait().unwrap();
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.panics_caught, 1);
    assert_eq!(stats.breaker_opens, 1, "the failed batch tripped the breaker");
    assert!(stats.breaker_probes >= 1, "recovery went through a probe");
    assert_eq!(stats.breaker_closes, 1, "the successful probe re-closed it");
}

/// With hedging enabled, racing replicas never change results: every
/// response stays bit-exact with the golden reference, each request is
/// counted exactly once, and the hedge ledger stays consistent.
#[test]
fn hedged_execution_stays_bit_exact_and_counts_once() {
    let server = Server::start(
        ServeConfig::for_spec(&spec())
            .with_workers(2)
            .with_max_batch(2)
            .with_max_linger(Duration::from_micros(200))
            .with_overload(OverloadConfig {
                hedge_quantile: 0.5,
                hedge_floor: Duration::ZERO,
                hedge_min_samples: 3,
                ..OverloadConfig::default()
            }),
    );
    let layer = ConvLayer::depthwise("dw", 4, 12, 12, 3, 1, 1);
    let weights = layer.random_weights(9);
    let id = server.register("m", layer.clone(), weights.clone()).unwrap();
    let total = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let (server, layer, weights, total) = (&server, &layer, &weights, &total);
            scope.spawn(move || {
                for i in 0..10u64 {
                    let ifm = Tensor::random(4, 12, 12, t * 100 + i);
                    let golden = reference::run_layer(layer, &ifm, weights).unwrap();
                    let resp = server.submit(id, ifm).unwrap().wait().unwrap();
                    assert_eq!(resp.output, golden, "hedged serving broke bit-exactness");
                    total.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let stats = server.shutdown();
    assert_eq!(total.load(Ordering::Relaxed), 40);
    assert_eq!(stats.completed, 40, "each request counted exactly once, hedges or not");
    assert!(stats.hedge_wins + stats.hedge_losses <= stats.hedges_dispatched);
    assert_eq!(stats.late_replies, 0);
}
