//! The §5.4 channel-batching extension: functional exactness and the
//! DMA-amortization win on small-spatial-dimension DWC layers.

use npcgra::sim::{run_batched_dwc, run_layer, time_layer, MappingKind};
use npcgra::{reference, CgraSpec, ConvLayer, Tensor};

#[test]
fn batched_dwc_matches_golden() {
    let spec = CgraSpec::np_cgra(4, 4);
    let layer = ConvLayer::depthwise("dw", 12, 9, 9, 3, 1, 1);
    let ifm = Tensor::random(12, 9, 9, 1);
    let w = layer.random_weights(2);
    let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
    let (ofm, _) = run_batched_dwc(&layer, &ifm, &w, &spec).unwrap();
    assert_eq!(ofm, golden);
}

#[test]
fn batched_dwc_matches_unbatched() {
    let spec = CgraSpec::table4();
    let layer = ConvLayer::depthwise("dw", 24, 14, 14, 3, 1, 1);
    let ifm = Tensor::random(24, 14, 14, 3);
    let w = layer.random_weights(4);
    let (a, _) = run_layer(&layer, &ifm, &w, &spec).unwrap();
    let (b, _) = run_batched_dwc(&layer, &ifm, &w, &spec).unwrap();
    assert_eq!(a, b);
}

#[test]
fn batched_dwc_with_relu_matches_golden() {
    let spec = CgraSpec::np_cgra(4, 4);
    let layer = ConvLayer::depthwise("dw", 8, 10, 10, 3, 1, 1).with_activation(npcgra::nn::Activation::Relu);
    let ifm = Tensor::random(8, 10, 10, 5);
    let w = layer.random_weights(6);
    let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
    let (ofm, _) = run_batched_dwc(&layer, &ifm, &w, &spec).unwrap();
    assert_eq!(ofm, golden);
}

#[test]
fn batching_turns_dma_bound_layers_compute_bound() {
    // MobileNet V2's last-stage DWC (960 channels at 7x7): per-channel
    // blocks are DMA-latency-bound; batching amortizes the 200-cycle DMA
    // latency across the channel group.
    let spec = CgraSpec::table4();
    let layer = ConvLayer::depthwise("s7.dw", 960, 7, 7, 3, 1, 1);
    let plain = time_layer(&layer, &spec, MappingKind::Auto).unwrap();
    let batched = time_layer(&layer, &spec, MappingKind::BatchedDwcS1).unwrap();
    let speedup = plain.seconds() / batched.seconds();
    assert!(speedup > 2.0, "batching speedup {speedup:.2}x on 7x7x960");
    assert!(plain.dma_bound(), "the per-channel flow is DMA-bound here");
    assert!(!batched.dma_bound(), "batching should hide the DMA latency");
}

#[test]
fn batching_never_hurts_large_spatial_layers() {
    // On 112x112 the per-channel flow is already compute-bound; batching
    // (which degenerates to ~1 channel/block under the memory budget) may
    // not help but must not be more than marginally worse.
    let spec = CgraSpec::table4();
    let layer = ConvLayer::depthwise("dw1", 32, 112, 112, 3, 1, 1);
    let plain = time_layer(&layer, &spec, MappingKind::Auto).unwrap();
    let batched = time_layer(&layer, &spec, MappingKind::BatchedDwcS1).unwrap();
    assert!(
        batched.seconds() <= plain.seconds() * 1.05,
        "batched {} vs plain {}",
        batched.ms(),
        plain.ms()
    );
}

#[test]
fn timing_equals_functional_for_batched() {
    let spec = CgraSpec::np_cgra(4, 4);
    let layer = ConvLayer::depthwise("dw", 16, 8, 8, 3, 1, 1);
    let ifm = Tensor::random(16, 8, 8, 7);
    let w = layer.random_weights(8);
    let (_, functional) = run_batched_dwc(&layer, &ifm, &w, &spec).unwrap();
    let timed = time_layer(&layer, &spec, MappingKind::BatchedDwcS1).unwrap();
    assert_eq!(functional.cycles, timed.cycles);
    assert_eq!(functional.compute_cycles, timed.compute_cycles);
}
