//! Fault injection: deliberately break pieces of the mapping stack and
//! verify the simulator *detects* the break (as a hardware-rule error or a
//! functional mismatch) instead of silently producing plausible garbage.
//! This is what gives the green test suite its teeth.

use npcgra::kernels::dwc_general::padded_ifm;
use npcgra::kernels::dwc_s1::DwcS1LayerMap;
use npcgra::kernels::pwc::PwcLayerMap;
use npcgra::{reference, CgraSpec, ConvLayer, Machine, Tensor};

#[test]
fn corrupted_h_bank_image_changes_the_output() {
    // Flip one word in one bank image: some extracted output must differ
    // from golden (the layouts carry no redundancy).
    let spec = CgraSpec::np_cgra(4, 4);
    let layer = ConvLayer::pointwise("pw", 8, 8, 4, 4);
    let map = PwcLayerMap::new(&layer, &spec).unwrap();
    let ifm = Tensor::random(8, 4, 4, 1);
    let w = layer.random_weights(2);
    let golden = reference::run_layer(&layer, &ifm, &w).unwrap();

    let mut prog = map.materialize(0, &ifm, &w);
    prog.h_banks[1][3] = prog.h_banks[1][3].wrapping_add(1);
    let res = Machine::new(&spec).run_block(&prog).unwrap();
    let mismatches = res.ofm.iter().filter(|&&(c, y, x, v)| v != golden.get(c, y, x)).count();
    assert!(mismatches > 0, "a corrupted IFM word must surface in the output");
}

#[test]
fn corrupted_grf_kernel_changes_dwc_output() {
    let spec = CgraSpec::np_cgra(4, 4);
    let layer = ConvLayer::depthwise("dw", 1, 8, 8, 3, 1, 1);
    let map = DwcS1LayerMap::new(&layer, &spec).unwrap();
    let ifm = Tensor::random(1, 8, 8, 3);
    let padded = padded_ifm(&layer, &ifm);
    let w = layer.random_weights(4);
    let golden = reference::run_layer(&layer, &ifm, &w).unwrap();

    let mut prog = map.materialize(0, &padded, &w);
    prog.grf[4] = prog.grf[4].wrapping_add(7); // the centre tap
    let res = Machine::new(&spec).run_block(&prog).unwrap();
    let mismatches = res.ofm.iter().filter(|&&(c, y, x, v)| v != golden.get(c, y, x)).count();
    assert!(mismatches > 0);
}

#[test]
fn oversized_bank_image_is_rejected_not_truncated() {
    let mut spec = CgraSpec::np_cgra(4, 4);
    spec.hmem_bytes = 4 * 32 * 2; // 32 words per bank
                                  // Plan against a machine with plenty of memory, run on the tiny one.
    let big = CgraSpec::np_cgra(4, 4);
    let layer = ConvLayer::pointwise("pw", 48, 8, 4, 4);
    let map = PwcLayerMap::new(&layer, &big).unwrap();
    let ifm = Tensor::random(48, 4, 4, 1);
    let w = layer.random_weights(2);
    let prog = map.materialize(0, &ifm, &w);
    let err = Machine::new(&spec).run_block(&prog).unwrap_err();
    assert!(err.to_string().contains("exceeds capacity"), "{err}");
}

#[test]
fn truncated_grf_is_detected_at_the_broadcast_cycle() {
    let spec = CgraSpec::np_cgra(4, 4);
    let layer = ConvLayer::depthwise("dw", 1, 8, 8, 3, 1, 1);
    let map = DwcS1LayerMap::new(&layer, &spec).unwrap();
    let padded = padded_ifm(&layer, &Tensor::random(1, 8, 8, 5));
    let w = layer.random_weights(6);
    let mut prog = map.materialize(0, &padded, &w);
    prog.grf.truncate(4); // kernel needs 9 entries
    let err = Machine::new(&spec).run_block(&prog).unwrap_err();
    assert!(err.to_string().contains("GRF index"), "{err}");
}

#[test]
fn shifted_store_base_lands_outside_and_errors() {
    // Point the OFM region past the bank: the store must fail loudly.
    let spec = CgraSpec::np_cgra(4, 4);
    let layer = ConvLayer::pointwise("pw", 8, 8, 4, 4);
    let map = PwcLayerMap::new(&layer, &spec).unwrap();
    let ifm = Tensor::random(8, 4, 4, 7);
    let w = layer.random_weights(8);
    let mut prog = map.materialize(0, &ifm, &w);
    let words_per_bank = spec.hmem_bytes / spec.word_bytes / spec.rows;
    prog.mapping = Box::new(npcgra::kernels::PwcMapping::new(8, &spec, words_per_bank));
    let err = Machine::new(&spec).run_block(&prog).unwrap_err();
    assert!(
        err.to_string().contains("out of range") || err.to_string().contains("offset"),
        "{err}"
    );
}
