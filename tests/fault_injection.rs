//! Fault injection: deliberately break pieces of the mapping stack and
//! verify the simulator *detects* the break (as a hardware-rule error or a
//! functional mismatch) instead of silently producing plausible garbage.
//! This is what gives the green test suite its teeth.
//!
//! Two layers of injection live here: hand-corrupted programs (the seed
//! tests below), and the machine's own [`FaultPlan`] — scheduled transient
//! bit flips — driven both directly and through the serving stack's chaos
//! knobs (worker panics, poison requests, degraded mode).

use std::time::Duration;

use npcgra::kernels::dwc_general::padded_ifm;
use npcgra::kernels::dwc_s1::DwcS1LayerMap;
use npcgra::kernels::pwc::PwcLayerMap;
use npcgra::nn::Word;
use npcgra::serve::{ChaosConfig, ServeConfig, ServeError, Server, WorkerExit};
use npcgra::sim::{Fault, FaultPlan, FaultSite, IntegrityMode};
use npcgra::{reference, CgraSpec, CompiledLayer, ConvLayer, Machine, MappingKind, Tensor};

#[test]
fn corrupted_h_bank_image_changes_the_output() {
    // Flip one word in one bank image: some extracted output must differ
    // from golden (the layouts carry no redundancy).
    let spec = CgraSpec::np_cgra(4, 4);
    let layer = ConvLayer::pointwise("pw", 8, 8, 4, 4);
    let map = PwcLayerMap::new(&layer, &spec).unwrap();
    let ifm = Tensor::random(8, 4, 4, 1);
    let w = layer.random_weights(2);
    let golden = reference::run_layer(&layer, &ifm, &w).unwrap();

    let mut prog = map.materialize(0, &ifm, &w);
    prog.h_banks[1][3] = prog.h_banks[1][3].wrapping_add(1);
    let res = Machine::new(&spec).run_block(&prog).unwrap();
    let mismatches = res.ofm.iter().filter(|&&(c, y, x, v)| v != golden.get(c, y, x)).count();
    assert!(mismatches > 0, "a corrupted IFM word must surface in the output");
}

#[test]
fn corrupted_grf_kernel_changes_dwc_output() {
    let spec = CgraSpec::np_cgra(4, 4);
    let layer = ConvLayer::depthwise("dw", 1, 8, 8, 3, 1, 1);
    let map = DwcS1LayerMap::new(&layer, &spec).unwrap();
    let ifm = Tensor::random(1, 8, 8, 3);
    let padded = padded_ifm(&layer, &ifm);
    let w = layer.random_weights(4);
    let golden = reference::run_layer(&layer, &ifm, &w).unwrap();

    let mut prog = map.materialize(0, &padded, &w);
    prog.grf[4] = prog.grf[4].wrapping_add(7); // the centre tap
    let res = Machine::new(&spec).run_block(&prog).unwrap();
    let mismatches = res.ofm.iter().filter(|&&(c, y, x, v)| v != golden.get(c, y, x)).count();
    assert!(mismatches > 0);
}

#[test]
fn oversized_bank_image_is_rejected_not_truncated() {
    let mut spec = CgraSpec::np_cgra(4, 4);
    spec.hmem_bytes = 4 * 32 * 2; // 32 words per bank
                                  // Plan against a machine with plenty of memory, run on the tiny one.
    let big = CgraSpec::np_cgra(4, 4);
    let layer = ConvLayer::pointwise("pw", 48, 8, 4, 4);
    let map = PwcLayerMap::new(&layer, &big).unwrap();
    let ifm = Tensor::random(48, 4, 4, 1);
    let w = layer.random_weights(2);
    let prog = map.materialize(0, &ifm, &w);
    let err = Machine::new(&spec).run_block(&prog).unwrap_err();
    assert!(err.to_string().contains("exceeds capacity"), "{err}");
}

#[test]
fn truncated_grf_is_detected_at_the_broadcast_cycle() {
    let spec = CgraSpec::np_cgra(4, 4);
    let layer = ConvLayer::depthwise("dw", 1, 8, 8, 3, 1, 1);
    let map = DwcS1LayerMap::new(&layer, &spec).unwrap();
    let padded = padded_ifm(&layer, &Tensor::random(1, 8, 8, 5));
    let w = layer.random_weights(6);
    let mut prog = map.materialize(0, &padded, &w);
    prog.grf.truncate(4); // kernel needs 9 entries
    let err = Machine::new(&spec).run_block(&prog).unwrap_err();
    assert!(err.to_string().contains("GRF index"), "{err}");
}

#[test]
fn shifted_store_base_lands_outside_and_errors() {
    // Point the OFM region past the bank: the store must fail loudly.
    let spec = CgraSpec::np_cgra(4, 4);
    let layer = ConvLayer::pointwise("pw", 8, 8, 4, 4);
    let map = PwcLayerMap::new(&layer, &spec).unwrap();
    let ifm = Tensor::random(8, 4, 4, 7);
    let w = layer.random_weights(8);
    let mut prog = map.materialize(0, &ifm, &w);
    let words_per_bank = spec.hmem_bytes / spec.word_bytes / spec.rows;
    prog.mapping = Box::new(npcgra::kernels::PwcMapping::new(8, &spec, words_per_bank));
    let err = Machine::new(&spec).run_block(&prog).unwrap_err();
    assert!(
        err.to_string().contains("out of range") || err.to_string().contains("offset"),
        "{err}"
    );
}

// ---- machine-level FaultPlan injection -------------------------------------

#[test]
fn explicit_h_bank_flip_silently_corrupts_the_output() {
    // The silent-corruption path: a single injected bit flip in an H-MEM
    // bank produces a *successful* run with a wrong output word.
    let spec = CgraSpec::np_cgra(4, 4);
    let layer = ConvLayer::pointwise("pw", 8, 8, 4, 4);
    let map = PwcLayerMap::new(&layer, &spec).unwrap();
    let ifm = Tensor::random(8, 4, 4, 1);
    let w = layer.random_weights(2);
    let golden = reference::run_layer(&layer, &ifm, &w).unwrap();

    let prog = map.materialize(0, &ifm, &w);
    let mut machine = Machine::new(&spec);
    machine.set_fault_plan(Some(FaultPlan::explicit(vec![Fault {
        tile: 0,
        cycle: 0,
        site: FaultSite::HBankBit {
            bank: 1,
            offset: 3,
            bit: 0,
        },
    }])));
    let res = machine.run_block(&prog).unwrap();
    assert_eq!(machine.faults_injected(), 1);
    let mismatches = res.ofm.iter().filter(|&&(c, y, x, v)| v != golden.get(c, y, x)).count();
    assert!(mismatches > 0, "a flipped IFM bit must surface in the output");
}

#[test]
fn explicit_grf_trim_trips_the_detected_error_path() {
    // The detected path: a GRF validity fault trips the existing GrfIndex
    // hardware rule at the next broadcast instead of corrupting silently.
    let spec = CgraSpec::np_cgra(4, 4);
    let layer = ConvLayer::depthwise("dw", 1, 8, 8, 3, 1, 1);
    let map = DwcS1LayerMap::new(&layer, &spec).unwrap();
    let padded = padded_ifm(&layer, &Tensor::random(1, 8, 8, 5));
    let w = layer.random_weights(6);
    let prog = map.materialize(0, &padded, &w);
    let mut machine = Machine::new(&spec);
    machine.set_fault_plan(Some(FaultPlan::explicit(vec![Fault {
        tile: 0,
        cycle: 0,
        site: FaultSite::GrfTrim { keep: 0 },
    }])));
    let err = machine.run_block(&prog).unwrap_err();
    assert!(err.to_string().contains("GRF index"), "{err}");
}

#[test]
fn injected_fault_plan_is_deterministic_per_seed() {
    let spec = CgraSpec::np_cgra(4, 4);
    let layer = ConvLayer::pointwise("pw", 8, 8, 8, 8);
    let compiled = CompiledLayer::compile(&layer, &spec, MappingKind::Auto).unwrap();
    let ifm = Tensor::random(8, 8, 8, 1);
    let w = layer.random_weights(2);
    let run = |seed: u64, rate: f64| {
        let mut machine = Machine::new(&spec);
        machine.set_fault_plan(Some(FaultPlan::bernoulli(seed, rate)));
        let result = compiled
            .run_on(&mut machine, &ifm, &w)
            .map(|(ofm, _)| ofm)
            .map_err(|e| e.to_string());
        (result, machine.faults_injected())
    };
    let (a, injected_a) = run(0xDEAD, 0.02);
    let (b, injected_b) = run(0xDEAD, 0.02);
    assert_eq!(a, b, "same seed on fresh machines is bit-identical");
    assert_eq!(injected_a, injected_b);
    assert!(injected_a > 0, "rate 0.02 over a whole layer must fire");
    let (clean, injected_zero) = run(0xDEAD, 0.0);
    assert_eq!(injected_zero, 0);
    let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
    assert_eq!(clean.unwrap(), golden, "rate zero leaves the run golden");
}

// ---- ABFT output-integrity checks ------------------------------------------

/// The `explicit_h_bank_flip_silently_corrupts_the_output` setup, but with
/// a machine whose integrity mode is configurable.
fn pwc_with_flip(mode: IntegrityMode) -> (CompiledLayer, Machine, Tensor, Tensor, Tensor) {
    let spec = CgraSpec::np_cgra(4, 4);
    let layer = ConvLayer::pointwise("pw", 8, 8, 4, 4);
    let compiled = CompiledLayer::compile(&layer, &spec, MappingKind::Auto).unwrap();
    let ifm = Tensor::random(8, 4, 4, 1);
    let w = layer.random_weights(2);
    let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
    let mut machine = Machine::new(&spec);
    machine.set_fault_plan(Some(FaultPlan::explicit(vec![Fault {
        tile: 0,
        cycle: 0,
        site: FaultSite::HBankBit {
            bank: 1,
            offset: 3,
            bit: 0,
        },
    }])));
    machine.set_integrity_mode(mode);
    (compiled, machine, ifm, w, golden)
}

#[test]
fn pwc_checksum_detects_the_injected_silent_flip() {
    // The exact flip that `explicit_h_bank_flip_silently_corrupts_the_output`
    // proves is silent becomes a typed error once verification is on.
    let (compiled, mut machine, ifm, w, _) = pwc_with_flip(IntegrityMode::Verify);
    let err = compiled.run_on(&mut machine, &ifm, &w).unwrap_err();
    assert!(err.to_string().contains("integrity"), "{err}");
    assert_eq!(machine.faults_injected(), 1);
}

#[test]
fn verify_and_recompute_heals_the_flip_to_golden() {
    let (compiled, mut machine, ifm, w, golden) = pwc_with_flip(IntegrityMode::VerifyAndRecompute);
    let (ofm, report) = compiled.run_on(&mut machine, &ifm, &w).unwrap();
    assert_eq!(ofm, golden, "recompute mode must hand back the golden output");
    assert!(report.integrity_failed >= 1, "the flip must trip a checksum");
    assert!(report.integrity_recovered >= 1, "the tripped block must be healed");
    assert!(report.integrity_checked >= report.integrity_failed);
}

#[test]
fn dwc_channel_sum_detects_a_grf_kernel_bit_flip() {
    // A flipped kernel tap corrupts every output of its channel by the same
    // systematic bias — exactly what the per-channel sum identity catches.
    let spec = CgraSpec::np_cgra(4, 4);
    let layer = ConvLayer::depthwise("dw", 2, 8, 8, 3, 1, 1);
    let compiled = CompiledLayer::compile(&layer, &spec, MappingKind::Auto).unwrap();
    let ifm = Tensor::random(2, 8, 8, 3);
    let w = layer.random_weights(4);
    let mut machine = Machine::new(&spec);
    machine.set_fault_plan(Some(FaultPlan::explicit(vec![Fault {
        tile: 0,
        cycle: 0,
        site: FaultSite::GrfBit { index: 4, bit: 3 },
    }])));
    machine.set_integrity_mode(IntegrityMode::Verify);
    let err = compiled.run_on(&mut machine, &ifm, &w).unwrap_err();
    assert!(err.to_string().contains("integrity"), "{err}");
}

// ---- served-path chaos -----------------------------------------------------

#[test]
fn worker_panic_recovers_and_answers_every_request() {
    let chaos = ChaosConfig {
        panic_on_first_batch: Some(0),
        ..ChaosConfig::default()
    };
    let config = ServeConfig::for_spec(&CgraSpec::np_cgra(4, 4))
        .with_workers(1)
        .with_max_batch(1)
        .with_restart_backoff(Duration::ZERO)
        .with_chaos(chaos);
    let server = Server::start(config);
    let layer = ConvLayer::depthwise("dw", 3, 8, 8, 3, 1, 1);
    let w = layer.random_weights(1);
    let id = server.register("m", layer.clone(), w.clone()).unwrap();
    for seed in 0..4 {
        let ifm = Tensor::random(3, 8, 8, seed);
        let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
        let resp = server.submit(id, ifm).unwrap().wait().unwrap();
        assert_eq!(resp.output, golden, "post-recovery replies stay bit-exact");
    }
    let stats = server.shutdown();
    assert_eq!(stats.panics_caught, 1, "the injected panic was caught, once");
    assert_eq!(stats.restarts, 1);
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.shard_health, vec![true]);
    assert_eq!(stats.worker_exits, vec![WorkerExit::Clean]);
}

#[test]
fn poison_request_is_quarantined_and_batch_mates_complete() {
    const POISON: Word = 0x7A5A;
    let chaos = ChaosConfig {
        poison_value: Some(POISON),
        ..ChaosConfig::default()
    };
    let config = ServeConfig::for_spec(&CgraSpec::np_cgra(4, 4))
        .with_workers(1)
        .with_max_batch(4)
        .with_max_linger(Duration::from_millis(50))
        .with_max_retries(1)
        .with_chaos(chaos);
    let server = Server::start(config);
    let layer = ConvLayer::depthwise("dw", 2, 8, 8, 3, 1, 1);
    let w = layer.random_weights(1);
    let id = server.register("m", layer.clone(), w.clone()).unwrap();

    let mut tickets = Vec::new();
    let mut goldens = Vec::new();
    for seed in 0..4u64 {
        let mut ifm = Tensor::random(2, 8, 8, seed + 10);
        if seed == 2 {
            ifm.set(0, 0, 0, POISON);
            goldens.push(None);
        } else {
            if ifm.get(0, 0, 0) == POISON {
                ifm.set(0, 0, 0, 0);
            }
            goldens.push(Some(reference::run_layer(&layer, &ifm, &w).unwrap()));
        }
        tickets.push(server.submit(id, ifm).unwrap());
    }

    let mut quarantined = 0;
    for (ticket, golden) in tickets.into_iter().zip(goldens) {
        match (ticket.wait(), golden) {
            (Ok(resp), Some(g)) => assert_eq!(resp.output, g, "batch-mates of the poison stay bit-exact"),
            (Err(ServeError::Quarantined { attempts, .. }), None) => {
                assert!(attempts >= 2, "bisection + retry cap spent only {attempts} attempt(s)");
                quarantined += 1;
            }
            (outcome, golden) => panic!("unexpected outcome {outcome:?} (clean request: {})", golden.is_some()),
        }
    }
    assert_eq!(quarantined, 1);
    let stats = server.shutdown();
    assert_eq!(stats.quarantined, 1);
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.failed, 1);
    assert!(stats.retries >= 1, "isolating the poison takes at least one retry");
    assert_eq!(stats.worker_exits, vec![WorkerExit::Clean]);
}

#[test]
fn exhausted_restart_budget_degrades_the_server() {
    let chaos = ChaosConfig {
        panic_on_first_batch: Some(0),
        ..ChaosConfig::default()
    };
    let config = ServeConfig::for_spec(&CgraSpec::np_cgra(4, 4))
        .with_workers(1)
        .with_restart_budget(0)
        .with_restart_backoff(Duration::ZERO)
        .with_chaos(chaos);
    let server = Server::start(config);
    let layer = ConvLayer::pointwise("pw", 4, 4, 4, 4);
    let id = server.register("m", layer.clone(), layer.random_weights(1)).unwrap();
    // The only shard panics on this batch and has no restart budget: the
    // request must come back Degraded (never hang), and the server must
    // then shed at admission.
    let err = server.submit(id, Tensor::random(4, 4, 4, 1)).unwrap().wait().unwrap_err();
    assert!(matches!(err, ServeError::Degraded { healthy: 0, .. }), "{err:?}");
    let err = server.submit(id, Tensor::random(4, 4, 4, 2)).unwrap_err();
    assert!(matches!(err, ServeError::Degraded { healthy: 0, .. }), "{err:?}");
    let stats = server.shutdown();
    assert_eq!(stats.panics_caught, 1);
    assert_eq!(stats.restarts, 0, "no budget means no respawn");
    assert_eq!(stats.shard_health, vec![false]);
    assert_eq!(stats.worker_exits, vec![WorkerExit::Unhealthy]);
    assert!(stats.degraded_sheds >= 2);
}

#[test]
fn served_chaos_is_deterministic_in_the_fault_seed() {
    let run_once = || {
        let chaos = ChaosConfig {
            fault_seed: Some(0xFEED),
            fault_rate: 0.002,
            ..ChaosConfig::default()
        };
        let config = ServeConfig::for_spec(&CgraSpec::np_cgra(4, 4))
            .with_workers(1)
            .with_max_batch(1)
            .with_chaos(chaos);
        let server = Server::start(config);
        let layer = ConvLayer::pointwise("pw", 8, 8, 8, 8);
        let id = server.register("m", layer.clone(), layer.random_weights(3)).unwrap();
        let mut outcomes = Vec::new();
        for seed in 0..6u64 {
            // Closed loop on one worker: run ordinals (and so fault draws)
            // depend only on the submission sequence.
            let outcome = server.submit(id, Tensor::random(8, 8, 8, seed)).unwrap().wait();
            outcomes.push(outcome.map(|resp| resp.output).map_err(|e| e.to_string()));
        }
        let _ = server.shutdown();
        outcomes
    };
    assert_eq!(run_once(), run_once(), "same fault seed, same requests: bit-identical");
}

/// The PR's acceptance bar: under a seeded silent-corruption fault plan
/// with verification on (the serving default), every request either
/// completes **bit-exactly** (corruption detected, healed by retry) or is
/// quarantined with a typed error — never answered silently wrong.
#[test]
fn integrity_layer_survives_seeded_data_corruption_when_served() {
    const TOTAL: u64 = 120;
    let chaos = ChaosConfig {
        fault_seed: Some(0xAB_F7),
        fault_rate: 0.004,
        ..ChaosConfig::default()
    };
    let config = ServeConfig::for_spec(&CgraSpec::np_cgra(4, 4))
        .with_workers(1)
        .with_max_batch(1)
        .with_chaos(chaos);
    let server = Server::start(config);
    let layer = ConvLayer::pointwise("pw", 8, 8, 8, 8);
    let w = layer.random_weights(7);
    let id = server.register("m", layer.clone(), w.clone()).unwrap();
    let mut quarantined = 0u64;
    for seed in 0..TOTAL {
        // Closed loop on one worker: fully deterministic in the fault seed.
        let ifm = Tensor::random(8, 8, 8, seed);
        let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
        match server.submit(id, ifm).unwrap().wait() {
            Ok(resp) => assert_eq!(resp.output, golden, "request {seed} was answered silently wrong"),
            Err(ServeError::Quarantined { .. }) => quarantined += 1,
            Err(e) => panic!("request {seed}: unexpected outcome {e:?}"),
        }
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed + stats.quarantined, TOTAL, "every request resolved");
    assert_eq!(stats.quarantined, quarantined);
    assert!(stats.integrity_checked > 0, "verification must actually run");
    assert!(stats.integrity_failed > 0, "the fault plan must actually trip checksums");
    assert!(
        stats.integrity_recovered > 0,
        "some corrupted request must be healed by retry"
    );
    assert_eq!(stats.worker_exits, vec![WorkerExit::Clean]);
}

/// A machine faulting on *every* cycle defeats per-request retry; the
/// periodic canary self-test must notice and retire the shard instead of
/// letting it grind requests forever.
#[test]
fn canary_failure_retires_a_sticky_shard() {
    let chaos = ChaosConfig {
        fault_seed: Some(0x5711C),
        fault_rate: 1.0,
        ..ChaosConfig::default()
    };
    let config = ServeConfig::for_spec(&CgraSpec::np_cgra(4, 4))
        .with_workers(1)
        .with_max_batch(1)
        .with_max_retries(0)
        .with_restart_backoff(Duration::ZERO)
        .with_canary_interval(1)
        .with_chaos(chaos);
    let server = Server::start(config);
    let layer = ConvLayer::pointwise("pw", 4, 4, 4, 4);
    let id = server.register("m", layer.clone(), layer.random_weights(1)).unwrap();
    let mut degraded = false;
    for seed in 0..50u64 {
        match server.submit(id, Tensor::random(4, 4, 4, seed)) {
            Ok(ticket) => match ticket.wait() {
                Err(ServeError::Quarantined { .. }) => {}
                Err(ServeError::Degraded { .. }) => {
                    degraded = true;
                    break;
                }
                other => panic!("sticky faults must quarantine or degrade, got {other:?}"),
            },
            Err(ServeError::Degraded { .. }) => {
                degraded = true;
                break;
            }
            Err(e) => panic!("submit failed: {e:?}"),
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(degraded, "two canary strikes must retire the only shard");
    let stats = server.shutdown();
    assert_eq!(stats.worker_exits, vec![WorkerExit::Unhealthy]);
    assert!(stats.canary_runs >= 2);
    assert!(stats.canary_failed >= 2, "retirement takes two consecutive strikes");
    assert_eq!(stats.shard_health, vec![false]);
}
