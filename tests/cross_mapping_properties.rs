//! Property-based cross-mapping tests: for randomized layer geometries,
//! every mapping must agree bit-for-bit with the golden reference and with
//! each other, and the timing invariants must hold.

use npcgra::sim::{run_layer, run_matmul_dwc, time_layer, MappingKind};
use npcgra::{reference, CgraSpec, ConvLayer, Tensor};
use proptest::prelude::*;

fn small_dwc() -> impl Strategy<Value = ConvLayer> {
    (
        1usize..4,
        1usize..3,
        6usize..20,
        6usize..20,
        prop_oneof![Just(1usize), Just(2), Just(3)],
        0usize..2,
    )
        .prop_filter_map("valid", |(c, k2, h, w, s, pad)| {
            let k = 2 * k2 - 1; // odd kernels 1, 3
            ConvLayer::new("p", npcgra::ConvKind::Depthwise, c, c, h, w, k, s, pad, c).ok()
        })
}

fn small_pwc() -> impl Strategy<Value = ConvLayer> {
    (1usize..24, 1usize..24, 2usize..12, 2usize..12).prop_map(|(ci, co, h, w)| ConvLayer::pointwise("p", ci, co, h, w))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The NP-CGRA DWC mappings are exact for arbitrary geometry.
    #[test]
    fn dwc_mapping_is_exact(layer in small_dwc(), seed in 0u64..500) {
        let ifm = Tensor::random(layer.in_channels(), layer.in_h(), layer.in_w(), seed);
        let w = layer.random_weights(seed + 1);
        let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
        for spec in [CgraSpec::np_cgra(2, 2), CgraSpec::np_cgra(4, 4)] {
            let (ofm, rep) = run_layer(&layer, &ifm, &w, &spec).unwrap();
            prop_assert_eq!(&ofm, &golden);
            prop_assert!(rep.utilization() <= 1.0 + 1e-9);
        }
    }

    /// Matmul-DWC agrees with the optimized mappings.
    #[test]
    fn matmul_dwc_agrees(layer in small_dwc(), seed in 0u64..500) {
        let ifm = Tensor::random(layer.in_channels(), layer.in_h(), layer.in_w(), seed);
        let w = layer.random_weights(seed + 2);
        let spec = CgraSpec::np_cgra(4, 4);
        let (a, _) = run_layer(&layer, &ifm, &w, &spec).unwrap();
        let (b, _) = run_matmul_dwc(&layer, &ifm, &w, &spec).unwrap();
        prop_assert_eq!(a, b);
    }

    /// The PWC mapping is exact for arbitrary geometry.
    #[test]
    fn pwc_mapping_is_exact(layer in small_pwc(), seed in 0u64..500) {
        let ifm = Tensor::random(layer.in_channels(), layer.in_h(), layer.in_w(), seed);
        let w = layer.random_weights(seed + 3);
        let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
        let (ofm, _) = run_layer(&layer, &ifm, &w, &CgraSpec::np_cgra(4, 4)).unwrap();
        prop_assert_eq!(ofm, golden);
    }

    /// Timing-only estimates equal functional cycle counts for any layer.
    #[test]
    fn timing_matches_functional(layer in small_dwc(), seed in 0u64..200) {
        let ifm = Tensor::random(layer.in_channels(), layer.in_h(), layer.in_w(), seed);
        let w = layer.random_weights(seed + 4);
        let spec = CgraSpec::np_cgra(4, 4);
        let (_, functional) = run_layer(&layer, &ifm, &w, &spec).unwrap();
        let timed = time_layer(&layer, &spec, MappingKind::Auto).unwrap();
        prop_assert_eq!(functional.cycles, timed.cycles);
        prop_assert_eq!(functional.compute_cycles, timed.compute_cycles);
    }

    /// The stride-1 optimized mapping never loses to the general mapping.
    #[test]
    fn s1_never_slower_than_general(c in 1usize..4, h in 8usize..24, w in 8usize..24) {
        let layer = ConvLayer::depthwise("dw", c, h, w, 3, 1, 1);
        let spec = CgraSpec::np_cgra(4, 4);
        let opt = time_layer(&layer, &spec, MappingKind::Auto).unwrap();
        // Force the general mapping by constructing it directly.
        let cfg = npcgra::kernels::BlockCfg::choose_dwc(&spec, 3, 1, h, w);
        let gen_cycles = npcgra::kernels::perf::dwc_general_layer_cycles(&layer, &spec, cfg);
        prop_assert!(opt.compute_cycles <= gen_cycles);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The channel-batched mapping agrees with the golden reference for
    /// arbitrary channel counts and spatial geometry (including short tail
    /// groups when channels do not divide the batch).
    #[test]
    fn batched_dwc_is_exact(c in 1usize..40, h in 6usize..14, w in 6usize..14, seed in 0u64..200) {
        let layer = ConvLayer::depthwise("dw", c, h, w, 3, 1, 1);
        let ifm = Tensor::random(c, h, w, seed);
        let weights = layer.random_weights(seed + 5);
        let golden = reference::run_layer(&layer, &ifm, &weights).unwrap();
        let spec = CgraSpec::np_cgra(4, 4);
        let (ofm, _) = npcgra::sim::run_batched_dwc(&layer, &ifm, &weights, &spec).unwrap();
        prop_assert_eq!(ofm, golden);
    }
}
