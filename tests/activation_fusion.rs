//! Fused-activation integration: ReLU rides the pipeline bubble for free;
//! leaky ReLU adds a two-cycle epilogue — both bit-exact against the golden
//! reference on every mapping, including through the encoded-ISA path.

use npcgra::nn::Activation;
use npcgra::sim::{run_layer, run_matmul_dwc, time_layer, MappingKind};
use npcgra::{reference, CgraSpec, ConvLayer, Tensor};

fn activations() -> Vec<Activation> {
    vec![Activation::None, Activation::Relu, Activation::LeakyRelu { shift: 3 }]
}

#[test]
fn pwc_with_activations_matches_golden() {
    for act in activations() {
        let layer = ConvLayer::pointwise("pw", 10, 9, 7, 7).with_activation(act);
        let ifm = Tensor::random(10, 7, 7, 1);
        let w = layer.random_weights(2);
        let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
        let (ofm, _) = run_layer(&layer, &ifm, &w, &CgraSpec::np_cgra(4, 4)).unwrap();
        assert_eq!(ofm, golden, "{act}");
    }
}

#[test]
fn dwc_s1_with_activations_matches_golden() {
    for act in activations() {
        let layer = ConvLayer::depthwise("dw", 3, 13, 11, 3, 1, 1).with_activation(act);
        let ifm = Tensor::random(3, 13, 11, 3);
        let w = layer.random_weights(4);
        let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
        let (ofm, _) = run_layer(&layer, &ifm, &w, &CgraSpec::np_cgra(4, 4)).unwrap();
        assert_eq!(ofm, golden, "{act}");
    }
}

#[test]
fn dwc_s2_with_activations_matches_golden() {
    for act in activations() {
        let layer = ConvLayer::depthwise("dw", 2, 14, 14, 3, 2, 1).with_activation(act);
        let ifm = Tensor::random(2, 14, 14, 5);
        let w = layer.random_weights(6);
        let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
        let (ofm, _) = run_layer(&layer, &ifm, &w, &CgraSpec::np_cgra(4, 4)).unwrap();
        assert_eq!(ofm, golden, "{act}");
    }
}

#[test]
fn matmul_dwc_with_activations_matches_golden() {
    for act in activations() {
        let layer = ConvLayer::depthwise("dw", 2, 10, 10, 3, 1, 1).with_activation(act);
        let ifm = Tensor::random(2, 10, 10, 7);
        let w = layer.random_weights(8);
        let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
        let (ofm, _) = run_matmul_dwc(&layer, &ifm, &w, &CgraSpec::np_cgra(4, 4)).unwrap();
        assert_eq!(ofm, golden, "{act}");
    }
}

#[test]
fn relu_is_free_leaky_costs_two_cycles_per_tile() {
    let spec = CgraSpec::np_cgra(4, 4);
    let base = ConvLayer::depthwise("dw", 4, 16, 16, 3, 1, 1);
    let relu = base.clone().with_activation(Activation::Relu);
    let leaky = base.clone().with_activation(Activation::LeakyRelu { shift: 2 });

    let t_base = time_layer(&base, &spec, MappingKind::Auto).unwrap();
    let t_relu = time_layer(&relu, &spec, MappingKind::Auto).unwrap();
    let t_leaky = time_layer(&leaky, &spec, MappingKind::Auto).unwrap();

    assert_eq!(t_base.compute_cycles, t_relu.compute_cycles, "ReLU reuses the bubble");
    assert!(
        t_leaky.compute_cycles > t_base.compute_cycles,
        "leaky ReLU costs extra cycles"
    );
    // Exactly 2 extra cycles per tile: 18 -> 20 on the 4x4 (K = 3).
    let tiles = t_base.compute_cycles / 18;
    assert_eq!(t_leaky.compute_cycles, t_base.compute_cycles + 2 * tiles);
}

#[test]
fn encoded_configs_carry_the_activation() {
    // The fused activation survives the encode/decode round trip through
    // configuration memory.
    use npcgra::kernels::dwc_s1::DwcS1LayerMap;
    use npcgra::kernels::ConfigImage;
    use npcgra::Machine;

    let spec = CgraSpec::np_cgra(4, 4);
    let layer = ConvLayer::depthwise("dw", 2, 12, 12, 3, 1, 1).with_activation(Activation::LeakyRelu { shift: 2 });
    let map = DwcS1LayerMap::new(&layer, &spec).unwrap();
    let ifm = Tensor::random(2, 12, 12, 9);
    let padded = npcgra::kernels::dwc_general::padded_ifm(&layer, &ifm);
    let w = layer.random_weights(10);
    let golden = reference::run_layer(&layer, &ifm, &w).unwrap();

    // Contexts still fit the Table 4 budget with the activation epilogue.
    let prog0 = map.materialize(0, &padded, &w);
    let img = ConfigImage::compile(prog0.mapping.as_ref(), &spec).unwrap();
    assert!(img.num_contexts() <= spec.config_contexts);

    let mut m = Machine::new(&spec);
    for b in 0..map.num_blocks() {
        let prog = map.materialize(b, &padded, &w);
        for (c, y, x, v) in m.run_block_encoded(&prog).unwrap().ofm {
            assert_eq!(v, golden.get(c, y, x), "({c},{y},{x})");
        }
    }
}

#[test]
fn activation_in_standard_conv_via_im2col() {
    let layer = ConvLayer::standard("c", 3, 4, 8, 8, 3, 1, 1, 1).with_activation(Activation::Relu);
    let ifm = Tensor::random(3, 8, 8, 11);
    let w = layer.random_weights(12);
    let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
    let (ofm, _) = npcgra::sim::run_standard_via_im2col(&layer, &ifm, &w, &CgraSpec::np_cgra(4, 4)).unwrap();
    assert_eq!(ofm, golden);
}
