//! Integration tests of the `npcgra-serve` inference server: bit-exactness
//! under concurrency and batching, deadline shedding, queue-full load
//! shedding, graceful shutdown draining, and program-cache behaviour —
//! everything the serving layer promises, checked against the golden
//! `npcgra-nn` reference.

use std::time::Duration;

use npcgra::nn::reference;
use npcgra::serve::{ServeConfig, ServeError, Server};
use npcgra::{CgraSpec, ConvLayer, Tensor};

fn spec() -> CgraSpec {
    CgraSpec::np_cgra(4, 4)
}

/// Concurrent clients over mixed models (depthwise, pointwise and a
/// standard conv): every response is bit-exact with the golden reference,
/// whatever batch it rode in on and whichever shard ran it.
#[test]
fn concurrent_mixed_models_are_bit_exact() {
    let server = Server::start(
        ServeConfig::for_spec(&spec())
            .with_workers(4)
            .with_max_batch(4)
            .with_max_linger(Duration::from_millis(1)),
    );
    let layers = [
        ConvLayer::depthwise("dw-a", 4, 12, 12, 3, 1, 1),
        ConvLayer::depthwise("dw-b", 3, 10, 10, 3, 2, 1),
        ConvLayer::pointwise("pw-a", 8, 6, 6, 6),
        ConvLayer::standard("std-a", 3, 4, 8, 8, 3, 1, 1, 1),
    ];
    let registered: Vec<_> = layers
        .iter()
        .map(|l| {
            let w = l.random_weights(fxhash(l.name()));
            let id = server.register(l.name(), l.clone(), w.clone()).expect("register");
            (id, l.clone(), w)
        })
        .collect();

    std::thread::scope(|scope| {
        for client in 0..6usize {
            let server = &server;
            let registered = &registered;
            scope.spawn(move || {
                for r in 0..8usize {
                    let (id, layer, w) = &registered[(client + r) % registered.len()];
                    let seed = (client * 1000 + r) as u64;
                    let ifm = Tensor::random(layer.in_channels(), layer.in_h(), layer.in_w(), seed);
                    let golden = reference::run_layer(layer, &ifm, w).expect("golden");
                    let resp = server.submit(*id, ifm).expect("submit").wait().expect("response");
                    assert_eq!(resp.output, golden, "{} client {client} round {r}", layer.name());
                    assert!(resp.report.cycles > 0);
                }
            });
        }
    });

    let stats = server.shutdown();
    assert_eq!(stats.completed, 48);
    assert_eq!(stats.failed, 0);
}

/// Requests that coalesce into a real multi-request batch still produce
/// bit-exact outputs, and the batch actually forms.
#[test]
fn batched_requests_are_bit_exact() {
    let server = Server::start(
        ServeConfig::for_spec(&spec())
            .with_workers(1)
            .with_max_batch(4)
            .with_max_linger(Duration::from_millis(20)),
    );
    let layer = ConvLayer::depthwise("dw", 3, 10, 10, 3, 1, 1);
    let w = layer.random_weights(9);
    let id = server.register("dw", layer.clone(), w.clone()).expect("register");

    // Submit 4 requests back to back; the 20 ms linger window lets the
    // queue reach max_batch before the worker forms the batch.
    let inputs: Vec<Tensor> = (0..4).map(|i| Tensor::random(3, 10, 10, 40 + i)).collect();
    let tickets: Vec<_> = inputs
        .iter()
        .map(|ifm| server.submit(id, ifm.clone()).expect("submit"))
        .collect();
    let mut max_batch_seen = 0;
    for (ifm, ticket) in inputs.iter().zip(tickets) {
        let resp = ticket.wait().expect("response");
        let golden = reference::run_layer(&layer, ifm, &w).expect("golden");
        assert_eq!(resp.output, golden);
        max_batch_seen = max_batch_seen.max(resp.batch_size);
    }
    let stats = server.shutdown();
    assert!(max_batch_seen > 1, "requests should have coalesced, saw only solo runs");
    assert!(stats.batch_histogram.iter().skip(2).any(|&c| c > 0));
}

/// A request whose deadline passes while it waits in the queue is shed at
/// batch formation with a typed error, before any simulation runs.
#[test]
fn expired_deadlines_are_shed() {
    let server = Server::start(
        ServeConfig::for_spec(&spec())
            .with_workers(1)
            .with_max_batch(4)
            // The lone request lingers well past its deadline before the
            // worker picks it up.
            .with_max_linger(Duration::from_millis(40)),
    );
    let layer = ConvLayer::pointwise("pw", 4, 4, 4, 4);
    let id = server
        .register("pw", layer.clone(), layer.random_weights(1))
        .expect("register");
    let ticket = server
        .submit_with_deadline(id, Tensor::random(4, 4, 4, 1), Some(Duration::from_millis(1)))
        .expect("admitted");
    assert_eq!(ticket.wait().unwrap_err(), ServeError::DeadlineExceeded);
    let stats = server.shutdown();
    assert_eq!(stats.rejected_deadline, 1);
    assert_eq!(stats.completed, 0);
}

/// Admission control: a full queue sheds synchronously with `QueueFull`,
/// and shutdown rejects what never ran. Zero workers makes this exact.
#[test]
fn full_queue_sheds_load() {
    let server = Server::start(ServeConfig::for_spec(&spec()).with_workers(0).with_queue_capacity(2));
    let layer = ConvLayer::pointwise("pw", 4, 4, 4, 4);
    let id = server
        .register("pw", layer.clone(), layer.random_weights(1))
        .expect("register");
    let t1 = server.submit(id, Tensor::random(4, 4, 4, 1)).expect("fits");
    let t2 = server.submit(id, Tensor::random(4, 4, 4, 2)).expect("fits");
    let err = server.submit(id, Tensor::random(4, 4, 4, 3)).unwrap_err();
    assert_eq!(err, ServeError::QueueFull { capacity: 2 });

    let stats = server.shutdown();
    assert_eq!(t1.wait().unwrap_err(), ServeError::ShuttingDown);
    assert_eq!(t2.wait().unwrap_err(), ServeError::ShuttingDown);
    assert_eq!(stats.rejected_queue_full, 1);
    assert_eq!(stats.rejected_shutdown, 2);
}

/// Graceful shutdown drains: requests still lingering for batch-mates when
/// shutdown begins are executed, not dropped.
#[test]
fn shutdown_drains_queued_requests() {
    let server = Server::start(
        ServeConfig::for_spec(&spec())
            .with_workers(2)
            .with_max_batch(8)
            // Far longer than the test: nothing would run before shutdown
            // if draining didn't force batches out.
            .with_max_linger(Duration::from_secs(30)),
    );
    let layer = ConvLayer::depthwise("dw", 2, 8, 8, 3, 1, 1);
    let w = layer.random_weights(3);
    let id = server.register("dw", layer.clone(), w.clone()).expect("register");
    let inputs: Vec<Tensor> = (0..5).map(|i| Tensor::random(2, 8, 8, 60 + i)).collect();
    let tickets: Vec<_> = inputs
        .iter()
        .map(|ifm| server.submit(id, ifm.clone()).expect("submit"))
        .collect();

    let stats = server.shutdown();
    assert_eq!(stats.completed, 5, "drain must run every queued request");
    for (ifm, ticket) in inputs.iter().zip(tickets) {
        let resp = ticket.wait().expect("drained request completes");
        assert_eq!(resp.output, reference::run_layer(&layer, ifm, &w).expect("golden"));
    }
}

/// After shutdown, new submissions are rejected with `ShuttingDown`.
#[test]
fn submissions_after_shutdown_are_rejected() {
    let server = Server::start(ServeConfig::for_spec(&spec()).with_workers(1));
    let layer = ConvLayer::pointwise("pw", 4, 4, 4, 4);
    let id = server
        .register("pw", layer.clone(), layer.random_weights(1))
        .expect("register");
    // Shutdown consumes the server, so probe via a clone of the submit path:
    // run a request, shut down, then verify the typed error surfaces from a
    // second server whose queue was closed under a pending ticket instead.
    let resp = server.submit(id, Tensor::random(4, 4, 4, 1)).expect("submit").wait();
    assert!(resp.is_ok());
    let stats = server.shutdown();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.rejected_shutdown, 0);
}

/// The program cache compiles each configuration once: after a model is
/// registered, requests are pure cache hits — no per-request mapping work.
#[test]
fn program_cache_eliminates_per_request_compilation() {
    let server = Server::start(
        ServeConfig::for_spec(&spec())
            .with_workers(1)
            .with_max_batch(1) // solo runs: every request consults the cache
            .with_max_linger(Duration::ZERO),
    );
    let layer = ConvLayer::depthwise("dw", 3, 12, 12, 3, 1, 1);
    let id = server
        .register("dw", layer.clone(), layer.random_weights(5))
        .expect("register");
    for i in 0..10u64 {
        server
            .submit(id, Tensor::random(3, 12, 12, i))
            .expect("submit")
            .wait()
            .expect("response");
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, 10);
    assert_eq!(stats.cache_misses, 1, "exactly one compilation: at registration");
    assert!(stats.cache_hits >= 10, "every request reuses the compiled program");
    assert!(stats.cache_hit_rate() > 0.9);
}

/// Two models with identical layer geometry share one compiled program.
#[test]
fn identical_geometries_share_one_program() {
    let server = Server::start(ServeConfig::for_spec(&spec()).with_workers(0));
    let a = ConvLayer::pointwise("model-a.pw", 8, 8, 4, 4);
    let b = ConvLayer::pointwise("model-b.pw", 8, 8, 4, 4);
    server.register("a", a.clone(), a.random_weights(1)).expect("register a");
    server.register("b", b.clone(), b.random_weights(2)).expect("register b");
    let stats = server.shutdown();
    assert_eq!(stats.cache_misses, 1, "second registration hits the first's program");
    assert_eq!(stats.cache_hits, 1);
}

/// Tiny deterministic name hash for per-model weight seeds.
fn fxhash(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    })
}
