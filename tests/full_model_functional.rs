//! Whole-model functional runs: every layer of a (scaled-down) MobileNet
//! executes on the cycle-accurate machine, layer outputs feeding layer
//! inputs, and the final tensor matches the golden reference computed
//! entirely in software. This exercises the full mapping stack — im2col +
//! PWC for the first standard conv, DWC-S1/DWC-general for the depthwise
//! layers, PWC for the pointwise layers — across a realistic layer chain.

use npcgra::nn::models;
use npcgra::{reference, NpCgra, Tensor};

fn run_model(machine: &NpCgra, model: &npcgra::Model, seed: u64) {
    let first = &model.layers()[0];
    let mut sim_t = Tensor::random(first.in_channels(), first.in_h(), first.in_w(), seed);
    let mut gold_t = sim_t.clone();
    for (i, layer) in model.layers().iter().enumerate() {
        let w = layer.random_weights(seed + 100 + i as u64);
        let (sim_out, report) = machine.run_layer(layer, &sim_t, &w).unwrap();
        let gold_out = reference::run_layer(layer, &gold_t, &w).unwrap();
        assert_eq!(sim_out, gold_out, "layer {} ({layer})", layer.name());
        assert!(report.utilization() <= 1.0 + 1e-9, "{}", layer.name());
        sim_t = sim_out;
        gold_t = gold_out;
    }
}

#[test]
fn tiny_mobilenet_v1_end_to_end() {
    // Width 0.25 at resolution 32: the full 27-layer V1 stack, cycle-
    // accurately, in seconds.
    let machine = NpCgra::new_4x4();
    let model = models::mobilenet_v1(0.25, 32);
    run_model(&machine, &model, 42);
}

#[test]
fn tiny_mobilenet_v2_end_to_end_on_8x8() {
    let machine = NpCgra::table4();
    let model = models::mobilenet_v2(0.25, 32);
    run_model(&machine, &model, 7);
}

#[test]
fn parallel_execution_is_bit_identical() {
    use npcgra::sim::{run_layer, run_layer_parallel};
    let spec = *NpCgra::new_4x4().spec();
    let layer = npcgra::ConvLayer::depthwise("dw", 16, 24, 24, 3, 1, 1);
    let ifm = Tensor::random(16, 24, 24, 11);
    let w = layer.random_weights(12);
    let (seq, seq_rep) = run_layer(&layer, &ifm, &w, &spec).unwrap();
    for threads in [1usize, 2, 4, 7] {
        let (par, par_rep) = run_layer_parallel(&layer, &ifm, &w, &spec, threads).unwrap();
        assert_eq!(par, seq, "{threads} threads");
        assert_eq!(par_rep.cycles, seq_rep.cycles);
        assert_eq!(par_rep.compute_cycles, seq_rep.compute_cycles);
    }
}

/// The *actual* Table 5 layers (112×112 MobileNet V1 geometry), functionally
/// bit-exact. ~40 M simulated PE-operations; ignored by default so the
/// regular suite stays quick — run with `cargo test --release -- --ignored`.
#[test]
#[ignore = "heavy: full-size Table 5 layers, run with --release -- --ignored"]
fn table5_layers_full_size_functional() {
    use npcgra::sim::run_layer_parallel;
    let spec = *NpCgra::new_4x4().spec();
    let threads = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    let (pw, dw1, dw2) = models::table5_layers();
    for layer in [&pw, &dw1, &dw2] {
        let ifm = Tensor::random(layer.in_channels(), layer.in_h(), layer.in_w(), 99);
        let w = layer.random_weights(100);
        let (ofm, report) = run_layer_parallel(layer, &ifm, &w, &spec, threads).unwrap();
        let golden = reference::run_layer(layer, &ifm, &w).unwrap();
        assert_eq!(ofm, golden, "{}", layer.name());
        // And the latency lands on the Table 5 value.
        let paper_ms = match layer.name() {
            "pw1" => 3.72,
            "dw1" => 0.92,
            _ => 0.81,
        };
        assert!(
            (report.ms() - paper_ms).abs() / paper_ms < 0.10,
            "{}: {:.3} ms",
            layer.name(),
            report.ms()
        );
    }
}

#[test]
fn tiny_mobilenet_v3_small_end_to_end() {
    // V3-Small brings 5x5 depthwise kernels: K*K = 25 exceeds the GRF, so
    // Auto routes them through the general mapping — verified bit-exactly
    // across the whole conv skeleton.
    let machine = NpCgra::table4();
    let model = models::mobilenet_v3_small(32);
    run_model(&machine, &model, 13);
}
