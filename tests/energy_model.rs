//! Energy-model integration: the operand reuse network's point is exactly
//! that spatial reuse cuts SRAM traffic, which the energy model makes
//! visible.

use npcgra::area::EnergyModel;
use npcgra::sim::{estimate_layer_energy, MappingKind};
use npcgra::{CgraSpec, ConvLayer, Tensor};

#[test]
fn our_dwc_uses_less_sram_energy_than_matmul_dwc() {
    let spec = CgraSpec::np_cgra(4, 4);
    let layer = ConvLayer::depthwise("dw", 8, 24, 24, 3, 1, 1);
    let ifm = Tensor::random(8, 24, 24, 1);
    let w = layer.random_weights(2);
    let model = EnergyModel::nm65();
    let ours = estimate_layer_energy(&layer, &ifm, &w, &spec, MappingKind::Auto, &model).unwrap();
    let matmul = estimate_layer_energy(&layer, &ifm, &w, &spec, MappingKind::MatmulDwc, &model).unwrap();
    // The matmul form re-fetches each IFM element up to K^2 times (im2col
    // duplication) where the ORN reuses it in the array.
    assert!(
        matmul.sram_uj > 2.0 * ours.sram_uj,
        "matmul sram {} vs ours {}",
        matmul.sram_uj,
        ours.sram_uj
    );
    assert!(matmul.dram_uj > 2.0 * ours.dram_uj, "im2col inflates off-chip traffic too");
    assert!(matmul.total_uj() > ours.total_uj());
}

#[test]
fn compute_energy_is_mapping_invariant() {
    // The useful MACs (and hence compute energy) are the same whichever
    // mapping runs the layer.
    let spec = CgraSpec::np_cgra(4, 4);
    let layer = ConvLayer::depthwise("dw", 8, 16, 16, 3, 1, 1);
    let ifm = Tensor::random(8, 16, 16, 3);
    let w = layer.random_weights(4);
    let model = EnergyModel::nm65();
    let a = estimate_layer_energy(&layer, &ifm, &w, &spec, MappingKind::Auto, &model).unwrap();
    let b = estimate_layer_energy(&layer, &ifm, &w, &spec, MappingKind::BatchedDwcS1, &model).unwrap();
    let ratio = a.compute_uj / b.compute_uj;
    assert!((0.9..1.1).contains(&ratio), "compute energy ratio {ratio}");
}

#[test]
fn pwc_energy_is_dram_and_sram_shaped() {
    // PWC at high utilization: compute competes with SRAM streaming; DRAM
    // share depends on reuse (weights fetched once per block).
    let spec = CgraSpec::np_cgra(4, 4);
    let layer = ConvLayer::pointwise("pw", 32, 32, 16, 16);
    let ifm = Tensor::random(32, 16, 16, 5);
    let w = layer.random_weights(6);
    let e = estimate_layer_energy(&layer, &ifm, &w, &spec, MappingKind::Auto, &EnergyModel::nm65()).unwrap();
    assert!(e.total_uj() > 0.0);
    assert!(e.compute_uj > 0.0 && e.sram_uj > 0.0 && e.dram_uj > 0.0);
    assert!((0.0..=1.0).contains(&e.onchip_fraction()));
}
