//! End-to-end integration: every mapping, on several machine geometries,
//! must be bit-exact against the golden reference convolutions.

use npcgra::sim::{run_layer, run_matmul_dwc, run_standard_via_im2col};
use npcgra::{reference, CgraSpec, ConvLayer, NpCgra, Tensor};

fn machines() -> Vec<CgraSpec> {
    vec![
        CgraSpec::np_cgra(2, 2),
        CgraSpec::np_cgra(4, 4),
        CgraSpec::np_cgra(8, 8),
        CgraSpec::np_cgra(4, 8),
        CgraSpec::np_cgra(8, 4),
    ]
}

#[test]
fn pwc_exact_on_all_machines() {
    let layer = ConvLayer::pointwise("pw", 10, 12, 9, 11);
    let ifm = Tensor::random(10, 9, 11, 1);
    let w = layer.random_weights(2);
    let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
    for spec in machines() {
        let (ofm, rep) = run_layer(&layer, &ifm, &w, &spec).unwrap();
        assert_eq!(ofm, golden, "{}x{}", spec.rows, spec.cols);
        assert!(rep.cycles >= rep.compute_cycles / 2);
    }
}

#[test]
fn dwc_s1_exact_on_all_machines() {
    let layer = ConvLayer::depthwise("dw", 5, 17, 13, 3, 1, 1);
    let ifm = Tensor::random(5, 17, 13, 3);
    let w = layer.random_weights(4);
    let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
    for spec in machines() {
        let (ofm, _) = run_layer(&layer, &ifm, &w, &spec).unwrap();
        assert_eq!(ofm, golden, "{}x{}", spec.rows, spec.cols);
    }
}

#[test]
fn dwc_s2_exact_on_all_machines() {
    let layer = ConvLayer::depthwise("dw", 4, 18, 18, 3, 2, 1);
    let ifm = Tensor::random(4, 18, 18, 5);
    let w = layer.random_weights(6);
    let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
    for spec in machines() {
        let (ofm, _) = run_layer(&layer, &ifm, &w, &spec).unwrap();
        assert_eq!(ofm, golden, "{}x{}", spec.rows, spec.cols);
    }
}

#[test]
fn dwc_stride3_uses_general_mapping() {
    // The general mapping handles any stride, not just the MobileNet cases.
    let layer = ConvLayer::depthwise("dw", 2, 20, 20, 3, 3, 1);
    let ifm = Tensor::random(2, 20, 20, 7);
    let w = layer.random_weights(8);
    let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
    let (ofm, _) = run_layer(&layer, &ifm, &w, &CgraSpec::np_cgra(4, 4)).unwrap();
    assert_eq!(ofm, golden);
}

#[test]
fn dwc_5x5_kernel_exact() {
    // K = 5 exercises longer EE/SS/EW walks and bigger V-MEM images.
    let layer = ConvLayer::depthwise("dw", 3, 14, 14, 5, 1, 2);
    let ifm = Tensor::random(3, 14, 14, 9);
    let w = layer.random_weights(10);
    let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
    for spec in [CgraSpec::np_cgra(4, 4), CgraSpec::np_cgra(8, 8)] {
        let (ofm, _) = run_layer(&layer, &ifm, &w, &spec).unwrap();
        assert_eq!(ofm, golden, "{}x{}", spec.rows, spec.cols);
    }
}

#[test]
fn matmul_dwc_exact_both_strides() {
    for s in [1usize, 2] {
        let layer = ConvLayer::depthwise("dw", 3, 12, 12, 3, s, 1);
        let ifm = Tensor::random(3, 12, 12, 11);
        let w = layer.random_weights(12);
        let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
        let (ofm, _) = run_matmul_dwc(&layer, &ifm, &w, &CgraSpec::np_cgra(4, 4)).unwrap();
        assert_eq!(ofm, golden, "stride {s}");
    }
}

#[test]
fn grouped_standard_conv_exact() {
    // AlexNet-style grouped conv through im2col + PWC.
    let layer = ConvLayer::standard("c", 8, 12, 10, 10, 5, 1, 2, 2);
    let ifm = Tensor::random(8, 10, 10, 13);
    let w = layer.random_weights(14);
    let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
    let (ofm, rep) = run_standard_via_im2col(&layer, &ifm, &w, &CgraSpec::np_cgra(4, 4)).unwrap();
    assert_eq!(ofm, golden);
    assert!(rep.host_seconds > 0.0, "im2col host time is charged");
}

#[test]
fn dsc_chain_through_the_facade() {
    // A three-layer chain (dw-s1 -> pw -> dw-s2) run entirely on the
    // machine, outputs feeding inputs.
    let machine = NpCgra::new_4x4();
    let dw1 = ConvLayer::depthwise("dw1", 6, 20, 20, 3, 1, 1);
    let pw = ConvLayer::pointwise("pw", 6, 10, 20, 20);
    let dw2 = ConvLayer::depthwise("dw2", 10, 20, 20, 3, 2, 1);

    let ifm = Tensor::random(6, 20, 20, 21);
    let (w1, w2, w3) = (dw1.random_weights(22), pw.random_weights(23), dw2.random_weights(24));

    let (a, _) = machine.run_layer(&dw1, &ifm, &w1).unwrap();
    let (b, _) = machine.run_layer(&pw, &a, &w2).unwrap();
    let (c, _) = machine.run_layer(&dw2, &b, &w3).unwrap();

    let ga = reference::run_layer(&dw1, &ifm, &w1).unwrap();
    let gb = reference::run_layer(&pw, &ga, &w2).unwrap();
    let gc = reference::run_layer(&dw2, &gb, &w3).unwrap();
    assert_eq!(c, gc);
}

#[test]
fn ablation_no_dual_mode_mac_fails_gracefully() {
    // Without MAC chaining the NP mappings are illegal: the machine
    // reports the violation instead of silently producing wrong cycles.
    let mut spec = CgraSpec::np_cgra(4, 4);
    spec.features.dual_mode_mac = false;
    let layer = ConvLayer::pointwise("pw", 4, 4, 4, 4);
    let ifm = Tensor::random(4, 4, 4, 1);
    let w = layer.random_weights(2);
    let err = run_layer(&layer, &ifm, &w, &spec).unwrap_err();
    assert!(err.to_string().contains("MAC"), "{err}");
}

#[test]
fn ablation_no_crossbar_breaks_dwc_layouts() {
    // The Fig. 10/11 layouts require the AGU-bank crossbar; the baseline's
    // parallel busses reject them (§5.2's correctness argument in reverse).
    let mut spec = CgraSpec::np_cgra(4, 4);
    spec.features.crossbar_vbus = false;
    let layer = ConvLayer::depthwise("dw", 2, 16, 16, 3, 1, 1);
    let ifm = Tensor::random(2, 16, 16, 1);
    let w = layer.random_weights(2);
    let err = run_layer(&layer, &ifm, &w, &spec).unwrap_err();
    assert!(
        err.to_string().contains("crossbar") || err.to_string().contains("MAC"),
        "{err}"
    );
}

#[test]
fn unusual_kernel_sizes_exact() {
    // K = 1 (pure per-pixel scale), K = 2 (even kernel; the boustrophedon
    // walk has a single EW step) and K = 4 (even, GRF-resident at 16 taps)
    // across both strides.
    for (k, s, pad) in [(1usize, 1usize, 0usize), (2, 1, 0), (2, 2, 1), (4, 1, 1), (4, 2, 1)] {
        let layer = ConvLayer::depthwise("dw", 3, 13, 15, k, s, pad);
        let ifm = Tensor::random(3, 13, 15, (k * 10 + s) as u64);
        let w = layer.random_weights(99);
        let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
        for spec in [CgraSpec::np_cgra(2, 3), CgraSpec::np_cgra(4, 4)] {
            let (ofm, _) = run_layer(&layer, &ifm, &w, &spec).unwrap();
            assert_eq!(ofm, golden, "K={k} S={s} pad={pad} on {}x{}", spec.rows, spec.cols);
        }
    }
}

#[test]
fn wide_and_tall_feature_maps_exact() {
    // Extreme aspect ratios stress the tiling/edge-block paths.
    for (h, w) in [(1usize, 40usize), (40, 1), (2, 33), (33, 2)] {
        let layer = ConvLayer::depthwise("dw", 2, h, w, 3, 1, 1);
        let ifm = Tensor::random(2, h, w, 5);
        let weights = layer.random_weights(6);
        let golden = reference::run_layer(&layer, &ifm, &weights).unwrap();
        let (ofm, _) = run_layer(&layer, &ifm, &weights, &CgraSpec::np_cgra(4, 4)).unwrap();
        assert_eq!(ofm, golden, "{h}x{w}");
    }
}
