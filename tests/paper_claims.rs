//! Reproduction of the paper's headline quantitative claims, end to end:
//! Table 1 (bottleneck analysis), Table 3 (latency formulas), Table 5
//! (DSC results) and Table 6 (cross-architecture comparison) shapes.

use npcgra::area::comparators;
use npcgra::baseline::{baseline_4x4 as t1_baseline, enhanced_8x8, eyeriss_168, min_latency, CcfModel, ReuseScenario};
use npcgra::nn::models;
use npcgra::sim::{time_layer, MappingKind};
use npcgra::{adp, AreaModel, CgraSpec, NpCgra};

/// Table 5: "our NP-CGRA generates over 20× speed up and close to 18× ADP
/// reduction for PWC over the baseline" (we assert ≥10× / ≥9× — the shape,
/// with our CCF model's exact II).
#[test]
fn table5_pwc_speedup_and_adp_gain() {
    let (pw, _, _) = models::table5_layers();
    let spec = CgraSpec::np_cgra(4, 4);
    let ours = time_layer(&pw, &spec, MappingKind::Auto).unwrap();
    let ccf = CcfModel::table5().compile_layer(&pw);

    let speedup = ccf.seconds / ours.seconds();
    assert!(speedup > 10.0, "PWC speedup {speedup} (paper >20x)");

    let model = AreaModel::calibrated();
    let mut np4 = spec;
    np4.hmem_bytes = 39 * 1024;
    np4.vmem_bytes = 39 * 1024;
    let ours_adp = adp(model.total(&np4), ours.ms());
    let ccf_adp = adp(model.total(&npcgra::area::model::baseline_like(4, 4)), ccf.seconds * 1e3);
    let gain = ours_adp.improvement_over(&ccf_adp);
    assert!(gain > 9.0, "PWC ADP gain {gain} (paper ~18x)");
}

/// Table 5: our DWC mapping is 1.75–3× better than matmul-based DWC.
#[test]
fn table5_dwc_beats_matmul_dwc() {
    let (_, dw1, dw2) = models::table5_layers();
    let spec = CgraSpec::np_cgra(4, 4);
    for layer in [&dw1, &dw2] {
        let ours = time_layer(layer, &spec, MappingKind::Auto).unwrap();
        let matmul = time_layer(layer, &spec, MappingKind::MatmulDwc).unwrap();
        let ratio = matmul.seconds() / ours.seconds();
        assert!((1.5..3.6).contains(&ratio), "{}: ratio {ratio} (paper 1.75-3x)", layer.name());
    }
}

/// Table 5 absolute latencies (ms) for "Our mapping" on the 4×4 at 500 MHz:
/// PWC 3.72, DWC S=1 0.92, DWC S=2 0.81 (±10 % tolerance: our DMA model
/// sits where the paper's measured overheads do).
#[test]
fn table5_our_mapping_absolute_latencies() {
    let (pw, dw1, dw2) = models::table5_layers();
    let spec = CgraSpec::np_cgra(4, 4);
    for (layer, paper_ms) in [(&pw, 3.72), (&dw1, 0.92), (&dw2, 0.81)] {
        let r = time_layer(layer, &spec, MappingKind::Auto).unwrap();
        let err = (r.ms() - paper_ms).abs() / paper_ms;
        assert!(
            err < 0.10,
            "{}: {:.3} ms vs paper {paper_ms} ms ({:.1} % off)",
            layer.name(),
            r.ms(),
            err * 100.0
        );
    }
}

/// Table 5 utilizations: 86.42 % (PWC), 49 % (DWC S=1), 28 % (DWC S=2),
/// 16.04 % (matmul DWC S=1).
#[test]
fn table5_utilizations() {
    let (pw, dw1, dw2) = models::table5_layers();
    let spec = CgraSpec::np_cgra(4, 4);
    let u = |l, k| time_layer(l, &spec, k).unwrap().utilization();
    assert!((u(&pw, MappingKind::Auto) - 0.8642).abs() < 0.03);
    assert!((u(&dw1, MappingKind::Auto) - 0.49).abs() < 0.03);
    assert!((u(&dw2, MappingKind::Auto) - 0.28).abs() < 0.03);
    assert!((u(&dw1, MappingKind::MatmulDwc) - 0.1604).abs() < 0.02);
}

/// Table 1: baseline-vs-Eyeriss compute gap ≈ 8×; the enhanced 8×8 machine
/// closes it and becomes (essentially) compute-bound.
#[test]
fn table1_bottleneck_analysis() {
    let layers = models::mobilenet_v2_table1_dwc_layers();
    let base = min_latency(&t1_baseline(), &layers, ReuseScenario::Most);
    let eye = min_latency(&eyeriss_168(), &layers, ReuseScenario::Most);
    let enh = min_latency(&enhanced_8x8(), &layers, ReuseScenario::Most);

    let gap = base.compute_s / eye.compute_s;
    assert!((8.0..9.0).contains(&gap), "compute gap {gap} (paper ~8.4x)");
    assert!(enh.compute_s < 1.3 * eye.compute_s, "enhanced reaches Eyeriss-class compute");

    let worst = min_latency(&t1_baseline(), &layers, ReuseScenario::Least);
    assert!(worst.l1_s > worst.compute_s, "baseline is L1-bound without reuse");
}

/// Table 6 shape: NP-CGRA's MobileNet V1 ADP beats Eyeriss v2's, and its
/// AlexNet ADP beats every comparator, while its raw AlexNet latency is
/// mid-pack (faster than Auto-tuning, slower than the hard DPUs).
#[test]
fn table6_shape() {
    let machine = NpCgra::table4();
    let area = machine.area().total();

    // MobileNet V1 at the Eyeriss-v2 configuration (alpha 0.5, res 128).
    let v1 = models::mobilenet_v1(0.5, 128);
    let v1_total = machine.time_model_dsc(&v1).unwrap();
    let ours_v1 = adp(area, v1_total.ms());
    let ev2 = comparators::eyeriss_v2();
    let gain = ev2.mobilenet_v1_adp().unwrap() / ours_v1.value();
    assert!(gain > 1.5, "V1 ADP gain over Eyeriss v2 {gain} (paper 2.22x)");
    assert!(
        v1_total.ms() > ev2.mobilenet_v1_dsc_ms.unwrap(),
        "Eyeriss v2 keeps the raw-latency lead"
    );

    // AlexNet conv layers via im2col + PWC (+ host im2col time).
    let alex = models::alexnet();
    let reports: Vec<_> = alex.conv_layers().map(|l| machine.time_layer(l).unwrap()).collect();
    let alex_ms: f64 = reports.iter().map(npcgra::LayerReport::ms).sum();
    let ours_alex = adp(area, alex_ms);
    for c in comparators::all_comparators() {
        let their = c.alexnet_adp().unwrap();
        assert!(
            ours_alex.value() < their,
            "NP-CGRA AlexNet ADP {:.1} must beat {} ({their:.1})",
            ours_alex.value(),
            c.name
        );
    }
    assert!(
        alex_ms < comparators::auto_tuning().alexnet_conv_ms.unwrap(),
        "faster than the auto-tuning CGRA"
    );
    assert!(
        alex_ms > comparators::eyeriss_v2().alexnet_conv_ms.unwrap(),
        "slower than Eyeriss v2 in raw latency"
    );
    // Paper's absolute: 40.07 ms; ours must land in the same band.
    assert!((25.0..55.0).contains(&alex_ms), "AlexNet {alex_ms} ms (paper 40.07)");
}

/// Table 6 NP-CGRA absolute rows: MobileNet V1 DSC 4.01 ms / ADP 8.60, V2
/// DSC 18.06 ms (band asserts — our simulator vs their RTL measurements).
#[test]
fn table6_np_cgra_absolute_bands() {
    let machine = NpCgra::table4();
    let v1 = models::mobilenet_v1(0.5, 128);
    let t1 = machine.time_model_dsc(&v1).unwrap();
    assert!((2.0..6.0).contains(&t1.ms()), "V1 DSC {} ms (paper 4.01)", t1.ms());

    let v2 = models::mobilenet_v2(1.0, 224);
    let t2 = machine.time_model_dsc(&v2).unwrap();
    assert!((9.0..27.0).contains(&t2.ms()), "V2 DSC {} ms (paper 18.06)", t2.ms());
}

/// §6.3: area overhead 22.2 % at 8×8; Fig. 12's SRAM dominance.
#[test]
fn fig12_area_shape() {
    let model = AreaModel::calibrated();
    let np = model.breakdown(&CgraSpec::np_cgra(8, 8));
    let base = model.breakdown(&npcgra::area::model::baseline_like(8, 8));
    let overhead = np.total() / base.total() - 1.0;
    assert!((overhead - 0.222).abs() < 0.01, "overhead {overhead}");
    assert!(np.sram > np.core(), "SRAM dominates");
    assert!(np.agus > np.pe_array - base.pe_array, "AGUs are the largest core increase");
}
