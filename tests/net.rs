//! Integration tests of the `npcgra-net` TCP front-end: bit-exactness
//! over loopback, typed rejection of malformed frames, slow-loris / idle
//! eviction, mid-flight-disconnect tombstones, tenant auth / rate /
//! quota, net backpressure shedding, and graceful drain on shutdown —
//! all against a real socket pair, no mocks.

use std::sync::Arc;
use std::time::Duration;

use npcgra::net::{frame, ClientError, NetClient, NetConfig, NetServer, TenantSpec};
use npcgra::nn::reference;
use npcgra::serve::{Priority, ServeConfig, Server};
use npcgra::{CgraSpec, ConvLayer, Tensor};

const WAIT: Duration = Duration::from_secs(30);

fn serve_config() -> ServeConfig {
    ServeConfig::for_spec(&CgraSpec::np_cgra(4, 4))
        .with_workers(1)
        .with_max_linger(Duration::from_millis(1))
}

/// A small depthwise layer registered as model 0; returns the pieces a
/// test needs to drive golden comparisons.
fn start_backend(cfg: ServeConfig) -> (Arc<Server>, ConvLayer, Tensor) {
    let server = Arc::new(Server::start(cfg));
    let layer = ConvLayer::depthwise("dw", 3, 10, 10, 3, 1, 1);
    let weights = layer.random_weights(11);
    server.register("dw", layer.clone(), weights.clone()).expect("register");
    (server, layer, weights)
}

/// Unwrap the backend once the front-end released its handle and shut it
/// down ([`Server::shutdown`] consumes by value).
fn finish_backend(server: Arc<Server>) -> npcgra::serve::StatsSnapshot {
    let server = Arc::try_unwrap(server).unwrap_or_else(|_| panic!("front-end still holds the server"));
    server.shutdown()
}

/// Concurrent loopback clients: every reply is bit-exact with the golden
/// reference, carries a non-zero server-assigned request id, and ids are
/// distinct across all requests. Shutdown leaves zero connections.
#[test]
fn loopback_replies_are_bit_exact_with_request_ids() {
    let (server, layer, weights) = start_backend(serve_config());
    let net = NetServer::start(Arc::clone(&server), NetConfig::default()).expect("bind");
    let addr = net.local_addr();

    let mut seen_ids = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for client_id in 0..3u64 {
            let layer = &layer;
            let weights = &weights;
            handles.push(scope.spawn(move || {
                let mut client = NetClient::connect(addr, b"").expect("connect");
                let mut ids = Vec::new();
                for round in 0..4u64 {
                    let ifm = Tensor::random(3, 10, 10, client_id * 100 + round);
                    let golden = reference::run_layer(layer, &ifm, weights).expect("golden");
                    let reply = client.call(0, &ifm, Priority::Interactive, None, WAIT).expect("reply");
                    let resp = reply.result.expect("success");
                    assert_eq!(resp.tensor().expect("consistent"), golden, "client {client_id} round {round}");
                    assert!(reply.request_id > 0, "admitted work carries a request id");
                    assert!(resp.latency_us > 0);
                    ids.push(reply.request_id);
                }
                ids
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect::<Vec<u64>>()
    });
    seen_ids.sort_unstable();
    let total = seen_ids.len();
    seen_ids.dedup();
    assert_eq!(seen_ids.len(), total, "request ids are unique");

    let stats = net.shutdown();
    assert_eq!(stats.admitted, 12);
    assert_eq!(stats.replies_tx, 12);
    assert_eq!(stats.active_conns, 0, "no leaked connections");
    let serve_stats = finish_backend(server);
    assert_eq!(serve_stats.completed, 12);
}

/// Garbage bytes get a typed MALFORMED notice, then the server closes —
/// and a client speaking server-only frame kinds gets the same treatment.
#[test]
fn malformed_input_gets_typed_error_then_close() {
    let (server, _, _) = start_backend(serve_config().with_workers(0));
    let net = NetServer::start(Arc::clone(&server), NetConfig::default()).expect("bind");

    // Arbitrary garbage: rejected at the magic check.
    let mut client = NetClient::connect(net.local_addr(), b"").expect("connect");
    client.send_raw(b"GET / HTTP/1.1\r\n\r\n").expect("write");
    match client.recv_tag(1, WAIT) {
        Err(ClientError::ServerClosed { code, message }) => {
            assert_eq!(code, frame::code::MALFORMED);
            assert!(message.contains("magic"), "diagnostic names the violation: {message}");
        }
        other => panic!("expected a typed close, got {other:?}"),
    }

    // A syntactically valid frame of a kind only servers send.
    let mut client = NetClient::connect(net.local_addr(), b"").expect("connect");
    client
        .send_frame(&frame::WireFrame::Error {
            code: frame::code::OK,
            message: "i am a server".into(),
        })
        .expect("write");
    match client.recv_tag(1, WAIT) {
        Err(ClientError::ServerClosed { code, .. }) => assert_eq!(code, frame::code::MALFORMED),
        other => panic!("expected a typed close, got {other:?}"),
    }

    // An oversized frame against a tightened payload bound.
    drop(net);
    let net = NetServer::start(Arc::clone(&server), NetConfig::default().with_max_frame_bytes(64)).expect("bind");
    let mut client = NetClient::connect(net.local_addr(), b"").expect("connect");
    let big = Tensor::random(4, 16, 16, 1);
    client.submit(0, &big, Priority::Interactive, None).expect("write");
    match client.recv_tag(1, WAIT) {
        Err(ClientError::ServerClosed { code, message }) => {
            assert_eq!(code, frame::code::MALFORMED);
            assert!(message.contains("exceeds bound"), "{message}");
        }
        other => panic!("expected a typed close, got {other:?}"),
    }

    let stats = net.shutdown();
    assert_eq!(stats.rejected_malformed, 1);
    assert_eq!(stats.active_conns, 0);
    finish_backend(server);
}

/// A connection that trickles half a frame and stops is evicted once the
/// read timeout expires; a connection that goes silent with nothing in
/// flight is evicted by the idle timeout.
#[test]
fn slow_loris_and_idle_connections_are_evicted() {
    let (server, _, _) = start_backend(serve_config().with_workers(0));
    let net = NetServer::start(
        Arc::clone(&server),
        NetConfig::default()
            .with_read_timeout(Some(Duration::from_millis(100)))
            .with_idle_timeout(Some(Duration::from_millis(200))),
    )
    .expect("bind");

    // Slow loris: the magic prefix alone, then silence.
    let mut loris = NetClient::connect(net.local_addr(), b"").expect("connect");
    loris.send_raw(b"NPC").expect("write");
    match loris.recv_tag(1, WAIT) {
        Err(ClientError::Io(_)) | Err(ClientError::ServerClosed { .. }) => {}
        other => panic!("expected eviction, got {other:?}"),
    }

    // Idle: connect and never speak.
    let mut idle = NetClient::connect(net.local_addr(), b"").expect("connect");
    match idle.recv_tag(1, WAIT) {
        Err(ClientError::Io(_)) => {}
        other => panic!("expected idle eviction, got {other:?}"),
    }

    let stats = net.shutdown();
    assert_eq!(stats.evicted_slow_loris, 1);
    assert_eq!(stats.evicted_idle, 1);
    assert_eq!(stats.active_conns, 0);
    finish_backend(server);
}

/// Hanging up with requests in flight tombstones them: the reply slots
/// resolve through the serving core's late-reply accounting, tenant
/// quota slots come back, and nothing leaks.
#[test]
fn midflight_disconnect_tombstones_inflight_work() {
    // Zero workers: admitted work can never complete, so the requests are
    // guaranteed to still be in flight when the client vanishes.
    let (server, _, _) = start_backend(serve_config().with_workers(0));
    let net = NetServer::start(Arc::clone(&server), NetConfig::default()).expect("bind");

    let mut client = NetClient::connect(net.local_addr(), b"").expect("connect");
    for seed in 0..3 {
        client
            .submit(0, &Tensor::random(3, 10, 10, seed), Priority::Interactive, None)
            .expect("submit");
    }
    // Give the reactor time to admit all three, then vanish.
    let deadline = std::time::Instant::now() + WAIT;
    while net.stats().admitted < 3 {
        assert!(std::time::Instant::now() < deadline, "requests never admitted");
        std::thread::sleep(Duration::from_millis(5));
    }
    client.hangup();

    let deadline = std::time::Instant::now() + WAIT;
    while net.stats().midflight_disconnects < 1 {
        assert!(std::time::Instant::now() < deadline, "disconnect never observed");
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = net.shutdown();
    assert_eq!(stats.midflight_disconnects, 1);
    assert_eq!(stats.tombstoned_inflight, 3);
    assert_eq!(stats.active_conns, 0);
    // The tombstoned requests surface as shutdown rejections in the core,
    // not as leaked reply slots.
    let serve_stats = finish_backend(server);
    assert_eq!(serve_stats.rejected_shutdown, 3);
}

/// Tenant gates in order: unknown tokens are refused, the token bucket
/// enforces the sustained rate, the in-flight quota caps concurrency —
/// and every outcome lands in the serving core's per-tenant counters.
#[test]
fn tenant_auth_rate_and_quota_are_enforced() {
    let (server, _, _) = start_backend(serve_config().with_workers(0));
    let net = NetServer::start(
        Arc::clone(&server),
        NetConfig::default()
            // Refills effectively never: the burst is the whole budget.
            .with_tenant(TenantSpec::open("bursty", b"tok-bursty").with_rate(1e-6, 2))
            .with_tenant(TenantSpec::open("narrow", b"tok-narrow").with_max_inflight(1)),
    )
    .expect("bind");
    let ifm = Tensor::random(3, 10, 10, 5);

    // Unknown token.
    let mut stranger = NetClient::connect(net.local_addr(), b"who").expect("connect");
    let reply = stranger.call(0, &ifm, Priority::Interactive, None, WAIT).expect("reply");
    assert_eq!(reply.result.unwrap_err().0, frame::code::BAD_TOKEN);

    // Rate: two fit the burst, the third finds the bucket empty.
    let mut bursty = NetClient::connect(net.local_addr(), b"tok-bursty").expect("connect");
    for _ in 0..2 {
        bursty.submit(0, &ifm, Priority::Interactive, None).expect("submit");
    }
    let tag = bursty.submit(0, &ifm, Priority::Interactive, None).expect("submit");
    let reply = bursty.recv_tag(tag, WAIT).expect("reply");
    assert_eq!(reply.result.unwrap_err().0, frame::code::RATE_LIMITED);

    // Quota: with zero workers the first request pins the only slot.
    let mut narrow = NetClient::connect(net.local_addr(), b"tok-narrow").expect("connect");
    narrow.submit(0, &ifm, Priority::Interactive, None).expect("submit");
    let tag = narrow.submit(0, &ifm, Priority::Interactive, None).expect("submit");
    let reply = narrow.recv_tag(tag, WAIT).expect("reply");
    assert_eq!(reply.result.unwrap_err().0, frame::code::QUOTA);

    let stats = net.shutdown();
    assert_eq!(stats.rejected_bad_token, 1);
    assert_eq!(stats.rejected_rate_limited, 1);
    assert_eq!(stats.rejected_quota, 1);
    assert_eq!(stats.active_conns, 0);

    // The per-tenant story in the one StatsSnapshot.
    let serve_stats = finish_backend(server);
    let by_name = |n: &str| {
        serve_stats
            .tenants
            .iter()
            .find(|t| t.name == n)
            .unwrap_or_else(|| panic!("tenant {n} missing from snapshot"))
            .clone()
    };
    let bursty = by_name("bursty");
    assert_eq!(bursty.admitted, 2);
    assert_eq!(bursty.rate_limited, 1);
    let narrow = by_name("narrow");
    assert_eq!(narrow.admitted, 1);
    assert_eq!(narrow.rejected, 1, "quota rejections count as rejected");
}

/// Accept pressure climbs the brownout ladder: at ≥75 % of the connection
/// cap, best-effort requests shed with a typed BACKPRESSURE rejection
/// while interactive requests still go through.
#[test]
fn backpressure_sheds_best_effort_before_interactive() {
    let (server, layer, weights) = start_backend(serve_config());
    let net = NetServer::start(Arc::clone(&server), NetConfig::default().with_max_conns(4)).expect("bind");

    // Three of four slots: 75 % → ShedBestEffort.
    let mut a = NetClient::connect(net.local_addr(), b"").expect("connect");
    let mut _b = NetClient::connect(net.local_addr(), b"").expect("connect");
    let mut _c = NetClient::connect(net.local_addr(), b"").expect("connect");
    // Let the reactor accept all three before submitting.
    let deadline = std::time::Instant::now() + WAIT;
    while net.stats().accepted < 3 {
        assert!(std::time::Instant::now() < deadline, "connections never accepted");
        std::thread::sleep(Duration::from_millis(5));
    }

    let ifm = Tensor::random(3, 10, 10, 9);
    let reply = a.call(0, &ifm, Priority::BestEffort, None, WAIT).expect("reply");
    let (code, message) = reply.result.expect_err("best-effort is shed under accept pressure");
    assert_eq!(code, frame::code::BACKPRESSURE);
    assert!(message.contains("ShedBestEffort"), "{message}");

    let golden = reference::run_layer(&layer, &ifm, &weights).expect("golden");
    let reply = a.call(0, &ifm, Priority::Interactive, None, WAIT).expect("reply");
    assert_eq!(
        reply.result.expect("interactive admitted").tensor().expect("consistent"),
        golden
    );

    let stats = net.shutdown();
    assert_eq!(stats.rejected_backpressure, 1);
    assert_eq!(stats.admitted, 1);
    finish_backend(server);
}

/// Beyond the connection cap, a new socket gets a typed backpressure
/// notice and an immediate close instead of a silent refusal.
#[test]
fn over_cap_connections_get_a_typed_notice() {
    let (server, _, _) = start_backend(serve_config().with_workers(0));
    let net = NetServer::start(Arc::clone(&server), NetConfig::default().with_max_conns(1)).expect("bind");

    let _first = NetClient::connect(net.local_addr(), b"").expect("connect");
    let deadline = std::time::Instant::now() + WAIT;
    while net.stats().accepted < 1 {
        assert!(std::time::Instant::now() < deadline, "first connection never accepted");
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut second = NetClient::connect(net.local_addr(), b"").expect("connect");
    match second.recv_tag(1, WAIT) {
        Err(ClientError::ServerClosed { code, .. }) => assert_eq!(code, frame::code::BACKPRESSURE),
        other => panic!("expected a typed refusal, got {other:?}"),
    }
    let stats = net.shutdown();
    assert_eq!(stats.rejected_conns, 1);
    finish_backend(server);
}

/// Shutdown is a drain: work admitted before the shutdown keeps its
/// reply, the client sees a Bye, and requests sent after the drain began
/// get a typed DRAINING rejection.
#[test]
fn shutdown_drains_admitted_work() {
    let (server, layer, weights) = start_backend(serve_config());
    let net = NetServer::start(Arc::clone(&server), NetConfig::default()).expect("bind");
    let addr = net.local_addr();

    let mut client = NetClient::connect(addr, b"").expect("connect");
    let ifm = Tensor::random(3, 10, 10, 42);
    let golden = reference::run_layer(&layer, &ifm, &weights).expect("golden");
    let tag = client.submit(0, &ifm, Priority::Interactive, None).expect("submit");
    let deadline = std::time::Instant::now() + WAIT;
    while net.stats().admitted < 1 {
        assert!(std::time::Instant::now() < deadline, "request never admitted");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Shut down while the reply is (possibly) still in flight; the drain
    // must deliver it anyway.
    let shutdown = std::thread::spawn(move || net.shutdown());
    let reply = client.recv_tag(tag, WAIT).expect("drained reply");
    assert_eq!(
        reply.result.expect("admitted work completes").tensor().expect("consistent"),
        golden
    );

    let stats = shutdown.join().expect("shutdown thread");
    assert_eq!(stats.admitted, 1);
    assert_eq!(stats.replies_tx, 1);
    assert_eq!(stats.active_conns, 0, "drain leaves no connections behind");
    finish_backend(server);
}
