#!/usr/bin/env bash
# Full verification: format, lints, tests (incl. the heavy full-size ones),
# examples, evaluation binaries, benches and a serving smoke run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== preflight (offline dependency resolution) =="
# Every dependency is a path crate (see vendor/README.md); resolution must
# never touch a registry. If this fails, a registry dependency crept back in
# and the default registry (see ~/.cargo/config.toml) is unreachable from
# this environment — vendor the crate under vendor/ instead.
if ! cargo metadata --offline --format-version 1 >/dev/null 2>&1; then
  echo "error: dependency resolution needs network access (registry unreachable)." >&2
  echo "       All external crates must be vendored as path dependencies under vendor/ —" >&2
  echo "       see vendor/README.md for the pattern." >&2
  exit 1
fi

echo "== fmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests =="
cargo test --workspace

echo "== serving integration tests =="
cargo test -p npcgra --test serving

echo "== heavy tests (full-size Table 5 layers) =="
cargo test --workspace --release -- --ignored

echo "== examples =="
for ex in quickstart schedule_viewer fir_filter; do
  cargo run --release --example "$ex" >/dev/null
done
cargo run --release --example mobilenet >/dev/null
cargo run --release --example alexnet >/dev/null

echo "== evaluation binaries =="
for b in table1 table3 table5 table6 fig12 fig_schedules fig_layouts \
         batching_gain energy_table width_study mapping_gap ccf_check; do
  cargo run --release -q -p npcgra-eval --bin "$b" >/dev/null
done

echo "== serve-bench smoke run (both tiers + wire path + journal cost, archived to BENCH_serve.json) =="
cargo run --release -q -p npcgra-cli -- serve-bench \
  --machine 4x4 --workers 4 --clients 8 --requests 80 \
  --tier both --net --net-conns 4 --journal --emit-json BENCH_serve.json >/dev/null

echo "== chaos soak (fault injection + worker panic must be survived) =="
cargo run --release -q -p npcgra-cli -- chaos-bench \
  --machine 4x4 --workers 4 --clients 8 --seconds 10 \
  --fault-rate 1e-4 --panic-worker 0 >/dev/null

echo "== detection soak (silent corruption must be caught and healed) =="
cargo run --release -q -p npcgra-cli -- chaos-bench \
  --machine 4x4 --workers 4 --clients 8 --seconds 8 \
  --fault-rate 5e-4 --assert-detection >/dev/null

echo "== fast-tier detection soak (ABFT must catch corruption on the fast tier too) =="
cargo run --release -q -p npcgra-cli -- chaos-bench \
  --machine 4x4 --workers 4 --clients 8 --seconds 8 \
  --fault-rate 5e-4 --tier fast --assert-detection >/dev/null

echo "== gray soak (wedges/stalls/slowdowns must be preempted and recovered) =="
cargo run --release -q -p npcgra-cli -- chaos-bench --gray \
  --workers 4 --clients 6 --seconds 4 --assert-liveness >/dev/null

echo "== gray control (armed watchdog must never preempt a healthy fleet) =="
cargo run --release -q -p npcgra-cli -- chaos-bench --gray \
  --gray-rate 0 --workers 4 --clients 6 --seconds 2 --assert-liveness >/dev/null

echo "== overload soak (2x capacity; admitted Interactive must hold its SLO) =="
cargo run --release -q -p npcgra-cli -- chaos-bench --overload \
  --machine 4x4 --workers 4 --clients 8 --seconds 4 --assert-slo >/dev/null

echo "== pipeline soak (stage kill/wedge/corruption must heal from checkpoints, bit-exact) =="
# Zero-overload control for the combined gate below: no deadlines, no
# brownout, no watchdog — healing alone must carry the soak.
cargo run --release -q -p npcgra-cli -- chaos-bench --pipeline \
  --stages 4 --spares 1 --checkpoint-every 1 --requests 24 --assert-liveness >/dev/null

echo "== pipeline overload soak (2x capacity + stage wedge/kill; SLO, watchdog and brownout must hold) =="
cargo run --release -q -p npcgra-cli -- chaos-bench --pipeline --overload \
  --assert-slo >/dev/null

echo "== net soak (2x wire capacity over 500+ connections + slow-loris/malformed/disconnect attackers) =="
# The soak's built-in phase 0 is the zero-chaos control: the same inputs
# through the socket front-end and through in-process submit must produce
# bit-identical tensors before any attacker population comes up.
# --slo-ms 400: wire p99 sits near 20ms, but the timing calibration runs
# on the shared CI box — 400ms absorbs noisy-neighbor slowdowns without
# weakening the no-lost/no-wrong/every-attacker-caught gates.
cargo run --release -q -p npcgra-cli -- chaos-bench --net \
  --machine 4x4 --workers 4 --seconds 4 --slo-ms 400 --assert-slo >/dev/null

echo "== crash soak (journaled core hard-killed; keys must survive exactly-once) =="
# The net soak above stays the no-journal control for the wire path; this
# gate hard-kills the journaled core three times under keyed load and
# fails unless nothing admitted is lost, nothing executes twice, every
# reply is bit-exact, and the journal-off control phase shows the journal
# is inert when disabled.
cargo run --release -q -p npcgra-cli -- chaos-bench --crash \
  --machine 4x4 --workers 4 --assert-durability >/dev/null

echo "== benches (quick pass) =="
cargo bench -p npcgra-bench >/dev/null

echo "ALL CHECKS PASSED"
