#!/usr/bin/env bash
# Full verification: format, lints, tests (incl. the heavy full-size ones),
# examples, evaluation binaries and benches.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests =="
cargo test --workspace

echo "== heavy tests (full-size Table 5 layers) =="
cargo test --workspace --release -- --ignored

echo "== examples =="
for ex in quickstart schedule_viewer fir_filter; do
  cargo run --release --example "$ex" >/dev/null
done
cargo run --release --example mobilenet >/dev/null
cargo run --release --example alexnet >/dev/null

echo "== evaluation binaries =="
for b in table1 table3 table5 table6 fig12 fig_schedules fig_layouts \
         batching_gain energy_table width_study mapping_gap ccf_check; do
  cargo run --release -q -p npcgra-eval --bin "$b" >/dev/null
done

echo "== benches (quick pass) =="
cargo bench -p npcgra-bench >/dev/null

echo "ALL CHECKS PASSED"
