//! Offline stand-in for the subset of `criterion` 0.5 this workspace uses.
//!
//! Each benchmark is warmed up briefly, then measured in a short
//! time-boxed window; the mean wall-clock time per iteration (and
//! throughput, when configured) is printed in a `name  time: …` line
//! loosely matching criterion's output. There is no statistical analysis,
//! no HTML report and no baseline comparison — the goal is a fast,
//! dependency-free `cargo bench` that still produces comparable numbers
//! run-over-run.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    /// Measurement window per benchmark.
    measure_for: Duration,
    /// Substring filter from the command line, if any.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as the first free
        // argument; harness flags like `--bench` are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            measure_for: Duration::from_millis(120),
            filter,
        }
    }
}

impl Criterion {
    /// Begin a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self {
        run_one(self, id.as_ref(), None, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count (accepted for API compatibility; the stand-in
    /// is time-boxed rather than sample-counted).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measure_for = d.min(Duration::from_secs(2));
        self
    }

    /// Annotate subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self {
        let id = id.as_ref();
        let full = format!("{}/{id}", self.name);
        run_one(self.criterion, &full, self.throughput, f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    measure_for: Duration,
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Measure a closure: brief warm-up, then as many timed iterations as
    /// fit the measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one iteration minimum, up to a quarter window.
        let warm_deadline = Instant::now() + self.measure_for / 4;
        loop {
            std::hint::black_box(f());
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let started = Instant::now();
        let deadline = started + self.measure_for;
        let mut iters: u64 = 0;
        loop {
            std::hint::black_box(f());
            iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
        let elapsed = started.elapsed();
        self.iters = iters;
        self.mean_ns = elapsed.as_nanos() as f64 / iters as f64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(c: &mut Criterion, id: &str, throughput: Option<Throughput>, mut f: F) {
    if let Some(filter) = &c.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    let mut b = Bencher {
        measure_for: c.measure_for,
        mean_ns: f64::NAN,
        iters: 0,
    };
    f(&mut b);
    let mut line = format!("{id:<50} time: {:>12} ({} iters)", format_ns(b.mean_ns), b.iters);
    match throughput {
        Some(Throughput::Elements(n)) if b.mean_ns > 0.0 => {
            let per_sec = n as f64 * 1e9 / b.mean_ns;
            line.push_str(&format!("  thrpt: {}/s", format_count(per_sec)));
        }
        Some(Throughput::Bytes(n)) if b.mean_ns > 0.0 => {
            let per_sec = n as f64 * 1e9 / b.mean_ns;
            line.push_str(&format!("  thrpt: {}B/s", format_count(per_sec)));
        }
        _ => {}
    }
    println!("{line}");
}

fn format_ns(ns: f64) -> String {
    if ns.is_nan() {
        "no b.iter() call".to_string()
    } else if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn format_count(v: f64) -> String {
    if v < 1e3 {
        format!("{v:.1} ")
    } else if v < 1e6 {
        format!("{:.2} K", v / 1e3)
    } else if v < 1e9 {
        format!("{:.2} M", v / 1e6)
    } else {
        format!("{:.2} G", v / 1e9)
    }
}

/// Define a benchmark group function from a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` from one or more group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            measure_for: Duration::from_millis(5),
            mean_ns: f64::NAN,
            iters: 0,
        };
        b.iter(|| std::hint::black_box(1 + 1));
        assert!(b.iters > 0);
        assert!(b.mean_ns.is_finite() && b.mean_ns >= 0.0);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion {
            measure_for: Duration::from_millis(1),
            filter: None,
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(10)
            .throughput(Throughput::Elements(100))
            .bench_function("b", |b| {
                b.iter(|| 2 * 2);
            });
        g.finish();
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            measure_for: Duration::from_millis(50),
            filter: Some("nomatch".into()),
        };
        let started = Instant::now();
        c.bench_function("skipped/bench", |b| b.iter(|| 1));
        assert!(started.elapsed() < Duration::from_millis(40), "filtered bench must not run");
    }

    #[test]
    fn formatting_scales() {
        assert!(format_ns(12.0).contains("ns"));
        assert!(format_ns(12_000.0).contains("µs"));
        assert!(format_ns(12_000_000.0).contains("ms"));
        assert!(format_count(5e6).contains('M'));
    }
}
