//! Offline stand-in for the subset of `rand` 0.8 this workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over integer ranges.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic,
//! high-quality, and dependency-free. The value stream differs from the
//! real `rand::StdRng` (which is ChaCha-based); the workspace only relies
//! on seed-determinism, never on specific values.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The raw generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// A uniform sample from an integer range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integer types with uniform inclusive-range sampling.
pub trait SampleUniform: Copy {
    /// A uniform draw from `low..=high`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let span = (high as i128) - (low as i128) + 1;
                // Modulo draw: bias is < 2^-64 · span, irrelevant for test data.
                let off = (rng.next_u64() as i128).rem_euclid(span);
                ((low as i128) + off) as $t
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl SampleUniform for u64 {
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        assert!(low <= high, "cannot sample empty range");
        let span = (high as u128) - (low as u128) + 1;
        let off = (rng.next_u64() as u128) % span;
        ((low as u128) + off) as u64
    }
}

impl<T: SampleUniform + PartialOrd + StepDown> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_inclusive(self.start, self.end.step_down(), rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Helper: the predecessor of a value (for half-open upper bounds).
pub trait StepDown {
    /// `self - 1`.
    fn step_down(self) -> Self;
}

macro_rules! impl_step {
    ($($t:ty),*) => {$(
        impl StepDown for $t {
            fn step_down(self) -> Self {
                self - 1
            }
        }
    )*};
}

impl_step!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for the real
    /// ChaCha-based `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding for xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<i16> = (0..32).map(|_| a.gen_range(-64..=64)).collect();
        let ys: Vec<i16> = (0..32).map(|_| b.gen_range(-64..=64)).collect();
        let zs: Vec<i16> = (0..32).map(|_| c.gen_range(-64..=64)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i16 = rng.gen_range(-64..=64);
            assert!((-64..=64).contains(&v));
            let u: usize = rng.gen_range(3..7);
            assert!((3..7).contains(&u));
        }
    }

    #[test]
    fn covers_full_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..=4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
