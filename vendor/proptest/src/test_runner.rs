//! The deterministic case runner and its RNG.

use std::fmt;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case was discarded by `prop_assume!`.
    Reject(String),
}

impl TestCaseError {
    /// A failure with a message.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A discarded case (unsatisfied precondition).
    #[must_use]
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
        }
    }
}

/// Deterministic xoshiro256** generator used for sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator derived from a seed (SplitMix64 expansion).
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform index in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample an index from an empty set");
        (self.next_u64() % n as u64) as usize
    }
}

/// FNV-1a hash of the test path, so each test gets its own seed stream.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run `config.cases` deterministic cases of a property, panicking on the
/// first failure with enough context to reproduce it.
///
/// # Panics
///
/// Panics when a case fails, or when `prop_assume!` rejects too large a
/// fraction of generated cases.
pub fn run_cases(config: &ProptestConfig, name: &str, mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
    let seed_base = fnv1a(name);
    let mut passed: u32 = 0;
    let mut attempt: u64 = 0;
    let max_attempts = u64::from(config.cases) * 64;
    while passed < config.cases {
        assert!(
            attempt < max_attempts,
            "{name}: too many rejected cases ({attempt} attempts for {passed}/{} passes)",
            config.cases
        );
        let mut rng = TestRng::from_seed(seed_base ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(message)) => {
                panic!("{name}: case {passed} (attempt {attempt}) failed\n{message}")
            }
        }
        attempt += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_configured_number_of_cases() {
        let mut n = 0;
        run_cases(&ProptestConfig::with_cases(17), "t", |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 17);
    }

    #[test]
    fn rejections_do_not_count() {
        let mut n = 0u32;
        run_cases(&ProptestConfig::with_cases(10), "t", |_| {
            n += 1;
            if n.is_multiple_of(2) {
                Err(TestCaseError::reject("even"))
            } else {
                Ok(())
            }
        });
        assert!(n >= 19, "10 passes need at least 19 attempts, got {n}");
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_panic() {
        run_cases(&ProptestConfig::default(), "t", |_| Err(TestCaseError::fail("boom")));
    }

    #[test]
    #[should_panic(expected = "too many rejected")]
    fn endless_rejection_is_detected() {
        run_cases(&ProptestConfig::with_cases(4), "t", |_| Err(TestCaseError::reject("never")));
    }

    #[test]
    fn rng_streams_differ_per_test_name() {
        let a = TestRng::from_seed(fnv1a("a")).next_u64();
        let b = TestRng::from_seed(fnv1a("b")).next_u64();
        assert_ne!(a, b);
    }
}
