//! `any::<T>()` — canonical strategies for primitive types and tuples.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (`any::<bool>()`, `any::<i16>()`, …).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}

impl_arbitrary_tuple!(A);
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);
impl_arbitrary_tuple!(A, B, C, D, E);
impl_arbitrary_tuple!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_is_deterministic_per_rng_state() {
        let mut a = TestRng::from_seed(5);
        let mut b = TestRng::from_seed(5);
        for _ in 0..64 {
            assert_eq!(<(u8, u8, bool)>::arbitrary(&mut a), <(u8, u8, bool)>::arbitrary(&mut b));
        }
    }

    #[test]
    fn bool_takes_both_values() {
        let mut r = TestRng::from_seed(1);
        let vs: Vec<bool> = (0..64).map(|_| bool::arbitrary(&mut r)).collect();
        assert!(vs.contains(&true) && vs.contains(&false));
    }
}
