//! Collection strategies (`collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy for `Vec<T>` with a length drawn from `size` and elements
/// drawn from `element`.
#[must_use]
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "cannot sample empty length range {size:?}");
    VecStrategy { element, size }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.clone().sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn lengths_respect_bounds() {
        let strat = vec(any::<i16>(), 1..20);
        let mut rng = TestRng::from_seed(3);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((1..20).contains(&v.len()));
        }
    }

    #[test]
    fn nested_tuples_work() {
        let strat = vec((1u64..1000, 1u64..1000), 1..20);
        let mut rng = TestRng::from_seed(4);
        let v = strat.sample(&mut rng);
        assert!(v.iter().all(|(a, b)| (1..1000).contains(a) && (1..1000).contains(b)));
    }
}
