//! Offline stand-in for the subset of `proptest` 1.x this workspace uses.
//!
//! Implements the `proptest!` test macro, the `prop_assert*!` /
//! `prop_assume!` / `prop_oneof!` macros, `any::<T>()` for primitives and
//! tuples, integer-range strategies, `Just`, `prop_map`,
//! `prop_filter_map`, and `collection::vec` — everything the repo's
//! property tests exercise.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case panics immediately with the case
//!   index; runs are deterministic (the RNG is seeded from the test name
//!   and case index), so re-running the test reproduces the failure.
//! - **Strategies are samplers.** [`strategy::Strategy`] is a plain
//!   `sample(&mut TestRng) -> Value` — no lazy value trees.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything the property tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// The `prop::` shorthand module (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define deterministic property tests.
///
/// Mirrors the real macro's surface: an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions whose
/// arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal expansion of one or more test functions (do not use directly).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_cases(&__config, concat!(module_path!(), "::", stringify!($name)), |__rng| {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// Fail the current case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            __l,
            __r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            __l
        );
    }};
}

/// Discard the current case (resampled, not counted) unless the
/// precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// A strategy choosing uniformly among the listed strategies (all must
/// yield the same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}
