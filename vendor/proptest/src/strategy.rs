//! Sampling strategies: integer ranges, tuples, `Just`, combinators.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A generator of test values.
///
/// Unlike the real proptest, a strategy is a plain sampler: no value
/// trees, no shrinking.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Transform generated values, resampling when the closure declines.
    fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap { inner: self, f, reason }
    }

    /// Type-erase the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            sampler: Box::new(move |rng| self.sample(rng)),
        }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// The result of [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map({:?}) rejected 10000 consecutive samples", self.reason);
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    sampler: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.sampler)(rng)
    }
}

/// A uniform choice among several strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the type-erased alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.index(self.options.len());
        self.options[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range {self:?}");
                let span = (self.end as i128) - (self.start as i128);
                let off = (rng.next_u64() as i128).rem_euclid(span);
                ((self.start as i128) + off) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;

    fn sample(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range {self:?}");
        let span = (self.end as u128) - (self.start as u128);
        let off = (rng.next_u64() as u128) % span;
        ((self.start as u128) + off) as u64
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(42)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3usize..9).sample(&mut r);
            assert!((3..9).contains(&v));
            let w = (0u64..(1u64 << 36)).sample(&mut r);
            assert!(w < (1u64 << 36));
            let x = (-5i16..5).sample(&mut r);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn map_and_tuples_compose() {
        let strat = (0usize..3, 0usize..3).prop_map(|(a, b)| a * 10 + b);
        let mut r = rng();
        for _ in 0..100 {
            let v = strat.sample(&mut r);
            assert!(v % 10 < 3 && v / 10 < 3);
        }
    }

    #[test]
    fn filter_map_resamples() {
        let strat = (0usize..10).prop_filter_map("even", |v| (v % 2 == 0).then_some(v));
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(strat.sample(&mut r) % 2, 0);
        }
    }

    #[test]
    fn union_uses_every_alternative() {
        let u = Union::new(vec![Just(1usize).boxed(), Just(2).boxed(), Just(3).boxed()]);
        let mut r = rng();
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[u.sample(&mut r)] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
