//! Kernel mappings for NP-CGRA (§IV–V).
//!
//! A *mapping* turns one convolution layer into a stream of CGRA work:
//!
//! 1. a **tiling** ([`tiling`]) that splits the layer into blocks (data that
//!    fits local memory) of tiles (work done simultaneously by the array);
//! 2. **data layouts** ([`layout`]) that place each block's IFM/weight data
//!    into H-MEM/V-MEM bank images exactly as Figs. 9–11 prescribe, so the
//!    AGU algorithms hit the right words with zero bank conflicts;
//! 3. a **tile schedule** (the [`TileMapping`] implementations in [`pwc`],
//!    [`dwc_general`], [`dwc_s1`] and [`matmul_dwc`]) that produces, for
//!    every cycle, each PE's instruction and each AGU's request — the AGU
//!    side delegating to the `npcgra-agu` hardware model.
//!
//! The cycle-accurate simulator (`npcgra-sim`) executes these mappings; the
//! closed-form latency models of Table 3 live in [`perf`] and are validated
//! against the simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod act;
pub mod config;
pub mod dwc_batched;
pub mod dwc_general;
pub mod dwc_s1;
pub mod layout;
pub mod matmul_dwc;
pub mod perf;
pub mod program;
pub mod pwc;
pub mod tiling;

pub use config::{CompileError, ConfigImage, CycleConfig};
pub use dwc_batched::{BatchedDwcS1Mapping, DwcS1BatchedLayerMap};
pub use dwc_general::DwcGeneralMapping;
pub use dwc_s1::DwcS1Mapping;
pub use matmul_dwc::MatmulDwcMapping;
pub use program::{BlockProgram, StorePort, TileMapping};
pub use pwc::PwcMapping;
pub use tiling::BlockCfg;
