//! The interface between mappings and the cycle-accurate simulator.
//!
//! A [`BlockProgram`] is everything the machine needs to run one block: the
//! bank images DMA deposits into H-MEM/V-MEM, the GRF contents, the tile
//! sequence, and a [`TileMapping`] that answers per-cycle questions (PE
//! instructions, AGU requests, GRF index, store routing) from the controller
//! counters.

use npcgra_agu::{MemRequest, TileClock, TilePos};
use npcgra_arch::Instruction;
use npcgra_nn::Word;

use crate::layout::OfmSlot;

/// Where a row's store port takes its data in a store cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorePort {
    /// The PE column whose output register is stored this cycle (every row
    /// port stores its own row's PE in that column).
    pub column: usize,
}

/// Per-cycle behaviour of one tile schedule.
///
/// All methods are pure functions of the controller counters, mirroring the
/// hardware: the configuration memory is indexed by the controller, and the
/// AGUs compute addresses from the shared counters.
pub trait TileMapping {
    /// Cycles in counter-phase `t_wrap`, or `None` when the tile is done.
    fn phase_len(&self, t_wrap: u64) -> Option<u64>;

    /// Total tile latency (must equal the sum of `phase_len`s).
    fn tile_latency(&self) -> u64;

    /// The instruction PE `(r, c)` executes this cycle.
    fn pe_instruction(&self, clock: TileClock, pos: TilePos, r: usize, c: usize) -> Instruction;

    /// The H-AGU request of row port `aid_r` this cycle.
    fn h_request(&self, clock: TileClock, pos: TilePos, aid_r: usize) -> Option<MemRequest>;

    /// The V-AGU request of column port `aid_c` this cycle.
    fn v_request(&self, clock: TileClock, pos: TilePos, aid_c: usize) -> Option<MemRequest>;

    /// GRF broadcast index this cycle, if the mapping uses the GRF.
    fn grf_index(&self, _clock: TileClock) -> Option<usize> {
        None
    }

    /// Which Weight-Buffer slot fills the GRF for this tile (ignored when
    /// the block carries no Weight Buffer). Channel-batched DWC switches
    /// kernels per tile through this hook (§5.4).
    fn grf_slot(&self, _pos: TilePos) -> usize {
        0
    }

    /// Store routing for H-store cycles: which PE column drives the row
    /// store ports.
    fn store_port(&self, clock: TileClock) -> Option<StorePort>;

    /// Whether this mapping needs the V-bus/V-MEM extension.
    fn uses_vbus(&self) -> bool {
        true
    }
}

/// One block of work, ready for the machine.
pub struct BlockProgram {
    /// Human-readable tag for error messages and traces.
    pub label: String,
    /// H-MEM bank images to DMA in (index = bank).
    pub h_banks: Vec<Vec<Word>>,
    /// V-MEM bank images to DMA in (index = bank; empty when unused).
    pub v_banks: Vec<Vec<Word>>,
    /// GRF image (empty when unused).
    pub grf: Vec<Word>,
    /// Weight-Buffer contents: one GRF image per slot. When non-empty, the
    /// controller refills the GRF from slot [`TileMapping::grf_slot`] at
    /// each tile start (the per-channel kernel switch of §5.4).
    pub weight_buffer: Vec<Vec<Word>>,
    /// Block geometry (tiles).
    pub tiles: TilePos,
    /// The per-cycle schedule/AGU oracle.
    pub mapping: Box<dyn TileMapping>,
    /// Where each valid output element rests in the H-MEM OFM region after
    /// the block runs (padding outputs are stored but never extracted).
    pub ofm_slots: Vec<OfmSlot>,
    /// Words DMA moves *in* for this block (IFM + weights; excludes the
    /// zeroed OFM region of the bank images).
    pub dma_in_words: u64,
    /// Words DMA moves *out* (the whole block OFM region, matching the
    /// layer-map timing model).
    pub ofm_words: u64,
}

impl BlockProgram {
    /// Words DMA must move *into* local memory for this block.
    #[must_use]
    pub fn input_words(&self) -> u64 {
        let h: usize = self.h_banks.iter().map(Vec::len).sum();
        let v: usize = self.v_banks.iter().map(Vec::len).sum();
        (h + v + self.grf.len()) as u64
    }

    /// Total compute cycles of the block: tiles × tile latency.
    #[must_use]
    pub fn compute_cycles(&self) -> u64 {
        self.tiles.tiles() as u64 * self.mapping.tile_latency()
    }
}

impl std::fmt::Debug for BlockProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockProgram")
            .field("label", &self.label)
            .field("tiles", &self.tiles)
            .field("compute_cycles", &self.compute_cycles())
            .field("input_words", &self.input_words())
            .field("ofm_words", &self.ofm_words)
            .finish()
    }
}
