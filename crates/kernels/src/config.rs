//! Configuration-memory compilation (§3.3).
//!
//! A real CGRA executes from *configuration memory*: a small store of
//! per-cycle contexts (one encoded instruction per PE plus a few global
//! bits), sequenced by the controller. Table 4 gives NP-CGRA 32 contexts of
//! `36 × #PEs + 8` bits.
//!
//! [`ConfigImage::compile`] lowers a [`TileMapping`]'s schedule into that
//! form: every cycle's PE instructions are **encoded** into their 36-bit
//! words (Fig. 3), identical cycles are deduplicated into shared contexts,
//! and the controller keeps only the per-cycle context index. This both
//! validates that the paper's 32-context budget really fits the shipped
//! mappings and lets the simulator execute from *decoded* words
//! ([`crate::program::TileMapping`] ⇄ bits round trip), closing the ISA
//! loop.
//!
//! PE instructions in all four mappings depend only on the schedule phase —
//! not on the tile coordinates (`tid_r`, `tid_c`), which enter through the
//! AGUs — so one compiled image serves every tile of a layer, exactly as
//! hardware reuses its contexts.

use npcgra_agu::{TileClock, TilePos};
use npcgra_arch::{isa, CgraSpec, Instruction};

use crate::program::TileMapping;

/// One configuration context: the encoded instruction words of every PE
/// (row-major) plus the global per-cycle bits.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CycleConfig {
    /// Encoded 36-bit instruction per PE, row-major.
    pub words: Vec<u64>,
    /// GRF broadcast index for this cycle (the 4 global index bits).
    pub grf_index: Option<u8>,
    /// Global H-MEM streamed-read request bit.
    pub h_read: bool,
    /// Global V-MEM streamed-read request bit.
    pub v_read: bool,
}

/// A compiled tile: deduplicated contexts plus the controller's per-cycle
/// context sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigImage {
    contexts: Vec<CycleConfig>,
    schedule: Vec<usize>,
    rows: usize,
    cols: usize,
}

/// Error from configuration compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    message: String,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "configuration compile error: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

impl ConfigImage {
    /// Compile a tile schedule into configuration memory.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] if the mapping's PE instructions vary with
    /// the tile position (they must not — position enters via the AGUs) or
    /// if the deduplicated context count exceeds the machine's
    /// configuration-memory depth.
    pub fn compile(mapping: &dyn TileMapping, spec: &CgraSpec) -> Result<Self, CompileError> {
        let (rows, cols) = (spec.rows, spec.cols);
        let probe_a = TilePos::first(1, 1);
        let mut probe_b = TilePos::first(2, 2);
        probe_b.tid_r = 1;
        probe_b.tid_c = 1;

        let mut contexts: Vec<CycleConfig> = Vec::new();
        let mut schedule = Vec::new();

        let mut clock = TileClock::start();
        let mut remaining = mapping.phase_len(0).ok_or_else(|| CompileError {
            message: "empty tile".into(),
        })?;
        loop {
            let mut words = Vec::with_capacity(rows * cols);
            let mut h_read = false;
            let mut v_read = false;
            for r in 0..rows {
                for c in 0..cols {
                    let ins = mapping.pe_instruction(clock, probe_a, r, c);
                    if ins != mapping.pe_instruction(clock, probe_b, r, c) {
                        return Err(CompileError {
                            message: format!(
                                "PE({r},{c}) instruction depends on tile position at t_cycle {}",
                                clock.t_cycle
                            ),
                        });
                    }
                    words.push(ins.encode());
                }
            }
            for r in 0..rows {
                if mapping.h_request(clock, probe_a, r).is_some() {
                    h_read = true;
                }
            }
            for c in 0..cols {
                if mapping.v_request(clock, probe_a, c).is_some() {
                    v_read = true;
                }
            }
            let grf_index = mapping
                .grf_index(clock)
                .map(|i| u8::try_from(i).expect("GRF index fits 4 bits"));
            let ctx = CycleConfig {
                words,
                grf_index,
                h_read,
                v_read,
            };
            let idx = match contexts.iter().position(|c| *c == ctx) {
                Some(i) => i,
                None => {
                    contexts.push(ctx);
                    contexts.len() - 1
                }
            };
            schedule.push(idx);

            remaining -= 1;
            if remaining == 0 {
                match mapping.phase_len(clock.t_wrap + 1) {
                    Some(len) => {
                        clock.step(true);
                        remaining = len;
                    }
                    None => break,
                }
            } else {
                clock.step(false);
            }
        }

        if contexts.len() > spec.config_contexts {
            return Err(CompileError {
                message: format!(
                    "{} contexts exceed the configuration memory depth {}",
                    contexts.len(),
                    spec.config_contexts
                ),
            });
        }
        Ok(ConfigImage {
            contexts,
            schedule,
            rows,
            cols,
        })
    }

    /// Number of distinct contexts.
    #[must_use]
    pub fn num_contexts(&self) -> usize {
        self.contexts.len()
    }

    /// Tile latency in cycles (the schedule length).
    #[must_use]
    pub fn tile_cycles(&self) -> usize {
        self.schedule.len()
    }

    /// The context index executed at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` is out of range.
    #[must_use]
    pub fn context_at(&self, cycle: usize) -> &CycleConfig {
        &self.contexts[self.schedule[cycle]]
    }

    /// Decode PE `(r, c)`'s instruction at `cycle` from its stored 36-bit
    /// word — the path hardware takes every cycle.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range or the stored word is malformed
    /// (impossible for compiled images).
    #[must_use]
    pub fn instruction_at(&self, cycle: usize, r: usize, c: usize) -> Instruction {
        let word = self.context_at(cycle).words[r * self.cols + c];
        Instruction::decode(word).expect("compiled words decode")
    }

    /// Disassemble the configuration memory into readable text: one
    /// section per context (with its global bits) and the controller's
    /// per-cycle context sequence. The inverse view of Fig. 3.
    #[must_use]
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, ctx) in self.contexts.iter().enumerate() {
            let _ = writeln!(
                out,
                "context {i}: grf={} h_read={} v_read={}",
                ctx.grf_index.map_or("-".to_string(), |g| g.to_string()),
                u8::from(ctx.h_read),
                u8::from(ctx.v_read)
            );
            for r in 0..self.rows {
                let row: Vec<String> = (0..self.cols)
                    .map(|c| {
                        let word = ctx.words[r * self.cols + c];
                        let ins = Instruction::decode(word).expect("compiled words decode");
                        format!("{:09x}:{ins}", word)
                    })
                    .collect();
                let _ = writeln!(out, "  row {r}: {}", row.join(" | "));
            }
        }
        let seq: Vec<String> = self.schedule.iter().map(ToString::to_string).collect();
        let _ = writeln!(out, "schedule ({} cycles): {}", self.schedule.len(), seq.join(" "));
        out
    }

    /// Bits stored per context: `36 × #PEs + 8` (§6.1).
    #[must_use]
    pub fn bits_per_context(&self) -> u64 {
        u64::from(isa::WIDTH) * (self.rows * self.cols) as u64 + 8
    }

    /// Total configuration bits this image occupies.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.bits_per_context() * self.contexts.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DwcGeneralMapping, DwcS1Mapping, MatmulDwcMapping, PwcMapping};

    fn spec() -> CgraSpec {
        CgraSpec::np_cgra(4, 4)
    }

    #[test]
    fn pwc_compiles_to_four_contexts() {
        // MUL-init, MAC-stream, bubble (no reads) and store (H reads only).
        let m = PwcMapping::new(32, &spec(), 100);
        let img = ConfigImage::compile(&m, &spec()).unwrap();
        assert_eq!(img.num_contexts(), 4);
        assert_eq!(img.tile_cycles() as u64, m.tile_latency());
    }

    #[test]
    fn all_mappings_fit_32_contexts_on_8x8() {
        // The Table 4 configuration-memory depth must hold every shipped
        // mapping on the evaluation machine.
        let spec = CgraSpec::table4();
        let maps: Vec<Box<dyn TileMapping>> = vec![
            Box::new(PwcMapping::new(512, &spec, 0)),
            Box::new(DwcGeneralMapping::new(3, 2, &spec, 0)),
            Box::new(DwcGeneralMapping::new(3, 1, &spec, 0)),
            Box::new(DwcS1Mapping::new(3, &spec, 0)),
            Box::new(MatmulDwcMapping::new(3, &spec, 0)),
        ];
        for m in &maps {
            let img = ConfigImage::compile(m.as_ref(), &spec).unwrap();
            assert!(img.num_contexts() <= 32, "{} contexts", img.num_contexts());
        }
    }

    #[test]
    fn decoded_instructions_match_the_oracle() {
        let s = spec();
        let m = DwcS1Mapping::new(3, &s, 50);
        let img = ConfigImage::compile(&m, &s).unwrap();
        let pos = TilePos::first(1, 1);
        let mut clock = TileClock::start();
        let mut remaining = m.phase_len(0).unwrap();
        for cycle in 0..img.tile_cycles() {
            for r in 0..4 {
                for c in 0..4 {
                    assert_eq!(
                        img.instruction_at(cycle, r, c),
                        m.pe_instruction(clock, pos, r, c),
                        "cycle {cycle} PE({r},{c})"
                    );
                }
            }
            remaining -= 1;
            if remaining == 0 {
                if let Some(len) = m.phase_len(clock.t_wrap + 1) {
                    clock.step(true);
                    remaining = len;
                }
            } else {
                clock.step(false);
            }
        }
    }

    #[test]
    fn grf_indices_recorded() {
        let s = spec();
        let m = DwcS1Mapping::new(3, &s, 0);
        let img = ConfigImage::compile(&m, &s).unwrap();
        let grf_cycles: Vec<u8> = (0..img.tile_cycles()).filter_map(|t| img.context_at(t).grf_index).collect();
        // Boustrophedon order, once per compute cycle.
        assert_eq!(grf_cycles, vec![0, 1, 2, 5, 4, 3, 6, 7, 8]);
    }

    #[test]
    fn disassembly_is_readable_and_complete() {
        let s = spec();
        let m = PwcMapping::new(8, &s, 0);
        let img = ConfigImage::compile(&m, &s).unwrap();
        let text = img.disassemble();
        assert!(text.contains("context 0"));
        assert!(text.contains("mul"));
        assert!(text.contains("mac"));
        assert!(text.contains("schedule (13 cycles)"));
        // One "row" line per array row per context.
        let rows = text.lines().filter(|l| l.trim_start().starts_with("row ")).count();
        assert_eq!(rows, img.num_contexts() * 4);
    }

    #[test]
    fn bits_accounting_matches_spec() {
        let s = CgraSpec::table4();
        let m = PwcMapping::new(64, &s, 0);
        let img = ConfigImage::compile(&m, &s).unwrap();
        assert_eq!(img.bits_per_context(), s.config_bits_per_cycle());
        assert!(img.total_bits() <= s.config_mem_bytes() * 8);
    }

    #[test]
    fn read_enables_follow_phases() {
        let s = spec();
        let m = PwcMapping::new(8, &s, 0);
        let img = ConfigImage::compile(&m, &s).unwrap();
        // Stream cycles read both memories; the bubble reads neither;
        // store cycles assert H (the store request goes through H-MEM).
        assert!(img.context_at(0).h_read && img.context_at(0).v_read);
        assert!(!img.context_at(8).h_read && !img.context_at(8).v_read);
        assert!(img.context_at(9).h_read && !img.context_at(9).v_read);
    }
}
