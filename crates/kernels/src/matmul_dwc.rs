//! Matrix-multiplication-based DWC — the "Matmul DWC" comparison point of
//! Table 5.
//!
//! DWC is converted to matmul by im2col: per channel, the
//! `(N_h·N_w) × K²` pixel matrix times the `K² × 1` kernel column. Because
//! each channel has exactly *one* output column, only one CGRA column ever
//! does useful work (utilization cannot exceed `1/N_c`, §6.2); the
//! remaining columns idle through the schedule. As in the paper, im2col
//! time is *not* charged to this mapping in Table 5.

use npcgra_agu::{MemRequest, PwcAgu, TileClock, TilePos};
use npcgra_arch::{CgraSpec, Instruction, MuxSel};
use npcgra_nn::{Activation, ConvKind, ConvLayer, Tensor, Word};

use crate::act;
use crate::layout::OfmSlot;
use crate::program::{BlockProgram, StorePort, TileMapping};
use crate::pwc::MapError;
use crate::tiling::BlockCfg;

/// The per-tile schedule: a PWC tile with reduction `K²` whose useful work
/// is confined to column 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatmulDwcMapping {
    agu: PwcAgu,
    kk: usize,
    act: Activation,
}

impl MatmulDwcMapping {
    /// Build the tile schedule for kernel size `k` on `spec`.
    #[must_use]
    pub fn new(k: usize, spec: &CgraSpec, addr_ofm: usize) -> Self {
        MatmulDwcMapping {
            agu: PwcAgu {
                ni: k * k,
                nc: spec.cols,
                addr_ifm: 0,
                addr_ofm,
                addr_w: 0,
            },
            kk: k * k,
            act: Activation::None,
        }
    }

    /// Builder-style: fuse an activation into the tile epilogue.
    #[must_use]
    pub fn with_activation(mut self, act: Activation) -> Self {
        self.act = act;
        self
    }

    fn ep(&self) -> usize {
        act::epilogue_len(self.act) as usize
    }

    fn store_step(&self, clock: TileClock) -> Option<usize> {
        let t = clock.t_cycle as usize;
        let start = self.kk + self.ep();
        (t >= start && t < start + self.agu.nc).then(|| t - start)
    }

    fn agu_store_clock(&self, j: usize) -> TileClock {
        TileClock {
            t_cycle: (self.kk + 1 + j) as u64,
            t_wrap: 1,
            t_wcycle: (1 + j) as u64,
        }
    }
}

impl TileMapping for MatmulDwcMapping {
    fn phase_len(&self, t_wrap: u64) -> Option<u64> {
        match t_wrap {
            0 => Some(self.kk as u64),
            1 => Some((self.ep() + self.agu.nc) as u64),
            _ => None,
        }
    }

    fn tile_latency(&self) -> u64 {
        (self.kk + self.ep() + self.agu.nc) as u64
    }

    fn pe_instruction(&self, clock: TileClock, _pos: TilePos, _r: usize, c: usize) -> Instruction {
        let t = clock.t_cycle as usize;
        if t >= self.kk && t < self.kk + self.ep() && c == 0 {
            return act::epilogue_instruction(self.act, (t - self.kk) as u64);
        }
        if c != 0 || t >= self.kk {
            Instruction::nop()
        } else if t == 0 {
            Instruction::mul(MuxSel::HBus, MuxSel::VBus)
        } else {
            Instruction::mac(MuxSel::HBus, MuxSel::VBus)
        }
    }

    fn h_request(&self, clock: TileClock, pos: TilePos, aid_r: usize) -> Option<MemRequest> {
        let t = clock.t_cycle as usize;
        if t < self.kk {
            self.agu.h_request(clock, pos, aid_r)
        } else {
            let j = self.store_step(clock)?;
            self.agu.h_request(self.agu_store_clock(j), pos, aid_r)
        }
    }

    fn v_request(&self, clock: TileClock, pos: TilePos, aid_c: usize) -> Option<MemRequest> {
        if aid_c != 0 || clock.t_cycle as usize >= self.kk {
            return None;
        }
        self.agu.v_request(clock, pos, aid_c)
    }

    fn grf_index(&self, clock: TileClock) -> Option<usize> {
        let t = clock.t_cycle as usize;
        let step = act::grf_read_step(self.act)?;
        (t == self.kk + step as usize).then_some(0)
    }

    fn store_port(&self, clock: TileClock) -> Option<StorePort> {
        self.store_step(clock).map(|column| StorePort { column })
    }
}

/// A whole depthwise layer run as per-channel matmul.
#[derive(Debug, Clone)]
pub struct MatmulDwcLayerMap {
    layer: ConvLayer,
    spec: CgraSpec,
    b_r: usize,
    blocks_p: usize,
}

impl MatmulDwcLayerMap {
    /// Plan the layer.
    ///
    /// # Errors
    ///
    /// Returns [`MapError`] if the layer is not depthwise.
    pub fn new(layer: &ConvLayer, spec: &CgraSpec) -> Result<Self, MapError> {
        if layer.kind() != ConvKind::Depthwise {
            return Err(MapError::new(format!("{} is not depthwise", layer.name())));
        }
        let kk = layer.k() * layer.k();
        let budget = BlockCfg::hmem_words_per_bank(spec);
        let pixels = layer.out_h() * layer.out_w();
        let max_br = pixels.div_ceil(spec.rows).max(1);
        let b_r = BlockCfg::best_split(max_br, (budget / (kk + spec.cols)).max(1));
        let blocks_p = BlockCfg::blocks_to_cover(pixels, b_r * spec.rows);
        Ok(MatmulDwcLayerMap {
            layer: layer.clone(),
            spec: *spec,
            b_r,
            blocks_p,
        })
    }

    /// Blocks in the layer: channels × pixel-chunks.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.layer.in_channels() * self.blocks_p
    }

    /// Tiles per block.
    #[must_use]
    pub fn tiles_per_block(&self) -> usize {
        self.b_r
    }

    /// Compute cycles of any one block.
    #[must_use]
    pub fn block_compute_cycles(&self) -> u64 {
        self.b_r as u64
            * MatmulDwcMapping::new(self.layer.k(), &self.spec, 0)
                .with_activation(self.layer.activation())
                .tile_latency()
    }

    /// Words DMA moves in per block (im2col rows + the kernel column).
    #[must_use]
    pub fn block_input_words(&self) -> u64 {
        let kk = self.layer.k() * self.layer.k();
        (self.b_r * self.spec.rows * kk + kk) as u64
    }

    /// Words DMA moves out per block.
    #[must_use]
    pub fn block_output_words(&self) -> u64 {
        (self.b_r * self.spec.rows) as u64
    }

    /// Useful MACs in one block (column 0 only).
    #[must_use]
    pub fn block_macs(&self) -> u64 {
        (self.b_r * self.spec.rows * self.layer.k() * self.layer.k()) as u64
    }

    /// Materialize block `idx` against the *padded* IFM and `(N_i, K, K)`
    /// weights. The im2col rows are generated in place (the host-side
    /// im2col the paper leaves unaccounted for in Table 5).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= num_blocks()`.
    #[must_use]
    pub fn materialize(&self, idx: usize, padded: &Tensor, weights: &Tensor) -> BlockProgram {
        assert!(idx < self.num_blocks(), "block {idx} out of range");
        let ch = idx / self.blocks_p;
        let p_blk = idx % self.blocks_p;
        let p0 = p_blk * self.b_r * self.spec.rows;
        let k = self.layer.k();
        let s = self.layer.s();
        let kk = k * k;
        let (oh, ow) = (self.layer.out_h(), self.layer.out_w());
        let pixels = oh * ow;
        let nr = self.spec.rows;
        let nc = self.spec.cols;
        let addr_ofm = self.b_r * kk;
        let (pc, ph, pw) = padded.shape();
        debug_assert_eq!(pc, self.layer.in_channels());

        // H image: bank r holds the K²-long im2col rows of pixels
        // p0 + g·N_r + r (zero for pixels past the layer).
        let h_banks: Vec<Vec<Word>> = (0..nr)
            .map(|r| {
                let mut bank = vec![0; addr_ofm + self.b_r * nc];
                for g in 0..self.b_r {
                    let p = p0 + g * nr + r;
                    if p >= pixels {
                        continue;
                    }
                    let (oy, ox) = (p / ow, p % ow);
                    for tap in 0..kk {
                        let (ky, kx) = (tap / k, tap % k);
                        let (iy, ix) = (oy * s + ky, ox * s + kx);
                        bank[g * kk + tap] = if iy < ph && ix < pw { padded.get(ch, iy, ix) } else { 0 };
                    }
                }
                bank
            })
            .collect();

        // V image: the kernel column in bank 0 only.
        let mut v_banks = vec![Vec::new(); nc];
        v_banks[0] = (0..kk).map(|tap| weights.get(ch, tap / k, tap % k)).collect();

        // Only column 0 of each tile is a real output.
        let mut ofm_slots = Vec::new();
        for g in 0..self.b_r {
            for r in 0..nr {
                let p = p0 + g * nr + r;
                if p >= pixels {
                    continue;
                }
                ofm_slots.push(OfmSlot {
                    bank: r,
                    offset: addr_ofm + g * nc,
                    c: ch,
                    y: p / ow,
                    x: p % ow,
                });
            }
        }

        BlockProgram {
            label: format!("{}[matmul ch={ch},p={p0}]", self.layer.name()),
            h_banks,
            v_banks,
            grf: act::grf_constant(self.layer.activation()).map_or_else(Vec::new, |c| vec![c]),
            weight_buffer: Vec::new(),
            tiles: TilePos::first(self.b_r, 1),
            mapping: Box::new(MatmulDwcMapping::new(k, &self.spec, addr_ofm).with_activation(self.layer.activation())),
            ofm_slots,
            dma_in_words: self.block_input_words(),
            ofm_words: self.block_output_words(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec4() -> CgraSpec {
        CgraSpec::np_cgra(4, 4)
    }

    #[test]
    fn table5_matmul_dwc_utilization() {
        // T = K² + N_c + 1 = 14 on the 4×4; useful MACs = N_r·K² = 36 →
        // util = 36/(16·14) ≈ 16.07 %, the paper's 16.04 % row.
        let m = MatmulDwcMapping::new(3, &spec4(), 0);
        assert_eq!(m.tile_latency(), 14);
        let util: f64 = 36.0 / (16.0 * 14.0);
        assert!((util - 0.1604).abs() < 0.005, "util {util}");
    }

    #[test]
    fn layer_latencies_near_paper() {
        // Paper: 2.82 ms (S=1) and 1.41 ms (S=2) on the 4×4 at 500 MHz.
        let s1 = ConvLayer::depthwise("dw1", 32, 112, 112, 3, 1, 1);
        let s2 = ConvLayer::depthwise("dw2", 64, 112, 112, 3, 2, 1);
        for (layer, lo, hi) in [(&s1, 2.7, 3.0), (&s2, 1.3, 1.5)] {
            let map = MatmulDwcLayerMap::new(layer, &spec4()).unwrap();
            let ms = map.num_blocks() as u64 as f64 * map.block_compute_cycles() as f64 / 500e6 * 1e3;
            assert!((lo..hi).contains(&ms), "{}: {ms} ms", layer.name());
        }
    }

    #[test]
    fn off_column_pes_idle() {
        let m = MatmulDwcMapping::new(3, &spec4(), 0);
        let pos = TilePos::first(1, 1);
        let clock = TileClock::start();
        assert_eq!(m.pe_instruction(clock, pos, 0, 0).op, npcgra_arch::Op::Mul);
        for c in 1..4 {
            assert_eq!(m.pe_instruction(clock, pos, 2, c).op, npcgra_arch::Op::Nop);
        }
        assert_eq!(m.v_request(clock, pos, 1), None);
        assert!(m.v_request(clock, pos, 0).is_some());
    }

    #[test]
    fn rejects_pointwise() {
        let layer = ConvLayer::pointwise("pw", 4, 4, 4, 4);
        assert!(MatmulDwcLayerMap::new(&layer, &spec4()).is_err());
    }

    #[test]
    fn block_geometry_counts() {
        let layer = ConvLayer::depthwise("dw", 3, 8, 8, 3, 1, 1);
        let map = MatmulDwcLayerMap::new(&layer, &spec4()).unwrap();
        assert_eq!(map.num_blocks() % 3, 0);
        let padded = Tensor::random(3, 8, 8, 4).zero_padded(1);
        let b = map.materialize(map.num_blocks() - 1, &padded, &layer.random_weights(2));
        assert_eq!(b.tiles.b_c, 1);
        assert!(b.ofm_slots.iter().all(|s| s.c == 2), "last blocks belong to the last channel");
    }

    #[test]
    fn materialized_block_im2col_rows() {
        let layer = ConvLayer::depthwise("dw", 1, 6, 6, 3, 1, 1);
        let map = MatmulDwcLayerMap::new(&layer, &spec4()).unwrap();
        let ifm = Tensor::random(1, 6, 6, 9);
        let padded = ifm.zero_padded(1);
        let w = layer.random_weights(10);
        let b = map.materialize(0, &padded, &w);
        // Pixel 0's first tap is padding (0); its centre tap (ky=kx=1) is
        // ifm(0,0,0).
        assert_eq!(b.h_banks[0][0], 0);
        assert_eq!(b.h_banks[0][4], ifm.get(0, 0, 0));
        assert_eq!(b.v_banks[0].len(), 9);
        assert!(b.v_banks[1].is_empty());
    }
}
