//! Block-size selection.
//!
//! A *tile* is the work the array does simultaneously (`N_r × N_c` outputs);
//! a *block* is `B_r × B_c` tiles whose data fits in local memory (§IV). The
//! chooser maximizes the block subject to the per-bank H-MEM/V-MEM word
//! budget, which both amortizes DMA latency and matches the layer-latency
//! ceil-terms of Table 3.

use npcgra_arch::CgraSpec;

/// A block geometry: `B_r × B_c` tiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockCfg {
    /// Tiles per block, row direction.
    pub b_r: usize,
    /// Tiles per block, column direction.
    pub b_c: usize,
}

impl BlockCfg {
    /// Words available per H-MEM bank.
    #[must_use]
    pub fn hmem_words_per_bank(spec: &CgraSpec) -> usize {
        spec.hmem_bytes / spec.word_bytes / spec.rows.max(1)
    }

    /// Words available per V-MEM bank (falls back to the H-MEM pool when
    /// the machine has no separate V-MEM).
    #[must_use]
    pub fn vmem_words_per_bank(spec: &CgraSpec) -> usize {
        if spec.vmem_bytes == 0 {
            Self::hmem_words_per_bank(spec)
        } else {
            spec.vmem_bytes / spec.word_bytes / spec.cols.max(1)
        }
    }

    /// The block size that covers `extent` tiles with the least total work:
    /// the `b ≤ cap` minimizing `ceil(extent/b)·b` (ties prefer larger `b`,
    /// which means fewer blocks and fewer DMA latencies).
    #[must_use]
    pub fn best_split(extent: usize, cap: usize) -> usize {
        let extent = extent.max(1);
        let cap = cap.max(1).min(extent);
        let mut best = 1;
        let mut best_cost = usize::MAX;
        for b in 1..=cap {
            let cost = extent.div_ceil(b) * b;
            if cost < best_cost || (cost == best_cost && b > best) {
                best = b;
                best_cost = cost;
            }
        }
        best
    }

    /// Block choice for the PWC mapping.
    ///
    /// Per H bank the block needs `B_r·N_i` IFM words plus `B_r·B_c·N_c` OFM
    /// words; per V bank `B_c·N_i` weight words. `B_r`/`B_c` are capped at
    /// full coverage of the pixel-row (`N_w`) and output-channel (`N_o`)
    /// dimensions and balanced to avoid computing padding tiles.
    #[must_use]
    pub fn choose_pwc(spec: &CgraSpec, n_i: usize, n_w: usize, n_o: usize) -> BlockCfg {
        let h_budget = Self::hmem_words_per_bank(spec);
        let v_budget = Self::vmem_words_per_bank(spec);
        let max_br = n_w.div_ceil(spec.rows).max(1);
        let max_bc = n_o.div_ceil(spec.cols).max(1);
        let mut b_c = Self::best_split(max_bc, (v_budget / n_i.max(1)).max(1));
        // If even B_r = 1 overflows the H budget, shrink B_c first.
        while b_c > 1 && n_i + b_c * spec.cols > h_budget {
            b_c -= 1;
        }
        let per_br = n_i + b_c * spec.cols;
        let cap_br = (h_budget / per_br.max(1)).max(1);
        let b_r = Self::best_split(max_br, cap_br);
        BlockCfg { b_r, b_c }
    }

    /// Block choice for the DWC mappings (stride `s`, kernel `k`), per
    /// channel.
    ///
    /// Per H bank: the block's share of input rows (`≈ (B_r·N_r·S + K)/N_r`
    /// rows of `block_w = S·(B_c·N_c−1)+K` words) plus `B_r·B_c·N_c` OFM
    /// words. Caps at full coverage of `N_h` (rows) and `N_w` (cols) and
    /// balances both directions.
    #[must_use]
    pub fn choose_dwc(spec: &CgraSpec, k: usize, s: usize, n_h: usize, n_w: usize) -> BlockCfg {
        let h_budget = Self::hmem_words_per_bank(spec);
        let max_br = n_h.div_ceil(spec.rows).max(1);
        let max_bc = n_w.div_ceil(spec.cols).max(1);
        let fits = |b_r: usize, b_c: usize| {
            let block_w = s * (b_c * spec.cols - 1) + k;
            let input_rows = (b_r * spec.rows - 1) * s + k;
            let rows_per_bank = input_rows.div_ceil(spec.rows.max(1));
            rows_per_bank * block_w + b_r * b_c * spec.cols <= h_budget
        };
        // Largest feasible b_c at b_r = 1, balanced over the extent.
        let mut cap_bc = max_bc;
        while cap_bc > 1 && !fits(1, cap_bc) {
            cap_bc -= 1;
        }
        let b_c = Self::best_split(max_bc, cap_bc);
        // Largest feasible b_r for that b_c, balanced.
        let mut cap_br = max_br;
        while cap_br > 1 && !fits(cap_br, b_c) {
            cap_br -= 1;
        }
        let b_r = Self::best_split(max_br, cap_br);
        BlockCfg { b_r, b_c }
    }

    /// Number of blocks needed to cover `extent` outputs with `per_block`
    /// outputs per block.
    #[must_use]
    pub fn blocks_to_cover(extent: usize, per_block: usize) -> usize {
        extent.div_ceil(per_block).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_bank_budgets() {
        let spec = CgraSpec::table4();
        // 39 KB / 2 B / 8 banks = 2496 words per bank.
        assert_eq!(BlockCfg::hmem_words_per_bank(&spec), 2496);
        assert_eq!(BlockCfg::vmem_words_per_bank(&spec), 2496);
    }

    #[test]
    fn pwc_block_fits_budget() {
        let spec = CgraSpec::table4();
        let cfg = BlockCfg::choose_pwc(&spec, 512, 14, 512);
        let h = cfg.b_r * 512 + cfg.b_r * cfg.b_c * 8;
        assert!(h <= 2496, "H need {h}");
        assert!(cfg.b_c * 512 <= 2496);
        assert!(cfg.b_r >= 1 && cfg.b_c >= 1);
    }

    #[test]
    fn pwc_small_layer_fully_covered() {
        let spec = CgraSpec::table4();
        let cfg = BlockCfg::choose_pwc(&spec, 32, 16, 16);
        assert_eq!(cfg.b_r, 2); // 16 pixels / 8 rows
        assert_eq!(cfg.b_c, 2);
    }

    #[test]
    fn dwc_block_fits_budget() {
        let spec = CgraSpec::table4();
        let cfg = BlockCfg::choose_dwc(&spec, 3, 1, 112, 112);
        let block_w = cfg.b_c * 8 + 2;
        let input_rows = (cfg.b_r * 8 - 1) + 3;
        let need = input_rows.div_ceil(8) * block_w + cfg.b_r * cfg.b_c * 8;
        assert!(need <= 2496, "need {need} for {cfg:?}");
    }

    #[test]
    fn dwc_stride2_block() {
        let spec = CgraSpec::np_cgra(4, 4);
        let cfg = BlockCfg::choose_dwc(&spec, 3, 2, 56, 56);
        assert!(cfg.b_r >= 1 && cfg.b_c >= 1);
        let block_w = 2 * (cfg.b_c * 4 - 1) + 3;
        let input_rows = (cfg.b_r * 4 - 1) * 2 + 3;
        let need = input_rows.div_ceil(4) * block_w + cfg.b_r * cfg.b_c * 4;
        assert!(need <= BlockCfg::hmem_words_per_bank(&spec));
    }

    #[test]
    fn tiny_memory_degrades_to_minimal_block() {
        let mut spec = CgraSpec::np_cgra(4, 4);
        spec.hmem_bytes = 4 * 64 * 2; // 64 words per bank
        let cfg = BlockCfg::choose_pwc(&spec, 48, 128, 128);
        assert_eq!(cfg.b_r, 1);
        assert!(48 + cfg.b_c * 4 <= 64);
    }

    #[test]
    fn blocks_to_cover_rounds_up() {
        assert_eq!(BlockCfg::blocks_to_cover(112, 32), 4);
        assert_eq!(BlockCfg::blocks_to_cover(9, 8), 2);
        assert_eq!(BlockCfg::blocks_to_cover(8, 8), 1);
    }
}
