//! The DWC mapping for arbitrary stride (§4.1, Fig. 5).
//!
//! One channel is parallelized across the array per tile: H-bus `r` streams
//! input row `r·S + t_wrap` of the tile, every PE in the row MACs when the
//! streamed position falls in its kernel window, and V-bus `c` supplies the
//! (column-dependent) weight tap. The whole schedule repeats per channel
//! (`N_i` term of Table 3).

use npcgra_agu::{DwcGeneralAgu, MemRequest, TileClock, TilePos};
use npcgra_arch::{CgraSpec, Instruction, MuxSel};
use npcgra_nn::{Activation, ConvKind, ConvLayer, Tensor};

use crate::act;
use crate::layout;
use crate::program::{BlockProgram, StorePort, TileMapping};
use crate::pwc::MapError;
use crate::tiling::BlockCfg;

/// Zero-pad a layer's IFM into the padded-image coordinates the DWC layouts
/// use.
#[must_use]
pub fn padded_ifm(layer: &ConvLayer, ifm: &Tensor) -> Tensor {
    ifm.zero_padded(layer.pad())
}

/// The per-tile schedule of the general-stride DWC mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DwcGeneralMapping {
    agu: DwcGeneralAgu,
    act: Activation,
}

impl DwcGeneralMapping {
    /// Build the tile schedule for kernel `k`, stride `s` on `spec`, with
    /// the H-MEM OFM region at `addr_ofm`.
    #[must_use]
    pub fn new(k: usize, s: usize, spec: &CgraSpec, addr_ofm: usize) -> Self {
        DwcGeneralMapping {
            agu: DwcGeneralAgu {
                k,
                s,
                nr: spec.rows,
                nc: spec.cols,
                addr_ifm: 0,
                addr_ofm,
                addr_w: 0,
            },
            act: Activation::None,
        }
    }

    /// Builder-style: fuse an activation into the tile epilogue.
    #[must_use]
    pub fn with_activation(mut self, act: Activation) -> Self {
        self.act = act;
        self
    }

    /// The underlying AGU configuration.
    #[must_use]
    pub fn agu(&self) -> DwcGeneralAgu {
        self.agu
    }

    fn ep(&self) -> usize {
        act::epilogue_len(self.act) as usize
    }

    fn store_step(&self, clock: TileClock) -> Option<usize> {
        let t = clock.t_wcycle as usize;
        (clock.t_wrap as usize == self.agu.k && t >= self.ep() && t < self.ep() + self.agu.nc).then(|| t - self.ep())
    }

    fn agu_store_clock(&self, clock: TileClock, j: usize) -> TileClock {
        TileClock {
            t_cycle: clock.t_cycle,
            t_wrap: self.agu.k as u64,
            t_wcycle: (1 + j) as u64,
        }
    }
}

impl TileMapping for DwcGeneralMapping {
    fn phase_len(&self, t_wrap: u64) -> Option<u64> {
        if (t_wrap as usize) < self.agu.k {
            self.agu.phase_len(t_wrap)
        } else if t_wrap as usize == self.agu.k {
            Some((self.ep() + self.agu.nc) as u64)
        } else {
            None
        }
    }

    fn tile_latency(&self) -> u64 {
        (self.agu.k * self.agu.row_stream_len() + self.ep() + self.agu.nc) as u64
    }

    fn pe_instruction(&self, clock: TileClock, _pos: TilePos, _r: usize, c: usize) -> Instruction {
        if clock.t_wrap as usize == self.agu.k {
            let t = clock.t_wcycle as usize;
            if t < self.ep() {
                return act::epilogue_instruction(self.act, t as u64);
            }
            return Instruction::nop();
        }
        match self.agu.active_tap(clock, c) {
            Some(kx) if clock.t_wrap == 0 && kx == 0 => Instruction::mul(MuxSel::HBus, MuxSel::VBus),
            Some(_) => Instruction::mac(MuxSel::HBus, MuxSel::VBus),
            None => Instruction::nop(),
        }
    }

    fn h_request(&self, clock: TileClock, pos: TilePos, aid_r: usize) -> Option<MemRequest> {
        if (clock.t_wrap as usize) < self.agu.k {
            self.agu.h_request(clock, pos, aid_r)
        } else {
            let j = self.store_step(clock)?;
            self.agu.h_request(self.agu_store_clock(clock, j), pos, aid_r)
        }
    }

    fn v_request(&self, clock: TileClock, pos: TilePos, aid_c: usize) -> Option<MemRequest> {
        ((clock.t_wrap as usize) < self.agu.k)
            .then(|| self.agu.v_request(clock, pos, aid_c))
            .flatten()
    }

    fn grf_index(&self, clock: TileClock) -> Option<usize> {
        let step = act::grf_read_step(self.act)?;
        (clock.t_wrap as usize == self.agu.k && clock.t_wcycle == step).then_some(0)
    }

    fn store_port(&self, clock: TileClock) -> Option<StorePort> {
        self.store_step(clock).map(|column| StorePort { column })
    }
}

/// A whole depthwise layer mapped with the general-stride schedule.
///
/// # Example
///
/// ```
/// use npcgra_arch::CgraSpec;
/// use npcgra_nn::ConvLayer;
/// use npcgra_kernels::dwc_general::DwcGeneralLayerMap;
///
/// let layer = ConvLayer::depthwise("dw2", 64, 112, 112, 3, 2, 1);
/// let map = DwcGeneralLayerMap::new(&layer, &CgraSpec::np_cgra(4, 4)).unwrap();
/// assert_eq!(map.num_blocks() % 64, 0); // one block set per channel
/// ```
#[derive(Debug, Clone)]
pub struct DwcGeneralLayerMap {
    layer: ConvLayer,
    spec: CgraSpec,
    cfg: BlockCfg,
    blocks_h: usize,
    blocks_w: usize,
}

impl DwcGeneralLayerMap {
    /// Plan the layer.
    ///
    /// # Errors
    ///
    /// Returns [`MapError`] if the layer is not depthwise.
    pub fn new(layer: &ConvLayer, spec: &CgraSpec) -> Result<Self, MapError> {
        if layer.kind() != ConvKind::Depthwise {
            return Err(MapError::new(format!("{} is not depthwise", layer.name())));
        }
        let cfg = BlockCfg::choose_dwc(spec, layer.k(), layer.s(), layer.out_h(), layer.out_w());
        let blocks_h = BlockCfg::blocks_to_cover(layer.out_h(), cfg.b_r * spec.rows);
        let blocks_w = BlockCfg::blocks_to_cover(layer.out_w(), cfg.b_c * spec.cols);
        Ok(DwcGeneralLayerMap {
            layer: layer.clone(),
            spec: *spec,
            cfg,
            blocks_h,
            blocks_w,
        })
    }

    /// Chosen block geometry.
    #[must_use]
    pub fn cfg(&self) -> BlockCfg {
        self.cfg
    }

    /// Blocks in the whole layer: channels × row-chunks × col-chunks.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.layer.in_channels() * self.blocks_h * self.blocks_w
    }

    /// Compute cycles of any one block.
    #[must_use]
    pub fn block_compute_cycles(&self) -> u64 {
        let tile = DwcGeneralMapping::new(self.layer.k(), self.layer.s(), &self.spec, 0)
            .with_activation(self.layer.activation())
            .tile_latency();
        (self.cfg.b_r * self.cfg.b_c) as u64 * tile
    }

    /// Words DMA moves in per block (the IFM bank images + the kernel).
    #[must_use]
    pub fn block_input_words(&self) -> u64 {
        let k = self.layer.k();
        let s = self.layer.s();
        let block_w = s * (self.cfg.b_c * self.spec.cols - 1) + k;
        let input_rows = (self.cfg.b_r * self.spec.rows - 1) * s + k;
        (input_rows * block_w + k * k) as u64
    }

    /// Words DMA moves out per block.
    #[must_use]
    pub fn block_output_words(&self) -> u64 {
        (self.cfg.b_r * self.spec.rows * self.cfg.b_c * self.spec.cols) as u64
    }

    /// Useful MACs in one block.
    #[must_use]
    pub fn block_macs(&self) -> u64 {
        self.block_output_words() * (self.layer.k() * self.layer.k()) as u64
    }

    /// Materialize block `idx` against the *padded* IFM (see
    /// [`padded_ifm`]) and the `(N_i, K, K)` weight tensor.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= num_blocks()`.
    #[must_use]
    pub fn materialize(&self, idx: usize, padded: &Tensor, weights: &Tensor) -> BlockProgram {
        assert!(idx < self.num_blocks(), "block {idx} out of range");
        let per_ch = self.blocks_h * self.blocks_w;
        let ch = idx / per_ch;
        let rb = (idx % per_ch) / self.blocks_w;
        let cb = idx % self.blocks_w;
        let r0 = rb * self.cfg.b_r * self.spec.rows;
        let c0 = cb * self.cfg.b_c * self.spec.cols;
        let (h_banks, addr_ofm) = layout::dwc_general_h_image(
            padded,
            ch,
            r0,
            c0,
            self.cfg,
            self.spec.rows,
            self.spec.cols,
            self.layer.k(),
            self.layer.s(),
        );
        let v_banks = layout::dwc_v_image(weights, ch, self.layer.k(), self.spec.cols);
        let ofm_slots = layout::dwc_ofm_slots(
            ch,
            r0,
            c0,
            self.cfg,
            self.spec.rows,
            self.spec.cols,
            self.layer.out_h(),
            self.layer.out_w(),
            addr_ofm,
        );
        BlockProgram {
            label: format!("{}[ch={ch},r={r0},c={c0}]", self.layer.name()),
            h_banks,
            v_banks,
            grf: act::grf_constant(self.layer.activation()).map_or_else(Vec::new, |c| vec![c]),
            weight_buffer: Vec::new(),
            tiles: TilePos::first(self.cfg.b_r, self.cfg.b_c),
            mapping: Box::new(
                DwcGeneralMapping::new(self.layer.k(), self.layer.s(), &self.spec, addr_ofm)
                    .with_activation(self.layer.activation()),
            ),
            ofm_slots,
            dma_in_words: self.block_input_words(),
            ofm_words: self.block_output_words(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec4() -> CgraSpec {
        CgraSpec::np_cgra(4, 4)
    }

    #[test]
    fn table5_dwc_s2_tile_latency() {
        // K=3, S=2 on 4×4: K((N_c−1)S+K) + N_c + 1 = 27 + 5 = 32, giving the
        // 28 % utilization of Table 5 (144 useful MACs / (16·32)).
        let m = DwcGeneralMapping::new(3, 2, &spec4(), 0);
        assert_eq!(m.tile_latency(), 32);
        let util: f64 = 144.0 / (16.0 * 32.0);
        assert!((util - 0.28).abs() < 0.002);
    }

    #[test]
    fn layer_latency_near_paper() {
        // MobileNet V1 dw2 (S=2): paper reports 0.81 ms on the 4×4.
        let layer = ConvLayer::depthwise("dw2", 64, 112, 112, 3, 2, 1);
        let map = DwcGeneralLayerMap::new(&layer, &spec4()).unwrap();
        let cycles = map.num_blocks() as u64 * map.block_compute_cycles();
        let ms = cycles as f64 / 500e6 * 1e3;
        assert!((0.75..0.95).contains(&ms), "DWC S=2 compute {ms} ms");
    }

    #[test]
    fn rejects_pointwise() {
        let layer = ConvLayer::pointwise("pw", 8, 8, 8, 8);
        assert!(DwcGeneralLayerMap::new(&layer, &spec4()).is_err());
    }

    #[test]
    fn pe_ops_follow_window() {
        let m = DwcGeneralMapping::new(3, 2, &spec4(), 0);
        let pos = TilePos::first(1, 1);
        let clock = TileClock::start();
        // Cycle 0 of row 0: column 0 initializes, others idle.
        assert_eq!(m.pe_instruction(clock, pos, 0, 0).op, npcgra_arch::Op::Mul);
        assert_eq!(m.pe_instruction(clock, pos, 0, 1).op, npcgra_arch::Op::Nop);
        let mut c2 = clock;
        c2.step(false);
        c2.step(false);
        // Cycle 2: column 0 is at tap 2 (accumulating) while column 1 sees
        // its own first tap (kx = 0) and initializes its accumulator.
        assert_eq!(m.pe_instruction(c2, pos, 0, 0).op, npcgra_arch::Op::Mac);
        assert_eq!(m.pe_instruction(c2, pos, 0, 1).op, npcgra_arch::Op::Mul);
    }

    #[test]
    fn block_words_are_positive_and_bounded() {
        let layer = ConvLayer::depthwise("dw", 16, 20, 20, 3, 2, 1);
        let map = DwcGeneralLayerMap::new(&layer, &spec4()).unwrap();
        assert!(map.block_input_words() > 0);
        let budget = BlockCfg::hmem_words_per_bank(&spec4()) * 4;
        assert!((map.block_input_words() as usize) < budget * 2);
    }

    #[test]
    fn materialized_block_shapes() {
        let layer = ConvLayer::depthwise("dw", 2, 10, 10, 3, 2, 1);
        let map = DwcGeneralLayerMap::new(&layer, &spec4()).unwrap();
        let padded = padded_ifm(&layer, &Tensor::random(2, 10, 10, 3));
        let w = layer.random_weights(4);
        let b = map.materialize(0, &padded, &w);
        assert_eq!(b.h_banks.len(), 4);
        assert_eq!(b.v_banks.len(), 4);
        assert_eq!(b.v_banks[0].len(), 9);
        assert!(!b.ofm_slots.is_empty());
    }
}
