//! Data layouts (Figs. 9–11).
//!
//! These builders produce the per-bank word images that DMA deposits into
//! H-MEM / V-MEM for one block, laid out so the AGU algorithms (Algorithms
//! 1–3) read exactly the right word every cycle with no bank conflicts. They
//! also produce the [`OfmSlot`] map used to pull finished outputs back out
//! of the H-MEM OFM region after the block completes.
//!
//! All IFM coordinates here are *padded-image* coordinates: convolution
//! padding is materialized in external memory before blocking (the paper's
//! layouts never special-case borders), and edge blocks that reach past the
//! image read zeros and produce outputs that simply are not extracted.

use npcgra_nn::{Tensor, Word};

use crate::tiling::BlockCfg;

/// One OFM element's resting place in the H-MEM OFM region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OfmSlot {
    /// H-MEM bank.
    pub bank: usize,
    /// In-bank word offset.
    pub offset: usize,
    /// Output channel.
    pub c: usize,
    /// Output row.
    pub y: usize,
    /// Output column.
    pub x: usize,
}

fn get_or_zero(t: &Tensor, c: usize, y: usize, x: usize) -> Word {
    let (tc, th, tw) = t.shape();
    if c < tc && y < th && x < tw {
        t.get(c, y, x)
    } else {
        0
    }
}

// ---------------------------------------------------------------------------
// PWC (Fig. 9)
// ---------------------------------------------------------------------------

/// PWC H-MEM image for the block covering pixels `p0..p0+B_r·N_r` of image
/// row `y`: bank `r` holds the channel vectors of pixels `p0 + g·N_r + r`
/// back-to-back (`g = 0..B_r`), followed by the zeroed OFM region.
///
/// Returns `(bank_images, addr_ofm)`.
#[must_use]
pub fn pwc_h_image(ifm: &Tensor, y: usize, p0: usize, cfg: BlockCfg, nr: usize, nc: usize) -> (Vec<Vec<Word>>, usize) {
    let ni = ifm.channels();
    let addr_ofm = cfg.b_r * ni;
    let total = addr_ofm + cfg.b_r * cfg.b_c * nc;
    let banks = (0..nr)
        .map(|r| {
            let mut bank = vec![0; total];
            for g in 0..cfg.b_r {
                let p = p0 + g * nr + r;
                for i in 0..ni {
                    bank[g * ni + i] = get_or_zero(ifm, i, y, p);
                }
            }
            bank
        })
        .collect();
    (banks, addr_ofm)
}

/// PWC V-MEM image for output channels `o0..o0+B_c·N_c`: bank `c` holds the
/// `N_i`-long weight columns of channels `o0 + g·N_c + c` back-to-back.
/// `weights` is the `(N_o, 1, N_i)` pointwise weight tensor.
#[must_use]
pub fn pwc_v_image(weights: &Tensor, o0: usize, cfg: BlockCfg, nc: usize) -> Vec<Vec<Word>> {
    let ni = weights.width();
    (0..nc)
        .map(|c| {
            let mut bank = vec![0; cfg.b_c * ni];
            for g in 0..cfg.b_c {
                let oc = o0 + g * nc + c;
                for i in 0..ni {
                    bank[g * ni + i] = get_or_zero(weights, oc, 0, i);
                }
            }
            bank
        })
        .collect()
}

/// OFM extraction map for a PWC block (skips padding pixels/channels).
#[must_use]
#[allow(clippy::too_many_arguments)] // geometry parameters mirror the AGU fields
pub fn pwc_ofm_slots(
    y: usize,
    p0: usize,
    o0: usize,
    cfg: BlockCfg,
    nr: usize,
    nc: usize,
    n_w: usize,
    n_o: usize,
    addr_ofm: usize,
) -> Vec<OfmSlot> {
    let mut slots = Vec::new();
    for tid_r in 0..cfg.b_r {
        for r in 0..nr {
            let p = p0 + tid_r * nr + r;
            if p >= n_w {
                continue;
            }
            for tid_c in 0..cfg.b_c {
                for j in 0..nc {
                    let oc = o0 + tid_c * nc + j;
                    if oc >= n_o {
                        continue;
                    }
                    slots.push(OfmSlot {
                        bank: r,
                        offset: addr_ofm + tid_r * nc * cfg.b_c + tid_c * nc + j,
                        c: oc,
                        y,
                        x: p,
                    });
                }
            }
        }
    }
    slots
}

// ---------------------------------------------------------------------------
// DWC, arbitrary stride (Fig. 10)
// ---------------------------------------------------------------------------

/// DWC-general H-MEM image for one channel of the *padded* IFM, for the
/// block whose output origin is `(r0, c0)`: every run of `S` consecutive
/// input rows goes to the next bank round-robin; rows within a bank are
/// concatenated, each `block_w = S·(B_c·N_c−1)+K` words wide.
///
/// Returns `(bank_images, addr_ofm)`.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn dwc_general_h_image(
    padded: &Tensor,
    ch: usize,
    r0: usize,
    c0: usize,
    cfg: BlockCfg,
    nr: usize,
    nc: usize,
    k: usize,
    s: usize,
) -> (Vec<Vec<Word>>, usize) {
    let block_w = s * (cfg.b_c * nc - 1) + k;
    let input_rows = (cfg.b_r * nr - 1) * s + k;
    let groups = input_rows.div_ceil(s);
    let slots_per_bank = groups.div_ceil(nr);
    let addr_ofm = slots_per_bank * block_w * s;
    let total = addr_ofm + cfg.b_r * cfg.b_c * nc;
    let mut banks = vec![vec![0; total]; nr];
    for u in 0..input_rows {
        let g = u / s;
        let bank = g % nr;
        let slot = g / nr;
        for x in 0..block_w {
            banks[bank][slot * block_w * s + (u % s) * block_w + x] = get_or_zero(padded, ch, r0 * s + u, c0 * s + x);
        }
    }
    (banks, addr_ofm)
}

/// DWC-general V-MEM image: the channel's `K×K` kernel, row-major,
/// duplicated in every bank (§5.2).
#[must_use]
pub fn dwc_v_image(weights: &Tensor, ch: usize, k: usize, nc: usize) -> Vec<Vec<Word>> {
    let kernel: Vec<Word> = (0..k * k).map(|i| weights.get(ch, i / k, i % k)).collect();
    vec![kernel; nc]
}

/// OFM extraction map shared by both DWC mappings (they use the same store
/// layout): output `(r0 + tid_r·N_r + r, c0 + tid_c·N_c + j)` of channel
/// `ch` rests in bank `r` at `addr_ofm + tid_r·N_c·B_c + tid_c·N_c + j`.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn dwc_ofm_slots(
    ch: usize,
    r0: usize,
    c0: usize,
    cfg: BlockCfg,
    nr: usize,
    nc: usize,
    n_h: usize,
    n_w: usize,
    addr_ofm: usize,
) -> Vec<OfmSlot> {
    let mut slots = Vec::new();
    for tid_r in 0..cfg.b_r {
        for r in 0..nr {
            let oy = r0 + tid_r * nr + r;
            if oy >= n_h {
                continue;
            }
            for tid_c in 0..cfg.b_c {
                for j in 0..nc {
                    let ox = c0 + tid_c * nc + j;
                    if ox >= n_w {
                        continue;
                    }
                    slots.push(OfmSlot {
                        bank: r,
                        offset: addr_ofm + tid_r * nc * cfg.b_c + tid_c * nc + j,
                        c: ch,
                        y: oy,
                        x: ox,
                    });
                }
            }
        }
    }
    slots
}

// ---------------------------------------------------------------------------
// DWC, stride 1 (Fig. 11)
// ---------------------------------------------------------------------------

/// Stride-1 DWC H-MEM image: input row `u` (block-local) goes to bank
/// `u mod N_r`, rows within a bank concatenated at `block_w = B_c·N_c+K−1`
/// words each.
///
/// Returns `(bank_images, addr_ofm)`.
#[must_use]
#[allow(clippy::too_many_arguments)] // geometry parameters mirror the AGU fields
pub fn dwc_s1_h_image(
    padded: &Tensor,
    ch: usize,
    r0: usize,
    c0: usize,
    cfg: BlockCfg,
    nr: usize,
    nc: usize,
    k: usize,
) -> (Vec<Vec<Word>>, usize) {
    let block_w = cfg.b_c * nc + k - 1;
    let input_rows = cfg.b_r * nr + k - 1;
    let slots_per_bank = input_rows.div_ceil(nr);
    let addr_ofm = slots_per_bank * block_w;
    let total = addr_ofm + cfg.b_r * cfg.b_c * nc;
    let mut banks = vec![vec![0; total]; nr];
    for u in 0..input_rows {
        let bank = u % nr;
        let slot = u / nr;
        for x in 0..block_w {
            banks[bank][slot * block_w + x] = get_or_zero(padded, ch, r0 + u, c0 + x);
        }
    }
    (banks, addr_ofm)
}

/// Stride-1 DWC V-MEM image (Fig. 11): only the values the SS phases need.
/// For tile row `tid_r` and kernel row `ky ∈ 1..K`, V-bank `c` holds
/// `X(tid_r·N_r + N_r−1 + ky, tid_c·N_c + c + kx(ky))` with
/// `kx = K−1` for odd `ky` and `0` for even `ky`, ordered
/// `(tid_r, ky, tid_c)`.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn dwc_s1_v_image(
    padded: &Tensor,
    ch: usize,
    r0: usize,
    c0: usize,
    cfg: BlockCfg,
    nr: usize,
    nc: usize,
    k: usize,
) -> Vec<Vec<Word>> {
    let entries = cfg.b_r * k.saturating_sub(1) * cfg.b_c;
    (0..nc)
        .map(|c| {
            let mut bank = vec![0; entries.max(1)];
            for tid_r in 0..cfg.b_r {
                for ky in 1..k {
                    let kx = if ky % 2 == 1 { k - 1 } else { 0 };
                    for tid_c in 0..cfg.b_c {
                        let u = tid_r * nr + nr - 1 + ky;
                        let x = tid_c * nc + c + kx;
                        bank[tid_r * (k - 1) * cfg.b_c + (ky - 1) * cfg.b_c + tid_c] = get_or_zero(padded, ch, r0 + u, c0 + x);
                    }
                }
            }
            bank
        })
        .collect()
}

/// GRF image for one DWC channel: the `K×K` kernel, row-major (the
/// boustrophedon order is applied by the GRF *index* sequence, not the
/// storage).
#[must_use]
pub fn dwc_grf_image(weights: &Tensor, ch: usize, k: usize) -> Vec<Word> {
    (0..k * k).map(|i| weights.get(ch, i / k, i % k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use npcgra_nn::Tensor;

    #[test]
    fn fig9_pwc_bank_assignment() {
        // 3-row machine: pixels 0,3,6.. in bank 0; 1,4,7.. in bank 1; etc.,
        // with channel vectors contiguous (Fig. 9b).
        let ni = 4;
        let ifm = Tensor::from_fn(ni, 1, 9, |i, _, p| (p * 10 + i) as Word);
        let cfg = BlockCfg { b_r: 3, b_c: 1 };
        let (banks, addr_ofm) = pwc_h_image(&ifm, 0, 0, cfg, 3, 2);
        assert_eq!(addr_ofm, 3 * ni);
        // Bank 0: pixel 0 then 3 then 6.
        assert_eq!(banks[0][0], 0);
        assert_eq!(banks[0][ni], 30);
        assert_eq!(banks[0][2 * ni + 1], 61);
        // Bank 2: pixel 2 then 5 then 8.
        assert_eq!(banks[2][0], 20);
        assert_eq!(banks[2][ni + 3], 53);
    }

    #[test]
    fn pwc_v_image_partitions_channels() {
        let w = Tensor::from_fn(8, 1, 3, |o, _, i| (o * 10 + i) as Word);
        let cfg = BlockCfg { b_r: 1, b_c: 2 };
        let banks = pwc_v_image(&w, 0, cfg, 4);
        // Bank 1 holds channels 1 then 5.
        assert_eq!(banks[1][0], 10);
        assert_eq!(banks[1][3], 50);
        assert_eq!(banks[1][4], 51);
    }

    #[test]
    fn pwc_edge_pixels_are_zero_padded() {
        let ifm = Tensor::from_fn(2, 1, 5, |_, _, _| 7);
        let cfg = BlockCfg { b_r: 2, b_c: 1 };
        let (banks, _) = pwc_h_image(&ifm, 0, 4, cfg, 2, 2);
        assert_eq!(banks[0][0], 7); // pixel 4 valid
        assert_eq!(banks[1][0], 0); // pixel 5 out of range
    }

    #[test]
    fn pwc_ofm_slots_skip_padding() {
        let cfg = BlockCfg { b_r: 1, b_c: 1 };
        let slots = pwc_ofm_slots(0, 2, 2, cfg, 4, 4, 5, 3, 100);
        // Pixels 2..5 valid (3 of 4 rows), channels 2..3 valid (1 of 4).
        assert_eq!(slots.len(), 3);
        assert!(slots.iter().all(|s| s.x < 5 && s.c < 3));
        assert_eq!(slots[0].offset, 100);
    }

    #[test]
    fn fig10_dwc_general_bank_assignment() {
        // S=2, 3-bank example of Fig. 10: rows 0-1 → bank 0, 2-3 → bank 1,
        // 4-5 → bank 2, 6-7 → bank 0 again.
        let padded = Tensor::from_fn(1, 12, 12, |_, y, x| (y * 16 + x) as Word);
        let cfg = BlockCfg { b_r: 1, b_c: 1 };
        let (banks, _) = dwc_general_h_image(&padded, 0, 0, 0, cfg, 3, 3, 3, 2);
        let block_w = 2 * (3 - 1) + 3; // 7
                                       // Bank 0 row 0 (u=0) at offset 0; row 1 (u=1) at offset block_w.
        assert_eq!(banks[0][0], 0);
        assert_eq!(banks[0][block_w], 16);
        // Bank 1 row 2 (u=2, group 1).
        assert_eq!(banks[1][0], 32);
        // u=6 (group 3) wraps to bank 0, slot 1.
        assert_eq!(banks[0][block_w * 2], 96);
    }

    #[test]
    fn dwc_v_image_is_duplicated_kernel() {
        let w = Tensor::from_fn(2, 3, 3, |c, ky, kx| (c * 100 + ky * 10 + kx) as Word);
        let banks = dwc_v_image(&w, 1, 3, 4);
        assert_eq!(banks.len(), 4);
        for b in &banks {
            assert_eq!(b[0], 100);
            assert_eq!(b[5], 112);
            assert_eq!(b[8], 122);
        }
    }

    #[test]
    fn fig11_dwc_s1_v_entries() {
        // 3×3 machine, K=3 on an 11-wide padded image (Fig. 11): bank 0
        // holds X(3, 2), X(3, 5), X(3, 8) then X(4, 0), X(4, 3), X(4, 6).
        let padded = Tensor::from_fn(1, 11, 11, |_, y, x| (y * 16 + x) as Word);
        let cfg = BlockCfg { b_r: 1, b_c: 3 };
        let banks = dwc_s1_v_image(&padded, 0, 0, 0, cfg, 3, 3, 3);
        let v = |y: usize, x: usize| (y * 16 + x) as Word;
        assert_eq!(banks[0][0], v(3, 2));
        assert_eq!(banks[0][1], v(3, 5));
        assert_eq!(banks[0][2], v(3, 8));
        assert_eq!(banks[0][3], v(4, 0));
        assert_eq!(banks[0][4], v(4, 3));
        assert_eq!(banks[0][5], v(4, 6));
        assert_eq!(banks[1][0], v(3, 3));
        assert_eq!(banks[2][3], v(4, 2));
    }

    #[test]
    fn dwc_s1_h_rows_round_robin() {
        let padded = Tensor::from_fn(1, 8, 8, |_, y, x| (y * 16 + x) as Word);
        let cfg = BlockCfg { b_r: 1, b_c: 1 };
        let (banks, addr_ofm) = dwc_s1_h_image(&padded, 0, 0, 0, cfg, 2, 2, 3);
        let block_w = 2 + 2; // B_c·N_c + K−1
                             // Rows 0,2 in bank 0; rows 1,3 in bank 1.
        assert_eq!(banks[0][0], 0);
        assert_eq!(banks[0][block_w], 32);
        assert_eq!(banks[1][0], 16);
        assert_eq!(banks[1][block_w + 1], 49);
        // input_rows = 2+2 = 4 → 2 slots per bank.
        assert_eq!(addr_ofm, 2 * block_w);
    }

    #[test]
    fn dwc_ofm_slots_geometry() {
        let cfg = BlockCfg { b_r: 2, b_c: 2 };
        let slots = dwc_ofm_slots(3, 0, 0, cfg, 2, 2, 4, 4, 50);
        assert_eq!(slots.len(), 16);
        let s = slots.iter().find(|s| s.y == 3 && s.x == 2).unwrap();
        // tid_r=1, r=1, tid_c=1, j=0 → bank 1, offset 50 + 1·2·2 + 1·2.
        assert_eq!((s.bank, s.offset, s.c), (1, 50 + 4 + 2, 3));
    }

    #[test]
    fn grf_image_row_major() {
        let w = Tensor::from_fn(1, 3, 3, |_, ky, kx| (ky * 3 + kx) as Word);
        assert_eq!(dwc_grf_image(&w, 0, 3), (0..9).map(|i| i as Word).collect::<Vec<_>>());
    }
}
