//! The PWC (pointwise / matrix-multiplication) mapping (§3.2, Fig. 1).
//!
//! Output-stationary 2-D tiling: PE `(r, c)` accumulates output pixel
//! `p0 + tid_r·N_r + r` × output channel `o0 + tid_c·N_c + c`, reading the
//! shared IFM operand from its row's H-bus and the shared weight operand
//! from its column's V-bus — 100 % MAC utilization during the `N_i`-cycle
//! stream. Standard convolution reaches this mapping through im2col, and
//! one image row is processed per block sequence (`N_h` term of Table 3).

use npcgra_agu::{MemRequest, PwcAgu, TileClock, TilePos};
use npcgra_arch::{CgraSpec, Instruction, MuxSel};
use npcgra_nn::{Activation, ConvKind, ConvLayer, Tensor};

use crate::act;
use crate::layout;
use crate::program::{BlockProgram, StorePort, TileMapping};
use crate::tiling::BlockCfg;

/// Mapping-construction error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapError {
    message: String,
}

impl MapError {
    /// Build a mapping error with the given message.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        MapError { message: message.into() }
    }
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot map layer: {}", self.message)
    }
}

impl std::error::Error for MapError {}

/// The per-tile schedule of the PWC mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PwcMapping {
    agu: PwcAgu,
    ni: usize,
    act: Activation,
}

impl PwcMapping {
    /// Build the tile schedule for reduction length `ni` on `spec`, with the
    /// H-MEM OFM region starting at `addr_ofm`.
    #[must_use]
    pub fn new(ni: usize, spec: &CgraSpec, addr_ofm: usize) -> Self {
        PwcMapping {
            agu: PwcAgu {
                ni,
                nc: spec.cols,
                addr_ifm: 0,
                addr_ofm,
                addr_w: 0,
            },
            ni,
            act: Activation::None,
        }
    }

    /// Builder-style: fuse an activation into the tile epilogue.
    #[must_use]
    pub fn with_activation(mut self, act: Activation) -> Self {
        self.act = act;
        self
    }

    fn ep(&self) -> usize {
        act::epilogue_len(self.act) as usize
    }

    /// The zero-based store cycle, if `t_cycle` is a store cycle.
    fn store_step(&self, clock: TileClock) -> Option<usize> {
        let t = clock.t_cycle as usize;
        let start = self.ni + self.ep();
        (t >= start && t < start + self.agu.nc).then(|| t - start)
    }

    /// Synthesize the counter state the epilogue-free AGU expects for store
    /// cycle `j` (its store window starts one bubble after the stream).
    fn agu_store_clock(&self, j: usize) -> TileClock {
        TileClock {
            t_cycle: (self.ni + 1 + j) as u64,
            t_wrap: 1,
            t_wcycle: (1 + j) as u64,
        }
    }
}

impl TileMapping for PwcMapping {
    fn phase_len(&self, t_wrap: u64) -> Option<u64> {
        match t_wrap {
            0 => Some(self.ni as u64),
            1 => Some((self.ep() + self.agu.nc) as u64),
            _ => None,
        }
    }

    fn tile_latency(&self) -> u64 {
        (self.ni + self.ep() + self.agu.nc) as u64
    }

    fn pe_instruction(&self, clock: TileClock, _pos: TilePos, _r: usize, _c: usize) -> Instruction {
        let t = clock.t_cycle as usize;
        if t == 0 {
            Instruction::mul(MuxSel::HBus, MuxSel::VBus)
        } else if t < self.ni {
            Instruction::mac(MuxSel::HBus, MuxSel::VBus)
        } else if t < self.ni + self.ep() {
            act::epilogue_instruction(self.act, (t - self.ni) as u64)
        } else {
            Instruction::nop()
        }
    }

    fn h_request(&self, clock: TileClock, pos: TilePos, aid_r: usize) -> Option<MemRequest> {
        let t = clock.t_cycle as usize;
        if t < self.ni {
            self.agu.h_request(clock, pos, aid_r)
        } else {
            let j = self.store_step(clock)?;
            self.agu.h_request(self.agu_store_clock(j), pos, aid_r)
        }
    }

    fn v_request(&self, clock: TileClock, pos: TilePos, aid_c: usize) -> Option<MemRequest> {
        ((clock.t_cycle as usize) < self.ni)
            .then(|| self.agu.v_request(clock, pos, aid_c))
            .flatten()
    }

    fn grf_index(&self, clock: TileClock) -> Option<usize> {
        let t = clock.t_cycle as usize;
        let step = act::grf_read_step(self.act)?;
        (t == self.ni + step as usize).then_some(0)
    }

    fn store_port(&self, clock: TileClock) -> Option<StorePort> {
        self.store_step(clock).map(|column| StorePort { column })
    }
}

/// A whole pointwise layer mapped onto a machine: block geometry plus lazy
/// block materialization.
///
/// # Example
///
/// ```
/// use npcgra_arch::CgraSpec;
/// use npcgra_nn::ConvLayer;
/// use npcgra_kernels::pwc::PwcLayerMap;
///
/// let layer = ConvLayer::pointwise("pw", 32, 64, 112, 112);
/// let map = PwcLayerMap::new(&layer, &CgraSpec::np_cgra(4, 4)).unwrap();
/// assert!(map.num_blocks() >= 112); // at least one block per image row
/// ```
#[derive(Debug, Clone)]
pub struct PwcLayerMap {
    layer: ConvLayer,
    spec: CgraSpec,
    cfg: BlockCfg,
    blocks_p: usize,
    blocks_o: usize,
    addr_ofm: usize,
}

impl PwcLayerMap {
    /// Plan the layer.
    ///
    /// # Errors
    ///
    /// Returns [`MapError`] if the layer is not pointwise or its reduction
    /// (`N_i`) cannot fit a single H-MEM bank even at the minimum block.
    pub fn new(layer: &ConvLayer, spec: &CgraSpec) -> Result<Self, MapError> {
        if layer.kind() != ConvKind::Pointwise {
            return Err(MapError::new(format!("{} is not pointwise", layer.name())));
        }
        let cfg = BlockCfg::choose_pwc(spec, layer.in_channels(), layer.out_w(), layer.out_channels());
        let budget = BlockCfg::hmem_words_per_bank(spec);
        if cfg.b_r * layer.in_channels() + cfg.b_r * cfg.b_c * spec.cols > budget {
            return Err(MapError::new(format!(
                "N_i = {} exceeds the per-bank budget {budget}",
                layer.in_channels()
            )));
        }
        let blocks_p = BlockCfg::blocks_to_cover(layer.out_w(), cfg.b_r * spec.rows);
        let blocks_o = BlockCfg::blocks_to_cover(layer.out_channels(), cfg.b_c * spec.cols);
        Ok(PwcLayerMap {
            layer: layer.clone(),
            spec: *spec,
            cfg,
            blocks_p,
            blocks_o,
            addr_ofm: cfg.b_r * layer.in_channels(),
        })
    }

    /// Chosen block geometry.
    #[must_use]
    pub fn cfg(&self) -> BlockCfg {
        self.cfg
    }

    /// Blocks in the whole layer: rows × pixel-chunks × channel-chunks.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.layer.out_h() * self.blocks_p * self.blocks_o
    }

    /// Compute cycles of any one block (they are uniform).
    #[must_use]
    pub fn block_compute_cycles(&self) -> u64 {
        let tile = PwcMapping::new(self.layer.in_channels(), &self.spec, self.addr_ofm)
            .with_activation(self.layer.activation())
            .tile_latency();
        (self.cfg.b_r * self.cfg.b_c) as u64 * tile
    }

    /// Words DMA moves in per block (IFM pixels + weights).
    #[must_use]
    pub fn block_input_words(&self) -> u64 {
        let ifm = self.cfg.b_r * self.spec.rows * self.layer.in_channels();
        let w = self.cfg.b_c * self.spec.cols * self.layer.in_channels();
        (ifm + w) as u64
    }

    /// Words DMA moves out per block (the OFM region).
    #[must_use]
    pub fn block_output_words(&self) -> u64 {
        (self.cfg.b_r * self.spec.rows * self.cfg.b_c * self.spec.cols) as u64
    }

    /// Useful MACs in one block (utilization accounting).
    #[must_use]
    pub fn block_macs(&self) -> u64 {
        (self.cfg.b_r * self.spec.rows * self.cfg.b_c * self.spec.cols) as u64 * self.layer.in_channels() as u64
    }

    /// Materialize block `idx` against real data.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= num_blocks()` or tensor shapes mismatch the layer.
    #[must_use]
    pub fn materialize(&self, idx: usize, ifm: &Tensor, weights: &Tensor) -> BlockProgram {
        assert!(idx < self.num_blocks(), "block {idx} out of range");
        let per_row = self.blocks_p * self.blocks_o;
        let y = idx / per_row;
        let p_blk = (idx % per_row) / self.blocks_o;
        let o_blk = idx % self.blocks_o;
        let p0 = p_blk * self.cfg.b_r * self.spec.rows;
        let o0 = o_blk * self.cfg.b_c * self.spec.cols;
        let (h_banks, addr_ofm) = layout::pwc_h_image(ifm, y, p0, self.cfg, self.spec.rows, self.spec.cols);
        let v_banks = layout::pwc_v_image(weights, o0, self.cfg, self.spec.cols);
        let ofm_slots = layout::pwc_ofm_slots(
            y,
            p0,
            o0,
            self.cfg,
            self.spec.rows,
            self.spec.cols,
            self.layer.out_w(),
            self.layer.out_channels(),
            addr_ofm,
        );
        BlockProgram {
            label: format!("{}[y={y},p={p0},o={o0}]", self.layer.name()),
            h_banks,
            v_banks,
            grf: crate::act::grf_constant(self.layer.activation()).map_or_else(Vec::new, |c| vec![c]),
            weight_buffer: Vec::new(),
            tiles: TilePos::first(self.cfg.b_r, self.cfg.b_c),
            mapping: Box::new(
                PwcMapping::new(self.layer.in_channels(), &self.spec, addr_ofm).with_activation(self.layer.activation()),
            ),
            ofm_slots,
            dma_in_words: self.block_input_words(),
            ofm_words: self.block_output_words(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec4() -> CgraSpec {
        CgraSpec::np_cgra(4, 4)
    }

    #[test]
    fn table5_pwc_block_plan() {
        // MobileNet V1 pw1 on the 4×4 machine: T = 32 + 4 + 1 = 37, one
        // block per image row covering all pixels and channels.
        let layer = ConvLayer::pointwise("pw1", 32, 64, 112, 112);
        let map = PwcLayerMap::new(&layer, &spec4()).unwrap();
        let tiles = (map.cfg().b_r * map.cfg().b_c) as u64;
        assert_eq!(map.block_compute_cycles() / tiles, 37);
        // Layer compute cycles ≈ paper's 3.72 ms at 500 MHz.
        let total = map.num_blocks() as u64 * map.block_compute_cycles();
        let ms = total as f64 / 500e6 * 1e3;
        assert!((3.5..4.0).contains(&ms), "PWC compute {ms} ms");
    }

    #[test]
    fn rejects_depthwise() {
        let layer = ConvLayer::depthwise("dw", 8, 8, 8, 3, 1, 1);
        assert!(PwcLayerMap::new(&layer, &spec4()).is_err());
    }

    #[test]
    fn rejects_oversize_reduction() {
        let mut spec = spec4();
        spec.hmem_bytes = 256; // 32 words per bank
        let layer = ConvLayer::pointwise("pw", 64, 8, 4, 4);
        assert!(PwcLayerMap::new(&layer, &spec).is_err());
    }

    #[test]
    fn pe_instructions_stream_then_idle() {
        let m = PwcMapping::new(4, &spec4(), 100);
        let pos = TilePos::first(1, 1);
        let mut clock = TileClock::start();
        let i0 = m.pe_instruction(clock, pos, 0, 0);
        assert_eq!(i0.op, npcgra_arch::Op::Mul);
        clock.step(false);
        assert_eq!(m.pe_instruction(clock, pos, 2, 3).op, npcgra_arch::Op::Mac);
        for _ in 1..4 {
            clock.step(false);
        }
        assert_eq!(m.pe_instruction(clock, pos, 0, 0).op, npcgra_arch::Op::Nop);
    }

    #[test]
    fn block_count_covers_layer() {
        let layer = ConvLayer::pointwise("pw", 16, 24, 10, 10);
        let map = PwcLayerMap::new(&layer, &spec4()).unwrap();
        let per_block_pixels = map.cfg().b_r * 4;
        let per_block_chans = map.cfg().b_c * 4;
        assert!(map.num_blocks() * per_block_pixels * per_block_chans >= 10 * 10 * 24 / 10);
        assert_eq!(map.num_blocks() % layer.out_h(), 0);
    }

    #[test]
    fn materialized_block_is_consistent() {
        let layer = ConvLayer::pointwise("pw", 8, 8, 6, 6);
        let map = PwcLayerMap::new(&layer, &spec4()).unwrap();
        let ifm = Tensor::random(8, 6, 6, 1);
        let w = layer.random_weights(2);
        let b = map.materialize(0, &ifm, &w);
        assert_eq!(b.h_banks.len(), 4);
        assert_eq!(b.v_banks.len(), 4);
        assert!(b.mapping.uses_vbus());
        assert_eq!(b.compute_cycles(), map.block_compute_cycles());
        assert!(!b.ofm_slots.is_empty());
    }
}
