//! Channel-batched stride-1 DWC — the §5.4 "further optimization".
//!
//! The paper notes that its DWC flow "repeats processing 1 channel and
//! loading the data", which "takes more communication time than computation
//! time when the height and width of IFM are small", and proposes
//! "continuous processing of channel data" as future work. This module
//! implements it: one block carries **several channels'** H/V images
//! back-to-back in the banks, the Weight Buffer (Table 4: 64 kernel slots)
//! holds one kernel per channel, and the controller refills the GRF per
//! tile — so one DMA transaction (one 200-cycle latency) serves the whole
//! channel group instead of one per channel.
//!
//! On MobileNet V2's late stages (7×7 and 14×14 feature maps with hundreds
//! of channels) this turns DMA-bound layers compute-bound.

use npcgra_agu::{MemRequest, TileClock, TilePos};
use npcgra_arch::{CgraSpec, Instruction};
use npcgra_nn::{ConvKind, ConvLayer, Tensor, Word};

use crate::act;
use crate::dwc_s1::DwcS1Mapping;
use crate::layout;
use crate::program::{BlockProgram, StorePort, TileMapping};
use crate::pwc::MapError;
use crate::tiling::BlockCfg;

/// The batched tile schedule: the channel index rides in the tile-row
/// coordinate (`tid_r = ch · B_r + inner_tid_r`), and every request is
/// offset into that channel's segment of the bank images.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchedDwcS1Mapping {
    inner: DwcS1Mapping,
    b_r: usize,
    /// Per-channel H-bank segment length in words.
    h_stride: usize,
    /// Per-channel V-bank segment length in words.
    v_stride: usize,
}

impl BatchedDwcS1Mapping {
    /// Wrap the single-channel schedule with per-channel segment strides.
    #[must_use]
    pub fn new(inner: DwcS1Mapping, b_r: usize, h_stride: usize, v_stride: usize) -> Self {
        BatchedDwcS1Mapping {
            inner,
            b_r,
            h_stride,
            v_stride,
        }
    }

    /// Split the batched row coordinate into `(channel, inner position)`.
    fn split(&self, pos: TilePos) -> (usize, TilePos) {
        let ch = pos.tid_r / self.b_r;
        let inner = TilePos {
            tid_r: pos.tid_r % self.b_r,
            tid_c: pos.tid_c,
            b_r: self.b_r,
            b_c: pos.b_c,
        };
        (ch, inner)
    }
}

impl TileMapping for BatchedDwcS1Mapping {
    fn phase_len(&self, t_wrap: u64) -> Option<u64> {
        self.inner.phase_len(t_wrap)
    }

    fn tile_latency(&self) -> u64 {
        self.inner.tile_latency()
    }

    fn pe_instruction(&self, clock: TileClock, pos: TilePos, r: usize, c: usize) -> Instruction {
        let (_, inner) = self.split(pos);
        self.inner.pe_instruction(clock, inner, r, c)
    }

    fn h_request(&self, clock: TileClock, pos: TilePos, aid_r: usize) -> Option<MemRequest> {
        let (ch, inner) = self.split(pos);
        let mut req = self.inner.h_request(clock, inner, aid_r)?;
        req.offset += ch * self.h_stride;
        Some(req)
    }

    fn v_request(&self, clock: TileClock, pos: TilePos, aid_c: usize) -> Option<MemRequest> {
        let (ch, inner) = self.split(pos);
        let mut req = self.inner.v_request(clock, inner, aid_c)?;
        req.offset += ch * self.v_stride;
        Some(req)
    }

    fn grf_index(&self, clock: TileClock) -> Option<usize> {
        self.inner.grf_index(clock)
    }

    fn grf_slot(&self, pos: TilePos) -> usize {
        self.split(pos).0
    }

    fn store_port(&self, clock: TileClock) -> Option<StorePort> {
        self.inner.store_port(clock)
    }
}

/// A stride-1 depthwise layer with channels batched per block.
///
/// # Example
///
/// ```
/// use npcgra_arch::CgraSpec;
/// use npcgra_nn::ConvLayer;
/// use npcgra_kernels::dwc_batched::DwcS1BatchedLayerMap;
///
/// // A late MobileNet-V2 stage: tiny spatial dims, many channels.
/// let layer = ConvLayer::depthwise("s7.dw", 960, 7, 7, 3, 1, 1);
/// let map = DwcS1BatchedLayerMap::new(&layer, &CgraSpec::table4()).unwrap();
/// assert!(map.channels_per_block() > 1, "batching should engage");
/// ```
#[derive(Debug, Clone)]
pub struct DwcS1BatchedLayerMap {
    layer: ConvLayer,
    spec: CgraSpec,
    cfg: BlockCfg,
    cb: usize,
    blocks_h: usize,
    blocks_w: usize,
    h_stride: usize,
    v_stride: usize,
    addr_ofm: usize,
}

impl DwcS1BatchedLayerMap {
    /// Plan the layer, choosing the channel batch to fill local memory (up
    /// to the Weight Buffer's 64 slots).
    ///
    /// # Errors
    ///
    /// Returns [`MapError`] if the layer is not stride-1 depthwise or the
    /// kernel exceeds the GRF.
    pub fn new(layer: &ConvLayer, spec: &CgraSpec) -> Result<Self, MapError> {
        if layer.kind() != ConvKind::Depthwise || layer.s() != 1 {
            return Err(MapError::new(format!("{} is not a stride-1 depthwise layer", layer.name())));
        }
        let k = layer.k();
        if k * k >= npcgra_arch::grf::GRF_WORDS {
            return Err(MapError::new(format!("K = {k} kernel does not fit the GRF")));
        }
        let cfg = BlockCfg::choose_dwc(spec, k, 1, layer.out_h(), layer.out_w());
        let block_w = cfg.b_c * spec.cols + k - 1;
        let input_rows = cfg.b_r * spec.rows + k - 1;
        let slots_per_bank = input_rows.div_ceil(spec.rows);
        // Per-channel segment: IFM rows + the OFM region.
        let h_stride = slots_per_bank * block_w + cfg.b_r * cfg.b_c * spec.cols;
        let v_stride = (cfg.b_r * (k - 1) * cfg.b_c).max(1);

        let h_budget = BlockCfg::hmem_words_per_bank(spec);
        let v_budget = BlockCfg::vmem_words_per_bank(spec);
        let cb = (h_budget / h_stride)
            .min(v_budget / v_stride)
            .clamp(1, 64) // Weight Buffer capacity (Table 4)
            .min(layer.in_channels());

        let blocks_h = BlockCfg::blocks_to_cover(layer.out_h(), cfg.b_r * spec.rows);
        let blocks_w = BlockCfg::blocks_to_cover(layer.out_w(), cfg.b_c * spec.cols);
        let addr_ofm = slots_per_bank * block_w;
        Ok(DwcS1BatchedLayerMap {
            layer: layer.clone(),
            spec: *spec,
            cfg,
            cb,
            blocks_h,
            blocks_w,
            h_stride,
            v_stride,
            addr_ofm,
        })
    }

    /// Channels packed per block.
    #[must_use]
    pub fn channels_per_block(&self) -> usize {
        self.cb
    }

    /// Blocks in the whole layer.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.layer.in_channels().div_ceil(self.cb) * self.blocks_h * self.blocks_w
    }

    /// Compute cycles per block: `cb` channels × tiles × tile latency.
    #[must_use]
    pub fn block_compute_cycles(&self) -> u64 {
        let tile = DwcS1Mapping::new(self.layer.k(), &self.spec, 0)
            .with_activation(self.layer.activation())
            .tile_latency();
        (self.cb * self.cfg.b_r * self.cfg.b_c) as u64 * tile
    }

    /// Words DMA moves in per block.
    #[must_use]
    pub fn block_input_words(&self) -> u64 {
        let k = self.layer.k();
        let block_w = self.cfg.b_c * self.spec.cols + k - 1;
        let input_rows = self.cfg.b_r * self.spec.rows + k - 1;
        let v_entries = self.cfg.b_r * (k - 1) * self.cfg.b_c * self.spec.cols;
        (self.cb * (input_rows * block_w + v_entries + k * k)) as u64
    }

    /// Words DMA moves out per block.
    #[must_use]
    pub fn block_output_words(&self) -> u64 {
        (self.cb * self.cfg.b_r * self.spec.rows * self.cfg.b_c * self.spec.cols) as u64
    }

    /// Materialize block `idx` against the padded IFM and `(N_i, K, K)`
    /// weights.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= num_blocks()`.
    #[must_use]
    pub fn materialize(&self, idx: usize, padded: &Tensor, weights: &Tensor) -> BlockProgram {
        assert!(idx < self.num_blocks(), "block {idx} out of range");
        let per_grp = self.blocks_h * self.blocks_w;
        let grp = idx / per_grp;
        let rb = (idx % per_grp) / self.blocks_w;
        let cb_idx = idx % self.blocks_w;
        let r0 = rb * self.cfg.b_r * self.spec.rows;
        let c0 = cb_idx * self.cfg.b_c * self.spec.cols;
        let k = self.layer.k();
        let ch0 = grp * self.cb;
        let channels: Vec<usize> = (ch0..(ch0 + self.cb).min(self.layer.in_channels())).collect();

        // Concatenate per-channel images at the channel stride. The last
        // group may be short; its tail segments stay zero (their tiles run
        // but produce no extracted outputs).
        let mut h_banks = vec![vec![0 as Word; self.cb * self.h_stride]; self.spec.rows];
        let mut v_banks = vec![vec![0 as Word; self.cb * self.v_stride]; self.spec.cols];
        let mut weight_buffer = Vec::with_capacity(self.cb);
        let mut ofm_slots = Vec::new();
        for (slot, &ch) in channels.iter().enumerate() {
            let (h, addr_ofm) = layout::dwc_s1_h_image(padded, ch, r0, c0, self.cfg, self.spec.rows, self.spec.cols, k);
            debug_assert_eq!(addr_ofm, self.addr_ofm);
            for (bank, image) in h.into_iter().enumerate() {
                let base = slot * self.h_stride;
                h_banks[bank][base..base + image.len()].copy_from_slice(&image);
            }
            let v = layout::dwc_s1_v_image(padded, ch, r0, c0, self.cfg, self.spec.rows, self.spec.cols, k);
            for (bank, image) in v.into_iter().enumerate() {
                let base = slot * self.v_stride;
                v_banks[bank][base..base + image.len()].copy_from_slice(&image);
            }
            let mut kernel = layout::dwc_grf_image(weights, ch, k);
            if let Some(c) = act::grf_constant(self.layer.activation()) {
                kernel.push(c);
            }
            weight_buffer.push(kernel);
            for mut s in layout::dwc_ofm_slots(
                ch,
                r0,
                c0,
                self.cfg,
                self.spec.rows,
                self.spec.cols,
                self.layer.out_h(),
                self.layer.out_w(),
                self.addr_ofm,
            ) {
                s.offset += slot * self.h_stride;
                ofm_slots.push(s);
            }
        }
        // Pad the Weight Buffer for the short tail group (tiles of absent
        // channels still index a slot).
        while weight_buffer.len() < self.cb {
            weight_buffer.push(vec![0; k * k]);
        }

        let inner = DwcS1Mapping::new(k, &self.spec, self.addr_ofm).with_activation(self.layer.activation());
        BlockProgram {
            label: format!("{}[batched ch={ch0}+{},r={r0},c={c0}]", self.layer.name(), self.cb),
            h_banks,
            v_banks,
            grf: Vec::new(),
            weight_buffer,
            tiles: TilePos::first(self.cb * self.cfg.b_r, self.cfg.b_c),
            mapping: Box::new(BatchedDwcS1Mapping::new(inner, self.cfg.b_r, self.h_stride, self.v_stride)),
            ofm_slots,
            dma_in_words: self.block_input_words(),
            ofm_words: self.block_output_words(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_engages_on_small_spatial_layers() {
        let layer = ConvLayer::depthwise("dw", 960, 7, 7, 3, 1, 1);
        let map = DwcS1BatchedLayerMap::new(&layer, &CgraSpec::table4()).unwrap();
        assert!(map.channels_per_block() >= 8, "cb = {}", map.channels_per_block());
        assert!(map.num_blocks() < 960);
    }

    #[test]
    fn batching_respects_weight_buffer_capacity() {
        let layer = ConvLayer::depthwise("dw", 4096, 4, 4, 3, 1, 1);
        let map = DwcS1BatchedLayerMap::new(&layer, &CgraSpec::table4()).unwrap();
        assert!(map.channels_per_block() <= 64);
    }

    #[test]
    fn rejects_stride_2() {
        let layer = ConvLayer::depthwise("dw", 8, 8, 8, 3, 2, 1);
        assert!(DwcS1BatchedLayerMap::new(&layer, &CgraSpec::table4()).is_err());
    }

    #[test]
    fn fewer_dma_transactions_than_unbatched() {
        let spec = CgraSpec::table4();
        let layer = ConvLayer::depthwise("dw", 384, 14, 14, 3, 1, 1);
        let batched = DwcS1BatchedLayerMap::new(&layer, &spec).unwrap();
        let plain = crate::dwc_s1::DwcS1LayerMap::new(&layer, &spec).unwrap();
        assert!(
            batched.num_blocks() * 4 <= plain.num_blocks(),
            "batched {} vs plain {}",
            batched.num_blocks(),
            plain.num_blocks()
        );
    }
}
