//! Closed-form performance model (Table 3).
//!
//! | | tile latency `T` | layer latency |
//! |---|---|---|
//! | PWC | `N_i + λ` | `B_r·B_c·T · ⌈N_w/(B_r·N_r)⌉ · ⌈N_o/(B_c·N_c)⌉ · N_h` |
//! | DWC general | `K((N_c−1)S+K) + λ` | `B_r·B_c·T · ⌈N_h/(B_r·N_r)⌉ · ⌈N_w/(B_c·N_c)⌉ · N_i` |
//! | DWC optimized | `K² + N_c − 1 + λ` | (same form as general) |
//!
//! with the pipeline constant λ made explicit: `λ = N_c + 1` for PWC and
//! DWC-general (bubble + stores) and `λ = N_c + 2` for DWC-S1 (prologue is
//! part of the `N_c − 1` term; bubble + stores + drain follow). These
//! formulas are validated cycle-for-cycle against the layer maps and the
//! simulator.

use npcgra_arch::CgraSpec;
use npcgra_nn::{ConvKind, ConvLayer};

use crate::tiling::BlockCfg;
use crate::{DwcGeneralMapping, DwcS1Mapping, MatmulDwcMapping, PwcMapping, TileMapping};

/// Compute-only layer latency in cycles for the PWC mapping.
#[must_use]
pub fn pwc_layer_cycles(layer: &ConvLayer, spec: &CgraSpec, cfg: BlockCfg) -> u64 {
    let t = PwcMapping::new(layer.in_channels(), spec, 0).tile_latency();
    let tiles = (cfg.b_r * cfg.b_c) as u64;
    let blocks_p = BlockCfg::blocks_to_cover(layer.out_w(), cfg.b_r * spec.rows) as u64;
    let blocks_o = BlockCfg::blocks_to_cover(layer.out_channels(), cfg.b_c * spec.cols) as u64;
    tiles * t * blocks_p * blocks_o * layer.out_h() as u64
}

/// Compute-only layer latency in cycles for the general DWC mapping.
#[must_use]
pub fn dwc_general_layer_cycles(layer: &ConvLayer, spec: &CgraSpec, cfg: BlockCfg) -> u64 {
    let t = DwcGeneralMapping::new(layer.k(), layer.s(), spec, 0).tile_latency();
    dwc_layer_cycles_with_tile(layer, spec, cfg, t)
}

/// Compute-only layer latency in cycles for the stride-1 DWC mapping.
#[must_use]
pub fn dwc_s1_layer_cycles(layer: &ConvLayer, spec: &CgraSpec, cfg: BlockCfg) -> u64 {
    let t = DwcS1Mapping::new(layer.k(), spec, 0).tile_latency();
    dwc_layer_cycles_with_tile(layer, spec, cfg, t)
}

fn dwc_layer_cycles_with_tile(layer: &ConvLayer, spec: &CgraSpec, cfg: BlockCfg, t: u64) -> u64 {
    let tiles = (cfg.b_r * cfg.b_c) as u64;
    let blocks_h = BlockCfg::blocks_to_cover(layer.out_h(), cfg.b_r * spec.rows) as u64;
    let blocks_w = BlockCfg::blocks_to_cover(layer.out_w(), cfg.b_c * spec.cols) as u64;
    tiles * t * blocks_h * blocks_w * layer.in_channels() as u64
}

/// Compute-only layer latency in cycles for matmul-based DWC with `b_r`
/// tiles per block.
#[must_use]
pub fn matmul_dwc_layer_cycles(layer: &ConvLayer, spec: &CgraSpec, b_r: usize) -> u64 {
    let t = MatmulDwcMapping::new(layer.k(), spec, 0).tile_latency();
    let pixels = layer.out_h() * layer.out_w();
    let blocks_p = BlockCfg::blocks_to_cover(pixels, b_r * spec.rows) as u64;
    b_r as u64 * t * blocks_p * layer.in_channels() as u64
}

/// Tile latency of the stride-1 DWC mapping *without* the V-MEM/V-bus SS
/// path — the §4.2 alternative the paper rejects: each Shift-South phase
/// must stream the southernmost row's `N_c` values over an H-bus across
/// `N_c` cycles instead of one V-bus cycle, adding `(K−1)(N_c−1)` cycles
/// per tile.
#[must_use]
pub fn dwc_s1_tile_latency_without_vmem(k: usize, spec: &CgraSpec) -> u64 {
    DwcS1Mapping::new(k, spec, 0).tile_latency() + ((k - 1) * (spec.cols - 1)) as u64
}

/// MAC utilization of a mapping on a layer: useful MACs ÷ (PEs × cycles).
#[must_use]
pub fn utilization(layer: &ConvLayer, spec: &CgraSpec, cycles: u64) -> f64 {
    if cycles == 0 {
        return 0.0;
    }
    layer.macs() as f64 / (spec.num_pes() as f64 * cycles as f64)
}

/// The best compute-only cycle estimate for a layer using the appropriate
/// NP-CGRA mapping (DWC-S1 for stride-1 depthwise, DWC-general otherwise,
/// PWC for pointwise).
///
/// # Panics
///
/// Panics for standard-convolution layers — lower those through im2col to a
/// pointwise layer first.
#[must_use]
pub fn best_mapping_cycles(layer: &ConvLayer, spec: &CgraSpec) -> u64 {
    match layer.kind() {
        ConvKind::Pointwise => {
            let cfg = BlockCfg::choose_pwc(spec, layer.in_channels(), layer.out_w(), layer.out_channels());
            pwc_layer_cycles(layer, spec, cfg)
        }
        ConvKind::Depthwise if layer.s() == 1 => {
            let cfg = BlockCfg::choose_dwc(spec, layer.k(), 1, layer.out_h(), layer.out_w());
            dwc_s1_layer_cycles(layer, spec, cfg)
        }
        ConvKind::Depthwise => {
            let cfg = BlockCfg::choose_dwc(spec, layer.k(), layer.s(), layer.out_h(), layer.out_w());
            dwc_general_layer_cycles(layer, spec, cfg)
        }
        ConvKind::Standard => panic!("lower standard convolution via im2col before estimating"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npcgra_nn::models;

    fn spec4() -> CgraSpec {
        CgraSpec::np_cgra(4, 4)
    }

    #[test]
    fn table5_latency_reproduction() {
        // Compute-only estimates vs the paper's "Our mapping" column
        // (which includes DMA effects): PWC 3.72 ms, DWC S=1 0.92 ms,
        // DWC S=2 0.81 ms on the 4×4 at 500 MHz.
        let (pw, dw1, dw2) = models::table5_layers();
        let ms = |cy: u64| cy as f64 / 500e6 * 1e3;

        let c_pw = best_mapping_cycles(&pw, &spec4());
        assert!((3.5..3.9).contains(&ms(c_pw)), "PWC {} ms", ms(c_pw));

        let c1 = best_mapping_cycles(&dw1, &spec4());
        assert!((0.85..0.97).contains(&ms(c1)), "DWC S=1 {} ms", ms(c1));

        let c2 = best_mapping_cycles(&dw2, &spec4());
        assert!((0.76..0.90).contains(&ms(c2)), "DWC S=2 {} ms", ms(c2));
    }

    #[test]
    fn table5_utilization_reproduction() {
        let (pw, dw1, dw2) = models::table5_layers();
        let u = |l: &ConvLayer| utilization(l, &spec4(), best_mapping_cycles(l, &spec4()));
        assert!((u(&pw) - 0.8642).abs() < 0.01, "PWC util {}", u(&pw));
        assert!((u(&dw1) - 0.49).abs() < 0.015, "DWC1 util {}", u(&dw1));
        assert!((u(&dw2) - 0.28).abs() < 0.01, "DWC2 util {}", u(&dw2));
    }

    #[test]
    fn table5_matmul_dwc_latency() {
        let (_, dw1, dw2) = models::table5_layers();
        let map1 = crate::matmul_dwc::MatmulDwcLayerMap::new(&dw1, &spec4()).unwrap();
        let ms1 = matmul_dwc_layer_cycles(&dw1, &spec4(), map1.tiles_per_block()) as f64 / 500e6 * 1e3;
        assert!((2.7..3.0).contains(&ms1), "matmul DWC S=1 {ms1} ms (paper 2.82)");
        let map2 = crate::matmul_dwc::MatmulDwcLayerMap::new(&dw2, &spec4()).unwrap();
        let ms2 = matmul_dwc_layer_cycles(&dw2, &spec4(), map2.tiles_per_block()) as f64 / 500e6 * 1e3;
        assert!((1.3..1.5).contains(&ms2), "matmul DWC S=2 {ms2} ms (paper 1.41)");
    }

    #[test]
    fn formulas_match_layer_maps() {
        // The closed forms and the block planners must agree exactly.
        let pw = ConvLayer::pointwise("pw", 24, 40, 20, 20);
        let map = crate::pwc::PwcLayerMap::new(&pw, &spec4()).unwrap();
        assert_eq!(
            pwc_layer_cycles(&pw, &spec4(), map.cfg()),
            map.num_blocks() as u64 * map.block_compute_cycles()
        );

        let dw = ConvLayer::depthwise("dw", 6, 30, 30, 3, 1, 1);
        let map = crate::dwc_s1::DwcS1LayerMap::new(&dw, &spec4()).unwrap();
        assert_eq!(
            dwc_s1_layer_cycles(&dw, &spec4(), map.cfg()),
            map.num_blocks() as u64 * map.block_compute_cycles()
        );

        let dw2 = ConvLayer::depthwise("dw", 6, 30, 30, 3, 2, 1);
        let map = crate::dwc_general::DwcGeneralLayerMap::new(&dw2, &spec4()).unwrap();
        assert_eq!(
            dwc_general_layer_cycles(&dw2, &spec4(), map.cfg()),
            map.num_blocks() as u64 * map.block_compute_cycles()
        );
    }

    #[test]
    fn s1_mapping_beats_general_at_stride1() {
        let dw = ConvLayer::depthwise("dw", 32, 112, 112, 3, 1, 1);
        let cfg = BlockCfg::choose_dwc(&spec4(), 3, 1, 112, 112);
        let opt = dwc_s1_layer_cycles(&dw, &spec4(), cfg);
        let gen = dwc_general_layer_cycles(&dw, &spec4(), cfg);
        assert!(opt < gen, "optimized {opt} should beat general {gen}");
    }

    #[test]
    fn our_dwc_beats_matmul_dwc() {
        // Paper: 1.75–3× better than matmul-based DWC.
        let (_, dw1, dw2) = models::table5_layers();
        for l in [&dw1, &dw2] {
            let ours = best_mapping_cycles(l, &spec4());
            let map = crate::matmul_dwc::MatmulDwcLayerMap::new(l, &spec4()).unwrap();
            let matmul = matmul_dwc_layer_cycles(l, &spec4(), map.tiles_per_block());
            let ratio = matmul as f64 / ours as f64;
            assert!((1.5..3.5).contains(&ratio), "{}: ratio {ratio}", l.name());
        }
    }

    #[test]
    fn pwc_utilization_approaches_one_for_large_ni() {
        // With dimensions that tile evenly, efficiency approaches
        // N_i/(N_i + λ) → 1 as N_i grows.
        let big = ConvLayer::pointwise("pw", 512, 512, 16, 16);
        let cfg = BlockCfg::choose_pwc(&spec4(), 512, 16, 512);
        let u = utilization(&big, &spec4(), pwc_layer_cycles(&big, &spec4(), cfg));
        assert!(u > 0.95, "util {u}");
    }
}
#[cfg(test)]
mod ss_alternative_tests {
    use super::*;

    #[test]
    fn ss_via_hbus_increases_latency_significantly() {
        // §4.2: the V-MEM SS path does each row shift in one cycle; the
        // H-bus alternative needs N_c cycles. On the 4×4 with K=3 the tile
        // grows 18 → 24 cycles (+33 %), and more on wider arrays — the
        // "increases latency significantly" claim.
        let spec4 = CgraSpec::np_cgra(4, 4);
        let with_vmem = DwcS1Mapping::new(3, &spec4, 0).tile_latency();
        let without = dwc_s1_tile_latency_without_vmem(3, &spec4);
        assert_eq!(with_vmem, 18);
        assert_eq!(without, 24);

        let spec8 = CgraSpec::np_cgra(8, 8);
        let w8 = DwcS1Mapping::new(3, &spec8, 0).tile_latency();
        let wo8 = dwc_s1_tile_latency_without_vmem(3, &spec8);
        assert!((wo8 as f64 / w8 as f64) > 1.5, "8x8 penalty {}x", wo8 as f64 / w8 as f64);
    }
}
