//! The optimized stride-1 DWC mapping (§4.2, Figs. 6–8).
//!
//! Output-stationary with operand reuse: after an `N_c−1`-cycle prologue
//! that pre-fills the operand-reuse latches, the array walks the kernel in
//! boustrophedon order, one tap per cycle, with every PE MAC-ing the
//! broadcast GRF weight against an IFM value that is either reused from a
//! neighbour's latch or loaded fresh at the expanding edge (H-busses east/
//! west, V-busses south).

use npcgra_agu::dwc_s1::S1Phase;
use npcgra_agu::{DwcS1Agu, MemRequest, TileClock, TilePos};
use npcgra_arch::{CgraSpec, Instruction, MuxSel, Op, OrnTap};
use npcgra_nn::{Activation, ConvKind, ConvLayer, Tensor};

use crate::act;
use crate::layout;
use crate::program::{BlockProgram, StorePort, TileMapping};
use crate::pwc::MapError;
use crate::tiling::BlockCfg;

/// The per-tile schedule of the stride-1 DWC mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DwcS1Mapping {
    agu: DwcS1Agu,
    nr: usize,
    nc: usize,
    act: Activation,
}

impl DwcS1Mapping {
    /// Build the tile schedule for kernel `k` on `spec`, with the H-MEM OFM
    /// region at `addr_ofm`.
    #[must_use]
    pub fn new(k: usize, spec: &CgraSpec, addr_ofm: usize) -> Self {
        DwcS1Mapping {
            agu: DwcS1Agu {
                k,
                nr: spec.rows,
                nc: spec.cols,
                addr_ifm: 0,
                addr_ofm,
                addr_vm: 0,
            },
            nr: spec.rows,
            nc: spec.cols,
            act: Activation::None,
        }
    }

    /// Builder-style: fuse an activation into the tile epilogue.
    #[must_use]
    pub fn with_activation(mut self, act: Activation) -> Self {
        self.act = act;
        self
    }

    fn ep(&self) -> usize {
        act::epilogue_len(self.act) as usize
    }

    fn store_step(&self, clock: TileClock) -> Option<usize> {
        let t = clock.t_wcycle as usize;
        (clock.t_wrap as usize == self.agu.k && t >= self.ep() && t < self.ep() + self.nc).then(|| t - self.ep())
    }

    fn agu_store_clock(&self, clock: TileClock, j: usize) -> TileClock {
        TileClock {
            t_cycle: clock.t_cycle,
            t_wrap: self.agu.k as u64,
            t_wcycle: (1 + j) as u64,
        }
    }

    /// The underlying AGU configuration.
    #[must_use]
    pub fn agu(&self) -> DwcS1Agu {
        self.agu
    }

    fn reuse(op: Op, source: MuxSel, tap: OrnTap) -> Instruction {
        Instruction {
            op,
            mux_a: source,
            mux_b: MuxSel::Grf,
            in_op: tap,
            orn_en: true,
            ..Instruction::default()
        }
    }
}

impl TileMapping for DwcS1Mapping {
    fn phase_len(&self, t_wrap: u64) -> Option<u64> {
        if (t_wrap as usize) < self.agu.k {
            self.agu.phase_len(t_wrap)
        } else if t_wrap as usize == self.agu.k {
            // Activation epilogue + stores + one drain cycle.
            Some((self.ep() + self.nc + 1) as u64)
        } else {
            None
        }
    }

    fn tile_latency(&self) -> u64 {
        // Prologue + K*K compute + epilogue + stores + drain.
        (self.nc - 1 + self.agu.k * self.agu.k + self.ep() + self.nc + 1) as u64
    }

    fn pe_instruction(&self, clock: TileClock, _pos: TilePos, r: usize, c: usize) -> Instruction {
        if clock.t_wrap as usize == self.agu.k {
            let t = clock.t_wcycle as usize;
            if t < self.ep() {
                return act::epilogue_instruction(self.act, t as u64);
            }
            return Instruction::nop();
        }
        match self.agu.phase(clock) {
            S1Phase::Prologue => {
                let t = clock.t_wcycle as usize;
                if c == self.nc - 1 {
                    // East edge: latch the H-bus value (no compute yet).
                    Instruction {
                        op: Op::Nop,
                        mux_a: MuxSel::HBus,
                        in_op: OrnTap::East,
                        orn_en: true,
                        ..Instruction::default()
                    }
                } else if c + t + 1 >= self.nc && c < self.nc - 1 {
                    // The shift wave has reached this PE: pass the east
                    // neighbour's latch along.
                    Instruction {
                        op: Op::Nop,
                        mux_a: MuxSel::Orn,
                        in_op: OrnTap::East,
                        orn_en: true,
                        ..Instruction::default()
                    }
                } else {
                    Instruction::nop()
                }
            }
            S1Phase::ExpandEast { ky, kx } => {
                let op = if ky == 0 && kx == 0 { Op::Mul } else { Op::Mac };
                let src = if c == self.nc - 1 { MuxSel::HBus } else { MuxSel::Orn };
                Self::reuse(op, src, OrnTap::East)
            }
            S1Phase::ShiftSouth { .. } => {
                let src = if r == self.nr - 1 { MuxSel::VBus } else { MuxSel::Orn };
                Self::reuse(Op::Mac, src, OrnTap::South)
            }
            S1Phase::ExpandWest { .. } => {
                let src = if c == 0 { MuxSel::HBus } else { MuxSel::Orn };
                Self::reuse(Op::Mac, src, OrnTap::West)
            }
            S1Phase::Bubble | S1Phase::Store(_) => Instruction::nop(),
        }
    }

    fn h_request(&self, clock: TileClock, pos: TilePos, aid_r: usize) -> Option<MemRequest> {
        if (clock.t_wrap as usize) < self.agu.k {
            self.agu.h_request(clock, pos, aid_r)
        } else {
            let j = self.store_step(clock)?;
            self.agu.h_request(self.agu_store_clock(clock, j), pos, aid_r)
        }
    }

    fn v_request(&self, clock: TileClock, pos: TilePos, aid_c: usize) -> Option<MemRequest> {
        ((clock.t_wrap as usize) < self.agu.k)
            .then(|| self.agu.v_request(clock, pos, aid_c))
            .flatten()
    }

    fn grf_index(&self, clock: TileClock) -> Option<usize> {
        if (clock.t_wrap as usize) < self.agu.k {
            return self.agu.grf_index(clock);
        }
        // Leaky-ReLU shift constant, stored just past the K*K kernel taps.
        let step = act::grf_read_step(self.act)?;
        (clock.t_wcycle == step).then_some(self.agu.k * self.agu.k)
    }

    fn store_port(&self, clock: TileClock) -> Option<StorePort> {
        self.store_step(clock).map(|column| StorePort { column })
    }
}

/// A whole stride-1 depthwise layer mapped with the optimized schedule.
///
/// # Example
///
/// ```
/// use npcgra_arch::CgraSpec;
/// use npcgra_nn::ConvLayer;
/// use npcgra_kernels::dwc_s1::DwcS1LayerMap;
///
/// let layer = ConvLayer::depthwise("dw1", 32, 112, 112, 3, 1, 1);
/// let map = DwcS1LayerMap::new(&layer, &CgraSpec::np_cgra(4, 4)).unwrap();
/// assert_eq!(map.num_blocks() % 32, 0);
/// ```
#[derive(Debug, Clone)]
pub struct DwcS1LayerMap {
    layer: ConvLayer,
    spec: CgraSpec,
    cfg: BlockCfg,
    blocks_h: usize,
    blocks_w: usize,
}

impl DwcS1LayerMap {
    /// Plan the layer.
    ///
    /// # Errors
    ///
    /// Returns [`MapError`] if the layer is not depthwise with stride 1.
    pub fn new(layer: &ConvLayer, spec: &CgraSpec) -> Result<Self, MapError> {
        if layer.kind() != ConvKind::Depthwise || layer.s() != 1 {
            return Err(MapError::new(format!("{} is not a stride-1 depthwise layer", layer.name())));
        }
        let cfg = BlockCfg::choose_dwc(spec, layer.k(), 1, layer.out_h(), layer.out_w());
        let blocks_h = BlockCfg::blocks_to_cover(layer.out_h(), cfg.b_r * spec.rows);
        let blocks_w = BlockCfg::blocks_to_cover(layer.out_w(), cfg.b_c * spec.cols);
        Ok(DwcS1LayerMap {
            layer: layer.clone(),
            spec: *spec,
            cfg,
            blocks_h,
            blocks_w,
        })
    }

    /// Chosen block geometry.
    #[must_use]
    pub fn cfg(&self) -> BlockCfg {
        self.cfg
    }

    /// Blocks in the whole layer: channels × row-chunks × col-chunks.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.layer.in_channels() * self.blocks_h * self.blocks_w
    }

    /// Compute cycles of any one block.
    #[must_use]
    pub fn block_compute_cycles(&self) -> u64 {
        let tile = DwcS1Mapping::new(self.layer.k(), &self.spec, 0)
            .with_activation(self.layer.activation())
            .tile_latency();
        (self.cfg.b_r * self.cfg.b_c) as u64 * tile
    }

    /// Words DMA moves in per block (H image + SS V image + GRF kernel).
    #[must_use]
    pub fn block_input_words(&self) -> u64 {
        let k = self.layer.k();
        let block_w = self.cfg.b_c * self.spec.cols + k - 1;
        let input_rows = self.cfg.b_r * self.spec.rows + k - 1;
        let v_entries = self.cfg.b_r * (k - 1) * self.cfg.b_c * self.spec.cols;
        (input_rows * block_w + v_entries + k * k) as u64
    }

    /// Words DMA moves out per block.
    #[must_use]
    pub fn block_output_words(&self) -> u64 {
        (self.cfg.b_r * self.spec.rows * self.cfg.b_c * self.spec.cols) as u64
    }

    /// Useful MACs in one block.
    #[must_use]
    pub fn block_macs(&self) -> u64 {
        self.block_output_words() * (self.layer.k() * self.layer.k()) as u64
    }

    /// Materialize block `idx` against the *padded* IFM and the
    /// `(N_i, K, K)` weight tensor.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= num_blocks()`.
    #[must_use]
    pub fn materialize(&self, idx: usize, padded: &Tensor, weights: &Tensor) -> BlockProgram {
        assert!(idx < self.num_blocks(), "block {idx} out of range");
        let per_ch = self.blocks_h * self.blocks_w;
        let ch = idx / per_ch;
        let rb = (idx % per_ch) / self.blocks_w;
        let cb = idx % self.blocks_w;
        let r0 = rb * self.cfg.b_r * self.spec.rows;
        let c0 = cb * self.cfg.b_c * self.spec.cols;
        let k = self.layer.k();
        let (h_banks, addr_ofm) = layout::dwc_s1_h_image(padded, ch, r0, c0, self.cfg, self.spec.rows, self.spec.cols, k);
        let v_banks = layout::dwc_s1_v_image(padded, ch, r0, c0, self.cfg, self.spec.rows, self.spec.cols, k);
        let mut grf = layout::dwc_grf_image(weights, ch, k);
        if let Some(c) = act::grf_constant(self.layer.activation()) {
            grf.push(c); // the leaky-ReLU shift, just past the K*K taps
        }
        let ofm_slots = layout::dwc_ofm_slots(
            ch,
            r0,
            c0,
            self.cfg,
            self.spec.rows,
            self.spec.cols,
            self.layer.out_h(),
            self.layer.out_w(),
            addr_ofm,
        );
        BlockProgram {
            label: format!("{}[ch={ch},r={r0},c={c0}]", self.layer.name()),
            h_banks,
            v_banks,
            grf,
            weight_buffer: Vec::new(),
            tiles: TilePos::first(self.cfg.b_r, self.cfg.b_c),
            mapping: Box::new(DwcS1Mapping::new(k, &self.spec, addr_ofm).with_activation(self.layer.activation())),
            ofm_slots,
            dma_in_words: self.block_input_words(),
            ofm_words: self.block_output_words(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec4() -> CgraSpec {
        CgraSpec::np_cgra(4, 4)
    }

    #[test]
    fn table5_dwc_s1_utilization() {
        // T = K² + 2N_c + 1 = 18 on the 4×4; util = 9·16/(16·18) = 50 %,
        // the paper's 49 % row.
        let m = DwcS1Mapping::new(3, &spec4(), 0);
        assert_eq!(m.tile_latency(), 18);
    }

    #[test]
    fn layer_latency_near_paper() {
        // MobileNet V1 dw1 (S=1): paper reports 0.92 ms on the 4×4.
        let layer = ConvLayer::depthwise("dw1", 32, 112, 112, 3, 1, 1);
        let map = DwcS1LayerMap::new(&layer, &spec4()).unwrap();
        let cycles = map.num_blocks() as u64 * map.block_compute_cycles();
        let ms = cycles as f64 / 500e6 * 1e3;
        assert!((0.85..1.0).contains(&ms), "DWC S=1 compute {ms} ms");
    }

    #[test]
    fn rejects_stride_2() {
        let layer = ConvLayer::depthwise("dw", 8, 8, 8, 3, 2, 1);
        assert!(DwcS1LayerMap::new(&layer, &spec4()).is_err());
    }

    #[test]
    fn prologue_instructions_shift_west() {
        let m = DwcS1Mapping::new(3, &spec4(), 0);
        let pos = TilePos::first(1, 1);
        let clock = TileClock::start(); // prologue cycle 0
        let east = m.pe_instruction(clock, pos, 0, 3);
        assert_eq!(east.mux_a, MuxSel::HBus);
        assert!(east.orn_en);
        assert_eq!(east.op, Op::Nop);
        // PE (0,2) joins the wave only after the first value reaches it.
        assert_eq!(m.pe_instruction(clock, pos, 0, 2).mux_a, MuxSel::Zero);
        let mut c1 = clock;
        c1.step(false);
        assert_eq!(m.pe_instruction(c1, pos, 0, 2).mux_a, MuxSel::Orn);
    }

    #[test]
    fn ss_row_sources() {
        let m = DwcS1Mapping::new(3, &spec4(), 0);
        let pos = TilePos::first(1, 1);
        // Drive the clock to the first SS cycle: t_wrap=1, t_wcycle=0.
        let mut clock = TileClock::start();
        let p0 = m.phase_len(0).unwrap();
        for i in 0..p0 {
            clock.step(i + 1 == p0);
        }
        assert!(matches!(m.agu().phase(clock), S1Phase::ShiftSouth { .. }));
        assert_eq!(m.pe_instruction(clock, pos, 3, 1).mux_a, MuxSel::VBus);
        let inner = m.pe_instruction(clock, pos, 1, 1);
        assert_eq!(inner.mux_a, MuxSel::Orn);
        assert_eq!(inner.in_op, OrnTap::South);
        assert_eq!(inner.op, Op::Mac);
    }

    #[test]
    fn first_compute_cycle_initializes() {
        let m = DwcS1Mapping::new(3, &spec4(), 0);
        let pos = TilePos::first(1, 1);
        let mut clock = TileClock::start();
        for _ in 0..3 {
            clock.step(false); // through the 3-cycle prologue (N_c = 4)
        }
        let ins = m.pe_instruction(clock, pos, 0, 0);
        assert_eq!(ins.op, Op::Mul);
        assert_eq!(ins.mux_b, MuxSel::Grf);
    }

    #[test]
    fn materialized_block_has_grf() {
        let layer = ConvLayer::depthwise("dw", 2, 12, 12, 3, 1, 1);
        let map = DwcS1LayerMap::new(&layer, &spec4()).unwrap();
        let padded = crate::dwc_general::padded_ifm(&layer, &Tensor::random(2, 12, 12, 5));
        let w = layer.random_weights(6);
        let b = map.materialize(map.num_blocks() - 1, &padded, &w);
        assert_eq!(b.grf.len(), 9);
        assert_eq!(b.grf[0], w.get(1, 0, 0));
        assert!(!b.ofm_slots.is_empty());
    }

    #[test]
    fn block_count_scales_with_channels() {
        let l8 = ConvLayer::depthwise("a", 8, 16, 16, 3, 1, 1);
        let l16 = ConvLayer::depthwise("b", 16, 16, 16, 3, 1, 1);
        let m8 = DwcS1LayerMap::new(&l8, &spec4()).unwrap();
        let m16 = DwcS1LayerMap::new(&l16, &spec4()).unwrap();
        assert_eq!(2 * m8.num_blocks(), m16.num_blocks());
    }
}
