//! Fused-activation epilogues.
//!
//! Every mapping has a pipeline bubble between its last MAC cycle and its
//! store phase (the PE outputs settle while the store ports take over).
//! Activations ride in that slot:
//!
//! - **ReLU** replaces the bubble's NOP with `out = max(out, 0)` on every
//!   PE — zero added latency;
//! - **leaky ReLU** (`max(x, x >> shift)`) extends the epilogue to three
//!   cycles: save `x` to r0, shift (`out = x >> shift`, the shift amount
//!   broadcast from the GRF), then `out = max(out, r0)`.
//!
//! This is the "supporting new activation functions (e.g., leaky ReLU)"
//! flexibility the paper's introduction claims for CGRAs, realized with
//! nothing but the existing PE operation set.

use npcgra_arch::{Instruction, MuxSel, Op, WriteSel};
use npcgra_nn::{Activation, Word};

/// Epilogue length in cycles (the original bubble counts as cycle 0).
#[must_use]
pub fn epilogue_len(act: Activation) -> u64 {
    1 + act.extra_tile_cycles()
}

/// The instruction every (output-holding) PE executes at epilogue `step`.
#[must_use]
pub fn epilogue_instruction(act: Activation, step: u64) -> Instruction {
    match (act, step) {
        (Activation::Relu, 0) => Instruction {
            op: Op::Max,
            mux_a: MuxSel::SelfOut,
            mux_b: MuxSel::Zero,
            ..Instruction::default()
        },
        (Activation::LeakyRelu { .. }, 0) => {
            // r0 <- out (NOP keeps the output register intact).
            Instruction {
                op: Op::Nop,
                wr_en: true,
                wr_reg: 0,
                wr_sel: WriteSel::SelfOut,
                ..Instruction::default()
            }
        }
        (Activation::LeakyRelu { .. }, 1) => {
            // out <- out >> shift, shift broadcast from the GRF.
            Instruction {
                op: Op::Shr,
                mux_a: MuxSel::SelfOut,
                mux_b: MuxSel::Grf,
                ..Instruction::default()
            }
        }
        (Activation::LeakyRelu { .. }, 2) => {
            // out <- max(out, r0) = max(x >> shift, x).
            Instruction {
                op: Op::Max,
                mux_a: MuxSel::SelfOut,
                mux_b: MuxSel::Reg,
                reg_b: 0,
                ..Instruction::default()
            }
        }
        _ => Instruction::nop(),
    }
}

/// The epilogue step that reads the GRF (the shift constant), if any.
#[must_use]
pub fn grf_read_step(act: Activation) -> Option<u64> {
    matches!(act, Activation::LeakyRelu { .. }).then_some(1)
}

/// The GRF word holding the shift constant, if the activation needs one.
#[must_use]
pub fn grf_constant(act: Activation) -> Option<Word> {
    match act {
        Activation::LeakyRelu { shift } => Some(Word::from(shift)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths() {
        assert_eq!(epilogue_len(Activation::None), 1);
        assert_eq!(epilogue_len(Activation::Relu), 1);
        assert_eq!(epilogue_len(Activation::LeakyRelu { shift: 2 }), 3);
    }

    #[test]
    fn relu_is_single_max() {
        let i = epilogue_instruction(Activation::Relu, 0);
        assert_eq!(i.op, Op::Max);
        assert_eq!((i.mux_a, i.mux_b), (MuxSel::SelfOut, MuxSel::Zero));
    }

    #[test]
    fn none_is_nop() {
        assert_eq!(epilogue_instruction(Activation::None, 0), Instruction::nop());
    }

    #[test]
    fn leaky_sequence_computes_the_identity() {
        // Drive a PE through the 3-step epilogue and check the result for
        // positive and negative accumulators.
        use npcgra_arch::{DualModeMac, MacMode, Pe, PeInputs};
        let act = Activation::LeakyRelu { shift: 3 };
        let mac = DualModeMac::new(MacMode::Chained);
        for x in [-1000i32, -9, -1, 0, 5, 1000] {
            let mut pe = Pe::new();
            pe.set_out(x);
            for step in 0..3 {
                let io = PeInputs {
                    grf: Some(3),
                    ..PeInputs::default()
                };
                pe.step(&epilogue_instruction(act, step), &io, mac).unwrap();
            }
            assert_eq!(pe.out(), act.apply_acc(x), "x = {x}");
        }
    }

    #[test]
    fn grf_plumbing() {
        assert_eq!(grf_read_step(Activation::Relu), None);
        assert_eq!(grf_read_step(Activation::LeakyRelu { shift: 4 }), Some(1));
        assert_eq!(grf_constant(Activation::LeakyRelu { shift: 4 }), Some(4));
        assert_eq!(grf_constant(Activation::Relu), None);
    }
}
