//! The central consistency property of the whole mapping stack: for random
//! geometries, the IFM element the *schedule* needs each cycle is exactly
//! the word the *AGU address* finds in the *layout's* bank image. If any of
//! the three (schedule semantics, Algorithms 1–3, Figs. 9–11 layouts)
//! drifts, these tests catch it without running the full machine.

use npcgra_agu::{AccessKind, TileClock, TilePos};
use npcgra_arch::CgraSpec;
use npcgra_kernels::dwc_s1::DwcS1LayerMap;
use npcgra_kernels::pwc::PwcLayerMap;
use npcgra_kernels::BlockProgram;
use npcgra_nn::{ConvLayer, Tensor, Word};
use proptest::prelude::*;

/// Walk every cycle of every tile of a block, resolving each H/V load
/// through the bank images, and hand the values to `check`.
fn walk_loads(prog: &BlockProgram, rows: usize, cols: usize, mut check: impl FnMut(&str, usize, u64, usize, Word)) {
    let mapping = prog.mapping.as_ref();
    let mut pos = TilePos::first(prog.tiles.b_r, prog.tiles.b_c);
    loop {
        let mut clock = TileClock::start();
        let mut remaining = mapping.phase_len(0).unwrap();
        loop {
            for r in 0..rows {
                if let Some(req) = mapping.h_request(clock, pos, r) {
                    if req.kind == AccessKind::Load {
                        let v = prog.h_banks[req.bank][req.offset];
                        check("H", pos.index(), clock.t_cycle, r, v);
                    }
                }
            }
            for c in 0..cols {
                if let Some(req) = mapping.v_request(clock, pos, c) {
                    if req.kind == AccessKind::Load {
                        let v = prog.v_banks[req.bank][req.offset];
                        check("V", pos.index(), clock.t_cycle, c, v);
                    }
                }
            }
            remaining -= 1;
            if remaining == 0 {
                match mapping.phase_len(clock.t_wrap + 1) {
                    Some(len) => {
                        clock.step(true);
                        remaining = len;
                    }
                    None => break,
                }
            } else {
                clock.step(false);
            }
        }
        if !pos.advance() {
            break;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// PWC: H-bus r at stream cycle t must carry channel t of pixel
    /// (block base + tid_r·N_r + r); V-bus c must carry weight (t, oc).
    #[test]
    fn pwc_loads_are_the_right_operands(
        ni in 2usize..20, no in 1usize..20, w in 2usize..12,
        rows in 2usize..5, cols in 2usize..5,
    ) {
        let spec = CgraSpec::np_cgra(rows, cols);
        // Tag every IFM element with a unique value: channel major.
        let layer = ConvLayer::pointwise("pw", ni, no, 1, w);
        let map = PwcLayerMap::new(&layer, &spec).unwrap();
        let ifm = Tensor::from_fn(ni, 1, w, |i, _, p| (p * 64 + i) as Word);
        let weights = Tensor::from_fn(no, 1, ni, |o, _, i| (o * 64 + i) as Word + 1000);
        let prog = map.materialize(0, &ifm, &weights);
        let nc = cols;
        let mut violations: Vec<String> = Vec::new();
        walk_loads(&prog, rows, cols, |bus, tile, t, lane, v| {
            let (tid_r, tid_c) = (tile / map.cfg().b_c, tile % map.cfg().b_c);
            if bus == "H" && (t as usize) < ni {
                let pixel = tid_r * rows + lane;
                if pixel < w && v as usize != pixel * 64 + t as usize {
                    violations.push(format!("H pixel {pixel} ch {t}: got {v}"));
                }
            } else if bus == "V" && (t as usize) < ni {
                let oc = tid_c * nc + lane;
                if oc < no && v as usize != oc * 64 + t as usize + 1000 {
                    violations.push(format!("V oc {oc} ch {t}: got {v}"));
                }
            }
        });
        prop_assert!(violations.is_empty(), "{:?}", &violations[..violations.len().min(5)]);
    }

    /// DWC-S1: every fresh H load carries the tile-local IFM coordinate the
    /// schedule documents (`h_loaded_ifm_coord`), resolved through the
    /// Fig. 11 layouts.
    #[test]
    fn dwc_s1_loads_match_declared_coordinates(
        h in 6usize..20, w in 6usize..20,
        rows in 2usize..5, cols in 2usize..5,
    ) {
        let spec = CgraSpec::np_cgra(rows, cols);
        let layer = ConvLayer::depthwise("dw", 1, h, w, 3, 1, 1);
        let map = DwcS1LayerMap::new(&layer, &spec).unwrap();
        // Unique tag per padded-image coordinate.
        let padded = Tensor::from_fn(1, h + 2, w + 2, |_, y, x| (y * 256 + x) as Word);
        let weights = layer.random_weights(1);
        let prog = map.materialize(0, &padded, &weights);
        let agu = npcgra_agu::DwcS1Agu { k: 3, nr: rows, nc: cols, addr_ifm: 0, addr_ofm: 0, addr_vm: 0 };

        let mapping = prog.mapping.as_ref();
        let mut pos = TilePos::first(prog.tiles.b_r, prog.tiles.b_c);
        loop {
            let mut clock = TileClock::start();
            let mut remaining = mapping.phase_len(0).unwrap();
            loop {
                for r in 0..rows {
                    if let (Some(req), Some((ty, tx))) =
                        (mapping.h_request(clock, pos, r), agu.h_loaded_ifm_coord(clock, pos, r))
                    {
                        if req.kind == AccessKind::Load && ty < h + 2 && tx < w + 2 {
                            let v = prog.h_banks[req.bank][req.offset];
                            prop_assert_eq!(v as usize, ty * 256 + tx, "declared ({},{})", ty, tx);
                        }
                    }
                }
                remaining -= 1;
                if remaining == 0 {
                    match mapping.phase_len(clock.t_wrap + 1) {
                        Some(len) => { clock.step(true); remaining = len; }
                        None => break,
                    }
                } else {
                    clock.step(false);
                }
            }
            if !pos.advance() {
                break;
            }
        }
    }

    /// No mapping ever issues two same-kind requests to one bank in one
    /// cycle — the §5.2 conflict-freedom claim, as a property over random
    /// geometry.
    #[test]
    fn no_bank_conflicts_any_mapping(
        h in 6usize..18, w in 6usize..18, ch in 1usize..3,
        rows in 2usize..5, cols in 2usize..5, s in 1usize..3,
    ) {
        let spec = CgraSpec::np_cgra(rows, cols);
        let layer = ConvLayer::depthwise("dw", ch, h, w, 3, s, 1);
        let padded = Tensor::random(ch, h + 2, w + 2, 1);
        let weights = layer.random_weights(2);
        let prog = if s == 1 {
            DwcS1LayerMap::new(&layer, &spec).unwrap().materialize(0, &padded, &weights)
        } else {
            npcgra_kernels::dwc_general::DwcGeneralLayerMap::new(&layer, &spec).unwrap().materialize(0, &padded, &weights)
        };
        let mapping = prog.mapping.as_ref();
        let mut pos = TilePos::first(prog.tiles.b_r, prog.tiles.b_c);
        loop {
            let mut clock = TileClock::start();
            let mut remaining = mapping.phase_len(0).unwrap();
            loop {
                let mut h_banks_hit = vec![0u8; rows];
                for r in 0..rows {
                    if let Some(req) = mapping.h_request(clock, pos, r) {
                        if req.kind == AccessKind::Load {
                            h_banks_hit[req.bank] += 1;
                        }
                    }
                }
                prop_assert!(h_banks_hit.iter().all(|&n| n <= 1), "H conflict at t={} {:?}", clock.t_cycle, h_banks_hit);
                remaining -= 1;
                if remaining == 0 {
                    match mapping.phase_len(clock.t_wrap + 1) {
                        Some(len) => { clock.step(true); remaining = len; }
                        None => break,
                    }
                } else {
                    clock.step(false);
                }
            }
            if !pos.advance() {
                break;
            }
        }
    }
}
