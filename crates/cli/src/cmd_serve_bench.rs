//! `serve-bench` — closed-loop load generator for the inference server.
//!
//! Registers the DSC layers of MobileNet V1 and/or V2 as models, then runs
//! N closed-loop client threads (each waits for its reply before sending
//! the next request) against a worker-shard server and prints the serving
//! statistics: throughput, p50/p95/p99 latency, batch-size histogram,
//! program-cache hit rate and per-worker utilization.

use npcgra::nn::{models, Tensor};
use npcgra::serve::{ModelId, ServeConfig, ServeError, Server};

use crate::args::Flags;

pub fn run(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let spec = flags.machine()?;
    let workers: usize = parse_or(&flags, "workers", 4)?;
    let clients: usize = parse_or(&flags, "clients", 8)?;
    let requests: usize = parse_or(&flags, "requests", 160)?;
    let max_batch: usize = parse_or(&flags, "max-batch", 4)?;
    let linger_us: u64 = parse_or(&flags, "linger-us", 500)?;
    let alpha: f64 = parse_or(&flags, "alpha", 0.25)?;
    let res: usize = parse_or(&flags, "res", 32)?;
    let deadline_ms: u64 = parse_or(&flags, "deadline-ms", 0)?;
    let which = flags.get("model").unwrap_or("mixed");
    if res == 0 || !res.is_multiple_of(32) {
        return Err(format!("--res must be a positive multiple of 32, got {res}"));
    }

    let config = ServeConfig::for_spec(&spec)
        .with_workers(workers)
        .with_max_batch(max_batch)
        .with_max_linger(std::time::Duration::from_micros(linger_us))
        .with_default_deadline((deadline_ms > 0).then(|| std::time::Duration::from_millis(deadline_ms)));

    let mut model_tables = Vec::new();
    match which {
        "v1" => model_tables.push(models::mobilenet_v1(alpha, res)),
        "v2" => model_tables.push(models::mobilenet_v2(alpha, res)),
        "mixed" => {
            model_tables.push(models::mobilenet_v1(alpha, res));
            model_tables.push(models::mobilenet_v2(alpha, res));
        }
        other => return Err(format!("--model must be v1|v2|mixed, got '{other}'")),
    }

    let server = Server::start(config);
    let mut endpoints: Vec<ModelId> = Vec::new();
    for (mi, model) in model_tables.iter().enumerate() {
        for layer in model.dsc_layers() {
            let named = layer.renamed(&format!("{}.{}", model.name(), layer.name()));
            let weights = named.random_weights(0xC0FFEE + mi as u64);
            let id = server
                .register(&format!("{}.{}", model.name(), layer.name()), named, weights)
                .map_err(|e| format!("registering {}: {e}", layer.name()))?;
            endpoints.push(id);
        }
    }
    println!(
        "serve-bench: {} models over {} worker shard(s) of a {}x{} machine, {} closed-loop clients, {} requests",
        endpoints.len(),
        workers,
        spec.rows,
        spec.cols,
        clients,
        requests
    );

    let server_ref = &server;
    let endpoints_ref = &endpoints;
    std::thread::scope(|scope| {
        for c in 0..clients {
            scope.spawn(move || {
                let per_client = requests / clients + usize::from(c < requests % clients);
                for r in 0..per_client {
                    // All clients target the same endpoint each round, so
                    // same-model requests arrive close together and the
                    // dynamic batcher has work to do.
                    let id = endpoints_ref[r % endpoints_ref.len()];
                    let seed = (c * 1_000 + r) as u64;
                    loop {
                        let input = input_for(server_ref, id, seed);
                        match server_ref.submit(id, input) {
                            Ok(ticket) => {
                                // Closed loop: wait for the reply (shed
                                // requests count in the stats, not here).
                                let _ = ticket.wait();
                                break;
                            }
                            Err(ServeError::QueueFull { .. }) => {
                                std::thread::sleep(std::time::Duration::from_micros(200));
                            }
                            Err(e) => panic!("submit failed: {e}"),
                        }
                    }
                }
            });
        }
    });

    let stats = server.shutdown();
    println!("{stats}");
    Ok(())
}

/// A deterministic random input matching the model's IFM shape.
fn input_for(server: &Server, id: ModelId, seed: u64) -> Tensor {
    let shape = server.model_shape(id).expect("registered model");
    Tensor::random(shape.0, shape.1, shape.2, seed)
}

fn parse_or<T: std::str::FromStr>(flags: &Flags, name: &str, default: T) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{name}: bad value '{v}'")),
    }
}
