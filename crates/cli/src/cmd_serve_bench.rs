//! `serve-bench` — closed-loop load generator for the inference server.
//!
//! Registers the DSC layers of MobileNet V1 and/or V2 as models, then runs
//! N closed-loop client threads (each waits for its reply before sending
//! the next request) against a worker-shard server and prints the serving
//! statistics: throughput, p50/p95/p99 latency, batch-size histogram,
//! program-cache hit rate and per-worker utilization.
//!
//! `--tier cycle-accurate|fast|both` selects the execution backend; `both`
//! drives the identical workload once per tier so the tiers' throughput
//! can be compared directly. `--emit-json <path>` **appends** a
//! timestamped machine-readable run record (inferences/sec, p50/p99
//! latency, per-tier cycle totals, and the fast-over-cycle speedup when
//! both tiers ran) to a JSON array at `path`, so repeated runs accumulate
//! a comparable history; a legacy single-object file is wrapped into an
//! array on first append.
//!
//! After the per-layer run, each selected model whose DSC chain compiles
//! into a [`CompiledModel`](npcgra::sim::CompiledModel) is also served
//! *whole* through the stage-parallel [`Pipeline`](npcgra::serve::Pipeline)
//! (`--stages` balanced stages, `--pipeline-requests` closed-loop
//! end-to-end inferences), and the end-to-end pipelined inferences/sec is
//! reported alongside the per-layer numbers — the run record gains a
//! matching `pipeline` array.
//!
//! `--net` adds a socket-path phase: the same workload driven through the
//! `npcgra-net` TCP front-end over `--net-conns` concurrent loopback
//! connections (closed-loop, one in flight per connection), reporting the
//! end-to-end wire inferences/sec and latency percentiles — the run
//! record gains a `net` entry.
//!
//! `--journal` adds a crash-durability cost phase: the same keyed
//! closed-loop workload with the admission journal off, on with batched
//! fsync (the default `fsync_every = 8`) and on with a per-record fsync,
//! plus a timed recovery replay of admits stranded by a simulated crash —
//! the run record gains a `journal` entry (inferences/sec per mode, fsync
//! counts, and the recovery-replay time).

use std::sync::Arc;
use std::time::{Duration, Instant};

use npcgra::net::{NetClient, NetConfig, NetServer, NetStats};
use npcgra::nn::{models, Tensor};
use npcgra::serve::{
    BackendTier, JournalConfig, ModelId, Pipeline, PipelineStatsSnapshot, Priority, ServeConfig, ServeError, Server,
    StatsSnapshot, Ticket,
};
use npcgra::sim::CompiledModel;

use crate::args::Flags;

pub fn run(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let spec = flags.machine()?;
    let workers: usize = parse_or(&flags, "workers", 4)?;
    let clients: usize = parse_or(&flags, "clients", 8)?;
    let requests: usize = parse_or(&flags, "requests", 160)?;
    let max_batch: usize = parse_or(&flags, "max-batch", 4)?;
    let linger_us: u64 = parse_or(&flags, "linger-us", 500)?;
    let alpha: f64 = parse_or(&flags, "alpha", 0.25)?;
    let res: usize = parse_or(&flags, "res", 32)?;
    let deadline_ms: u64 = parse_or(&flags, "deadline-ms", 0)?;
    let stages: usize = parse_or(&flags, "stages", 4)?;
    let pipeline_requests: usize = parse_or(&flags, "pipeline-requests", 24)?;
    // Much tighter than the serving default (32): bench runs are a few
    // dozen batches per shard, and the record should prove the fast tier
    // survived real cross-checks.
    let cross_check_every: u64 = parse_or(&flags, "cross-check-every", 4)?;
    let net_mode = flags.has("net");
    let journal_mode = flags.has("journal");
    let net_conns: usize = parse_or(&flags, "net-conns", 8)?;
    let which = flags.get("model").unwrap_or("mixed");
    let tiers: Vec<BackendTier> = match flags.get("tier").unwrap_or("cycle-accurate") {
        "both" => BackendTier::ALL.to_vec(),
        one => vec![one.parse().map_err(|e: String| format!("--tier: {e} (or 'both')"))?],
    };
    let emit_json = flags.get("emit-json").map(String::from);
    if res == 0 || !res.is_multiple_of(32) {
        return Err(format!("--res must be a positive multiple of 32, got {res}"));
    }

    let mut model_tables = Vec::new();
    match which {
        "v1" => model_tables.push(models::mobilenet_v1(alpha, res)),
        "v2" => model_tables.push(models::mobilenet_v2(alpha, res)),
        "mixed" => {
            model_tables.push(models::mobilenet_v1(alpha, res));
            model_tables.push(models::mobilenet_v2(alpha, res));
        }
        other => return Err(format!("--model must be v1|v2|mixed, got '{other}'")),
    }

    let mut results: Vec<(BackendTier, StatsSnapshot)> = Vec::new();
    let mut pipeline_results: Vec<PipelineBench> = Vec::new();
    for &tier in &tiers {
        let config = ServeConfig::for_spec(&spec)
            .with_workers(workers)
            .with_max_batch(max_batch)
            .with_max_linger(std::time::Duration::from_micros(linger_us))
            .with_default_deadline((deadline_ms > 0).then(|| std::time::Duration::from_millis(deadline_ms)))
            .with_backend_tier(tier)
            .with_cross_check_interval(cross_check_every);
        let stats = drive_workload(&config, &model_tables, &spec, tier, workers, clients, requests)?;
        println!("{stats}");
        results.push((tier, stats));

        // End-to-end whole-model serving: the same chains through the
        // stage-parallel pipeline (models that don't compile — e.g. chains
        // with residual shapes — are reported and skipped).
        if pipeline_requests > 0 {
            for model in &model_tables {
                match drive_pipeline(&config, model, &spec, tier, stages, clients, pipeline_requests) {
                    Ok(bench) => pipeline_results.push(bench),
                    Err(e) => println!("serve-bench [{tier}]: pipeline bench skipped for {}: {e}", model.name()),
                }
            }
        }
    }

    // Socket-path phase: the same closed-loop workload, but through the
    // TCP front-end. Runs once, on the first selected tier — the point is
    // the wire overhead, not another tier comparison.
    let net_result = if net_mode {
        let config = ServeConfig::for_spec(&spec)
            .with_workers(workers)
            .with_max_batch(max_batch)
            .with_max_linger(std::time::Duration::from_micros(linger_us))
            .with_backend_tier(tiers[0]);
        Some(drive_net(&config, &model_tables, net_conns, requests)?)
    } else {
        None
    };

    // Journal-cost phase: the same workload keyed and journaled at both
    // fsync policies, plus a timed recovery replay. Like `--net`, it runs
    // once on the first selected tier — the point is the durability
    // overhead, not another tier comparison.
    let journal_result = if journal_mode {
        let config = ServeConfig::for_spec(&spec)
            .with_workers(workers)
            .with_max_batch(max_batch)
            .with_max_linger(std::time::Duration::from_micros(linger_us))
            .with_backend_tier(tiers[0]);
        Some(bench_journal(&config, &model_tables, clients, requests)?)
    } else {
        None
    };

    if let [(_, cycle), (_, fast)] = &results[..] {
        if cycle.throughput_rps > 0.0 {
            println!(
                "tier speedup: fast serves {:.1} inf/s vs cycle-accurate {:.1} inf/s ({:.1}x)",
                fast.throughput_rps,
                cycle.throughput_rps,
                fast.throughput_rps / cycle.throughput_rps,
            );
        }
    }

    if let Some(path) = emit_json {
        let record = render_json(
            &spec,
            workers,
            clients,
            requests,
            &results,
            &pipeline_results,
            net_result.as_ref(),
            journal_result.as_ref(),
        );
        let merged = append_record(std::fs::read_to_string(&path).ok().as_deref(), &record);
        std::fs::write(&path, merged).map_err(|e| format!("writing {path}: {e}"))?;
        println!("serve-bench: appended run record to {path}");
    }
    Ok(())
}

/// Merge a freshly rendered run record into whatever `--emit-json`'s target
/// already holds, yielding a JSON **array of run records** so successive
/// bench runs accumulate a history instead of clobbering each other:
///
/// * existing array → the record is appended;
/// * legacy single-object file (the pre-append format) → wrapped into an
///   array of `[old, new]`;
/// * missing, empty or unrecognized → a fresh one-element array.
fn append_record(existing: Option<&str>, record: &str) -> String {
    let record = record.trim_end();
    match existing.map(str::trim) {
        Some(prior) if prior.starts_with('[') && prior.ends_with(']') => {
            let body = prior[..prior.len() - 1].trim_end();
            if body == "[" {
                format!("[\n{record}\n]\n")
            } else {
                let body = body.strip_suffix(',').unwrap_or(body);
                format!("{body},\n{record}\n]\n")
            }
        }
        Some(prior) if prior.starts_with('{') && prior.ends_with('}') => {
            format!("[\n{prior},\n{record}\n]\n")
        }
        _ => format!("[\n{record}\n]\n"),
    }
}

/// One end-to-end whole-model pipeline bench result.
struct PipelineBench {
    tier: BackendTier,
    model: String,
    stages: usize,
    throughput_rps: f64,
    p50: Duration,
    p99: Duration,
    stats: PipelineStatsSnapshot,
}

/// Serve `requests` whole-model inferences closed-loop through a
/// stage-parallel [`Pipeline`] and measure end-to-end throughput: the
/// model's DSC chain compiles into `stages` cycle-balanced stages, each
/// running on its own shard, so throughput is set by the bottleneck stage
/// rather than the chain total.
fn drive_pipeline(
    config: &ServeConfig,
    model: &models::Model,
    spec: &npcgra::CgraSpec,
    tier: BackendTier,
    stages: usize,
    clients: usize,
    requests: usize,
) -> Result<PipelineBench, String> {
    let layers: Vec<_> = model.dsc_layers().cloned().collect();
    let compiled = CompiledModel::compile(model.name(), &layers, spec, stages).map_err(|e| e.to_string())?;
    let stages = compiled.num_stages();
    let weights: Vec<Tensor> = layers
        .iter()
        .enumerate()
        .map(|(i, l)| l.random_weights(0xC0FFEE + i as u64))
        .collect();
    let shape = compiled.input_shape();
    let num_layers = compiled.num_layers();
    let pipe = Pipeline::start((*config).with_pipeline_stages(stages), compiled, weights).map_err(|e| e.to_string())?;

    let start = Instant::now();
    let pipe_ref = &pipe;
    let latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let per_client = requests / clients + usize::from(c < requests % clients);
                    let mut lats = Vec::with_capacity(per_client);
                    for r in 0..per_client {
                        let input = Tensor::random(shape.0, shape.1, shape.2, (c * 1_000 + r) as u64);
                        match pipe_ref.submit(input).and_then(Ticket::wait) {
                            Ok(resp) => lats.push(resp.latency),
                            Err(e) => panic!("pipeline inference failed: {e}"),
                        }
                    }
                    lats
                })
            })
            .collect();
        let mut all: Vec<Duration> = handles.into_iter().flat_map(|h| h.join().expect("bench client")).collect();
        all.sort();
        all
    });
    let elapsed = start.elapsed();
    let stats = pipe.shutdown();
    let pct = |q: f64| latencies[((latencies.len() - 1) as f64 * q) as usize];
    let throughput_rps = latencies.len() as f64 / elapsed.as_secs_f64();
    println!(
        "serve-bench [{tier}] pipeline {}: {} layers in {} stage(s), {} end-to-end inferences — \
         {:.1} inf/s, p50 {:.3}ms, p99 {:.3}ms",
        model.name(),
        num_layers,
        stages,
        latencies.len(),
        throughput_rps,
        pct(0.50).as_secs_f64() * 1e3,
        pct(0.99).as_secs_f64() * 1e3,
    );
    Ok(PipelineBench {
        tier,
        model: model.name().to_string(),
        stages,
        throughput_rps,
        p50: pct(0.50),
        p99: pct(0.99),
        stats,
    })
}

/// One socket-path bench result.
struct NetBench {
    connections: usize,
    completed: usize,
    throughput_rps: f64,
    p50: Duration,
    p99: Duration,
    stats: NetStats,
}

/// The same closed-loop workload, but over the TCP front-end: one
/// loopback connection per client thread, one request in flight per
/// connection, end-to-end latency measured at the socket.
fn drive_net(
    config: &ServeConfig,
    model_tables: &[models::Model],
    connections: usize,
    requests: usize,
) -> Result<NetBench, String> {
    let server = Arc::new(Server::start(*config));
    let mut endpoints: Vec<u32> = Vec::new();
    let mut shapes: Vec<(usize, usize, usize)> = Vec::new();
    for (mi, model) in model_tables.iter().enumerate() {
        for layer in model.dsc_layers() {
            let named = layer.renamed(&format!("{}.{}", model.name(), layer.name()));
            let weights = named.random_weights(0xC0FFEE + mi as u64);
            let id = server
                .register(&format!("{}.{}", model.name(), layer.name()), named, weights)
                .map_err(|e| format!("registering {}: {e}", layer.name()))?;
            shapes.push(server.model_shape(id).expect("registered"));
            endpoints.push(id.index() as u32);
        }
    }
    let net = NetServer::start(Arc::clone(&server), NetConfig::default()).map_err(|e| format!("bind front-end: {e}"))?;
    let addr = net.local_addr();
    println!(
        "serve-bench [net]: {} models behind {addr}, {} loopback connections, {} requests",
        endpoints.len(),
        connections,
        requests
    );

    let endpoints_ref = &endpoints;
    let shapes_ref = &shapes;
    let start = Instant::now();
    let latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = NetClient::connect(addr, b"").expect("connect to front-end");
                    let per_conn = requests / connections + usize::from(c < requests % connections);
                    let mut lats = Vec::with_capacity(per_conn);
                    for r in 0..per_conn {
                        let at = r % endpoints_ref.len();
                        let (ch, h, w) = shapes_ref[at];
                        let input = Tensor::random(ch, h, w, (c * 1_000 + r) as u64);
                        let sent = Instant::now();
                        let reply = client
                            .call(
                                endpoints_ref[at],
                                &input,
                                Priority::Interactive,
                                None,
                                Duration::from_secs(120),
                            )
                            .expect("wire reply");
                        if reply.result.is_ok() {
                            lats.push(sent.elapsed());
                        }
                    }
                    lats
                })
            })
            .collect();
        let mut all: Vec<Duration> = handles.into_iter().flat_map(|h| h.join().expect("net client")).collect();
        all.sort();
        all
    });
    let elapsed = start.elapsed();
    let stats = net.shutdown();
    let server = Arc::try_unwrap(server).unwrap_or_else(|_| panic!("front-end still holds the server"));
    let _ = server.shutdown();
    if latencies.is_empty() {
        return Err("net bench completed zero requests".into());
    }
    let pct = |q: f64| latencies[((latencies.len() - 1) as f64 * q) as usize];
    let throughput_rps = latencies.len() as f64 / elapsed.as_secs_f64();
    println!(
        "serve-bench [net]: {} wire inferences over {} connection(s) — {:.1} inf/s, p50 {:.3}ms, p99 {:.3}ms",
        latencies.len(),
        connections,
        throughput_rps,
        pct(0.50).as_secs_f64() * 1e3,
        pct(0.99).as_secs_f64() * 1e3,
    );
    Ok(NetBench {
        connections,
        completed: latencies.len(),
        throughput_rps,
        p50: pct(0.50),
        p99: pct(0.99),
        stats,
    })
}

/// One journal-cost bench result: throughput with the journal off, on
/// with batched fsync, and on with a per-record fsync, plus a timed
/// recovery replay.
struct JournalBench {
    off_rps: f64,
    batched_rps: f64,
    per_record_rps: f64,
    appends: u64,
    fsyncs_batched: u64,
    fsyncs_per_record: u64,
    recovered: usize,
    replay_ms: f64,
}

/// Register every DSC layer of each table, returning the endpoint ids.
fn register_all(server: &Server, model_tables: &[models::Model]) -> Result<Vec<ModelId>, String> {
    let mut endpoints = Vec::new();
    for (mi, model) in model_tables.iter().enumerate() {
        for layer in model.dsc_layers() {
            let named = layer.renamed(&format!("{}.{}", model.name(), layer.name()));
            let weights = named.random_weights(0xC0FFEE + mi as u64);
            let id = server
                .register(&format!("{}.{}", model.name(), layer.name()), named, weights)
                .map_err(|e| format!("registering {}: {e}", layer.name()))?;
            endpoints.push(id);
        }
    }
    Ok(endpoints)
}

/// The closed-loop workload with every request carrying a unique
/// idempotency key, so a journaled server writes one Admit + one Ack per
/// request (keys never collide, nothing deduplicates — this measures the
/// durability cost, not the dedup path).
fn drive_keyed(server: &Server, endpoints: &[ModelId], clients: usize, requests: usize) {
    std::thread::scope(|scope| {
        for c in 0..clients {
            scope.spawn(move || {
                let per_client = requests / clients + usize::from(c < requests % clients);
                for r in 0..per_client {
                    let id = endpoints[r % endpoints.len()];
                    let idem = ((c as u64) << 32) | (r as u64 + 1);
                    loop {
                        let input = input_for(server, id, (c * 1_000 + r) as u64);
                        match server.submit_idem(id, input, None, Priority::Interactive, idem) {
                            Ok(ticket) => {
                                let _ = ticket.wait();
                                break;
                            }
                            Err(ServeError::QueueFull { .. }) => {
                                std::thread::sleep(std::time::Duration::from_micros(200));
                            }
                            Err(e) => panic!("submit failed: {e}"),
                        }
                    }
                }
            });
        }
    });
}

/// Measure the journal's serving cost and recovery speed: the keyed
/// workload off / batched-fsync / per-record-fsync, then `min(requests,
/// 64)` admits stranded on a stalled core, hard-crashed, and timed
/// through the next start's replay.
fn bench_journal(
    config: &ServeConfig,
    model_tables: &[models::Model],
    clients: usize,
    requests: usize,
) -> Result<JournalBench, String> {
    let base = std::env::temp_dir().join(format!("npcgra-serve-bench-{}", std::process::id()));
    let p_batched = base.with_extension("fsync8.journal");
    let p_per_record = base.with_extension("fsync1.journal");
    let p_recover = base.with_extension("recover.journal");
    for p in [&p_batched, &p_per_record, &p_recover] {
        let _ = std::fs::remove_file(p);
    }
    let run = |journal: Option<JournalConfig>| -> Result<(f64, StatsSnapshot), String> {
        let server = match journal {
            None => Server::start(*config),
            Some(j) => {
                Server::start_with_journal(*config, j)
                    .map_err(|e| format!("journaled start: {e}"))?
                    .0
            }
        };
        let endpoints = register_all(&server, model_tables)?;
        let start = Instant::now();
        drive_keyed(&server, &endpoints, clients, requests);
        let elapsed = start.elapsed();
        let stats = server.shutdown();
        Ok((stats.completed as f64 / elapsed.as_secs_f64(), stats))
    };
    let (off_rps, _) = run(None)?;
    let (batched_rps, batched) = run(Some(JournalConfig::new(&p_batched)))?;
    let (per_record_rps, per_record) = run(Some(JournalConfig::new(&p_per_record).with_fsync_every(1)))?;

    // Recovery replay: strand keyed admits on a stalled (zero-worker)
    // core, crash it, and time the next start's journal scan + replay.
    let recovered_target = requests.min(64);
    {
        let (server, _) =
            Server::start_with_journal((*config).with_workers(0), JournalConfig::new(&p_recover).with_fsync_every(1))
                .map_err(|e| format!("recovery setup: {e}"))?;
        let endpoints = register_all(&server, model_tables)?;
        for r in 0..recovered_target {
            let id = endpoints[r % endpoints.len()];
            let input = input_for(&server, id, r as u64);
            let _ = server
                .submit_idem(id, input, None, Priority::Interactive, r as u64 + 1)
                .map_err(|e| format!("recovery submit: {e}"))?;
        }
        let _ = server.hard_crash(0);
    }
    let (server, report) =
        Server::start_with_journal(*config, JournalConfig::new(&p_recover)).map_err(|e| format!("recovery start: {e}"))?;
    let recovered = report.replayed;
    let replay_ms = report.elapsed.as_secs_f64() * 1e3;
    let _ = server.shutdown();
    for p in [&p_batched, &p_per_record, &p_recover] {
        let _ = std::fs::remove_file(p);
    }
    println!(
        "serve-bench [journal]: off {off_rps:.1} inf/s, batched fsync {batched_rps:.1} inf/s, per-record fsync \
         {per_record_rps:.1} inf/s; {} append(s) at {} vs {} fsync(s); recovery replayed {recovered} admit(s) in \
         {replay_ms:.2}ms",
        batched.journal_appends, batched.journal_fsyncs, per_record.journal_fsyncs,
    );
    Ok(JournalBench {
        off_rps,
        batched_rps,
        per_record_rps,
        appends: batched.journal_appends,
        fsyncs_batched: batched.journal_fsyncs,
        fsyncs_per_record: per_record.journal_fsyncs,
        recovered,
        replay_ms,
    })
}

/// Run the closed-loop workload against one freshly started server and
/// return its final statistics.
fn drive_workload(
    config: &ServeConfig,
    model_tables: &[models::Model],
    spec: &npcgra::CgraSpec,
    tier: BackendTier,
    workers: usize,
    clients: usize,
    requests: usize,
) -> Result<StatsSnapshot, String> {
    let server = Server::start(*config);
    let mut endpoints: Vec<ModelId> = Vec::new();
    for (mi, model) in model_tables.iter().enumerate() {
        for layer in model.dsc_layers() {
            let named = layer.renamed(&format!("{}.{}", model.name(), layer.name()));
            let weights = named.random_weights(0xC0FFEE + mi as u64);
            let id = server
                .register(&format!("{}.{}", model.name(), layer.name()), named, weights)
                .map_err(|e| format!("registering {}: {e}", layer.name()))?;
            endpoints.push(id);
        }
    }
    println!(
        "serve-bench [{tier}]: {} models over {} worker shard(s) of a {}x{} machine, {} closed-loop clients, {} requests",
        endpoints.len(),
        workers,
        spec.rows,
        spec.cols,
        clients,
        requests
    );

    let server_ref = &server;
    let endpoints_ref = &endpoints;
    std::thread::scope(|scope| {
        for c in 0..clients {
            scope.spawn(move || {
                let per_client = requests / clients + usize::from(c < requests % clients);
                for r in 0..per_client {
                    // All clients target the same endpoint each round, so
                    // same-model requests arrive close together and the
                    // dynamic batcher has work to do.
                    let id = endpoints_ref[r % endpoints_ref.len()];
                    let seed = (c * 1_000 + r) as u64;
                    loop {
                        let input = input_for(server_ref, id, seed);
                        match server_ref.submit(id, input) {
                            Ok(ticket) => {
                                // Closed loop: wait for the reply (shed
                                // requests count in the stats, not here).
                                let _ = ticket.wait();
                                break;
                            }
                            Err(ServeError::QueueFull { .. }) => {
                                std::thread::sleep(std::time::Duration::from_micros(200));
                            }
                            Err(e) => panic!("submit failed: {e}"),
                        }
                    }
                }
            });
        }
    });

    Ok(server.shutdown())
}

/// Hand-rendered benchmark record (the workspace carries no JSON
/// dependency): one entry per tier driven, plus the speedup when both ran
/// and one `pipeline` entry per whole-model pipelined bench.
#[allow(clippy::too_many_arguments)]
fn render_json(
    spec: &npcgra::CgraSpec,
    workers: usize,
    clients: usize,
    requests: usize,
    results: &[(BackendTier, StatsSnapshot)],
    pipeline_results: &[PipelineBench],
    net_result: Option<&NetBench>,
    journal_result: Option<&JournalBench>,
) -> String {
    let tiers: Vec<String> = results
        .iter()
        .map(|(tier, s)| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"tier\": \"{}\",\n",
                    "      \"inferences_per_sec\": {:.3},\n",
                    "      \"p50_ms\": {:.6},\n",
                    "      \"p99_ms\": {:.6},\n",
                    "      \"completed\": {},\n",
                    "      \"failed\": {},\n",
                    "      \"elapsed_sec\": {:.6},\n",
                    "      \"cycles_charged\": {{ \"cycle_accurate\": {}, \"fast\": {} }},\n",
                    "      \"cross_checks\": {},\n",
                    "      \"cross_check_divergences\": {}\n",
                    "    }}"
                ),
                tier,
                s.throughput_rps,
                s.p50.as_secs_f64() * 1e3,
                s.p99.as_secs_f64() * 1e3,
                s.completed,
                s.failed,
                s.elapsed.as_secs_f64(),
                s.cycles_charged[BackendTier::CycleAccurate.index()],
                s.cycles_charged[BackendTier::Fast.index()],
                s.cross_checks,
                s.cross_check_failed,
            )
        })
        .collect();
    let speedup = match results {
        [(_, cycle), (_, fast)] if cycle.throughput_rps > 0.0 => {
            format!(
                ",\n  \"speedup_fast_over_cycle\": {:.3}",
                fast.throughput_rps / cycle.throughput_rps
            )
        }
        _ => String::new(),
    };
    let pipeline = if pipeline_results.is_empty() {
        String::new()
    } else {
        let entries: Vec<String> = pipeline_results
            .iter()
            .map(|b| {
                format!(
                    concat!(
                        "    {{\n",
                        "      \"model\": \"{}\",\n",
                        "      \"tier\": \"{}\",\n",
                        "      \"stages\": {},\n",
                        "      \"inferences_per_sec\": {:.3},\n",
                        "      \"p50_ms\": {:.6},\n",
                        "      \"p99_ms\": {:.6},\n",
                        "      \"completed\": {}\n",
                        "    }}"
                    ),
                    b.model,
                    b.tier,
                    b.stages,
                    b.throughput_rps,
                    b.p50.as_secs_f64() * 1e3,
                    b.p99.as_secs_f64() * 1e3,
                    b.stats.completed,
                )
            })
            .collect();
        format!(",\n  \"pipeline\": [\n{}\n  ]", entries.join(",\n"))
    };
    let net = net_result.map_or(String::new(), |b| {
        format!(
            concat!(
                ",\n  \"net\": {{\n",
                "    \"connections\": {},\n",
                "    \"inferences_per_sec\": {:.3},\n",
                "    \"p50_ms\": {:.6},\n",
                "    \"p99_ms\": {:.6},\n",
                "    \"completed\": {},\n",
                "    \"admitted\": {},\n",
                "    \"bytes_rx\": {},\n",
                "    \"bytes_tx\": {}\n",
                "  }}"
            ),
            b.connections,
            b.throughput_rps,
            b.p50.as_secs_f64() * 1e3,
            b.p99.as_secs_f64() * 1e3,
            b.completed,
            b.stats.admitted,
            b.stats.bytes_rx,
            b.stats.bytes_tx,
        )
    });
    let journal = journal_result.map_or(String::new(), |b| {
        format!(
            concat!(
                ",\n  \"journal\": {{\n",
                "    \"inferences_per_sec_off\": {:.3},\n",
                "    \"inferences_per_sec_batched_fsync\": {:.3},\n",
                "    \"inferences_per_sec_per_record_fsync\": {:.3},\n",
                "    \"batched_over_off\": {:.4},\n",
                "    \"per_record_over_off\": {:.4},\n",
                "    \"appends\": {},\n",
                "    \"fsyncs_batched\": {},\n",
                "    \"fsyncs_per_record\": {},\n",
                "    \"recovered_admits\": {},\n",
                "    \"recovery_replay_ms\": {:.4}\n",
                "  }}"
            ),
            b.off_rps,
            b.batched_rps,
            b.per_record_rps,
            if b.off_rps > 0.0 { b.batched_rps / b.off_rps } else { 0.0 },
            if b.off_rps > 0.0 { b.per_record_rps / b.off_rps } else { 0.0 },
            b.appends,
            b.fsyncs_batched,
            b.fsyncs_per_record,
            b.recovered,
            b.replay_ms,
        )
    });
    let timestamp_unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serve\",\n",
            "  \"timestamp_unix\": {},\n",
            "  \"machine\": \"{}x{}\",\n",
            "  \"workers\": {},\n",
            "  \"clients\": {},\n",
            "  \"requests_per_tier\": {},\n",
            "  \"tiers\": [\n{}\n  ]{}{}{}{}\n",
            "}}\n"
        ),
        timestamp_unix,
        spec.rows,
        spec.cols,
        workers,
        clients,
        requests,
        tiers.join(",\n"),
        speedup,
        pipeline,
        net,
        journal,
    )
}

/// A deterministic random input matching the model's IFM shape.
fn input_for(server: &Server, id: ModelId, seed: u64) -> Tensor {
    let shape = server.model_shape(id).expect("registered model");
    Tensor::random(shape.0, shape.1, shape.2, seed)
}

fn parse_or<T: std::str::FromStr>(flags: &Flags, name: &str, default: T) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{name}: bad value '{v}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::append_record;

    #[test]
    fn emit_json_accumulates_an_array_of_run_records() {
        let first = append_record(None, "{ \"run\": 1 }\n");
        assert_eq!(first, "[\n{ \"run\": 1 }\n]\n");
        let second = append_record(Some(&first), "{ \"run\": 2 }");
        assert_eq!(second, "[\n{ \"run\": 1 },\n{ \"run\": 2 }\n]\n");
        let third = append_record(Some(&second), "{ \"run\": 3 }");
        assert_eq!(third, "[\n{ \"run\": 1 },\n{ \"run\": 2 },\n{ \"run\": 3 }\n]\n");
    }

    #[test]
    fn emit_json_wraps_a_legacy_single_object_file() {
        let legacy = "{\n  \"bench\": \"serve\"\n}\n";
        let merged = append_record(Some(legacy), "{ \"run\": 2 }");
        assert_eq!(merged, "[\n{\n  \"bench\": \"serve\"\n},\n{ \"run\": 2 }\n]\n");
    }

    #[test]
    fn emit_json_recovers_from_empty_or_garbage_targets() {
        assert_eq!(append_record(Some(""), "{}"), "[\n{}\n]\n");
        assert_eq!(append_record(Some("not json"), "{}"), "[\n{}\n]\n");
        assert_eq!(append_record(Some("[]"), "{}"), "[\n{}\n]\n");
    }
}
