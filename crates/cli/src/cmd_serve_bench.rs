//! `serve-bench` — closed-loop load generator for the inference server.
//!
//! Registers the DSC layers of MobileNet V1 and/or V2 as models, then runs
//! N closed-loop client threads (each waits for its reply before sending
//! the next request) against a worker-shard server and prints the serving
//! statistics: throughput, p50/p95/p99 latency, batch-size histogram,
//! program-cache hit rate and per-worker utilization.
//!
//! `--tier cycle-accurate|fast|both` selects the execution backend; `both`
//! drives the identical workload once per tier so the tiers' throughput
//! can be compared directly. `--emit-json <path>` writes the results as a
//! machine-readable benchmark record (inferences/sec, p50/p99 latency,
//! per-tier cycle totals, and the fast-over-cycle speedup when both tiers
//! ran).

use npcgra::nn::{models, Tensor};
use npcgra::serve::{BackendTier, ModelId, ServeConfig, ServeError, Server, StatsSnapshot};

use crate::args::Flags;

pub fn run(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let spec = flags.machine()?;
    let workers: usize = parse_or(&flags, "workers", 4)?;
    let clients: usize = parse_or(&flags, "clients", 8)?;
    let requests: usize = parse_or(&flags, "requests", 160)?;
    let max_batch: usize = parse_or(&flags, "max-batch", 4)?;
    let linger_us: u64 = parse_or(&flags, "linger-us", 500)?;
    let alpha: f64 = parse_or(&flags, "alpha", 0.25)?;
    let res: usize = parse_or(&flags, "res", 32)?;
    let deadline_ms: u64 = parse_or(&flags, "deadline-ms", 0)?;
    // Much tighter than the serving default (32): bench runs are a few
    // dozen batches per shard, and the record should prove the fast tier
    // survived real cross-checks.
    let cross_check_every: u64 = parse_or(&flags, "cross-check-every", 4)?;
    let which = flags.get("model").unwrap_or("mixed");
    let tiers: Vec<BackendTier> = match flags.get("tier").unwrap_or("cycle-accurate") {
        "both" => BackendTier::ALL.to_vec(),
        one => vec![one.parse().map_err(|e: String| format!("--tier: {e} (or 'both')"))?],
    };
    let emit_json = flags.get("emit-json").map(String::from);
    if res == 0 || !res.is_multiple_of(32) {
        return Err(format!("--res must be a positive multiple of 32, got {res}"));
    }

    let mut model_tables = Vec::new();
    match which {
        "v1" => model_tables.push(models::mobilenet_v1(alpha, res)),
        "v2" => model_tables.push(models::mobilenet_v2(alpha, res)),
        "mixed" => {
            model_tables.push(models::mobilenet_v1(alpha, res));
            model_tables.push(models::mobilenet_v2(alpha, res));
        }
        other => return Err(format!("--model must be v1|v2|mixed, got '{other}'")),
    }

    let mut results: Vec<(BackendTier, StatsSnapshot)> = Vec::new();
    for &tier in &tiers {
        let config = ServeConfig::for_spec(&spec)
            .with_workers(workers)
            .with_max_batch(max_batch)
            .with_max_linger(std::time::Duration::from_micros(linger_us))
            .with_default_deadline((deadline_ms > 0).then(|| std::time::Duration::from_millis(deadline_ms)))
            .with_backend_tier(tier)
            .with_cross_check_interval(cross_check_every);
        let stats = drive_workload(&config, &model_tables, &spec, tier, workers, clients, requests)?;
        println!("{stats}");
        results.push((tier, stats));
    }

    if let [(_, cycle), (_, fast)] = &results[..] {
        if cycle.throughput_rps > 0.0 {
            println!(
                "tier speedup: fast serves {:.1} inf/s vs cycle-accurate {:.1} inf/s ({:.1}x)",
                fast.throughput_rps,
                cycle.throughput_rps,
                fast.throughput_rps / cycle.throughput_rps,
            );
        }
    }

    if let Some(path) = emit_json {
        let json = render_json(&spec, workers, clients, requests, &results);
        std::fs::write(&path, json).map_err(|e| format!("writing {path}: {e}"))?;
        println!("serve-bench: wrote {path}");
    }
    Ok(())
}

/// Run the closed-loop workload against one freshly started server and
/// return its final statistics.
fn drive_workload(
    config: &ServeConfig,
    model_tables: &[models::Model],
    spec: &npcgra::CgraSpec,
    tier: BackendTier,
    workers: usize,
    clients: usize,
    requests: usize,
) -> Result<StatsSnapshot, String> {
    let server = Server::start(*config);
    let mut endpoints: Vec<ModelId> = Vec::new();
    for (mi, model) in model_tables.iter().enumerate() {
        for layer in model.dsc_layers() {
            let named = layer.renamed(&format!("{}.{}", model.name(), layer.name()));
            let weights = named.random_weights(0xC0FFEE + mi as u64);
            let id = server
                .register(&format!("{}.{}", model.name(), layer.name()), named, weights)
                .map_err(|e| format!("registering {}: {e}", layer.name()))?;
            endpoints.push(id);
        }
    }
    println!(
        "serve-bench [{tier}]: {} models over {} worker shard(s) of a {}x{} machine, {} closed-loop clients, {} requests",
        endpoints.len(),
        workers,
        spec.rows,
        spec.cols,
        clients,
        requests
    );

    let server_ref = &server;
    let endpoints_ref = &endpoints;
    std::thread::scope(|scope| {
        for c in 0..clients {
            scope.spawn(move || {
                let per_client = requests / clients + usize::from(c < requests % clients);
                for r in 0..per_client {
                    // All clients target the same endpoint each round, so
                    // same-model requests arrive close together and the
                    // dynamic batcher has work to do.
                    let id = endpoints_ref[r % endpoints_ref.len()];
                    let seed = (c * 1_000 + r) as u64;
                    loop {
                        let input = input_for(server_ref, id, seed);
                        match server_ref.submit(id, input) {
                            Ok(ticket) => {
                                // Closed loop: wait for the reply (shed
                                // requests count in the stats, not here).
                                let _ = ticket.wait();
                                break;
                            }
                            Err(ServeError::QueueFull { .. }) => {
                                std::thread::sleep(std::time::Duration::from_micros(200));
                            }
                            Err(e) => panic!("submit failed: {e}"),
                        }
                    }
                }
            });
        }
    });

    Ok(server.shutdown())
}

/// Hand-rendered benchmark record (the workspace carries no JSON
/// dependency): one entry per tier driven, plus the speedup when both ran.
fn render_json(
    spec: &npcgra::CgraSpec,
    workers: usize,
    clients: usize,
    requests: usize,
    results: &[(BackendTier, StatsSnapshot)],
) -> String {
    let tiers: Vec<String> = results
        .iter()
        .map(|(tier, s)| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"tier\": \"{}\",\n",
                    "      \"inferences_per_sec\": {:.3},\n",
                    "      \"p50_ms\": {:.6},\n",
                    "      \"p99_ms\": {:.6},\n",
                    "      \"completed\": {},\n",
                    "      \"failed\": {},\n",
                    "      \"elapsed_sec\": {:.6},\n",
                    "      \"cycles_charged\": {{ \"cycle_accurate\": {}, \"fast\": {} }},\n",
                    "      \"cross_checks\": {},\n",
                    "      \"cross_check_divergences\": {}\n",
                    "    }}"
                ),
                tier,
                s.throughput_rps,
                s.p50.as_secs_f64() * 1e3,
                s.p99.as_secs_f64() * 1e3,
                s.completed,
                s.failed,
                s.elapsed.as_secs_f64(),
                s.cycles_charged[BackendTier::CycleAccurate.index()],
                s.cycles_charged[BackendTier::Fast.index()],
                s.cross_checks,
                s.cross_check_failed,
            )
        })
        .collect();
    let speedup = match results {
        [(_, cycle), (_, fast)] if cycle.throughput_rps > 0.0 => {
            format!(
                ",\n  \"speedup_fast_over_cycle\": {:.3}",
                fast.throughput_rps / cycle.throughput_rps
            )
        }
        _ => String::new(),
    };
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serve\",\n",
            "  \"machine\": \"{}x{}\",\n",
            "  \"workers\": {},\n",
            "  \"clients\": {},\n",
            "  \"requests_per_tier\": {},\n",
            "  \"tiers\": [\n{}\n  ]{}\n",
            "}}\n"
        ),
        spec.rows,
        spec.cols,
        workers,
        clients,
        requests,
        tiers.join(",\n"),
        speedup,
    )
}

/// A deterministic random input matching the model's IFM shape.
fn input_for(server: &Server, id: ModelId, seed: u64) -> Tensor {
    let shape = server.model_shape(id).expect("registered model");
    Tensor::random(shape.0, shape.1, shape.2, seed)
}

fn parse_or<T: std::str::FromStr>(flags: &Flags, name: &str, default: T) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{name}: bad value '{v}'")),
    }
}
