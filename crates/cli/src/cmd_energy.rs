//! `npcgra energy`: first-order per-layer energy estimate.

use npcgra::area::EnergyModel;
use npcgra::sim::estimate_layer_energy;
use npcgra::Tensor;

use crate::args::Flags;

pub fn run(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let spec = flags.machine()?;
    let layer = flags.layer()?;
    let mapping = flags.mapping()?;

    let ifm = Tensor::random(layer.in_channels(), layer.in_h(), layer.in_w(), 1);
    let weights = layer.random_weights(2);
    let model = EnergyModel::nm65();
    let e = estimate_layer_energy(&layer, &ifm, &weights, &spec, mapping, &model).map_err(|e| e.to_string())?;

    println!("layer: {layer}");
    println!("energy estimate (65 nm / 16-bit first-order model):");
    println!("  compute (MACs)   {:>10.3} uJ", e.compute_uj);
    println!("  idle/clocking    {:>10.3} uJ", e.idle_uj);
    println!("  on-chip SRAM     {:>10.3} uJ", e.sram_uj);
    println!("  GRF broadcast    {:>10.3} uJ", e.grf_uj);
    println!("  off-chip DRAM    {:>10.3} uJ", e.dram_uj);
    println!(
        "  total            {:>10.3} uJ ({:.1} % on-chip)",
        e.total_uj(),
        e.onchip_fraction() * 100.0
    );
    Ok(())
}
