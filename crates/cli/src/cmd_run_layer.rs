//! `npcgra run-layer`: functional execution + golden check + report.

use npcgra::sim::{run_batched_dwc, run_layer, run_matmul_dwc, MappingKind};
use npcgra::{reference, AreaModel, Tensor};

use crate::args::Flags;

pub fn run(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let spec = flags.machine()?;
    let layer = flags.layer()?;
    let mapping = flags.mapping()?;

    let ifm = Tensor::random(layer.in_channels(), layer.in_h(), layer.in_w(), 1);
    let weights = layer.random_weights(2);

    println!(
        "machine: {}x{} NP-CGRA @ {:.0} MHz",
        spec.rows,
        spec.cols,
        spec.clock_hz / 1e6
    );
    println!("layer:   {layer} ({})", layer.activation());

    let (ofm, report) = match mapping {
        MappingKind::Auto => run_layer(&layer, &ifm, &weights, &spec),
        MappingKind::MatmulDwc => run_matmul_dwc(&layer, &ifm, &weights, &spec),
        MappingKind::BatchedDwcS1 => run_batched_dwc(&layer, &ifm, &weights, &spec),
    }
    .map_err(|e| e.to_string())?;

    let golden = reference::run_layer(&layer, &ifm, &weights).map_err(|e| e.to_string())?;
    let check = if ofm == golden {
        "bit-exact vs golden reference"
    } else {
        "MISMATCH vs golden reference"
    };
    if ofm != golden {
        return Err(check.to_string());
    }

    println!();
    println!(
        "cycles:        {} ({} compute, {} DMA-engine)",
        report.cycles, report.compute_cycles, report.dma_cycles
    );
    println!("latency:       {:.4} ms", report.ms());
    println!("utilization:   {:.2} %", report.utilization() * 100.0);
    let area = AreaModel::calibrated().total(&spec);
    println!("ADP:           {:.4} mm^2*ms (area {area:.3} mm^2)", area * report.ms());
    println!("check:         {check}");
    Ok(())
}
