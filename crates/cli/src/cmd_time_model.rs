//! `npcgra time-model`: per-layer timing of the evaluation workloads.

use npcgra::nn::models;
use npcgra::sim::{time_layer, MappingKind};
use npcgra::{AreaModel, ConvKind, LayerReport, Model, NpCgra};

use crate::args::Flags;

pub fn run(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let spec = flags.machine()?;
    let machine = NpCgra::new(spec);
    let batched = flags.has("batched");

    let model: Model = match flags.require("model")? {
        "v1" => {
            let alpha: f64 = flags
                .get("alpha")
                .unwrap_or("0.5")
                .parse()
                .map_err(|_| "--alpha: bad number")?;
            let res: usize = flags.get("res").unwrap_or("128").parse().map_err(|_| "--res: bad number")?;
            models::mobilenet_v1(alpha, res)
        }
        "v2" => {
            let alpha: f64 = flags
                .get("alpha")
                .unwrap_or("1.0")
                .parse()
                .map_err(|_| "--alpha: bad number")?;
            let res: usize = flags.get("res").unwrap_or("224").parse().map_err(|_| "--res: bad number")?;
            models::mobilenet_v2(alpha, res)
        }
        "v3" => {
            let res: usize = flags.get("res").unwrap_or("224").parse().map_err(|_| "--res: bad number")?;
            models::mobilenet_v3_small(res)
        }
        "alexnet" => models::alexnet(),
        other => return Err(format!("--model must be v1|v2|v3|alexnet, got '{other}'")),
    };

    println!("== {} on {}x{} NP-CGRA ==", model.name(), spec.rows, spec.cols);
    println!("{:<16} {:>12} {:>10} {:>8}", "layer", "cycles", "ms", "util%");
    let mut reports: Vec<LayerReport> = Vec::new();
    for layer in model.layers() {
        let mut r = machine.time_layer(layer).map_err(|e| e.to_string())?;
        if batched && layer.kind() == ConvKind::Depthwise && layer.s() == 1 {
            if let Ok(b) = time_layer(layer, &spec, MappingKind::BatchedDwcS1) {
                if b.seconds() < r.seconds() {
                    r = b;
                }
            }
        }
        println!(
            "{:<16} {:>12} {:>10.4} {:>8.2}",
            r.name,
            r.cycles,
            r.ms(),
            r.utilization() * 100.0
        );
        reports.push(r);
    }
    let total = LayerReport::total(model.name(), &reports);
    let area = AreaModel::calibrated().total(&spec);
    println!("{:-<50}", "");
    println!(
        "total: {:.3} ms ({} cycles{}), ADP {:.2} mm^2*ms",
        total.ms(),
        total.cycles,
        if total.host_seconds > 0.0 {
            format!(" + {:.2} ms host im2col", total.host_seconds * 1e3)
        } else {
            String::new()
        },
        area * total.ms()
    );
    Ok(())
}
