//! Tiny flag parser shared by the subcommands (no external dependencies).

use npcgra::nn::Activation;
use npcgra::sim::{BackendTier, MappingKind};
use npcgra::{CgraSpec, ConvLayer};

/// Parsed `--flag value` pairs.
pub struct Flags {
    pairs: Vec<(String, Option<String>)>,
}

impl Flags {
    /// Parse `--flag [value]` sequences; a flag followed by another flag (or
    /// the end) is boolean.
    pub fn parse(args: &[String]) -> Result<Flags, String> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            let Some(name) = a.strip_prefix("--") else {
                return Err(format!("expected --flag, got '{a}'"));
            };
            let value = match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    i += 1;
                    Some(v.clone())
                }
                _ => None,
            };
            pairs.push((name.to_string(), value));
            i += 1;
        }
        Ok(Flags { pairs })
    }

    /// The raw value of a flag, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.pairs.iter().find(|(n, _)| n == name).and_then(|(_, v)| v.as_deref())
    }

    /// Whether a boolean flag is present.
    pub fn has(&self, name: &str) -> bool {
        self.pairs.iter().any(|(n, _)| n == name)
    }

    /// A required flag's value.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("missing --{name}"))
    }

    /// Parse `RxC` / `HxW` pairs.
    pub fn dims(&self, name: &str, default: (usize, usize)) -> Result<(usize, usize), String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => {
                let (a, b) = v.split_once('x').ok_or_else(|| format!("--{name} expects AxB, got '{v}'"))?;
                Ok((
                    a.parse().map_err(|_| format!("--{name}: bad number '{a}'"))?,
                    b.parse().map_err(|_| format!("--{name}: bad number '{b}'"))?,
                ))
            }
        }
    }

    /// The machine spec from `--machine RxC` (default 8×8).
    pub fn machine(&self) -> Result<CgraSpec, String> {
        let (r, c) = self.dims("machine", (8, 8))?;
        if r == 0 || c == 0 {
            return Err("--machine dimensions must be nonzero".into());
        }
        Ok(CgraSpec::np_cgra(r, c))
    }

    /// The activation from `--relu` / `--leaky N`.
    pub fn activation(&self) -> Result<Activation, String> {
        if self.has("relu") {
            Ok(Activation::Relu)
        } else if self.has("leaky") {
            let shift: u8 = self
                .require("leaky")?
                .parse()
                .map_err(|_| "--leaky expects a shift amount".to_string())?;
            Ok(Activation::LeakyRelu { shift })
        } else {
            Ok(Activation::None)
        }
    }

    /// The execution tier from `--tier` (default: the cycle-accurate
    /// golden tier, so untouched invocations behave exactly as before).
    pub fn tier(&self) -> Result<BackendTier, String> {
        match self.get("tier") {
            None => Ok(BackendTier::CycleAccurate),
            Some(v) => v.parse().map_err(|e: String| format!("--tier: {e}")),
        }
    }

    /// The mapping from `--mapping`.
    pub fn mapping(&self) -> Result<MappingKind, String> {
        match self.get("mapping").unwrap_or("auto") {
            "auto" => Ok(MappingKind::Auto),
            "matmul" => Ok(MappingKind::MatmulDwc),
            "batched" => Ok(MappingKind::BatchedDwcS1),
            other => Err(format!("--mapping must be auto|matmul|batched, got '{other}'")),
        }
    }

    /// Build the layer described by `--kind/--channels/--size/--stride`.
    pub fn layer(&self) -> Result<ConvLayer, String> {
        let kind = self.require("kind")?;
        let (h, w) = self.dims("size", (16, 16))?;
        let act = self.activation()?;
        match kind {
            "dw" => {
                let ch: usize = self
                    .require("channels")?
                    .parse()
                    .map_err(|_| "--channels: bad number".to_string())?;
                let s: usize = self
                    .get("stride")
                    .unwrap_or("1")
                    .parse()
                    .map_err(|_| "--stride: bad number".to_string())?;
                Ok(ConvLayer::depthwise("cli-dw", ch, h, w, 3, s, 1).with_activation(act))
            }
            "pw" => {
                let spec = self.require("channels")?;
                let (ci, co) = spec.split_once(',').ok_or("--channels for pw expects in,out (e.g. 32,64)")?;
                let ci: usize = ci.parse().map_err(|_| "--channels: bad number".to_string())?;
                let co: usize = co.parse().map_err(|_| "--channels: bad number".to_string())?;
                Ok(ConvLayer::pointwise("cli-pw", ci, co, h, w).with_activation(act))
            }
            other => Err(format!("--kind must be dw|pw, got '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(s: &str) -> Flags {
        let args: Vec<String> = s.split_whitespace().map(String::from).collect();
        Flags::parse(&args).unwrap()
    }

    #[test]
    fn parses_values_and_booleans() {
        let f = flags("--kind dw --channels 8 --relu --size 12x10");
        assert_eq!(f.get("kind"), Some("dw"));
        assert!(f.has("relu"));
        assert_eq!(f.dims("size", (0, 0)).unwrap(), (12, 10));
        assert_eq!(f.dims("machine", (8, 8)).unwrap(), (8, 8), "default applies");
    }

    #[test]
    fn rejects_positional_arguments() {
        let args = vec!["oops".to_string()];
        assert!(Flags::parse(&args).is_err());
    }

    #[test]
    fn builds_dw_and_pw_layers() {
        let dw = flags("--kind dw --channels 8 --size 12x12 --stride 2").layer().unwrap();
        assert_eq!(dw.s(), 2);
        assert_eq!(dw.in_channels(), 8);
        let pw = flags("--kind pw --channels 32,64 --size 7x7").layer().unwrap();
        assert_eq!((pw.in_channels(), pw.out_channels()), (32, 64));
    }

    #[test]
    fn activation_flags() {
        assert_eq!(flags("--relu").activation().unwrap(), Activation::Relu);
        assert_eq!(flags("--leaky 3").activation().unwrap(), Activation::LeakyRelu { shift: 3 });
        assert_eq!(flags("").activation().unwrap(), Activation::None);
    }

    #[test]
    fn mapping_flags() {
        assert_eq!(flags("--mapping batched").mapping().unwrap(), MappingKind::BatchedDwcS1);
        assert_eq!(flags("").mapping().unwrap(), MappingKind::Auto);
        assert!(flags("--mapping bogus").mapping().is_err());
    }

    #[test]
    fn tier_flag() {
        assert_eq!(flags("").tier().unwrap(), BackendTier::CycleAccurate);
        assert_eq!(flags("--tier fast").tier().unwrap(), BackendTier::Fast);
        assert_eq!(flags("--tier cycle-accurate").tier().unwrap(), BackendTier::CycleAccurate);
        assert!(flags("--tier warp").tier().is_err());
    }

    #[test]
    fn missing_required_flag_errors() {
        assert!(flags("--size 4x4").layer().is_err());
        assert!(
            flags("--kind pw --channels 32 --size 4x4").layer().is_err(),
            "pw needs in,out"
        );
    }
}
