//! `npcgra disasm`: compile a mapping into configuration memory and print
//! the disassembled contexts (the inverse view of Fig. 3).

use npcgra::kernels::{ConfigImage, DwcGeneralMapping, DwcS1Mapping, PwcMapping};
use npcgra::ConvKind;

use crate::args::Flags;

pub fn run(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let spec = flags.machine()?;
    let layer = flags.layer()?;

    let image = match layer.kind() {
        ConvKind::Pointwise => ConfigImage::compile(
            &PwcMapping::new(layer.in_channels(), &spec, 0).with_activation(layer.activation()),
            &spec,
        ),
        ConvKind::Depthwise if layer.s() == 1 && layer.k() * layer.k() <= npcgra::arch::grf::GRF_WORDS => ConfigImage::compile(
            &DwcS1Mapping::new(layer.k(), &spec, 0).with_activation(layer.activation()),
            &spec,
        ),
        _ => ConfigImage::compile(
            &DwcGeneralMapping::new(layer.k(), layer.s(), &spec, 0).with_activation(layer.activation()),
            &spec,
        ),
    }
    .map_err(|e| e.to_string())?;

    println!(
        "configuration memory for {layer} on {}x{}: {} contexts, {} bits/context ({} bytes total)",
        spec.rows,
        spec.cols,
        image.num_contexts(),
        image.bits_per_context(),
        image.total_bits() / 8
    );
    println!();
    print!("{}", image.disassemble());
    Ok(())
}
