//! `serve-net` — run the socket front-end as a standalone server.
//!
//! Registers the DSC layers of the selected models as endpoints, starts
//! the `npcgra-net` reactor on `--addr`, prints the model table (wire
//! model id → layer name → input shape) and serves until `--seconds`
//! elapses (`0` = forever, until the process is killed). Shutdown drains
//! admitted work and prints the final serving statistics.
//!
//! Tenants are optional (`--tenants name:token[:rate[:burst[:quota]]]`,
//! comma-separated); with none configured the front-end runs open, the
//! defaults-off posture. Clients speak the DESIGN §17 wire protocol —
//! `NetClient` in `npcgra::net` is the reference implementation.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use npcgra::net::{NetConfig, NetServer, TenantSpec};
use npcgra::nn::models;
use npcgra::serve::{ServeConfig, Server};

use crate::args::Flags;

pub fn run(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let spec = flags.machine()?;
    let workers: usize = parse_or(&flags, "workers", 4)?;
    let max_batch: usize = parse_or(&flags, "max-batch", 4)?;
    let linger_us: u64 = parse_or(&flags, "linger-us", 500)?;
    let alpha: f64 = parse_or(&flags, "alpha", 0.25)?;
    let res: usize = parse_or(&flags, "res", 32)?;
    let seconds: f64 = parse_or(&flags, "seconds", 0.0)?;
    let max_conns: usize = parse_or(&flags, "max-conns", 0)?;
    let read_timeout_ms: u64 = parse_or(&flags, "read-timeout-ms", 0)?;
    let write_timeout_ms: u64 = parse_or(&flags, "write-timeout-ms", 0)?;
    let idle_timeout_ms: u64 = parse_or(&flags, "idle-timeout-ms", 0)?;
    let backlog_limit: usize = parse_or(&flags, "backlog-limit", 0)?;
    let tier = flags.tier()?;
    let which = flags.get("model").unwrap_or("v1");
    let addr: SocketAddr = flags
        .get("addr")
        .unwrap_or("127.0.0.1:0")
        .parse()
        .map_err(|e| format!("--addr: {e}"))?;
    if !addr.ip().is_loopback() {
        return Err("--addr must be a loopback address (the wire protocol carries no transport security)".to_string());
    }
    if res == 0 || !res.is_multiple_of(32) {
        return Err(format!("--res must be a positive multiple of 32, got {res}"));
    }

    let mut tables = Vec::new();
    match which {
        "v1" => tables.push(models::mobilenet_v1(alpha, res)),
        "v2" => tables.push(models::mobilenet_v2(alpha, res)),
        "mixed" => {
            tables.push(models::mobilenet_v1(alpha, res));
            tables.push(models::mobilenet_v2(alpha, res));
        }
        other => return Err(format!("--model must be v1|v2|mixed, got '{other}'")),
    }

    let config = ServeConfig::for_spec(&spec)
        .with_workers(workers)
        .with_max_batch(max_batch)
        .with_max_linger(Duration::from_micros(linger_us))
        .with_backend_tier(tier);
    let server = Arc::new(Server::start(config));
    let mut endpoints = Vec::new();
    for model in &tables {
        for layer in model.dsc_layers() {
            let name = format!("{}.{}", model.name(), layer.name());
            let named = layer.renamed(&name);
            let weights = named.random_weights(0xC0FFEE);
            let id = server
                .register(&name, named, weights)
                .map_err(|e| format!("registering {name}: {e}"))?;
            endpoints.push((id, name));
        }
    }

    let mut net_config = NetConfig::default().with_addr(addr);
    if max_conns > 0 {
        net_config = net_config.with_max_conns(max_conns);
    }
    if read_timeout_ms > 0 {
        net_config = net_config.with_read_timeout(Some(Duration::from_millis(read_timeout_ms)));
    }
    if write_timeout_ms > 0 {
        net_config = net_config.with_write_timeout(Some(Duration::from_millis(write_timeout_ms)));
    }
    if idle_timeout_ms > 0 {
        net_config = net_config.with_idle_timeout(Some(Duration::from_millis(idle_timeout_ms)));
    }
    if backlog_limit > 0 {
        net_config = net_config.with_write_backlog_limit(backlog_limit);
    }
    for spec in parse_tenants(flags.get("tenants").unwrap_or(""))? {
        net_config = net_config.with_tenant(spec);
    }

    let net = NetServer::start(Arc::clone(&server), net_config).map_err(|e| format!("binding {addr}: {e}"))?;
    println!("serve-net [{tier}]: listening on {}", net.local_addr());
    for (id, name) in &endpoints {
        let (c, h, w) = server.model_shape(*id).expect("registered model");
        println!("  model {:>3}  {name}  input {c}x{h}x{w}", id.index());
    }
    if seconds > 0.0 {
        std::thread::sleep(Duration::from_secs_f64(seconds));
    } else {
        println!("serve-net: serving until killed (pass --seconds N for a bounded run)");
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }

    let net_stats = net.shutdown();
    println!("{net_stats}");
    let server = Arc::try_unwrap(server).unwrap_or_else(|_| panic!("front-end still holds the server"));
    let stats = server.shutdown();
    println!("{stats}");
    Ok(())
}

/// `name:token[:rate[:burst[:quota]]]`, comma-separated. Rate is
/// requests/second (0 = unlimited), burst the bucket size, quota the
/// in-flight cap (0 = unbounded).
fn parse_tenants(arg: &str) -> Result<Vec<TenantSpec>, String> {
    let mut specs = Vec::new();
    for entry in arg.split(',').filter(|e| !e.is_empty()) {
        let parts: Vec<&str> = entry.split(':').collect();
        let (name, token) = match parts.as_slice() {
            [name, token, ..] if !name.is_empty() && !token.is_empty() => (*name, *token),
            _ => return Err(format!("--tenants: '{entry}' is not name:token[:rate[:burst[:quota]]]")),
        };
        let num = |i: usize| -> Result<f64, String> {
            parts.get(i).map_or(Ok(0.0), |v| {
                v.parse().map_err(|_| format!("--tenants: bad number '{v}' in '{entry}'"))
            })
        };
        let mut spec = TenantSpec::open(name, token.as_bytes());
        let rate = num(2)?;
        if rate > 0.0 {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let burst = num(3)?.max(1.0) as u32;
            spec = spec.with_rate(rate, burst);
        }
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let quota = num(4)? as u32;
        if quota > 0 {
            spec = spec.with_max_inflight(quota);
        }
        specs.push(spec);
    }
    Ok(specs)
}

fn parse_or<T: std::str::FromStr>(flags: &Flags, name: &str, default: T) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{name}: bad value '{v}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::parse_tenants;

    #[test]
    fn tenant_grammar() {
        let specs = parse_tenants("a:tok,b:s3cret:100:16:8").unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!((specs[0].name.as_str(), specs[0].rate_per_sec), ("a", 0.0));
        assert_eq!(specs[1].token, b"s3cret");
        assert_eq!((specs[1].rate_per_sec, specs[1].burst, specs[1].max_inflight), (100.0, 16, 8));
        assert!(parse_tenants("").unwrap().is_empty());
        assert!(parse_tenants("noseparator").is_err());
        assert!(parse_tenants("a:").is_err());
    }
}
