//! `chaos-bench` — fault-injection soak test for the inference server.
//!
//! Registers the MobileNet DSC layers like `serve-bench`, then runs
//! closed-loop clients for a fixed wall-clock window while chaos is
//! injected: a worker panic on its first batch (`--panic-worker`) and a
//! deterministic Bernoulli hardware-fault plan (`--fault-seed` +
//! `--fault-rate`) flipping bits in the simulated machines. The command
//! *fails* unless the server survives: every ticket must resolve (no
//! hangs — clients poll with [`Ticket::wait_timeout`]), no worker thread
//! may end `panicked`, and an injected panic must show up as a supervised
//! restart in the final statistics.
//!
//! With `--assert-detection` the soak additionally audits the ABFT
//! integrity layer: every successful reply is compared bit-exactly against
//! the golden host reference, and the run fails unless ≥ 99 % of corrupted
//! executions were *detected* (tripped an output checksum instead of
//! replying silently wrong) and detected corruption was *healed* by retry
//! (some request that failed a checksum later completed bit-exact).
//! Shard canaries run every `--canary-every` batches in this mode.
//!
//! With `--gray` the command instead runs the gray-failure soak: the fault
//! plan injects *temporal* faults — wedges (the machine stops advancing),
//! stalls (a huge burst of dead cycles) and slowdowns (every op takes
//! `--slowdown-factor`× longer) — at `--gray-rate`, while the liveness
//! layer hunts them: the per-run cycle budget (`--cycle-budget`×
//! predicted cycles) catches host-fast runaways deterministically, and the
//! batch watchdog (`--watchdog-slack`× the calibrated wall estimate)
//! cancels wall-clock wedges via cooperative [`CancelToken`] polling.
//! Bernoulli bit flips stay off, so every delivered reply is audited
//! bit-exact against the golden host reference. With `--assert-liveness`
//! the run fails unless every ticket resolves, no reply is wrong, at least
//! one batch was preempted and the preempted shard recovered (a supervised
//! restart); with `--gray-rate 0` it instead fails if the armed watchdog
//! ever preempts a healthy batch (false-positive check).
//!
//! With `--pipeline` the command instead runs the whole-model pipeline
//! soak: the MobileNetV1 DSC chain is compiled into `--stages` balanced
//! stages and served through the stage-level fault-domain [`Pipeline`],
//! first as a zero-fault control run and then with one fault of each class
//! injected at distinct soak points — a stage kill (panic), a stage wedge
//! (temporal fault preempted by the cycle budget) and a handoff corruption
//! (caught by the forwarded checksum). Every reply is audited bit-exactly
//! against the single-machine golden reference. With `--assert-liveness`
//! the run fails unless 100 % of in-flight inferences complete bit-exact,
//! the kill and the wedge each fail over to a stage spare (exactly two
//! failovers under a zero restart budget), healing replays only from the
//! last checkpoint (stage 0 never replays), and the control phase shows
//! zero failovers, zero replays and zero restores.
//!
//! With `--pipeline --overload` the two umbrellas combine into the
//! whole-model overload/liveness soak: a control phase proves the armed
//! stage watchdogs and pipeline brownout ladder are inert on a healthy,
//! unloaded pipeline (no false preemptions, no ladder transitions); a
//! calibration phase measures closed-loop capacity; then one pipeline —
//! with stage watchdogs armed as the *only* preemption path (no cycle
//! budget), a stage wedge and a stage kill injected, and CoDel-driven
//! priority admission on stage 0 — absorbs a sequential fault warm-up
//! followed by an open-loop mixed-priority drive at `--overload-factor`
//! times capacity. With `--assert-slo` the run fails unless every ticket
//! resolves, every delivered reply is bit-exact, ≥ 99 % of admitted
//! Interactive whole-model inferences meet `--slo-ms`, the wedge was
//! preempted by the stage watchdog (and recovered via failover), and the
//! brownout ladder actually engaged.
//!
//! With `--crash` the command instead runs the crash-durability soak: a
//! *journaled* serving core (DESIGN §18) behind the TCP front-end is
//! hard-killed and restarted `--lives` times while keyed closed-loop
//! drivers submit requests under client idempotency keys, reconnecting
//! with session resume after every kill. A zero-crash control phase first
//! proves the journal is inert when disabled (keys execute twice, no
//! journal counters move, no file appears). With `--assert-durability`
//! the run fails unless every key completes bit-exactly against the
//! golden host reference exactly once (zero lost admitted requests, zero
//! duplicate executions), every recovery replayed something and stayed
//! under `--recovery-bound-ms`, reconnect actually resumed unreplied
//! requests, and a post-completion retry is redelivered from the dedup
//! table without re-executing.
//!
//! With `--overload` the command instead runs the overload-control soak:
//! it first *calibrates* the server's closed-loop capacity, then drives it
//! open-loop at `--overload-factor` times that rate (default 2×) with a
//! mixed-priority workload (30 % Interactive carrying a `--slo-ms`
//! deadline, 40 % Batch, 30 % BestEffort) while CoDel admission, weighted
//! fair dequeue, hedged execution and circuit breakers are all enabled.
//! With `--assert-slo` the run fails unless ≥ 99 % of *admitted*
//! Interactive requests complete within the SLO, every ticket resolves
//! (no silent drops), and every reply — hedge winners included — is
//! bit-exact against the golden host reference.
//!
//! Every soak accepts `--tier cycle-accurate|fast` selecting the shards'
//! execution backend. On the fast tier the same fault plans flip bits in
//! (and wedge/stall/slow) the functional executor, so `--assert-detection`
//! additionally proves the ABFT layer catches corruption without the
//! cycle-accurate machinery underneath — and the per-shard golden
//! cross-check replays served batches on a scratch cycle-accurate machine
//! as a second line of defense.
//!
//! [`Ticket::wait_timeout`]: npcgra::serve::Ticket::wait_timeout
//! [`CancelToken`]: npcgra::sim::CancelToken
//! [`Pipeline`]: npcgra::serve::Pipeline

use std::collections::HashSet;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use npcgra::net::frame::{code as wire_code, WireReply};
use npcgra::net::{ClientError, NetChaos, NetChaosConfig, NetClient, NetConfig, NetServer, TenantSpec};
use npcgra::nn::{models, reference, ConvLayer, Tensor};
use npcgra::serve::{
    BackendTier, ChaosConfig, JournalConfig, ModelId, OverloadConfig, Priority, ServeConfig, ServeError, Server, Ticket,
    WorkerExit,
};

use crate::args::Flags;

pub fn run(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    if flags.has("crash") {
        return run_crash(&flags);
    }
    if flags.has("net") {
        return run_net(&flags);
    }
    if flags.has("pipeline") {
        if flags.has("overload") {
            return run_pipeline_overload(&flags);
        }
        return run_pipeline(&flags);
    }
    if flags.has("overload") {
        return run_overload(&flags);
    }
    if flags.has("gray") {
        return run_gray(&flags);
    }
    if flags.has("assert-slo") {
        return Err("--assert-slo needs --overload or --net".to_string());
    }
    if flags.has("assert-liveness") {
        return Err("--assert-liveness needs --gray or --pipeline".to_string());
    }
    if flags.has("assert-durability") {
        return Err("--assert-durability needs --crash".to_string());
    }
    let spec = flags.machine()?;
    let workers: usize = parse_or(&flags, "workers", 4)?;
    let clients: usize = parse_or(&flags, "clients", 8)?;
    let seconds: f64 = parse_or(&flags, "seconds", 5.0)?;
    let fault_rate: f64 = parse_or(&flags, "fault-rate", 1e-4)?;
    let fault_seed: u64 = parse_or(&flags, "fault-seed", 0xC6A05)?;
    let max_batch: usize = parse_or(&flags, "max-batch", 4)?;
    let linger_us: u64 = parse_or(&flags, "linger-us", 500)?;
    let alpha: f64 = parse_or(&flags, "alpha", 0.25)?;
    let res: usize = parse_or(&flags, "res", 32)?;
    let wait_ms: u64 = parse_or(&flags, "wait-ms", 250)?;
    let assert_detection = flags.has("assert-detection");
    let canary_every: u64 = parse_or(&flags, "canary-every", if assert_detection { 32 } else { 0 })?;
    let tier = flags.tier()?;
    let which = flags.get("model").unwrap_or("mixed");
    let panic_worker: Option<usize> = match flags.get("panic-worker") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| format!("--panic-worker: bad value '{v}'"))?),
    };
    if res == 0 || !res.is_multiple_of(32) {
        return Err(format!("--res must be a positive multiple of 32, got {res}"));
    }
    if workers == 0 {
        return Err("chaos-bench needs at least one worker".to_string());
    }

    let chaos = ChaosConfig {
        panic_on_first_batch: panic_worker,
        poison_value: None,
        fault_seed: (fault_rate > 0.0).then_some(fault_seed),
        fault_rate,
        ..ChaosConfig::default()
    };
    let config = ServeConfig::for_spec(&spec)
        .with_workers(workers)
        .with_max_batch(max_batch)
        .with_max_linger(Duration::from_micros(linger_us))
        .with_canary_interval(canary_every)
        .with_backend_tier(tier)
        .with_chaos(chaos);

    let model_tables = build_models(which, alpha, res)?;

    quiet_worker_panics();

    let server = Server::start(config);
    let (endpoints, goldens) = register_endpoints(&server, &model_tables)?;
    println!(
        "chaos-bench [{tier}]: {} models, {} shard(s) of a {}x{} machine, {} clients for {seconds:.1}s, \
         fault rate {fault_rate:e} (seed {fault_seed:#x}), panic worker {panic_worker:?}",
        endpoints.len(),
        workers,
        spec.rows,
        spec.cols,
        clients,
    );

    let deadline = Instant::now() + Duration::from_secs_f64(seconds);
    let hung = AtomicU64::new(0);
    let answered = AtomicU64::new(0);
    let wrong = AtomicU64::new(0);
    let quarantined_seen = AtomicU64::new(0);
    let server_ref = &server;
    let endpoints_ref = &endpoints;
    let goldens_ref = &goldens;
    let hung_ref = &hung;
    let answered_ref = &answered;
    let wrong_ref = &wrong;
    let quarantined_ref = &quarantined_seen;
    std::thread::scope(|scope| {
        for c in 0..clients {
            scope.spawn(move || {
                let mut r = 0usize;
                while Instant::now() < deadline {
                    let idx = r % endpoints_ref.len();
                    let id = endpoints_ref[idx];
                    let seed = (c * 1_000_000 + r) as u64;
                    r += 1;
                    let input = input_for(server_ref, id, seed);
                    // The detection audit needs the golden output; compute
                    // it before the input moves into the request.
                    let golden = assert_detection.then(|| {
                        let (layer, w) = &goldens_ref[idx];
                        reference::run_layer(layer, &input, w).expect("golden reference")
                    });
                    match server_ref.submit(id, input) {
                        Ok(ticket) => {
                            // Poll with a bounded wait so a stranded reply
                            // channel shows up as a hang count, not a wedge.
                            let mut waited = Duration::ZERO;
                            let cap = Duration::from_millis(wait_ms) * 40;
                            loop {
                                match ticket.wait_timeout(Duration::from_millis(wait_ms)) {
                                    Err(ServeError::ReplyTimeout { waited: w }) => {
                                        waited += w;
                                        if waited >= cap {
                                            hung_ref.fetch_add(1, Ordering::Relaxed);
                                            break;
                                        }
                                    }
                                    result => {
                                        answered_ref.fetch_add(1, Ordering::Relaxed);
                                        match result {
                                            Ok(resp) => {
                                                if golden.as_ref().is_some_and(|g| resp.output != *g) {
                                                    wrong_ref.fetch_add(1, Ordering::Relaxed);
                                                }
                                            }
                                            Err(ServeError::Quarantined { .. }) => {
                                                quarantined_ref.fetch_add(1, Ordering::Relaxed);
                                            }
                                            Err(_) => {}
                                        }
                                        break;
                                    }
                                }
                            }
                        }
                        Err(ServeError::QueueFull { .. } | ServeError::Degraded { .. }) => {
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Err(ServeError::ShuttingDown) => break,
                        Err(e) => panic!("submit failed: {e}"),
                    }
                }
            });
        }
    });

    let stats = server.shutdown();
    println!("{stats}");

    let hung = hung.load(Ordering::Relaxed);
    let answered = answered.load(Ordering::Relaxed);
    if hung > 0 {
        return Err(format!("{hung} ticket(s) never resolved — a reply was lost"));
    }
    if stats.worker_exits.contains(&WorkerExit::Panicked) {
        return Err(format!("a worker thread escaped supervision: exits {:?}", stats.worker_exits));
    }
    if panic_worker.is_some() && stats.restarts == 0 {
        return Err("injected panic never surfaced as a supervised restart".to_string());
    }
    if assert_detection {
        let wrong = wrong.load(Ordering::Relaxed);
        let detected = stats.integrity_failed;
        println!(
            "detection: {detected} checksum trips, {wrong} silently wrong replies, {} recovered, \
             {} quarantined, {} canary runs ({} failed)",
            stats.integrity_recovered,
            quarantined_seen.load(Ordering::Relaxed),
            stats.canary_runs,
            stats.canary_failed,
        );
        if detected == 0 {
            return Err(
                "assert-detection: the fault plan never tripped the integrity layer — raise --fault-rate or --seconds"
                    .to_string(),
            );
        }
        // The checksum identities are exact mod 2^16, so an undetected
        // corrupted reply means the flip's error coefficients cancelled in
        // every checksum — bounded below one percent of corruption events.
        let ratio = detected as f64 / (detected + wrong) as f64;
        if ratio < 0.99 {
            return Err(format!(
                "assert-detection: only {:.2}% of corrupted executions were detected \
                 ({wrong} silently wrong replies escaped the checksums)",
                ratio * 100.0
            ));
        }
        if stats.integrity_recovered == 0 {
            return Err("assert-detection: detected corruption was never healed by retry".to_string());
        }
    }
    println!(
        "chaos-bench PASS: {answered} tickets resolved, 0 hung; {} panic(s) caught, {} restart(s), \
         {} retries, {} quarantined",
        stats.panics_caught, stats.restarts, stats.retries, stats.quarantined
    );
    Ok(())
}

/// The `--pipeline` soak: compile the MobileNetV1 DSC chain into balanced
/// stages, serve it through the stage-level fault-domain [`Pipeline`], and
/// prove checkpointed failover — a zero-fault control phase, then a
/// faulted phase with one stage kill, one stage wedge and one handoff
/// corruption at distinct soak points. Every reply is audited bit-exactly
/// against the single-machine golden reference; `--assert-liveness` turns
/// the audit into a hard gate.
///
/// [`Pipeline`]: npcgra::serve::Pipeline
fn run_pipeline(flags: &Flags) -> Result<(), String> {
    use npcgra::serve::{Pipeline, StageFault};
    use npcgra::sim::CompiledModel;

    let spec = flags.machine()?;
    let stages: usize = parse_or(flags, "stages", 4)?;
    let spares: usize = parse_or(flags, "spares", 1)?;
    let checkpoint_every: usize = parse_or(flags, "checkpoint-every", 1)?;
    let requests: u64 = parse_or(flags, "requests", 24)?;
    let alpha: f64 = parse_or(flags, "alpha", 0.25)?;
    let res: usize = parse_or(flags, "res", 32)?;
    let cycle_budget: f64 = parse_or(flags, "cycle-budget", 8.0)?;
    let wait_ms: u64 = parse_or(flags, "wait-ms", 250)?;
    let assert_liveness = flags.has("assert-liveness");
    if res == 0 || !res.is_multiple_of(32) {
        return Err(format!("--res must be a positive multiple of 32, got {res}"));
    }
    if stages < 2 {
        return Err(format!("--pipeline needs --stages >= 2, got {stages}"));
    }
    if requests < 4 {
        return Err(format!("--pipeline needs --requests >= 4, got {requests}"));
    }

    let layers: Vec<ConvLayer> = models::mobilenet_v1(alpha, res).dsc_layers().cloned().collect();
    let model = CompiledModel::compile("mobilenet_v1", &layers, &spec, stages)
        .map_err(|e| format!("compiling the pipeline model: {e}"))?;
    let stages = model.num_stages(); // the chain's unit count may cap it
    if stages < 2 {
        return Err(format!("the chain only supports {stages} stage(s) — too short for the soak"));
    }
    let weights: Vec<Tensor> = layers
        .iter()
        .enumerate()
        .map(|(i, l)| l.random_weights(0xC0FFEE + i as u64))
        .collect();
    let base = ServeConfig::for_spec(&spec)
        .with_pipeline_stages(stages)
        .with_stage_spares(spares)
        .with_checkpoint_every(checkpoint_every)
        .with_restart_budget(0)
        .with_restart_backoff(Duration::from_micros(100))
        .with_cycle_budget(cycle_budget)
        .with_max_retries(4)
        .with_queue_capacity(requests as usize + 8);

    // One fault of each class, in distinct stages at distinct soak points.
    let kill = StageFault {
        stage: 1,
        job: requests / 4,
    };
    let wedge = StageFault {
        stage: (stages / 2).max(1),
        job: requests / 2,
    };
    let corrupt = StageFault {
        stage: stages - 1,
        job: requests * 3 / 4,
    };
    let mut faulted = base;
    faulted.chaos.stage_kill = Some(kill);
    faulted.chaos.stage_wedge = Some(wedge);
    faulted.chaos.stage_corrupt = Some(corrupt);

    println!(
        "chaos-bench --pipeline: {} layers in {stages} stage(s) over a {}x{} machine, {requests} inferences \
         per phase, {spares} spare(s)/stage, checkpoint every {checkpoint_every}, cycle budget {cycle_budget}x",
        model.num_layers(),
        spec.rows,
        spec.cols,
    );
    println!(
        "  faults: kill stage {} @ job {}, wedge stage {} @ job {}, corrupt handoff into stage {} @ job {}",
        kill.stage, kill.job, wedge.stage, wedge.job, corrupt.stage, corrupt.job,
    );

    quiet_worker_panics();

    let shape = model.input_shape();
    let inputs: Vec<Tensor> = (0..requests)
        .map(|i| Tensor::random(shape.0, shape.1, shape.2, 0x717E + i))
        .collect();
    let goldens: Vec<Tensor> = inputs
        .iter()
        .map(|input| {
            layers.iter().zip(&weights).fold(input.clone(), |act, (l, w)| {
                reference::run_layer(l, &act, w).expect("golden reference")
            })
        })
        .collect();

    let mut phase_stats = Vec::new();
    for (phase, cfg) in [("control", base), ("faulted", faulted)] {
        let pipe = Pipeline::start(cfg, model.clone(), weights.clone()).map_err(|e| format!("{phase}: start: {e}"))?;
        let tickets: Vec<_> = inputs
            .iter()
            .map(|input| pipe.submit(input.clone()).map_err(|e| format!("{phase}: submit: {e}")))
            .collect::<Result<_, _>>()?;
        let mut wrong = 0u64;
        let mut unresolved = 0u64;
        let mut completed = 0u64;
        let cap = Duration::from_millis(wait_ms) * 120;
        for (i, ticket) in tickets.into_iter().enumerate() {
            let mut waited = Duration::ZERO;
            loop {
                match ticket.wait_timeout(Duration::from_millis(wait_ms)) {
                    Err(ServeError::ReplyTimeout { waited: w }) => {
                        waited += w;
                        if waited >= cap {
                            unresolved += 1;
                            break;
                        }
                    }
                    Ok(resp) => {
                        completed += 1;
                        if resp.output != goldens[i] {
                            wrong += 1;
                        }
                        break;
                    }
                    Err(_) => break,
                }
            }
        }
        let stats = pipe.shutdown();
        println!("--- {phase} phase ---\n{stats}");
        if unresolved > 0 {
            return Err(format!(
                "{phase}: {unresolved} inference(s) never resolved — a stage wedged silently"
            ));
        }
        if wrong > 0 {
            return Err(format!(
                "{phase}: {wrong} reply(s) diverged from the golden run — healing broke bit-exactness"
            ));
        }
        if completed != requests {
            return Err(format!(
                "{phase}: only {completed}/{requests} inference(s) completed — in-flight work was lost"
            ));
        }
        phase_stats.push(stats);
    }

    let (control, chaos) = (&phase_stats[0], &phase_stats[1]);
    if assert_liveness {
        if control.total_failovers() != 0 || control.total_replays() != 0 || control.checkpoint_restores != 0 {
            return Err(format!(
                "assert-liveness: the zero-fault control phase touched the healing machinery \
                 ({} failover(s), {} replay(s), {} restore(s))",
                control.total_failovers(),
                control.total_replays(),
                control.checkpoint_restores
            ));
        }
        if chaos.panics_caught != 1 || chaos.preemptions < 1 || chaos.handoff_corruptions != 1 {
            return Err(format!(
                "assert-liveness: not every fault class landed ({} panic(s), {} preemption(s), \
                 {} handoff corruption(s))",
                chaos.panics_caught, chaos.preemptions, chaos.handoff_corruptions
            ));
        }
        if chaos.total_failovers() != 2 {
            return Err(format!(
                "assert-liveness: the kill and the wedge must each fail over once under a zero \
                 restart budget, got {:?}",
                chaos.stage_failovers
            ));
        }
        if chaos.stage_replays.first().copied().unwrap_or(0) != 0 {
            return Err(format!(
                "assert-liveness: stage 0 replayed — healing did not start from the last checkpoint \
                 (replays {:?})",
                chaos.stage_replays
            ));
        }
        if chaos.checkpoint_restores < 3 {
            return Err(format!(
                "assert-liveness: expected one restore per injected fault, got {}",
                chaos.checkpoint_restores
            ));
        }
    }
    println!(
        "chaos-bench --pipeline PASS: {requests}+{requests} inferences bit-exact, 0 unresolved; faulted phase: \
         {} failover(s), replays/stage {:?}, {} restore(s)",
        chaos.total_failovers(),
        chaos.stage_replays,
        chaos.checkpoint_restores
    );
    Ok(())
}

/// The `--pipeline --overload` combined soak: whole-model serving under
/// the full overload/liveness umbrella. Three phases on the MobileNetV1
/// DSC chain:
///
/// 1. **Control** — sequential zero-fault, zero-overload traffic through a
///    pipeline with stage watchdogs and the brownout controller *armed*:
///    proves no false preemptions and no ladder transitions.
/// 2. **Calibration** — closed-loop clients measure pipelined capacity.
/// 3. **Soak** — one pipeline with a stage wedge and a stage kill injected
///    (watchdog wall deadlines the only preemption path — no cycle
///    budget) absorbs a sequential warm-up that calibrates the per-stage
///    ns-per-cycle estimates and lands both faults, then an open-loop
///    mixed-priority drive at `--overload-factor`× capacity with
///    Interactive traffic carrying `--slo-ms` deadlines.
///
/// `--assert-slo` gates: every ticket resolves, delivered replies are
/// bit-exact, ≥ 99 % of admitted Interactive inferences meet the SLO, the
/// stage watchdog preempted the wedge, the kill was contained, both healed
/// via failover, and the brownout ladder engaged.
///
/// [`Pipeline`]: npcgra::serve::Pipeline
fn run_pipeline_overload(flags: &Flags) -> Result<(), String> {
    use npcgra::serve::{Pipeline, PipelineConfig, StageFault};
    use npcgra::sim::CompiledModel;

    let spec = flags.machine()?;
    let stages: usize = parse_or(flags, "stages", 4)?;
    let spares: usize = parse_or(flags, "spares", 1)?;
    let requests: u64 = parse_or(flags, "requests", 16)?;
    let clients: usize = parse_or(flags, "clients", 4)?;
    let seconds: f64 = parse_or(flags, "seconds", 4.0)?;
    let calib_seconds: f64 = parse_or(flags, "calib-seconds", 1.0)?;
    let factor: f64 = parse_or(flags, "overload-factor", 2.0)?;
    let slo_ms: u64 = parse_or(flags, "slo-ms", 1_000)?;
    let delay_target_us: u64 = parse_or(flags, "delay-target-us", 2_000)?;
    let delay_window_ms: u64 = parse_or(flags, "delay-window-ms", 50)?;
    let inflight_cap: usize = parse_or(flags, "inflight-cap", 2)?;
    let watchdog_slack: f64 = parse_or(flags, "watchdog-slack", 4.0)?;
    let alpha: f64 = parse_or(flags, "alpha", 0.25)?;
    let res: usize = parse_or(flags, "res", 32)?;
    let wait_ms: u64 = parse_or(flags, "wait-ms", 250)?;
    let assert_slo = flags.has("assert-slo");
    // This soak validates overload/liveness *policy* — admission, deadlines,
    // watchdog preemption — not cycle timing, so it defaults to the fast
    // tier: whole-model capacity is orders of magnitude higher, which both
    // gives the 99% SLO assertion statistical volume and keeps CoDel's
    // sliding windows densely sampled. `--tier cycle-accurate` still works
    // (lengthen --seconds to regain volume).
    let tier = match flags.get("tier") {
        None => BackendTier::Fast,
        Some(v) => v.parse().map_err(|e: String| format!("--tier: {e}"))?,
    };
    if res == 0 || !res.is_multiple_of(32) {
        return Err(format!("--res must be a positive multiple of 32, got {res}"));
    }
    if stages < 2 {
        return Err(format!("--pipeline needs --stages >= 2, got {stages}"));
    }
    if requests < 12 {
        return Err(format!("--pipeline --overload needs --requests >= 12, got {requests}"));
    }
    if clients == 0 {
        return Err("--pipeline --overload needs at least one client".to_string());
    }
    if !(1.0..=100.0).contains(&factor) {
        return Err(format!("--overload-factor must be in [1, 100], got {factor}"));
    }

    let layers: Vec<ConvLayer> = models::mobilenet_v1(alpha, res).dsc_layers().cloned().collect();
    let model = CompiledModel::compile("mobilenet_v1", &layers, &spec, stages)
        .map_err(|e| format!("compiling the pipeline model: {e}"))?;
    let stages = model.num_stages();
    if stages < 2 {
        return Err(format!("the chain only supports {stages} stage(s) — too short for the soak"));
    }
    let weights: Vec<Tensor> = layers
        .iter()
        .enumerate()
        .map(|(i, l)| l.random_weights(0xC0FFEE + i as u64))
        .collect();
    let golden_of = |input: &Tensor| -> Tensor {
        layers.iter().zip(&weights).fold(input.clone(), |act, (l, w)| {
            reference::run_layer(l, &act, w).expect("golden reference")
        })
    };

    // The armed umbrella: stage watchdogs (the ONLY preemption path — no
    // cycle budget) plus CoDel-driven brownout over stage-queue sojourns.
    let armed = PipelineConfig {
        delay_target: Some(Duration::from_micros(delay_target_us)),
        delay_window: Duration::from_millis(delay_window_ms),
        watchdog_slack,
        stage_inflight_cap: inflight_cap,
        ..PipelineConfig::default()
    };
    let base = ServeConfig::for_spec(&spec)
        .with_backend_tier(tier)
        .with_pipeline_stages(stages)
        .with_stage_spares(spares)
        .with_checkpoint_every(1)
        .with_restart_budget(0)
        .with_restart_backoff(Duration::from_micros(100))
        .with_max_retries(4)
        .with_queue_capacity(1024)
        .with_pipeline(armed);
    // One gray fault and one crash fault, in distinct stages, landing
    // after the sequential warm-up has calibrated every stage's wall
    // estimate (4 healthy passes arm the watchdog).
    let wedge = StageFault {
        stage: (stages / 2).max(1),
        job: 8,
    };
    let kill = StageFault { stage: 1, job: 10 };
    let mut faulted = base;
    faulted.chaos.stage_wedge = Some(wedge);
    faulted.chaos.stage_kill = Some(kill);

    println!(
        "chaos-bench --pipeline --overload: {} layers in {stages} stage(s) over a {}x{} machine ({tier} tier); \
         watchdog slack {watchdog_slack}x (no cycle budget), CoDel target {delay_target_us}us window {delay_window_ms}ms, \
         wedge stage {} @ job {}, kill stage {} @ job {}",
        model.num_layers(),
        spec.rows,
        spec.cols,
        wedge.stage,
        wedge.job,
        kill.stage,
        kill.job,
    );

    quiet_worker_panics();
    let shape = model.input_shape();

    // Phase 1 — control: sequential healthy traffic with everything armed.
    // One job in flight at a time means no standing queue and no wedges, so
    // any preemption or ladder transition here is a false positive.
    let control_pipe = Pipeline::start(base, model.clone(), weights.clone()).map_err(|e| format!("control: start: {e}"))?;
    for i in 0..requests {
        let input = Tensor::random(shape.0, shape.1, shape.2, 0xA11CE + i);
        let golden = golden_of(&input);
        let out = control_pipe
            .submit(input)
            .and_then(Ticket::wait)
            .map_err(|e| format!("control: inference {i}: {e}"))?;
        if out.output != golden {
            return Err(format!("control: inference {i} diverged from the golden run"));
        }
    }
    let control = control_pipe.shutdown();
    println!("--- control phase ---\n{control}");
    if control.watchdog_preemptions > 0 {
        return Err(format!(
            "control: {} stage-watchdog preemption(s) on healthy sequential traffic — the watchdog misfires",
            control.watchdog_preemptions
        ));
    }
    if control.brownout_escalations > 0 || control.overload_sheds.iter().sum::<u64>() > 0 {
        return Err(format!(
            "control: the brownout ladder engaged with no overload ({} escalation(s), {:?} shed(s))",
            control.brownout_escalations, control.overload_sheds
        ));
    }
    if control.total_failovers() != 0 || control.total_replays() != 0 || control.deadline_sheds != 0 {
        return Err("control: healing/deadline machinery engaged on a healthy unloaded pipeline".to_string());
    }

    // Phase 2 — closed-loop capacity calibration on a plain pipeline (no
    // overload knobs: measure the service rate, not the brownout policy).
    let calib_pipe = Pipeline::start(base.with_pipeline(PipelineConfig::default()), model.clone(), weights.clone())
        .map_err(|e| format!("calibration: start: {e}"))?;
    let calib_start = Instant::now();
    let calib_end = calib_start + Duration::from_secs_f64(calib_seconds);
    let calibrated = AtomicU64::new(0);
    let (calib_ref, calibrated_ref) = (&calib_pipe, &calibrated);
    std::thread::scope(|scope| {
        for c in 0..clients {
            scope.spawn(move || {
                let mut r = 0u64;
                while Instant::now() < calib_end {
                    let input = Tensor::random(shape.0, shape.1, shape.2, 0xCA1B + c as u64 * 1_000_000 + r);
                    r += 1;
                    match calib_ref.submit(input) {
                        Ok(t) => {
                            let _ = t.wait_timeout(Duration::from_secs(10));
                            calibrated_ref.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => std::thread::sleep(Duration::from_micros(200)),
                    }
                }
            });
        }
    });
    let calibrated = calibrated.load(Ordering::Relaxed);
    let capacity_rps = calibrated as f64 / calib_start.elapsed().as_secs_f64();
    let _ = calib_pipe.shutdown();
    if calibrated == 0 || capacity_rps <= 0.0 {
        return Err("calibration completed no inferences — the pipeline is wedged".to_string());
    }
    let offered_rps = capacity_rps * factor;
    println!(
        "calibrated pipeline capacity ≈ {capacity_rps:.0} inf/s; driving open-loop at {offered_rps:.0} inf/s \
         ({factor:.1}x) for {seconds:.1}s — 30% Interactive (SLO {slo_ms}ms) / 40% Batch / 30% BestEffort"
    );

    // Phase 3 — the soak pipeline. First a sequential warm-up: jobs 0..=7
    // calibrate every stage's ns-per-cycle estimate, job 8 wedges (stage
    // watchdog preempts on the wall clock), job 10 is killed (supervised
    // panic) — both heal via the stage spare, audited bit-exact.
    let pipe = Pipeline::start(faulted, model.clone(), weights.clone()).map_err(|e| format!("soak: start: {e}"))?;
    let warmup = 12u64;
    let warmup_cap = Duration::from_millis(wait_ms) * 120;
    for i in 0..warmup {
        let input = Tensor::random(shape.0, shape.1, shape.2, 0x3A7 + i);
        let golden = golden_of(&input);
        let ticket = pipe
            .submit_with_priority(input, None, Priority::Batch)
            .map_err(|e| format!("warm-up: submit {i}: {e}"))?;
        let mut waited = Duration::ZERO;
        let out = loop {
            match ticket.wait_timeout(Duration::from_millis(wait_ms)) {
                Err(ServeError::ReplyTimeout { waited: w }) => {
                    waited += w;
                    if waited >= warmup_cap {
                        return Err(format!("warm-up: inference {i} never resolved — a stage wedged silently"));
                    }
                }
                Ok(resp) => break resp,
                Err(e) => return Err(format!("warm-up: inference {i}: {e}")),
            }
        };
        if out.output != golden {
            return Err(format!("warm-up: inference {i} diverged from the golden run"));
        }
    }

    // Open-loop mixed-priority drive on the same (healed) pipeline. The
    // drive cycles a fixed pool of distinct inputs whose goldens are
    // precomputed once, so the bit-exact audit of every delivered reply
    // stays O(1) per reply at fast-tier request volumes.
    let pool: Vec<(Tensor, Tensor)> = (0..16u64)
        .map(|k| {
            let input = Tensor::random(shape.0, shape.1, shape.2, 0x000D_21FE_0000 + k);
            let golden = golden_of(&input);
            (input, golden)
        })
        .collect();
    let slo = Duration::from_millis(slo_ms);
    let start = Instant::now();
    let drive_end = start + Duration::from_secs_f64(seconds);
    let (pipe_ref, pool_ref) = (&pipe, &pool);
    let (recs, rejected) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut recs: Vec<(Priority, usize, Ticket)> = Vec::new();
                    let mut rejected = [0u64; 3];
                    let interval = Duration::from_secs_f64(clients as f64 / offered_rps);
                    let t0 = start + Duration::from_secs_f64(c as f64 / offered_rps);
                    let mut i: u32 = 0;
                    loop {
                        let due = t0 + interval * i;
                        if due >= drive_end {
                            break;
                        }
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        let g = i as usize * clients + c;
                        let class = match g % 10 {
                            0..=2 => Priority::Interactive,
                            3..=6 => Priority::Batch,
                            _ => Priority::BestEffort,
                        };
                        let deadline = (class == Priority::Interactive).then_some(slo);
                        let k = g % pool_ref.len();
                        let input = pool_ref[k].0.clone();
                        match pipe_ref.submit_with_priority(input, deadline, class) {
                            Ok(ticket) => recs.push((class, k, ticket)),
                            Err(ServeError::ShuttingDown) => break,
                            Err(_) => rejected[class.index()] += 1,
                        }
                        i += 1;
                    }
                    (recs, rejected)
                })
            })
            .collect();
        let mut all = Vec::new();
        let mut rej = [0u64; 3];
        for h in handles {
            let (r, rj) = h.join().expect("client thread");
            all.extend(r);
            for (total, part) in rej.iter_mut().zip(rj) {
                *total += part;
            }
        }
        (all, rej)
    });

    // Redeem every admitted ticket, auditing delivered outputs bit-exactly.
    let wait_cap = Duration::from_millis(wait_ms) * 120;
    let mut hung = 0u64;
    let mut wrong = 0u64;
    let mut admitted = [0u64; 3];
    let mut served = [0u64; 3];
    let mut interactive_in_slo = 0u64;
    for (class, k, ticket) in recs {
        admitted[class.index()] += 1;
        let mut waited = Duration::ZERO;
        let outcome = loop {
            match ticket.wait_timeout(Duration::from_millis(wait_ms)) {
                Err(ServeError::ReplyTimeout { waited: w }) => {
                    waited += w;
                    if waited >= wait_cap {
                        break None;
                    }
                }
                other => break Some(other),
            }
        };
        match outcome {
            None => hung += 1,
            Some(Ok(resp)) => {
                served[class.index()] += 1;
                if resp.output != pool[k].1 {
                    wrong += 1;
                }
                if class == Priority::Interactive && resp.latency <= slo {
                    interactive_in_slo += 1;
                }
            }
            // A typed shed after admission (deadline, brownout, …): the
            // ticket resolved; for Interactive it is an SLO miss.
            Some(Err(_)) => {}
        }
    }

    let stats = pipe.shutdown();
    println!("--- soak phase ---\n{stats}");
    let offered: u64 = admitted.iter().sum::<u64>() + rejected.iter().sum::<u64>();
    let attainment = if admitted[0] > 0 {
        interactive_in_slo as f64 / admitted[0] as f64
    } else {
        0.0
    };
    println!(
        "pipeline overload: offered {offered}, admitted I/B/E {}/{}/{}, rejected I/B/E {}/{}/{}; \
         interactive SLO {interactive_in_slo}/{} within {slo_ms}ms ({:.2}%)",
        admitted[0],
        admitted[1],
        admitted[2],
        rejected[0],
        rejected[1],
        rejected[2],
        admitted[0],
        attainment * 100.0,
    );

    if hung > 0 {
        return Err(format!("{hung} ticket(s) never resolved — a reply was silently dropped"));
    }
    if wrong > 0 {
        return Err(format!(
            "{wrong} delivered reply(s) diverged from the golden reference under overload and faults"
        ));
    }
    if assert_slo {
        if stats.watchdog_preemptions == 0 {
            return Err("assert-slo: the stage watchdog never preempted the injected wedge".to_string());
        }
        if stats.panics_caught != 1 {
            return Err(format!(
                "assert-slo: the injected stage kill was not contained (panics caught: {})",
                stats.panics_caught
            ));
        }
        if stats.total_failovers() < 2 {
            return Err(format!(
                "assert-slo: the wedge and the kill must each fail over to a spare, got {:?}",
                stats.stage_failovers
            ));
        }
        if stats.brownout_escalations == 0 {
            return Err(
                "assert-slo: the drive never pushed the pipeline into brownout — raise --overload-factor or --seconds"
                    .to_string(),
            );
        }
        if stats.overload_sheds.iter().sum::<u64>() == 0 {
            return Err("assert-slo: the brownout ladder escalated but never shed anything".to_string());
        }
        if admitted[0] < 50 {
            return Err(format!(
                "assert-slo: only {} Interactive inference(s) admitted — too few for a meaningful \
                 99% assertion; raise --seconds",
                admitted[0]
            ));
        }
        if attainment < 0.99 {
            return Err(format!(
                "assert-slo: only {:.2}% of admitted Interactive inferences met the {slo_ms}ms SLO (need 99%)",
                attainment * 100.0
            ));
        }
    }
    println!(
        "chaos-bench --pipeline --overload PASS: {offered} offered at {factor:.1}x capacity, 0 hung, 0 wrong; \
         interactive SLO attainment {:.2}%; {} watchdog preemption(s), {} failover(s), brownout {} up / {} down",
        attainment * 100.0,
        stats.watchdog_preemptions,
        stats.total_failovers(),
        stats.brownout_escalations,
        stats.brownout_deescalations,
    );
    Ok(())
}

/// The `--gray` soak: inject temporal faults (wedges, stalls, slowdowns)
/// into the simulated machines and fail unless the liveness layer —
/// cycle budgets plus the calibrated batch watchdog — preempts every
/// stuck run, the preempted shards recover, every ticket resolves, and
/// every delivered reply stays bit-exact. With `--gray-rate 0` the soak
/// inverts into a false-positive check: the watchdog stays armed but must
/// never preempt a healthy batch.
fn run_gray(flags: &Flags) -> Result<(), String> {
    let spec = flags.machine()?;
    let workers: usize = parse_or(flags, "workers", 4)?;
    let clients: usize = parse_or(flags, "clients", 8)?;
    let seconds: f64 = parse_or(flags, "seconds", 4.0)?;
    // Like --fault-rate, --gray-rate is per (run, tile, cycle) point: a
    // layer spans thousands of points, so per-cycle 2e-5 means a few
    // percent of runs draw a temporal fault — most batches stay healthy
    // (calibrating the watchdog), a steady minority wedge/stall/crawl.
    let gray_rate: f64 = parse_or(flags, "gray-rate", 2e-5)?;
    let fault_seed: u64 = parse_or(flags, "fault-seed", 0x6EA417)?;
    let stall_cycles: u64 = parse_or(flags, "stall-cycles", 100_000)?;
    let slowdown_factor: u32 = parse_or(flags, "slowdown-factor", 16)?;
    let watchdog_slack: f64 = parse_or(flags, "watchdog-slack", 4.0)?;
    let cycle_budget: f64 = parse_or(flags, "cycle-budget", 8.0)?;
    let max_batch: usize = parse_or(flags, "max-batch", 4)?;
    let linger_us: u64 = parse_or(flags, "linger-us", 500)?;
    let alpha: f64 = parse_or(flags, "alpha", 0.25)?;
    let res: usize = parse_or(flags, "res", 32)?;
    let wait_ms: u64 = parse_or(flags, "wait-ms", 250)?;
    let assert_liveness = flags.has("assert-liveness");
    let tier = flags.tier()?;
    let which = flags.get("model").unwrap_or("mixed");
    if workers == 0 {
        return Err("--gray needs at least one worker".to_string());
    }
    if res == 0 || !res.is_multiple_of(32) {
        return Err(format!("--res must be a positive multiple of 32, got {res}"));
    }
    if !(0.0..=1.0).contains(&gray_rate) {
        return Err(format!("--gray-rate must be in [0, 1], got {gray_rate}"));
    }

    // Bernoulli bit flips stay off: every run that completes is then
    // bit-exact by construction, so the golden audit separates "slow but
    // correct" (fine) from "wrong" (always a failure) cleanly.
    let chaos = ChaosConfig {
        panic_on_first_batch: None,
        poison_value: None,
        fault_seed: Some(fault_seed),
        fault_rate: 0.0,
        gray_rate,
        gray_stall_cycles: stall_cycles,
        gray_slowdown_factor: slowdown_factor,
        ..ChaosConfig::default()
    };
    // Preemption walks the same restart ladder as a panic; a soak-length
    // run preempts many times, so the budget is raised accordingly — the
    // point here is recovery, not retirement.
    let config = ServeConfig::for_spec(&spec)
        .with_workers(workers)
        .with_max_batch(max_batch)
        .with_max_linger(Duration::from_micros(linger_us))
        .with_restart_budget(200)
        .with_restart_backoff(Duration::from_micros(100))
        .with_watchdog_slack(watchdog_slack)
        .with_cycle_budget(cycle_budget)
        .with_backend_tier(tier)
        .with_chaos(chaos);

    let model_tables = build_models(which, alpha, res)?;
    quiet_worker_panics();
    let server = Server::start(config);
    let (endpoints, goldens) = register_endpoints(&server, &model_tables)?;
    println!(
        "chaos-bench --gray [{tier}]: {} models, {} shard(s) of a {}x{} machine, {} clients for {seconds:.1}s; \
         gray rate {gray_rate} (seed {fault_seed:#x}), stall {stall_cycles} cycles, slowdown {slowdown_factor}x, \
         watchdog slack {watchdog_slack}x, cycle budget {cycle_budget}x",
        endpoints.len(),
        workers,
        spec.rows,
        spec.cols,
        clients,
    );

    let deadline = Instant::now() + Duration::from_secs_f64(seconds);
    let hung = AtomicU64::new(0);
    let answered = AtomicU64::new(0);
    let delivered = AtomicU64::new(0);
    let wrong = AtomicU64::new(0);
    let server_ref = &server;
    let endpoints_ref = &endpoints;
    let goldens_ref = &goldens;
    let (hung_ref, answered_ref, delivered_ref, wrong_ref) = (&hung, &answered, &delivered, &wrong);
    std::thread::scope(|scope| {
        for c in 0..clients {
            scope.spawn(move || {
                let mut r = 0usize;
                while Instant::now() < deadline {
                    let idx = r % endpoints_ref.len();
                    let id = endpoints_ref[idx];
                    let seed = (c * 1_000_000 + r) as u64;
                    r += 1;
                    let input = input_for(server_ref, id, seed);
                    let (layer, w) = &goldens_ref[idx];
                    let golden = reference::run_layer(layer, &input, w).expect("golden reference");
                    match server_ref.submit(id, input) {
                        Ok(ticket) => {
                            // A wedge can hold a batch for its whole watchdog
                            // deadline; the hang cap must dominate that, so a
                            // counted hang means liveness truly failed.
                            let mut waited = Duration::ZERO;
                            let cap = Duration::from_millis(wait_ms) * 120;
                            loop {
                                match ticket.wait_timeout(Duration::from_millis(wait_ms)) {
                                    Err(ServeError::ReplyTimeout { waited: w }) => {
                                        waited += w;
                                        if waited >= cap {
                                            hung_ref.fetch_add(1, Ordering::Relaxed);
                                            break;
                                        }
                                    }
                                    result => {
                                        answered_ref.fetch_add(1, Ordering::Relaxed);
                                        if let Ok(resp) = result {
                                            delivered_ref.fetch_add(1, Ordering::Relaxed);
                                            if resp.output != golden {
                                                wrong_ref.fetch_add(1, Ordering::Relaxed);
                                            }
                                        }
                                        break;
                                    }
                                }
                            }
                        }
                        Err(ServeError::QueueFull { .. } | ServeError::Degraded { .. }) => {
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Err(ServeError::ShuttingDown) => break,
                        Err(e) => panic!("submit failed: {e}"),
                    }
                }
            });
        }
    });

    let stats = server.shutdown();
    println!("{stats}");

    let hung = hung.load(Ordering::Relaxed);
    let answered = answered.load(Ordering::Relaxed);
    let delivered = delivered.load(Ordering::Relaxed);
    let wrong = wrong.load(Ordering::Relaxed);
    if hung > 0 {
        return Err(format!(
            "{hung} ticket(s) never resolved — a gray-failed batch escaped the liveness layer"
        ));
    }
    if stats.worker_exits.contains(&WorkerExit::Panicked) {
        return Err(format!("a worker thread escaped supervision: exits {:?}", stats.worker_exits));
    }
    if wrong > 0 {
        return Err(format!(
            "{wrong} delivered reply(s) diverged from the golden reference under temporal faults"
        ));
    }
    if answered == 0 {
        return Err("the soak resolved no tickets at all — too short a window?".to_string());
    }
    if assert_liveness {
        if gray_rate > 0.0 {
            if stats.watchdog_preemptions == 0 {
                return Err("assert-liveness: no batch was ever preempted — raise --gray-rate or --seconds".to_string());
            }
            if stats.restarts == 0 {
                return Err("assert-liveness: preempted shards never recovered via restart".to_string());
            }
            if delivered == 0 {
                return Err("assert-liveness: no reply was ever delivered under gray faults".to_string());
            }
        } else if stats.watchdog_preemptions > 0 {
            // The false-positive check: an armed watchdog over a healthy
            // fleet must never fire.
            return Err(format!(
                "assert-liveness: {} preemption(s) with no faults injected — the watchdog misfires on healthy batches",
                stats.watchdog_preemptions
            ));
        }
    }
    println!(
        "chaos-bench --gray PASS: {answered} tickets resolved ({delivered} delivered bit-exact), 0 hung, 0 wrong; \
         {} watchdog preemption(s), {} restart(s), {} retries, {} quarantined",
        stats.watchdog_preemptions, stats.restarts, stats.retries, stats.quarantined
    );
    Ok(())
}

/// The `--overload` soak: calibrate the server's closed-loop capacity, then
/// drive it open-loop past that rate with a mixed-priority workload while
/// every overload control (priority WFQ, CoDel admission, hedging, circuit
/// breakers) is enabled. With `--assert-slo` the run fails unless admitted
/// Interactive traffic holds its latency SLO and no reply is lost or wrong.
fn run_overload(flags: &Flags) -> Result<(), String> {
    let spec = flags.machine()?;
    let workers: usize = parse_or(flags, "workers", 4)?;
    let clients: usize = parse_or(flags, "clients", 8)?;
    let seconds: f64 = parse_or(flags, "seconds", 4.0)?;
    let calib_seconds: f64 = parse_or(flags, "calib-seconds", 1.0)?;
    let factor: f64 = parse_or(flags, "overload-factor", 2.0)?;
    let slo_ms: u64 = parse_or(flags, "slo-ms", 250)?;
    let delay_target_us: u64 = parse_or(flags, "delay-target-us", 2_000)?;
    let hedge_quantile: f64 = parse_or(flags, "hedge-quantile", 0.9)?;
    let max_batch: usize = parse_or(flags, "max-batch", 4)?;
    let linger_us: u64 = parse_or(flags, "linger-us", 500)?;
    let alpha: f64 = parse_or(flags, "alpha", 0.25)?;
    let res: usize = parse_or(flags, "res", 32)?;
    let wait_ms: u64 = parse_or(flags, "wait-ms", 250)?;
    let assert_slo = flags.has("assert-slo");
    let tier = flags.tier()?;
    let which = flags.get("model").unwrap_or("mixed");
    if workers == 0 || clients == 0 {
        return Err("--overload needs at least one worker and one client".to_string());
    }
    if res == 0 || !res.is_multiple_of(32) {
        return Err(format!("--res must be a positive multiple of 32, got {res}"));
    }
    if !(1.0..=100.0).contains(&factor) {
        return Err(format!("--overload-factor must be in [1, 100], got {factor}"));
    }

    let overload = OverloadConfig {
        delay_target: Some(Duration::from_micros(delay_target_us)),
        hedge_quantile,
        hedge_floor: Duration::from_micros(200),
        hedge_min_samples: 16,
        ..OverloadConfig::default()
    };
    let config = ServeConfig::for_spec(&spec)
        .with_workers(workers)
        .with_max_batch(max_batch)
        .with_max_linger(Duration::from_micros(linger_us))
        .with_backend_tier(tier)
        .with_overload(overload);

    let server = Server::start(config);
    let tables = build_models(which, alpha, res)?;
    let (endpoints, goldens) = register_endpoints(&server, &tables)?;
    println!(
        "chaos-bench --overload [{tier}]: {} models, {} shard(s) of a {}x{} machine; calibrating capacity \
         closed-loop with {clients} clients for {calib_seconds:.1}s",
        endpoints.len(),
        workers,
        spec.rows,
        spec.cols,
    );

    let server_ref = &server;
    let endpoints_ref = &endpoints;

    // Phase 1 — closed-loop calibration: each client keeps exactly one
    // request in flight, so completions/second is the service capacity.
    let calib_start = Instant::now();
    let calib_end = calib_start + Duration::from_secs_f64(calib_seconds);
    let calibrated = AtomicU64::new(0);
    let calibrated_ref = &calibrated;
    std::thread::scope(|scope| {
        for c in 0..clients {
            scope.spawn(move || {
                let mut r = 0usize;
                while Instant::now() < calib_end {
                    let id = endpoints_ref[(c + r * clients) % endpoints_ref.len()];
                    let input = input_for(server_ref, id, (c * 1_000_000 + r) as u64);
                    r += 1;
                    match server_ref.submit(id, input) {
                        Ok(ticket) => {
                            if ticket.wait_timeout(Duration::from_secs(10)).is_ok() {
                                calibrated_ref.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(_) => std::thread::sleep(Duration::from_micros(200)),
                    }
                }
            });
        }
    });
    let calibrated = calibrated.load(Ordering::Relaxed);
    let capacity_rps = calibrated as f64 / calib_start.elapsed().as_secs_f64();
    if calibrated == 0 || capacity_rps <= 0.0 {
        return Err("overload calibration completed no requests — the server is wedged".to_string());
    }
    let offered_rps = capacity_rps * factor;
    println!(
        "calibrated capacity ≈ {capacity_rps:.0} req/s; driving open-loop at {offered_rps:.0} req/s \
         ({factor:.1}x) for {seconds:.1}s — 30% Interactive (SLO {slo_ms}ms) / 40% Batch / 30% BestEffort"
    );

    // Phase 2 — open-loop drive at `factor` times capacity. Submissions
    // follow the wall-clock schedule regardless of replies; tickets are
    // resolved after the window (the server stamps each reply with its own
    // admission-to-reply latency, so late redemption skews nothing).
    let slo = Duration::from_millis(slo_ms);
    let start = Instant::now();
    let drive_end = start + Duration::from_secs_f64(seconds);
    let (recs, rejected) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut recs: Vec<(Priority, usize, u64, Ticket)> = Vec::new();
                    let mut rejected = [0u64; 3];
                    let interval = Duration::from_secs_f64(clients as f64 / offered_rps);
                    let t0 = start + Duration::from_secs_f64(c as f64 / offered_rps);
                    let mut i: u32 = 0;
                    loop {
                        let due = t0 + interval * i;
                        if due >= drive_end {
                            break;
                        }
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        let g = i as usize * clients + c;
                        let class = match g % 10 {
                            0..=2 => Priority::Interactive,
                            3..=6 => Priority::Batch,
                            _ => Priority::BestEffort,
                        };
                        let deadline = (class == Priority::Interactive).then_some(slo);
                        let ei = g % endpoints_ref.len();
                        let id = endpoints_ref[ei];
                        let seed = 0x5EED_0000_0000 + g as u64;
                        let input = input_for(server_ref, id, seed);
                        match server_ref.submit_with_priority(id, input, deadline, class) {
                            Ok(ticket) => recs.push((class, ei, seed, ticket)),
                            Err(ServeError::ShuttingDown) => break,
                            Err(_) => rejected[class.index()] += 1,
                        }
                        i += 1;
                    }
                    (recs, rejected)
                })
            })
            .collect();
        let mut all = Vec::new();
        let mut rej = [0u64; 3];
        for h in handles {
            let (r, rj) = h.join().expect("client thread");
            all.extend(r);
            for (total, part) in rej.iter_mut().zip(rj) {
                *total += part;
            }
        }
        (all, rej)
    });

    // Phase 3 — redeem every admitted ticket (the server keeps draining),
    // auditing each successful reply bit-exactly against the host golden
    // reference: a hedge winner must be indistinguishable from a solo run.
    let wait_cap = Duration::from_millis(wait_ms) * 40;
    let mut hung = 0u64;
    let mut wrong = 0u64;
    let mut admitted = [0u64; 3];
    let mut served = [0u64; 3];
    let mut interactive_in_slo = 0u64;
    for (class, ei, seed, ticket) in recs {
        admitted[class.index()] += 1;
        let mut waited = Duration::ZERO;
        let outcome = loop {
            match ticket.wait_timeout(Duration::from_millis(wait_ms)) {
                Err(ServeError::ReplyTimeout { waited: w }) => {
                    waited += w;
                    if waited >= wait_cap {
                        break None;
                    }
                }
                other => break Some(other),
            }
        };
        match outcome {
            None => hung += 1,
            Some(Ok(resp)) => {
                served[class.index()] += 1;
                let (layer, w) = &goldens[ei];
                let input = input_for(&server, endpoints[ei], seed);
                let golden = reference::run_layer(layer, &input, w).expect("golden reference");
                if resp.output != golden {
                    wrong += 1;
                    eprintln!("audit: request {} diverged from the golden reference", resp.request_id);
                }
                if class == Priority::Interactive && resp.latency <= slo {
                    interactive_in_slo += 1;
                }
            }
            // A typed shed (DeadlineExceeded, eviction, …) after admission:
            // the ticket resolved, it just carries an error. For Interactive
            // that is an SLO miss; for the others it is expected shedding.
            Some(Err(_)) => {}
        }
    }

    let stats = server.shutdown();
    println!("{stats}");

    let offered: u64 = admitted.iter().sum::<u64>() + rejected.iter().sum::<u64>();
    let shed = stats.overload_sheds.iter().sum::<u64>() + stats.rejected_queue_full + stats.degraded_sheds;
    println!(
        "overload: offered {offered}, admitted I/B/E {}/{}/{}, rejected at admission I/B/E {}/{}/{}",
        admitted[0], admitted[1], admitted[2], rejected[0], rejected[1], rejected[2],
    );
    let attainment = if admitted[0] > 0 {
        interactive_in_slo as f64 / admitted[0] as f64
    } else {
        0.0
    };
    println!(
        "overload: interactive SLO {interactive_in_slo}/{} within {slo_ms}ms ({:.2}%); served I/B/E \
         {}/{}/{}; {} brownout escalation(s), {} hedge(s) ({} won, {} lost), {} breaker open(s)",
        admitted[0],
        attainment * 100.0,
        served[0],
        served[1],
        served[2],
        stats.brownout_escalations,
        stats.hedges_dispatched,
        stats.hedge_wins,
        stats.hedge_losses,
        stats.breaker_opens,
    );

    if hung > 0 {
        return Err(format!("{hung} ticket(s) never resolved — a reply was silently dropped"));
    }
    if stats.worker_exits.contains(&WorkerExit::Panicked) {
        return Err(format!("a worker thread escaped supervision: exits {:?}", stats.worker_exits));
    }
    if wrong > 0 {
        return Err(format!(
            "{wrong} reply(s) diverged from the golden reference — hedged execution broke bit-exactness"
        ));
    }
    if assert_slo {
        if shed == 0 {
            return Err(
                "assert-slo: the drive never pushed the server into shedding — raise --overload-factor or --seconds".to_string(),
            );
        }
        if admitted[0] < 50 {
            return Err(format!(
                "assert-slo: only {} Interactive request(s) admitted — too few for a meaningful \
                 99% assertion; raise --seconds",
                admitted[0]
            ));
        }
        if attainment < 0.99 {
            return Err(format!(
                "assert-slo: only {:.2}% of admitted Interactive requests met the {slo_ms}ms SLO \
                 (need 99%)",
                attainment * 100.0
            ));
        }
    }
    println!(
        "chaos-bench --overload PASS: {offered} offered at {factor:.1}x capacity, 0 hung, 0 wrong; \
         interactive SLO attainment {:.2}%",
        attainment * 100.0
    );
    Ok(())
}

/// Per-driver tallies from the `--net` soak's redemption phase.
#[derive(Default)]
struct NetAgg {
    /// Requests that reached the serving core, by priority class.
    admitted: [u64; 3],
    /// Typed rejections before admission (backpressure, rate, quota, shed).
    rejected: [u64; 3],
    /// Successful replies, by priority class.
    served: [u64; 3],
    /// Interactive replies within the SLO.
    in_slo: u64,
    /// Admitted requests that resolved to a typed serve error.
    admitted_failed: u64,
    /// Submitted tags that never got any reply (the cardinal sin).
    unresolved: u64,
    /// Healthy connections that broke (io/wire/close) — must be zero.
    broken: u64,
    /// Healthy submits the socket refused — must be zero.
    submit_failed: u64,
    /// Request ids whose reply diverged from the golden reference.
    wrong: Vec<u64>,
    /// A few admitted-failure messages (each carries its request id).
    sample_failures: Vec<String>,
}

impl NetAgg {
    fn merge(&mut self, other: NetAgg) {
        for k in 0..3 {
            self.admitted[k] += other.admitted[k];
            self.rejected[k] += other.rejected[k];
            self.served[k] += other.served[k];
        }
        self.in_slo += other.in_slo;
        self.admitted_failed += other.admitted_failed;
        self.unresolved += other.unresolved;
        self.broken += other.broken;
        self.submit_failed += other.submit_failed;
        self.wrong.extend(other.wrong);
        if self.sample_failures.len() < 3 {
            self.sample_failures.extend(other.sample_failures);
            self.sample_failures.truncate(3);
        }
    }
}

/// A well-formed 17-byte request header declaring a 64 KiB payload that a
/// slow-loris connection then trickles at ~10 bytes/second: the decoder
/// stays mid-frame forever, which is exactly the window the read timeout
/// guards. (The checksum field is garbage, but it is never reached.)
const LORIS_PREFIX: [u8; 17] = [b'N', b'P', b'C', b'1', 1, 0xFF, 0xFF, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0];

/// The `--net` soak: the whole overload story, but through the socket
/// front-end. A zero-chaos control phase first proves wire replies are
/// bit-exact with in-process submits; then closed-loop calibration over
/// loopback finds the wire capacity; then an open-loop drive at
/// `--overload-factor`x runs alongside hostile populations — slow-loris
/// connections trickling half-frames, malformed-frame clients, chaos
/// clients corrupting/resetting mid-flight — while the healthy tenant's
/// every request must still resolve, bit-exactly, within the SLO.
#[allow(clippy::too_many_lines)]
fn run_net(flags: &Flags) -> Result<(), String> {
    let spec = flags.machine()?;
    let workers: usize = parse_or(flags, "workers", 4)?;
    let drivers: usize = parse_or(flags, "drivers", 8)?;
    let conns: usize = parse_or(flags, "conns", 560)?;
    let healthy_conns: usize = parse_or(flags, "healthy-conns", 64)?;
    let hostile: usize = parse_or(flags, "hostile", 8)?;
    let seconds: f64 = parse_or(flags, "seconds", 4.0)?;
    let calib_seconds: f64 = parse_or(flags, "calib-seconds", 1.0)?;
    let factor: f64 = parse_or(flags, "overload-factor", 2.0)?;
    let slo_ms: u64 = parse_or(flags, "slo-ms", 250)?;
    let delay_target_us: u64 = parse_or(flags, "delay-target-us", 2_000)?;
    let max_batch: usize = parse_or(flags, "max-batch", 4)?;
    let linger_us: u64 = parse_or(flags, "linger-us", 500)?;
    let alpha: f64 = parse_or(flags, "alpha", 0.25)?;
    let res: usize = parse_or(flags, "res", 32)?;
    let wait_ms: u64 = parse_or(flags, "wait-ms", 250)?;
    let chaos_seed: u64 = parse_or(flags, "chaos-seed", 0xC4A05)?;
    let assert_slo = flags.has("assert-slo");
    let tier = flags.tier()?;
    let which = flags.get("model").unwrap_or("v1");
    if workers == 0 || drivers == 0 || healthy_conns == 0 {
        return Err("--net needs at least one worker, one driver and one healthy connection".to_string());
    }
    if res == 0 || !res.is_multiple_of(32) {
        return Err(format!("--res must be a positive multiple of 32, got {res}"));
    }
    if !(1.0..=100.0).contains(&factor) {
        return Err(format!("--overload-factor must be in [1, 100], got {factor}"));
    }
    let per = healthy_conns.div_ceil(drivers);
    let healthy_conns = per * drivers;
    let loris = conns.saturating_sub(healthy_conns + hostile);

    let overload = OverloadConfig {
        delay_target: Some(Duration::from_micros(delay_target_us)),
        ..OverloadConfig::default()
    };
    let config = ServeConfig::for_spec(&spec)
        .with_workers(workers)
        .with_max_batch(max_batch)
        .with_max_linger(Duration::from_micros(linger_us))
        .with_backend_tier(tier)
        .with_overload(overload);
    let server = Arc::new(Server::start(config));
    let tables = build_models(which, alpha, res)?;
    let (endpoints, goldens) = register_endpoints(&server, &tables)?;
    let server_ref: &Server = &server;
    let endpoints_ref = &endpoints;

    let net_config = NetConfig::default()
        .with_max_conns(conns * 2)
        .with_read_timeout(Some(Duration::from_millis(500)))
        .with_idle_timeout(Some(Duration::from_secs(30)))
        .with_write_backlog_limit(1 << 20)
        .with_tick(Duration::from_millis(2))
        .with_tenant(TenantSpec::open("fleet", b"tok-fleet"))
        .with_tenant(TenantSpec::open("gremlin", b"tok-gremlin").with_rate(400.0, 64));
    let net = NetServer::start(Arc::clone(&server), net_config).map_err(|e| format!("starting front-end: {e}"))?;
    let addr = net.local_addr();
    println!(
        "chaos-bench --net [{tier}]: {} models behind {addr}, {} worker(s); control parity, then \
         {healthy_conns} healthy + {loris} slow-loris + {hostile} hostile connection(s)",
        endpoints.len(),
        workers,
    );

    // Phase 0 — zero-chaos control: the same inputs through the wire and
    // through in-process submit must produce bit-identical tensors.
    let mut control = NetClient::connect(addr, b"tok-fleet").map_err(|e| format!("control connect: {e}"))?;
    for (ei, &id) in endpoints.iter().enumerate().take(4) {
        let input = input_for(server_ref, id, 0xC0_0000 + ei as u64);
        let reply = control
            .call(
                id.index() as u32,
                &input,
                Priority::Interactive,
                None,
                Duration::from_secs(30),
            )
            .map_err(|e| format!("control call {ei}: {e}"))?;
        let resp = match reply.result {
            Ok(r) => r,
            Err((code, msg)) => return Err(format!("control request {} refused (code {code}): {msg}", reply.request_id)),
        };
        let local = server_ref
            .submit(id, input)
            .map_err(|e| format!("control in-process submit {ei}: {e}"))?
            .wait_timeout(Duration::from_secs(30))
            .map_err(|e| format!("control in-process wait {ei}: {e}"))?;
        if resp.tensor() != Some(local.output) {
            return Err(format!(
                "control: wire reply for request {} diverged from the in-process submit — \
                 the wire path is not bit-exact",
                reply.request_id
            ));
        }
    }
    let _ = control.bye();
    drop(control);
    println!(
        "control: wire replies bit-exact with in-process submits on {} endpoint(s)",
        endpoints.len().min(4)
    );

    // Phase 1 — closed-loop calibration over loopback: one in-flight
    // request per driver connection measures the wire-path capacity.
    let calib_start = Instant::now();
    let calib_end = calib_start + Duration::from_secs_f64(calib_seconds);
    let calibrated = AtomicU64::new(0);
    let calibrated_ref = &calibrated;
    std::thread::scope(|scope| {
        for c in 0..drivers {
            scope.spawn(move || {
                let Ok(mut client) = NetClient::connect(addr, b"tok-fleet") else {
                    return;
                };
                let mut r = 0usize;
                while Instant::now() < calib_end {
                    let ei = (c + r * drivers) % endpoints_ref.len();
                    let id = endpoints_ref[ei];
                    let input = input_for(server_ref, id, (c * 1_000_000 + r) as u64);
                    r += 1;
                    match client.call(id.index() as u32, &input, Priority::Batch, None, Duration::from_secs(10)) {
                        Ok(reply) if reply.result.is_ok() => {
                            calibrated_ref.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(_) => std::thread::sleep(Duration::from_micros(200)),
                        Err(_) => return,
                    }
                }
                let _ = client.bye();
            });
        }
    });
    let calibrated = calibrated.load(Ordering::Relaxed);
    let capacity_rps = calibrated as f64 / calib_start.elapsed().as_secs_f64();
    if calibrated == 0 || capacity_rps <= 0.0 {
        return Err("net calibration completed no requests — the front-end is wedged".to_string());
    }
    let offered_rps = capacity_rps * factor;
    println!(
        "calibrated wire capacity ≈ {capacity_rps:.0} req/s; driving open-loop at {offered_rps:.0} req/s \
         ({factor:.1}x) for {seconds:.1}s — 30% Interactive (SLO {slo_ms}ms) / 40% Batch / 30% BestEffort"
    );

    // Phase 2 — the soak: hostile populations come up, then the healthy
    // drivers run the open-loop schedule and redeem every tag.
    let slo = Duration::from_millis(slo_ms);
    let wait_cap = Duration::from_millis(wait_ms) * 40;
    let stop = AtomicBool::new(false);
    let peak_conns = AtomicU64::new(0);
    let stop_ref = &stop;
    let peak_ref = &peak_conns;
    let goldens_ref = &goldens;
    let net_ref = &net;
    let drive_start = Instant::now() + Duration::from_millis(500);
    let drive_end = drive_start + Duration::from_secs_f64(seconds);
    let agg = std::thread::scope(|scope| {
        // Slow-loris population: sockets that send a believable request
        // header and then trickle the payload one byte per 100ms, staying
        // mid-frame forever. The reactor must evict each within the read
        // timeout; the manager reconnects to hold the population steady.
        scope.spawn(move || {
            use std::io::Write;
            let mut socks: Vec<Option<std::net::TcpStream>> = (0..loris).map(|_| None).collect();
            while !stop_ref.load(Ordering::Relaxed) {
                for slot in &mut socks {
                    match slot {
                        None => {
                            if let Ok(mut s) = std::net::TcpStream::connect(addr) {
                                if s.write_all(&LORIS_PREFIX).is_ok() {
                                    *slot = Some(s);
                                }
                            }
                        }
                        Some(s) => {
                            if s.write_all(&[0u8]).is_err() {
                                *slot = None; // evicted — reconnect next pass
                            }
                        }
                    }
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        });
        // Concurrency monitor: samples the live connection count so the
        // soak can prove the population target was actually reached.
        scope.spawn(move || {
            while !stop_ref.load(Ordering::Relaxed) && Instant::now() < drive_end {
                let active = net_ref.stats().active_conns;
                peak_ref.fetch_max(active, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(25));
            }
        });
        // Hostile clients: a rotating cast of disconnectors (submit, then
        // hang up with work in flight), malformed-frame speakers, and
        // seeded chaos connections that corrupt/split/reset their writes.
        for h in 0..hostile {
            scope.spawn(move || {
                let chaos_cfg = NetChaosConfig {
                    seed: chaos_seed,
                    corrupt_rate: 0.15,
                    partial_rate: 0.10,
                    stall_read_rate: 0.05,
                    reset_rate: 0.15,
                    stall: Duration::from_millis(20),
                };
                let mut ord = h as u64 * 10_000;
                while !stop_ref.load(Ordering::Relaxed) && Instant::now() < drive_end {
                    let Ok(client) = NetClient::connect(addr, b"tok-gremlin") else {
                        std::thread::sleep(Duration::from_millis(50));
                        continue;
                    };
                    let mut client = client;
                    let ei = (ord as usize) % endpoints_ref.len();
                    let id = endpoints_ref[ei];
                    let input = input_for(server_ref, id, 0xBAD_0000 + ord);
                    match ord % 3 {
                        0 => {
                            // Mid-flight disconnect: admit work, vanish.
                            let _ = client.submit(id.index() as u32, &input, Priority::Interactive, None);
                            client.hangup();
                        }
                        1 => {
                            // Malformed: speak HTTP at a frame decoder.
                            let _ = client.send_raw(b"GET /v1/infer HTTP/1.1\r\nHost: npcgra\r\n\r\n");
                            let _ = client.recv_tag(0, Duration::from_millis(200));
                        }
                        _ => {
                            let mut client = client.with_chaos(NetChaos::for_conn(chaos_cfg, ord));
                            for k in 0..12u64 {
                                if stop_ref.load(Ordering::Relaxed) || Instant::now() >= drive_end {
                                    break;
                                }
                                let input = input_for(server_ref, id, 0xBAD_1000 + ord + k);
                                match client.call(id.index() as u32, &input, Priority::Batch, None, Duration::from_millis(500)) {
                                    Ok(_) | Err(ClientError::Timeout) => {}
                                    Err(_) => break, // reset/evicted: reconnect
                                }
                            }
                        }
                    }
                    ord += 1;
                    std::thread::sleep(Duration::from_millis(10));
                }
            });
        }
        // Healthy drivers: each owns `per` connections, paces the global
        // open-loop schedule across them, then redeems every tag and
        // audits every successful reply against the host golden.
        let handles: Vec<_> = (0..drivers)
            .map(|d| {
                scope.spawn(move || -> Result<NetAgg, String> {
                    let mut clients = Vec::with_capacity(per);
                    for k in 0..per {
                        clients.push(NetClient::connect(addr, b"tok-fleet").map_err(|e| format!("driver {d} conn {k}: {e}"))?);
                    }
                    let mut agg = NetAgg::default();
                    let mut recs: Vec<(usize, u64, Priority, usize, u64)> = Vec::new();
                    let interval = Duration::from_secs_f64(drivers as f64 / offered_rps);
                    let t0 = drive_start + Duration::from_secs_f64(d as f64 / offered_rps);
                    let mut i: u32 = 0;
                    loop {
                        let due = t0 + interval * i;
                        if due >= drive_end {
                            break;
                        }
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        let g = i as usize * drivers + d;
                        let class = match g % 10 {
                            0..=2 => Priority::Interactive,
                            3..=6 => Priority::Batch,
                            _ => Priority::BestEffort,
                        };
                        let deadline = (class == Priority::Interactive).then_some(slo);
                        let ei = g % endpoints_ref.len();
                        let seed = 0x6EED_0000_0000 + g as u64;
                        let input = input_for(server_ref, endpoints_ref[ei], seed);
                        let conn = g % per;
                        match clients[conn].submit(endpoints_ref[ei].index() as u32, &input, class, deadline) {
                            Ok(tag) => recs.push((conn, tag, class, ei, seed)),
                            Err(_) => agg.submit_failed += 1,
                        }
                        i += 1;
                    }
                    for (conn, tag, class, ei, seed) in recs {
                        match clients[conn].recv_tag(tag, wait_cap) {
                            Ok(reply) => match reply.result {
                                Ok(resp) => {
                                    agg.admitted[class.index()] += 1;
                                    agg.served[class.index()] += 1;
                                    let (layer, w) = &goldens_ref[ei];
                                    let input = input_for(server_ref, endpoints_ref[ei], seed);
                                    let golden = reference::run_layer(layer, &input, w).expect("golden reference");
                                    if resp.tensor() != Some(golden) {
                                        agg.wrong.push(reply.request_id);
                                    }
                                    if class == Priority::Interactive && Duration::from_micros(resp.latency_us) <= slo {
                                        agg.in_slo += 1;
                                    }
                                }
                                Err((code, message)) => {
                                    if code == wire_code::SERVE && reply.request_id > 0 {
                                        // Admitted, then typed failure
                                        // (deadline, shed): an SLO miss for
                                        // Interactive, expected elsewhere.
                                        agg.admitted[class.index()] += 1;
                                        agg.admitted_failed += 1;
                                        if agg.sample_failures.len() < 3 {
                                            agg.sample_failures.push(message);
                                        }
                                    } else {
                                        agg.rejected[class.index()] += 1;
                                    }
                                }
                            },
                            Err(ClientError::Timeout) => agg.unresolved += 1,
                            Err(_) => agg.broken += 1,
                        }
                    }
                    for c in &mut clients {
                        let _ = c.bye();
                    }
                    Ok(agg)
                })
            })
            .collect();
        let mut agg = NetAgg::default();
        let mut failure = None;
        for h in handles {
            match h.join().expect("driver thread") {
                Ok(part) => agg.merge(part),
                Err(e) => failure = Some(e),
            }
        }
        stop.store(true, Ordering::Relaxed);
        failure.map_or(Ok(agg), Err)
    })?;

    // Phase 3 — teardown and the gates.
    let net_stats = net.shutdown();
    let server = Arc::try_unwrap(server).unwrap_or_else(|_| panic!("net front-end still holds the server"));
    let stats = server.shutdown();
    println!("{net_stats}");
    println!("{stats}");

    let peak = peak_conns.load(Ordering::Relaxed);
    let offered: u64 = agg.admitted.iter().sum::<u64>() + agg.rejected.iter().sum::<u64>();
    let shed = stats.overload_sheds.iter().sum::<u64>()
        + stats.rejected_queue_full
        + stats.degraded_sheds
        + net_stats.rejected_backpressure;
    println!(
        "net: offered {offered} over {healthy_conns} healthy conn(s) (peak {peak} live), admitted I/B/E \
         {}/{}/{}, rejected at admission I/B/E {}/{}/{}, {} admitted-then-failed",
        agg.admitted[0], agg.admitted[1], agg.admitted[2], agg.rejected[0], agg.rejected[1], agg.rejected[2], agg.admitted_failed,
    );
    for msg in &agg.sample_failures {
        println!("net: sample admitted failure: {msg}");
    }
    let attainment = if agg.admitted[0] > 0 {
        agg.in_slo as f64 / agg.admitted[0] as f64
    } else {
        0.0
    };
    println!(
        "net: interactive SLO {}/{} within {slo_ms}ms ({:.2}%); served I/B/E {}/{}/{}; \
         {} slow-loris + {} idle evictions, {} malformed, {} mid-flight disconnects ({} tombstoned)",
        agg.in_slo,
        agg.admitted[0],
        attainment * 100.0,
        agg.served[0],
        agg.served[1],
        agg.served[2],
        net_stats.evicted_slow_loris,
        net_stats.evicted_idle,
        net_stats.rejected_malformed,
        net_stats.midflight_disconnects,
        net_stats.tombstoned_inflight,
    );

    if agg.submit_failed > 0 || agg.broken > 0 {
        return Err(format!(
            "{} healthy submit(s) failed and {} healthy connection(s) broke — the front-end must never \
             damage a well-behaved tenant's connection",
            agg.submit_failed, agg.broken
        ));
    }
    if agg.unresolved > 0 {
        return Err(format!(
            "{} healthy request(s) never resolved — a reply was silently dropped on the wire",
            agg.unresolved
        ));
    }
    if stats.worker_exits.contains(&WorkerExit::Panicked) {
        return Err(format!("a worker thread escaped supervision: exits {:?}", stats.worker_exits));
    }
    if !agg.wrong.is_empty() {
        let ids: Vec<String> = agg.wrong.iter().take(5).map(|id| format!("request {id}")).collect();
        return Err(format!(
            "{} reply(s) diverged from the golden reference ({}{}) — the wire path broke bit-exactness",
            agg.wrong.len(),
            ids.join(", "),
            if agg.wrong.len() > 5 { ", …" } else { "" },
        ));
    }
    if net_stats.active_conns != 0 {
        return Err(format!("{} connection(s) leaked past shutdown", net_stats.active_conns));
    }
    if assert_slo {
        let required_peak = (conns as u64 * 9) / 10;
        if peak < required_peak {
            return Err(format!(
                "assert-slo: peak concurrency {peak} never reached {required_peak} (90% of --conns {conns})"
            ));
        }
        if net_stats.evicted_slow_loris == 0 {
            return Err("assert-slo: no slow-loris eviction fired — the read timeout is not biting".to_string());
        }
        if net_stats.rejected_malformed == 0 {
            return Err("assert-slo: no malformed frame was rejected — the hostile population is broken".to_string());
        }
        if net_stats.midflight_disconnects == 0 {
            return Err("assert-slo: no mid-flight disconnect was observed — the tombstone path went untested".to_string());
        }
        if shed == 0 {
            return Err(
                "assert-slo: the drive never pushed the server into shedding — raise --overload-factor or --seconds".to_string(),
            );
        }
        if agg.admitted[0] < 50 {
            return Err(format!(
                "assert-slo: only {} Interactive request(s) admitted — too few for a meaningful 99% \
                 assertion; raise --seconds",
                agg.admitted[0]
            ));
        }
        if attainment < 0.99 {
            return Err(format!(
                "assert-slo: only {:.2}% of admitted Interactive requests met the {slo_ms}ms SLO (need 99%)",
                attainment * 100.0
            ));
        }
    }
    println!(
        "chaos-bench --net PASS: {offered} offered at {factor:.1}x wire capacity over peak {peak} \
         connection(s), 0 hung, 0 wrong, 0 broken healthy conns; interactive SLO attainment {:.2}%",
        attainment * 100.0
    );
    Ok(())
}

/// One keyed request's full plan: the wire endpoint, the deterministic
/// input, and the golden host output every delivery must match bit-exactly
/// no matter which life executes it or which life redelivers it.
struct KeyPlan {
    endpoint: u32,
    input: Tensor,
    golden: Tensor,
}

/// The client idempotency key for global key index `k` (never zero —
/// zero means "no key" on the wire).
fn idem_of(k: usize) -> u64 {
    0xD00D_0000_0000_0000 | (k as u64 + 1)
}

/// One driver's state, carried across server lives: its client (and with
/// it the resume set), which keys it owns, and the audit trail.
struct CrashDriver {
    client: Option<NetClient>,
    keys: Vec<usize>,
    /// Keys confirmed bit-exact against their golden at least once.
    confirmed: HashSet<usize>,
    /// Requests submitted but unreplied when their life ended, polled
    /// again after the next reconnect: (tag, key index).
    outstanding: Vec<(u64, usize)>,
    /// Deliveries for already-confirmed keys (redeliveries and shared
    /// in-flight outcomes), all of which also matched the golden.
    reconfirmed: u64,
    /// Keys whose delivered reply diverged from the golden.
    wrong: Vec<usize>,
}

/// Audit one delivered reply against its key's plan. A typed serve error
/// (shedding, draining) leaves the key unconfirmed for a later retry; a
/// successful reply must match the golden bit-exactly whether it is the
/// first delivery or a redelivery.
fn settle_key(
    confirmed: &mut HashSet<usize>,
    reconfirmed: &mut u64,
    wrong: &mut Vec<usize>,
    k: usize,
    reply: &WireReply,
    plans: &[KeyPlan],
) {
    let Ok(resp) = &reply.result else { return };
    match resp.tensor() {
        Some(out) if out == plans[k].golden => {
            if !confirmed.insert(k) {
                *reconfirmed += 1;
            }
        }
        _ => wrong.push(k),
    }
}

/// One driver's participation in one server life: (re)connect, drain the
/// previous life's unreplied tags, then cycle over its keys closed-loop.
/// In a crash life (`keep_retrying`) the pass repeats — confirmed keys
/// turn into redelivery retries — until the kill severs the connection;
/// in the final life it repeats until every key is confirmed. Returns the
/// number of requests the reconnect resumed.
fn drive_life(d: &mut CrashDriver, addr: SocketAddr, plans: &[KeyPlan], wait: Duration, keep_retrying: bool) -> u64 {
    let resumed = match &mut d.client {
        slot @ None => match NetClient::connect(addr, b"") {
            Ok(c) => {
                *slot = Some(c);
                0
            }
            Err(_) => return 0, // this life is already gone; the next retries
        },
        Some(c) => match c.reconnect(addr) {
            Ok(n) => n as u64,
            Err(_) => return 0,
        },
    };
    let client = d.client.as_mut().expect("connected above");
    // Drain the resume set first: replies for re-sent tags settle their
    // keys before any new traffic goes out.
    let pend: Vec<(u64, usize)> = std::mem::take(&mut d.outstanding);
    for (i, &(tag, k)) in pend.iter().enumerate() {
        match client.recv_tag(tag, wait) {
            Ok(reply) => settle_key(&mut d.confirmed, &mut d.reconfirmed, &mut d.wrong, k, &reply, plans),
            Err(ClientError::Timeout) => d.outstanding.push((tag, k)),
            Err(_) => {
                d.outstanding.extend(pend[i..].iter().copied());
                return resumed;
            }
        }
    }
    let mut rounds = 0usize;
    loop {
        // Pipelined, not closed-loop: the whole round goes out before any
        // reply is read, so the admission queue is deep when the kill
        // lands and recovery has admitted-unacked work to replay.
        let mut batch: Vec<(u64, usize)> = Vec::new();
        for &k in &d.keys {
            if !keep_retrying && d.confirmed.contains(&k) {
                continue;
            }
            let p = &plans[k];
            match client.submit_idem(p.endpoint, &p.input, Priority::Interactive, None, idem_of(k)) {
                Ok(tag) => batch.push((tag, k)),
                Err(_) => {
                    // The kill landed mid-burst; everything already sent
                    // is owed a reply and resumes next life.
                    d.outstanding.extend(batch);
                    return resumed;
                }
            }
        }
        for (i, &(tag, k)) in batch.iter().enumerate() {
            match client.recv_tag(tag, wait) {
                Ok(reply) => settle_key(&mut d.confirmed, &mut d.reconfirmed, &mut d.wrong, k, &reply, plans),
                Err(ClientError::Timeout) => d.outstanding.push((tag, k)),
                Err(_) => {
                    d.outstanding.extend(batch[i..].iter().copied());
                    return resumed;
                }
            }
        }
        rounds += 1;
        if keep_retrying {
            // Only the kill ends a crash life; the round bound is a
            // backstop against a controller that never fires, and the
            // pause keeps an all-redelivery round from hot-spinning.
            if rounds > 10_000 {
                return resumed;
            }
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        if d.keys.iter().all(|k| d.confirmed.contains(k)) || rounds > 50 {
            return resumed;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The crash-durability soak (`--crash`): exactly-once keyed serving
/// across `--lives` hard kills of the journaled core, audited bit-exactly.
#[allow(clippy::too_many_lines)]
fn run_crash(flags: &Flags) -> Result<(), String> {
    let spec = flags.machine()?;
    let workers: usize = parse_or(flags, "workers", 2)?;
    let drivers: usize = parse_or(flags, "drivers", 4)?;
    let keys_per_driver: usize = parse_or(flags, "keys-per-driver", 16)?;
    let lives: usize = parse_or(flags, "lives", 3)?;
    let max_batch: usize = parse_or(flags, "max-batch", 4)?;
    let linger_us: u64 = parse_or(flags, "linger-us", 500)?;
    let alpha: f64 = parse_or(flags, "alpha", 0.25)?;
    let res: usize = parse_or(flags, "res", 32)?;
    let wait_ms: u64 = parse_or(flags, "wait-ms", 250)?;
    let crash_seed: u64 = parse_or(flags, "crash-seed", 0xC8A5_4EED)?;
    let recovery_bound_ms: u64 = parse_or(flags, "recovery-bound-ms", 5_000)?;
    let assert_durability = flags.has("assert-durability");
    let tier = flags.tier()?;
    let which = flags.get("model").unwrap_or("v1");
    if res == 0 || !res.is_multiple_of(32) {
        return Err(format!("--res must be a positive multiple of 32, got {res}"));
    }
    if workers == 0 || drivers == 0 || keys_per_driver == 0 || lives == 0 {
        return Err("--crash needs nonzero --workers, --drivers, --keys-per-driver and --lives".to_string());
    }

    let model_tables = build_models(which, alpha, res)?;
    quiet_worker_panics();
    let config = ServeConfig::for_spec(&spec)
        .with_workers(workers)
        .with_max_batch(max_batch)
        .with_max_linger(Duration::from_micros(linger_us))
        .with_backend_tier(tier);
    let wait = Duration::from_millis(wait_ms);
    let total_keys = drivers * keys_per_driver;

    // Phase 0 — journal-off control: the same keyed wire traffic against a
    // plain server must execute every retry (keys are inert without a
    // journal), reply bit-exact, and move no journal counter.
    println!("chaos-bench --crash [{tier}]: phase 0 — journal-off control (inertness + parity)");
    {
        let server = Arc::new(Server::start(config));
        let (endpoints, goldens) = register_endpoints(&server, &model_tables)?;
        let net = NetServer::start(Arc::clone(&server), NetConfig::default()).map_err(|e| format!("control bind: {e}"))?;
        let mut client = NetClient::connect(net.local_addr(), b"").map_err(|e| format!("control connect: {e}"))?;
        let probes = endpoints.len().min(4);
        for k in 0..probes {
            let input = input_for(&server, endpoints[k], 0xC0_0000 + k as u64);
            let (layer, w) = &goldens[k];
            let golden = reference::run_layer(layer, &input, w).map_err(|e| format!("control golden: {e}"))?;
            for attempt in 0..2 {
                let tag = client
                    .submit_idem(
                        endpoints[k].index() as u32,
                        &input,
                        Priority::Interactive,
                        None,
                        0xCAFE + k as u64,
                    )
                    .map_err(|e| format!("control submit: {e}"))?;
                let reply = client
                    .recv_tag(tag, Duration::from_secs(60))
                    .map_err(|e| format!("control recv: {e}"))?;
                let out = reply
                    .result
                    .map_err(|(c, m)| format!("control reply failed (code {c}): {m}"))?
                    .tensor()
                    .ok_or("control reply shape/word mismatch")?;
                if out != golden {
                    return Err(format!("control: keyed probe {k} attempt {attempt} diverged from the golden"));
                }
            }
        }
        let _ = net.shutdown();
        let server = Arc::try_unwrap(server).unwrap_or_else(|_| panic!("front-end still holds the server"));
        let snap = server.shutdown();
        if snap.journal_appends != 0 || snap.journal_replayed != 0 || snap.dedup_hits != 0 || snap.duplicate_executions != 0 {
            return Err(format!(
                "control: journal counters moved on a journal-less server ({} appends, {} replayed, {} dedup, {} dups)",
                snap.journal_appends, snap.journal_replayed, snap.dedup_hits, snap.duplicate_executions
            ));
        }
        if snap.completed != probes as u64 * 2 {
            return Err(format!(
                "control: expected {} executions (every keyed retry runs without a journal), got {}",
                probes * 2,
                snap.completed
            ));
        }
        println!("  control: {probes} keyed probe(s) executed twice each, bit-exact, journal counters untouched");
    }

    // Phase 1 — crash cycles: `lives` hard kills over one journal file,
    // then a clean life that must finish every key.
    let jpath = match flags.get("journal") {
        Some(p) => PathBuf::from(p),
        None => std::env::temp_dir().join(format!("npcgra-crash-{}.journal", std::process::id())),
    };
    let _ = std::fs::remove_file(&jpath);
    println!(
        "chaos-bench --crash [{tier}]: phase 1 — {lives} hard kill(s) + 1 clean life, {drivers} driver(s) x \
         {keys_per_driver} key(s), {workers} worker shard(s), seed {crash_seed:#x}, journal {}",
        jpath.display()
    );

    let mut states: Vec<CrashDriver> = (0..drivers)
        .map(|d| CrashDriver {
            client: None,
            keys: (0..total_keys).filter(|k| k % drivers == d).collect(),
            confirmed: HashSet::new(),
            outstanding: Vec::new(),
            reconfirmed: 0,
            wrong: Vec::new(),
        })
        .collect();
    let mut plans: Vec<KeyPlan> = Vec::new();
    let mut total_replayed = 0u64;
    let mut total_dedup = 0u64;
    let mut total_dups = 0u64;
    let mut total_completed = 0u64;
    let mut resumed_total = 0u64;
    let mut slowest_recovery = Duration::ZERO;
    let mut probe_ok: Option<bool> = None;

    for life in 0..=lives {
        let crash_this_life = life < lives;
        // The first kill lands on a *stalled* core (zero workers): every
        // admit is fsync-durable but nothing can complete, so that crash
        // is guaranteed — on any tier, at any speed — to leave
        // admitted-unacked work for recovery to replay. Later kills run
        // real workers and land wherever the seed puts them.
        let stalled = crash_this_life && life == 0;
        let life_config = if stalled { config.with_workers(0) } else { config };
        let (server, report) = Server::start_with_journal(life_config, JournalConfig::new(&jpath).with_fsync_every(1))
            .map_err(|e| format!("life {life}: start: {e}"))?;
        if life == 0 && report.records != 0 {
            return Err(format!("life 0: fresh journal already held {} record(s)", report.records));
        }
        if report.elapsed > Duration::from_millis(recovery_bound_ms) {
            return Err(format!(
                "life {life}: recovery took {:.1}ms, over the {recovery_bound_ms}ms bound",
                report.elapsed.as_secs_f64() * 1e3
            ));
        }
        slowest_recovery = slowest_recovery.max(report.elapsed);
        let (_endpoints, goldens) = register_endpoints(&server, &model_tables)?;
        let replayed = server.replay_recovered().map_err(|e| format!("life {life}: replay: {e}"))?;
        if replayed != report.replayed {
            return Err(format!(
                "life {life}: recovery stashed {} admit(s) but {replayed} replayed",
                report.replayed
            ));
        }
        total_replayed += replayed as u64;
        if life > 0 {
            println!(
                "  life {life}: recovered {} journal record(s) in {:.1}ms, replayed {replayed} admitted-unacked",
                report.records,
                report.elapsed.as_secs_f64() * 1e3,
            );
        }
        if plans.is_empty() {
            // Built once from the first registration; every life registers
            // the same layers in the same order, so endpoints are stable.
            for k in 0..total_keys {
                let (layer, w) = &goldens[k % goldens.len()];
                let input = Tensor::random(layer.in_channels(), layer.in_h(), layer.in_w(), 0x1D_0000 + k as u64);
                let golden = reference::run_layer(layer, &input, w).map_err(|e| format!("golden for key {k}: {e}"))?;
                plans.push(KeyPlan {
                    endpoint: (k % goldens.len()) as u32,
                    input,
                    golden,
                });
            }
        }
        let confirmed_before: usize = states.iter().map(|d| d.confirmed.len()).sum();
        let remaining = total_keys - confirmed_before;
        let server = Arc::new(server);
        // Zero drain: the kill must be a guillotine. A graceful drain
        // would let the workers execute-and-ack the whole backlog before
        // the core is crashed, leaving recovery nothing to prove.
        let net = NetServer::start(Arc::clone(&server), NetConfig::default().with_drain_timeout(Duration::ZERO))
            .map_err(|e| format!("life {life}: bind: {e}"))?;
        let addr = net.local_addr();
        let mut net_slot = Some(net);
        let mut resumed_this_life = 0u64;
        let plans_ref = &plans;
        std::thread::scope(|scope| {
            let handles: Vec<_> = states
                .iter_mut()
                .map(|d| scope.spawn(move || drive_life(d, addr, plans_ref, wait, crash_this_life)))
                .collect();
            if crash_this_life {
                // Kill once this life has made progress — admissions on
                // the stalled life (nothing can complete there),
                // executions on the rest — plus a seeded dwell so the cut
                // lands at varied points mid-flight.
                let goal = if stalled {
                    (total_keys / 2).max(1) as u64
                } else {
                    (remaining / 3).max(1) as u64
                };
                let patience = Instant::now() + Duration::from_secs(20);
                while Instant::now() < patience {
                    let s = server.stats();
                    // Dedup redeliveries count as progress: a life whose
                    // journal already acked every key executes nothing, and
                    // waiting for completions that can never come would
                    // burn the whole patience window.
                    let progress = if stalled { s.submitted } else { s.completed + s.dedup_hits };
                    if progress >= goal {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                std::thread::sleep(Duration::from_millis(splitmix64(crash_seed ^ life as u64) % 30));
                if let Some(n) = net_slot.take() {
                    let _ = n.shutdown();
                }
            }
            resumed_this_life = handles.into_iter().map(|h| h.join().expect("driver thread")).sum();
            if !crash_this_life {
                // Post-completion retry: a fresh client re-submits a
                // finished key; the reply must come back bit-exact from the
                // dedup table, not from a fresh execution.
                let before = server.stats().dedup_hits;
                probe_ok = Some(match NetClient::connect(addr, b"") {
                    Ok(mut probe) => {
                        let p = &plans_ref[0];
                        let delivered = probe
                            .submit_idem(p.endpoint, &p.input, Priority::Interactive, None, idem_of(0))
                            .ok()
                            .and_then(|tag| probe.recv_tag(tag, Duration::from_secs(30)).ok())
                            .and_then(|r| r.result.ok())
                            .and_then(|resp| resp.tensor())
                            .is_some_and(|out| out == p.golden);
                        delivered && server.stats().dedup_hits > before
                    }
                    Err(_) => false,
                });
            }
        });
        resumed_total += resumed_this_life;
        if let Some(n) = net_slot.take() {
            let _ = n.shutdown();
        }
        let server = Arc::try_unwrap(server).unwrap_or_else(|_| panic!("front-end still holds the server"));
        let snap = if crash_this_life {
            server.hard_crash((splitmix64(crash_seed.wrapping_add(life as u64).wrapping_mul(0x9E37)) % 48) as usize)
        } else {
            server.shutdown()
        };
        total_completed += snap.completed;
        total_dedup += snap.dedup_hits;
        total_dups += snap.duplicate_executions;
        if snap.worker_exits.contains(&WorkerExit::Panicked) {
            return Err(format!("life {life}: a worker escaped supervision: {:?}", snap.worker_exits));
        }
        if snap.journal_errors > 0 {
            return Err(format!("life {life}: {} journal I/O error(s)", snap.journal_errors));
        }
        let confirmed_now: usize = states.iter().map(|d| d.confirmed.len()).sum();
        println!(
            "  life {life} ({}): {} executed, {} dedup redelivery(s), {} resumed tag(s); confirmed {confirmed_now}/{total_keys}",
            match (crash_this_life, stalled) {
                (true, true) => "killed stalled",
                (true, false) => "killed",
                (false, _) => "clean",
            },
            snap.completed,
            snap.dedup_hits,
            resumed_this_life,
        );
    }
    let _ = std::fs::remove_file(&jpath);

    // The audit: every key confirmed bit-exact, nothing lost, nothing
    // double-executed, every redelivery identical to the first delivery.
    let confirmed: usize = states.iter().map(|d| d.confirmed.len()).sum();
    let reconfirmed: u64 = states.iter().map(|d| d.reconfirmed).sum();
    let wrong: usize = states.iter().map(|d| d.wrong.len()).sum();
    println!(
        "crash audit: {confirmed}/{total_keys} keys confirmed, {reconfirmed} redelivery(s) re-matched, {wrong} wrong; \
         {total_completed} execution(s), {total_dedup} dedup hit(s), {total_dups} duplicate execution(s), \
         {total_replayed} replayed, {resumed_total} resumed, slowest recovery {:.1}ms",
        slowest_recovery.as_secs_f64() * 1e3
    );
    if wrong > 0 {
        let ids: Vec<String> = states
            .iter()
            .flat_map(|d| d.wrong.iter().take(3).map(|k| format!("key {k}")))
            .take(5)
            .collect();
        return Err(format!(
            "{wrong} delivered reply(s) diverged from the golden reference ({}) — durability without \
             bit-exactness is corruption",
            ids.join(", ")
        ));
    }
    if confirmed != total_keys {
        return Err(format!(
            "{} admitted key(s) never completed — a journaled request was lost across the crashes",
            total_keys - confirmed
        ));
    }
    if total_dups > 0 {
        return Err(format!(
            "{total_dups} duplicate execution(s) — a key's outcome was recorded twice (exactly-once violated)"
        ));
    }
    if assert_durability {
        if total_replayed == 0 {
            return Err(
                "assert-durability: no kill left admitted-unacked work to replay — the soak never \
                 exercised recovery; raise --keys-per-driver or --lives"
                    .to_string(),
            );
        }
        if resumed_total == 0 {
            return Err(
                "assert-durability: no reconnect resumed an unreplied request — the session-resume path went untested"
                    .to_string(),
            );
        }
        if total_dedup == 0 {
            return Err("assert-durability: no retry was deduplicated — the exactly-once machinery never engaged".to_string());
        }
        if probe_ok != Some(true) {
            return Err("assert-durability: the post-completion retry was not redelivered from the dedup table".to_string());
        }
    }
    println!(
        "chaos-bench --crash PASS: {total_keys} keys exactly-once across {lives} hard kill(s) — 0 lost, 0 duplicate, \
         0 wrong; {total_replayed} replayed at recovery, {total_dedup} retries deduplicated"
    );
    Ok(())
}

/// SplitMix64 — a tiny seeded generator for kill dwell and torn-tail
/// sizes (private copy; the serve crate's is crate-internal).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The MobileNet tables named by `--model`.
fn build_models(which: &str, alpha: f64, res: usize) -> Result<Vec<models::Model>, String> {
    match which {
        "v1" => Ok(vec![models::mobilenet_v1(alpha, res)]),
        "v2" => Ok(vec![models::mobilenet_v2(alpha, res)]),
        "mixed" => Ok(vec![models::mobilenet_v1(alpha, res), models::mobilenet_v2(alpha, res)]),
        other => Err(format!("--model must be v1|v2|mixed, got '{other}'")),
    }
}

/// Layer + weights backing one endpoint, kept aligned with the endpoint
/// ids so an audit can recompute any reply's golden host reference.
type Goldens = Vec<(ConvLayer, Tensor)>;

/// Register every DSC layer of each table as a serving endpoint, returning
/// the endpoint ids alongside the layer + weights needed to recompute each
/// reply's golden host reference.
fn register_endpoints(server: &Server, tables: &[models::Model]) -> Result<(Vec<ModelId>, Goldens), String> {
    let mut endpoints = Vec::new();
    let mut goldens = Vec::new();
    for (mi, model) in tables.iter().enumerate() {
        for layer in model.dsc_layers() {
            let named = layer.renamed(&format!("{}.{}", model.name(), layer.name()));
            let weights = named.random_weights(0xC0FFEE + mi as u64);
            let id = server
                .register(&format!("{}.{}", model.name(), layer.name()), named.clone(), weights.clone())
                .map_err(|e| format!("registering {}: {e}", layer.name()))?;
            endpoints.push(id);
            goldens.push((named, weights));
        }
    }
    Ok((endpoints, goldens))
}

/// The injected panic is supervised, but the default hook would still
/// print a scary backtrace for it; keep chaos quiet on worker threads.
fn quiet_worker_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let current = std::thread::current();
        if current.name().is_some_and(|n| n.starts_with("npcgra-serve-")) {
            return;
        }
        default_hook(info);
    }));
}

/// A deterministic random input matching the model's IFM shape.
fn input_for(server: &Server, id: ModelId, seed: u64) -> Tensor {
    let shape = server.model_shape(id).expect("registered model");
    Tensor::random(shape.0, shape.1, shape.2, seed)
}

fn parse_or<T: std::str::FromStr>(flags: &Flags, name: &str, default: T) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{name}: bad value '{v}'")),
    }
}
