//! `chaos-bench` — fault-injection soak test for the inference server.
//!
//! Registers the MobileNet DSC layers like `serve-bench`, then runs
//! closed-loop clients for a fixed wall-clock window while chaos is
//! injected: a worker panic on its first batch (`--panic-worker`) and a
//! deterministic Bernoulli hardware-fault plan (`--fault-seed` +
//! `--fault-rate`) flipping bits in the simulated machines. The command
//! *fails* unless the server survives: every ticket must resolve (no
//! hangs — clients poll with [`Ticket::wait_timeout`]), no worker thread
//! may end `panicked`, and an injected panic must show up as a supervised
//! restart in the final statistics.
//!
//! With `--assert-detection` the soak additionally audits the ABFT
//! integrity layer: every successful reply is compared bit-exactly against
//! the golden host reference, and the run fails unless ≥ 99 % of corrupted
//! executions were *detected* (tripped an output checksum instead of
//! replying silently wrong) and detected corruption was *healed* by retry
//! (some request that failed a checksum later completed bit-exact).
//! Shard canaries run every `--canary-every` batches in this mode.
//!
//! [`Ticket::wait_timeout`]: npcgra::serve::Ticket::wait_timeout

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use npcgra::nn::{models, reference, ConvLayer, Tensor};
use npcgra::serve::{ChaosConfig, ModelId, ServeConfig, ServeError, Server, WorkerExit};

use crate::args::Flags;

pub fn run(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let spec = flags.machine()?;
    let workers: usize = parse_or(&flags, "workers", 4)?;
    let clients: usize = parse_or(&flags, "clients", 8)?;
    let seconds: f64 = parse_or(&flags, "seconds", 5.0)?;
    let fault_rate: f64 = parse_or(&flags, "fault-rate", 1e-4)?;
    let fault_seed: u64 = parse_or(&flags, "fault-seed", 0xC6A05)?;
    let max_batch: usize = parse_or(&flags, "max-batch", 4)?;
    let linger_us: u64 = parse_or(&flags, "linger-us", 500)?;
    let alpha: f64 = parse_or(&flags, "alpha", 0.25)?;
    let res: usize = parse_or(&flags, "res", 32)?;
    let wait_ms: u64 = parse_or(&flags, "wait-ms", 250)?;
    let assert_detection = flags.has("assert-detection");
    let canary_every: u64 = parse_or(&flags, "canary-every", if assert_detection { 32 } else { 0 })?;
    let which = flags.get("model").unwrap_or("mixed");
    let panic_worker: Option<usize> = match flags.get("panic-worker") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| format!("--panic-worker: bad value '{v}'"))?),
    };
    if res == 0 || !res.is_multiple_of(32) {
        return Err(format!("--res must be a positive multiple of 32, got {res}"));
    }
    if workers == 0 {
        return Err("chaos-bench needs at least one worker".to_string());
    }

    let chaos = ChaosConfig {
        panic_on_first_batch: panic_worker,
        poison_value: None,
        fault_seed: (fault_rate > 0.0).then_some(fault_seed),
        fault_rate,
    };
    let config = ServeConfig::for_spec(&spec)
        .with_workers(workers)
        .with_max_batch(max_batch)
        .with_max_linger(Duration::from_micros(linger_us))
        .with_canary_interval(canary_every)
        .with_chaos(chaos);

    let mut model_tables = Vec::new();
    match which {
        "v1" => model_tables.push(models::mobilenet_v1(alpha, res)),
        "v2" => model_tables.push(models::mobilenet_v2(alpha, res)),
        "mixed" => {
            model_tables.push(models::mobilenet_v1(alpha, res));
            model_tables.push(models::mobilenet_v2(alpha, res));
        }
        other => return Err(format!("--model must be v1|v2|mixed, got '{other}'")),
    }

    // The injected panic is supervised, but the default hook would still
    // print a scary backtrace for it; keep chaos quiet on worker threads.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let current = std::thread::current();
        if current.name().is_some_and(|n| n.starts_with("npcgra-serve-")) {
            return;
        }
        default_hook(info);
    }));

    let server = Server::start(config);
    let mut endpoints: Vec<ModelId> = Vec::new();
    // Layer + weights per endpoint, kept aligned with `endpoints` so the
    // detection audit can recompute each reply's golden reference.
    let mut goldens: Vec<(ConvLayer, Tensor)> = Vec::new();
    for (mi, model) in model_tables.iter().enumerate() {
        for layer in model.dsc_layers() {
            let named = layer.renamed(&format!("{}.{}", model.name(), layer.name()));
            let weights = named.random_weights(0xC0FFEE + mi as u64);
            let id = server
                .register(&format!("{}.{}", model.name(), layer.name()), named.clone(), weights.clone())
                .map_err(|e| format!("registering {}: {e}", layer.name()))?;
            endpoints.push(id);
            goldens.push((named, weights));
        }
    }
    println!(
        "chaos-bench: {} models, {} shard(s) of a {}x{} machine, {} clients for {seconds:.1}s, \
         fault rate {fault_rate:e} (seed {fault_seed:#x}), panic worker {panic_worker:?}",
        endpoints.len(),
        workers,
        spec.rows,
        spec.cols,
        clients,
    );

    let deadline = Instant::now() + Duration::from_secs_f64(seconds);
    let hung = AtomicU64::new(0);
    let answered = AtomicU64::new(0);
    let wrong = AtomicU64::new(0);
    let quarantined_seen = AtomicU64::new(0);
    let server_ref = &server;
    let endpoints_ref = &endpoints;
    let goldens_ref = &goldens;
    let hung_ref = &hung;
    let answered_ref = &answered;
    let wrong_ref = &wrong;
    let quarantined_ref = &quarantined_seen;
    std::thread::scope(|scope| {
        for c in 0..clients {
            scope.spawn(move || {
                let mut r = 0usize;
                while Instant::now() < deadline {
                    let idx = r % endpoints_ref.len();
                    let id = endpoints_ref[idx];
                    let seed = (c * 1_000_000 + r) as u64;
                    r += 1;
                    let input = input_for(server_ref, id, seed);
                    // The detection audit needs the golden output; compute
                    // it before the input moves into the request.
                    let golden = assert_detection.then(|| {
                        let (layer, w) = &goldens_ref[idx];
                        reference::run_layer(layer, &input, w).expect("golden reference")
                    });
                    match server_ref.submit(id, input) {
                        Ok(ticket) => {
                            // Poll with a bounded wait so a stranded reply
                            // channel shows up as a hang count, not a wedge.
                            let mut waited = Duration::ZERO;
                            let cap = Duration::from_millis(wait_ms) * 40;
                            loop {
                                match ticket.wait_timeout(Duration::from_millis(wait_ms)) {
                                    Err(ServeError::ReplyTimeout { waited: w }) => {
                                        waited += w;
                                        if waited >= cap {
                                            hung_ref.fetch_add(1, Ordering::Relaxed);
                                            break;
                                        }
                                    }
                                    result => {
                                        answered_ref.fetch_add(1, Ordering::Relaxed);
                                        match result {
                                            Ok(resp) => {
                                                if golden.as_ref().is_some_and(|g| resp.output != *g) {
                                                    wrong_ref.fetch_add(1, Ordering::Relaxed);
                                                }
                                            }
                                            Err(ServeError::Quarantined { .. }) => {
                                                quarantined_ref.fetch_add(1, Ordering::Relaxed);
                                            }
                                            Err(_) => {}
                                        }
                                        break;
                                    }
                                }
                            }
                        }
                        Err(ServeError::QueueFull { .. } | ServeError::Degraded { .. }) => {
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Err(ServeError::ShuttingDown) => break,
                        Err(e) => panic!("submit failed: {e}"),
                    }
                }
            });
        }
    });

    let stats = server.shutdown();
    println!("{stats}");

    let hung = hung.load(Ordering::Relaxed);
    let answered = answered.load(Ordering::Relaxed);
    if hung > 0 {
        return Err(format!("{hung} ticket(s) never resolved — a reply was lost"));
    }
    if stats.worker_exits.contains(&WorkerExit::Panicked) {
        return Err(format!("a worker thread escaped supervision: exits {:?}", stats.worker_exits));
    }
    if panic_worker.is_some() && stats.restarts == 0 {
        return Err("injected panic never surfaced as a supervised restart".to_string());
    }
    if assert_detection {
        let wrong = wrong.load(Ordering::Relaxed);
        let detected = stats.integrity_failed;
        println!(
            "detection: {detected} checksum trips, {wrong} silently wrong replies, {} recovered, \
             {} quarantined, {} canary runs ({} failed)",
            stats.integrity_recovered,
            quarantined_seen.load(Ordering::Relaxed),
            stats.canary_runs,
            stats.canary_failed,
        );
        if detected == 0 {
            return Err(
                "assert-detection: the fault plan never tripped the integrity layer — raise --fault-rate or --seconds"
                    .to_string(),
            );
        }
        // The checksum identities are exact mod 2^16, so an undetected
        // corrupted reply means the flip's error coefficients cancelled in
        // every checksum — bounded below one percent of corruption events.
        let ratio = detected as f64 / (detected + wrong) as f64;
        if ratio < 0.99 {
            return Err(format!(
                "assert-detection: only {:.2}% of corrupted executions were detected \
                 ({wrong} silently wrong replies escaped the checksums)",
                ratio * 100.0
            ));
        }
        if stats.integrity_recovered == 0 {
            return Err("assert-detection: detected corruption was never healed by retry".to_string());
        }
    }
    println!(
        "chaos-bench PASS: {answered} tickets resolved, 0 hung; {} panic(s) caught, {} restart(s), \
         {} retries, {} quarantined",
        stats.panics_caught, stats.restarts, stats.retries, stats.quarantined
    );
    Ok(())
}

/// A deterministic random input matching the model's IFM shape.
fn input_for(server: &Server, id: ModelId, seed: u64) -> Tensor {
    let shape = server.model_shape(id).expect("registered model");
    Tensor::random(shape.0, shape.1, shape.2, seed)
}

fn parse_or<T: std::str::FromStr>(flags: &Flags, name: &str, default: T) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{name}: bad value '{v}'")),
    }
}
