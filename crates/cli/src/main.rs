//! `npcgra` — the NP-CGRA reproduction's command line.
//!
//! ```text
//! npcgra run-layer  --kind dw --channels 32 --size 112x112 --stride 1 [--machine 8x8] [--relu] [--mapping auto|matmul|batched]
//! npcgra time-model --model v1|v2|alexnet [--alpha 0.5] [--res 128] [--machine 8x8] [--batched]
//! npcgra trace      --kind dw --channels 2 --size 8x8 [--machine 2x2] [--cycles 40]
//! npcgra energy     --kind dw --channels 8 --size 24x24 [--mapping auto|matmul|batched]
//! npcgra disasm     --kind dw --channels 1 --size 8x8 [--machine 2x2] [--relu]
//! npcgra serve-bench [--workers 4] [--clients 8] [--requests 160] [--max-batch 4] [--model v1|v2|mixed] [--net] [--journal]
//! npcgra chaos-bench [--workers 4] [--clients 8] [--seconds 5] [--fault-rate 1e-4] [--panic-worker 0] [--assert-detection]
//! npcgra chaos-bench --gray [--gray-rate 0.02] [--watchdog-slack 4] [--cycle-budget 8] [--assert-liveness]
//! npcgra chaos-bench --overload [--overload-factor 2] [--slo-ms 250] [--assert-slo]
//! npcgra chaos-bench --pipeline [--stages 4] [--spares 1] [--checkpoint-every 1] [--assert-liveness]
//! npcgra chaos-bench --net [--conns 560] [--healthy-conns 64] [--hostile 8] [--assert-slo]
//! npcgra chaos-bench --crash [--lives 3] [--keys-per-driver 16] [--assert-durability]
//! npcgra serve-net   [--addr 127.0.0.1:0] [--model v1|v2|mixed] [--tenants name:token:rate:burst:quota,...] [--seconds 0]
//! ```

mod args;
mod cmd_chaos_bench;
mod cmd_disasm;
mod cmd_energy;
mod cmd_run_layer;
mod cmd_serve_bench;
mod cmd_serve_net;
mod cmd_time_model;
mod cmd_trace;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "run-layer" => cmd_run_layer::run(rest),
        "time-model" => cmd_time_model::run(rest),
        "trace" => cmd_trace::run(rest),
        "energy" => cmd_energy::run(rest),
        "disasm" => cmd_disasm::run(rest),
        "serve-bench" => cmd_serve_bench::run(rest),
        "serve-net" => cmd_serve_net::run(rest),
        "chaos-bench" => cmd_chaos_bench::run(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
npcgra — cycle-accurate NP-CGRA reproduction (DATE 2021)

commands:
  run-layer   run one layer functionally, check against the golden
              reference and print the performance report
  time-model  per-layer timing of MobileNet V1/V2 or AlexNet
  trace       dump a cycle-by-cycle execution trace of one block
  energy      first-order energy estimate of one layer
  disasm      disassemble a mapping's configuration memory (Fig. 3 view)
  serve-bench closed-loop load test of the batching inference server
  serve-net   run the socket front-end as a standalone loopback server
              (DESIGN §17 wire protocol; --tenants arms auth/rate/quota,
              --seconds bounds the run, 0 = serve until killed)
  chaos-bench fault-injection soak: panics, poison and hardware bit flips
              must all be survived (nonzero exit otherwise); with
              --assert-detection, silently corrupted outputs must also be
              caught by the ABFT checksums and healed by retry; with
              --gray, temporal faults (wedges, stalls, slowdowns) are
              injected instead and the batch watchdog + cycle budgets must
              preempt every stuck run (--assert-liveness fails the run
              unless all tickets resolve bit-exact, something was
              preempted, and the preempted shard recovered); with
              --overload, the server is instead driven open-loop past its
              calibrated capacity with mixed priorities (--assert-slo
              fails the run unless admitted Interactive traffic holds its
              latency SLO with no lost and no wrong replies); with
              --pipeline, the whole MobileNetV1 DSC chain is served as a
              stage pipeline while one stage is killed, one wedged and one
              handoff corrupted (--assert-liveness fails the run unless
              every inference completes bit-exact, healing replays only
              from the last checkpoint, and the kill and wedge each fail
              over to a stage spare); with --net, the server is fronted by
              the loopback socket reactor and driven at 2x its calibrated
              wire capacity over hundreds of connections while slow-loris,
              malformed-frame and mid-flight-disconnect populations attack
              it — a zero-chaos control phase first proves wire replies
              are bit-exact with in-process submits (--assert-slo fails
              the run unless every healthy request resolves bit-exact
              within the SLO, every attacker class was caught, and no
              connection leaks); with --crash, keyed traffic is driven
              through the socket front-end while the journaled serving
              core is hard-killed across several process lives — clients
              reconnect and resume unacknowledged keys, recovery replays
              the admission journal, and a journal-off control phase
              first proves the journal is inert when disabled
              (--assert-durability fails the run unless every key lands
              bit-exact exactly once, replay and resume both fired,
              recovery stays under --recovery-bound-ms, and a dedup
              probe redelivers a remembered reply without re-executing)

common flags:
  --machine RxC       array size (default 8x8, the Table 4 machine)
  --kind dw|pw        layer kind for run-layer/trace/energy
  --channels N        channels (dw) or in,out channels (pw: --channels 32,64)
  --size HxW          feature-map size
  --stride S          stride (dw only, default 1)
  --relu / --leaky N  fused activation
  --mapping auto|matmul|batched
  --model v1|v2|alexnet, --alpha A, --res R (time-model)
  --batched           use §5.4 channel batching where it helps (time-model)
  --cycles N          max trace lines (trace)
  --workers N, --clients N, --requests N, --max-batch N, --linger-us N,
  --deadline-ms N     serve-bench load-generator knobs
  --net, --net-conns N
                      serve-bench: also measure wire-path throughput over
                      N loopback connections (appends a \"net\" record)
  --journal           serve-bench: also measure admission-journal cost
                      (journal off vs batched vs per-record fsync) and
                      crash-recovery replay time (appends a \"journal\"
                      record)
  --seconds S, --fault-rate P, --fault-seed N, --panic-worker W,
  --wait-ms N         chaos-bench fault-injection knobs
  --assert-detection, --canary-every N
                      chaos-bench ABFT-integrity audit knobs
  --gray, --gray-rate P, --stall-cycles N, --slowdown-factor F,
  --watchdog-slack S, --cycle-budget B, --assert-liveness
                      chaos-bench gray-failure liveness soak knobs
  --overload, --overload-factor F, --calib-seconds S, --slo-ms N,
  --delay-target-us N, --hedge-quantile Q, --assert-slo
                      chaos-bench overload-control soak knobs
  --pipeline, --stages N, --spares N, --checkpoint-every N
                      chaos-bench whole-model pipeline failover soak knobs
  --net, --conns N, --healthy-conns N, --hostile N, --drivers N,
  --chaos-seed N      chaos-bench socket front-end soak knobs
  --crash, --lives N, --keys-per-driver N, --crash-seed N, --journal P,
  --recovery-bound-ms N, --assert-durability
                      chaos-bench crash-durability soak knobs
  --addr A, --tenants LIST, --max-conns N, --read-timeout-ms N,
  --write-timeout-ms N, --idle-timeout-ms N, --backlog-limit N,
  --seconds S         serve-net front-end knobs
";
