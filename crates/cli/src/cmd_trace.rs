//! `npcgra trace`: cycle-by-cycle execution dump of one block.

use npcgra::kernels::dwc_general::padded_ifm;
use npcgra::kernels::dwc_s1::DwcS1LayerMap;
use npcgra::kernels::pwc::PwcLayerMap;
use npcgra::{ConvKind, Machine, Tensor};

use crate::args::Flags;

pub fn run(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let spec = flags.machine()?;
    let layer = flags.layer()?;
    let max_cycles: usize = flags
        .get("cycles")
        .unwrap_or("64")
        .parse()
        .map_err(|_| "--cycles: bad number")?;

    let ifm = Tensor::random(layer.in_channels(), layer.in_h(), layer.in_w(), 1);
    let weights = layer.random_weights(2);

    let prog = match layer.kind() {
        ConvKind::Pointwise => {
            let map = PwcLayerMap::new(&layer, &spec).map_err(|e| e.to_string())?;
            map.materialize(0, &ifm, &weights)
        }
        ConvKind::Depthwise if layer.s() == 1 => {
            let map = DwcS1LayerMap::new(&layer, &spec).map_err(|e| e.to_string())?;
            let padded = padded_ifm(&layer, &ifm);
            map.materialize(0, &padded, &weights)
        }
        _ => {
            let map = npcgra::kernels::dwc_general::DwcGeneralLayerMap::new(&layer, &spec).map_err(|e| e.to_string())?;
            let padded = padded_ifm(&layer, &ifm);
            map.materialize(0, &padded, &weights)
        }
    };

    println!(
        "tracing block '{}' on {}x{} (tile latency {} cycles)",
        prog.label,
        spec.rows,
        spec.cols,
        prog.mapping.tile_latency()
    );
    let mut machine = Machine::new(&spec);
    let (result, trace) = machine.run_block_traced(&prog).map_err(|e| e.to_string())?;
    for line in trace.to_string().lines().take(max_cycles) {
        println!("{line}");
    }
    if trace.len() > max_cycles {
        println!("... ({} more cycles; raise --cycles to see them)", trace.len() - max_cycles);
    }
    println!(
        "block done: {} cycles, {} MACs, {} outputs",
        result.compute_cycles,
        result.mac_ops,
        result.ofm.len()
    );
    Ok(())
}
