//! Property tests for the modulo scheduler: every schedule it emits must be
//! legal (dependences, mesh reachability, modulo resources), for arbitrary
//! random DFGs.

use npcgra_baseline::{ccf, CcfModel, Dfg, ModuloScheduler, NodeClass};
use proptest::prelude::*;

/// A random DAG of arithmetic/memory nodes with forward edges and an
/// optional accumulator recurrence.
fn random_dfg() -> impl Strategy<Value = Dfg> {
    (
        2usize..12,
        proptest::collection::vec(any::<(u8, u8, bool)>(), 1..20),
        any::<bool>(),
    )
        .prop_map(|(n, raw_edges, recur)| {
            let mut g = Dfg::new();
            for i in 0..n {
                let class = if i % 5 == 3 { NodeClass::MemLoad } else { NodeClass::Arith };
                g.node(class, &format!("n{i}"));
            }
            for (a, b, _) in raw_edges {
                let (a, b) = (a as usize % n, b as usize % n);
                if a < b {
                    g.edge(a, b);
                }
            }
            if recur {
                g.edge_carried(n - 1, n - 1, 1);
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every schedule produced validates against the constraints it was
    /// produced under.
    #[test]
    fn schedules_are_legal(dfg in random_dfg(), rows in 1usize..5, cols in 1usize..5) {
        let sched = ModuloScheduler::new(rows, cols);
        if let Some(s) = sched.schedule(&dfg) {
            prop_assert!(s.validate(&dfg, &sched).is_ok(), "{:?}", s.validate(&dfg, &sched));
            prop_assert!(s.ii >= sched.res_mii(&dfg).max(dfg.rec_mii()));
            prop_assert!(s.occupancy(rows * cols) <= 1.0 + 1e-9);
        }
    }

    /// Schedules remain legal under the relaxed (register-file holding)
    /// model too. (Greedy scheduling is not monotone in constraint
    /// relaxation, so we do not assert an II ordering here — only that both
    /// schedulers emit valid schedules.)
    #[test]
    fn rf_holding_schedules_are_legal(dfg in random_dfg()) {
        let rf_hold = ModuloScheduler { hold_in_pe: false, ..ModuloScheduler::new(3, 3) };
        if let Some(s) = rf_hold.schedule(&dfg) {
            prop_assert!(s.validate(&dfg, &rf_hold).is_ok(), "{:?}", s.validate(&dfg, &rf_hold));
        }
    }

    /// CCF latency scales monotonically with MAC count.
    #[test]
    fn ccf_latency_monotone(m1 in 1_000u64..100_000, m2 in 100_000u64..1_000_000) {
        let model = CcfModel::table5();
        let body = ccf::ccf_mac_body(false);
        let a = model.compile_macs(&body, m1, 32);
        let b = model.compile_macs(&body, m2, 32);
        prop_assert!(a.cycles <= b.cycles);
    }
}
