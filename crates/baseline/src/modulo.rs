//! A mesh-aware iterative modulo scheduler for the baseline CGRA.
//!
//! Models the constraints a CCF-class compiler works under when software-
//! pipelining a loop onto an ADRES-like array:
//!
//! - one operation per PE per cycle; `N_r × N_c` PEs;
//! - addressed loads/stores only through the per-row load-store units
//!   (one access per row per cycle), with a multi-cycle access latency
//!   (`mem_latency`, default 3 — issue, SRAM access, and return);
//! - operands travel one mesh hop per cycle — an edge from a producer
//!   placed at `(pe_p, t_p)` to a consumer at `(pe_c, t_c)` is feasible
//!   only if the value, emerging `latency` cycles after issue, can reach
//!   the consumer in time; intermediate hops reserve *route slots* on the
//!   PEs along the way (shared between consumers of the same value);
//! - values that must wait occupy a PE slot per waiting cycle
//!   (`hold_in_pe = true`, the CCF/HyCUBE-style model with no free
//!   multi-cycle register residence) — together with the load latency this
//!   is the source of the "empty slots" the paper observed in CCF output.
//!
//! The scheduler searches II upward from `max(ResMII, RecMII)` and greedily
//! places nodes in topological order with a small time window per node.

use crate::dfg::{Dfg, NodeClass, NodeId};

/// A candidate placement: (time, pe, route reservations keyed by source).
type Candidate = (u64, usize, Vec<(usize, usize, NodeId)>);

/// One placed node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// PE index (`row * cols + col`).
    pub pe: usize,
    /// Start time in the flat (pre-modulo) schedule.
    pub time: u64,
}

/// A successful modulo schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Achieved initiation interval.
    pub ii: u64,
    /// Node placements, indexed by [`NodeId`].
    pub placements: Vec<Placement>,
    /// PE slots (out of `II × num_pes`) consumed by ops.
    pub op_slots: usize,
    /// PE slots consumed by routing/holding.
    pub route_slots: usize,
    /// Schedule length (prologue depth).
    pub makespan: u64,
}

impl Schedule {
    /// Fraction of the II window's PE slots doing anything.
    #[must_use]
    pub fn occupancy(&self, num_pes: usize) -> f64 {
        (self.op_slots + self.route_slots) as f64 / (self.ii as f64 * num_pes as f64)
    }

    /// Check the schedule's legality against the machine and the DFG:
    /// every dependence satisfied (with op latencies and loop-carried
    /// relaxation), no two ops sharing a modulo PE slot, and no LSU
    /// oversubscription. Returns the first violation found.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violated constraint.
    pub fn validate(&self, dfg: &Dfg, sched: &ModuloScheduler) -> Result<(), String> {
        let npes = sched.rows * sched.cols;
        // Dependences.
        for e in dfg.edges() {
            let p = self.placements[e.from];
            let c = self.placements[e.to];
            let lat = sched.latency(dfg.nodes()[e.from].class) as i64;
            let consume = c.time as i64 + self.ii as i64 * i64::from(e.dist);
            if e.from != e.to && consume < p.time as i64 + lat {
                return Err(format!(
                    "edge {}->{} consumed at {consume} before ready ({} + {lat})",
                    e.from, e.to, p.time
                ));
            }
            // Mesh reachability within the available slack.
            if e.from != e.to {
                let (ar, ac) = (p.pe / sched.cols, p.pe % sched.cols);
                let (br, bc) = (c.pe / sched.cols, c.pe % sched.cols);
                let d = (ar.abs_diff(br) + ac.abs_diff(bc)) as i64;
                let slack = consume - (p.time as i64 + lat - 1);
                if d > slack {
                    return Err(format!("edge {}->{} needs {d} hops but has {slack} cycles", e.from, e.to));
                }
            }
        }
        // Modulo resource constraints.
        let mut pe_used = vec![vec![false; npes]; self.ii as usize];
        let mut lsu_used = vec![vec![false; sched.rows]; self.ii as usize];
        for (v, p) in self.placements.iter().enumerate() {
            let slot = (p.time % self.ii) as usize;
            if pe_used[slot][p.pe] {
                return Err(format!("two ops share PE {} at modulo slot {slot}", p.pe));
            }
            pe_used[slot][p.pe] = true;
            if dfg.nodes()[v].class != NodeClass::Arith {
                let row = p.pe / sched.cols;
                if lsu_used[slot][row] {
                    return Err(format!("two memory ops share row-{row} LSU at slot {slot}"));
                }
                lsu_used[slot][row] = true;
            }
        }
        Ok(())
    }
}

/// A modulo-reservation slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Free,
    Op,
    /// Routing/holding the value produced by this node (sharable between
    /// edges of the same value).
    Route(NodeId),
}

/// The scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModuloScheduler {
    /// Array rows.
    pub rows: usize,
    /// Array columns.
    pub cols: usize,
    /// Whether waiting values occupy PE slots (CCF-style) instead of
    /// resting in register files.
    pub hold_in_pe: bool,
    /// Addressed load/store latency in cycles (result available
    /// `mem_latency` cycles after issue).
    pub mem_latency: u64,
    /// Maximum II to try, as a multiple of MII (then gives up).
    pub max_ii_factor: u64,
}

impl ModuloScheduler {
    /// A scheduler for an `rows × cols` baseline array with CCF-style value
    /// holding and 3-cycle addressed loads.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        ModuloScheduler {
            rows,
            cols,
            hold_in_pe: true,
            mem_latency: 3,
            max_ii_factor: 8,
        }
    }

    fn num_pes(&self) -> usize {
        self.rows * self.cols
    }

    fn latency(&self, class: NodeClass) -> u64 {
        match class {
            NodeClass::Arith => 1,
            NodeClass::MemLoad | NodeClass::MemStore => self.mem_latency,
        }
    }

    /// Resource-constrained minimum II.
    #[must_use]
    pub fn res_mii(&self, dfg: &Dfg) -> u64 {
        let pes = self.num_pes() as u64;
        let ops = dfg.len() as u64;
        let mem = dfg.mem_ops() as u64;
        (ops.div_ceil(pes)).max(mem.div_ceil(self.rows as u64)).max(1)
    }

    /// Schedule the loop body; `None` if no II up to the search bound works.
    #[must_use]
    pub fn schedule(&self, dfg: &Dfg) -> Option<Schedule> {
        let mii = self.res_mii(dfg).max(dfg.rec_mii());
        for ii in mii..=mii * self.max_ii_factor + 8 {
            if let Some(s) = self.try_ii(dfg, ii) {
                return Some(s);
            }
        }
        None
    }

    /// The route/hold slots one edge needs: the value emerges from the
    /// producer `lat` cycles after issue, may hold at the producer, then
    /// hops row-first toward the consumer, arriving exactly at the
    /// consumer's issue time.
    fn edge_route(
        &self,
        from: Placement,
        from_lat: u64,
        to_pe: usize,
        consume_t: u64,
        ii: u64,
    ) -> Option<Vec<(usize, usize, u64)>> {
        let manhattan = {
            let (ar, ac) = (from.pe / self.cols, from.pe % self.cols);
            let (br, bc) = (to_pe / self.cols, to_pe % self.cols);
            (ar.abs_diff(br) + ac.abs_diff(bc)) as u64
        };
        let emerge = from.time + from_lat - 1; // value exists at end of this cycle
        if consume_t <= emerge {
            return None;
        }
        let travel = consume_t - emerge;
        if manhattan > travel {
            return None;
        }
        let mut slots = Vec::new();
        let hold = if self.hold_in_pe { travel - manhattan } else { 0 };
        let mut step = 0u64;
        // Hold at the producer before departing.
        for _ in 0..hold {
            step += 1;
            slots.push((((emerge + step) % ii) as usize, from.pe, emerge + step));
        }
        // Row-first, then column hops; the final hop lands in the consumer's
        // own slot (no reservation needed for it).
        let (tr, tc) = (to_pe / self.cols, to_pe % self.cols);
        let mut cursor = from.pe;
        let mut hops: Vec<usize> = Vec::new();
        while cursor / self.cols != tr {
            cursor = if cursor / self.cols < tr {
                cursor + self.cols
            } else {
                cursor - self.cols
            };
            hops.push(cursor);
        }
        while cursor % self.cols != tc {
            cursor = if cursor % self.cols < tc { cursor + 1 } else { cursor - 1 };
            hops.push(cursor);
        }
        for h in hops.iter().take(hops.len().saturating_sub(1)) {
            step += 1;
            slots.push((((emerge + step) % ii) as usize, *h, emerge + step));
        }
        Some(slots)
    }

    fn try_ii(&self, dfg: &Dfg, ii: u64) -> Option<Schedule> {
        let npes = self.num_pes();
        let mut slots = vec![vec![Slot::Free; npes]; ii as usize];
        let mut lsu_busy = vec![vec![false; self.rows]; ii as usize];
        let mut placed: Vec<Option<Placement>> = vec![None; dfg.len()];
        let mut route_slots = 0usize;

        for &v in &dfg.topo_order() {
            let mut earliest = 0i64;
            for e in dfg.edges() {
                if e.to == v {
                    if let Some(p) = placed[e.from] {
                        let lat = self.latency(dfg.nodes()[e.from].class) as i64;
                        let ready = p.time as i64 + lat - (ii as i64) * i64::from(e.dist);
                        earliest = earliest.max(ready);
                    }
                }
            }
            let start = earliest.max(0) as u64;
            let mut chosen: Option<Candidate> = None;

            't: for t in start..start + 2 * ii + 4 {
                let slot = (t % ii) as usize;
                for pe in 0..npes {
                    if slots[slot][pe] != Slot::Free {
                        continue;
                    }
                    let is_mem = dfg.nodes()[v].class != NodeClass::Arith;
                    if is_mem && lsu_busy[slot][pe / self.cols] {
                        continue;
                    }
                    let mut reservations: Vec<(usize, usize, NodeId)> = Vec::new();
                    let mut ok = true;
                    for e in dfg.edges() {
                        if e.to != v {
                            continue;
                        }
                        let Some(p) = placed[e.from] else { continue };
                        let lat = self.latency(dfg.nodes()[e.from].class);
                        let consume_t = t + ii * u64::from(e.dist);
                        match self.edge_route(p, lat, pe, consume_t, ii) {
                            Some(route) => {
                                for (s, rpe, _) in route {
                                    reservations.push((s, rpe, e.from));
                                }
                            }
                            None => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if !ok {
                        continue;
                    }
                    // Reservations must not collide with ops or routes of
                    // *other* values (sharing with the same value is free),
                    // nor with the op slot being claimed.
                    let mut feasible = true;
                    for &(s, rpe, src) in &reservations {
                        if s == slot && rpe == pe {
                            feasible = false;
                            break;
                        }
                        match slots[s][rpe] {
                            Slot::Free => {}
                            Slot::Route(owner) if owner == src => {}
                            _ => {
                                feasible = false;
                                break;
                            }
                        }
                    }
                    if feasible {
                        chosen = Some((t, pe, reservations));
                        break 't;
                    }
                }
            }

            let (t, pe, reservations) = chosen?;
            let slot = (t % ii) as usize;
            slots[slot][pe] = Slot::Op;
            if dfg.nodes()[v].class != NodeClass::Arith {
                lsu_busy[slot][pe / self.cols] = true;
            }
            for (s, rpe, src) in reservations {
                if slots[s][rpe] == Slot::Free {
                    slots[s][rpe] = Slot::Route(src);
                    route_slots += 1;
                }
            }
            placed[v] = Some(Placement { pe, time: t });
        }

        let placements: Vec<Placement> = placed.into_iter().map(|p| p.expect("all nodes placed")).collect();
        let makespan = placements.iter().map(|p| p.time).max().unwrap_or(0) + 1;
        Some(Schedule {
            ii,
            placements,
            op_slots: dfg.len(),
            route_slots,
            makespan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::{Dfg, NodeClass};

    fn chain(n: usize) -> Dfg {
        let mut g = Dfg::new();
        let mut prev = None;
        for i in 0..n {
            let v = g.node(NodeClass::Arith, &format!("n{i}"));
            if let Some(p) = prev {
                g.edge(p, v);
            }
            prev = Some(v);
        }
        g
    }

    #[test]
    fn small_chain_achieves_mii() {
        let g = chain(4);
        let s = ModuloScheduler::new(4, 4).schedule(&g).unwrap();
        assert_eq!(s.ii, 1, "4-op chain fits a 16-PE array at II=1");
        assert_eq!(s.makespan, 4);
    }

    #[test]
    fn mem_ops_bound_by_lsus() {
        // 8 independent loads on a 2×2 array with 2 row LSUs: ResMII = 4.
        let mut g = Dfg::new();
        for i in 0..8 {
            g.node(NodeClass::MemLoad, &format!("ld{i}"));
        }
        let sched = ModuloScheduler::new(2, 2);
        assert_eq!(sched.res_mii(&g), 4);
        let s = sched.schedule(&g).unwrap();
        assert!(s.ii >= 4);
    }

    #[test]
    fn recurrence_bounds_ii() {
        // A 3-op recurrence at distance 1 forces II ≥ 3 even on a big array.
        let mut g = Dfg::new();
        let a = g.node(NodeClass::Arith, "a");
        let b = g.node(NodeClass::Arith, "b");
        let c = g.node(NodeClass::Arith, "c");
        g.edge(a, b);
        g.edge(b, c);
        g.edge_carried(c, a, 1);
        let s = ModuloScheduler::new(4, 4).schedule(&g).unwrap();
        assert!(s.ii >= 3, "ii {}", s.ii);
    }

    #[test]
    fn load_latency_creates_pressure() {
        // load → use chain: the consumer waits out the SRAM latency; with
        // hold-in-PE semantics the wait costs slots on the producer, which
        // at II = ResMII would collide with the producer's own op — the II
        // must grow.
        let mut g = Dfg::new();
        let a = g.node(NodeClass::Arith, "addr");
        let ld = g.node(NodeClass::MemLoad, "ld");
        g.edge(a, ld);
        // Three independent consumers of the loaded value: they cannot all
        // consume the cycle it arrives, so the value must be held.
        for i in 0..3 {
            let u = g.node(NodeClass::Arith, &format!("u{i}"));
            g.edge(ld, u);
        }
        let tight = ModuloScheduler {
            mem_latency: 2,
            ..ModuloScheduler::new(1, 2)
        };
        let s = tight.schedule(&g).unwrap();
        assert!(
            s.route_slots > 0 || s.ii > tight.res_mii(&g),
            "latency/fanout should cost slots or II (ii {}, routes {})",
            s.ii,
            s.route_slots
        );
    }

    #[test]
    fn fanout_shares_route_slots() {
        // One producer feeding many consumers: route/hold slots for the
        // same value are shared, so this schedules.
        let mut g = Dfg::new();
        let root = g.node(NodeClass::Arith, "root");
        for i in 0..12 {
            let v = g.node(NodeClass::Arith, &format!("n{i}"));
            g.edge(root, v);
        }
        let s = ModuloScheduler::new(4, 4).schedule(&g).unwrap();
        assert!(s.ii <= 8, "achieved ii {}", s.ii);
    }

    #[test]
    fn occupancy_accounts_routes() {
        let g = chain(3);
        let s = ModuloScheduler::new(4, 4).schedule(&g).unwrap();
        assert!(s.occupancy(16) >= 3.0 / 16.0);
    }

    #[test]
    fn rf_holding_relaxes_pressure() {
        // The same body schedules at a lower or equal II when values can
        // rest in register files instead of occupying PE slots.
        let mut g = Dfg::new();
        let a = g.node(NodeClass::Arith, "addr");
        let ld = g.node(NodeClass::MemLoad, "ld");
        g.edge(a, ld);
        let mut last = ld;
        for i in 0..3 {
            let v = g.node(NodeClass::Arith, &format!("u{i}"));
            g.edge(last, v);
            last = v;
        }
        let ccf = ModuloScheduler {
            mem_latency: 4,
            ..ModuloScheduler::new(1, 2)
        }
        .schedule(&g)
        .unwrap();
        let rf = ModuloScheduler {
            hold_in_pe: false,
            mem_latency: 4,
            ..ModuloScheduler::new(1, 2)
        }
        .schedule(&g)
        .unwrap();
        assert!(rf.ii <= ccf.ii);
    }
}
