//! Functional execution of modulo-scheduled loops.
//!
//! The scheduler proves a schedule is *legal*; this interpreter proves it
//! *computes*. Nodes carrying [`NodeOp`] semantics are executed for `n`
//! iterations in global time order — node `v` of iteration `i` fires at
//! `time(v) + i·II`, reading operand values from the iterations its edges
//! point at — so a dependence bug in either the schedule or the body shows
//! up as a wrong number, exactly like on hardware.

use std::collections::HashMap;

use crate::dfg::{Dfg, NodeId, NodeOp};
use crate::modulo::Schedule;

/// Executes a scheduled loop body against a word memory.
#[derive(Debug, Clone)]
pub struct ScheduleExecutor<'a> {
    dfg: &'a Dfg,
    schedule: &'a Schedule,
}

/// Errors raised during functional execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A node has no semantics attached.
    MissingOp(NodeId),
    /// An operand's producing iteration has not fired yet — a schedule
    /// timing bug.
    OperandNotReady {
        /// Consumer node.
        node: NodeId,
        /// Producer node.
        from: NodeId,
        /// Consumer iteration.
        iteration: u64,
    },
    /// Wrong operand count for the node's op.
    BadArity(NodeId),
    /// A load address fell outside the memory.
    BadAddress(i64),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::MissingOp(v) => write!(f, "node {v} has no dataflow semantics"),
            ExecError::OperandNotReady { node, from, iteration } => {
                write!(f, "node {node} iteration {iteration} consumed node {from} before it fired")
            }
            ExecError::BadArity(v) => write!(f, "node {v} has the wrong operand count"),
            ExecError::BadAddress(a) => write!(f, "load address {a} out of memory"),
        }
    }
}

impl std::error::Error for ExecError {}

impl<'a> ScheduleExecutor<'a> {
    /// Pair a semantically-annotated body with its schedule.
    #[must_use]
    pub fn new(dfg: &'a Dfg, schedule: &'a Schedule) -> Self {
        ScheduleExecutor { dfg, schedule }
    }

    /// Run `n` iterations against `memory`; returns the per-iteration value
    /// of `observe` (typically the accumulator).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on missing semantics, a schedule-order
    /// violation, or an out-of-range load.
    pub fn run(&self, n: u64, memory: &[i64], observe: NodeId) -> Result<Vec<i64>, ExecError> {
        let ii = self.schedule.ii;
        // Fire order: (global time, node, iteration).
        let mut events: Vec<(u64, NodeId, u64)> = Vec::with_capacity((self.dfg.len() as u64 * n) as usize);
        for (v, p) in self.schedule.placements.iter().enumerate() {
            for i in 0..n {
                events.push((p.time + i * ii, v, i));
            }
        }
        events.sort_unstable();

        let mut values: HashMap<(NodeId, u64), i64> = HashMap::new();
        let mut observed = vec![0i64; n as usize];

        for (_, v, i) in events {
            let op = self.dfg.nodes()[v].op.ok_or(ExecError::MissingOp(v))?;
            // Resolve operands from the iterations the edges reference.
            let mut args: Vec<i64> = Vec::new();
            for (from, dist) in self.dfg.operands(v) {
                let src_iter = i64::try_from(i).expect("iteration fits") - i64::from(dist);
                if src_iter < 0 {
                    // Before the loop: loop-carried values start at 0.
                    args.push(0);
                    continue;
                }
                let val = values
                    .get(&(from, src_iter as u64))
                    .copied()
                    .ok_or(ExecError::OperandNotReady {
                        node: v,
                        from,
                        iteration: i,
                    })?;
                args.push(val);
            }
            let prev_self = if i > 0 {
                values.get(&(v, i - 1)).copied().unwrap_or(0)
            } else {
                0
            };
            let result = match op {
                NodeOp::Induction { init, step } => init + step * i64::try_from(i).expect("iteration fits"),
                NodeOp::Const(c) => c,
                NodeOp::Add => args.iter().sum(),
                NodeOp::Mul => {
                    if args.len() < 2 {
                        return Err(ExecError::BadArity(v));
                    }
                    args.iter().product()
                }
                NodeOp::AddImm(imm) => args.first().ok_or(ExecError::BadArity(v))? + imm,
                NodeOp::MulImm(imm) => args.first().ok_or(ExecError::BadArity(v))? * imm,
                NodeOp::Load => {
                    let addr = *args.first().ok_or(ExecError::BadArity(v))?;
                    let idx = usize::try_from(addr).map_err(|_| ExecError::BadAddress(addr))?;
                    *memory.get(idx).ok_or(ExecError::BadAddress(addr))?
                }
                NodeOp::Acc => prev_self + args.iter().sum::<i64>(),
            };
            values.insert((v, i), result);
            if v == observe {
                observed[i as usize] = result;
            }
        }
        Ok(observed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ccf::ccf_mac_body_semantic;
    use crate::modulo::ModuloScheduler;

    #[test]
    fn scheduled_mac_loop_computes_the_dot_product() {
        // X at memory[0..n], W at memory[100..100+n] (strided by No = 3 as
        // the CCF address arithmetic does).
        let n: u64 = 16;
        let no = 3i64;
        let (dfg, acc) = ccf_mac_body_semantic(0, 100, no);
        let sched = ModuloScheduler::new(4, 4);
        let schedule = sched.schedule(&dfg).expect("schedulable");

        let mut memory = vec![0i64; 200];
        let mut expect = 0i64;
        for i in 0..n {
            let x = i as i64 * 3 - 7;
            let w = 2 - i as i64;
            memory[i as usize] = x;
            memory[(100 + no * i as i64) as usize] = w;
            expect += x * w;
        }

        let exec = ScheduleExecutor::new(&dfg, &schedule);
        let observed = exec.run(n, &memory, acc).expect("executes");
        assert_eq!(*observed.last().unwrap(), expect, "final accumulator");
        // Partial sums are monotone prefixes of the dot product.
        let mut run = 0i64;
        for i in 0..n as usize {
            run += memory[i] * memory[100 + (no as usize) * i];
            assert_eq!(observed[i], run, "iteration {i}");
        }
    }

    #[test]
    fn execution_works_at_any_achieved_ii() {
        // The result must be II-independent: compare the 4×4 machine with a
        // cramped 1×2 machine (much larger II).
        let (dfg, acc) = ccf_mac_body_semantic(0, 64, 1);
        let memory: Vec<i64> = (0..128).map(|i| (i % 13) - 6).collect();
        let big = ModuloScheduler::new(4, 4).schedule(&dfg).unwrap();
        let small = ModuloScheduler::new(2, 2).schedule(&dfg).unwrap();
        assert!(small.ii >= big.ii);
        let a = ScheduleExecutor::new(&dfg, &big).run(8, &memory, acc).unwrap();
        let b = ScheduleExecutor::new(&dfg, &small).run(8, &memory, acc).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn missing_semantics_is_reported() {
        let mut g = Dfg::new();
        let v = g.node(crate::dfg::NodeClass::Arith, "no-op");
        let s = ModuloScheduler::new(2, 2).schedule(&g).unwrap();
        let err = ScheduleExecutor::new(&g, &s).run(1, &[], v).unwrap_err();
        assert!(matches!(err, ExecError::MissingOp(0)));
    }

    #[test]
    fn bad_load_address_is_reported() {
        let mut g = Dfg::new();
        let a = g.node_op(crate::dfg::NodeClass::Arith, "addr", NodeOp::Const(99));
        let ld = g.node_op(crate::dfg::NodeClass::MemLoad, "ld", NodeOp::Load);
        g.edge(a, ld);
        let s = ModuloScheduler::new(2, 2).schedule(&g).unwrap();
        let err = ScheduleExecutor::new(&g, &s).run(1, &[0; 10], ld).unwrap_err();
        assert!(matches!(err, ExecError::BadAddress(99)));
    }
}
