//! The CCF-compiler baseline model (Table 5's "CCF" column).
//!
//! CCF compiles convolution loops for the baseline CGRA with *addressed*
//! load-store: every streamed operand costs explicit address arithmetic on
//! PEs. The paper inspected CCF's output and found **1 extra MUL and 3
//! extra ADDs per MAC** plus empty slots. We reproduce that pipeline by
//! constructing the loop-body DFG CCF sees and scheduling it with the
//! mesh-aware modulo scheduler:
//!
//! ```text
//! for i in 0..N_i:                    # pipelined reduction loop
//!     ind   = ind + 1                 # ADD (loop-carried)
//!     a_x   = base_x + ind            # ADD
//!     x     = load a_x                # LSU
//!     a_w0  = ind * N_o               # MUL
//!     a_w   = a_w0 + base_w           # ADD
//!     w     = load a_w                # LSU
//!     p     = x * w                   # MUL   (useful)
//!     acc   = acc + p                 # ADD   (useful, loop-carried)
//! ```
//!
//! Stride-2 DWC adds two more address ops (the `·S` scalings of the x/y
//! indices), which is why its CCF utilization is lower in Table 5.

use npcgra_nn::{ConvKind, ConvLayer};

use crate::dfg::{Dfg, NodeClass, NodeOp};
use crate::modulo::{ModuloScheduler, Schedule};

/// The per-MAC loop body CCF emits for a unit-stride conv reduction.
#[must_use]
pub fn ccf_mac_body(extra_stride_ops: bool) -> Dfg {
    let mut g = Dfg::new();
    let ind = g.node(NodeClass::Arith, "ind++");
    g.edge_carried(ind, ind, 1);
    let x_index = if extra_stride_ops {
        // Strided access: scale the column index and add the scaled row
        // term before forming the address.
        let sx = g.node(NodeClass::Arith, "sx=ind*S");
        g.edge(ind, sx);
        let sy = g.node(NodeClass::Arith, "row=sx+oy*S*W");
        g.edge(sx, sy);
        sy
    } else {
        ind
    };
    let a_x = g.node(NodeClass::Arith, "a_x=base+idx");
    g.edge(x_index, a_x);
    let ld_x = g.node(NodeClass::MemLoad, "x=load");
    g.edge(a_x, ld_x);
    let a_w0 = g.node(NodeClass::Arith, "a_w0=ind*No");
    g.edge(ind, a_w0);
    let a_w = g.node(NodeClass::Arith, "a_w=a_w0+base");
    g.edge(a_w0, a_w);
    let ld_w = g.node(NodeClass::MemLoad, "w=load");
    g.edge(a_w, ld_w);
    let mul = g.node(NodeClass::Arith, "p=x*w");
    g.edge(ld_x, mul);
    g.edge(ld_w, mul);
    let acc = g.node(NodeClass::Arith, "acc+=p");
    g.edge(mul, acc);
    g.edge_carried(acc, acc, 1);
    g
}

/// The unit-stride CCF MAC body *with dataflow semantics*, for functional
/// execution (see [`crate::exec`]): `acc += X[base_x + i] · W[base_w + i·no]`.
/// Returns the graph and the accumulator node to observe.
#[must_use]
pub fn ccf_mac_body_semantic(base_x: i64, base_w: i64, no: i64) -> (Dfg, crate::dfg::NodeId) {
    let mut g = Dfg::new();
    let ind = g.node_op(NodeClass::Arith, "ind++", NodeOp::Induction { init: 0, step: 1 });
    g.edge_carried(ind, ind, 1);
    let a_x = g.node_op(NodeClass::Arith, "a_x=base+ind", NodeOp::AddImm(base_x));
    g.edge(ind, a_x);
    let ld_x = g.node_op(NodeClass::MemLoad, "x=load", NodeOp::Load);
    g.edge(a_x, ld_x);
    let a_w0 = g.node_op(NodeClass::Arith, "a_w0=ind*No", NodeOp::MulImm(no));
    g.edge(ind, a_w0);
    let a_w = g.node_op(NodeClass::Arith, "a_w=a_w0+base", NodeOp::AddImm(base_w));
    g.edge(a_w0, a_w);
    let ld_w = g.node_op(NodeClass::MemLoad, "w=load", NodeOp::Load);
    g.edge(a_w, ld_w);
    let mul = g.node_op(NodeClass::Arith, "p=x*w", NodeOp::Mul);
    g.edge(ld_x, mul);
    g.edge(ld_w, mul);
    let acc = g.node_op(NodeClass::Arith, "acc+=p", NodeOp::Acc);
    g.edge(mul, acc);
    g.edge_carried(acc, acc, 1);
    (g, acc)
}

/// A compiled-layer result.
#[derive(Debug, Clone, PartialEq)]
pub struct CcfResult {
    /// Achieved initiation interval (cycles per MAC iteration).
    pub ii: u64,
    /// Total layer cycles (II × MACs + pipeline fill).
    pub cycles: u64,
    /// Seconds at the machine clock.
    pub seconds: f64,
    /// Useful-MAC utilization: `2·MACs / (PEs · cycles)` ops over capacity,
    /// matching the paper's util metric for the one-op-per-cycle baseline
    /// (a MAC is a MUL plus an ADD there).
    pub utilization: f64,
    /// Slot occupancy of the kernel window (ops + routes + holds).
    pub occupancy: f64,
    /// The schedule itself.
    pub schedule: Schedule,
}

/// The CCF-on-baseline-CGRA model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CcfModel {
    /// Array rows.
    pub rows: usize,
    /// Array columns.
    pub cols: usize,
    /// Clock frequency (Hz).
    pub clock_hz: f64,
}

impl CcfModel {
    /// The Table 5 baseline: a 4×4 array at 500 MHz.
    #[must_use]
    pub fn table5() -> Self {
        CcfModel {
            rows: 4,
            cols: 4,
            clock_hz: 500e6,
        }
    }

    /// Compile and time one layer. Supported kinds: pointwise and
    /// depthwise (CCF treats both as scalar MAC loops; stride > 1 adds
    /// address ops).
    ///
    /// The pipelined loop is the per-output reduction (`N_i` trips for PWC,
    /// `K²` for DWC), so every output pays the modulo schedule's
    /// fill/drain (`makespan`) on top of `II × trip` steady-state cycles —
    /// the "empty slots" the paper saw in CCF's output.
    ///
    /// # Panics
    ///
    /// Panics if the modulo scheduler cannot place the body (does not
    /// happen for the shipped bodies) or the layer is a standard conv
    /// (lower it to matmul first).
    #[must_use]
    pub fn compile_layer(&self, layer: &ConvLayer) -> CcfResult {
        assert_ne!(layer.kind(), ConvKind::Standard, "lower standard conv before the CCF model");
        let body = ccf_mac_body(layer.s() > 1);
        let trip = match layer.kind() {
            ConvKind::Pointwise => layer.in_channels() as u64,
            _ => (layer.k() * layer.k()) as u64,
        };
        self.compile_macs(&body, layer.macs(), trip)
    }

    /// Compile a MAC body and scale to `macs` iterations, pipelined in
    /// loop instances of `trip` iterations each.
    #[must_use]
    pub fn compile_macs(&self, body: &Dfg, macs: u64, trip: u64) -> CcfResult {
        let sched = ModuloScheduler::new(self.rows, self.cols);
        let schedule = sched.schedule(body).expect("CCF body schedulable");
        let pes = (self.rows * self.cols) as u64;
        let instances = macs.div_ceil(trip.max(1));
        let cycles = instances * (schedule.ii * trip + schedule.makespan);
        let seconds = cycles as f64 / self.clock_hz;
        let utilization = (2 * macs) as f64 / (pes as f64 * cycles as f64);
        let occupancy = schedule.occupancy(pes as usize);
        CcfResult {
            ii: schedule.ii,
            cycles,
            seconds,
            utilization,
            occupancy,
            schedule,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn body_has_paper_op_mix() {
        // 1 useful MUL + 1 useful ADD + 1 MUL + 3 ADDs of address math +
        // 2 loads = 8 nodes (unit stride).
        let g = ccf_mac_body(false);
        assert_eq!(g.len(), 8);
        assert_eq!(g.mem_ops(), 2);
        // Stride variant has two extra address ops.
        assert_eq!(ccf_mac_body(true).len(), 10);
    }

    #[test]
    fn pwc_layer_lands_in_the_paper_regime() {
        // Paper: 78.91 ms / 8.14 % util for MobileNet pw1 on the 4×4
        // baseline. The model must land in the single-digit-util,
        // tens-of-ms regime (the shape, not the exact number).
        let layer = ConvLayer::pointwise("pw1", 32, 64, 112, 112);
        let r = CcfModel::table5().compile_layer(&layer);
        let ms = r.seconds * 1e3;
        assert!((45.0..130.0).contains(&ms), "CCF PWC {ms} ms");
        assert!((0.04..0.14).contains(&r.utilization), "CCF util {}", r.utilization);
    }

    #[test]
    fn stride2_is_less_efficient() {
        let dw1 = ConvLayer::depthwise("dw1", 32, 112, 112, 3, 1, 1);
        let dw2 = ConvLayer::depthwise("dw2", 64, 112, 112, 3, 2, 1);
        let m = CcfModel::table5();
        let r1 = m.compile_layer(&dw1);
        let r2 = m.compile_layer(&dw2);
        assert!(
            r2.utilization <= r1.utilization,
            "stride-2 util {} vs stride-1 {}",
            r2.utilization,
            r1.utilization
        );
    }

    #[test]
    fn cycles_scale_linearly_with_macs() {
        let m = CcfModel::table5();
        let body = ccf_mac_body(false);
        let a = m.compile_macs(&body, 1_000, 10);
        let b = m.compile_macs(&body, 2_000, 10);
        assert_eq!(b.cycles, 2 * a.cycles);
    }

    #[test]
    fn occupancy_below_one_means_empty_slots() {
        // The paper observed empty slots in CCF output; the model keeps
        // some of the II window idle too.
        let r = CcfModel::table5().compile_layer(&ConvLayer::pointwise("pw", 32, 64, 112, 112));
        assert!(r.occupancy < 1.0);
        assert!(r.occupancy > 0.2, "occupancy {} suspiciously low", r.occupancy);
    }
}
