//! The theoretical minimum-latency analysis of Table 1 (§3.1).
//!
//! Layer latency is `max(compute, L1 transfer, DMA)`:
//!
//! - **compute** assumes 100 % PE utilization — two ops per MAC on machines
//!   without a single-cycle MAC, one otherwise;
//! - **L1 transfer** assumes every load-store unit streams one word per
//!   cycle; the *most-reuse* scenario reads each IFM element once, the
//!   *least-reuse* scenario fetches one operand per MAC (no spatial reuse);
//!   OFM write-back always flows through the same ports;
//! - **DMA** is the off-chip stream time at 12.5 GB/s (negligible for the
//!   DWC layers compared, as the paper notes).

use npcgra_nn::ConvLayer;

/// One architecture point in the Table 1 comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchPoint {
    /// Display name.
    pub name: String,
    /// Number of PEs.
    pub pes: u64,
    /// Clock frequency in Hz.
    pub clock_hz: f64,
    /// Simultaneous load-store units.
    pub lsus: u64,
    /// Word size in bytes (for DMA volume).
    pub word_bytes: u64,
    /// Whether a PE does a full MAC per cycle.
    pub single_cycle_mac: bool,
}

/// The baseline 4×4 CGRA of §3.1 (500 MHz, 4-byte words, 4 LSUs, MUL *or*
/// ADD per cycle).
#[must_use]
pub fn baseline_4x4() -> ArchPoint {
    ArchPoint {
        name: "CGRA baseline (4x4)".into(),
        pes: 16,
        clock_hz: 500e6,
        lsus: 4,
        word_bytes: 4,
        single_cycle_mac: false,
    }
}

/// The "CGRA enhanced" point: 8×8, 2-byte words, single-cycle MAC, one LSU
/// per row *or* column (16 total).
#[must_use]
pub fn enhanced_8x8() -> ArchPoint {
    ArchPoint {
        name: "CGRA enhanced (8x8)".into(),
        pes: 64,
        clock_hz: 500e6,
        lsus: 16,
        word_bytes: 2,
        single_cycle_mac: true,
    }
}

/// Eyeriss as the reference hard DPU: 168 PEs at 200 MHz, 32 LSUs assumed.
#[must_use]
pub fn eyeriss_168() -> ArchPoint {
    ArchPoint {
        name: "Eyeriss (168 PEs)".into(),
        pes: 168,
        clock_hz: 200e6,
        lsus: 32,
        word_bytes: 2,
        single_cycle_mac: true,
    }
}

/// IFM-reuse scenario for the L1 estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReuseScenario {
    /// One L1 read per MAC operand pair (no spatial reuse).
    Least,
    /// Each IFM element read from L1 exactly once.
    Most,
}

/// The minimum-latency breakdown for a set of layers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinLatency {
    /// Compute-bound time in seconds.
    pub compute_s: f64,
    /// L1-transfer-bound time in seconds.
    pub l1_s: f64,
    /// Off-chip DMA time in seconds.
    pub dma_s: f64,
}

impl MinLatency {
    /// The layer latency: the max of the three bounds.
    #[must_use]
    pub fn latency_s(&self) -> f64 {
        self.compute_s.max(self.l1_s).max(self.dma_s)
    }

    /// Milliseconds helper.
    #[must_use]
    pub fn latency_ms(&self) -> f64 {
        self.latency_s() * 1e3
    }
}

/// Compute the Table 1 bounds for `layers` on `arch` under `scenario`.
#[must_use]
pub fn min_latency(arch: &ArchPoint, layers: &[ConvLayer], scenario: ReuseScenario) -> MinLatency {
    let macs: u64 = layers.iter().map(ConvLayer::macs).sum();
    let ifm: u64 = layers.iter().map(ConvLayer::ifm_elems).sum();
    let ofm: u64 = layers.iter().map(ConvLayer::ofm_elems).sum();
    let weights: u64 = layers.iter().map(ConvLayer::weight_elems).sum();

    let ops_per_mac = if arch.single_cycle_mac { 1 } else { 2 };
    let compute_cycles = macs * ops_per_mac / arch.pes;
    // L1 traffic counts the *load* ports (the bottleneck resource); OFM
    // write-back flows on the store path, which never dominates for DWC
    // (outputs are K² times fewer than operand fetches).
    let reads = match scenario {
        ReuseScenario::Least => macs,
        ReuseScenario::Most => ifm,
    } + weights;
    let l1_cycles = reads / arch.lsus;
    let dma_bytes = (ifm + ofm + weights) * arch.word_bytes;

    MinLatency {
        compute_s: compute_cycles as f64 / arch.clock_hz,
        l1_s: l1_cycles as f64 / arch.clock_hz,
        dma_s: dma_bytes as f64 / 12.5e9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npcgra_nn::models::mobilenet_v2_table1_dwc_layers;

    fn layers() -> Vec<ConvLayer> {
        mobilenet_v2_table1_dwc_layers()
    }

    #[test]
    fn compute_ratio_baseline_vs_eyeriss_is_8x() {
        // Table 1: 1.68 ms vs 0.20 ms ≈ 8.4× — the ratio is exact in the
        // model (2 ops/MAC · Eyeriss PEs · Eyeriss clock / ...).
        let l = layers();
        let base = min_latency(&baseline_4x4(), &l, ReuseScenario::Most);
        let eye = min_latency(&eyeriss_168(), &l, ReuseScenario::Most);
        let ratio = base.compute_s / eye.compute_s;
        assert!((ratio - 8.4).abs() < 0.1, "compute ratio {ratio}");
    }

    #[test]
    fn enhanced_matches_eyeriss_compute() {
        let l = layers();
        let enh = min_latency(&enhanced_8x8(), &l, ReuseScenario::Most);
        let eye = min_latency(&eyeriss_168(), &l, ReuseScenario::Most);
        let ratio = enh.compute_s / eye.compute_s;
        assert!((0.9..1.1).contains(&ratio), "enhanced/Eyeriss compute {ratio}");
    }

    #[test]
    fn baseline_is_l1_bound_without_reuse() {
        // Table 1's 4.10 ms worst case: least reuse makes L1 the bottleneck.
        let l = layers();
        let worst = min_latency(&baseline_4x4(), &l, ReuseScenario::Least);
        assert!(worst.l1_s > worst.compute_s);
        assert!((worst.latency_ms() / (min_latency(&baseline_4x4(), &l, ReuseScenario::Most).latency_ms()) > 1.5));
    }

    #[test]
    fn enhanced_is_essentially_compute_bound_with_reuse() {
        // The §3.1 conclusion: doubling on-chip bandwidth (16 LSUs) makes
        // the 8×8 enhanced machine compute-bound at Eyeriss-class latency.
        // Our layer accounting leaves L1 within ~10 % of compute (the paper
        // has 0.19 vs 0.21 ms); assert near-parity rather than strict
        // ordering.
        let l = layers();
        let enh = min_latency(&enhanced_8x8(), &l, ReuseScenario::Most);
        assert!(
            enh.l1_s <= 1.15 * enh.compute_s,
            "compute {} vs l1 {}",
            enh.compute_s,
            enh.l1_s
        );
        // Halving the LSUs (back to one per row) makes it clearly L1-bound,
        // which is exactly why the crossbar/V-MEM extension exists.
        let mut half = enhanced_8x8();
        half.lsus = 8;
        let bound = min_latency(&half, &l, ReuseScenario::Most);
        assert!(bound.l1_s > 1.5 * bound.compute_s);
    }

    #[test]
    fn dma_stays_off_the_critical_path_for_the_baseline() {
        // The paper reports DMA time as "very small for all the cases";
        // under our fuller data accounting it stays below the on-chip
        // bounds for the baseline and within the same order of magnitude
        // everywhere (EXPERIMENTS.md discusses the gap).
        let l = layers();
        let base = min_latency(&baseline_4x4(), &l, ReuseScenario::Most);
        assert!(base.dma_s < base.compute_s.max(base.l1_s));
        for arch in [enhanced_8x8(), eyeriss_168()] {
            let m = min_latency(&arch, &l, ReuseScenario::Most);
            assert!(m.dma_s < 5.0 * m.compute_s.max(m.l1_s), "{}", arch.name);
        }
    }

    #[test]
    fn absolute_magnitudes_in_paper_band() {
        // Paper values (ms): baseline compute 1.68, enhanced 0.21,
        // Eyeriss 0.20. Our layer accounting yields the same ratios with a
        // ~1.3× absolute offset (documented in EXPERIMENTS.md); assert the
        // band rather than the point.
        let l = layers();
        let base = min_latency(&baseline_4x4(), &l, ReuseScenario::Most);
        assert!(
            (1.4..3.2).contains(&(base.compute_s * 1e3)),
            "baseline compute {}",
            base.compute_s * 1e3
        );
        let eye = min_latency(&eyeriss_168(), &l, ReuseScenario::Most);
        assert!(
            (0.17..0.40).contains(&(eye.compute_s * 1e3)),
            "eyeriss compute {}",
            eye.compute_s * 1e3
        );
    }
}
