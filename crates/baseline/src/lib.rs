//! Baseline comparators (§3.1 and §6.2).
//!
//! Two models live here:
//!
//! - [`dfg`] + [`modulo`] + [`ccf`]: a CCF-style compiler flow for the
//!   baseline ADRES-like CGRA. Convolution inner loops are lowered to
//!   dataflow graphs with *addressed* load-store — the paper observed that
//!   CCF emits 1 extra MUL and 3 extra ADDs per MAC purely for address
//!   computation — and software-pipelined by an iterative modulo scheduler
//!   that honours the mesh interconnect (operands travel one hop per cycle,
//!   consuming route slots) and the one-load-store-unit-per-row constraint.
//!   The resulting initiation interval gives the Table 5 "CCF" column's
//!   latency and utilization regime.
//! - [`theoretical`]: the minimum-latency analysis of Table 1 — compute
//!   time vs L1-transfer time for the baseline 4×4 CGRA, the "enhanced"
//!   8×8 CGRA, and an Eyeriss-class DPU, over the seven MobileNet-V2 DWC
//!   layers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ccf;
pub mod dfg;
pub mod exec;
pub mod modulo;
pub mod theoretical;

pub use ccf::{CcfModel, CcfResult};
pub use dfg::{Dfg, NodeClass, NodeId, NodeOp};
pub use exec::ScheduleExecutor;
pub use modulo::{ModuloScheduler, Schedule};
pub use theoretical::{baseline_4x4, enhanced_8x8, eyeriss_168, min_latency, ArchPoint, MinLatency, ReuseScenario};
