//! Dataflow graphs of pipelined loop bodies.
//!
//! One [`Dfg`] describes a single iteration of the innermost (pipelined)
//! loop: operation nodes and data edges, where an edge may be loop-carried
//! with a distance (`dist` iterations back). All operations take one cycle,
//! as on the baseline CGRA.

use std::fmt;

/// Node index.
pub type NodeId = usize;

/// What resource a node occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeClass {
    /// Plain ALU op (ADD/SUB/MUL/...), any PE.
    Arith,
    /// Addressed load issue — must run on a PE with a load-store unit.
    MemLoad,
    /// Addressed store issue — must run on a PE with a load-store unit.
    MemStore,
}

/// The dataflow semantics of a node, for functional execution of a
/// scheduled loop (operands arrive in edge-insertion order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeOp {
    /// `value = init + iteration · step` (a loop induction variable; its
    /// loop-carried self edge is structural).
    Induction {
        /// Initial value at iteration 0.
        init: i64,
        /// Per-iteration increment.
        step: i64,
    },
    /// A loop-invariant constant.
    Const(i64),
    /// Sum of the operands.
    Add,
    /// Product of the operands.
    Mul,
    /// Operand plus an immediate.
    AddImm(i64),
    /// Operand times an immediate.
    MulImm(i64),
    /// Memory load; the single operand is the address.
    Load,
    /// Accumulator: `value = previous_value + operand` (loop-carried self
    /// edge, starting from 0).
    Acc,
}

/// A node: class + label (for traces) + optional dataflow semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Resource class.
    pub class: NodeClass,
    /// Human-readable label.
    pub label: String,
    /// Dataflow semantics, when the body is meant to be executed
    /// functionally (see `crate::exec`).
    pub op: Option<NodeOp>,
}

/// An edge `from → to` with loop-carried distance `dist` (0 = same
/// iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Producer node.
    pub from: NodeId,
    /// Consumer node.
    pub to: NodeId,
    /// Iteration distance.
    pub dist: u32,
}

/// A loop-body dataflow graph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dfg {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
}

impl Dfg {
    /// An empty graph.
    #[must_use]
    pub fn new() -> Self {
        Dfg::default()
    }

    /// Add a node, returning its id.
    pub fn node(&mut self, class: NodeClass, label: &str) -> NodeId {
        self.nodes.push(Node {
            class,
            label: label.to_string(),
            op: None,
        });
        self.nodes.len() - 1
    }

    /// Add a node with dataflow semantics, returning its id.
    pub fn node_op(&mut self, class: NodeClass, label: &str, op: NodeOp) -> NodeId {
        self.nodes.push(Node {
            class,
            label: label.to_string(),
            op: Some(op),
        });
        self.nodes.len() - 1
    }

    /// Operand producers of `v`, in edge-insertion order, with their
    /// loop-carried distances.
    #[must_use]
    pub fn operands(&self, v: NodeId) -> Vec<(NodeId, u32)> {
        self.edges
            .iter()
            .filter(|e| e.to == v && e.from != v)
            .map(|e| (e.from, e.dist))
            .collect()
    }

    /// Add a same-iteration data edge.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn edge(&mut self, from: NodeId, to: NodeId) {
        self.edge_carried(from, to, 0);
    }

    /// Add a loop-carried edge with distance `dist`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn edge_carried(&mut self, from: NodeId, to: NodeId, dist: u32) {
        assert!(from < self.nodes.len() && to < self.nodes.len(), "edge endpoint out of range");
        self.edges.push(Edge { from, to, dist });
    }

    /// All nodes.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All edges.
    #[must_use]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Node count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of memory-class nodes.
    #[must_use]
    pub fn mem_ops(&self) -> usize {
        self.nodes.iter().filter(|n| n.class != NodeClass::Arith).count()
    }

    /// Topological order over same-iteration edges.
    ///
    /// # Panics
    ///
    /// Panics if the same-iteration subgraph has a cycle (a malformed loop
    /// body — recurrences must carry `dist ≥ 1`).
    #[must_use]
    pub fn topo_order(&self) -> Vec<NodeId> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            if e.dist == 0 {
                indeg[e.to] += 1;
            }
        }
        let mut stack: Vec<NodeId> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = stack.pop() {
            order.push(v);
            for e in &self.edges {
                if e.dist == 0 && e.from == v {
                    indeg[e.to] -= 1;
                    if indeg[e.to] == 0 {
                        stack.push(e.to);
                    }
                }
            }
        }
        assert_eq!(order.len(), n, "same-iteration dependence cycle in loop body");
        order
    }

    /// The recurrence-constrained minimum II: for every loop-carried cycle,
    /// `ceil(len / dist)`. Computed over simple cycles found by DFS —
    /// adequate for the small loop bodies compilers pipeline.
    #[must_use]
    pub fn rec_mii(&self) -> u64 {
        // Longest-path-over-distance bound via Bellman-Ford style iteration:
        // for II candidate check delay(e)=1, distance(e)=dist; RecMII is the
        // max over edges cycles of ceil(total_delay/total_distance). We use
        // the standard iterative tightening: binary search the smallest II
        // where no positive cycle exists in the constraint graph with
        // weights (1 - II·dist).
        let mut lo = 1u64;
        let mut hi = (self.nodes.len() as u64).max(1);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.has_positive_cycle(mid) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    fn has_positive_cycle(&self, ii: u64) -> bool {
        // Bellman-Ford on weights w(e) = 1 − II·dist; positive cycle ⇒ II
        // infeasible.
        let n = self.nodes.len();
        let mut dist = vec![0i64; n];
        for _ in 0..n {
            let mut changed = false;
            for e in &self.edges {
                let w = 1i64 - (ii as i64) * i64::from(e.dist);
                if dist[e.from] + w > dist[e.to] {
                    dist[e.to] = dist[e.from] + w;
                    changed = true;
                }
            }
            if !changed {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for Dfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "dfg: {} nodes, {} edges", self.nodes.len(), self.edges.len())?;
        for (i, n) in self.nodes.iter().enumerate() {
            writeln!(f, "  {i}: {:?} {}", n.class, n.label)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topo_order_respects_edges() {
        let mut g = Dfg::new();
        let a = g.node(NodeClass::Arith, "a");
        let b = g.node(NodeClass::Arith, "b");
        let c = g.node(NodeClass::Arith, "c");
        g.edge(a, b);
        g.edge(b, c);
        let order = g.topo_order();
        let pos = |x| order.iter().position(|&v| v == x).unwrap();
        assert!(pos(a) < pos(b) && pos(b) < pos(c));
    }

    #[test]
    #[should_panic(expected = "dependence cycle")]
    fn same_iteration_cycle_panics() {
        let mut g = Dfg::new();
        let a = g.node(NodeClass::Arith, "a");
        let b = g.node(NodeClass::Arith, "b");
        g.edge(a, b);
        g.edge(b, a);
        let _ = g.topo_order();
    }

    #[test]
    fn rec_mii_accumulator_chain() {
        // acc = acc + x: one-op cycle with distance 1 → RecMII 1.
        let mut g = Dfg::new();
        let add = g.node(NodeClass::Arith, "acc");
        g.edge_carried(add, add, 1);
        assert_eq!(g.rec_mii(), 1);
    }

    #[test]
    fn rec_mii_two_op_recurrence() {
        // Two dependent ops around a distance-1 recurrence → RecMII 2.
        let mut g = Dfg::new();
        let a = g.node(NodeClass::Arith, "a");
        let b = g.node(NodeClass::Arith, "b");
        g.edge(a, b);
        g.edge_carried(b, a, 1);
        assert_eq!(g.rec_mii(), 2);
    }

    #[test]
    fn rec_mii_longer_distance_relaxes() {
        // Two ops around distance 2 → RecMII 1.
        let mut g = Dfg::new();
        let a = g.node(NodeClass::Arith, "a");
        let b = g.node(NodeClass::Arith, "b");
        g.edge(a, b);
        g.edge_carried(b, a, 2);
        assert_eq!(g.rec_mii(), 1);
    }

    #[test]
    fn mem_op_counting() {
        let mut g = Dfg::new();
        g.node(NodeClass::MemLoad, "ld");
        g.node(NodeClass::MemStore, "st");
        g.node(NodeClass::Arith, "add");
        assert_eq!(g.mem_ops(), 2);
    }
}
