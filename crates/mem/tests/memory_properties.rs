//! Property tests for the memory subsystem.

use npcgra_arch::CgraSpec;
use npcgra_mem::dma::double_buffered_cycles_exact;
use npcgra_mem::{BankedMemory, DmaEngine, ExternalMemory};
use npcgra_nn::Tensor;
use proptest::prelude::*;

proptest! {
    /// Global-address composition and splitting are inverse for any
    /// in-range (bank, offset).
    #[test]
    fn global_addr_roundtrip(banks in 1usize..16, words_log2 in 1u32..12, bank_raw in 0usize..4096, offset_raw in 0usize..1_000_000) {
        let words = 1usize << words_log2;
        let bank = bank_raw % banks;
        let offset = offset_raw % words;
        let m = BankedMemory::new(banks, words, true);
        let addr = m.global_addr(bank, offset);
        prop_assert_eq!(m.split_addr(addr).unwrap(), (bank, offset));
    }

    /// Whatever is written free-form is read back exactly.
    #[test]
    fn write_read_roundtrip(words in prop::collection::vec(any::<i16>(), 1..64)) {
        let mut m = BankedMemory::new(4, 64, true);
        for (i, &w) in words.iter().enumerate() {
            let addr = m.global_addr(i % 4, i / 4);
            m.write_free(addr, w).unwrap();
        }
        for (i, &w) in words.iter().enumerate() {
            let addr = m.global_addr(i % 4, i / 4);
            prop_assert_eq!(m.read_free(addr).unwrap(), w);
        }
    }

    /// Within one cycle, N distinct banks accept N reads; any repeat bank
    /// conflicts.
    #[test]
    fn conflict_detection_is_exact(banks in 2usize..8, repeat in 0usize..8) {
        let mut m = BankedMemory::new(banks, 16, true);
        m.begin_cycle();
        for b in 0..banks {
            prop_assert!(m.read(b, m.global_addr(b, 0)).is_ok());
        }
        let again = repeat % banks;
        prop_assert!(m.read(0, m.global_addr(again, 1)).is_err());
    }

    /// DMA cycles are monotone and affine in the word count.
    #[test]
    fn dma_timing_affine(a in 1u64..100_000, b in 1u64..100_000) {
        let e = DmaEngine::new(&CgraSpec::table4());
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(e.transfer_cycles(lo) <= e.transfer_cycles(hi));
        // Latency appears exactly once per transfer (±1 for ceil rounding).
        let joint = e.transfer_cycles(lo + hi);
        prop_assert!(joint <= e.transfer_cycles(lo) + e.transfer_cycles(hi));
        prop_assert!(joint + 200 + 1 >= e.transfer_cycles(lo) + e.transfer_cycles(hi));
    }

    /// The double-buffer pipeline is bounded below by both stage sums and
    /// above by their total.
    #[test]
    fn double_buffer_bounds(blocks in prop::collection::vec((1u64..1000, 1u64..1000), 1..20)) {
        let total = double_buffered_cycles_exact(&blocks);
        let compute: u64 = blocks.iter().map(|b| b.0).sum();
        let dma: u64 = blocks.iter().map(|b| b.1).sum();
        prop_assert!(total >= compute.max(dma));
        prop_assert!(total <= compute + dma);
    }

    /// External-memory tensor images round-trip.
    #[test]
    fn xmem_tensor_roundtrip(c in 1usize..4, h in 1usize..6, w in 1usize..6, seed in 0u64..100) {
        let t = Tensor::random(c, h, w, seed);
        let mut xm = ExternalMemory::new();
        let r = xm.alloc_tensor(&t);
        prop_assert_eq!(xm.slice(r), t.as_slice());
        prop_assert_eq!(r.len, t.len());
    }
}
