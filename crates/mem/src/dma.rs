//! DMA timing model and traffic accounting.
//!
//! Table 4 fixes the off-chip interface at 12.5 GB/s with a 200-cycle
//! transfer latency. A transfer of `bytes` therefore occupies the DMA engine
//! for `200 + ceil(bytes / bytes_per_cycle)` CGRA cycles, where
//! `bytes_per_cycle = bandwidth / clock`. With the two buffering sets of
//! H-MEM/V-MEM (Table 4), DMA for block *n+1* overlaps compute on block *n*;
//! a block's effective cost is `max(compute, dma)` — the "layer latency =
//! max(compute, L1, DMA)" structure of Table 1.

use npcgra_arch::CgraSpec;

/// One recorded DMA transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaTransfer {
    /// Payload size in bytes.
    pub bytes: u64,
    /// Cycles the engine was occupied (latency + streaming).
    pub cycles: u64,
    /// Whether this moved data *into* local memory (load) or out (store).
    pub load: bool,
}

/// The DMA engine: computes transfer timing and accumulates traffic.
///
/// # Example
///
/// ```
/// use npcgra_arch::CgraSpec;
/// use npcgra_mem::DmaEngine;
///
/// let spec = CgraSpec::table4();
/// let mut dma = DmaEngine::new(&spec);
/// let t = dma.load(1000); // 1000 words = 2000 bytes at 16-bit
/// assert_eq!(t.cycles, 200 + 80); // 25 B/cycle at 12.5 GB/s / 500 MHz
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DmaEngine {
    word_bytes: usize,
    bytes_per_cycle: f64,
    latency: u64,
    transfers: Vec<DmaTransfer>,
}

impl DmaEngine {
    /// Build from a machine spec.
    #[must_use]
    pub fn new(spec: &CgraSpec) -> Self {
        DmaEngine {
            word_bytes: spec.word_bytes,
            bytes_per_cycle: spec.dram_bandwidth / spec.clock_hz,
            latency: spec.dma_latency_cycles,
            transfers: Vec::new(),
        }
    }

    /// Cycles for a transfer of `words` datapath words.
    #[must_use]
    pub fn transfer_cycles(&self, words: u64) -> u64 {
        let bytes = words * self.word_bytes as u64;
        self.latency + (bytes as f64 / self.bytes_per_cycle).ceil() as u64
    }

    /// Record an inbound transfer of `words` words; returns its timing.
    pub fn load(&mut self, words: u64) -> DmaTransfer {
        self.record(words, true)
    }

    /// Record an outbound transfer of `words` words; returns its timing.
    pub fn store(&mut self, words: u64) -> DmaTransfer {
        self.record(words, false)
    }

    fn record(&mut self, words: u64, load: bool) -> DmaTransfer {
        let t = DmaTransfer {
            bytes: words * self.word_bytes as u64,
            cycles: self.transfer_cycles(words),
            load,
        };
        self.transfers.push(t);
        t
    }

    /// Total bytes moved in both directions.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.transfers.iter().map(|t| t.bytes).sum()
    }

    /// Total engine-busy cycles.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.transfers.iter().map(|t| t.cycles).sum()
    }

    /// All recorded transfers.
    #[must_use]
    pub fn transfers(&self) -> &[DmaTransfer] {
        &self.transfers
    }

    /// Reset the traffic log (between layers).
    pub fn clear(&mut self) {
        self.transfers.clear();
    }
}

/// Double-buffered block pipeline timing. With the two buffer sets of
/// Table 4, block *i+1*'s DMA overlaps block *i*'s compute. Each block is a
/// `(compute_cycles, dma_cycles)` pair; block *i*'s compute starts when its
/// own DMA has landed *and* the previous block's compute has finished, and
/// the (sequential) DMA engine streams blocks back-to-back. The result is
/// the makespan of that two-stage pipeline.
#[must_use]
pub fn double_buffered_cycles_exact(blocks: &[(u64, u64)]) -> u64 {
    // Stage events: DMA engine and compute array, each sequential; block i's
    // compute starts when its DMA is done AND the previous compute is done.
    let mut dma_free = 0u64;
    let mut compute_free = 0u64;
    for &(compute, dma) in blocks {
        let dma_done = dma_free + dma;
        dma_free = dma_done;
        let start = dma_done.max(compute_free);
        compute_free = start + compute;
    }
    compute_free
}

/// Single-buffered (one memory set) block sequence: DMA and compute
/// serialize — the ablation counterpart of Table 4's two buffering sets.
#[must_use]
pub fn serialized_cycles(blocks: &[(u64, u64)]) -> u64 {
    blocks.iter().map(|&(compute, dma)| compute + dma).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> DmaEngine {
        DmaEngine::new(&CgraSpec::table4())
    }

    #[test]
    fn table4_bytes_per_cycle_is_25() {
        let e = engine();
        // 12.5 GB/s at 500 MHz = 25 B/cycle; 1000 words = 2000 B = 80 cycles.
        assert_eq!(e.transfer_cycles(1000), 280);
    }

    #[test]
    fn latency_dominates_small_transfers() {
        let e = engine();
        assert_eq!(e.transfer_cycles(1), 201);
    }

    #[test]
    fn traffic_accounting() {
        let mut e = engine();
        e.load(100);
        e.store(50);
        assert_eq!(e.total_bytes(), 300);
        assert_eq!(e.transfers().len(), 2);
        e.clear();
        assert_eq!(e.total_bytes(), 0);
    }

    #[test]
    fn exact_pipeline_compute_bound() {
        // DMA is fully hidden when compute dominates: total = dma0 + Σcompute.
        let blocks = [(100, 10), (100, 10), (100, 10)];
        assert_eq!(double_buffered_cycles_exact(&blocks), 10 + 300);
    }

    #[test]
    fn exact_pipeline_dma_bound() {
        // Compute hides inside DMA when DMA dominates: total = Σdma + compute_last.
        let blocks = [(10, 100), (10, 100), (10, 100)];
        assert_eq!(double_buffered_cycles_exact(&blocks), 300 + 10);
    }

    #[test]
    fn exact_pipeline_single_block() {
        assert_eq!(double_buffered_cycles_exact(&[(70, 30)]), 100);
    }

    #[test]
    fn exact_pipeline_empty() {
        assert_eq!(double_buffered_cycles_exact(&[]), 0);
    }

    #[test]
    fn double_buffering_never_loses_to_serialization() {
        let blocks = [(100, 40), (70, 90), (10, 10), (300, 5)];
        let db = double_buffered_cycles_exact(&blocks);
        let ser = serialized_cycles(&blocks);
        assert!(db <= ser);
        // And for balanced blocks it approaches half.
        let even = [(50u64, 50u64); 20];
        assert!(double_buffered_cycles_exact(&even) * 10 <= serialized_cycles(&even) * 6);
    }
}
