//! A single SRAM bank.

use npcgra_nn::Word;

/// One word-addressed SRAM bank.
///
/// # Example
///
/// ```
/// use npcgra_mem::SramBank;
///
/// let mut b = SramBank::new(64);
/// b.write(10, -5).unwrap();
/// assert_eq!(b.read(10), Some(-5));
/// assert_eq!(b.read(64), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SramBank {
    words: Vec<Word>,
}

impl SramBank {
    /// A zero-initialized bank of `words` entries.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero.
    #[must_use]
    pub fn new(words: usize) -> Self {
        assert!(words > 0, "bank capacity must be nonzero");
        SramBank { words: vec![0; words] }
    }

    /// Capacity in words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the bank holds no words (never true).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Number of address bits `N_a` needed to address this bank
    /// (`ceil(log2(len))`; zero for a single-word bank).
    #[must_use]
    pub fn addr_bits(&self) -> u32 {
        let n = self.words.len();
        if n <= 1 {
            0
        } else {
            usize::BITS - (n - 1).leading_zeros()
        }
    }

    /// Read the word at `addr`, or `None` if out of range.
    #[must_use]
    pub fn read(&self, addr: usize) -> Option<Word> {
        self.words.get(addr).copied()
    }

    /// Write `value` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns the capacity if `addr` is out of range.
    pub fn write(&mut self, addr: usize, value: Word) -> Result<(), usize> {
        match self.words.get_mut(addr) {
            Some(w) => {
                *w = value;
                Ok(())
            }
            None => Err(self.words.len()),
        }
    }

    /// Bulk-fill starting at `base` (DMA landing).
    ///
    /// # Errors
    ///
    /// Returns the capacity if the block does not fit.
    pub fn fill(&mut self, base: usize, data: &[Word]) -> Result<(), usize> {
        let end = base.checked_add(data.len()).ok_or(self.words.len())?;
        if end > self.words.len() {
            return Err(self.words.len());
        }
        self.words[base..end].copy_from_slice(data);
        Ok(())
    }

    /// Borrow the raw contents (test benches and DMA read-back).
    #[must_use]
    pub fn as_slice(&self) -> &[Word] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut b = SramBank::new(8);
        b.write(7, 123).unwrap();
        assert_eq!(b.read(7), Some(123));
    }

    #[test]
    fn out_of_range() {
        let mut b = SramBank::new(8);
        assert_eq!(b.read(8), None);
        assert_eq!(b.write(8, 0), Err(8));
    }

    #[test]
    fn fill_block() {
        let mut b = SramBank::new(8);
        b.fill(2, &[1, 2, 3]).unwrap();
        assert_eq!(b.as_slice(), &[0, 0, 1, 2, 3, 0, 0, 0]);
        assert!(b.fill(6, &[1, 2, 3]).is_err());
    }

    #[test]
    fn addr_bits() {
        assert_eq!(SramBank::new(1).addr_bits(), 0);
        assert_eq!(SramBank::new(2).addr_bits(), 1);
        assert_eq!(SramBank::new(1024).addr_bits(), 10);
        assert_eq!(SramBank::new(1025).addr_bits(), 11);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_panics() {
        let _ = SramBank::new(0);
    }
}
