//! Multi-banked local memory with crossbar and conflict checking.
//!
//! Global addresses follow the paper's convention throughout Algorithms 1–3:
//! `addr = (bank << N_a) | offset`, where `N_a` is the per-bank address
//! width. Every simulated cycle begins with [`BankedMemory::begin_cycle`];
//! reads and writes within a cycle are checked for the conflict-freedom the
//! paper proves for its layouts (one read and one write per bank per cycle;
//! a second access of the same kind is a [`MemError::BankConflict`]).
//!
//! Without the crossbar feature (the baseline's parallel busses), port `i`
//! may only access bank `i`; cross-bank requests raise
//! [`MemError::CrossbarRequired`]. This is exactly the restriction that
//! makes the DWC layouts of Figs. 10–11 impossible on the baseline.

use std::fmt;

use npcgra_nn::Word;

use crate::bank::SramBank;

/// Errors raised by local-memory access checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// Two same-kind accesses hit one bank in one cycle.
    BankConflict {
        /// The contended bank.
        bank: usize,
        /// The ports that collided.
        ports: (usize, usize),
        /// Whether the colliding accesses were writes.
        write: bool,
    },
    /// A port addressed a foreign bank while the crossbar is absent.
    CrossbarRequired {
        /// Requesting port.
        port: usize,
        /// Addressed bank.
        bank: usize,
    },
    /// Bank index out of range.
    BadBank(usize),
    /// In-bank offset out of range.
    BadOffset {
        /// Addressed bank.
        bank: usize,
        /// Offending offset.
        offset: usize,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::BankConflict { bank, ports, write } => {
                let kind = if *write { "write" } else { "read" };
                write!(f, "bank {bank} {kind} conflict between ports {} and {}", ports.0, ports.1)
            }
            MemError::CrossbarRequired { port, bank } => {
                write!(f, "port {port} addressed bank {bank} but the machine has no crossbar")
            }
            MemError::BadBank(b) => write!(f, "bank index {b} out of range"),
            MemError::BadOffset { bank, offset } => write!(f, "offset {offset} out of range for bank {bank}"),
        }
    }
}

impl std::error::Error for MemError {}

/// A group of SRAM banks with crossbar access and conflict detection
/// (models H-MEM or V-MEM).
///
/// # Example
///
/// ```
/// use npcgra_mem::BankedMemory;
///
/// let mut m = BankedMemory::new(4, 256, true);
/// let addr = m.global_addr(2, 17);
/// m.write_free(addr, 99).unwrap();
/// m.begin_cycle();
/// assert_eq!(m.read(0, addr).unwrap(), 99); // port 0 reads bank 2 via crossbar
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankedMemory {
    banks: Vec<SramBank>,
    addr_bits: u32,
    crossbar: bool,
    read_ports_this_cycle: Vec<Option<usize>>,
    write_ports_this_cycle: Vec<Option<usize>>,
    reads: u64,
    writes: u64,
    peak_banks_touched: usize,
}

impl BankedMemory {
    /// Create `num_banks` banks of `words_per_bank` words each. `crossbar`
    /// enables any-port-to-any-bank routing.
    ///
    /// # Panics
    ///
    /// Panics if `num_banks` or `words_per_bank` is zero.
    #[must_use]
    pub fn new(num_banks: usize, words_per_bank: usize, crossbar: bool) -> Self {
        assert!(num_banks > 0, "need at least one bank");
        let banks: Vec<_> = (0..num_banks).map(|_| SramBank::new(words_per_bank)).collect();
        let addr_bits = banks[0].addr_bits();
        BankedMemory {
            banks,
            addr_bits,
            crossbar,
            read_ports_this_cycle: vec![None; num_banks],
            write_ports_this_cycle: vec![None; num_banks],
            reads: 0,
            writes: 0,
            peak_banks_touched: 0,
        }
    }

    /// Number of banks.
    #[must_use]
    pub fn num_banks(&self) -> usize {
        self.banks.len()
    }

    /// Per-bank capacity in words.
    #[must_use]
    pub fn words_per_bank(&self) -> usize {
        self.banks[0].len()
    }

    /// Total capacity in words.
    #[must_use]
    pub fn total_words(&self) -> usize {
        self.num_banks() * self.words_per_bank()
    }

    /// The per-bank address width `N_a` used by the global address format.
    #[must_use]
    pub fn addr_bits(&self) -> u32 {
        self.addr_bits
    }

    /// Compose a global address `(bank << N_a) | offset`.
    ///
    /// # Panics
    ///
    /// Panics if `bank` or `offset` is out of range.
    #[must_use]
    pub fn global_addr(&self, bank: usize, offset: usize) -> usize {
        assert!(bank < self.num_banks(), "bank {bank} out of range");
        assert!(offset < self.words_per_bank(), "offset {offset} out of range");
        (bank << self.addr_bits) | offset
    }

    /// Split a global address into `(bank, offset)`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if either part is out of range.
    pub fn split_addr(&self, addr: usize) -> Result<(usize, usize), MemError> {
        let bank = addr >> self.addr_bits;
        let offset = addr & ((1usize << self.addr_bits) - 1);
        if bank >= self.num_banks() {
            return Err(MemError::BadBank(bank));
        }
        if offset >= self.words_per_bank() {
            return Err(MemError::BadOffset { bank, offset });
        }
        Ok((bank, offset))
    }

    /// Start a new cycle: clears the per-cycle access bookkeeping.
    pub fn begin_cycle(&mut self) {
        let touched = self
            .read_ports_this_cycle
            .iter()
            .chain(&self.write_ports_this_cycle)
            .filter(|p| p.is_some())
            .count();
        self.peak_banks_touched = self.peak_banks_touched.max(touched);
        self.read_ports_this_cycle.fill(None);
        self.write_ports_this_cycle.fill(None);
    }

    fn check_routing(&self, port: usize, bank: usize) -> Result<(), MemError> {
        if !self.crossbar && port != bank {
            return Err(MemError::CrossbarRequired { port, bank });
        }
        Ok(())
    }

    /// Port `port` reads global address `addr` this cycle.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on a malformed address, a missing crossbar, or
    /// a second read of the same bank within the cycle.
    pub fn read(&mut self, port: usize, addr: usize) -> Result<Word, MemError> {
        let (bank, offset) = self.split_addr(addr)?;
        self.check_routing(port, bank)?;
        if let Some(prev) = self.read_ports_this_cycle[bank] {
            return Err(MemError::BankConflict {
                bank,
                ports: (prev, port),
                write: false,
            });
        }
        self.read_ports_this_cycle[bank] = Some(port);
        self.reads += 1;
        self.banks[bank].read(offset).ok_or(MemError::BadOffset { bank, offset })
    }

    /// Port `port` writes global address `addr` this cycle.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on a malformed address, a missing crossbar, or
    /// a second write of the same bank within the cycle.
    pub fn write(&mut self, port: usize, addr: usize, value: Word) -> Result<(), MemError> {
        let (bank, offset) = self.split_addr(addr)?;
        self.check_routing(port, bank)?;
        if let Some(prev) = self.write_ports_this_cycle[bank] {
            return Err(MemError::BankConflict {
                bank,
                ports: (prev, port),
                write: true,
            });
        }
        self.write_ports_this_cycle[bank] = Some(port);
        self.writes += 1;
        self.banks[bank]
            .write(offset, value)
            .map_err(|_| MemError::BadOffset { bank, offset })
    }

    /// Untimed write used by DMA fills and test setup (bypasses the port
    /// bookkeeping — DMA runs while the array is idle on the other buffer
    /// set).
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on a malformed address.
    pub fn write_free(&mut self, addr: usize, value: Word) -> Result<(), MemError> {
        let (bank, offset) = self.split_addr(addr)?;
        self.banks[bank]
            .write(offset, value)
            .map_err(|_| MemError::BadOffset { bank, offset })
    }

    /// Untimed read used by verification and DMA write-back.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on a malformed address.
    pub fn read_free(&self, addr: usize) -> Result<Word, MemError> {
        let (bank, offset) = self.split_addr(addr)?;
        self.banks[bank].read(offset).ok_or(MemError::BadOffset { bank, offset })
    }

    /// Bulk-fill one bank starting at `offset` (DMA landing).
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the block does not fit.
    pub fn fill_bank(&mut self, bank: usize, offset: usize, data: &[Word]) -> Result<(), MemError> {
        if bank >= self.num_banks() {
            return Err(MemError::BadBank(bank));
        }
        self.banks[bank]
            .fill(offset, data)
            .map_err(|_| MemError::BadOffset { bank, offset })
    }

    /// Zero all banks (between layers).
    pub fn clear(&mut self) {
        let n = self.words_per_bank();
        for b in &mut self.banks {
            *b = SramBank::new(n);
        }
    }

    /// Total timed reads served.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total timed writes served.
    #[must_use]
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Maximum number of banks touched in any single cycle so far.
    #[must_use]
    pub fn peak_banks_touched(&self) -> usize {
        self.peak_banks_touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_addr_roundtrip() {
        let m = BankedMemory::new(8, 1024, true);
        let addr = m.global_addr(5, 321);
        assert_eq!(addr, (5 << 10) | 321);
        assert_eq!(m.split_addr(addr).unwrap(), (5, 321));
    }

    #[test]
    fn crossbar_routes_any_port() {
        let mut m = BankedMemory::new(4, 16, true);
        m.write_free(m.global_addr(3, 2), 7).unwrap();
        m.begin_cycle();
        assert_eq!(m.read(0, (3 << 4) | 2).unwrap(), 7);
    }

    #[test]
    fn no_crossbar_restricts_to_own_bank() {
        let mut m = BankedMemory::new(4, 16, false);
        m.begin_cycle();
        assert!(matches!(
            m.read(0, (3 << 4) | 2),
            Err(MemError::CrossbarRequired { port: 0, bank: 3 })
        ));
        assert!(m.read(3, (3 << 4) | 2).is_ok());
    }

    #[test]
    fn two_reads_same_bank_conflict() {
        let mut m = BankedMemory::new(4, 16, true);
        m.begin_cycle();
        m.read(0, 1 << 4).unwrap();
        let e = m.read(2, (1 << 4) | 5).unwrap_err();
        assert!(matches!(
            e,
            MemError::BankConflict {
                bank: 1,
                ports: (0, 2),
                write: false
            }
        ));
    }

    #[test]
    fn reads_clear_at_cycle_boundary() {
        let mut m = BankedMemory::new(2, 16, true);
        m.begin_cycle();
        m.read(0, 0).unwrap();
        m.begin_cycle();
        assert!(m.read(1, 0).is_ok());
    }

    #[test]
    fn read_plus_write_same_bank_allowed() {
        let mut m = BankedMemory::new(2, 16, true);
        m.begin_cycle();
        m.read(0, 3).unwrap();
        assert!(m.write(1, 5, 9).is_ok());
    }

    #[test]
    fn two_writes_same_bank_conflict() {
        let mut m = BankedMemory::new(2, 16, true);
        m.begin_cycle();
        m.write(0, 3, 1).unwrap();
        assert!(matches!(m.write(1, 4, 2), Err(MemError::BankConflict { write: true, .. })));
    }

    #[test]
    fn bad_bank_and_offset() {
        let m = BankedMemory::new(2, 16, true);
        assert!(matches!(m.split_addr(2 << 4), Err(MemError::BadBank(2))));
    }

    #[test]
    fn fill_and_readback() {
        let mut m = BankedMemory::new(2, 8, true);
        m.fill_bank(1, 2, &[4, 5, 6]).unwrap();
        assert_eq!(m.read_free((1 << 3) | 3).unwrap(), 5);
    }

    #[test]
    fn counters_accumulate() {
        let mut m = BankedMemory::new(2, 8, true);
        m.begin_cycle();
        m.read(0, 0).unwrap();
        m.write(1, (1 << 3) | 1, 1).unwrap();
        m.begin_cycle();
        assert_eq!(m.reads(), 1);
        assert_eq!(m.writes(), 1);
        assert_eq!(m.peak_banks_touched(), 2);
    }

    #[test]
    fn error_display() {
        let e = MemError::BankConflict {
            bank: 1,
            ports: (0, 2),
            write: false,
        };
        assert!(e.to_string().contains("read conflict"));
    }
}
