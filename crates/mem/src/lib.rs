//! NP-CGRA memory subsystem.
//!
//! The crossbar-style memory bus (§3.2) splits local memory into **H-MEM**
//! (read by per-row H-busses) and **V-MEM** (read by per-column V-busses),
//! each a set of single-access-per-cycle SRAM banks behind a crossbar that
//! lets any AGU reach any bank. The paper's mappings are constructed so that
//! AGUs never collide on a bank; this crate *checks* that property at
//! simulation time instead of assuming it.
//!
//! - [`bank`]: one SRAM bank.
//! - [`banked`]: a bank group with the paper's `(bank << N_a) | offset`
//!   global addressing, per-cycle conflict detection and an optional
//!   crossbar (disabled = baseline parallel busses, where AGU *i* can only
//!   reach bank *i*).
//! - [`xmem`]: external (off-chip) memory with a bump region allocator.
//! - [`dma`]: the DMA timing model (fixed 200-cycle latency + 12.5 GB/s
//!   bandwidth, Table 4) and traffic accounting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod banked;
pub mod dma;
pub mod xmem;

pub use bank::SramBank;
pub use banked::{BankedMemory, MemError};
pub use dma::{DmaEngine, DmaTransfer};
pub use xmem::{ExternalMemory, Region};
