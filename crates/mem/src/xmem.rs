//! External (off-chip) memory with a simple region allocator.
//!
//! Holds IFM, weight and OFM images between layers; the DMA engine moves
//! blocks between here and H-MEM/V-MEM. Word-addressed, since the datapath
//! word size is uniform within a run.

use std::fmt;

use npcgra_nn::{Tensor, Word};

/// A named, contiguous allocation in external memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    /// Base word address.
    pub base: usize,
    /// Length in words.
    pub len: usize,
}

impl Region {
    /// One-past-the-end address.
    #[must_use]
    pub fn end(&self) -> usize {
        self.base + self.len
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x}..{:#x})", self.base, self.end())
    }
}

/// Word-addressed external memory with bump allocation.
///
/// # Example
///
/// ```
/// use npcgra_mem::ExternalMemory;
///
/// let mut xm = ExternalMemory::new();
/// let r = xm.alloc(16);
/// xm.write(r.base + 3, 42).unwrap();
/// assert_eq!(xm.read(r.base + 3).unwrap(), 42);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExternalMemory {
    words: Vec<Word>,
}

impl ExternalMemory {
    /// An empty external memory.
    #[must_use]
    pub fn new() -> Self {
        ExternalMemory { words: Vec::new() }
    }

    /// Allocate a zeroed region of `len` words.
    pub fn alloc(&mut self, len: usize) -> Region {
        let base = self.words.len();
        self.words.resize(base + len, 0);
        Region { base, len }
    }

    /// Allocate a region and copy a tensor into it in CHW order (the
    /// external-memory layout of Figs. 9–11 before bank partitioning).
    pub fn alloc_tensor(&mut self, t: &Tensor) -> Region {
        let r = self.alloc(t.len());
        self.words[r.base..r.end()].copy_from_slice(t.as_slice());
        r
    }

    /// Read one word.
    ///
    /// # Errors
    ///
    /// Returns the memory size if `addr` is out of range.
    pub fn read(&self, addr: usize) -> Result<Word, usize> {
        self.words.get(addr).copied().ok_or(self.words.len())
    }

    /// Write one word.
    ///
    /// # Errors
    ///
    /// Returns the memory size if `addr` is out of range.
    pub fn write(&mut self, addr: usize, value: Word) -> Result<(), usize> {
        let len = self.words.len();
        match self.words.get_mut(addr) {
            Some(w) => {
                *w = value;
                Ok(())
            }
            None => Err(len),
        }
    }

    /// Borrow a region's contents.
    ///
    /// # Panics
    ///
    /// Panics if the region is out of range.
    #[must_use]
    pub fn slice(&self, r: Region) -> &[Word] {
        &self.words[r.base..r.end()]
    }

    /// Copy a block out of memory.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn read_block(&self, base: usize, len: usize) -> Vec<Word> {
        self.words[base..base + len].to_vec()
    }

    /// Copy a block into memory.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn write_block(&mut self, base: usize, data: &[Word]) {
        self.words[base..base + data.len()].copy_from_slice(data);
    }

    /// Total allocated words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether nothing is allocated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_contiguous() {
        let mut xm = ExternalMemory::new();
        let a = xm.alloc(10);
        let b = xm.alloc(5);
        assert_eq!(a.base, 0);
        assert_eq!(b.base, 10);
        assert_eq!(xm.len(), 15);
    }

    #[test]
    fn tensor_roundtrip() {
        let t = Tensor::random(2, 3, 4, 42);
        let mut xm = ExternalMemory::new();
        let r = xm.alloc_tensor(&t);
        assert_eq!(xm.slice(r), t.as_slice());
    }

    #[test]
    fn oob_access_errors() {
        let mut xm = ExternalMemory::new();
        xm.alloc(4);
        assert_eq!(xm.read(4), Err(4));
        assert_eq!(xm.write(4, 0), Err(4));
    }

    #[test]
    fn block_roundtrip() {
        let mut xm = ExternalMemory::new();
        let r = xm.alloc(8);
        xm.write_block(r.base + 2, &[1, 2, 3]);
        assert_eq!(xm.read_block(r.base + 2, 3), vec![1, 2, 3]);
    }

    #[test]
    fn region_display() {
        let r = Region { base: 16, len: 16 };
        assert_eq!(r.to_string(), "[0x10..0x20)");
    }
}
