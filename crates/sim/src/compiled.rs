//! Compile-once layer programs.
//!
//! [`CompiledLayer`] is the reusable product of mapping a layer onto a
//! machine: the chosen mapping's tiling, block geometry and AGU schedule,
//! without any feature-map data. Compiling is the expensive, data-independent
//! half of [`run_layer`](crate::run_layer); a `CompiledLayer` can then run
//! any number of inputs, on any [`Machine`] of the same spec, from any
//! thread (it is `Send + Sync`, so serving layers wrap it in an `Arc` and
//! share it across worker shards).
//!
//! The whole-layer entry points in [`crate::layer`] are thin wrappers:
//! compile, then run — so the cached path used by `npcgra-serve` is
//! cycle-for-cycle and bit-for-bit the same as the one-shot path the test
//! suite validates.

use npcgra_arch::CgraSpec;
use npcgra_kernels::dwc_batched::DwcS1BatchedLayerMap;
use npcgra_kernels::dwc_general::{padded_ifm, DwcGeneralLayerMap};
use npcgra_kernels::dwc_s1::DwcS1LayerMap;
use npcgra_kernels::matmul_dwc::MatmulDwcLayerMap;
use npcgra_kernels::pwc::{MapError, PwcLayerMap};
use npcgra_kernels::BlockProgram;
use npcgra_mem::dma::double_buffered_cycles_exact;
use npcgra_mem::DmaEngine;
use npcgra_nn::{ConvKind, ConvLayer, Tensor};

use crate::error::{SimCause, SimError};
use crate::integrity::{self, IntegrityMode};
use crate::layer::MappingKind;
use crate::machine::Machine;
use crate::report::LayerReport;

/// Which concrete mapping a [`CompiledLayer`] resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResolvedMapping {
    /// Output-stationary pointwise mapping (§5.1).
    Pwc,
    /// Stride-1 depthwise with GRF kernel broadcast (§5.2).
    DwcS1,
    /// General depthwise (any stride/kernel) via V-MEM weights (§5.3).
    DwcGeneral,
    /// Depthwise lowered to matmul (Table 5's middle column).
    MatmulDwc,
    /// Channel-batched stride-1 depthwise (§5.4).
    BatchedDwcS1,
}

enum MapImpl {
    Pwc(PwcLayerMap),
    DwcS1(DwcS1LayerMap),
    DwcGeneral(DwcGeneralLayerMap),
    MatmulDwc(MatmulDwcLayerMap),
    BatchedDwcS1(DwcS1BatchedLayerMap),
}

/// An input prepared for block materialization (depthwise mappings consume
/// a pre-padded IFM; pointwise consumes the raw IFM).
pub struct PreparedIfm<'a>(std::borrow::Cow<'a, Tensor>);

/// A layer compiled onto a machine spec: tiling, block geometry and
/// schedule, ready to run against any number of inputs.
pub struct CompiledLayer {
    layer: ConvLayer,
    spec: CgraSpec,
    map: MapImpl,
}

fn map_err(layer: &ConvLayer, e: MapError) -> SimError {
    SimError::new(layer.name(), 0, 0, SimCause::Map(e.to_string()))
}

impl CompiledLayer {
    /// Map `layer` onto `spec` with the requested mapping.
    ///
    /// `MappingKind::Auto` resolves to the paper's best mapping for the
    /// layer kind, exactly as [`crate::run_layer`] does. Standard
    /// convolution has no direct mapping (it is lowered through im2col by
    /// [`crate::run_standard_via_im2col`]) and is rejected here.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the layer cannot be mapped.
    pub fn compile(layer: &ConvLayer, spec: &CgraSpec, kind: MappingKind) -> Result<Self, SimError> {
        let map = match (kind, layer.kind()) {
            (MappingKind::BatchedDwcS1, ConvKind::Depthwise) => {
                MapImpl::BatchedDwcS1(DwcS1BatchedLayerMap::new(layer, spec).map_err(|e| map_err(layer, e))?)
            }
            (MappingKind::MatmulDwc, ConvKind::Depthwise) => {
                MapImpl::MatmulDwc(MatmulDwcLayerMap::new(layer, spec).map_err(|e| map_err(layer, e))?)
            }
            (_, ConvKind::Pointwise) => MapImpl::Pwc(PwcLayerMap::new(layer, spec).map_err(|e| map_err(layer, e))?),
            // The stride-1 optimized mapping broadcasts the kernel from the
            // GRF, whose 4-bit configuration index holds at most
            // `GRF_WORDS = 16` taps; larger kernels fall back to the
            // general mapping (weights via V-MEM).
            (_, ConvKind::Depthwise) if layer.s() == 1 && layer.k() * layer.k() <= npcgra_arch::grf::GRF_WORDS => {
                MapImpl::DwcS1(DwcS1LayerMap::new(layer, spec).map_err(|e| map_err(layer, e))?)
            }
            (_, ConvKind::Depthwise) => MapImpl::DwcGeneral(DwcGeneralLayerMap::new(layer, spec).map_err(|e| map_err(layer, e))?),
            (_, ConvKind::Standard) => {
                return Err(map_err(
                    layer,
                    MapError::new("standard convolution runs through run_standard_via_im2col"),
                ));
            }
        };
        Ok(CompiledLayer {
            layer: layer.clone(),
            spec: *spec,
            map,
        })
    }

    /// The layer this program was compiled from.
    #[must_use]
    pub fn layer(&self) -> &ConvLayer {
        &self.layer
    }

    /// The machine spec this program was compiled for.
    #[must_use]
    pub fn spec(&self) -> &CgraSpec {
        &self.spec
    }

    /// The concrete mapping in use.
    #[must_use]
    pub fn mapping(&self) -> ResolvedMapping {
        match &self.map {
            MapImpl::Pwc(_) => ResolvedMapping::Pwc,
            MapImpl::DwcS1(_) => ResolvedMapping::DwcS1,
            MapImpl::DwcGeneral(_) => ResolvedMapping::DwcGeneral,
            MapImpl::MatmulDwc(_) => ResolvedMapping::MatmulDwc,
            MapImpl::BatchedDwcS1(_) => ResolvedMapping::BatchedDwcS1,
        }
    }

    /// Number of blocks the layer tiles into.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        match &self.map {
            MapImpl::Pwc(m) => m.num_blocks(),
            MapImpl::DwcS1(m) => m.num_blocks(),
            MapImpl::DwcGeneral(m) => m.num_blocks(),
            MapImpl::MatmulDwc(m) => m.num_blocks(),
            MapImpl::BatchedDwcS1(m) => m.num_blocks(),
        }
    }

    /// Array-compute cycles per block.
    #[must_use]
    pub fn block_compute_cycles(&self) -> u64 {
        match &self.map {
            MapImpl::Pwc(m) => m.block_compute_cycles(),
            MapImpl::DwcS1(m) => m.block_compute_cycles(),
            MapImpl::DwcGeneral(m) => m.block_compute_cycles(),
            MapImpl::MatmulDwc(m) => m.block_compute_cycles(),
            MapImpl::BatchedDwcS1(m) => m.block_compute_cycles(),
        }
    }

    /// Words DMA moves into local memory per block.
    #[must_use]
    pub fn block_input_words(&self) -> u64 {
        match &self.map {
            MapImpl::Pwc(m) => m.block_input_words(),
            MapImpl::DwcS1(m) => m.block_input_words(),
            MapImpl::DwcGeneral(m) => m.block_input_words(),
            MapImpl::MatmulDwc(m) => m.block_input_words(),
            MapImpl::BatchedDwcS1(m) => m.block_input_words(),
        }
    }

    /// Words DMA moves out per block.
    #[must_use]
    pub fn block_output_words(&self) -> u64 {
        match &self.map {
            MapImpl::Pwc(m) => m.block_output_words(),
            MapImpl::DwcS1(m) => m.block_output_words(),
            MapImpl::DwcGeneral(m) => m.block_output_words(),
            MapImpl::MatmulDwc(m) => m.block_output_words(),
            MapImpl::BatchedDwcS1(m) => m.block_output_words(),
        }
    }

    /// Prepare an input for [`CompiledLayer::materialize`]: depthwise
    /// mappings consume a pre-padded IFM (built once per input here),
    /// pointwise borrows the raw tensor.
    #[must_use]
    pub fn prepare<'a>(&self, ifm: &'a Tensor) -> PreparedIfm<'a> {
        match &self.map {
            MapImpl::Pwc(_) => PreparedIfm(std::borrow::Cow::Borrowed(ifm)),
            _ => PreparedIfm(std::borrow::Cow::Owned(padded_ifm(&self.layer, ifm))),
        }
    }

    /// Materialize block `i` against a prepared input.
    #[must_use]
    pub fn materialize(&self, i: usize, ifm: &PreparedIfm<'_>, weights: &Tensor) -> BlockProgram {
        match &self.map {
            MapImpl::Pwc(m) => m.materialize(i, &ifm.0, weights),
            MapImpl::DwcS1(m) => m.materialize(i, &ifm.0, weights),
            MapImpl::DwcGeneral(m) => m.materialize(i, &ifm.0, weights),
            MapImpl::MatmulDwc(m) => m.materialize(i, &ifm.0, weights),
            MapImpl::BatchedDwcS1(m) => m.materialize(i, &ifm.0, weights),
        }
    }

    /// Timing-only report: identical cycle accounting to a functional run,
    /// with no data movement.
    #[must_use]
    pub fn timing_report(&self) -> LayerReport {
        let engine = DmaEngine::new(&self.spec);
        let dma_cycles = engine.transfer_cycles(self.block_input_words()) + engine.transfer_cycles(self.block_output_words());
        let compute = self.block_compute_cycles();
        let blocks: Vec<(u64, u64)> = (0..self.num_blocks()).map(|_| (compute, dma_cycles)).collect();
        let mut r = LayerReport::for_spec(self.layer.name(), &self.spec);
        r.cycles = double_buffered_cycles_exact(&blocks);
        r.compute_cycles = compute * self.num_blocks() as u64;
        r.dma_cycles = dma_cycles * self.num_blocks() as u64;
        r.macs = self.layer.macs();
        r
    }

    /// Run the layer functionally on a caller-owned machine, returning the
    /// OFM and performance report. The machine must have been built from
    /// the same spec the layer was compiled for.
    ///
    /// If the machine has an [`IntegrityMode`] other than `Off` installed
    /// ([`Machine::set_integrity_mode`]), every block's extracted outputs
    /// are verified on the host against the layer's ABFT checksum identity
    /// (see [`crate::integrity`]): `Verify` fails the run with
    /// [`SimCause::IntegrityViolation`] (the error's `tile` field carries
    /// the block index), `VerifyAndRecompute` heals the block in place.
    /// Checked/failed/recovered block counts land in the report.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on any hardware-rule violation, or — under
    /// `IntegrityMode::Verify` — when a block fails its output checksum.
    ///
    /// # Panics
    ///
    /// Panics if `machine` was built from a different spec.
    pub fn run_on(&self, machine: &mut Machine, ifm: &Tensor, weights: &Tensor) -> Result<(Tensor, LayerReport), SimError> {
        assert_eq!(*machine.spec(), self.spec, "machine/compiled-layer spec mismatch");
        let mode = machine.integrity_mode();
        let prepared = self.prepare(ifm);
        let mut ofm = Tensor::zeros(self.layer.out_channels(), self.layer.out_h(), self.layer.out_w());
        let mut blocks: Vec<(u64, u64)> = Vec::with_capacity(self.num_blocks());
        let (mut checked, mut failed, mut recovered) = (0u64, 0u64, 0u64);
        for i in 0..self.num_blocks() {
            let prog = self.materialize(i, &prepared, weights);
            debug_assert_eq!(prog.compute_cycles(), self.block_compute_cycles(), "uniform block plan");
            let mut res = machine.run_block(&prog)?;
            if mode != IntegrityMode::Off {
                checked += 1;
                match integrity::verify_block(&self.layer, ifm, weights, &res.ofm) {
                    Ok(()) => {}
                    Err(v) => {
                        failed += 1;
                        if mode == IntegrityMode::Verify {
                            return Err(SimError::new(self.layer.name(), i, 0, SimCause::IntegrityViolation(v)));
                        }
                        integrity::heal_block(&self.layer, ifm, weights, &mut res.ofm);
                        recovered += 1;
                    }
                }
            }
            blocks.push((res.compute_cycles, res.dma_in_cycles + res.dma_out_cycles));
            for (c, y, x, v) in res.ofm {
                ofm.set(c, y, x, v);
            }
        }
        let mut report = self.report_from_blocks(&blocks);
        report.integrity_checked = checked;
        report.integrity_failed = failed;
        report.integrity_recovered = recovered;
        Ok((ofm, report))
    }

    /// Run the layer functionally with blocks distributed over `threads`
    /// scoped worker threads, each with its own scratch [`Machine`].
    /// Blocks are architecturally independent (each begins with a DMA fill
    /// and ends with a drain), so the result is bit-identical to
    /// [`CompiledLayer::run_on`] — while large layers simulate several
    /// times faster on a multicore host. The scratch machines are built
    /// fresh, so no fault plan is active and integrity checking stays
    /// [`IntegrityMode::Off`]; use [`CompiledLayer::run_on`] with a
    /// configured machine for chaos or verified runs.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on any hardware-rule violation.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics.
    pub fn run_parallel(&self, ifm: &Tensor, weights: &Tensor, threads: usize) -> Result<(Tensor, LayerReport), SimError> {
        let num_blocks = self.num_blocks();
        let threads = threads.clamp(1, num_blocks.max(1));
        if threads == 1 {
            return self.run_on(&mut Machine::new(&self.spec), ifm, weights);
        }
        let prepared = self.prepare(ifm);
        let prepared = &prepared;

        // Each worker runs a disjoint, strided set of blocks.
        let results: Vec<Result<Vec<(usize, crate::machine::BlockResult)>, SimError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    scope.spawn(move || {
                        let mut machine = Machine::new(&self.spec);
                        let mut out = Vec::new();
                        let mut b = t;
                        while b < num_blocks {
                            let prog = self.materialize(b, prepared, weights);
                            out.push((b, machine.run_block(&prog)?));
                            b += threads;
                        }
                        Ok(out)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });

        let mut per_block: Vec<Option<crate::machine::BlockResult>> = (0..num_blocks).map(|_| None).collect();
        for r in results {
            for (b, res) in r? {
                per_block[b] = Some(res);
            }
        }
        let mut ofm = Tensor::zeros(self.layer.out_channels(), self.layer.out_h(), self.layer.out_w());
        let mut blocks: Vec<(u64, u64)> = Vec::with_capacity(num_blocks);
        for res in per_block.into_iter().map(|r| r.expect("all blocks ran")) {
            blocks.push((res.compute_cycles, res.dma_in_cycles + res.dma_out_cycles));
            for (c, y, x, v) in res.ofm {
                ofm.set(c, y, x, v);
            }
        }
        Ok((ofm, self.report_from_blocks(&blocks)))
    }

    fn report_from_blocks(&self, blocks: &[(u64, u64)]) -> LayerReport {
        let mut report = LayerReport::for_spec(self.layer.name(), &self.spec);
        report.cycles = double_buffered_cycles_exact(blocks);
        report.compute_cycles = blocks.iter().map(|b| b.0).sum();
        report.dma_cycles = blocks.iter().map(|b| b.1).sum();
        report.macs = self.layer.macs();
        report
    }
}

impl std::fmt::Debug for CompiledLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledLayer")
            .field("layer", &self.layer.name())
            .field("mapping", &self.mapping())
            .field("blocks", &self.num_blocks())
            .field("block_compute_cycles", &self.block_compute_cycles())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npcgra_nn::reference;

    fn spec4() -> CgraSpec {
        CgraSpec::np_cgra(4, 4)
    }

    const _: () = {
        const fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompiledLayer>()
    };

    #[test]
    fn compiled_run_matches_one_shot() {
        for layer in [
            ConvLayer::pointwise("pw", 12, 10, 6, 7),
            ConvLayer::depthwise("dw1", 3, 11, 13, 3, 1, 1),
            ConvLayer::depthwise("dw2", 2, 12, 12, 3, 2, 1),
        ] {
            let ifm = Tensor::random(layer.in_channels(), layer.in_h(), layer.in_w(), 3);
            let w = layer.random_weights(4);
            let compiled = CompiledLayer::compile(&layer, &spec4(), MappingKind::Auto).unwrap();
            let (a, ra) = compiled.run_on(&mut Machine::new(&spec4()), &ifm, &w).unwrap();
            let (b, rb) = crate::layer::run_layer(&layer, &ifm, &w, &spec4()).unwrap();
            assert_eq!(a, b, "{}", layer.name());
            assert_eq!(ra.cycles, rb.cycles, "{}", layer.name());
        }
    }

    #[test]
    fn one_compile_serves_many_inputs_and_machines() {
        let layer = ConvLayer::depthwise("dw", 4, 10, 10, 3, 1, 1);
        let compiled = CompiledLayer::compile(&layer, &spec4(), MappingKind::Auto).unwrap();
        let w = layer.random_weights(1);
        let mut m1 = Machine::new(&spec4());
        let mut m2 = Machine::new(&spec4());
        for seed in 0..4u64 {
            let ifm = Tensor::random(4, 10, 10, seed);
            let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
            let (a, _) = compiled.run_on(&mut m1, &ifm, &w).unwrap();
            let (b, _) = compiled.run_on(&mut m2, &ifm, &w).unwrap();
            assert_eq!(a, golden);
            assert_eq!(b, golden);
        }
    }

    #[test]
    fn parallel_run_is_bit_identical() {
        let layer = ConvLayer::depthwise("dw", 6, 16, 16, 3, 1, 1);
        let ifm = Tensor::random(6, 16, 16, 11);
        let w = layer.random_weights(12);
        let compiled = CompiledLayer::compile(&layer, &spec4(), MappingKind::Auto).unwrap();
        let (seq, rs) = compiled.run_on(&mut Machine::new(&spec4()), &ifm, &w).unwrap();
        let (par, rp) = compiled.run_parallel(&ifm, &w, 4).unwrap();
        assert_eq!(seq, par);
        assert_eq!(rs.cycles, rp.cycles);
    }

    #[test]
    fn timing_report_matches_functional() {
        let layer = ConvLayer::pointwise("pw", 9, 7, 5, 5);
        let compiled = CompiledLayer::compile(&layer, &spec4(), MappingKind::Auto).unwrap();
        let ifm = Tensor::random(9, 5, 5, 1);
        let w = layer.random_weights(2);
        let (_, functional) = compiled.run_on(&mut Machine::new(&spec4()), &ifm, &w).unwrap();
        let timed = compiled.timing_report();
        assert_eq!(functional.cycles, timed.cycles);
        assert_eq!(functional.compute_cycles, timed.compute_cycles);
    }

    #[test]
    fn standard_layers_are_rejected() {
        let layer = ConvLayer::standard("c", 3, 4, 8, 8, 3, 1, 1, 1);
        let err = CompiledLayer::compile(&layer, &spec4(), MappingKind::Auto).unwrap_err();
        assert!(err.to_string().contains("im2col"));
    }

    #[test]
    fn resolved_mapping_follows_the_paper() {
        let spec = spec4();
        let pw = CompiledLayer::compile(&ConvLayer::pointwise("pw", 8, 8, 4, 4), &spec, MappingKind::Auto).unwrap();
        assert_eq!(pw.mapping(), ResolvedMapping::Pwc);
        let s1 = CompiledLayer::compile(&ConvLayer::depthwise("dw", 2, 8, 8, 3, 1, 1), &spec, MappingKind::Auto).unwrap();
        assert_eq!(s1.mapping(), ResolvedMapping::DwcS1);
        let s2 = CompiledLayer::compile(&ConvLayer::depthwise("dw", 2, 9, 9, 3, 2, 1), &spec, MappingKind::Auto).unwrap();
        assert_eq!(s2.mapping(), ResolvedMapping::DwcGeneral);
        let mm = CompiledLayer::compile(&ConvLayer::depthwise("dw", 2, 9, 9, 3, 1, 1), &spec, MappingKind::MatmulDwc).unwrap();
        assert_eq!(mm.mapping(), ResolvedMapping::MatmulDwc);
    }
}
