//! Per-layer performance reports.

use std::fmt;

use npcgra_arch::CgraSpec;

/// The measured performance of one layer on one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerReport {
    /// Layer name.
    pub name: String,
    /// Total pipelined cycles (compute overlapped with double-buffered DMA).
    pub cycles: u64,
    /// Pure array-compute cycles.
    pub compute_cycles: u64,
    /// Total DMA-engine busy cycles.
    pub dma_cycles: u64,
    /// Useful MAC operations.
    pub macs: u64,
    /// PEs in the machine.
    pub pes: usize,
    /// Clock frequency used for time conversions.
    pub clock_hz: f64,
    /// Host-processor seconds (im2col for standard convolution), zero
    /// otherwise.
    pub host_seconds: f64,
    /// Blocks whose outputs went through an ABFT integrity check, pass or
    /// fail (zero when [`IntegrityMode::Off`](crate::IntegrityMode::Off)).
    pub integrity_checked: u64,
    /// Blocks whose outputs failed an integrity check.
    pub integrity_failed: u64,
    /// Failed blocks healed in place by host recompute
    /// ([`IntegrityMode::VerifyAndRecompute`](crate::IntegrityMode::VerifyAndRecompute)).
    pub integrity_recovered: u64,
}

impl LayerReport {
    /// Wall-clock seconds: CGRA cycles at the clock plus host time.
    #[must_use]
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 / self.clock_hz + self.host_seconds
    }

    /// Milliseconds.
    #[must_use]
    pub fn ms(&self) -> f64 {
        self.seconds() * 1e3
    }

    /// Inference throughput in frames per second — the paper's "main
    /// comparison metric" — when this report covers one frame's work.
    #[must_use]
    pub fn fps(&self) -> f64 {
        1.0 / self.seconds()
    }

    /// MAC utilization over the *pipelined* cycles, the paper's "util"
    /// metric (one MAC per PE per cycle is 100 %).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.macs as f64 / (self.pes as f64 * self.cycles as f64)
    }

    /// Whether the layer was DMA-bound (pipelined cycles exceed compute).
    #[must_use]
    pub fn dma_bound(&self) -> bool {
        self.cycles > self.compute_cycles + self.compute_cycles / 10
    }

    /// Sum a sequence of reports into a whole-model report.
    ///
    /// # Panics
    ///
    /// Panics if reports disagree on machine parameters or the iterator is
    /// empty.
    #[must_use]
    pub fn total(name: &str, reports: &[LayerReport]) -> LayerReport {
        assert!(!reports.is_empty(), "cannot total zero reports");
        let first = &reports[0];
        for r in reports {
            assert_eq!(r.pes, first.pes, "mixed machines in total");
        }
        LayerReport {
            name: name.to_string(),
            cycles: reports.iter().map(|r| r.cycles).sum(),
            compute_cycles: reports.iter().map(|r| r.compute_cycles).sum(),
            dma_cycles: reports.iter().map(|r| r.dma_cycles).sum(),
            macs: reports.iter().map(|r| r.macs).sum(),
            pes: first.pes,
            clock_hz: first.clock_hz,
            host_seconds: reports.iter().map(|r| r.host_seconds).sum(),
            integrity_checked: reports.iter().map(|r| r.integrity_checked).sum(),
            integrity_failed: reports.iter().map(|r| r.integrity_failed).sum(),
            integrity_recovered: reports.iter().map(|r| r.integrity_recovered).sum(),
        }
    }

    /// Construct with the machine parameters of `spec`.
    #[must_use]
    pub fn for_spec(name: &str, spec: &CgraSpec) -> LayerReport {
        LayerReport {
            name: name.to_string(),
            cycles: 0,
            compute_cycles: 0,
            dma_cycles: 0,
            macs: 0,
            pes: spec.num_pes(),
            clock_hz: spec.clock_hz,
            host_seconds: 0.0,
            integrity_checked: 0,
            integrity_failed: 0,
            integrity_recovered: 0,
        }
    }
}

impl fmt::Display for LayerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.3} ms ({} cycles, util {:.2} %{})",
            self.name,
            self.ms(),
            self.cycles,
            self.utilization() * 100.0,
            if self.host_seconds > 0.0 { ", +host" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64, macs: u64) -> LayerReport {
        LayerReport {
            name: "t".into(),
            cycles,
            compute_cycles: cycles,
            dma_cycles: 0,
            macs,
            pes: 16,
            clock_hz: 500e6,
            host_seconds: 0.0,
            integrity_checked: 0,
            integrity_failed: 0,
            integrity_recovered: 0,
        }
    }

    #[test]
    fn time_conversion() {
        let r = report(500_000, 0);
        assert!((r.ms() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fps_inverts_seconds() {
        let r = report(500_000, 0); // 1 ms
        assert!((r.fps() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn utilization_definition() {
        let r = report(100, 800);
        assert!((r.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn totals_accumulate() {
        let t = LayerReport::total("sum", &[report(100, 10), report(200, 20)]);
        assert_eq!(t.cycles, 300);
        assert_eq!(t.macs, 30);
    }

    #[test]
    fn host_time_added() {
        let mut r = report(500_000, 0);
        r.host_seconds = 0.001;
        assert!((r.ms() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_ms() {
        assert!(report(500_000, 0).to_string().contains("ms"));
    }
}
