//! Cooperative cancellation for long-running block executions.
//!
//! A [`CancelToken`] is a tiny shared flag: a controller (the serving
//! watchdog, a test harness, a signal handler) clones it, hands the clone
//! to whoever owns the [`Machine`](crate::Machine), and later calls
//! [`CancelToken::cancel`]. The machine polls the flag once per simulated
//! cycle — one relaxed atomic load, negligible next to the cycle's own
//! work — and returns [`SimCause::Cancelled`](crate::SimCause::Cancelled)
//! at the next check instead of finishing (or, for a wedged run, instead
//! of never finishing).
//!
//! Cancellation is *cooperative and sticky*: once cancelled, a token stays
//! cancelled until [`CancelToken::reset`]; installing a fresh token per
//! batch (what the serving supervisor does) is the usual pattern.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag. Cloning is cheap (one `Arc` bump); all
/// clones observe the same flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Raise the flag. Every holder of a clone observes it on its next
    /// check; raising an already-raised flag is a no-op.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the flag has been raised.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Lower the flag, re-arming the token for another run. Only
    /// meaningful when the controller knows no runner is mid-check.
    pub fn reset(&self) {
        self.flag.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!t.is_cancelled() && !clone.is_cancelled());
        clone.cancel();
        assert!(t.is_cancelled() && clone.is_cancelled());
        t.reset();
        assert!(!clone.is_cancelled());
    }

    #[test]
    fn cancel_crosses_threads() {
        let t = CancelToken::new();
        let observer = t.clone();
        let h = std::thread::spawn(move || {
            while !observer.is_cancelled() {
                std::thread::yield_now();
            }
            true
        });
        t.cancel();
        assert!(h.join().unwrap());
    }
}
