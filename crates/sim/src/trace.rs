//! Cycle-by-cycle execution tracing.
//!
//! A [`Trace`] records what the machine did each cycle — bus values, GRF
//! broadcasts, per-PE operations and output registers, store writes — in a
//! compact, greppable text form (one block per cycle, waveform-style). It
//! is the debugging tool for mapping work: when an output word is wrong,
//! the trace shows exactly which cycle loaded the wrong IFM element or
//! reused the wrong latch.

use std::fmt;

use npcgra_arch::Instruction;
use npcgra_nn::Word;

/// One H- or V-bus event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusEvent {
    /// Bus (= port/AGU) index.
    pub lane: usize,
    /// Bank accessed.
    pub bank: usize,
    /// In-bank offset.
    pub offset: usize,
    /// The word carried.
    pub value: Word,
}

/// One store-port write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreEvent {
    /// Row port.
    pub port: usize,
    /// Bank written.
    pub bank: usize,
    /// In-bank offset.
    pub offset: usize,
    /// The word written.
    pub value: Word,
}

/// Everything that happened in one cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleTrace {
    /// Tile index within the block.
    pub tile: usize,
    /// Cycle within the tile.
    pub cycle: u64,
    /// H-bus loads this cycle.
    pub h_loads: Vec<BusEvent>,
    /// V-bus loads this cycle.
    pub v_loads: Vec<BusEvent>,
    /// The GRF broadcast value, if any.
    pub grf: Option<Word>,
    /// Per-PE `(instruction, new output)` in row-major order; `None` for
    /// PEs that executed a pure NOP with unchanged output.
    pub pes: Vec<Option<(Instruction, i32)>>,
    /// Store-port writes this cycle.
    pub stores: Vec<StoreEvent>,
}

/// A recorded block execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    cycles: Vec<CycleTrace>,
    cols: usize,
}

impl Trace {
    /// An empty trace for an array with `cols` columns.
    #[must_use]
    pub fn new(cols: usize) -> Self {
        Trace {
            cycles: Vec::new(),
            cols,
        }
    }

    pub(crate) fn push(&mut self, cycle: CycleTrace) {
        self.cycles.push(cycle);
    }

    /// All recorded cycles.
    #[must_use]
    pub fn cycles(&self) -> &[CycleTrace] {
        &self.cycles
    }

    /// Total cycles recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// Whether anything was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// Cycles in which at least one store happened.
    pub fn store_cycles(&self) -> impl Iterator<Item = &CycleTrace> {
        self.cycles.iter().filter(|c| !c.stores.is_empty())
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.cycles {
            write!(f, "[t{}:{:>3}]", c.tile, c.cycle)?;
            if let Some(g) = c.grf {
                write!(f, " grf={g}")?;
            }
            for e in &c.h_loads {
                write!(f, " H{}<-b{}+{:#x}={}", e.lane, e.bank, e.offset, e.value)?;
            }
            for e in &c.v_loads {
                write!(f, " V{}<-b{}+{:#x}={}", e.lane, e.bank, e.offset, e.value)?;
            }
            let active: Vec<String> = c
                .pes
                .iter()
                .enumerate()
                .filter_map(|(i, p)| {
                    p.as_ref()
                        .map(|(ins, out)| format!("pe({},{})={}:{}", i / self.cols, i % self.cols, ins.op, out))
                })
                .collect();
            if !active.is_empty() {
                write!(f, " | {}", active.join(" "))?;
            }
            for s in &c.stores {
                write!(f, " | st{}->b{}+{:#x}={}", s.port, s.bank, s.offset, s.value)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npcgra_arch::MuxSel;

    fn sample() -> Trace {
        let mut t = Trace::new(2);
        t.push(CycleTrace {
            tile: 0,
            cycle: 0,
            h_loads: vec![BusEvent {
                lane: 0,
                bank: 0,
                offset: 4,
                value: 7,
            }],
            v_loads: vec![],
            grf: Some(3),
            pes: vec![Some((Instruction::mac(MuxSel::HBus, MuxSel::Grf), 21)), None, None, None],
            stores: vec![],
        });
        t.push(CycleTrace {
            tile: 0,
            cycle: 1,
            h_loads: vec![],
            v_loads: vec![],
            grf: None,
            pes: vec![None; 4],
            stores: vec![StoreEvent {
                port: 1,
                bank: 1,
                offset: 9,
                value: -5,
            }],
        });
        t
    }

    #[test]
    fn display_is_one_line_per_cycle() {
        let s = sample().to_string();
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("H0<-b0+0x4=7"));
        assert!(s.contains("grf=3"));
        assert!(s.contains("pe(0,0)=mac:21"));
        assert!(s.contains("st1->b1+0x9=-5"));
    }

    #[test]
    fn store_cycles_filter() {
        let t = sample();
        assert_eq!(t.store_cycles().count(), 1);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }
}
