//! The functional fast tier.
//!
//! [`FastMachine`] runs a [`CompiledLayer`] without simulating cycles: the
//! layer's outputs are computed once with straight-line tensor arithmetic
//! (chunked lane loops over the flat CHW data — the scalar form of the PE
//! lanes, and exactly the golden reference's wrapping `i16`×`i16`→`i32`
//! contract, so outputs are bit-identical to the cycle tier), and each
//! block's cycle charge comes from the closed-form latency model the
//! mapping planned (`tiles × tile_latency` compute, [`DmaEngine`] transfer
//! cycles for DMA, folded through the same double-buffered pipeline
//! formula). `timing_report_matches_functional` in [`crate::compiled`] is
//! the proof obligation that makes this exact: on a fault-free run the
//! cycle-accurate machine measures precisely the planned cycles.
//!
//! Chaos fidelity: an installed [`FaultPlan`] is replayed over the same
//! `(run, tile, cycle)` lattice the cycle tier walks — structural draws
//! corrupt one extracted OFM word (one bit, deterministically chosen from
//! the site), temporal draws burn budget/wall time with the machine's exact
//! stall/slowdown/wedge semantics — so ABFT detection, watchdog preemption
//! and cycle-budget liveness all keep firing under the fast tier. What the
//! fast tier does *not* model is microarchitectural fault propagation (a
//! flipped input word corrupting several outputs, or a GRF trim tripping a
//! hardware rule): every structural fault lands as a single-bit output
//! corruption, which ABFT catches at least as often as the cycle tier's.

use npcgra_arch::CgraSpec;
use npcgra_kernels::BlockProgram;
use npcgra_mem::dma::double_buffered_cycles_exact;
use npcgra_mem::DmaEngine;
use npcgra_nn::{truncate, Acc, ConvKind, ConvLayer, Tensor, Word};

use crate::cancel::CancelToken;
use crate::compiled::CompiledLayer;
use crate::error::{SimCause, SimError};
use crate::fault::{FaultDims, FaultPlan, FaultSite, TemporalFault};
use crate::integrity::{self, IntegrityMode, OfmEntry};
use crate::machine::check_liveness;
use crate::report::LayerReport;

use super::{BackendTier, ExecutionBackend};

/// Wall-clock pace of a wedged run — same as the cycle tier's, so watchdog
/// cancellation latency is identical across tiers.
const WEDGE_PACE: std::time::Duration = std::time::Duration::from_micros(100);

/// Chunk width of the lane loops (accumulators processed per chunk; wide
/// enough for the autovectorizer, small enough to stay in registers).
const LANE: usize = 16;

/// The functional fast-tier backend.
///
/// Carries the same chaos/liveness controls as [`Machine`](crate::Machine)
/// so the serving stack can program either tier identically.
#[derive(Debug)]
pub struct FastMachine {
    spec: CgraSpec,
    fault_plan: Option<FaultPlan>,
    integrity: IntegrityMode,
    cancel: Option<CancelToken>,
    cycle_budget: Option<u64>,
    /// Block runs executed so far (the `run` ordinal fault plans hash) —
    /// advances exactly like the cycle tier's, so retries of a failed
    /// block see an independent fault draw.
    runs: u64,
    faults_injected: u64,
    temporal_injected: u64,
}

impl FastMachine {
    /// Build a fast-tier backend for `spec`.
    #[must_use]
    pub fn new(spec: &CgraSpec) -> Self {
        FastMachine {
            spec: *spec,
            fault_plan: None,
            integrity: IntegrityMode::Off,
            cancel: None,
            cycle_budget: None,
            runs: 0,
            faults_injected: 0,
            temporal_injected: 0,
        }
    }

    /// Replay the fault plan over the block's `(tile, cycle)` lattice and
    /// return the compute-cycle charge. Without a plan this is the pure
    /// closed-form charge plus the budget gate.
    fn charge_block(&mut self, prog: &BlockProgram, entries: &mut [OfmEntry]) -> Result<u64, SimError> {
        let clean = prog.compute_cycles();
        let Some(plan) = self.fault_plan.clone() else {
            if let Some(budget) = self.cycle_budget {
                // The cycle tier checks the budget before each cycle with
                // `spent` = cycles so far, so a clean run of C cycles sees
                // checks at 0..C-1 and fails iff C-1 > budget. Locate the
                // first failing check for the error's (tile, cycle) fields.
                if clean > 0 && clean - 1 > budget {
                    let spent = budget + 1;
                    let per_tile = prog.mapping.tile_latency().max(1);
                    let tile = usize::try_from(spent / per_tile).unwrap_or(usize::MAX);
                    return Err(SimError::new(
                        &prog.label,
                        tile.min(prog.tiles.tiles().saturating_sub(1)),
                        spent % per_tile,
                        SimCause::CycleBudgetExceeded { budget },
                    ));
                }
            }
            return Ok(clean);
        };
        let dims = FaultDims {
            rows: self.spec.rows,
            cols: self.spec.cols,
            h_banks: self.spec.rows,
            h_words: (self.spec.hmem_bytes / self.spec.word_bytes / self.spec.rows).max(1),
            v_banks: self.spec.cols,
            v_words: ({
                let v_total = if self.spec.vmem_bytes == 0 {
                    self.spec.hmem_bytes
                } else {
                    self.spec.vmem_bytes
                };
                v_total / self.spec.word_bytes / self.spec.cols
            })
            .max(1),
        };
        let n_tiles = prog.tiles.tiles();
        let per_tile = prog.mapping.tile_latency();
        let mut compute = 0u64;
        for tile in 0..n_tiles {
            // Slowdown factors clear at the tile boundary, as on the
            // cycle tier.
            let mut slow_factor = 1u64;
            for cyc in 0..per_tile {
                let err = |cause: SimCause| SimError::new(&prog.label, tile, cyc, cause);
                check_liveness(self.cancel.as_ref(), self.cycle_budget, compute).map_err(err)?;
                for site in plan.sites_at(self.runs, tile, cyc, &dims) {
                    match site {
                        FaultSite::Temporal(t) => {
                            self.temporal_injected += 1;
                            match t {
                                TemporalFault::Stall { cycles } => {
                                    for burned in 0..cycles {
                                        compute += 1;
                                        check_liveness(self.cancel.as_ref(), self.cycle_budget, compute).map_err(err)?;
                                        if burned % 1024 == 1023 {
                                            std::thread::yield_now();
                                        }
                                    }
                                }
                                TemporalFault::Slowdown { factor } => {
                                    slow_factor = slow_factor.max(u64::from(factor));
                                }
                                TemporalFault::Wedge => loop {
                                    compute += 1;
                                    check_liveness(self.cancel.as_ref(), self.cycle_budget, compute).map_err(err)?;
                                    std::thread::sleep(WEDGE_PACE);
                                },
                            }
                        }
                        site => {
                            if flip_entry(site, entries) {
                                self.faults_injected += 1;
                            }
                        }
                    }
                }
                compute += slow_factor;
            }
        }
        Ok(compute)
    }
}

impl ExecutionBackend for FastMachine {
    fn tier(&self) -> BackendTier {
        BackendTier::Fast
    }

    fn spec(&self) -> &CgraSpec {
        &self.spec
    }

    fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault_plan = plan;
    }

    fn set_integrity_mode(&mut self, mode: IntegrityMode) {
        self.integrity = mode;
    }

    fn integrity_mode(&self) -> IntegrityMode {
        self.integrity
    }

    fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    fn set_cycle_budget(&mut self, budget: Option<u64>) {
        self.cycle_budget = budget;
    }

    fn faults_injected(&self) -> u64 {
        self.faults_injected
    }

    fn temporal_injected(&self) -> u64 {
        self.temporal_injected
    }

    fn run_layer(&mut self, compiled: &CompiledLayer, ifm: &Tensor, weights: &Tensor) -> Result<(Tensor, LayerReport), SimError> {
        assert_eq!(self.spec, *compiled.spec(), "machine/compiled-layer spec mismatch");
        let layer = compiled.layer();
        let mode = self.integrity;
        // One functional pass produces every output the blocks will extract.
        let golden = functional_ofm(layer, ifm, weights);
        let prepared = compiled.prepare(ifm);
        let engine = DmaEngine::new(&self.spec);
        let dma_cycles =
            engine.transfer_cycles(compiled.block_input_words()) + engine.transfer_cycles(compiled.block_output_words());
        let mut ofm = Tensor::zeros(layer.out_channels(), layer.out_h(), layer.out_w());
        let mut blocks: Vec<(u64, u64)> = Vec::with_capacity(compiled.num_blocks());
        let (mut checked, mut failed, mut recovered) = (0u64, 0u64, 0u64);
        for i in 0..compiled.num_blocks() {
            let prog = compiled.materialize(i, &prepared, weights);
            self.runs += 1;
            // Block-boundary cancellation check, as on the cycle tier. A
            // fast-tier block runs in microseconds of wall time, so the
            // per-cycle cancellation granularity of the cycle tier adds
            // nothing here (temporal faults re-check per burned cycle).
            check_liveness(self.cancel.as_ref(), None, 0).map_err(|cause| SimError::new(&prog.label, 0, 0, cause))?;
            let mut entries: Vec<OfmEntry> = prog
                .ofm_slots
                .iter()
                .map(|s| (s.c, s.y, s.x, golden.get(s.c, s.y, s.x)))
                .collect();
            let compute = self.charge_block(&prog, &mut entries)?;
            if mode != IntegrityMode::Off {
                checked += 1;
                match integrity::verify_block(layer, ifm, weights, &entries) {
                    Ok(()) => {}
                    Err(v) => {
                        failed += 1;
                        if mode == IntegrityMode::Verify {
                            return Err(SimError::new(layer.name(), i, 0, SimCause::IntegrityViolation(v)));
                        }
                        integrity::heal_block(layer, ifm, weights, &mut entries);
                        recovered += 1;
                    }
                }
            }
            for &(c, y, x, v) in &entries {
                ofm.set(c, y, x, v);
            }
            blocks.push((compute, dma_cycles));
        }
        let mut report = LayerReport::for_spec(layer.name(), &self.spec);
        report.cycles = double_buffered_cycles_exact(&blocks);
        report.compute_cycles = blocks.iter().map(|b| b.0).sum();
        report.dma_cycles = blocks.iter().map(|b| b.1).sum();
        report.macs = layer.macs();
        report.integrity_checked = checked;
        report.integrity_failed = failed;
        report.integrity_recovered = recovered;
        Ok((ofm, report))
    }
}

/// `splitmix64` (local copy of the fault module's private mixer): derives
/// the deterministic entry index a structural fault corrupts.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Land a structural fault site on the block's extracted outputs: flip one
/// bit of one entry, both chosen as a pure function of the site. Returns
/// whether anything changed (empty blocks absorb the fault, mirroring the
/// cycle tier's flips into unloaded resources).
fn flip_entry(site: FaultSite, entries: &mut [OfmEntry]) -> bool {
    if entries.is_empty() {
        return false;
    }
    let (salt, a, b, bit) = match site {
        FaultSite::HBankBit { bank, offset, bit } => (0x48u64, bank as u64, offset as u64, bit),
        FaultSite::VBankBit { bank, offset, bit } => (0x56, bank as u64, offset as u64, bit),
        FaultSite::GrfBit { index, bit } => (0x47, index as u64, 0, bit),
        FaultSite::GrfTrim { keep } => (0x54, keep as u64, 0, 0),
        FaultSite::PeOutBit { r, c, bit } => (0x50, r as u64, c as u64, bit),
        FaultSite::Temporal(_) => return false,
    };
    let h = splitmix64(salt ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.rotate_left(32));
    let idx = usize::try_from(h % entries.len() as u64).expect("index fits");
    entries[idx].3 ^= (1 as Word) << (bit % Word::BITS);
    true
}

/// Compute a whole layer's OFM with straight-line host arithmetic —
/// bit-identical to [`npcgra_nn::reference::run_layer`] (same wrapping
/// `i16`×`i16`→`i32` accumulate, same [`truncate`] finish; wrapping `i32`
/// addition is associative and commutative, so the tap-major accumulation
/// order used here for lane-friendly inner loops changes nothing), but
/// structured as chunked loops over the flat CHW planes so the compiler
/// vectorizes the hot paths.
///
/// # Panics
///
/// Panics if `ifm`/`weights` do not match the layer's shapes (same
/// contract as the golden reference).
#[must_use]
pub fn functional_ofm(layer: &ConvLayer, ifm: &Tensor, weights: &Tensor) -> Tensor {
    match layer.kind() {
        ConvKind::Pointwise => pointwise_ofm(layer, ifm, weights),
        ConvKind::Depthwise => depthwise_ofm(layer, ifm, weights),
        ConvKind::Standard => standard_ofm(layer, ifm, weights),
    }
}

/// Flush an accumulator plane into output channel `o`.
fn store_plane(layer: &ConvLayer, out: &mut Tensor, o: usize, accs: &[Acc]) {
    let act = layer.activation();
    let base = out.index(o, 0, 0);
    for (dst, &a) in out.as_mut_slice()[base..base + accs.len()].iter_mut().zip(accs) {
        *dst = truncate(act.apply_acc(a));
    }
}

fn pointwise_ofm(layer: &ConvLayer, ifm: &Tensor, weights: &Tensor) -> Tensor {
    let (ni, no) = (layer.in_channels(), layer.out_channels());
    let (h, w) = (layer.out_h(), layer.out_w());
    let hw = h * w;
    let x = ifm.as_slice();
    let mut out = Tensor::zeros(no, h, w);
    let mut accs: Vec<Acc> = vec![0; hw];
    for o in 0..no {
        accs.fill(0);
        for i in 0..ni {
            let wv = Acc::from(weights.get(o, 0, i));
            if wv == 0 {
                // A zero weight contributes exactly 0 to the wrapping sum.
                continue;
            }
            let plane = &x[ifm.index(i, 0, 0)..][..hw];
            for (alane, xlane) in accs.chunks_mut(LANE).zip(plane.chunks(LANE)) {
                for (a, &xv) in alane.iter_mut().zip(xlane) {
                    *a = a.wrapping_add(Acc::from(xv).wrapping_mul(wv));
                }
            }
        }
        store_plane(layer, &mut out, o, &accs);
    }
    out
}

/// Accumulate one kernel tap (`ky`, `kx`) of input channel `c`, weighted
/// `wv`, into the `oh`×`ow` accumulator plane. The valid output range is
/// hoisted out of the inner loop so the zero-padding border costs nothing
/// and the stride-1 common case is a straight slice zip.
#[allow(clippy::too_many_arguments)]
fn accumulate_tap(accs: &mut [Acc], layer: &ConvLayer, x: &[Word], ifm: &Tensor, c: usize, wv: Acc, ky: usize, kx: usize) {
    let (s, pad) = (layer.s(), layer.pad());
    let (ih, iw) = (layer.in_h() as isize, layer.in_w() as isize);
    let (oh, ow) = (layer.out_h(), layer.out_w());
    let off_x = kx as isize - pad as isize;
    // Valid ox range: 0 <= ox*s + off_x < iw.
    let lo_x = if off_x >= 0 {
        0
    } else {
        usize::try_from(-off_x).expect("positive").div_ceil(s)
    };
    let hi_x = if iw <= off_x {
        0
    } else {
        (usize::try_from(iw - 1 - off_x).expect("positive") / s + 1).min(ow)
    };
    if lo_x >= hi_x {
        return;
    }
    for (oy, arow) in accs.chunks_exact_mut(ow).enumerate().take(oh) {
        let iy = (oy * s + ky) as isize - pad as isize;
        if iy < 0 || iy >= ih {
            continue;
        }
        let row = ifm.index(c, usize::try_from(iy).expect("in range"), 0);
        let arow = &mut arow[lo_x..hi_x];
        let first_ix = usize::try_from((lo_x * s) as isize + off_x).expect("in range");
        if s == 1 {
            let xrow = &x[row + first_ix..][..arow.len()];
            for (a, &xv) in arow.iter_mut().zip(xrow) {
                *a = a.wrapping_add(Acc::from(xv).wrapping_mul(wv));
            }
        } else {
            for (j, a) in arow.iter_mut().enumerate() {
                *a = a.wrapping_add(Acc::from(x[row + first_ix + j * s]).wrapping_mul(wv));
            }
        }
    }
}

fn depthwise_ofm(layer: &ConvLayer, ifm: &Tensor, weights: &Tensor) -> Tensor {
    let ch = layer.in_channels();
    let k = layer.k();
    let (oh, ow) = (layer.out_h(), layer.out_w());
    let x = ifm.as_slice();
    let mut out = Tensor::zeros(ch, oh, ow);
    let mut accs: Vec<Acc> = vec![0; oh * ow];
    for c in 0..ch {
        accs.fill(0);
        for ky in 0..k {
            for kx in 0..k {
                let wv = Acc::from(weights.get(c, ky, kx));
                if wv == 0 {
                    continue;
                }
                accumulate_tap(&mut accs, layer, x, ifm, c, wv, ky, kx);
            }
        }
        store_plane(layer, &mut out, c, &accs);
    }
    out
}

fn standard_ofm(layer: &ConvLayer, ifm: &Tensor, weights: &Tensor) -> Tensor {
    let groups = layer.groups();
    let cin_g = layer.in_channels() / groups;
    let cout_g = layer.out_channels() / groups;
    let k = layer.k();
    let (oh, ow) = (layer.out_h(), layer.out_w());
    let x = ifm.as_slice();
    let mut out = Tensor::zeros(layer.out_channels(), oh, ow);
    let mut accs: Vec<Acc> = vec![0; oh * ow];
    for o in 0..layer.out_channels() {
        accs.fill(0);
        let grp = o / cout_g;
        for ci in 0..cin_g {
            let c = grp * cin_g + ci;
            for ky in 0..k {
                for kx in 0..k {
                    let wv = Acc::from(weights.get(o, ky, kx * cin_g + ci));
                    if wv == 0 {
                        continue;
                    }
                    accumulate_tap(&mut accs, layer, x, ifm, c, wv, ky, kx);
                }
            }
        }
        store_plane(layer, &mut out, o, &accs);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Fault;
    use crate::layer::MappingKind;
    use crate::machine::Machine;
    use npcgra_nn::{reference, Activation};

    fn spec4() -> CgraSpec {
        CgraSpec::np_cgra(4, 4)
    }

    fn layers() -> Vec<ConvLayer> {
        vec![
            ConvLayer::pointwise("pw", 12, 10, 6, 7),
            ConvLayer::pointwise("pw.relu", 9, 7, 5, 5).with_activation(Activation::Relu),
            ConvLayer::depthwise("dw.s1", 3, 11, 13, 3, 1, 1),
            ConvLayer::depthwise("dw.s2", 2, 12, 12, 3, 2, 1),
            ConvLayer::depthwise("dw.k5", 2, 14, 14, 5, 1, 2),
            ConvLayer::depthwise("dw.relu", 4, 10, 10, 3, 1, 1).with_activation(Activation::Relu),
        ]
    }

    #[test]
    fn functional_ofm_matches_reference_on_all_kinds() {
        let mut all = layers();
        all.push(ConvLayer::standard("std", 3, 4, 8, 8, 3, 1, 1, 1));
        all.push(ConvLayer::standard("std.g2", 4, 6, 9, 9, 3, 2, 1, 2).with_activation(Activation::Relu));
        for layer in all {
            let ifm = Tensor::random(layer.in_channels(), layer.in_h(), layer.in_w(), 5);
            let w = layer.random_weights(6);
            let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
            assert_eq!(functional_ofm(&layer, &ifm, &w), golden, "{}", layer.name());
        }
    }

    #[test]
    fn fast_tier_matches_cycle_tier_outputs_and_cycles() {
        for layer in layers() {
            let ifm = Tensor::random(layer.in_channels(), layer.in_h(), layer.in_w(), 7);
            let w = layer.random_weights(8);
            let compiled = CompiledLayer::compile(&layer, &spec4(), MappingKind::Auto).unwrap();
            let (slow, rs) = compiled.run_on(&mut Machine::new(&spec4()), &ifm, &w).unwrap();
            let mut fast = FastMachine::new(&spec4());
            let (quick, rf) = fast.run_layer(&compiled, &ifm, &w).unwrap();
            assert_eq!(quick, slow, "{}", layer.name());
            assert_eq!(rf.cycles, rs.cycles, "{}", layer.name());
            assert_eq!(rf.compute_cycles, rs.compute_cycles, "{}", layer.name());
            assert_eq!(rf.dma_cycles, rs.dma_cycles, "{}", layer.name());
            assert_eq!(rf.macs, rs.macs, "{}", layer.name());
        }
    }

    #[test]
    fn fast_tier_charge_equals_the_closed_form_timing_report() {
        for layer in layers() {
            let ifm = Tensor::random(layer.in_channels(), layer.in_h(), layer.in_w(), 9);
            let w = layer.random_weights(10);
            let compiled = CompiledLayer::compile(&layer, &spec4(), MappingKind::Auto).unwrap();
            let (_, rf) = FastMachine::new(&spec4()).run_layer(&compiled, &ifm, &w).unwrap();
            let timed = compiled.timing_report();
            assert_eq!(rf.cycles, timed.cycles, "{}", layer.name());
            assert_eq!(rf.compute_cycles, timed.compute_cycles, "{}", layer.name());
        }
    }

    #[test]
    fn structural_fault_is_caught_by_abft_and_retries_independently() {
        let layer = ConvLayer::pointwise("pw", 8, 8, 4, 4);
        let compiled = CompiledLayer::compile(&layer, &spec4(), MappingKind::Auto).unwrap();
        let ifm = Tensor::random(8, 4, 4, 1);
        let w = layer.random_weights(2);
        let mut fast = FastMachine::new(&spec4());
        fast.set_fault_plan(Some(FaultPlan::explicit(vec![Fault {
            tile: 0,
            cycle: 1,
            site: FaultSite::PeOutBit { r: 0, c: 0, bit: 3 },
        }])));
        fast.set_integrity_mode(IntegrityMode::Verify);
        let err = fast.run_layer(&compiled, &ifm, &w).unwrap_err();
        assert!(matches!(err.cause, SimCause::IntegrityViolation(_)), "got {err}");
        assert!(fast.faults_injected() > 0);
    }

    #[test]
    fn recompute_mode_heals_fast_tier_corruption() {
        let layer = ConvLayer::depthwise("dw", 3, 8, 8, 3, 1, 1);
        let compiled = CompiledLayer::compile(&layer, &spec4(), MappingKind::Auto).unwrap();
        let ifm = Tensor::random(3, 8, 8, 3);
        let w = layer.random_weights(4);
        let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
        let mut fast = FastMachine::new(&spec4());
        fast.set_fault_plan(Some(FaultPlan::explicit(vec![Fault {
            tile: 0,
            cycle: 0,
            site: FaultSite::HBankBit {
                bank: 1,
                offset: 2,
                bit: 7,
            },
        }])));
        fast.set_integrity_mode(IntegrityMode::VerifyAndRecompute);
        let (ofm, report) = fast.run_layer(&compiled, &ifm, &w).unwrap();
        assert_eq!(ofm, golden, "healed output is golden");
        assert!(report.integrity_recovered > 0);
    }

    #[test]
    fn cycle_budget_semantics_match_the_cycle_tier_exactly() {
        let layer = ConvLayer::pointwise("pw", 8, 8, 4, 4);
        let compiled = CompiledLayer::compile(&layer, &spec4(), MappingKind::Auto).unwrap();
        let ifm = Tensor::random(8, 4, 4, 1);
        let w = layer.random_weights(2);
        let block = compiled.block_compute_cycles();
        // Budget == block cycles: both tiers finish (checks see 0..C-1).
        let mut fast = FastMachine::new(&spec4());
        fast.set_cycle_budget(Some(block));
        assert!(fast.run_layer(&compiled, &ifm, &w).is_ok());
        let mut machine = Machine::new(&spec4());
        machine.set_cycle_budget(Some(block));
        assert!(compiled.run_on(&mut machine, &ifm, &w).is_ok());
        // Budget == block - 2: both tiers fail with the same cause.
        let tight = block - 2;
        let mut fast = FastMachine::new(&spec4());
        fast.set_cycle_budget(Some(tight));
        let ef = fast.run_layer(&compiled, &ifm, &w).unwrap_err();
        let mut machine = Machine::new(&spec4());
        machine.set_cycle_budget(Some(tight));
        let em = compiled.run_on(&mut machine, &ifm, &w).unwrap_err();
        assert_eq!(ef.cause, em.cause);
        assert_eq!(ef.cause, SimCause::CycleBudgetExceeded { budget: tight });
    }

    #[test]
    fn wedge_is_broken_by_cancel_token() {
        let layer = ConvLayer::pointwise("pw", 8, 8, 4, 4);
        let compiled = CompiledLayer::compile(&layer, &spec4(), MappingKind::Auto).unwrap();
        let ifm = Tensor::random(8, 4, 4, 1);
        let w = layer.random_weights(2);
        let mut fast = FastMachine::new(&spec4());
        fast.set_fault_plan(Some(FaultPlan::explicit(vec![Fault {
            tile: 0,
            cycle: 1,
            site: FaultSite::Temporal(TemporalFault::Wedge),
        }])));
        let token = CancelToken::new();
        fast.set_cancel_token(Some(token.clone()));
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            token.cancel();
        });
        let err = fast.run_layer(&compiled, &ifm, &w).unwrap_err();
        canceller.join().unwrap();
        assert_eq!(err.cause, SimCause::Cancelled);
        assert_eq!(fast.temporal_injected(), 1);
    }

    #[test]
    fn stall_inflates_the_charge_but_not_the_values() {
        let layer = ConvLayer::pointwise("pw", 8, 8, 4, 4);
        let compiled = CompiledLayer::compile(&layer, &spec4(), MappingKind::Auto).unwrap();
        let ifm = Tensor::random(8, 4, 4, 1);
        let w = layer.random_weights(2);
        let (clean_ofm, clean) = FastMachine::new(&spec4()).run_layer(&compiled, &ifm, &w).unwrap();
        let mut fast = FastMachine::new(&spec4());
        fast.set_fault_plan(Some(FaultPlan::explicit(vec![Fault {
            tile: 0,
            cycle: 2,
            site: FaultSite::Temporal(TemporalFault::Stall { cycles: 37 }),
        }])));
        let (ofm, stalled) = fast.run_layer(&compiled, &ifm, &w).unwrap();
        assert_eq!(ofm, clean_ofm, "a stall loses time, not data");
        assert_eq!(
            stalled.compute_cycles,
            clean.compute_cycles + 37 * compiled.num_blocks() as u64,
            "explicit faults repeat per block"
        );
        assert_eq!(fast.faults_injected(), 0);
    }
}
