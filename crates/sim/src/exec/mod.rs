//! Tiered execution backends.
//!
//! The repro has two ways to run a [`CompiledLayer`]:
//!
//! * the **cycle-accurate tier** — the existing [`Machine`], where every
//!   load crosses a bus and every cycle is arbitrated. This is the golden
//!   tier: it validates the mapping stack and calibrates everything else.
//! * the **functional fast tier** — [`FastMachine`], which replays the
//!   compiled schedule as straight-line tensor arithmetic (bit-exact
//!   outputs) and *charges* cycles from the paper's closed-form latency
//!   models (`N_i + λ` for DWC, `K² + N_c − 1 + λ` for PWC) instead of
//!   simulating them. [`CompiledLayer::timing_report`] proves the two
//!   charges agree exactly on fault-free runs, so `LayerReport` stays
//!   meaningful for watchdogs, cost models and stats.
//!
//! [`ExecutionBackend`] is the common face: the serving stack holds a
//! `Box<dyn ExecutionBackend>` per shard and selects the tier from
//! configuration ([`backend_for`]). Both tiers speak the same chaos
//! dialect — fault plans, integrity modes, cancel tokens, cycle budgets —
//! so every resilience mechanism above them keeps working unchanged.

use std::fmt;
use std::str::FromStr;

use npcgra_arch::CgraSpec;
use npcgra_nn::Tensor;

use crate::cancel::CancelToken;
use crate::compiled::CompiledLayer;
use crate::error::SimError;
use crate::fault::FaultPlan;
use crate::integrity::IntegrityMode;
use crate::machine::Machine;
use crate::report::LayerReport;

mod fast;

pub use fast::{functional_ofm, FastMachine};

/// Which execution tier backs a shard or a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum BackendTier {
    /// The cycle-accurate [`Machine`]: every cycle simulated. The default —
    /// untouched configurations behave exactly as before the tiers existed.
    #[default]
    CycleAccurate,
    /// The functional [`FastMachine`]: bit-exact outputs, analytically
    /// charged cycles.
    Fast,
}

impl BackendTier {
    /// Number of tiers (for per-tier arrays indexed by [`BackendTier::index`]).
    pub const COUNT: usize = 2;

    /// Every tier, in [`BackendTier::index`] order.
    pub const ALL: [BackendTier; Self::COUNT] = [BackendTier::CycleAccurate, BackendTier::Fast];

    /// A dense index for per-tier tables: `CycleAccurate` = 0, `Fast` = 1.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            BackendTier::CycleAccurate => 0,
            BackendTier::Fast => 1,
        }
    }

    /// Stable lower-case name (the CLI flag vocabulary).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            BackendTier::CycleAccurate => "cycle-accurate",
            BackendTier::Fast => "fast",
        }
    }
}

impl fmt::Display for BackendTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for BackendTier {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "cycle" | "cycle-accurate" | "accurate" | "golden" => Ok(BackendTier::CycleAccurate),
            "fast" | "functional" => Ok(BackendTier::Fast),
            other => Err(format!(
                "unknown backend tier '{other}' (expected 'cycle-accurate' or 'fast')"
            )),
        }
    }
}

/// A machine-shaped thing that can run compiled layers.
///
/// Both tiers implement this; the serving stack programs them identically
/// (fault plans, integrity mode, cancellation, cycle budgets) and reads the
/// same counters back, so tier selection is invisible to everything above
/// the shard.
pub trait ExecutionBackend: Send {
    /// Which tier this backend is.
    fn tier(&self) -> BackendTier;

    /// The machine specification this backend was built from.
    fn spec(&self) -> &CgraSpec;

    /// Install (or clear) a transient-fault schedule (see
    /// [`Machine::set_fault_plan`]).
    fn set_fault_plan(&mut self, plan: Option<FaultPlan>);

    /// Set the ABFT output-verification mode (see
    /// [`Machine::set_integrity_mode`]).
    fn set_integrity_mode(&mut self, mode: IntegrityMode);

    /// The ABFT output-verification mode in effect.
    fn integrity_mode(&self) -> IntegrityMode;

    /// Install (or clear) a cooperative cancellation token (see
    /// [`Machine::set_cancel_token`]).
    fn set_cancel_token(&mut self, token: Option<CancelToken>);

    /// Install (or clear) a per-block-run compute-cycle budget (see
    /// [`Machine::set_cycle_budget`]).
    fn set_cycle_budget(&mut self, budget: Option<u64>);

    /// Structural faults actually applied so far.
    fn faults_injected(&self) -> u64;

    /// Temporal (gray) faults executed so far.
    fn temporal_injected(&self) -> u64;

    /// Run a compiled layer functionally, returning the OFM and report.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] exactly as [`CompiledLayer::run_on`] does:
    /// hardware-rule violations (cycle tier), integrity violations under
    /// [`IntegrityMode::Verify`], cancellation, and cycle-budget overruns.
    fn run_layer(&mut self, compiled: &CompiledLayer, ifm: &Tensor, weights: &Tensor) -> Result<(Tensor, LayerReport), SimError>;
}

impl ExecutionBackend for Machine {
    fn tier(&self) -> BackendTier {
        BackendTier::CycleAccurate
    }

    fn spec(&self) -> &CgraSpec {
        self.spec()
    }

    fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        Machine::set_fault_plan(self, plan);
    }

    fn set_integrity_mode(&mut self, mode: IntegrityMode) {
        Machine::set_integrity_mode(self, mode);
    }

    fn integrity_mode(&self) -> IntegrityMode {
        Machine::integrity_mode(self)
    }

    fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        Machine::set_cancel_token(self, token);
    }

    fn set_cycle_budget(&mut self, budget: Option<u64>) {
        Machine::set_cycle_budget(self, budget);
    }

    fn faults_injected(&self) -> u64 {
        Machine::faults_injected(self)
    }

    fn temporal_injected(&self) -> u64 {
        Machine::temporal_injected(self)
    }

    fn run_layer(&mut self, compiled: &CompiledLayer, ifm: &Tensor, weights: &Tensor) -> Result<(Tensor, LayerReport), SimError> {
        compiled.run_on(self, ifm, weights)
    }
}

/// Build a boxed backend of the requested tier for `spec`.
#[must_use]
pub fn backend_for(tier: BackendTier, spec: &CgraSpec) -> Box<dyn ExecutionBackend> {
    match tier {
        BackendTier::CycleAccurate => Box::new(Machine::new(spec)),
        BackendTier::Fast => Box::new(FastMachine::new(spec)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_parses_both_vocabularies() {
        assert_eq!("cycle-accurate".parse::<BackendTier>().unwrap(), BackendTier::CycleAccurate);
        assert_eq!("cycle".parse::<BackendTier>().unwrap(), BackendTier::CycleAccurate);
        assert_eq!("fast".parse::<BackendTier>().unwrap(), BackendTier::Fast);
        assert_eq!("FUNCTIONAL".parse::<BackendTier>().unwrap(), BackendTier::Fast);
        assert!("warp-speed".parse::<BackendTier>().is_err());
    }

    #[test]
    fn tier_display_round_trips() {
        for tier in [BackendTier::CycleAccurate, BackendTier::Fast] {
            assert_eq!(tier.to_string().parse::<BackendTier>().unwrap(), tier);
        }
    }

    #[test]
    fn default_tier_is_cycle_accurate() {
        assert_eq!(BackendTier::default(), BackendTier::CycleAccurate);
        assert_eq!(BackendTier::default().index(), 0);
    }

    #[test]
    fn backend_for_builds_the_requested_tier() {
        let spec = CgraSpec::np_cgra(4, 4);
        assert_eq!(
            backend_for(BackendTier::CycleAccurate, &spec).tier(),
            BackendTier::CycleAccurate
        );
        assert_eq!(backend_for(BackendTier::Fast, &spec).tier(), BackendTier::Fast);
    }
}
