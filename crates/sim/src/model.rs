//! Whole-model compilation: an ordered chain of [`CompiledLayer`]s
//! partitioned into balanced pipeline stages.
//!
//! The paper maps one DWC or PWC layer onto one NP-CGRA array; serving a
//! whole MobileNet chains layers across shards. [`CompiledModel`] is the
//! compile-once product of that chaining:
//!
//! * **Chain validation** — each layer's IFM shape must equal its
//!   predecessor's OFM shape, so the model is runnable end-to-end by
//!   construction.
//! * **DWC→PWC fusion** — a depthwise layer immediately followed by its
//!   pointwise companion (the depthwise-separable block) becomes one
//!   *scheduling unit*: a stage boundary never separates the pair, so the
//!   DSC block's intermediate activation stays on-shard and is never
//!   forwarded through external memory.
//! * **Balanced partition** — units are split into `num_stages` contiguous
//!   stages minimizing the maximum per-stage predicted cycles, where each
//!   unit's cost comes from the §5 closed-form latency models
//!   ([`CompiledLayer::timing_report`] — proven equal to the functional
//!   charge). The bottleneck stage sets pipeline throughput, so minimizing
//!   the max is minimizing the initiation interval.
//! * **Handoff accounting** — inter-stage activations travel through the
//!   external-memory/DMA model: the producing stage writes its OFM words
//!   out and the consuming stage reads them back, each priced by
//!   [`DmaEngine::transfer_cycles`].

use std::ops::Range;
use std::sync::Arc;

use npcgra_arch::CgraSpec;
use npcgra_mem::DmaEngine;
use npcgra_nn::{ConvKind, ConvLayer};

use crate::compiled::CompiledLayer;
use crate::error::{SimCause, SimError};
use crate::layer::MappingKind;

/// One pipeline stage of a [`CompiledModel`]: a contiguous run of layers,
/// its predicted cost, and the words it forwards to the next stage.
#[derive(Debug, Clone)]
pub struct StagePlan {
    layers: Range<usize>,
    predicted_cycles: u64,
    handoff_words: u64,
}

impl StagePlan {
    /// The layer indices `[start, end)` this stage executes, in order.
    #[must_use]
    pub fn layers(&self) -> Range<usize> {
        self.layers.clone()
    }

    /// Predicted pipelined cycles for the stage (sum of its layers'
    /// closed-form [`CompiledLayer::timing_report`] cycles).
    #[must_use]
    pub fn predicted_cycles(&self) -> u64 {
        self.predicted_cycles
    }

    /// Activation words this stage forwards to its successor through
    /// external memory (zero for the final stage).
    #[must_use]
    pub fn handoff_words(&self) -> u64 {
        self.handoff_words
    }
}

/// A whole model compiled for pipelined execution: an ordered, chain-valid
/// sequence of [`CompiledLayer`]s, DWC→PWC pairs fused into indivisible
/// scheduling units, partitioned into balanced stages.
///
/// Cloning is cheap: the compiled layers are shared behind [`Arc`]s.
#[derive(Clone)]
pub struct CompiledModel {
    name: String,
    spec: CgraSpec,
    layers: Vec<Arc<CompiledLayer>>,
    /// Fused scheduling units as contiguous layer ranges (stage boundaries
    /// are chosen between units, never inside one).
    units: Vec<Range<usize>>,
    stages: Vec<StagePlan>,
}

fn chain_err(name: &str, index: usize, msg: String) -> SimError {
    SimError::new(&format!("{name}[{index}]"), 0, 0, SimCause::Map(msg))
}

impl CompiledModel {
    /// Compile `layers` as a pipeline over `spec`, partitioned into (at
    /// most) `num_stages` balanced stages.
    ///
    /// `num_stages` is clamped to `[1, number of fused units]` — a stage
    /// must hold at least one whole unit.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when `layers` is empty, when a layer's input
    /// shape does not match its predecessor's output shape, or when any
    /// layer fails to compile (standard convolutions have no direct
    /// mapping and are rejected, exactly as [`CompiledLayer::compile`]
    /// rejects them).
    pub fn compile(name: &str, layers: &[ConvLayer], spec: &CgraSpec, num_stages: usize) -> Result<Self, SimError> {
        if layers.is_empty() {
            return Err(chain_err(name, 0, "a model needs at least one layer".to_string()));
        }
        for (i, pair) in layers.windows(2).enumerate() {
            let produced = (pair[0].out_channels(), pair[0].out_h(), pair[0].out_w());
            let consumed = (pair[1].in_channels(), pair[1].in_h(), pair[1].in_w());
            if produced != consumed {
                return Err(chain_err(
                    name,
                    i + 1,
                    format!(
                        "layer '{}' consumes {consumed:?} but '{}' produces {produced:?}",
                        pair[1].name(),
                        pair[0].name()
                    ),
                ));
            }
        }
        let compiled: Vec<Arc<CompiledLayer>> = layers
            .iter()
            .map(|l| CompiledLayer::compile(l, spec, MappingKind::Auto).map(Arc::new))
            .collect::<Result<_, _>>()?;

        // DWC→PWC fusion: a depthwise layer immediately followed by a
        // pointwise one forms one indivisible unit (the DSC block).
        let mut units: Vec<Range<usize>> = Vec::new();
        let mut i = 0;
        while i < layers.len() {
            let fused =
                layers[i].kind() == ConvKind::Depthwise && layers.get(i + 1).is_some_and(|n| n.kind() == ConvKind::Pointwise);
            let end = if fused { i + 2 } else { i + 1 };
            units.push(i..end);
            i = end;
        }

        let unit_cycles: Vec<u64> = units
            .iter()
            .map(|u| u.clone().map(|l| compiled[l].timing_report().cycles).sum())
            .collect();
        let cuts = balanced_partition(&unit_cycles, num_stages.clamp(1, units.len()));

        let stages: Vec<StagePlan> = cuts
            .iter()
            .map(|unit_range| {
                let first_layer = units[unit_range.start].start;
                let last_layer = units[unit_range.end - 1].end;
                let last = &layers[last_layer - 1];
                StagePlan {
                    layers: first_layer..last_layer,
                    predicted_cycles: unit_cycles[unit_range.clone()].iter().sum(),
                    handoff_words: if last_layer == layers.len() {
                        0
                    } else {
                        (last.out_channels() * last.out_h() * last.out_w()) as u64
                    },
                }
            })
            .collect();

        Ok(CompiledModel {
            name: name.to_string(),
            spec: *spec,
            layers: compiled,
            units,
            stages,
        })
    }

    /// The model's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The machine spec every stage shard must be built from.
    #[must_use]
    pub fn spec(&self) -> &CgraSpec {
        &self.spec
    }

    /// Number of layers in the chain.
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Number of fused scheduling units.
    #[must_use]
    pub fn num_units(&self) -> usize {
        self.units.len()
    }

    /// Number of pipeline stages the model was partitioned into.
    #[must_use]
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// The compiled program of layer `i`.
    #[must_use]
    pub fn layer(&self, i: usize) -> &Arc<CompiledLayer> {
        &self.layers[i]
    }

    /// The stage plans, in pipeline order.
    #[must_use]
    pub fn stages(&self) -> &[StagePlan] {
        &self.stages
    }

    /// The fused scheduling units as contiguous layer ranges.
    #[must_use]
    pub fn units(&self) -> &[Range<usize>] {
        &self.units
    }

    /// The model's IFM shape `(channels, height, width)`.
    #[must_use]
    pub fn input_shape(&self) -> (usize, usize, usize) {
        let first = self.layers[0].layer();
        (first.in_channels(), first.in_h(), first.in_w())
    }

    /// The model's final OFM shape `(channels, height, width)`.
    #[must_use]
    pub fn output_shape(&self) -> (usize, usize, usize) {
        let last = self.layers[self.layers.len() - 1].layer();
        (last.out_channels(), last.out_h(), last.out_w())
    }

    /// Predicted cycles of the whole chain (sum over stages).
    #[must_use]
    pub fn predicted_cycles(&self) -> u64 {
        self.stages.iter().map(StagePlan::predicted_cycles).sum()
    }

    /// DMA cycles to forward stage `s`'s output activation to stage `s+1`
    /// through external memory: the producer writes the words out, the
    /// consumer reads them back — two [`DmaEngine::transfer_cycles`]
    /// passes. Zero for the final stage (the reply leaves the pipeline).
    #[must_use]
    pub fn handoff_cycles(&self, s: usize) -> u64 {
        let words = self.stages[s].handoff_words;
        if words == 0 {
            return 0;
        }
        let engine = DmaEngine::new(&self.spec);
        2 * engine.transfer_cycles(words)
    }
}

impl std::fmt::Debug for CompiledModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledModel")
            .field("name", &self.name)
            .field("layers", &self.layers.len())
            .field("units", &self.units.len())
            .field("stages", &self.stages.len())
            .field("predicted_cycles", &self.predicted_cycles())
            .finish()
    }
}

/// Partition `costs` into `parts` contiguous ranges minimizing the maximum
/// range sum (the classic linear-partition DP): `best[k][i]` is the
/// minimal achievable bottleneck for the first `i` items in `k` parts.
/// Returns the ranges in order; every range is non-empty.
fn balanced_partition(costs: &[u64], parts: usize) -> Vec<Range<usize>> {
    let n = costs.len();
    let parts = parts.clamp(1, n);
    let mut prefix = vec![0u64; n + 1];
    for (i, &c) in costs.iter().enumerate() {
        prefix[i + 1] = prefix[i] + c;
    }
    let sum = |a: usize, b: usize| prefix[b] - prefix[a];

    // best[k][i]: minimal bottleneck splitting costs[..i] into k parts;
    // cut[k][i]: the start of the last part in that optimum.
    let mut best = vec![vec![u64::MAX; n + 1]; parts + 1];
    let mut cut = vec![vec![0usize; n + 1]; parts + 1];
    best[0][0] = 0;
    for k in 1..=parts {
        for i in k..=n {
            for j in (k - 1)..i {
                if best[k - 1][j] == u64::MAX {
                    continue;
                }
                let bottleneck = best[k - 1][j].max(sum(j, i));
                if bottleneck < best[k][i] {
                    best[k][i] = bottleneck;
                    cut[k][i] = j;
                }
            }
        }
    }

    let mut ranges = Vec::with_capacity(parts);
    let mut end = n;
    for k in (1..=parts).rev() {
        let start = cut[k][end];
        ranges.push(start..end);
        end = start;
    }
    ranges.reverse();
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use npcgra_nn::{models, reference, Tensor};

    fn spec4() -> CgraSpec {
        CgraSpec::np_cgra(4, 4)
    }

    /// A small hand-built DSC chain: dw→pw, dw→pw, pw.
    fn chain() -> Vec<ConvLayer> {
        vec![
            ConvLayer::depthwise("dw1", 4, 8, 8, 3, 1, 1),
            ConvLayer::pointwise("pw1", 4, 6, 8, 8),
            ConvLayer::depthwise("dw2", 6, 8, 8, 3, 2, 1),
            ConvLayer::pointwise("pw2", 6, 8, 4, 4),
            ConvLayer::pointwise("pw3", 8, 8, 4, 4),
        ]
    }

    #[test]
    fn balanced_partition_minimizes_the_bottleneck() {
        assert_eq!(balanced_partition(&[1, 1, 1, 1], 2), vec![0..2, 2..4]);
        // The optimal 2-split of [9, 1, 1, 1] is [9] | [1, 1, 1].
        assert_eq!(balanced_partition(&[9, 1, 1, 1], 2), vec![0..1, 1..4]);
        // More parts than items clamps: each item its own part.
        assert_eq!(balanced_partition(&[5, 7], 4), vec![0..1, 1..2]);
        // One part swallows everything.
        assert_eq!(balanced_partition(&[3, 1, 4], 1), vec![0..3]);
    }

    #[test]
    fn compile_validates_the_chain() {
        let spec = spec4();
        let model = CompiledModel::compile("m", &chain(), &spec, 3).unwrap();
        assert_eq!(model.num_layers(), 5);
        assert_eq!(model.num_units(), 3, "two DSC pairs plus one lone pw");
        assert_eq!(model.input_shape(), (4, 8, 8));
        assert_eq!(model.output_shape(), (8, 4, 4));

        // A broken chain is rejected with the offending layer named.
        let mut bad = chain();
        bad[2] = ConvLayer::depthwise("dw2", 7, 8, 8, 3, 2, 1);
        let err = CompiledModel::compile("m", &bad, &spec, 2).unwrap_err();
        assert!(err.to_string().contains("dw2"), "{err}");

        // Empty models and standard convolutions are rejected.
        assert!(CompiledModel::compile("m", &[], &spec, 1).is_err());
        let std_conv = vec![ConvLayer::standard("c", 3, 4, 8, 8, 3, 1, 1, 1)];
        assert!(CompiledModel::compile("m", &std_conv, &spec, 1).is_err());
    }

    #[test]
    fn fusion_never_splits_a_dsc_pair() {
        let spec = spec4();
        for stages in 1..=3 {
            let model = CompiledModel::compile("m", &chain(), &spec, stages).unwrap();
            for plan in model.stages() {
                let r = plan.layers();
                // Boundaries land on unit edges: some unit starts exactly at
                // r.start and some unit ends exactly at r.end.
                assert!(model.units().iter().any(|u| u.start == r.start), "{stages} stages: {r:?}");
                assert!(model.units().iter().any(|u| u.end == r.end), "{stages} stages: {r:?}");
            }
        }
    }

    #[test]
    fn stages_cover_the_chain_in_order() {
        let spec = spec4();
        let model = CompiledModel::compile("m", &chain(), &spec, 2).unwrap();
        let mut next = 0;
        for plan in model.stages() {
            assert_eq!(plan.layers().start, next, "stages are contiguous and ordered");
            assert!(!plan.layers().is_empty());
            next = plan.layers().end;
        }
        assert_eq!(next, model.num_layers());
        assert_eq!(
            model.predicted_cycles(),
            model.stages().iter().map(StagePlan::predicted_cycles).sum::<u64>()
        );
    }

    #[test]
    fn partition_is_balanced_by_predicted_cycles() {
        let spec = spec4();
        let model = CompiledModel::compile("m", &chain(), &spec, 2).unwrap();
        let max = model.stages().iter().map(StagePlan::predicted_cycles).max().unwrap();
        // The bottleneck stage must beat the degenerate everything-in-one
        // partition; with balanced costs it sits well under the total.
        assert!(max < model.predicted_cycles(), "partition left one stage with all the work");
    }

    #[test]
    fn handoff_cycles_price_the_boundary_tensors() {
        let spec = spec4();
        let model = CompiledModel::compile("m", &chain(), &spec, 3).unwrap();
        let engine = DmaEngine::new(&spec);
        for (s, plan) in model.stages().iter().enumerate() {
            if s + 1 == model.num_stages() {
                assert_eq!(plan.handoff_words(), 0, "the last stage forwards nothing");
                assert_eq!(model.handoff_cycles(s), 0);
            } else {
                let last = model.layer(plan.layers().end - 1).layer();
                let words = (last.out_channels() * last.out_h() * last.out_w()) as u64;
                assert_eq!(plan.handoff_words(), words);
                assert_eq!(
                    model.handoff_cycles(s),
                    2 * engine.transfer_cycles(words),
                    "write + read back"
                );
            }
        }
    }

    #[test]
    fn mobilenet_v1_dsc_chain_compiles_and_partitions() {
        let table = models::mobilenet_v1(0.25, 32);
        let layers: Vec<ConvLayer> = table.dsc_layers().cloned().collect();
        let model = CompiledModel::compile("mobilenet_v1", &layers, &spec4(), 4).unwrap();
        assert_eq!(model.num_stages(), 4);
        assert_eq!(model.num_layers(), layers.len());
        // Every unit is a fused dw→pw pair in v1's DSC chain.
        assert!(model.units().iter().all(|u| u.len() == 2));
        let max = model.stages().iter().map(StagePlan::predicted_cycles).max().unwrap();
        assert!(
            (max as f64) < model.predicted_cycles() as f64 * 0.6,
            "4-way partition should cut the bottleneck well below the serial total \
             (bottleneck {max}, total {})",
            model.predicted_cycles()
        );
    }

    #[test]
    fn chained_execution_matches_the_golden_reference() {
        let spec = spec4();
        let layers = chain();
        let model = CompiledModel::compile("m", &layers, &spec, 2).unwrap();
        let weights: Vec<Tensor> = layers
            .iter()
            .enumerate()
            .map(|(i, l)| l.random_weights(40 + i as u64))
            .collect();
        let input = Tensor::random(4, 8, 8, 99);

        let mut machine = crate::machine::Machine::new(&spec);
        let mut activation = input.clone();
        for (i, compiled) in (0..model.num_layers()).map(|i| (i, model.layer(i))) {
            let (out, _) = compiled.run_on(&mut machine, &activation, &weights[i]).unwrap();
            activation = out;
        }

        let mut golden = input;
        for (layer, w) in layers.iter().zip(&weights) {
            golden = reference::run_layer(layer, &golden, w).unwrap();
        }
        assert_eq!(activation, golden, "chained compiled execution diverged from the reference");
    }
}
