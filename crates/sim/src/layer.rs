//! Whole-layer execution: functional and timing-only.
//!
//! Every entry point here is a thin wrapper over [`CompiledLayer`]: compile
//! the layer onto the spec once, then run it functionally (materializing
//! every block on the [`Machine`] and assembling the OFM tensor) or
//! timing-only (same block geometry and DMA model without touching data —
//! the two agree cycle-for-cycle by construction, which the test suite
//! asserts). Both account the double-buffered block pipeline of Table 4's
//! two memory sets via [`npcgra_mem::dma::double_buffered_cycles_exact`].

use npcgra_arch::CgraSpec;
use npcgra_kernels::pwc::MapError;
use npcgra_mem::DmaEngine;
use npcgra_nn::{im2col, ConvKind, ConvLayer, Im2colCostModel, Tensor};

use crate::compiled::CompiledLayer;
use crate::machine::Machine;
use crate::report::LayerReport;
use crate::SimError;

/// Which mapping to use for a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MappingKind {
    /// Pick the paper's best mapping for the layer kind (PWC for pointwise,
    /// DWC-S1 for stride-1 depthwise, DWC-general otherwise; standard
    /// convolution through im2col + PWC).
    #[default]
    Auto,
    /// Force the matmul-based DWC (Table 5's middle column).
    MatmulDwc,
    /// Channel-batched stride-1 DWC (the §5.4 "further optimization"):
    /// several channels per block, kernels switched from the Weight Buffer.
    BatchedDwcS1,
}

/// Run one DSC layer functionally on the cycle-accurate machine, returning
/// the OFM tensor and the performance report.
///
/// # Errors
///
/// Returns [`SimError`] on any hardware-rule violation; mapping-construction
/// failures surface as a [`SimError`] with the planner's message.
pub fn run_layer(layer: &ConvLayer, ifm: &Tensor, weights: &Tensor, spec: &CgraSpec) -> Result<(Tensor, LayerReport), SimError> {
    run_layer_with(layer, ifm, weights, spec, MappingKind::Auto)
}

/// Run a depthwise layer functionally with the matmul-based mapping.
///
/// # Errors
///
/// As [`run_layer`].
pub fn run_matmul_dwc(
    layer: &ConvLayer,
    ifm: &Tensor,
    weights: &Tensor,
    spec: &CgraSpec,
) -> Result<(Tensor, LayerReport), SimError> {
    run_layer_with(layer, ifm, weights, spec, MappingKind::MatmulDwc)
}

/// Run a stride-1 depthwise layer functionally with the channel-batched
/// mapping (§5.4 extension).
///
/// # Errors
///
/// As [`run_layer`].
pub fn run_batched_dwc(
    layer: &ConvLayer,
    ifm: &Tensor,
    weights: &Tensor,
    spec: &CgraSpec,
) -> Result<(Tensor, LayerReport), SimError> {
    run_layer_with(layer, ifm, weights, spec, MappingKind::BatchedDwcS1)
}

pub(crate) fn map_err_to_sim(layer: &ConvLayer, e: MapError) -> SimError {
    SimError::new(layer.name(), 0, 0, crate::error::SimCause::Map(e.to_string()))
}

fn run_layer_with(
    layer: &ConvLayer,
    ifm: &Tensor,
    weights: &Tensor,
    spec: &CgraSpec,
    kind: MappingKind,
) -> Result<(Tensor, LayerReport), SimError> {
    CompiledLayer::compile(layer, spec, kind)?.run_on(&mut Machine::new(spec), ifm, weights)
}

/// Estimate a layer's energy by running one (representative) block
/// functionally, measuring its access counts, and scaling by the block
/// count — blocks are uniform by construction, so the scaling is exact for
/// interior blocks and conservative for edge blocks.
///
/// # Errors
///
/// As [`run_layer`].
pub fn estimate_layer_energy(
    layer: &ConvLayer,
    ifm: &Tensor,
    weights: &Tensor,
    spec: &CgraSpec,
    kind: MappingKind,
    model: &npcgra_area::EnergyModel,
) -> Result<npcgra_area::EnergyBreakdown, SimError> {
    let compiled = CompiledLayer::compile(layer, spec, kind)?;
    let mut machine = Machine::new(spec);
    let prepared = compiled.prepare(ifm);
    let prog = compiled.materialize(0, &prepared, weights);
    let res = machine.run_block(&prog)?;
    let n = compiled.num_blocks() as u64;
    let pes = spec.num_pes() as u64;
    let counts = npcgra_area::AccessCounts {
        macs: res.mac_ops * n,
        idle_pe_cycles: (pes * res.compute_cycles).saturating_sub(res.mac_ops) * n,
        sram_accesses: (res.h_reads + res.h_writes + res.v_reads) * n,
        grf_reads: res.grf_reads * n,
        dram_words: (compiled.block_input_words() + compiled.block_output_words()) * n,
    };
    Ok(model.estimate(&counts))
}

/// Run one layer functionally with blocks distributed over `threads`
/// worker machines. Blocks are architecturally independent (each begins
/// with a DMA fill and ends with a drain), so the result is bit-identical
/// to [`run_layer`] — asserted by the test suite — while large layers
/// simulate several times faster on a multicore host.
///
/// # Errors
///
/// As [`run_layer`].
pub fn run_layer_parallel(
    layer: &ConvLayer,
    ifm: &Tensor,
    weights: &Tensor,
    spec: &CgraSpec,
    threads: usize,
) -> Result<(Tensor, LayerReport), SimError> {
    CompiledLayer::compile(layer, spec, MappingKind::Auto)?.run_parallel(ifm, weights, threads)
}

/// Timing-only estimate with a *single* memory set (the Table 4 ablation):
/// every block's DMA serializes with its compute instead of overlapping the
/// previous block.
///
/// # Errors
///
/// As [`time_layer`].
pub fn time_layer_single_buffered(layer: &ConvLayer, spec: &CgraSpec, kind: MappingKind) -> Result<LayerReport, SimError> {
    let mut r = time_layer(layer, spec, kind)?;
    let compiled = CompiledLayer::compile(layer, spec, kind)?;
    let engine = DmaEngine::new(spec);
    let dma = engine.transfer_cycles(compiled.block_input_words()) + engine.transfer_cycles(compiled.block_output_words());
    let blocks: Vec<(u64, u64)> = (0..compiled.num_blocks())
        .map(|_| (compiled.block_compute_cycles(), dma))
        .collect();
    r.cycles = npcgra_mem::dma::serialized_cycles(&blocks);
    Ok(r)
}

/// Timing-only layer estimate: identical cycle accounting to [`run_layer`]
/// without materializing data. Used for the full-model evaluation sweeps.
///
/// # Errors
///
/// Returns [`SimError`] if the layer cannot be mapped.
pub fn time_layer(layer: &ConvLayer, spec: &CgraSpec, kind: MappingKind) -> Result<LayerReport, SimError> {
    if layer.kind() == ConvKind::Standard {
        return time_standard_via_im2col(layer, spec);
    }
    Ok(CompiledLayer::compile(layer, spec, kind)?.timing_report())
}

/// The im2col-equivalent pointwise layer for one group of a standard
/// convolution.
fn im2col_equivalent(layer: &ConvLayer) -> ConvLayer {
    let cols = layer.k() * layer.k() * layer.in_channels() / layer.groups();
    let cout_g = layer.out_channels() / layer.groups();
    ConvLayer::pointwise(
        &format!("{}.im2col", layer.name()),
        cols,
        cout_g,
        layer.out_h(),
        layer.out_w(),
    )
    .with_activation(layer.activation())
}

/// Run a standard convolution functionally: host-side im2col lowers each
/// group to a pointwise layer which runs through the PWC mapping (§6.5).
/// The im2col host time (default Ultra96 ARMv8 model) is charged to the
/// report.
///
/// # Errors
///
/// As [`run_layer`].
pub fn run_standard_via_im2col(
    layer: &ConvLayer,
    ifm: &Tensor,
    weights: &Tensor,
    spec: &CgraSpec,
) -> Result<(Tensor, LayerReport), SimError> {
    assert_eq!(
        layer.kind(),
        ConvKind::Standard,
        "run_standard_via_im2col needs a standard layer"
    );
    let eq = im2col_equivalent(layer);
    let (oh, ow) = (layer.out_h(), layer.out_w());
    let cout_g = layer.out_channels() / layer.groups();
    let mut ofm = Tensor::zeros(layer.out_channels(), oh, ow);
    let mut reports = Vec::new();
    for g in 0..layer.groups() {
        let x = im2col::im2col_matrix(layer, ifm, g).map_err(|e| map_err_to_sim(layer, MapError::new(e.to_string())))?;
        let wm = im2col::weight_matrix(layer, weights, g).map_err(|e| map_err_to_sim(layer, MapError::new(e.to_string())))?;
        // Reshape to the tensor forms the PWC mapping consumes.
        let x_t = Tensor::from_fn(eq.in_channels(), oh, ow, |col, y, xx| x.get(y * ow + xx, col));
        let w_t = Tensor::from_fn(cout_g, 1, eq.in_channels(), |o, _, col| wm.get(col, o));
        let (part, rep) = run_layer(&eq, &x_t, &w_t, spec)?;
        for oc in 0..cout_g {
            for y in 0..oh {
                for xx in 0..ow {
                    ofm.set(g * cout_g + oc, y, xx, part.get(oc, y, xx));
                }
            }
        }
        reports.push(rep);
    }
    let mut report = LayerReport::total(layer.name(), &reports);
    report.name = layer.name().to_string();
    report.macs = layer.macs();
    report.host_seconds = Im2colCostModel::default().seconds(layer);
    Ok((ofm, report))
}

fn time_standard_via_im2col(layer: &ConvLayer, spec: &CgraSpec) -> Result<LayerReport, SimError> {
    let eq = im2col_equivalent(layer);
    let per_group = time_layer(&eq, spec, MappingKind::Auto)?;
    let groups = layer.groups() as u64;
    let mut r = per_group.clone();
    r.name = layer.name().to_string();
    r.cycles *= groups;
    r.compute_cycles *= groups;
    r.dma_cycles *= groups;
    r.macs = layer.macs();
    r.host_seconds = Im2colCostModel::default().seconds(layer);
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use npcgra_nn::reference;

    fn spec4() -> CgraSpec {
        CgraSpec::np_cgra(4, 4)
    }

    #[test]
    fn pwc_layer_functional_matches_golden() {
        let layer = ConvLayer::pointwise("pw", 12, 10, 6, 7);
        let ifm = Tensor::random(12, 6, 7, 1);
        let w = layer.random_weights(2);
        let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
        let (ofm, report) = run_layer(&layer, &ifm, &w, &spec4()).unwrap();
        assert_eq!(ofm, golden);
        assert!(report.cycles > 0);
    }

    #[test]
    fn dwc_s1_layer_functional_matches_golden() {
        let layer = ConvLayer::depthwise("dw", 3, 11, 13, 3, 1, 1);
        let ifm = Tensor::random(3, 11, 13, 5);
        let w = layer.random_weights(6);
        let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
        let (ofm, _) = run_layer(&layer, &ifm, &w, &spec4()).unwrap();
        assert_eq!(ofm, golden);
    }

    #[test]
    fn dwc_s2_layer_functional_matches_golden() {
        let layer = ConvLayer::depthwise("dw", 2, 12, 12, 3, 2, 1);
        let ifm = Tensor::random(2, 12, 12, 7);
        let w = layer.random_weights(8);
        let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
        let (ofm, _) = run_layer(&layer, &ifm, &w, &spec4()).unwrap();
        assert_eq!(ofm, golden);
    }

    #[test]
    fn matmul_dwc_functional_matches_golden() {
        let layer = ConvLayer::depthwise("dw", 2, 9, 9, 3, 1, 1);
        let ifm = Tensor::random(2, 9, 9, 9);
        let w = layer.random_weights(10);
        let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
        let (ofm, _) = run_matmul_dwc(&layer, &ifm, &w, &spec4()).unwrap();
        assert_eq!(ofm, golden);
    }

    #[test]
    fn standard_conv_via_im2col_matches_golden() {
        let layer = ConvLayer::standard("c", 3, 4, 8, 8, 3, 1, 1, 1);
        let ifm = Tensor::random(3, 8, 8, 11);
        let w = layer.random_weights(12);
        let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
        let (ofm, report) = run_standard_via_im2col(&layer, &ifm, &w, &spec4()).unwrap();
        assert_eq!(ofm, golden);
        assert!(report.host_seconds > 0.0);
    }

    #[test]
    fn timing_equals_functional_cycles() {
        for (layer, kind) in [
            (ConvLayer::pointwise("pw", 12, 10, 6, 7), MappingKind::Auto),
            (ConvLayer::depthwise("dw1", 3, 11, 13, 3, 1, 1), MappingKind::Auto),
            (ConvLayer::depthwise("dw2", 2, 12, 12, 3, 2, 1), MappingKind::Auto),
            (ConvLayer::depthwise("dwm", 2, 9, 9, 3, 1, 1), MappingKind::MatmulDwc),
        ] {
            let ifm = Tensor::random(layer.in_channels(), layer.in_h(), layer.in_w(), 1);
            let w = layer.random_weights(2);
            let (_, functional) = run_layer_with(&layer, &ifm, &w, &spec4(), kind).unwrap();
            let timed = time_layer(&layer, &spec4(), kind).unwrap();
            assert_eq!(functional.cycles, timed.cycles, "{}", layer.name());
            assert_eq!(functional.compute_cycles, timed.compute_cycles, "{}", layer.name());
        }
    }
}
