//! Deterministic hardware fault injection.
//!
//! A [`FaultPlan`] attached to a [`Machine`](crate::Machine) schedules
//! transient bit flips at `(tile, cycle)` points of a block run: in the
//! H-MEM/V-MEM bank arrays, in the GRF broadcast words, or in a PE's
//! accumulator (output register). A fault either corrupts the output
//! *silently* (data bit flips — the layouts carry no redundancy, so the
//! flip propagates to some OFM word) or trips one of the existing
//! [`SimError`](crate::SimError) hardware rules (e.g. a GRF validity fault
//! surfaces as `GrfIndex` at the next broadcast). Both behaviours are the
//! point: a serving stack above the simulator must survive each.
//!
//! Plans come in three flavours:
//!
//! * [`FaultPlan::explicit`] — a hand-written fault list, for tests that
//!   need one precise flip at one precise point.
//! * [`FaultPlan::bernoulli`] — a seeded per-cycle coin flip. The draw at
//!   each `(run, tile, cycle)` point is a pure hash of the seed, so a
//!   whole chaos run is **bit-identical across executions with the same
//!   seed**, while a *retry* of a failed block (a later `run` ordinal on
//!   the same machine) sees an independent draw — exactly how transient
//!   faults behave in time.
//! * [`FaultPlan::gray`] — Bernoulli bit flips plus an independent seeded
//!   draw of *temporal* faults ([`TemporalFault`]): stalls, slowdowns and
//!   wedges that lose **time** instead of corrupting **values** — the
//!   gray-failure class. The same purity holds: every draw is a hash of
//!   `(seed, run, tile, cycle)`.
//!
//! Nothing here costs anything when no plan is installed: the machine's
//! per-cycle check is a single `Option` discriminant test.

use npcgra_nn::Word;

/// A temporal (gray) fault: the tile loses time instead of corrupting
/// data. Values stay bit-exact; *liveness* is what breaks. The machine
/// escapes these only through its cooperative
/// [`CancelToken`](crate::CancelToken) or cycle budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemporalFault {
    /// The tile stalls for `cycles` extra cycles before this cycle
    /// executes; the stall cycles are charged to the run's cycle budget.
    Stall {
        /// Extra cycles burned.
        cycles: u64,
    },
    /// The tile wedges: no forward progress until cancelled or the cycle
    /// budget runs out. Without either installed the run never returns —
    /// exactly the hazard the serving watchdog exists to break.
    Wedge,
    /// Every remaining cycle of the current tile costs `factor` cycles.
    /// Factors from concurrent slowdown faults do not stack; the largest
    /// wins until the tile ends.
    Slowdown {
        /// Cycle-cost multiplier (values below 2 are inert).
        factor: u32,
    },
}

/// Where a scheduled fault lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Flip bit `bit` of the H-MEM word at `(bank, offset)`.
    HBankBit {
        /// H-MEM bank (row) index.
        bank: usize,
        /// Word offset within the bank.
        offset: usize,
        /// Bit position within the word.
        bit: u32,
    },
    /// Flip bit `bit` of the V-MEM word at `(bank, offset)`.
    VBankBit {
        /// V-MEM bank (column) index.
        bank: usize,
        /// Word offset within the bank.
        offset: usize,
        /// Bit position within the word.
        bit: u32,
    },
    /// Flip bit `bit` of loaded GRF word `index` (no-op past the valid
    /// length — the flip lands in an unused register).
    GrfBit {
        /// GRF word index.
        index: usize,
        /// Bit position within the word.
        bit: u32,
    },
    /// Clear the GRF valid length down to `keep` words: the next broadcast
    /// of a higher index trips the `GrfIndex` hardware rule — the
    /// *detected*-fault path.
    GrfTrim {
        /// Valid words to keep.
        keep: usize,
    },
    /// Flip bit `bit` of the output register (MAC accumulator) of PE
    /// `(r, c)`.
    PeOutBit {
        /// PE row.
        r: usize,
        /// PE column.
        c: usize,
        /// Bit position within the accumulator's low word.
        bit: u32,
    },
    /// A temporal fault: the site loses time, not data.
    Temporal(TemporalFault),
}

/// One scheduled fault: a [`FaultSite`] applied at the start of `cycle` of
/// `tile`, on every block run of the machine it is installed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Tile index within the block.
    pub tile: usize,
    /// Cycle within the tile (the fault applies before the cycle executes).
    pub cycle: u64,
    /// Where the flip lands.
    pub site: FaultSite,
}

/// Array/memory dimensions a plan draws random sites from.
#[derive(Debug, Clone, Copy)]
pub struct FaultDims {
    /// PE rows.
    pub rows: usize,
    /// PE columns.
    pub cols: usize,
    /// H-MEM banks.
    pub h_banks: usize,
    /// Words per H-MEM bank.
    pub h_words: usize,
    /// V-MEM banks.
    pub v_banks: usize,
    /// Words per V-MEM bank.
    pub v_words: usize,
}

/// Shape of the temporal faults a [`FaultPlan::gray`] plan draws.
#[derive(Debug, Clone, Copy)]
pub struct GrayRates {
    /// Per-`(run, tile, cycle)` probability of a temporal fault
    /// (clamped to `[0, 1]`).
    pub rate: f64,
    /// Stall length for [`TemporalFault::Stall`] draws.
    pub stall_cycles: u64,
    /// Cycle-cost multiplier for [`TemporalFault::Slowdown`] draws.
    pub slowdown_factor: u32,
}

#[derive(Debug, Clone)]
enum Mode {
    Explicit(Vec<Fault>),
    Bernoulli {
        seed: u64,
        /// Fire when the (run, tile, cycle) hash falls below this.
        threshold: u64,
    },
    Gray {
        seed: u64,
        /// Bit-flip threshold (as in `Bernoulli`).
        flip_threshold: u64,
        /// Temporal-fault threshold for an independent salted draw.
        temporal_threshold: u64,
        stall_cycles: u64,
        slowdown_factor: u32,
    },
}

/// A deterministic schedule of transient hardware faults.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    mode: Mode,
}

/// `splitmix64` — tiny, fast, well-mixed; the standard seeding PRNG.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Salt separating the temporal draw from the bit-flip draw at the same
/// `(run, tile, cycle)` point.
const TEMPORAL_SALT: u64 = 0x6E_A4_17;

fn rate_to_threshold(rate: f64) -> u64 {
    let rate = rate.clamp(0.0, 1.0);
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let threshold = (rate * u64::MAX as f64) as u64;
    threshold
}

impl FaultPlan {
    /// A plan that schedules nothing: every query returns no sites. The
    /// explicit fault-free control for chaos runs that arm the watchdog
    /// but must observe zero preemptions.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan {
            mode: Mode::Explicit(Vec::new()),
        }
    }

    /// A plan that applies exactly the given faults, at their `(tile,
    /// cycle)` points, on every block run.
    #[must_use]
    pub fn explicit(faults: Vec<Fault>) -> Self {
        FaultPlan {
            mode: Mode::Explicit(faults),
        }
    }

    /// A seeded Bernoulli plan: each `(run, tile, cycle)` point of every
    /// block run suffers one random-site fault with probability `rate`
    /// (clamped to `[0, 1]`). Fully deterministic in `seed`.
    #[must_use]
    pub fn bernoulli(seed: u64, rate: f64) -> Self {
        FaultPlan {
            mode: Mode::Bernoulli {
                seed,
                threshold: rate_to_threshold(rate),
            },
        }
    }

    /// A gray-failure plan: Bernoulli bit flips at `flip_rate` plus an
    /// independent salted draw of temporal faults at `gray.rate`. A
    /// temporal draw picks its kind from the same hash — mostly stalls,
    /// some slowdowns, rare wedges — so one seed reproduces the whole
    /// mixed soak.
    #[must_use]
    pub fn gray(seed: u64, flip_rate: f64, gray: GrayRates) -> Self {
        FaultPlan {
            mode: Mode::Gray {
                seed,
                flip_threshold: rate_to_threshold(flip_rate),
                temporal_threshold: rate_to_threshold(gray.rate),
                stall_cycles: gray.stall_cycles.max(1),
                slowdown_factor: gray.slowdown_factor.max(2),
            },
        }
    }

    /// Whether this plan can ever schedule a [`FaultSite::Temporal`] site
    /// (used by runners to decide if liveness machinery must be armed).
    #[must_use]
    pub fn has_temporal(&self) -> bool {
        match &self.mode {
            Mode::Explicit(faults) => faults.iter().any(|f| matches!(f.site, FaultSite::Temporal(_))),
            Mode::Bernoulli { .. } => false,
            Mode::Gray { temporal_threshold, .. } => *temporal_threshold > 0,
        }
    }

    /// The sites scheduled at `(run, tile, cycle)`. Empty in the (vastly
    /// common) no-fault case; never allocates unless a fault fires. A pure
    /// function of `(plan, run, tile, cycle, dims)`: repeated calls and
    /// plan clones agree bit-for-bit.
    #[must_use]
    pub fn sites_at(&self, run: u64, tile: usize, cycle: u64, dims: &FaultDims) -> Vec<FaultSite> {
        match &self.mode {
            Mode::Explicit(faults) => {
                if faults.is_empty() {
                    return Vec::new();
                }
                faults
                    .iter()
                    .filter(|f| f.tile == tile && f.cycle == cycle)
                    .map(|f| f.site)
                    .collect()
            }
            Mode::Bernoulli { seed, threshold } => {
                let x = point_hash(*seed, run, tile, cycle);
                if x >= *threshold {
                    return Vec::new();
                }
                vec![random_site(splitmix64(x ^ 0xFA_0175), dims)]
            }
            Mode::Gray {
                seed,
                flip_threshold,
                temporal_threshold,
                stall_cycles,
                slowdown_factor,
            } => {
                let x = point_hash(*seed, run, tile, cycle);
                let mut sites = Vec::new();
                if x < *flip_threshold {
                    sites.push(random_site(splitmix64(x ^ 0xFA_0175), dims));
                }
                let t = splitmix64(x ^ TEMPORAL_SALT);
                if t < *temporal_threshold {
                    sites.push(FaultSite::Temporal(random_temporal(
                        splitmix64(t ^ 0x7E3),
                        *stall_cycles,
                        *slowdown_factor,
                    )));
                }
                sites
            }
        }
    }
}

/// The shared `(seed, run, tile, cycle)` point hash every stochastic mode
/// draws from.
fn point_hash(seed: u64, run: u64, tile: usize, cycle: u64) -> u64 {
    let mut x = seed;
    x = splitmix64(x ^ run);
    x = splitmix64(x ^ tile as u64);
    x = splitmix64(x ^ cycle);
    x
}

/// Derive a temporal fault kind from hash bits: mostly stalls, some
/// slowdowns, rare wedges — wedges are the expensive recovery path, so
/// they stay the minority of a soak the way genuinely hung devices do.
fn random_temporal(h: u64, stall_cycles: u64, slowdown_factor: u32) -> TemporalFault {
    match h % 10 {
        0..=5 => TemporalFault::Stall { cycles: stall_cycles },
        6..=8 => TemporalFault::Slowdown { factor: slowdown_factor },
        _ => TemporalFault::Wedge,
    }
}

/// Derive a random fault site from hash bits. Site kinds are weighted
/// towards the data arrays (silent corruption), with a small share of GRF
/// validity faults (the detected-error path).
fn random_site(h: u64, dims: &FaultDims) -> FaultSite {
    let bit = (h >> 8) as u32 % Word::BITS;
    let a = splitmix64(h) as usize;
    let b = splitmix64(h ^ 0xB00) as usize;
    match h % 100 {
        0..=34 => FaultSite::HBankBit {
            bank: a % dims.h_banks,
            offset: b % dims.h_words,
            bit,
        },
        35..=59 => FaultSite::VBankBit {
            bank: a % dims.v_banks,
            offset: b % dims.v_words,
            bit,
        },
        60..=74 => FaultSite::GrfBit {
            index: a % npcgra_arch::grf::GRF_WORDS,
            bit,
        },
        75..=79 => FaultSite::GrfTrim {
            keep: a % npcgra_arch::grf::GRF_WORDS / 2,
        },
        _ => FaultSite::PeOutBit {
            r: a % dims.rows,
            c: b % dims.cols,
            bit,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> FaultDims {
        FaultDims {
            rows: 4,
            cols: 4,
            h_banks: 4,
            h_words: 64,
            v_banks: 4,
            v_words: 64,
        }
    }

    #[test]
    fn explicit_faults_fire_only_at_their_point() {
        let site = FaultSite::GrfTrim { keep: 2 };
        let plan = FaultPlan::explicit(vec![Fault {
            tile: 3,
            cycle: 17,
            site,
        }]);
        assert_eq!(plan.sites_at(0, 3, 17, &dims()), vec![site]);
        assert_eq!(
            plan.sites_at(9, 3, 17, &dims()),
            vec![site],
            "explicit faults repeat every run"
        );
        assert!(plan.sites_at(0, 3, 16, &dims()).is_empty());
        assert!(plan.sites_at(0, 2, 17, &dims()).is_empty());
    }

    #[test]
    fn bernoulli_is_deterministic_in_the_seed() {
        let a = FaultPlan::bernoulli(42, 0.05);
        let b = FaultPlan::bernoulli(42, 0.05);
        for tile in 0..8 {
            for cycle in 0..64 {
                assert_eq!(a.sites_at(1, tile, cycle, &dims()), b.sites_at(1, tile, cycle, &dims()));
            }
        }
    }

    #[test]
    fn bernoulli_rate_zero_never_fires_and_rate_one_always_fires() {
        let never = FaultPlan::bernoulli(7, 0.0);
        let always = FaultPlan::bernoulli(7, 1.0);
        for cycle in 0..256 {
            assert!(never.sites_at(0, 0, cycle, &dims()).is_empty());
            assert_eq!(always.sites_at(0, 0, cycle, &dims()).len(), 1);
        }
    }

    #[test]
    fn retries_see_an_independent_draw() {
        // The run ordinal enters the hash: the same (tile, cycle) points
        // cannot fault identically on every retry at any plausible rate.
        let plan = FaultPlan::bernoulli(3, 0.1);
        let fires = |run: u64| -> usize {
            (0..400)
                .filter(|&cyc| !plan.sites_at(run, 0, cyc, &dims()).is_empty())
                .count()
        };
        let (first, second) = (fires(0), fires(1));
        assert!(first > 0 && second > 0, "rate 0.1 over 400 cycles must fire");
        let same: usize = (0..400)
            .filter(|&cyc| {
                let a = plan.sites_at(0, 0, cyc, &dims());
                !a.is_empty() && a == plan.sites_at(1, 0, cyc, &dims())
            })
            .count();
        assert!(same < first, "draws must differ between runs");
    }

    #[test]
    fn random_sites_stay_in_range() {
        let plan = FaultPlan::bernoulli(11, 1.0);
        let d = dims();
        for cycle in 0..512 {
            for site in plan.sites_at(0, 0, cycle, &d) {
                match site {
                    FaultSite::HBankBit { bank, offset, bit } => {
                        assert!(bank < d.h_banks && offset < d.h_words && bit < Word::BITS);
                    }
                    FaultSite::VBankBit { bank, offset, bit } => {
                        assert!(bank < d.v_banks && offset < d.v_words && bit < Word::BITS);
                    }
                    FaultSite::GrfBit { index, bit } => {
                        assert!(index < npcgra_arch::grf::GRF_WORDS && bit < Word::BITS);
                    }
                    FaultSite::GrfTrim { keep } => assert!(keep < npcgra_arch::grf::GRF_WORDS),
                    FaultSite::PeOutBit { r, c, bit } => {
                        assert!(r < d.rows && c < d.cols && bit < Word::BITS);
                    }
                    FaultSite::Temporal(_) => panic!("bernoulli plans never draw temporal faults"),
                }
            }
        }
    }

    #[test]
    fn none_plan_schedules_nothing_and_has_no_temporal() {
        let plan = FaultPlan::none();
        assert!(!plan.has_temporal());
        for cycle in 0..256 {
            assert!(plan.sites_at(0, 0, cycle, &dims()).is_empty());
        }
    }

    #[test]
    fn gray_plan_is_deterministic_and_draws_all_three_kinds() {
        let rates = GrayRates {
            rate: 0.05,
            stall_cycles: 64,
            slowdown_factor: 8,
        };
        let a = FaultPlan::gray(99, 0.01, rates);
        let b = a.clone();
        assert!(a.has_temporal());
        let (mut stalls, mut slows, mut wedges, mut flips) = (0, 0, 0, 0);
        for tile in 0..16 {
            for cycle in 0..512 {
                let sa = a.sites_at(2, tile, cycle, &dims());
                assert_eq!(sa, b.sites_at(2, tile, cycle, &dims()), "clone agrees");
                assert_eq!(sa, a.sites_at(2, tile, cycle, &dims()), "repeat call agrees");
                for site in sa {
                    match site {
                        FaultSite::Temporal(TemporalFault::Stall { cycles }) => {
                            assert_eq!(cycles, 64);
                            stalls += 1;
                        }
                        FaultSite::Temporal(TemporalFault::Slowdown { factor }) => {
                            assert_eq!(factor, 8);
                            slows += 1;
                        }
                        FaultSite::Temporal(TemporalFault::Wedge) => wedges += 1,
                        _ => flips += 1,
                    }
                }
            }
        }
        assert!(
            stalls > 0 && slows > 0 && wedges > 0,
            "mix covers all kinds: {stalls}/{slows}/{wedges}"
        );
        assert!(flips > 0, "gray plans still flip bits");
    }

    #[test]
    fn gray_temporal_rate_zero_never_draws_temporal() {
        let rates = GrayRates {
            rate: 0.0,
            stall_cycles: 8,
            slowdown_factor: 4,
        };
        let plan = FaultPlan::gray(5, 0.5, rates);
        assert!(!plan.has_temporal());
        for cycle in 0..512 {
            for site in plan.sites_at(0, 0, cycle, &dims()) {
                assert!(!matches!(site, FaultSite::Temporal(_)));
            }
        }
    }

    #[test]
    fn explicit_temporal_faults_report_has_temporal() {
        let plan = FaultPlan::explicit(vec![Fault {
            tile: 0,
            cycle: 3,
            site: FaultSite::Temporal(TemporalFault::Wedge),
        }]);
        assert!(plan.has_temporal());
        assert_eq!(
            plan.sites_at(0, 0, 3, &dims()),
            vec![FaultSite::Temporal(TemporalFault::Wedge)]
        );
    }
}
