//! Deterministic hardware fault injection.
//!
//! A [`FaultPlan`] attached to a [`Machine`](crate::Machine) schedules
//! transient bit flips at `(tile, cycle)` points of a block run: in the
//! H-MEM/V-MEM bank arrays, in the GRF broadcast words, or in a PE's
//! accumulator (output register). A fault either corrupts the output
//! *silently* (data bit flips — the layouts carry no redundancy, so the
//! flip propagates to some OFM word) or trips one of the existing
//! [`SimError`](crate::SimError) hardware rules (e.g. a GRF validity fault
//! surfaces as `GrfIndex` at the next broadcast). Both behaviours are the
//! point: a serving stack above the simulator must survive each.
//!
//! Plans come in two flavours:
//!
//! * [`FaultPlan::explicit`] — a hand-written fault list, for tests that
//!   need one precise flip at one precise point.
//! * [`FaultPlan::bernoulli`] — a seeded per-cycle coin flip. The draw at
//!   each `(run, tile, cycle)` point is a pure hash of the seed, so a
//!   whole chaos run is **bit-identical across executions with the same
//!   seed**, while a *retry* of a failed block (a later `run` ordinal on
//!   the same machine) sees an independent draw — exactly how transient
//!   faults behave in time.
//!
//! Nothing here costs anything when no plan is installed: the machine's
//! per-cycle check is a single `Option` discriminant test.

use npcgra_nn::Word;

/// Where a scheduled fault lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Flip bit `bit` of the H-MEM word at `(bank, offset)`.
    HBankBit {
        /// H-MEM bank (row) index.
        bank: usize,
        /// Word offset within the bank.
        offset: usize,
        /// Bit position within the word.
        bit: u32,
    },
    /// Flip bit `bit` of the V-MEM word at `(bank, offset)`.
    VBankBit {
        /// V-MEM bank (column) index.
        bank: usize,
        /// Word offset within the bank.
        offset: usize,
        /// Bit position within the word.
        bit: u32,
    },
    /// Flip bit `bit` of loaded GRF word `index` (no-op past the valid
    /// length — the flip lands in an unused register).
    GrfBit {
        /// GRF word index.
        index: usize,
        /// Bit position within the word.
        bit: u32,
    },
    /// Clear the GRF valid length down to `keep` words: the next broadcast
    /// of a higher index trips the `GrfIndex` hardware rule — the
    /// *detected*-fault path.
    GrfTrim {
        /// Valid words to keep.
        keep: usize,
    },
    /// Flip bit `bit` of the output register (MAC accumulator) of PE
    /// `(r, c)`.
    PeOutBit {
        /// PE row.
        r: usize,
        /// PE column.
        c: usize,
        /// Bit position within the accumulator's low word.
        bit: u32,
    },
}

/// One scheduled fault: a [`FaultSite`] applied at the start of `cycle` of
/// `tile`, on every block run of the machine it is installed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Tile index within the block.
    pub tile: usize,
    /// Cycle within the tile (the fault applies before the cycle executes).
    pub cycle: u64,
    /// Where the flip lands.
    pub site: FaultSite,
}

/// Array/memory dimensions a plan draws random sites from.
#[derive(Debug, Clone, Copy)]
pub struct FaultDims {
    /// PE rows.
    pub rows: usize,
    /// PE columns.
    pub cols: usize,
    /// H-MEM banks.
    pub h_banks: usize,
    /// Words per H-MEM bank.
    pub h_words: usize,
    /// V-MEM banks.
    pub v_banks: usize,
    /// Words per V-MEM bank.
    pub v_words: usize,
}

#[derive(Debug, Clone)]
enum Mode {
    Explicit(Vec<Fault>),
    Bernoulli {
        seed: u64,
        /// Fire when the (run, tile, cycle) hash falls below this.
        threshold: u64,
    },
}

/// A deterministic schedule of transient hardware faults.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    mode: Mode,
}

/// `splitmix64` — tiny, fast, well-mixed; the standard seeding PRNG.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// A plan that applies exactly the given faults, at their `(tile,
    /// cycle)` points, on every block run.
    #[must_use]
    pub fn explicit(faults: Vec<Fault>) -> Self {
        FaultPlan {
            mode: Mode::Explicit(faults),
        }
    }

    /// A seeded Bernoulli plan: each `(run, tile, cycle)` point of every
    /// block run suffers one random-site fault with probability `rate`
    /// (clamped to `[0, 1]`). Fully deterministic in `seed`.
    #[must_use]
    pub fn bernoulli(seed: u64, rate: f64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let threshold = (rate * u64::MAX as f64) as u64;
        FaultPlan {
            mode: Mode::Bernoulli { seed, threshold },
        }
    }

    /// The sites scheduled at `(run, tile, cycle)`. Empty in the (vastly
    /// common) no-fault case; never allocates unless a fault fires.
    #[must_use]
    pub fn sites_at(&self, run: u64, tile: usize, cycle: u64, dims: &FaultDims) -> Vec<FaultSite> {
        match &self.mode {
            Mode::Explicit(faults) => {
                if faults.is_empty() {
                    return Vec::new();
                }
                faults
                    .iter()
                    .filter(|f| f.tile == tile && f.cycle == cycle)
                    .map(|f| f.site)
                    .collect()
            }
            Mode::Bernoulli { seed, threshold } => {
                let mut x = *seed;
                x = splitmix64(x ^ run);
                x = splitmix64(x ^ tile as u64);
                x = splitmix64(x ^ cycle);
                if x >= *threshold {
                    return Vec::new();
                }
                vec![random_site(splitmix64(x ^ 0xFA_0175), dims)]
            }
        }
    }
}

/// Derive a random fault site from hash bits. Site kinds are weighted
/// towards the data arrays (silent corruption), with a small share of GRF
/// validity faults (the detected-error path).
fn random_site(h: u64, dims: &FaultDims) -> FaultSite {
    let bit = (h >> 8) as u32 % Word::BITS;
    let a = splitmix64(h) as usize;
    let b = splitmix64(h ^ 0xB00) as usize;
    match h % 100 {
        0..=34 => FaultSite::HBankBit {
            bank: a % dims.h_banks,
            offset: b % dims.h_words,
            bit,
        },
        35..=59 => FaultSite::VBankBit {
            bank: a % dims.v_banks,
            offset: b % dims.v_words,
            bit,
        },
        60..=74 => FaultSite::GrfBit {
            index: a % npcgra_arch::grf::GRF_WORDS,
            bit,
        },
        75..=79 => FaultSite::GrfTrim {
            keep: a % npcgra_arch::grf::GRF_WORDS / 2,
        },
        _ => FaultSite::PeOutBit {
            r: a % dims.rows,
            c: b % dims.cols,
            bit,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> FaultDims {
        FaultDims {
            rows: 4,
            cols: 4,
            h_banks: 4,
            h_words: 64,
            v_banks: 4,
            v_words: 64,
        }
    }

    #[test]
    fn explicit_faults_fire_only_at_their_point() {
        let site = FaultSite::GrfTrim { keep: 2 };
        let plan = FaultPlan::explicit(vec![Fault {
            tile: 3,
            cycle: 17,
            site,
        }]);
        assert_eq!(plan.sites_at(0, 3, 17, &dims()), vec![site]);
        assert_eq!(
            plan.sites_at(9, 3, 17, &dims()),
            vec![site],
            "explicit faults repeat every run"
        );
        assert!(plan.sites_at(0, 3, 16, &dims()).is_empty());
        assert!(plan.sites_at(0, 2, 17, &dims()).is_empty());
    }

    #[test]
    fn bernoulli_is_deterministic_in_the_seed() {
        let a = FaultPlan::bernoulli(42, 0.05);
        let b = FaultPlan::bernoulli(42, 0.05);
        for tile in 0..8 {
            for cycle in 0..64 {
                assert_eq!(a.sites_at(1, tile, cycle, &dims()), b.sites_at(1, tile, cycle, &dims()));
            }
        }
    }

    #[test]
    fn bernoulli_rate_zero_never_fires_and_rate_one_always_fires() {
        let never = FaultPlan::bernoulli(7, 0.0);
        let always = FaultPlan::bernoulli(7, 1.0);
        for cycle in 0..256 {
            assert!(never.sites_at(0, 0, cycle, &dims()).is_empty());
            assert_eq!(always.sites_at(0, 0, cycle, &dims()).len(), 1);
        }
    }

    #[test]
    fn retries_see_an_independent_draw() {
        // The run ordinal enters the hash: the same (tile, cycle) points
        // cannot fault identically on every retry at any plausible rate.
        let plan = FaultPlan::bernoulli(3, 0.1);
        let fires = |run: u64| -> usize {
            (0..400)
                .filter(|&cyc| !plan.sites_at(run, 0, cyc, &dims()).is_empty())
                .count()
        };
        let (first, second) = (fires(0), fires(1));
        assert!(first > 0 && second > 0, "rate 0.1 over 400 cycles must fire");
        let same: usize = (0..400)
            .filter(|&cyc| {
                let a = plan.sites_at(0, 0, cyc, &dims());
                !a.is_empty() && a == plan.sites_at(1, 0, cyc, &dims())
            })
            .count();
        assert!(same < first, "draws must differ between runs");
    }

    #[test]
    fn random_sites_stay_in_range() {
        let plan = FaultPlan::bernoulli(11, 1.0);
        let d = dims();
        for cycle in 0..512 {
            for site in plan.sites_at(0, 0, cycle, &d) {
                match site {
                    FaultSite::HBankBit { bank, offset, bit } => {
                        assert!(bank < d.h_banks && offset < d.h_words && bit < Word::BITS);
                    }
                    FaultSite::VBankBit { bank, offset, bit } => {
                        assert!(bank < d.v_banks && offset < d.v_words && bit < Word::BITS);
                    }
                    FaultSite::GrfBit { index, bit } => {
                        assert!(index < npcgra_arch::grf::GRF_WORDS && bit < Word::BITS);
                    }
                    FaultSite::GrfTrim { keep } => assert!(keep < npcgra_arch::grf::GRF_WORDS),
                    FaultSite::PeOutBit { r, c, bit } => {
                        assert!(r < d.rows && c < d.cols && bit < Word::BITS);
                    }
                }
            }
        }
    }
}
