//! The cycle-accurate machine.

use npcgra_agu::{AccessKind, TileClock, TilePos};
use npcgra_arch::{CgraSpec, DualModeMac, GlobalRegFile, Pe, PeInputs};
use npcgra_kernels::{BlockProgram, TileMapping};
use npcgra_mem::{BankedMemory, DmaEngine};
use npcgra_nn::{truncate, Word};

use crate::cancel::CancelToken;
use crate::error::{SimCause, SimError};
use crate::fault::{FaultDims, FaultPlan, FaultSite, TemporalFault};
use crate::integrity::IntegrityMode;
use crate::trace::{BusEvent, CycleTrace, StoreEvent, Trace};

/// Wall-clock pace of a wedged run: a [`TemporalFault::Wedge`] makes no
/// simulated progress, so the machine parks between cancellation checks
/// instead of burning a host core. Short enough that a watchdog cancel is
/// observed within a fraction of any realistic deadline.
const WEDGE_PACE: std::time::Duration = std::time::Duration::from_micros(100);

/// What one block run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockResult {
    /// Cycles the array spent computing the block (all tiles).
    pub compute_cycles: u64,
    /// MAC operations performed (MUL initializations count as the first MAC
    /// of a chain).
    pub mac_ops: u64,
    /// DMA engine cycles to bring the block's inputs in.
    pub dma_in_cycles: u64,
    /// DMA engine cycles to write the block's outputs back.
    pub dma_out_cycles: u64,
    /// H-MEM streamed reads served during the block.
    pub h_reads: u64,
    /// H-MEM stores served during the block.
    pub h_writes: u64,
    /// V-MEM streamed reads served during the block.
    pub v_reads: u64,
    /// GRF broadcast reads during the block.
    pub grf_reads: u64,
    /// Extracted valid outputs `(channel, y, x, value)`.
    pub ofm: Vec<(usize, usize, usize, Word)>,
}

/// The simulated machine: PE array + H/V memories + GRF + DMA.
///
/// # Example
///
/// ```
/// use npcgra_arch::CgraSpec;
/// use npcgra_sim::Machine;
///
/// let m = Machine::new(&CgraSpec::np_cgra(4, 4));
/// assert_eq!(m.spec().num_pes(), 16);
/// ```
#[derive(Debug)]
pub struct Machine {
    spec: CgraSpec,
    pes: Vec<Pe>,
    hmem: BankedMemory,
    vmem: BankedMemory,
    grf: GlobalRegFile,
    dma: DmaEngine,
    mac: DualModeMac,
    /// Optional transient-fault schedule (chaos testing / soak runs).
    fault_plan: Option<FaultPlan>,
    /// Host-side output verification mode applied by block-running layer
    /// entry points ([`CompiledLayer::run_on`](crate::CompiledLayer::run_on)).
    integrity: IntegrityMode,
    /// Cooperative cancellation flag checked once per simulated cycle.
    cancel: Option<CancelToken>,
    /// Per-block-run compute-cycle cap; exceeding it is a typed error.
    cycle_budget: Option<u64>,
    /// Block runs executed so far (the `run` ordinal fault plans hash).
    runs: u64,
    /// Faults actually applied so far.
    faults_injected: u64,
    /// Temporal (gray) faults executed so far.
    temporal_injected: u64,
}

impl Machine {
    /// Build a machine from its specification.
    #[must_use]
    pub fn new(spec: &CgraSpec) -> Self {
        let h_words = (spec.hmem_bytes / spec.word_bytes / spec.rows).max(1);
        let v_total = if spec.vmem_bytes == 0 {
            spec.hmem_bytes
        } else {
            spec.vmem_bytes
        };
        let v_words = (v_total / spec.word_bytes / spec.cols).max(1);
        Machine {
            spec: *spec,
            pes: vec![Pe::new(); spec.rows * spec.cols],
            hmem: BankedMemory::new(spec.rows, h_words, spec.features.crossbar_vbus),
            vmem: BankedMemory::new(spec.cols, v_words, spec.features.crossbar_vbus),
            grf: GlobalRegFile::new(),
            dma: DmaEngine::new(spec),
            mac: DualModeMac::new(spec.mac_mode()),
            fault_plan: None,
            integrity: IntegrityMode::Off,
            cancel: None,
            cycle_budget: None,
            runs: 0,
            faults_injected: 0,
            temporal_injected: 0,
        }
    }

    /// The machine's specification.
    #[must_use]
    pub fn spec(&self) -> &CgraSpec {
        &self.spec
    }

    /// Install (or clear) a transient-fault schedule. Subsequent block runs
    /// suffer the plan's bit flips; `None` restores fault-free execution.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault_plan = plan;
    }

    /// The installed fault plan, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Set the ABFT output-verification mode. Block-running layer entry
    /// points ([`CompiledLayer::run_on`](crate::CompiledLayer::run_on))
    /// consult this after every block; the machine itself only stores it.
    pub fn set_integrity_mode(&mut self, mode: IntegrityMode) {
        self.integrity = mode;
    }

    /// The ABFT output-verification mode in effect.
    #[must_use]
    pub fn integrity_mode(&self) -> IntegrityMode {
        self.integrity
    }

    /// Install (or clear) a cooperative cancellation token. Every block
    /// run checks it once per simulated cycle — including while stalled or
    /// wedged by a [`TemporalFault`] — and returns
    /// [`SimCause::Cancelled`] at the first raised check. One relaxed
    /// atomic load per cycle; `None` costs a discriminant test.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    /// The installed cancellation token, if any.
    #[must_use]
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Install (or clear) a per-block-run compute-cycle budget. A run
    /// whose compute cycles (including temporal-fault stall/slowdown
    /// cycles) exceed the budget returns
    /// [`SimCause::CycleBudgetExceeded`] — the deterministic,
    /// wall-clock-free liveness backstop.
    pub fn set_cycle_budget(&mut self, budget: Option<u64>) {
        self.cycle_budget = budget;
    }

    /// The installed per-run cycle budget, if any.
    #[must_use]
    pub fn cycle_budget(&self) -> Option<u64> {
        self.cycle_budget
    }

    /// Faults actually applied so far (a scheduled fault that lands in an
    /// out-of-range or unloaded resource is not counted).
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected
    }

    /// Temporal (gray) faults executed so far: stalls served, slowdowns
    /// applied, wedges entered.
    #[must_use]
    pub fn temporal_injected(&self) -> u64 {
        self.temporal_injected
    }

    /// Apply every structural fault the plan schedules for this `(tile,
    /// cycle)` point; temporal faults are returned for the cycle loop to
    /// execute (they alter control flow, not state).
    fn inject_faults(&mut self, tile: usize, cycle: u64) -> Vec<TemporalFault> {
        let sites = match &self.fault_plan {
            None => return Vec::new(),
            Some(plan) => {
                let dims = FaultDims {
                    rows: self.spec.rows,
                    cols: self.spec.cols,
                    h_banks: self.hmem.num_banks(),
                    h_words: self.hmem.words_per_bank(),
                    v_banks: self.vmem.num_banks(),
                    v_words: self.vmem.words_per_bank(),
                };
                plan.sites_at(self.runs, tile, cycle, &dims)
            }
        };
        let mut temporal = Vec::new();
        for site in sites {
            if let FaultSite::Temporal(t) = site {
                temporal.push(t);
            } else if self.apply_fault(site) {
                self.faults_injected += 1;
            }
        }
        temporal
    }

    /// Flip the bits a fault site names. Returns whether anything changed.
    fn apply_fault(&mut self, site: FaultSite) -> bool {
        match site {
            FaultSite::HBankBit { bank, offset, bit } => flip_mem_bit(&mut self.hmem, bank, offset, bit),
            FaultSite::VBankBit { bank, offset, bit } => flip_mem_bit(&mut self.vmem, bank, offset, bit),
            FaultSite::GrfBit { index, bit } => {
                if index >= self.grf.len() {
                    return false;
                }
                let mut image: Vec<Word> = (0..self.grf.len()).map(|i| self.grf.read(i).expect("valid index")).collect();
                image[index] ^= (1 as Word) << (bit % Word::BITS);
                self.grf.load(&image).is_ok()
            }
            FaultSite::GrfTrim { keep } => {
                if keep >= self.grf.len() {
                    return false;
                }
                let image: Vec<Word> = (0..keep).map(|i| self.grf.read(i).expect("valid index")).collect();
                self.grf.load(&image).is_ok()
            }
            FaultSite::PeOutBit { r, c, bit } => {
                if r >= self.spec.rows || c >= self.spec.cols {
                    return false;
                }
                let pe = &mut self.pes[r * self.spec.cols + c];
                pe.set_out(pe.out() ^ (1 << (bit % Word::BITS)));
                true
            }
            // Temporal faults never reach here — `inject_faults` routes
            // them to the cycle loop.
            FaultSite::Temporal(_) => false,
        }
    }

    /// Accumulated DMA traffic in bytes.
    #[must_use]
    pub fn dma_bytes(&self) -> u64 {
        self.dma.total_bytes()
    }

    fn load_block(&mut self, program: &BlockProgram) -> Result<u64, SimError> {
        self.hmem.clear();
        self.vmem.clear();
        for (bank, image) in program.h_banks.iter().enumerate() {
            if image.len() > self.hmem.words_per_bank() {
                return Err(SimError::new(
                    &program.label,
                    0,
                    0,
                    SimCause::BankOverflow {
                        vmem: false,
                        bank,
                        need: image.len(),
                        capacity: self.hmem.words_per_bank(),
                    },
                ));
            }
            self.hmem
                .fill_bank(bank, 0, image)
                .map_err(|e| SimError::new(&program.label, 0, 0, SimCause::Mem(e)))?;
        }
        for (bank, image) in program.v_banks.iter().enumerate() {
            if image.len() > self.vmem.words_per_bank() {
                return Err(SimError::new(
                    &program.label,
                    0,
                    0,
                    SimCause::BankOverflow {
                        vmem: true,
                        bank,
                        need: image.len(),
                        capacity: self.vmem.words_per_bank(),
                    },
                ));
            }
            self.vmem
                .fill_bank(bank, 0, image)
                .map_err(|e| SimError::new(&program.label, 0, 0, SimCause::Mem(e)))?;
        }
        self.grf
            .load(&program.grf)
            .map_err(|cap| SimError::new(&program.label, 0, 0, SimCause::GrfIndex(cap)))?;
        Ok(self.dma.load(program.dma_in_words).cycles)
    }

    /// Execute one block with the PE instructions taken from a *compiled
    /// configuration image* — the hardware path: every cycle each PE's
    /// 36-bit word is fetched from configuration memory and decoded
    /// (Fig. 3), rather than asking the mapping oracle. The AGUs, being
    /// counter-driven hardware, are shared with [`Machine::run_block`].
    ///
    /// # Errors
    ///
    /// As [`Machine::run_block`], plus a mapping whose image cannot be
    /// compiled (position-dependent instructions or context overflow).
    pub fn run_block_encoded(&mut self, program: &BlockProgram) -> Result<BlockResult, SimError> {
        let image = npcgra_kernels::ConfigImage::compile(program.mapping.as_ref(), &self.spec)
            .map_err(|e| SimError::new(&program.label, 0, 0, SimCause::Map(e.to_string())))?;
        self.run_block_inner(program, Some(&image), None)
    }

    /// Execute one block cycle-accurately.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the schedule violates any hardware rule
    /// (bank conflicts, missing crossbar, unavailable operand sources,
    /// MAC-mode violations, GRF underflow, bank overflow).
    pub fn run_block(&mut self, program: &BlockProgram) -> Result<BlockResult, SimError> {
        self.run_block_inner(program, None, None)
    }

    /// Execute one block while recording a cycle-by-cycle [`Trace`].
    ///
    /// # Errors
    ///
    /// As [`Machine::run_block`].
    pub fn run_block_traced(&mut self, program: &BlockProgram) -> Result<(BlockResult, Trace), SimError> {
        let mut trace = Trace::new(self.spec.cols);
        let result = self.run_block_inner(program, None, Some(&mut trace))?;
        Ok((result, trace))
    }

    fn run_block_inner(
        &mut self,
        program: &BlockProgram,
        image: Option<&npcgra_kernels::ConfigImage>,
        mut trace: Option<&mut Trace>,
    ) -> Result<BlockResult, SimError> {
        self.runs += 1;
        // Block-boundary cancellation check: a run cancelled before it
        // starts never touches the memories.
        check_liveness(self.cancel.as_ref(), None, 0).map_err(|cause| SimError::new(&program.label, 0, 0, cause))?;
        let dma_in_cycles = self.load_block(program)?;
        let (rows, cols) = (self.spec.rows, self.spec.cols);
        let mapping: &dyn TileMapping = program.mapping.as_ref();
        let h_bits = self.hmem.addr_bits();
        let v_bits = self.vmem.addr_bits();

        let mut compute_cycles = 0u64;
        let mut mac_ops = 0u64;
        let mut grf_reads = 0u64;
        let h_reads0 = self.hmem.reads();
        let h_writes0 = self.hmem.writes();
        let v_reads0 = self.vmem.reads();

        let mut pos = TilePos::first(program.tiles.b_r, program.tiles.b_c);
        let mut tile_index = 0usize;
        loop {
            // Weight-Buffer -> GRF refill at tile start (the per-channel
            // kernel switch of the channel-batched DWC extension).
            if !program.weight_buffer.is_empty() {
                let slot = mapping.grf_slot(pos);
                let image = program
                    .weight_buffer
                    .get(slot)
                    .ok_or_else(|| SimError::new(&program.label, tile_index, 0, SimCause::GrfIndex(slot)))?;
                self.grf
                    .load(image)
                    .map_err(|cap| SimError::new(&program.label, tile_index, 0, SimCause::GrfIndex(cap)))?;
            }
            // Run one tile.
            let mut clock = TileClock::start();
            let mut remaining = mapping.phase_len(0).expect("tile has at least one phase");
            // Cycle-cost multiplier from slowdown faults; the largest
            // concurrent factor wins and it clears at the tile boundary.
            let mut slow_factor: u64 = 1;
            let err = |cycle: u64, cause: SimCause| SimError::new(&program.label, tile_index, cycle, cause);
            loop {
                check_liveness(self.cancel.as_ref(), self.cycle_budget, compute_cycles)
                    .map_err(|cause| err(clock.t_cycle, cause))?;
                if self.fault_plan.is_some() {
                    for fault in self.inject_faults(tile_index, clock.t_cycle) {
                        self.temporal_injected += 1;
                        match fault {
                            TemporalFault::Stall { cycles } => {
                                for burned in 0..cycles {
                                    compute_cycles += 1;
                                    check_liveness(self.cancel.as_ref(), self.cycle_budget, compute_cycles)
                                        .map_err(|cause| err(clock.t_cycle, cause))?;
                                    if burned % 1024 == 1023 {
                                        std::thread::yield_now();
                                    }
                                }
                            }
                            TemporalFault::Slowdown { factor } => {
                                slow_factor = slow_factor.max(u64::from(factor));
                            }
                            TemporalFault::Wedge => loop {
                                // No simulated progress: only cancellation
                                // or the cycle budget breaks a wedge. With
                                // neither installed this parks forever —
                                // precisely the gray failure being modelled.
                                compute_cycles += 1;
                                check_liveness(self.cancel.as_ref(), self.cycle_budget, compute_cycles)
                                    .map_err(|cause| err(clock.t_cycle, cause))?;
                                std::thread::sleep(WEDGE_PACE);
                            },
                        }
                    }
                }
                self.hmem.begin_cycle();
                self.vmem.begin_cycle();

                // AGU requests: loads drive the busses, stores are deferred
                // to the end of the cycle.
                let mut h_bus: Vec<Option<i32>> = vec![None; rows];
                let mut stores: Vec<(usize, usize)> = Vec::new();
                let mut h_events: Vec<BusEvent> = Vec::new();
                let mut v_events: Vec<BusEvent> = Vec::new();
                #[allow(clippy::needless_range_loop)] // r is the AGU id, not just an index
                for r in 0..rows {
                    if let Some(req) = mapping.h_request(clock, pos, r) {
                        let addr = req.global_addr(h_bits);
                        match req.kind {
                            AccessKind::Load => {
                                let w = self.hmem.read(r, addr).map_err(|e| err(clock.t_cycle, SimCause::Mem(e)))?;
                                h_bus[r] = Some(i32::from(w));
                                if trace.is_some() {
                                    h_events.push(BusEvent {
                                        lane: r,
                                        bank: req.bank,
                                        offset: req.offset,
                                        value: w,
                                    });
                                }
                            }
                            AccessKind::Store => stores.push((r, addr)),
                        }
                    }
                }
                let mut v_bus: Vec<Option<i32>> = vec![None; cols];
                #[allow(clippy::needless_range_loop)] // c is the AGU id, not just an index
                for c in 0..cols {
                    if let Some(req) = mapping.v_request(clock, pos, c) {
                        let addr = req.global_addr(v_bits);
                        match req.kind {
                            AccessKind::Load => {
                                let w = self.vmem.read(c, addr).map_err(|e| err(clock.t_cycle, SimCause::Mem(e)))?;
                                v_bus[c] = Some(i32::from(w));
                                if trace.is_some() {
                                    v_events.push(BusEvent {
                                        lane: c,
                                        bank: req.bank,
                                        offset: req.offset,
                                        value: w,
                                    });
                                }
                            }
                            AccessKind::Store => stores.push((c, addr)),
                        }
                    }
                }

                // GRF broadcast.
                let grf_val = match mapping.grf_index(clock) {
                    Some(i) => {
                        grf_reads += 1;
                        Some(i32::from(
                            self.grf.read(i).ok_or_else(|| err(clock.t_cycle, SimCause::GrfIndex(i)))?,
                        ))
                    }
                    None => None,
                };

                // Snapshot the synchronous state every PE observes.
                let outs: Vec<i32> = self.pes.iter().map(Pe::out).collect();
                let orns: Vec<Option<i32>> = self.pes.iter().map(Pe::orn).collect();
                let at = |r: isize, c: isize| -> Option<usize> {
                    (r >= 0 && c >= 0 && (r as usize) < rows && (c as usize) < cols).then(|| r as usize * cols + c as usize)
                };

                let mut pe_events: Vec<Option<(npcgra_arch::Instruction, i32)>> = if trace.is_some() {
                    vec![None; rows * cols]
                } else {
                    Vec::new()
                };
                #[allow(clippy::needless_range_loop)] // r/c are PE coordinates fed to the mapping
                for r in 0..rows {
                    for c in 0..cols {
                        // Hardware path (encoded config) or oracle path.
                        let ins = match image {
                            Some(img) => img.instruction_at(clock.t_cycle as usize, r, c),
                            None => mapping.pe_instruction(clock, pos, r, c),
                        };
                        let (ri, ci) = (r as isize, c as isize);
                        let io = PeInputs {
                            h_bus: h_bus[r],
                            v_bus: v_bus[c],
                            grf: grf_val,
                            north: at(ri - 1, ci).map(|i| outs[i]),
                            south: at(ri + 1, ci).map(|i| outs[i]),
                            east: at(ri, ci + 1).map(|i| outs[i]),
                            west: at(ri, ci - 1).map(|i| outs[i]),
                            orn_north: at(ri - 1, ci).and_then(|i| orns[i]),
                            orn_south: at(ri + 1, ci).and_then(|i| orns[i]),
                            orn_east: at(ri, ci + 1).and_then(|i| orns[i]),
                            orn_west: at(ri, ci - 1).and_then(|i| orns[i]),
                        };
                        let out = self.pes[r * cols + c]
                            .step(&ins, &io, self.mac)
                            .map_err(|e| err(clock.t_cycle, SimCause::Pe { r, c, err: e }))?;
                        if matches!(ins.op, npcgra_arch::Op::Mul | npcgra_arch::Op::Mac) {
                            mac_ops += 1;
                        }
                        if trace.is_some() && ins.op != npcgra_arch::Op::Nop {
                            pe_events[r * cols + c] = Some((ins, out.out));
                        }
                        let _ = out;
                    }
                }

                // Stores: the row ports write the designated PE column's
                // (held) output through the AGU-generated addresses.
                let mut store_events: Vec<StoreEvent> = Vec::new();
                if !stores.is_empty() {
                    let port = mapping.store_port(clock).expect("store requests outside a store cycle");
                    for (r, addr) in stores {
                        let data = truncate(self.pes[r * cols + port.column].out());
                        self.hmem
                            .write(r, addr, data)
                            .map_err(|e| err(clock.t_cycle, SimCause::Mem(e)))?;
                        if trace.is_some() {
                            store_events.push(StoreEvent {
                                port: r,
                                bank: addr >> h_bits,
                                offset: addr & ((1 << h_bits) - 1),
                                value: data,
                            });
                        }
                    }
                }

                if let Some(t) = trace.as_deref_mut() {
                    let grf_word = grf_val.map(|v| v as Word);
                    t.push(CycleTrace {
                        tile: tile_index,
                        cycle: clock.t_cycle,
                        h_loads: h_events,
                        v_loads: v_events,
                        grf: grf_word,
                        pes: pe_events,
                        stores: store_events,
                    });
                }

                compute_cycles += slow_factor;

                // Advance the controller counters.
                remaining -= 1;
                if remaining == 0 {
                    match mapping.phase_len(clock.t_wrap + 1) {
                        Some(len) => {
                            clock.step(true);
                            remaining = len;
                        }
                        None => break,
                    }
                } else {
                    clock.step(false);
                }
            }

            tile_index += 1;
            if !pos.advance() {
                break;
            }
        }

        // Extract valid outputs from the H-MEM OFM region.
        let mut ofm = Vec::with_capacity(program.ofm_slots.len());
        for slot in &program.ofm_slots {
            let addr = self.hmem.global_addr(slot.bank, slot.offset);
            let w = self
                .hmem
                .read_free(addr)
                .map_err(|e| SimError::new(&program.label, tile_index, 0, SimCause::Mem(e)))?;
            ofm.push((slot.c, slot.y, slot.x, w));
        }
        let dma_out_cycles = self.dma.store(program.ofm_words).cycles;

        Ok(BlockResult {
            compute_cycles,
            mac_ops,
            dma_in_cycles,
            dma_out_cycles,
            h_reads: self.hmem.reads() - h_reads0,
            h_writes: self.hmem.writes() - h_writes0,
            v_reads: self.vmem.reads() - v_reads0,
            grf_reads,
            ofm,
        })
    }
}

/// The per-cycle liveness gate: cancelled token first (a preempted run
/// must report `Cancelled` even if it also blew its budget), then the
/// compute-cycle budget. Shared with the functional fast tier
/// ([`crate::exec::FastMachine`]) so both backends agree on the exact
/// semantics.
#[inline]
pub(crate) fn check_liveness(cancel: Option<&CancelToken>, budget: Option<u64>, spent: u64) -> Result<(), SimCause> {
    if let Some(token) = cancel {
        if token.is_cancelled() {
            return Err(SimCause::Cancelled);
        }
    }
    if let Some(budget) = budget {
        if spent > budget {
            return Err(SimCause::CycleBudgetExceeded { budget });
        }
    }
    Ok(())
}

/// Flip one stored bit via the untimed access path (fault injection does
/// not occupy a bus port or count as a timed access).
fn flip_mem_bit(mem: &mut BankedMemory, bank: usize, offset: usize, bit: u32) -> bool {
    if bank >= mem.num_banks() || offset >= mem.words_per_bank() {
        return false;
    }
    let addr = mem.global_addr(bank, offset);
    match mem.read_free(addr) {
        Ok(w) => mem.write_free(addr, w ^ ((1 as Word) << (bit % Word::BITS))).is_ok(),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npcgra_kernels::pwc::PwcLayerMap;
    use npcgra_nn::{reference, ConvLayer, Tensor};

    #[test]
    fn single_pwc_block_matches_golden() {
        let spec = CgraSpec::np_cgra(4, 4);
        let layer = ConvLayer::pointwise("pw", 8, 8, 4, 4);
        let map = PwcLayerMap::new(&layer, &spec).unwrap();
        let ifm = Tensor::random(8, 4, 4, 1);
        let w = layer.random_weights(2);
        let golden = reference::run_layer(&layer, &ifm, &w).unwrap();

        let mut m = Machine::new(&spec);
        let mut seen = 0;
        for b in 0..map.num_blocks() {
            let prog = map.materialize(b, &ifm, &w);
            let res = m.run_block(&prog).unwrap();
            assert_eq!(res.compute_cycles, prog.compute_cycles(), "measured cycles equal the plan");
            for (c, y, x, v) in res.ofm {
                assert_eq!(v, golden.get(c, y, x), "output ({c},{y},{x})");
                seen += 1;
            }
        }
        assert_eq!(seen, 8 * 4 * 4, "every output produced exactly once");
    }

    #[test]
    fn traced_execution_records_every_cycle() {
        let spec = CgraSpec::np_cgra(4, 4);
        let layer = ConvLayer::pointwise("pw", 8, 8, 4, 4);
        let map = PwcLayerMap::new(&layer, &spec).unwrap();
        let ifm = Tensor::random(8, 4, 4, 1);
        let w = layer.random_weights(2);
        let prog = map.materialize(0, &ifm, &w);
        let mut m = Machine::new(&spec);
        let (res, trace) = m.run_block_traced(&prog).unwrap();
        assert_eq!(trace.len() as u64, res.compute_cycles, "one trace row per cycle");
        // Stream cycles show H and V loads; store cycles show writes whose
        // count matches the block's OFM region.
        let first = &trace.cycles()[0];
        assert_eq!(first.h_loads.len(), 4);
        assert_eq!(first.v_loads.len(), 4);
        let stored: u64 = trace.store_cycles().map(|c| c.stores.len() as u64).sum();
        assert_eq!(stored, prog.ofm_words);
        // The rendered trace is one line per cycle and mentions MACs.
        let text = trace.to_string();
        assert_eq!(text.lines().count(), trace.len());
        assert!(text.contains("mac"));
    }

    #[test]
    fn encoded_execution_matches_oracle_execution() {
        // Running from compiled+decoded 36-bit configuration words must be
        // bit-identical to running from the mapping oracle.
        let spec = CgraSpec::np_cgra(4, 4);
        let layer = ConvLayer::depthwise("dw", 2, 12, 12, 3, 1, 1);
        let map = npcgra_kernels::dwc_s1::DwcS1LayerMap::new(&layer, &spec).unwrap();
        let ifm = Tensor::random(2, 12, 12, 9);
        let padded = npcgra_kernels::dwc_general::padded_ifm(&layer, &ifm);
        let w = layer.random_weights(10);
        for b in 0..map.num_blocks() {
            let prog = map.materialize(b, &padded, &w);
            let oracle = Machine::new(&spec).run_block(&prog).unwrap();
            let prog2 = map.materialize(b, &padded, &w);
            let encoded = Machine::new(&spec).run_block_encoded(&prog2).unwrap();
            assert_eq!(oracle.ofm, encoded.ofm, "block {b}");
            assert_eq!(oracle.compute_cycles, encoded.compute_cycles);
            assert_eq!(oracle.mac_ops, encoded.mac_ops);
        }
    }

    #[test]
    fn stall_fault_inflates_cycles_but_not_values() {
        let spec = CgraSpec::np_cgra(4, 4);
        let layer = ConvLayer::pointwise("pw", 8, 8, 4, 4);
        let map = PwcLayerMap::new(&layer, &spec).unwrap();
        let ifm = Tensor::random(8, 4, 4, 1);
        let w = layer.random_weights(2);
        let prog = map.materialize(0, &ifm, &w);
        let clean = Machine::new(&spec).run_block(&prog).unwrap();

        let prog2 = map.materialize(0, &ifm, &w);
        let mut m = Machine::new(&spec);
        m.set_fault_plan(Some(FaultPlan::explicit(vec![crate::fault::Fault {
            tile: 0,
            cycle: 2,
            site: FaultSite::Temporal(TemporalFault::Stall { cycles: 37 }),
        }])));
        let stalled = m.run_block(&prog2).unwrap();
        assert_eq!(stalled.ofm, clean.ofm, "a stall loses time, not data");
        assert_eq!(stalled.compute_cycles, clean.compute_cycles + 37);
        assert_eq!(m.temporal_injected(), 1);
        assert_eq!(m.faults_injected(), 0, "temporal faults are not value faults");
    }

    #[test]
    fn slowdown_fault_multiplies_remaining_tile_cycles() {
        let spec = CgraSpec::np_cgra(4, 4);
        let layer = ConvLayer::pointwise("pw", 8, 8, 1, 4);
        let map = PwcLayerMap::new(&layer, &spec).unwrap();
        let ifm = Tensor::random(8, 1, 4, 1);
        let w = layer.random_weights(2);
        let prog = map.materialize(0, &ifm, &w);
        let clean = Machine::new(&spec).run_block(&prog).unwrap();

        let prog2 = map.materialize(0, &ifm, &w);
        let mut m = Machine::new(&spec);
        m.set_fault_plan(Some(FaultPlan::explicit(vec![crate::fault::Fault {
            tile: 0,
            cycle: 0,
            site: FaultSite::Temporal(TemporalFault::Slowdown { factor: 3 }),
        }])));
        let slowed = m.run_block(&prog2).unwrap();
        assert_eq!(slowed.ofm, clean.ofm, "a slowdown loses time, not data");
        assert!(
            slowed.compute_cycles > clean.compute_cycles,
            "slowdown must inflate cycles ({} vs {})",
            slowed.compute_cycles,
            clean.compute_cycles
        );
    }

    #[test]
    fn cycle_budget_breaks_a_wedge_with_a_typed_error() {
        let spec = CgraSpec::np_cgra(4, 4);
        let layer = ConvLayer::pointwise("pw", 8, 8, 4, 4);
        let map = PwcLayerMap::new(&layer, &spec).unwrap();
        let ifm = Tensor::random(8, 4, 4, 1);
        let w = layer.random_weights(2);
        let prog = map.materialize(0, &ifm, &w);
        let mut m = Machine::new(&spec);
        m.set_fault_plan(Some(FaultPlan::explicit(vec![crate::fault::Fault {
            tile: 0,
            cycle: 1,
            site: FaultSite::Temporal(TemporalFault::Wedge),
        }])));
        m.set_cycle_budget(Some(64));
        let err = m.run_block(&prog).unwrap_err();
        assert_eq!(err.cause, SimCause::CycleBudgetExceeded { budget: 64 });
    }

    #[test]
    fn cancel_token_breaks_a_wedge() {
        let spec = CgraSpec::np_cgra(4, 4);
        let layer = ConvLayer::pointwise("pw", 8, 8, 4, 4);
        let map = PwcLayerMap::new(&layer, &spec).unwrap();
        let ifm = Tensor::random(8, 4, 4, 1);
        let w = layer.random_weights(2);
        let prog = map.materialize(0, &ifm, &w);
        let mut m = Machine::new(&spec);
        m.set_fault_plan(Some(FaultPlan::explicit(vec![crate::fault::Fault {
            tile: 0,
            cycle: 1,
            site: FaultSite::Temporal(TemporalFault::Wedge),
        }])));
        let token = crate::CancelToken::new();
        m.set_cancel_token(Some(token.clone()));
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            token.cancel();
        });
        let err = m.run_block(&prog).unwrap_err();
        canceller.join().unwrap();
        assert_eq!(err.cause, SimCause::Cancelled);
    }

    #[test]
    fn pre_cancelled_token_stops_the_run_at_the_block_boundary() {
        let spec = CgraSpec::np_cgra(4, 4);
        let layer = ConvLayer::pointwise("pw", 8, 8, 4, 4);
        let map = PwcLayerMap::new(&layer, &spec).unwrap();
        let ifm = Tensor::random(8, 4, 4, 1);
        let w = layer.random_weights(2);
        let prog = map.materialize(0, &ifm, &w);
        let mut m = Machine::new(&spec);
        let token = crate::CancelToken::new();
        token.cancel();
        m.set_cancel_token(Some(token));
        let err = m.run_block(&prog).unwrap_err();
        assert_eq!(err.cause, SimCause::Cancelled);
        assert_eq!(err.cycle, 0, "rejected before any cycle executed");
    }

    #[test]
    fn ample_budget_and_fresh_token_change_nothing() {
        let spec = CgraSpec::np_cgra(4, 4);
        let layer = ConvLayer::pointwise("pw", 8, 8, 4, 4);
        let map = PwcLayerMap::new(&layer, &spec).unwrap();
        let ifm = Tensor::random(8, 4, 4, 1);
        let w = layer.random_weights(2);
        let prog = map.materialize(0, &ifm, &w);
        let clean = Machine::new(&spec).run_block(&prog).unwrap();
        let prog2 = map.materialize(0, &ifm, &w);
        let mut m = Machine::new(&spec);
        m.set_cancel_token(Some(crate::CancelToken::new()));
        m.set_cycle_budget(Some(clean.compute_cycles));
        let guarded = m.run_block(&prog2).unwrap();
        assert_eq!(guarded.ofm, clean.ofm);
        assert_eq!(guarded.compute_cycles, clean.compute_cycles);
    }

    #[test]
    fn mac_count_equals_layer_macs_for_exact_tiling() {
        // 8 pixels/8 channels on a 4×4: tiling is exact, so the MACs the
        // array performs equal the layer's MAC count.
        let spec = CgraSpec::np_cgra(4, 4);
        let layer = ConvLayer::pointwise("pw", 8, 8, 1, 8);
        let map = PwcLayerMap::new(&layer, &spec).unwrap();
        let ifm = Tensor::random(8, 1, 8, 3);
        let w = layer.random_weights(4);
        let mut m = Machine::new(&spec);
        let mut macs = 0;
        for b in 0..map.num_blocks() {
            macs += m.run_block(&map.materialize(b, &ifm, &w)).unwrap().mac_ops;
        }
        assert_eq!(macs, layer.macs());
    }
}
