//! Simulation errors with cycle context.

use std::fmt;

use npcgra_arch::pe::PeError;
use npcgra_mem::MemError;

use crate::integrity::Violation;

/// An error raised while executing a block, annotated with where it
/// happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimError {
    /// Block label (layer + block coordinates).
    pub block: String,
    /// Tile index within the block.
    pub tile: usize,
    /// Cycle within the tile.
    pub cycle: u64,
    /// The underlying cause.
    pub cause: SimCause,
}

/// The underlying failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimCause {
    /// A PE selected an unavailable source or an illegal op.
    Pe {
        /// PE coordinates.
        r: usize,
        /// PE coordinates.
        c: usize,
        /// The PE-level error.
        err: PeError,
    },
    /// A local-memory access violated the bank/crossbar rules.
    Mem(MemError),
    /// The schedule asked the GRF for an index that was never loaded.
    GrfIndex(usize),
    /// The layer could not be mapped at all (planner error).
    Map(String),
    /// A host-side output checksum check failed: the block's extracted
    /// words do not satisfy the layer's integrity identity (silent
    /// datapath corruption). The `tile` field of the carrying
    /// [`SimError`] holds the *block index* the violation localized to.
    IntegrityViolation(Violation),
    /// A bank image exceeded the configured bank capacity.
    BankOverflow {
        /// Which memory.
        vmem: bool,
        /// Bank index.
        bank: usize,
        /// Image words.
        need: usize,
        /// Bank capacity in words.
        capacity: usize,
    },
    /// Execution was cooperatively cancelled through the installed
    /// [`CancelToken`](crate::CancelToken) — typically a watchdog
    /// preempting a stuck (gray-failed) run. The carrying
    /// [`SimError`]'s `(tile, cycle)` locate where the run noticed.
    Cancelled,
    /// The run consumed its installed cycle budget without finishing —
    /// the deterministic, wall-clock-free liveness backstop.
    CycleBudgetExceeded {
        /// The budget that was exceeded, in cycles.
        budget: u64,
    },
}

impl SimError {
    pub(crate) fn new(block: &str, tile: usize, cycle: u64, cause: SimCause) -> Self {
        SimError {
            block: block.to_string(),
            tile,
            cycle,
            cause,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulation error in {} tile {} cycle {}: ",
            self.block, self.tile, self.cycle
        )?;
        match &self.cause {
            SimCause::Pe { r, c, err } => write!(f, "PE({r},{c}): {err}"),
            SimCause::Mem(e) => write!(f, "{e}"),
            SimCause::GrfIndex(i) => write!(f, "GRF index {i} not loaded"),
            SimCause::Map(m) => write!(f, "{m}"),
            SimCause::IntegrityViolation(v) => write!(f, "output integrity violation: {v}"),
            SimCause::BankOverflow {
                vmem,
                bank,
                need,
                capacity,
            } => {
                let which = if *vmem { "V-MEM" } else { "H-MEM" };
                write!(f, "{which} bank {bank} image of {need} words exceeds capacity {capacity}")
            }
            SimCause::Cancelled => write!(f, "cancelled by cooperative token (preempted)"),
            SimCause::CycleBudgetExceeded { budget } => {
                write!(f, "cycle budget of {budget} cycles exceeded")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = SimError::new("pw1[y=0]", 3, 17, SimCause::GrfIndex(5));
        let s = e.to_string();
        assert!(s.contains("pw1[y=0]"));
        assert!(s.contains("tile 3"));
        assert!(s.contains("cycle 17"));
        assert!(s.contains("GRF index 5"));
    }
}
