//! Algorithm-based fault tolerance (ABFT): host-side output verification.
//!
//! The fault model ([`crate::fault`]) is explicit that data bit flips in
//! H-MEM/V-MEM, the GRF and the PE accumulators corrupt block outputs
//! *silently* — the memory layouts carry no redundancy. This module closes
//! that hole on the host side: after each block run, the extracted OFM
//! words are checked against a checksum identity computed directly from
//! the layer's inputs and weights, in O(output) extra host work.
//!
//! The identities exploit that the whole datapath is *linear arithmetic
//! mod 2¹⁶*: the 32-bit accumulator wraps, and [`truncate`] (the 16-bit
//! store) is a ring homomorphism onto wrapping [`Word`] arithmetic, so
//! sums of outputs can be predicted exactly with wrapping 16-bit adds and
//! multiplies — no tolerance thresholds, a mismatch is corruption.
//!
//! * **Pointwise / matmul** (the paper's output-stationary PWC mapping is
//!   a tiled matmul, the textbook ABFT target): Huang–Abraham row and
//!   column checksums. Per output channel `o` over the block's pixel set
//!   `P`: `Σ_{p∈P} out(o,p) = Σ_i w(o,i) · Σ_{p∈P} ifm(i,p)`; dually, per
//!   pixel `p` over the block's channel set `O`:
//!   `Σ_{o∈O} out(o,p) = Σ_i (Σ_{o∈O} w(o,i)) · ifm(i,p)`. The row check
//!   localizes a mismatch to an output channel, the column dual to a pixel.
//! * **Depthwise** (any stride, every DWC mapping — §5.2/§5.3/§5.4 and the
//!   matmul lowering): per-channel output sums.
//!   `Σ out_c = Σ_taps w_c[k] · Σ ifm_c over the positions tap k touches`.
//!
//! Activated layers (ReLU / leaky ReLU) are not linear, so the checksum
//! identities do not apply; they fall back to an exact per-element golden
//! recompute of the block's own outputs — same asymptotic cost for
//! depthwise, and still a per-block (not per-layer) cost for pointwise.
//!
//! [`truncate`]: npcgra_nn::truncate

use npcgra_nn::{truncate, Acc, Activation, ConvKind, ConvLayer, Tensor, Word};

/// One extracted output word: `(channel, y, x, value)`, exactly as
/// [`BlockResult::ofm`](crate::BlockResult) carries them.
pub type OfmEntry = (usize, usize, usize, Word);

/// How (and whether) block outputs are verified after execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntegrityMode {
    /// No verification (the pre-ABFT behaviour): silent corruption stays
    /// silent.
    #[default]
    Off,
    /// Verify every block; a mismatch fails the run with
    /// [`SimCause::IntegrityViolation`](crate::SimCause::IntegrityViolation)
    /// so callers can retry (transient faults draw independently per run).
    Verify,
    /// Verify every block; a mismatch is healed in place by recomputing
    /// the block's outputs on the host (golden arithmetic) and counted in
    /// the report instead of failing the run.
    VerifyAndRecompute,
}

/// Which checksum identity a violation tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckKind {
    /// Depthwise per-channel output sum (`lane` = channel).
    ChannelSum,
    /// Pointwise row checksum (`lane` = output channel).
    RowChecksum,
    /// Pointwise column checksum (`lane` = pixel index `y·W + x`).
    ColumnChecksum,
    /// Exact per-element recompute, used for activated (non-linear) layers
    /// (`lane` = flat output index).
    Element,
}

impl std::fmt::Display for CheckKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckKind::ChannelSum => f.write_str("channel-sum"),
            CheckKind::RowChecksum => f.write_str("row-checksum"),
            CheckKind::ColumnChecksum => f.write_str("column-checksum"),
            CheckKind::Element => f.write_str("element"),
        }
    }
}

/// A failed output-integrity check: which identity, where, and the two
/// checksum values that disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// The identity that tripped.
    pub kind: CheckKind,
    /// Channel or pixel the mismatch localizes to (see [`CheckKind`]).
    pub lane: usize,
    /// Checksum predicted from inputs and weights.
    pub expected: Word,
    /// Checksum of the words the machine actually produced.
    pub actual: Word,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} mismatch on lane {}: expected {:#06x}, got {:#06x}",
            self.kind, self.lane, self.expected as u16, self.actual as u16
        )
    }
}

/// Verify one block's extracted outputs against the layer's checksum
/// identity (or, for activated layers, an exact per-element recompute).
///
/// `ifm` is the layer's *raw* input (zero padding is applied here, exactly
/// as the golden reference does); `entries` are the block's OFM words as
/// the machine extracted them. The check costs O(`entries`) host work
/// (times the constant kernel size for depthwise).
///
/// # Errors
///
/// Returns the first [`Violation`] found. The identities are exact mod
/// 2¹⁶, so a violation is always real corruption; a passing check bounds
/// undetected corruption to errors that cancel in every checksum.
pub fn verify_block(layer: &ConvLayer, ifm: &Tensor, weights: &Tensor, entries: &[OfmEntry]) -> Result<(), Violation> {
    if entries.is_empty() {
        return Ok(());
    }
    if layer.activation() != Activation::None {
        return verify_elements(layer, ifm, weights, entries);
    }
    match layer.kind() {
        ConvKind::Depthwise => verify_depthwise(layer, ifm, weights, entries),
        ConvKind::Pointwise => verify_pointwise(layer, ifm, weights, entries),
        // Standard convolution never reaches the block path directly (it is
        // lowered through im2col), but stay total for robustness.
        ConvKind::Standard => verify_elements(layer, ifm, weights, entries),
    }
}

/// Recompute every entry of a failed block on the host (golden arithmetic)
/// and patch the extracted words in place — the recovery half of
/// [`IntegrityMode::VerifyAndRecompute`].
pub fn heal_block(layer: &ConvLayer, ifm: &Tensor, weights: &Tensor, entries: &mut [OfmEntry]) {
    for e in entries.iter_mut() {
        e.3 = golden_element(layer, ifm, weights, e.0, e.1, e.2);
    }
}

/// Depthwise: per-channel output sums against
/// `Σ out_c = Σ_taps w_c[k] · Σ ifm_c over the positions tap k touches`.
fn verify_depthwise(layer: &ConvLayer, ifm: &Tensor, weights: &Tensor, entries: &[OfmEntry]) -> Result<(), Violation> {
    let (k, s) = (layer.k(), layer.s());
    let pad = layer.pad() as isize;
    let mut by_channel: std::collections::BTreeMap<usize, (Vec<(usize, usize)>, Word)> = std::collections::BTreeMap::new();
    for &(c, y, x, v) in entries {
        let slot = by_channel.entry(c).or_default();
        slot.0.push((y, x));
        slot.1 = slot.1.wrapping_add(v);
    }
    for (c, (positions, actual)) in by_channel {
        let mut expected: Word = 0;
        for ky in 0..k {
            for kx in 0..k {
                let mut tap_sum: Word = 0;
                for &(oy, ox) in &positions {
                    let iy = (oy * s + ky) as isize - pad;
                    let ix = (ox * s + kx) as isize - pad;
                    tap_sum = tap_sum.wrapping_add(ifm.get_padded(c, iy, ix));
                }
                expected = expected.wrapping_add(weights.get(c, ky, kx).wrapping_mul(tap_sum));
            }
        }
        if expected != actual {
            return Err(Violation {
                kind: CheckKind::ChannelSum,
                lane: c,
                expected,
                actual,
            });
        }
    }
    Ok(())
}

/// Pointwise: Huang–Abraham row checksums (per output channel, localizing
/// to a channel) and column checksums (per pixel, localizing to a pixel).
///
/// Input-side sums are memoized per distinct pixel/channel *set*, so a
/// rectangular block pays each input word once, not once per output row.
fn verify_pointwise(layer: &ConvLayer, ifm: &Tensor, weights: &Tensor, entries: &[OfmEntry]) -> Result<(), Violation> {
    use std::collections::BTreeMap;
    let n_i = layer.in_channels();

    // Row checksums: per output channel over its pixel set.
    let mut by_out: BTreeMap<usize, (Vec<(usize, usize)>, Word)> = BTreeMap::new();
    for &(o, y, x, v) in entries {
        let slot = by_out.entry(o).or_default();
        slot.0.push((y, x));
        slot.1 = slot.1.wrapping_add(v);
    }
    // Per-input-channel pixel sums, memoized by pixel set (blocks are
    // rectangular, so usually one distinct set).
    let mut pixel_sums: BTreeMap<Vec<(usize, usize)>, Vec<Word>> = BTreeMap::new();
    for (o, (mut pixels, actual)) in by_out {
        pixels.sort_unstable();
        let sums = pixel_sums.entry(pixels).or_insert_with_key(|pixels| {
            (0..n_i)
                .map(|i| {
                    pixels
                        .iter()
                        .fold(0 as Word, |acc, &(y, x)| acc.wrapping_add(ifm.get(i, y, x)))
                })
                .collect()
        });
        let mut expected: Word = 0;
        for (i, &sum) in sums.iter().enumerate() {
            expected = expected.wrapping_add(weights.get(o, 0, i).wrapping_mul(sum));
        }
        if expected != actual {
            return Err(Violation {
                kind: CheckKind::RowChecksum,
                lane: o,
                expected,
                actual,
            });
        }
    }

    // Column checksums: per pixel over its output-channel set.
    let mut by_pixel: BTreeMap<(usize, usize), (Vec<usize>, Word)> = BTreeMap::new();
    for &(o, y, x, v) in entries {
        let slot = by_pixel.entry((y, x)).or_default();
        slot.0.push(o);
        slot.1 = slot.1.wrapping_add(v);
    }
    // Weight column sums, memoized by output-channel set.
    let mut col_weights: BTreeMap<Vec<usize>, Vec<Word>> = BTreeMap::new();
    for ((y, x), (mut outs, actual)) in by_pixel {
        outs.sort_unstable();
        let cols = col_weights.entry(outs).or_insert_with_key(|outs| {
            (0..n_i)
                .map(|i| outs.iter().fold(0 as Word, |acc, &o| acc.wrapping_add(weights.get(o, 0, i))))
                .collect()
        });
        let mut expected: Word = 0;
        for (i, &wsum) in cols.iter().enumerate() {
            expected = expected.wrapping_add(wsum.wrapping_mul(ifm.get(i, y, x)));
        }
        if expected != actual {
            return Err(Violation {
                kind: CheckKind::ColumnChecksum,
                lane: y * layer.out_w() + x,
                expected,
                actual,
            });
        }
    }
    Ok(())
}

/// Exact per-element golden recompute of the block's own outputs — the
/// fallback for activated (non-linear) layers, where the checksum
/// identities do not hold.
fn verify_elements(layer: &ConvLayer, ifm: &Tensor, weights: &Tensor, entries: &[OfmEntry]) -> Result<(), Violation> {
    for &(c, y, x, v) in entries {
        let expected = golden_element(layer, ifm, weights, c, y, x);
        if expected != v {
            return Err(Violation {
                kind: CheckKind::Element,
                lane: (c * layer.out_h() + y) * layer.out_w() + x,
                expected,
                actual: v,
            });
        }
    }
    Ok(())
}

/// One output element via the golden reference arithmetic (wrapping 32-bit
/// accumulation, activation at accumulator level, 16-bit truncation) —
/// bit-identical to [`npcgra_nn::reference::run_layer`].
fn golden_element(layer: &ConvLayer, ifm: &Tensor, weights: &Tensor, c: usize, oy: usize, ox: usize) -> Word {
    let mut acc: Acc = 0;
    match layer.kind() {
        ConvKind::Depthwise => {
            let (k, s) = (layer.k(), layer.s());
            let pad = layer.pad() as isize;
            for ky in 0..k {
                for kx in 0..k {
                    let iy = (oy * s + ky) as isize - pad;
                    let ix = (ox * s + kx) as isize - pad;
                    let x = ifm.get_padded(c, iy, ix);
                    acc = acc.wrapping_add(Acc::from(x).wrapping_mul(Acc::from(weights.get(c, ky, kx))));
                }
            }
        }
        ConvKind::Pointwise => {
            for i in 0..layer.in_channels() {
                acc = acc.wrapping_add(Acc::from(ifm.get(i, oy, ox)).wrapping_mul(Acc::from(weights.get(c, 0, i))));
            }
        }
        ConvKind::Standard => {
            let (k, s) = (layer.k(), layer.s());
            let pad = layer.pad() as isize;
            let g = layer.groups();
            let cin_per_g = layer.in_channels() / g;
            let cout_per_g = layer.out_channels() / g;
            let grp = c / cout_per_g;
            for ci in 0..cin_per_g {
                let ch = grp * cin_per_g + ci;
                for ky in 0..k {
                    for kx in 0..k {
                        let iy = (oy * s + ky) as isize - pad;
                        let ix = (ox * s + kx) as isize - pad;
                        let x = ifm.get_padded(ch, iy, ix);
                        let wv = weights.get(c, ky, kx * cin_per_g + ci);
                        acc = acc.wrapping_add(Acc::from(x).wrapping_mul(Acc::from(wv)));
                    }
                }
            }
        }
    }
    truncate(layer.activation().apply_acc(acc))
}

/// A positional checksum of a whole tensor, for verifying inter-stage
/// activation handoffs in pipelined whole-model serving.
///
/// Unlike the per-block ABFT identities above (which predict outputs from
/// inputs), this is a plain content hash: each word is mixed with its flat
/// index through splitmix64 and the mixes are wrapping-summed, so any
/// single-bit flip — and any transposition of two unequal words — changes
/// the result. It costs O(len) and is a pure function of the tensor's
/// shape and contents.
#[must_use]
pub fn tensor_checksum(t: &Tensor) -> u64 {
    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
    let (c, h, w) = t.shape();
    let mut sum = splitmix64((c as u64) << 42 ^ (h as u64) << 21 ^ w as u64);
    for (i, &v) in t.as_slice().iter().enumerate() {
        sum = sum.wrapping_add(splitmix64((i as u64) << 16 ^ u64::from(v as u16)));
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use npcgra_nn::reference;

    /// Turn a golden OFM tensor into the entry list a block would extract.
    fn entries_of(ofm: &Tensor) -> Vec<OfmEntry> {
        let (c, h, w) = ofm.shape();
        let mut out = Vec::with_capacity(c * h * w);
        for ci in 0..c {
            for y in 0..h {
                for x in 0..w {
                    out.push((ci, y, x, ofm.get(ci, y, x)));
                }
            }
        }
        out
    }

    fn layers() -> Vec<ConvLayer> {
        vec![
            ConvLayer::pointwise("pw", 9, 7, 5, 6),
            ConvLayer::depthwise("dw1", 3, 11, 9, 3, 1, 1),
            ConvLayer::depthwise("dw2", 2, 12, 12, 3, 2, 1),
            ConvLayer::depthwise("dw5", 2, 13, 13, 5, 1, 2),
            ConvLayer::standard("st", 4, 4, 6, 6, 3, 1, 1, 2),
        ]
    }

    #[test]
    fn correct_outputs_satisfy_every_identity() {
        for layer in layers() {
            let ifm = Tensor::random(layer.in_channels(), layer.in_h(), layer.in_w(), 7);
            let w = layer.random_weights(8);
            let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
            verify_block(&layer, &ifm, &w, &entries_of(&golden)).unwrap_or_else(|v| panic!("{}: {v}", layer.name()));
        }
    }

    #[test]
    fn a_single_flipped_word_is_detected() {
        for layer in layers() {
            let ifm = Tensor::random(layer.in_channels(), layer.in_h(), layer.in_w(), 17);
            let w = layer.random_weights(18);
            let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
            let mut entries = entries_of(&golden);
            entries[3].3 ^= 1 << 5;
            let v = verify_block(&layer, &ifm, &w, &entries).expect_err(layer.name());
            assert_ne!(v.expected, v.actual);
        }
    }

    #[test]
    fn partial_blocks_verify_too() {
        // Blocks cover subsets of the OFM; the identities must hold over
        // any entry subset, not just whole layers.
        let layer = ConvLayer::pointwise("pw", 8, 6, 4, 4);
        let ifm = Tensor::random(8, 4, 4, 3);
        let w = layer.random_weights(4);
        let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
        let entries = entries_of(&golden);
        for chunk in entries.chunks(5) {
            verify_block(&layer, &ifm, &w, chunk).unwrap();
        }
        let dw = ConvLayer::depthwise("dw", 2, 9, 9, 3, 2, 1);
        let ifm = Tensor::random(2, 9, 9, 5);
        let w = dw.random_weights(6);
        let golden = reference::run_layer(&dw, &ifm, &w).unwrap();
        for chunk in entries_of(&golden).chunks(7) {
            verify_block(&dw, &ifm, &w, chunk).unwrap();
        }
    }

    #[test]
    fn pointwise_row_check_localizes_the_output_channel() {
        let layer = ConvLayer::pointwise("pw", 6, 5, 3, 3);
        let ifm = Tensor::random(6, 3, 3, 9);
        let w = layer.random_weights(10);
        let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
        let mut entries = entries_of(&golden);
        // Corrupt an output of channel 4.
        let idx = entries.iter().position(|e| e.0 == 4).unwrap();
        entries[idx].3 = entries[idx].3.wrapping_add(1);
        let v = verify_block(&layer, &ifm, &w, &entries).unwrap_err();
        assert_eq!(v.kind, CheckKind::RowChecksum);
        assert_eq!(v.lane, 4);
    }

    #[test]
    fn activated_layers_use_the_exact_element_path() {
        let layer = ConvLayer::depthwise("dw", 2, 8, 8, 3, 1, 1).with_activation(Activation::Relu);
        let ifm = Tensor::random(2, 8, 8, 11);
        let w = layer.random_weights(12);
        let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
        let mut entries = entries_of(&golden);
        verify_block(&layer, &ifm, &w, &entries).unwrap();
        entries[9].3 = entries[9].3.wrapping_add(2);
        let v = verify_block(&layer, &ifm, &w, &entries).unwrap_err();
        assert_eq!(v.kind, CheckKind::Element);
    }

    #[test]
    fn heal_restores_golden_values() {
        for layer in layers() {
            let ifm = Tensor::random(layer.in_channels(), layer.in_h(), layer.in_w(), 21);
            let w = layer.random_weights(22);
            let golden = reference::run_layer(&layer, &ifm, &w).unwrap();
            let mut entries = entries_of(&golden);
            entries[0].3 ^= 0x40;
            entries[5].3 = entries[5].3.wrapping_sub(3);
            heal_block(&layer, &ifm, &w, &mut entries);
            assert_eq!(entries, entries_of(&golden), "{}", layer.name());
            verify_block(&layer, &ifm, &w, &entries).unwrap();
        }
    }

    #[test]
    fn empty_entry_lists_are_trivially_valid() {
        let layer = ConvLayer::pointwise("pw", 4, 4, 2, 2);
        let ifm = Tensor::zeros(4, 2, 2);
        let w = layer.random_weights(1);
        verify_block(&layer, &ifm, &w, &[]).unwrap();
    }

    #[test]
    fn tensor_checksum_catches_flips_and_swaps() {
        let t = Tensor::random(3, 5, 7, 9);
        let base = tensor_checksum(&t);
        assert_eq!(base, tensor_checksum(&t.clone()), "checksum is a pure function");

        let mut flipped = t.clone();
        let v = flipped.get(1, 2, 3);
        flipped.set(1, 2, 3, v ^ 1);
        assert_ne!(base, tensor_checksum(&flipped), "a single bit flip must change the sum");

        // Transposing two unequal words changes the sum (a plain word-sum
        // would miss this; the positional mix does not).
        let mut swapped = t.clone();
        let (a, b) = (t.get(0, 0, 0), t.get(2, 4, 6));
        assert_ne!(a, b, "test fixture needs distinct words");
        swapped.set(0, 0, 0, b);
        swapped.set(2, 4, 6, a);
        assert_ne!(base, tensor_checksum(&swapped));

        // Same contents, different shape: the shape is part of the sum.
        let reshaped = Tensor::from_fn(5, 3, 7, |c, y, x| t.get(y, c, x));
        assert_ne!(base, tensor_checksum(&reshaped));
    }
}
