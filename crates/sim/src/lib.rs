//! Cycle-accurate NP-CGRA simulator (§6.1).
//!
//! [`Machine`] wires together the component models — PEs with dual-mode MACs
//! and the operand reuse network (`npcgra-arch`), banked H-MEM/V-MEM with
//! crossbar and conflict checking (`npcgra-mem`), and the AGU address
//! algorithms (`npcgra-agu`) — and executes the [`BlockProgram`]s produced
//! by the kernel mappings one cycle at a time. Every load really flows
//! H-MEM → bus → PE mux, every reuse really crosses the operand-reuse
//! latches, and every result is stored back through the AGU-generated
//! addresses, so a functional mismatch *anywhere* in the mapping stack
//! surfaces as a wrong output word.
//!
//! [`layer`] runs whole layers: functionally (producing an OFM tensor to
//! compare against the golden reference) or timing-only (same cycle
//! accounting without data movement, for the large evaluation models), with
//! the double-buffered DMA pipeline of Table 4's two memory sets.
//!
//! [`BlockProgram`]: npcgra_kernels::BlockProgram

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cancel;
pub mod compiled;
pub mod error;
pub mod exec;
pub mod fault;
pub mod integrity;
pub mod layer;
pub mod machine;
pub mod model;
pub mod report;
pub mod trace;

pub use cancel::CancelToken;
pub use compiled::{CompiledLayer, PreparedIfm, ResolvedMapping};
pub use error::{SimCause, SimError};
pub use exec::{backend_for, functional_ofm, BackendTier, ExecutionBackend, FastMachine};
pub use fault::{Fault, FaultDims, FaultPlan, FaultSite, GrayRates, TemporalFault};
pub use integrity::{tensor_checksum, CheckKind, IntegrityMode, Violation};
pub use layer::{
    estimate_layer_energy, run_batched_dwc, run_layer, run_layer_parallel, run_matmul_dwc, run_standard_via_im2col, time_layer,
    time_layer_single_buffered, MappingKind,
};
pub use machine::{BlockResult, Machine};
pub use model::{CompiledModel, StagePlan};
pub use report::LayerReport;
pub use trace::{CycleTrace, Trace};
