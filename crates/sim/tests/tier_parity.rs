//! Differential property tests: the functional fast tier versus the
//! cycle-accurate machine.
//!
//! The fast tier's contract is total indistinguishability on fault-free
//! runs: **bit-exact outputs** (same `Word` wrapping arithmetic, same
//! fused activations, same truncation) and **identical charged cycles**
//! (the closed-form latency models of §5 — `N_i + λ` per DWC output, `K² +
//! N_c − 1 + λ` per PWC column — which [`CompiledLayer::timing_report`]
//! folds through the same double-buffered DMA pipeline the machine
//! simulates). Any layer geometry where either diverges is a bug in one
//! tier or the other, so we let proptest hunt the geometry space instead
//! of hand-picking shapes.
//!
//! Standard convolutions never reach a `CompiledLayer` (they lower through
//! im2col); for them the fast tier's functional kernel is checked against
//! the golden host reference directly, grouped variants included.

use npcgra_arch::CgraSpec;
use npcgra_nn::{reference, Activation, ConvLayer, Tensor};
use npcgra_sim::{functional_ofm, CompiledLayer, ExecutionBackend, FastMachine, Machine, MappingKind};
use proptest::prelude::*;

fn activation_strategy() -> impl Strategy<Value = Activation> {
    prop_oneof![
        Just(Activation::None),
        Just(Activation::Relu),
        (1u8..5).prop_map(|shift| Activation::LeakyRelu { shift }),
    ]
}

/// Random DWC geometries: channels, size, kernel, stride, activation.
/// Padding is kept at `k/2` (the paper's "same"-ish padding) so every
/// geometry maps; strides of 2 exercise the strided AGU paths.
fn dwc_strategy() -> impl Strategy<Value = ConvLayer> {
    (
        1usize..6,
        4usize..12,
        4usize..12,
        prop_oneof![Just(3usize), Just(5usize)],
        1usize..3,
        activation_strategy(),
    )
        .prop_map(|(ch, h, w, k, s, act)| ConvLayer::depthwise("parity.dw", ch, h, w, k, s, k / 2).with_activation(act))
}

/// Random PWC geometries: in/out channels, size, activation.
fn pwc_strategy() -> impl Strategy<Value = ConvLayer> {
    (1usize..7, 1usize..7, 2usize..10, 2usize..10, activation_strategy())
        .prop_map(|(ci, co, h, w, act)| ConvLayer::pointwise("parity.pw", ci, co, h, w).with_activation(act))
}

/// Random standard-conv geometries, grouped variants included: `ci` is a
/// multiple of `groups` by construction.
fn standard_strategy() -> impl Strategy<Value = ConvLayer> {
    (
        1usize..4,
        1usize..5,
        1usize..4,
        3usize..8,
        3usize..8,
        1usize..3,
        activation_strategy(),
    )
        .prop_map(|(groups, ci_per, co_per, h, w, s, act)| {
            ConvLayer::standard("parity.std", ci_per * groups, co_per * groups, h, w, 3, s, 1, groups).with_activation(act)
        })
}

/// Run `layer` through both tiers on a small machine and assert the full
/// parity contract: outputs, total cycles, compute cycles, DMA cycles and
/// MAC counts all identical — and equal to the closed-form timing report.
fn assert_tier_parity(layer: &ConvLayer, seed: u64) -> Result<(), TestCaseError> {
    let spec = CgraSpec::np_cgra(4, 4);
    let compiled = match CompiledLayer::compile(layer, &spec, MappingKind::Auto) {
        Ok(c) => c,
        // A geometry the mapper rejects is outside the contract; skip it.
        Err(_) => return Ok(()),
    };
    let ifm = Tensor::random(layer.in_channels(), layer.in_h(), layer.in_w(), seed);
    let weights = layer.random_weights(seed ^ 0xA5A5);

    let mut cycle = Machine::new(&spec);
    let (golden_ofm, golden_report) = compiled.run_on(&mut cycle, &ifm, &weights).expect("cycle tier runs");
    let mut fast = FastMachine::new(&spec);
    let (fast_ofm, fast_report) = fast.run_layer(&compiled, &ifm, &weights).expect("fast tier runs");

    prop_assert_eq!(&fast_ofm, &golden_ofm, "fast-tier output bits diverged");
    prop_assert_eq!(fast_report.cycles, golden_report.cycles, "charged cycles diverged");
    prop_assert_eq!(
        fast_report.compute_cycles,
        golden_report.compute_cycles,
        "compute cycles diverged"
    );
    prop_assert_eq!(fast_report.dma_cycles, golden_report.dma_cycles, "DMA cycles diverged");
    prop_assert_eq!(fast_report.macs, golden_report.macs, "MAC count diverged");

    let closed_form = compiled.timing_report();
    prop_assert_eq!(
        fast_report.cycles,
        closed_form.cycles,
        "analytical charge left the closed-form model"
    );

    // And both tiers must agree with the golden host reference.
    let host = reference::run_layer(layer, &ifm, &weights).expect("reference runs");
    prop_assert_eq!(&fast_ofm, &host, "tiers agree with each other but not the host reference");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random depthwise layers: bit-exact outputs and identical cycle
    /// charges across tiers, equal to the `N_i + λ` closed form.
    #[test]
    fn dwc_layers_are_tier_identical(layer in dwc_strategy(), seed in any::<u64>()) {
        assert_tier_parity(&layer, seed)?;
    }

    /// Random pointwise layers: bit-exact outputs and identical cycle
    /// charges across tiers, equal to the `K² + N_c − 1 + λ` closed form.
    #[test]
    fn pwc_layers_are_tier_identical(layer in pwc_strategy(), seed in any::<u64>()) {
        assert_tier_parity(&layer, seed)?;
    }

    /// Random standard convolutions (grouped included): the fast tier's
    /// functional kernel matches the golden host reference bit-exactly.
    /// (`CompiledLayer` rejects standard convs, so there is no schedule to
    /// replay — in serving they stay on the im2col cycle-accurate path.)
    #[test]
    fn standard_conv_functional_kernel_matches_reference(layer in standard_strategy(), seed in any::<u64>()) {
        let ifm = Tensor::random(layer.in_channels(), layer.in_h(), layer.in_w(), seed);
        let weights = layer.random_weights(seed ^ 0x57D);
        let host = reference::run_layer(&layer, &ifm, &weights).expect("reference runs");
        prop_assert_eq!(functional_ofm(&layer, &ifm, &weights), host);
    }
}
