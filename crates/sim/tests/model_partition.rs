//! Property tests for the [`CompiledModel`] linear-partition DP.
//!
//! Random valid DSC chains (fused depthwise→pointwise pairs and lone
//! pointwise blocks, shapes chained) are compiled into every feasible
//! stage count, and the partition must always:
//!
//! * cover the chain contiguously, with every stage boundary on a fused
//!   unit edge — a DWC→PWC pair is never split across stages;
//! * be cycle-balanced within the classic linear-partition bound
//!   (`max stage ≤ total/stages + max unit cost`);
//! * conserve work and handoffs: per-stage predicted cycles sum to the
//!   chain total, and each boundary's DMA price is exactly two
//!   [`DmaEngine::transfer_cycles`] passes over the producer's output.

use npcgra_arch::CgraSpec;
use npcgra_mem::DmaEngine;
use npcgra_nn::ConvLayer;
use npcgra_sim::CompiledModel;
use proptest::prelude::*;

/// One chain block: a fused dw→pw pair or a lone pw, with its output
/// channel count. Spatial size is preserved (k=3, stride 1, pad 1 for the
/// depthwise) so blocks chain without shape bookkeeping.
#[derive(Debug, Clone, Copy)]
struct Block {
    fused: bool,
    out_c: usize,
}

fn blocks_strategy() -> impl Strategy<Value = (usize, Vec<Block>)> {
    let block = (any::<bool>(), 1usize..6).prop_map(|(fused, out_c)| Block { fused, out_c });
    (1usize..6, proptest::collection::vec(block, 1..6))
}

/// Materialize a block list into a valid layer chain starting at `c0`
/// input channels on an 8×8 feature map.
fn chain(c0: usize, blocks: &[Block]) -> Vec<ConvLayer> {
    let mut layers = Vec::new();
    let mut c = c0;
    for (i, b) in blocks.iter().enumerate() {
        if b.fused {
            layers.push(ConvLayer::depthwise(&format!("dw{i}"), c, 8, 8, 3, 1, 1));
        }
        layers.push(ConvLayer::pointwise(&format!("pw{i}"), c, b.out_c, 8, 8));
        c = b.out_c;
    }
    layers
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The partition covers the chain contiguously and never splits a
    /// fused DWC→PWC unit: every stage boundary lands on a unit edge.
    #[test]
    fn stages_cover_contiguously_on_unit_boundaries((c0, blocks) in blocks_strategy(), stages in 1usize..8) {
        let layers = chain(c0, &blocks);
        let spec = CgraSpec::np_cgra(4, 4);
        let model = CompiledModel::compile("prop", &layers, &spec, stages).unwrap();

        prop_assert_eq!(model.num_units(), blocks.len(), "one unit per block");
        prop_assert_eq!(model.num_stages(), stages.clamp(1, model.num_units()));

        let mut next = 0usize;
        for plan in model.stages() {
            let r = plan.layers();
            prop_assert_eq!(r.start, next, "stages must tile the chain in order");
            prop_assert!(r.end > r.start);
            prop_assert!(
                model.units().iter().any(|u| u.start == r.start),
                "stage start {} is not a unit edge", r.start
            );
            prop_assert!(
                model.units().iter().any(|u| u.end == r.end),
                "stage end {} is not a unit edge (a fused pair was split)", r.end
            );
            next = r.end;
        }
        prop_assert_eq!(next, model.num_layers(), "the last stage must end the chain");
    }

    /// Cycle balance: the DP's bottleneck stage is within the linear-
    /// partition bound, and per-stage predicted cycles conserve the
    /// chain's total (which is the sum of the unit costs).
    #[test]
    fn partition_is_balanced_and_conserves_cycles((c0, blocks) in blocks_strategy(), stages in 1usize..8) {
        let layers = chain(c0, &blocks);
        let spec = CgraSpec::np_cgra(4, 4);
        let model = CompiledModel::compile("prop", &layers, &spec, stages).unwrap();

        let unit_costs: Vec<u64> = model
            .units()
            .iter()
            .map(|u| u.clone().map(|l| model.layer(l).timing_report().cycles).sum())
            .collect();
        let total: u64 = unit_costs.iter().sum();
        prop_assert_eq!(model.predicted_cycles(), total, "stage cycles must conserve the chain total");

        let per_stage: u64 = model.stages().iter().map(|p| p.predicted_cycles()).sum();
        prop_assert_eq!(per_stage, total);

        let bottleneck = model.stages().iter().map(|p| p.predicted_cycles()).max().unwrap();
        let max_unit = unit_costs.iter().copied().max().unwrap();
        let bound = total / model.num_stages() as u64 + max_unit;
        prop_assert!(
            bottleneck <= bound,
            "bottleneck {} exceeds the linear-partition bound {} (total {}, stages {}, max unit {})",
            bottleneck, bound, total, model.num_stages(), max_unit
        );
    }

    /// Handoff conservation: every non-final boundary prices its tensor at
    /// exactly two DMA passes over the producer's output words; the final
    /// stage hands off nothing.
    #[test]
    fn handoffs_price_boundary_tensors_exactly((c0, blocks) in blocks_strategy(), stages in 1usize..8) {
        let layers = chain(c0, &blocks);
        let spec = CgraSpec::np_cgra(4, 4);
        let model = CompiledModel::compile("prop", &layers, &spec, stages).unwrap();
        let engine = DmaEngine::new(&spec);

        for (s, plan) in model.stages().iter().enumerate() {
            if s + 1 == model.num_stages() {
                prop_assert_eq!(plan.handoff_words(), 0, "the final stage hands off nothing");
                prop_assert_eq!(model.handoff_cycles(s), 0);
            } else {
                let last = &layers[plan.layers().end - 1];
                let words = (last.out_channels() * last.out_h() * last.out_w()) as u64;
                prop_assert_eq!(plan.handoff_words(), words, "handoff words must match the boundary tensor");
                prop_assert!(words > 0);
                prop_assert_eq!(model.handoff_cycles(s), 2 * engine.transfer_cycles(words));
            }
        }
    }
}
