//! Property tests for [`FaultPlan`]: the fault schedule — bit flips *and*
//! temporal (gray) faults — must be a pure function of
//! `(seed, run, tile, cycle, dims)`. Purity is what makes a whole chaos
//! soak reproducible from one seed, and what lets a *retry* of a
//! preempted batch trust that it sees the plan, not leftover state.

use npcgra_sim::{FaultDims, FaultPlan, FaultSite, GrayRates, TemporalFault};
use proptest::prelude::*;

fn dims_strategy() -> impl Strategy<Value = FaultDims> {
    (1usize..8, 1usize..8, 1usize..8, 1usize..128, 1usize..8, 1usize..128).prop_map(
        |(rows, cols, h_banks, h_words, v_banks, v_words)| FaultDims {
            rows,
            cols,
            h_banks,
            h_words,
            v_banks,
            v_words,
        },
    )
}

/// The vendored proptest has no `f64` range strategy; sample per-mille.
fn rate_strategy() -> impl Strategy<Value = f64> {
    #[allow(clippy::cast_precision_loss)]
    (0u32..500).prop_map(|p| f64::from(p) / 1000.0)
}

fn gray_rates() -> impl Strategy<Value = GrayRates> {
    (rate_strategy(), 1u64..512, 2u32..32).prop_map(|(rate, stall_cycles, slowdown_factor)| GrayRates {
        rate,
        stall_cycles,
        slowdown_factor,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same `(seed, run, tile, cycle, dims)`, same sites — across repeated
    /// calls, plan clones, and a freshly constructed identical plan.
    #[test]
    fn bernoulli_sites_are_pure(
        seed in any::<u64>(),
        rate in rate_strategy(),
        run in 0u64..64,
        tile in 0usize..64,
        cycle in 0u64..4096,
        dims in dims_strategy(),
    ) {
        let plan = FaultPlan::bernoulli(seed, rate);
        let first = plan.sites_at(run, tile, cycle, &dims);
        prop_assert_eq!(&first, &plan.sites_at(run, tile, cycle, &dims), "repeat call");
        prop_assert_eq!(&first, &plan.clone().sites_at(run, tile, cycle, &dims), "clone");
        let rebuilt = FaultPlan::bernoulli(seed, rate);
        prop_assert_eq!(&first, &rebuilt.sites_at(run, tile, cycle, &dims), "rebuilt plan");
    }

    /// Gray plans (temporal faults included) are equally pure, and every
    /// drawn temporal fault carries exactly the configured parameters.
    #[test]
    fn gray_sites_are_pure_and_well_formed(
        seed in any::<u64>(),
        flip_rate in rate_strategy(),
        rates in gray_rates(),
        run in 0u64..64,
        tile in 0usize..64,
        cycle in 0u64..4096,
        dims in dims_strategy(),
    ) {
        let plan = FaultPlan::gray(seed, flip_rate, rates);
        let first = plan.sites_at(run, tile, cycle, &dims);
        prop_assert_eq!(&first, &plan.sites_at(run, tile, cycle, &dims), "repeat call");
        prop_assert_eq!(&first, &plan.clone().sites_at(run, tile, cycle, &dims), "clone");
        let rebuilt = FaultPlan::gray(seed, flip_rate, rates);
        prop_assert_eq!(&first, &rebuilt.sites_at(run, tile, cycle, &dims), "rebuilt plan");
        for site in first {
            if let FaultSite::Temporal(t) = site {
                match t {
                    TemporalFault::Stall { cycles } => prop_assert_eq!(cycles, rates.stall_cycles.max(1)),
                    TemporalFault::Slowdown { factor } => prop_assert_eq!(factor, rates.slowdown_factor.max(2)),
                    TemporalFault::Wedge => {}
                }
            }
        }
    }

    /// Any single coordinate change is an independent draw: purity means
    /// determinism in the inputs, not a constant schedule. (Statistical:
    /// at a high temporal rate, *some* nearby point must differ.)
    #[test]
    fn gray_draws_depend_on_the_point(
        seed in any::<u64>(),
        run in 0u64..16,
        tile in 0usize..16,
    ) {
        let rates = GrayRates { rate: 0.9, stall_cycles: 7, slowdown_factor: 3 };
        let plan = FaultPlan::gray(seed, 0.0, rates);
        let d = FaultDims { rows: 4, cols: 4, h_banks: 4, h_words: 64, v_banks: 4, v_words: 64 };
        let base: Vec<_> = (0..64).map(|c| plan.sites_at(run, tile, c, &d)).collect();
        let other_run: Vec<_> = (0..64).map(|c| plan.sites_at(run + 1, tile, c, &d)).collect();
        // The run ordinal must enter the hash: a retry sees a fresh draw.
        prop_assert_ne!(base, other_run);
    }

    /// `FaultPlan::none` is the identity schedule everywhere.
    #[test]
    fn none_plan_is_empty_everywhere(
        run in 0u64..256,
        tile in 0usize..256,
        cycle in 0u64..65536,
        dims in dims_strategy(),
    ) {
        prop_assert!(FaultPlan::none().sites_at(run, tile, cycle, &dims).is_empty());
    }
}
