//! DWC address generation for arbitrary stride (Algorithm 2, §5.2).
//!
//! The tile computes an `N_r × N_c` output patch of one channel. For each of
//! the `K` weight rows (`t_wrap`), H-AGU `r` streams the `(N_c−1)·S + K`
//! IFM elements of input row `(tid_r·N_r + r)·S + t_wrap` across its H-bus;
//! PE `(r, c)` MACs whenever the streamed `x` position falls in its window
//! (`c·S ≤ t_wcycle < c·S + K`), taking the weight from V-bus `c`
//! (`W(t_wrap, t_wcycle − c·S)`, weights duplicated across V-MEM banks).
//! A final phase stores the tile, one output column per cycle per row port.
//!
//! Data layout (Fig. 10): each run of `S` consecutive IFM rows maps to the
//! next H-MEM bank round-robin, and rows within a bank are concatenated, so
//! the `N_r` H-AGUs provably never collide on a bank (the 2nd AGU always
//! reads `S` rows below the 1st).
//!
//! Tile latency: `K·((N_c−1)·S + K) + N_c + 1`.

use crate::counters::{TileClock, TilePos};
use crate::req::MemRequest;

/// Algorithm-2 AGU configuration for one DWC (arbitrary stride) block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DwcGeneralAgu {
    /// Kernel size `K`.
    pub k: usize,
    /// Stride `S`.
    pub s: usize,
    /// Array rows `N_r`.
    pub nr: usize,
    /// Array columns `N_c`.
    pub nc: usize,
    /// Base word offset of the IFM region in each H-MEM bank.
    pub addr_ifm: usize,
    /// Base word offset of the OFM region in each H-MEM bank.
    pub addr_ofm: usize,
    /// Base word offset of the weight region in each V-MEM bank.
    pub addr_w: usize,
}

impl DwcGeneralAgu {
    /// IFM elements streamed per weight row.
    #[must_use]
    pub fn row_stream_len(&self) -> usize {
        (self.nc - 1) * self.s + self.k
    }

    /// Input-block width in words: `S·(B_c·N_c − 1) + K` (Algorithm 2
    /// line 1).
    #[must_use]
    pub fn block_w(&self, b_c: usize) -> usize {
        self.s * (b_c * self.nc - 1) + self.k
    }

    /// Tile latency in cycles.
    #[must_use]
    pub fn tile_latency(&self) -> u64 {
        (self.k * self.row_stream_len() + 1 + self.nc) as u64
    }

    /// Length of phase `t_wrap` (weight rows `0..K`, then bubble + store).
    #[must_use]
    pub fn phase_len(&self, t_wrap: u64) -> Option<u64> {
        if (t_wrap as usize) < self.k {
            Some(self.row_stream_len() as u64)
        } else if t_wrap as usize == self.k {
            Some((self.nc + 1) as u64)
        } else {
            None
        }
    }

    /// H-AGU request for row port `aid_r` (Algorithm 2).
    #[must_use]
    pub fn h_request(&self, clock: TileClock, pos: TilePos, aid_r: usize) -> Option<MemRequest> {
        let t_wrap = clock.t_wrap as usize;
        let t_wcycle = clock.t_wcycle as usize;
        let block_w = self.block_w(pos.b_c);
        if t_wrap < self.k {
            // Load: input row (tid_r·N_r + aid_r)·S + t_wrap, bank round-robin
            // over groups of S rows.
            let over_bank = (t_wrap / self.s + aid_r) / self.nr;
            let bank = (t_wrap / self.s + aid_r) % self.nr;
            let addr = pos.tid_r * block_w * self.s
                + pos.tid_c * self.s * self.nc
                + over_bank * block_w * self.s
                + t_wcycle
                + (t_wrap % self.s) * block_w
                + self.addr_ifm;
            Some(MemRequest::load(bank, addr))
        } else if t_wcycle >= 1 && t_wcycle <= self.nc {
            // Store phase (after the pipeline bubble at t_wcycle = 0).
            let j = t_wcycle - 1;
            Some(MemRequest::store(
                aid_r,
                pos.tid_c * self.nc + pos.tid_r * self.nc * pos.b_c + j + self.addr_ofm,
            ))
        } else {
            None
        }
    }

    /// V-AGU request for column port `aid_c`: §5.2's
    /// `addr = t_wcycle − AID_c·S + t_wrap·K`, valid only while the column's
    /// kernel window is active. Weights are duplicated in every V-MEM bank.
    #[must_use]
    pub fn v_request(&self, clock: TileClock, _pos: TilePos, aid_c: usize) -> Option<MemRequest> {
        let t_wrap = clock.t_wrap as usize;
        let t_wcycle = clock.t_wcycle as usize;
        if t_wrap >= self.k {
            return None;
        }
        let lo = aid_c * self.s;
        if t_wcycle < lo || t_wcycle >= lo + self.k {
            return None;
        }
        Some(MemRequest::load(aid_c, t_wcycle - lo + t_wrap * self.k + self.addr_w))
    }

    /// Whether PE column `c` MACs this cycle, and with which kernel tap
    /// `kx = t_wcycle − c·S`.
    #[must_use]
    pub fn active_tap(&self, clock: TileClock, c: usize) -> Option<usize> {
        let t_wrap = clock.t_wrap as usize;
        let t_wcycle = clock.t_wcycle as usize;
        if t_wrap >= self.k {
            return None;
        }
        let lo = c * self.s;
        (t_wcycle >= lo && t_wcycle < lo + self.k).then(|| t_wcycle - lo)
    }

    /// Which PE column's output the row-store port carries, if this is a
    /// store cycle.
    #[must_use]
    pub fn store_column(&self, clock: TileClock) -> Option<usize> {
        let t_wrap = clock.t_wrap as usize;
        let t_wcycle = clock.t_wcycle as usize;
        (t_wrap == self.k && (1..=self.nc).contains(&t_wcycle)).then(|| t_wcycle - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::req::AccessKind;

    /// The paper's running example: K = 3, S = 2 on a 2×2 array.
    fn fig5() -> DwcGeneralAgu {
        DwcGeneralAgu {
            k: 3,
            s: 2,
            nr: 2,
            nc: 2,
            addr_ifm: 0,
            addr_ofm: 500,
            addr_w: 0,
        }
    }

    fn clock(agu: &DwcGeneralAgu, cycle: u64) -> TileClock {
        // Drive the clock through the phase structure up to `cycle`.
        let mut c = TileClock::start();
        let mut remaining = agu.phase_len(0).unwrap();
        for _ in 0..cycle {
            remaining -= 1;
            let row_change = remaining == 0;
            c.step(row_change);
            if row_change {
                remaining = agu.phase_len(c.t_wrap).unwrap_or(u64::MAX);
            }
        }
        c
    }

    #[test]
    fn latency_matches_table3() {
        // K((N_c−1)S+K) = 3·(2+3) = 15, +1 bubble +2 store = 18.
        assert_eq!(fig5().tile_latency(), 18);
    }

    #[test]
    fn fig5_schedule_row0() {
        // Cycle 1..=5 of Fig. 5b: PE(r,0) active taps 0,1,2 on cycles 0–2;
        // PE(r,1) taps 0,1,2 on cycles 2–4.
        let a = fig5();
        let taps0: Vec<_> = (0..5).map(|t| a.active_tap(clock(&a, t), 0)).collect();
        let taps1: Vec<_> = (0..5).map(|t| a.active_tap(clock(&a, t), 1)).collect();
        assert_eq!(taps0, vec![Some(0), Some(1), Some(2), None, None]);
        assert_eq!(taps1, vec![None, None, Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn h_loads_walk_the_input_row() {
        let a = fig5();
        let pos = TilePos::first(1, 1);
        // Weight row 0: AGU 0 reads bank 0 offsets 0..5 (block_w = S(BcNc−1)+K = 5).
        for t in 0..5 {
            let r = a.h_request(clock(&a, t), pos, 0).unwrap();
            assert_eq!((r.bank, r.offset, r.kind), (0, t as usize, AccessKind::Load));
        }
        // Weight row 1 is the second row of bank 0's group (offset +block_w).
        let r = a.h_request(clock(&a, 5), pos, 0).unwrap();
        assert_eq!((r.bank, r.offset), (0, 5));
        // Weight row 2 wraps to the next bank group (over_bank for AGU 1).
        let r = a.h_request(clock(&a, 10), pos, 1).unwrap();
        assert_eq!(r.bank, 0, "AGU1 row 2 lands in bank (1 + 2/2) % 2 = 0");
    }

    #[test]
    fn no_h_bank_conflicts_all_cycles() {
        let a = fig5();
        let pos = TilePos::first(2, 2);
        for t in 0..a.tile_latency() {
            let c = clock(&a, t);
            let banks: Vec<_> = (0..2)
                .filter_map(|r| a.h_request(c, pos, r))
                .map(|r| (r.kind, r.bank))
                .collect();
            let mut dedup = banks.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(banks.len(), dedup.len(), "bank conflict at cycle {t}: {banks:?}");
        }
    }

    #[test]
    fn v_requests_follow_weight_window() {
        let a = fig5();
        let pos = TilePos::first(1, 1);
        // Column 1 (S=2) is active cycles 2..5 of each weight row, reading
        // W(t_wrap, 0..3).
        assert_eq!(a.v_request(clock(&a, 1), pos, 1), None);
        let r = a.v_request(clock(&a, 2), pos, 1).unwrap();
        assert_eq!(r.offset, 0);
        let r = a.v_request(clock(&a, 9), pos, 1).unwrap(); // row1 t_wcycle=4
        assert_eq!(r.offset, 2 + 3);
    }

    #[test]
    fn store_phase_after_bubble() {
        let a = fig5();
        let pos = TilePos::first(1, 1);
        let t_bubble = 15;
        assert_eq!(a.h_request(clock(&a, t_bubble), pos, 0), None);
        let r = a.h_request(clock(&a, 16), pos, 0).unwrap();
        assert_eq!(r.kind, AccessKind::Store);
        assert_eq!(r.offset, 500);
        assert_eq!(a.store_column(clock(&a, 17)), Some(1));
    }

    #[test]
    fn stride1_specialization_consistent() {
        let a = DwcGeneralAgu {
            k: 3,
            s: 1,
            nr: 4,
            nc: 4,
            addr_ifm: 0,
            addr_ofm: 0,
            addr_w: 0,
        };
        assert_eq!(a.row_stream_len(), 6);
        assert_eq!(a.tile_latency(), 3 * 6 + 1 + 4);
    }

    #[test]
    fn phase_lens_sum_to_latency() {
        let a = fig5();
        let total: u64 = (0..).map_while(|w| a.phase_len(w)).sum();
        assert_eq!(total, a.tile_latency());
    }
}
