//! Address generation units (AGUs) and controller counters (§V).
//!
//! NP-CGRA uses *streamed* load-store: dedicated AGUs in the memory access
//! modules compute one address per bus per cycle from a handful of shared
//! counters, freeing every PE for MAC work. This crate implements:
//!
//! - [`counters`]: the controller-held iterators of Table 2 — `t_cycle`
//!   (cycle within tile), `t_wrap` (weight-row index), `t_wcycle` (cycle
//!   within weight row) and the tile coordinates `tid_r`/`tid_c`.
//! - [`pwc`]: Algorithm 1 (H-MEM load/store) and the V-AGU closed form for
//!   pointwise convolution.
//! - [`dwc_general`]: Algorithm 2 and the DWC V-AGU form for arbitrary
//!   stride.
//! - [`dwc_s1`]: Algorithm 3 and the Fig. 11 V-MEM addressing for
//!   stride-1 DWC, plus the boustrophedon GRF weight-index sequence of the
//!   EE/SS/EW schedule.
//!
//! Every function here is a pure map from counter values to a
//! [`MemRequest`]; the cycle-accurate simulator calls them each cycle, so
//! address generation in the simulation is done by exactly this hardware
//! model rather than by pre-computed traces.
//!
//! The tile phase structures (and resulting tile latencies) are:
//!
//! | mapping | phases | tile latency |
//! |---|---|---|
//! | PWC | stream/MAC `N_i` · bubble 1 · store `N_c` | `N_i + N_c + 1` |
//! | DWC general | K weight rows × `(N_c−1)S+K` · bubble 1 · store `N_c` | `K((N_c−1)S+K) + N_c + 1` |
//! | DWC S=1 | prologue `N_c−1` · EE/SS/EW `K²` · bubble 1 · store `N_c` · bubble 1 | `K² + 2N_c + 1` |
//!
//! which reproduce the paper's Table 3 forms with λ made explicit and,
//! plugged into the Table 5 layers, the paper's reported utilizations
//! (86.42 % PWC, 49 % DWC S=1, 28 % DWC S=2 on a 4×4 machine).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod dwc_general;
pub mod dwc_s1;
pub mod pwc;
pub mod req;

pub use counters::{TileClock, TilePos};
pub use dwc_general::DwcGeneralAgu;
pub use dwc_s1::DwcS1Agu;
pub use pwc::PwcAgu;
pub use req::{AccessKind, MemRequest};
