//! Stride-1 DWC address generation (Algorithm 3, §4.2/§5.3, Figs. 6–8, 11).
//!
//! The optimized stride-1 mapping is output-stationary with operand reuse:
//!
//! - **Prologue** (`N_c − 1` cycles): IFM pixels stream in on the H-busses
//!   at the east edge and shift west one PE per cycle through the operand
//!   reuse network, pre-filling the ORN latches.
//! - **EE / SS / EW** (`K²` cycles): the kernel is walked in boustrophedon
//!   order (row 0 west→east, SS down one row, row 1 east→west, SS, …). All
//!   PEs share the broadcast GRF weight; the expanding edge column loads
//!   fresh IFM from its H-bus while everyone else reuses a neighbour's ORN
//!   latch. Each SS step loads the southernmost row's `N_c` fresh values in
//!   a single cycle through the V-busses (Fig. 11 layout).
//! - **Store** (`N_c` cycles after a bubble): one output column per cycle
//!   per row port, then one drain cycle.
//!
//! Tile latency: `K² + 2·N_c + 1` (Algorithm 3's `tile_latency`
//! `1 + 2·N_c + K²`).
//!
//! Algorithm 3 is written for `K = 3` (its `block_w = 2 + B_c·N_c` hard-codes
//! `K − 1 = 2`); we generalize the constant to `K − 1`. We also correct two
//! thesis typos: the store-address `AID_c` is read as `tid_c` (as in
//! Algorithm 1), and the store offset is zero-based.

use crate::counters::{TileClock, TilePos};
use crate::req::MemRequest;

/// Where a PE's fresh operand comes from in one schedule cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum S1Phase {
    /// Prologue: H-bus feeds the east edge; latches shift west.
    Prologue,
    /// Expand East: east column loads from H-bus, others reuse ORN-east.
    ExpandEast {
        /// Kernel tap being processed.
        ky: usize,
        /// Kernel tap being processed.
        kx: usize,
    },
    /// Shift South: south row loads from V-bus, others reuse ORN-south.
    ShiftSouth {
        /// Kernel tap being processed.
        ky: usize,
        /// Kernel tap being processed.
        kx: usize,
    },
    /// Expand West: west column loads from H-bus, others reuse ORN-west.
    ExpandWest {
        /// Kernel tap being processed.
        ky: usize,
        /// Kernel tap being processed.
        kx: usize,
    },
    /// Pipeline bubble between compute and store.
    Bubble,
    /// Store cycle `j` (output column `j`).
    Store(usize),
}

/// Algorithm-3 AGU configuration for one stride-1 DWC block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DwcS1Agu {
    /// Kernel size `K` (stride is 1 by definition of this mapping).
    pub k: usize,
    /// Array rows `N_r`.
    pub nr: usize,
    /// Array columns `N_c`.
    pub nc: usize,
    /// Base word offset of the IFM region in each H-MEM bank.
    pub addr_ifm: usize,
    /// Base word offset of the OFM region in each H-MEM bank.
    pub addr_ofm: usize,
    /// Base word offset of the SS data region in each V-MEM bank.
    pub addr_vm: usize,
}

impl DwcS1Agu {
    /// Input-block width in words: `B_c·N_c + K − 1` (Algorithm 3 line 1,
    /// generalized from its `K = 3` form `2 + B_c·N_c`).
    #[must_use]
    pub fn block_w(&self, b_c: usize) -> usize {
        b_c * self.nc + self.k - 1
    }

    /// Tile latency: `K² + 2·N_c + 1`.
    #[must_use]
    pub fn tile_latency(&self) -> u64 {
        (self.k * self.k + 2 * self.nc + 1) as u64
    }

    /// Length of phase `t_wrap`: wrap 0 is prologue + kernel row 0; wraps
    /// `1..K−1` are SS + one kernel row; wrap `K` is bubble + stores + drain.
    #[must_use]
    pub fn phase_len(&self, t_wrap: u64) -> Option<u64> {
        let w = t_wrap as usize;
        if w == 0 {
            Some((self.nc - 1 + self.k) as u64)
        } else if w < self.k {
            Some(self.k as u64)
        } else if w == self.k {
            Some((self.nc + 2) as u64)
        } else {
            None
        }
    }

    /// Classify the cycle into its schedule phase.
    #[must_use]
    pub fn phase(&self, clock: TileClock) -> S1Phase {
        let w = clock.t_wrap as usize;
        let t = clock.t_wcycle as usize;
        if w == 0 {
            if t < self.nc - 1 {
                S1Phase::Prologue
            } else {
                S1Phase::ExpandEast {
                    ky: 0,
                    kx: t - (self.nc - 1),
                }
            }
        } else if w < self.k {
            let ky = w;
            if t == 0 {
                let kx = if ky % 2 == 1 { self.k - 1 } else { 0 };
                S1Phase::ShiftSouth { ky, kx }
            } else if ky % 2 == 1 {
                S1Phase::ExpandWest { ky, kx: self.k - 1 - t }
            } else {
                S1Phase::ExpandEast { ky, kx: t }
            }
        } else if t == 0 || t == self.nc + 1 {
            S1Phase::Bubble
        } else {
            S1Phase::Store(t - 1)
        }
    }

    /// The GRF index (row-major `ky·K + kx`) broadcast this cycle, if it is
    /// a compute cycle.
    #[must_use]
    pub fn grf_index(&self, clock: TileClock) -> Option<usize> {
        match self.phase(clock) {
            S1Phase::ExpandEast { ky, kx } | S1Phase::ShiftSouth { ky, kx } | S1Phase::ExpandWest { ky, kx } => {
                Some(ky * self.k + kx)
            }
            _ => None,
        }
    }

    /// H-AGU request for row port `aid_r` (Algorithm 3).
    #[must_use]
    pub fn h_request(&self, clock: TileClock, pos: TilePos, aid_r: usize) -> Option<MemRequest> {
        let w = clock.t_wrap as usize;
        let t = clock.t_wcycle as usize;
        let block_w = self.block_w(pos.b_c);
        if w >= self.k {
            // Store phase (Algorithm 3 lines 12–13, zero-based).
            let j = self.store_column(clock)?;
            return Some(MemRequest::store(
                aid_r,
                pos.tid_c * self.nc + pos.tid_r * self.nc * pos.b_c + j + self.addr_ofm,
            ));
        }
        // Load phases: which x offset does this cycle fetch?
        let x = if w == 0 {
            // Prologue and kernel row 0 walk x = 0, 1, 2, … (line 19).
            t
        } else if w % 2 == 1 {
            // Odd kernel rows expand west: x = K−1−t (line 23);
            // t = 0 is the SS cycle (V-bus), no H load.
            if t == 0 {
                return None;
            }
            self.k - 1 - t
        } else {
            // Even kernel rows expand east: x = N_c−1+t (line 26).
            if t == 0 {
                return None;
            }
            self.nc - 1 + t
        };
        // Input row tid_r·N_r + aid_r + t_wrap, one row per bank round-robin.
        let over_bank = (w + aid_r) / self.nr;
        let bank = (w + aid_r) % self.nr;
        let addr = pos.tid_c * self.nc + pos.tid_r * block_w + over_bank * block_w + x + self.addr_ifm;
        Some(MemRequest::load(bank, addr))
    }

    /// V-AGU request for column port `aid_c`: SS cycles read one
    /// pre-partitioned value per column (Fig. 11).
    #[must_use]
    pub fn v_request(&self, clock: TileClock, pos: TilePos, aid_c: usize) -> Option<MemRequest> {
        match self.phase(clock) {
            S1Phase::ShiftSouth { ky, .. } => {
                // Entry (tid_r, ky, tid_c): (K−1)·B_c entries per tile row.
                let offset = pos.tid_r * (self.k - 1) * pos.b_c + (ky - 1) * pos.b_c + pos.tid_c + self.addr_vm;
                Some(MemRequest::load(aid_c, offset))
            }
            _ => None,
        }
    }

    /// Which PE column's output the row-store port carries, if this is a
    /// store cycle.
    #[must_use]
    pub fn store_column(&self, clock: TileClock) -> Option<usize> {
        match self.phase(clock) {
            S1Phase::Store(j) => Some(j),
            _ => None,
        }
    }

    /// The kernel tap `(ky, kx)` whose IFM value the *fresh-loading* PEs
    /// consume this cycle, together with the tile-local coordinates of the
    /// IFM element loaded on H-bus `aid_r` (`None` outside load cycles).
    /// Used by layout builders and tests to cross-check the address stream
    /// against the logical access pattern of Fig. 7b.
    #[must_use]
    pub fn h_loaded_ifm_coord(&self, clock: TileClock, pos: TilePos, aid_r: usize) -> Option<(usize, usize)> {
        let w = clock.t_wrap as usize;
        let t = clock.t_wcycle as usize;
        if w >= self.k {
            return None;
        }
        let x = if w == 0 {
            t
        } else if w % 2 == 1 {
            if t == 0 {
                return None;
            }
            self.k - 1 - t
        } else {
            if t == 0 {
                return None;
            }
            self.nc - 1 + t
        };
        // Tile-local input coordinates (row, col).
        Some((pos.tid_r * self.nr + aid_r + w, pos.tid_c * self.nc + x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::req::AccessKind;

    /// The paper's running example: K = 3 on a 2×2 array.
    fn fig6() -> DwcS1Agu {
        DwcS1Agu {
            k: 3,
            nr: 2,
            nc: 2,
            addr_ifm: 0,
            addr_ofm: 900,
            addr_vm: 0,
        }
    }

    fn clock(agu: &DwcS1Agu, cycle: u64) -> TileClock {
        let mut c = TileClock::start();
        let mut remaining = agu.phase_len(0).unwrap();
        for _ in 0..cycle {
            remaining -= 1;
            let row_change = remaining == 0;
            c.step(row_change);
            if row_change {
                remaining = agu.phase_len(c.t_wrap).unwrap_or(u64::MAX);
            }
        }
        c
    }

    #[test]
    fn latency_matches_algorithm3() {
        // 1 + 2·N_c + K² = 1 + 4 + 9 = 14 for the 2×2, K=3 example;
        // 18 for the 4×4 used in Table 5.
        assert_eq!(fig6().tile_latency(), 14);
        let t5 = DwcS1Agu {
            k: 3,
            nr: 4,
            nc: 4,
            addr_ifm: 0,
            addr_ofm: 0,
            addr_vm: 0,
        };
        assert_eq!(t5.tile_latency(), 18);
    }

    #[test]
    fn phase_sequence_is_ee_ss_ew_ss_ee() {
        // K=3, N_c=2: prologue(1), EE row0 (3), SS, EW(2), SS, EE(2),
        // bubble, store(2), bubble — 14 cycles total.
        let a = fig6();
        let phases: Vec<_> = (0..a.tile_latency()).map(|t| a.phase(clock(&a, t))).collect();
        use S1Phase::*;
        assert_eq!(
            phases,
            vec![
                Prologue,
                ExpandEast { ky: 0, kx: 0 },
                ExpandEast { ky: 0, kx: 1 },
                ExpandEast { ky: 0, kx: 2 },
                ShiftSouth { ky: 1, kx: 2 },
                ExpandWest { ky: 1, kx: 1 },
                ExpandWest { ky: 1, kx: 0 },
                ShiftSouth { ky: 2, kx: 0 },
                ExpandEast { ky: 2, kx: 1 },
                ExpandEast { ky: 2, kx: 2 },
                Bubble,
                Store(0),
                Store(1),
                Bubble,
            ]
        );
    }

    #[test]
    fn grf_walks_kernel_boustrophedon() {
        let a = fig6();
        let seq: Vec<_> = (0..a.tile_latency()).filter_map(|t| a.grf_index(clock(&a, t))).collect();
        // W00 W01 W02 | W12 W11 W10 | W20 W21 W22 (row-major indices).
        assert_eq!(seq, vec![0, 1, 2, 5, 4, 3, 6, 7, 8]);
    }

    #[test]
    fn every_weight_tap_appears_exactly_once() {
        for k in [1usize, 2, 3, 5] {
            let a = DwcS1Agu {
                k,
                nr: 3,
                nc: 4,
                addr_ifm: 0,
                addr_ofm: 0,
                addr_vm: 0,
            };
            let mut seq: Vec<_> = (0..a.tile_latency()).filter_map(|t| a.grf_index(clock(&a, t))).collect();
            seq.sort_unstable();
            assert_eq!(seq, (0..k * k).collect::<Vec<_>>(), "K={k}");
        }
    }

    #[test]
    fn h_loads_match_fig7_access_pattern() {
        // Fig. 7b (2×2, K=3): tile-local IFM coords loaded fresh per cycle.
        let a = fig6();
        let pos = TilePos::first(1, 1);
        // Prologue cycle 0 loads column x=0 of rows 0..2 (one per H-bus).
        assert_eq!(a.h_loaded_ifm_coord(clock(&a, 0), pos, 0), Some((0, 0)));
        assert_eq!(a.h_loaded_ifm_coord(clock(&a, 0), pos, 1), Some((1, 0)));
        // EE row0 kx=2 (cycle 3) loads x = N_c−1+kx = 3.
        assert_eq!(a.h_loaded_ifm_coord(clock(&a, 3), pos, 0), Some((0, 3)));
        // SS at cycle 4 loads nothing on H (V-bus serves it).
        assert_eq!(a.h_loaded_ifm_coord(clock(&a, 4), pos, 0), None);
        // EW ky=1 kx=1 (cycle 5) loads x = kx = 1 of row r+1.
        assert_eq!(a.h_loaded_ifm_coord(clock(&a, 5), pos, 0), Some((1, 1)));
        assert_eq!(a.h_loaded_ifm_coord(clock(&a, 5), pos, 1), Some((2, 1)));
        // EE ky=2 kx=2 (cycle 9) loads x = N_c−1+t = 3 of row r+2.
        assert_eq!(a.h_loaded_ifm_coord(clock(&a, 9), pos, 0), Some((2, 3)));
    }

    #[test]
    fn h_banks_rotate_with_kernel_row() {
        let a = fig6();
        let pos = TilePos::first(1, 1);
        // Wrap 0: AGU r reads bank r; wrap 1: bank (r+1) % N_r.
        let r0 = a.h_request(clock(&a, 0), pos, 0).unwrap();
        assert_eq!(r0.bank, 0);
        let r1 = a.h_request(clock(&a, 5), pos, 0).unwrap(); // ky=1
        assert_eq!(r1.bank, 1);
        let r2 = a.h_request(clock(&a, 8), pos, 0).unwrap(); // ky=2
        assert_eq!((r2.bank, r2.kind), (0, AccessKind::Load));
    }

    #[test]
    fn no_h_bank_conflicts_all_cycles() {
        for (nr, nc, k) in [(2, 2, 3), (4, 4, 3), (3, 4, 5), (4, 3, 2)] {
            let a = DwcS1Agu {
                k,
                nr,
                nc,
                addr_ifm: 0,
                addr_ofm: 0,
                addr_vm: 0,
            };
            let pos = TilePos::first(2, 2);
            for t in 0..a.tile_latency() {
                let c = clock(&a, t);
                let banks: Vec<_> = (0..nr)
                    .filter_map(|r| a.h_request(c, pos, r))
                    .map(|r| (r.kind, r.bank))
                    .collect();
                let mut dedup = banks.clone();
                dedup.sort();
                dedup.dedup();
                assert_eq!(banks.len(), dedup.len(), "conflict nr={nr} k={k} t={t}: {banks:?}");
            }
        }
    }

    #[test]
    fn v_requests_only_on_ss_cycles() {
        let a = fig6();
        let pos = TilePos::first(2, 3);
        let ss_cycles: Vec<_> = (0..a.tile_latency())
            .filter(|&t| a.v_request(clock(&a, t), pos, 0).is_some())
            .collect();
        assert_eq!(ss_cycles, vec![4, 7]);
        // Entry addressing: tid_r=0, ky=1 → offset (1−1)·B_c + tid_c.
        let r = a.v_request(clock(&a, 4), pos, 1).unwrap();
        assert_eq!((r.bank, r.offset), (1, 0));
        let r = a.v_request(clock(&a, 7), pos, 1).unwrap();
        assert_eq!(r.offset, 3);
    }

    #[test]
    fn stores_after_bubble_cover_nc_columns() {
        let a = fig6();
        let mut pos = TilePos::first(2, 2);
        pos.tid_r = 1;
        pos.tid_c = 1;
        let r = a.h_request(clock(&a, 11), pos, 0).unwrap();
        assert_eq!(r.kind, AccessKind::Store);
        // tid_c·N_c + tid_r·N_c·B_c + 0 + 900.
        assert_eq!(r.offset, 2 + 4 + 900);
        assert_eq!(a.store_column(clock(&a, 12)), Some(1));
        assert_eq!(a.h_request(clock(&a, 13), pos, 0), None);
    }

    #[test]
    fn phase_lens_sum_to_latency() {
        let a = fig6();
        let total: u64 = (0..).map_while(|w| a.phase_len(w)).sum();
        assert_eq!(total, a.tile_latency());
    }

    #[test]
    fn k1_degenerates_gracefully() {
        // K = 1: no SS/EW phases at all; 1 MAC cycle after the prologue.
        let a = DwcS1Agu {
            k: 1,
            nr: 2,
            nc: 2,
            addr_ifm: 0,
            addr_ofm: 0,
            addr_vm: 0,
        };
        assert_eq!(a.tile_latency(), 1 + 4 + 1);
        let seq: Vec<_> = (0..a.tile_latency()).filter_map(|t| a.grf_index(clock(&a, t))).collect();
        assert_eq!(seq, vec![0]);
    }
}
