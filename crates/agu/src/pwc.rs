//! PWC address generation (Algorithm 1 and the §5.1 V-AGU form).
//!
//! The PWC tile multiplies `N_r` output pixels by `N_c` output channels,
//! streaming the `N_i` reduction dimension over `t_cycle`:
//!
//! - H-AGU `r` reads bank `r` at `tid_r·N_i + t_cycle` (Fig. 9 layout: pixel
//!   `p` lives in bank `p mod N_r` with its channel vector contiguous);
//! - V-AGU `c` reads bank `c` at `tid_c·N_i + t_cycle` (weight column
//!   `o` in bank `o mod N_c`);
//! - after a one-cycle pipeline bubble, H-AGU `r` writes the tile's `N_c`
//!   outputs of pixel row `r` to the block-local OFM region, one per cycle.
//!
//! Tile latency: `N_i + N_c + 1`.

use crate::counters::{TileClock, TilePos};
use crate::req::MemRequest;

/// Algorithm-1 AGU configuration for one PWC block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PwcAgu {
    /// Reduction length `N_i` (input channels).
    pub ni: usize,
    /// Array columns `N_c`.
    pub nc: usize,
    /// Base word offset of the IFM region in each H-MEM bank.
    pub addr_ifm: usize,
    /// Base word offset of the OFM region in each H-MEM bank.
    pub addr_ofm: usize,
    /// Base word offset of the weight region in each V-MEM bank.
    pub addr_w: usize,
}

impl PwcAgu {
    /// Tile latency in cycles: stream `N_i`, one bubble, store `N_c`.
    #[must_use]
    pub fn tile_latency(&self) -> u64 {
        (self.ni + self.nc + 1) as u64
    }

    /// Length of weight row `t_wrap`, or `None` past the last phase. PWC
    /// has a single "row" (the whole reduction) plus the store phase, so the
    /// controller never raises a mid-stream row change.
    #[must_use]
    pub fn phase_len(&self, t_wrap: u64) -> Option<u64> {
        match t_wrap {
            0 => Some(self.ni as u64),
            1 => Some((self.nc + 1) as u64), // bubble + stores
            _ => None,
        }
    }

    /// H-AGU request for row `aid_r` at the given counters.
    #[must_use]
    pub fn h_request(&self, clock: TileClock, pos: TilePos, aid_r: usize) -> Option<MemRequest> {
        let t = clock.t_cycle as usize;
        if t < self.ni {
            // Algorithm 1, load: addr = tid_r·N_i + t_cycle + addr_IFM.
            Some(MemRequest::load(aid_r, pos.tid_r * self.ni + t + self.addr_ifm))
        } else if t > self.ni && t < self.ni + 1 + self.nc {
            // Algorithm 1, store: one output channel per cycle.
            let j = t - self.ni - 1;
            Some(MemRequest::store(
                aid_r,
                pos.tid_c * self.nc + pos.tid_r * self.nc * pos.b_c + j + self.addr_ofm,
            ))
        } else {
            None
        }
    }

    /// V-AGU request for column `aid_c`: §5.1's
    /// `addr = (AID_c << N_a) | (tid_c·N_i + t_cycle)`.
    #[must_use]
    pub fn v_request(&self, clock: TileClock, pos: TilePos, aid_c: usize) -> Option<MemRequest> {
        let t = clock.t_cycle as usize;
        (t < self.ni).then(|| MemRequest::load(aid_c, pos.tid_c * self.ni + t + self.addr_w))
    }

    /// Which PE column's output the row-store port carries at `t_cycle`, if
    /// this is a store cycle.
    #[must_use]
    pub fn store_column(&self, clock: TileClock) -> Option<usize> {
        let t = clock.t_cycle as usize;
        (t > self.ni && t < self.ni + 1 + self.nc).then(|| t - self.ni - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::req::AccessKind;

    fn agu() -> PwcAgu {
        PwcAgu {
            ni: 8,
            nc: 4,
            addr_ifm: 0,
            addr_ofm: 100,
            addr_w: 0,
        }
    }

    fn clock_at(t: u64) -> TileClock {
        let mut c = TileClock::start();
        for _ in 0..t {
            c.step(false);
        }
        c
    }

    #[test]
    fn tile_latency_formula() {
        assert_eq!(agu().tile_latency(), 13);
    }

    #[test]
    fn loads_stream_reduction() {
        let a = agu();
        let pos = TilePos::first(2, 3);
        for t in 0..8 {
            let r = a.h_request(clock_at(t), pos, 1).unwrap();
            assert_eq!(r.kind, AccessKind::Load);
            assert_eq!(r.bank, 1);
            assert_eq!(r.offset, t as usize);
        }
    }

    #[test]
    fn tile_row_offsets_advance_by_ni() {
        let a = agu();
        let mut pos = TilePos::first(2, 3);
        pos.tid_r = 1;
        let r = a.h_request(clock_at(0), pos, 0).unwrap();
        assert_eq!(r.offset, 8);
    }

    #[test]
    fn bubble_cycle_is_idle() {
        let a = agu();
        let pos = TilePos::first(1, 1);
        assert_eq!(a.h_request(clock_at(8), pos, 0), None);
        assert_eq!(a.v_request(clock_at(8), pos, 0), None);
    }

    #[test]
    fn stores_cover_nc_output_channels() {
        let a = agu();
        let mut pos = TilePos::first(2, 2);
        pos.tid_r = 1;
        pos.tid_c = 1;
        for j in 0..4usize {
            let t = 9 + j as u64;
            let r = a.h_request(clock_at(t), pos, 3).unwrap();
            assert_eq!(r.kind, AccessKind::Store);
            // tid_c·N_c + tid_r·N_c·B_c + j + 100
            assert_eq!(r.offset, 4 + 8 + j + 100);
            assert_eq!(a.store_column(clock_at(t)), Some(j));
        }
        assert_eq!(a.h_request(clock_at(13), pos, 3), None);
    }

    #[test]
    fn v_loads_select_weight_block() {
        let a = agu();
        let mut pos = TilePos::first(1, 4);
        pos.tid_c = 2;
        let r = a.v_request(clock_at(3), pos, 1).unwrap();
        assert_eq!(r.bank, 1);
        assert_eq!(r.offset, 2 * 8 + 3);
    }

    #[test]
    fn phase_lens_sum_to_latency() {
        let a = agu();
        let total: u64 = (0..).map_while(|w| a.phase_len(w)).sum();
        assert_eq!(total, a.tile_latency());
    }

    #[test]
    fn no_bank_conflicts_within_any_cycle() {
        // Distinct AIDs always target distinct banks (trivially: bank = AID).
        let a = agu();
        let pos = TilePos::first(2, 2);
        for t in 0..a.tile_latency() {
            let banks: Vec<_> = (0..4)
                .filter_map(|r| a.h_request(clock_at(t), pos, r))
                .map(|r| r.bank)
                .collect();
            let mut dedup = banks.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(banks.len(), dedup.len(), "conflict at t={t}");
        }
    }
}
