//! Controller counters (Table 2).
//!
//! The CGRA controller owns a handful of iterators shared by all AGUs:
//!
//! - `t_cycle` — incremented every clock, reset when a new tile starts;
//! - `t_wrap` — incremented on every weight-row change, reset per tile;
//! - `t_wcycle` — like `t_cycle` but reset whenever `t_wrap` changes;
//! - `tid_r`, `tid_c` — the tile's coordinates within the current block.
//!
//! Mappings advance the clock with mapping-specific weight-row lengths; the
//! helpers here keep the three counters mutually consistent by construction.

/// The per-tile cycle counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TileClock {
    /// Cycle count within the current tile.
    pub t_cycle: u64,
    /// Weight-row (wrap) count within the current tile.
    pub t_wrap: u64,
    /// Cycle count within the current weight row.
    pub t_wcycle: u64,
}

impl TileClock {
    /// The state at the start of a tile.
    #[must_use]
    pub fn start() -> Self {
        TileClock::default()
    }

    /// Advance one cycle; `row_change` marks a weight-row boundary (the
    /// condition that increments `t_wrap` and resets `t_wcycle`).
    pub fn step(&mut self, row_change: bool) {
        self.t_cycle += 1;
        if row_change {
            self.t_wrap += 1;
            self.t_wcycle = 0;
        } else {
            self.t_wcycle += 1;
        }
    }

    /// Reset for a new tile.
    pub fn reset(&mut self) {
        *self = TileClock::start();
    }
}

/// Tile coordinates within the current block (`tid_r`, `tid_c`) and the
/// block geometry (`B_r × B_c` tiles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TilePos {
    /// Zero-based tile row within the block.
    pub tid_r: usize,
    /// Zero-based tile column within the block.
    pub tid_c: usize,
    /// Tiles per block, row direction.
    pub b_r: usize,
    /// Tiles per block, column direction.
    pub b_c: usize,
}

impl TilePos {
    /// The first tile of a `b_r × b_c` block.
    ///
    /// # Panics
    ///
    /// Panics if either block dimension is zero.
    #[must_use]
    pub fn first(b_r: usize, b_c: usize) -> Self {
        assert!(b_r > 0 && b_c > 0, "block dimensions must be nonzero");
        TilePos {
            tid_r: 0,
            tid_c: 0,
            b_r,
            b_c,
        }
    }

    /// Advance to the next tile in row-major order; returns `false` when the
    /// block is exhausted (position wraps to the first tile).
    pub fn advance(&mut self) -> bool {
        self.tid_c += 1;
        if self.tid_c == self.b_c {
            self.tid_c = 0;
            self.tid_r += 1;
            if self.tid_r == self.b_r {
                self.tid_r = 0;
                return false;
            }
        }
        true
    }

    /// Linear tile index within the block.
    #[must_use]
    pub fn index(&self) -> usize {
        self.tid_r * self.b_c + self.tid_c
    }

    /// Total tiles in the block.
    #[must_use]
    pub fn tiles(&self) -> usize {
        self.b_r * self.b_c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_counts_rows() {
        let mut c = TileClock::start();
        c.step(false);
        c.step(false);
        assert_eq!((c.t_cycle, c.t_wrap, c.t_wcycle), (2, 0, 2));
        c.step(true);
        assert_eq!((c.t_cycle, c.t_wrap, c.t_wcycle), (3, 1, 0));
        c.step(false);
        assert_eq!((c.t_cycle, c.t_wrap, c.t_wcycle), (4, 1, 1));
        c.reset();
        assert_eq!(c, TileClock::start());
    }

    #[test]
    fn tile_pos_row_major_sweep() {
        let mut p = TilePos::first(2, 3);
        let mut seen = vec![p.index()];
        while p.advance() {
            seen.push(p.index());
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(p.index(), 0, "wraps to origin");
        assert_eq!(p.tiles(), 6);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_block_panics() {
        let _ = TilePos::first(0, 1);
    }
}
