//! Memory request descriptors produced by AGUs.

use std::fmt;

/// Load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessKind {
    /// Read a word onto the bus.
    Load,
    /// Write a word from the array.
    Store,
}

/// One streamed memory access: `(bank, offset)` in the paper's
/// `(bank << N_a) | offset` global address convention, plus the direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRequest {
    /// Target bank.
    pub bank: usize,
    /// In-bank word offset.
    pub offset: usize,
    /// Load or store.
    pub kind: AccessKind,
}

impl MemRequest {
    /// A load request.
    #[must_use]
    pub fn load(bank: usize, offset: usize) -> Self {
        MemRequest {
            bank,
            offset,
            kind: AccessKind::Load,
        }
    }

    /// A store request.
    #[must_use]
    pub fn store(bank: usize, offset: usize) -> Self {
        MemRequest {
            bank,
            offset,
            kind: AccessKind::Store,
        }
    }

    /// Compose the paper's global address given the bank address width.
    #[must_use]
    pub fn global_addr(&self, addr_bits: u32) -> usize {
        (self.bank << addr_bits) | self.offset
    }
}

impl fmt::Display for MemRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.kind {
            AccessKind::Load => "ld",
            AccessKind::Store => "st",
        };
        write!(f, "{k} b{}+{:#x}", self.bank, self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_addr_composition() {
        let r = MemRequest::load(3, 5);
        assert_eq!(r.global_addr(10), (3 << 10) | 5);
    }

    #[test]
    fn display() {
        assert_eq!(MemRequest::store(1, 16).to_string(), "st b1+0x10");
    }
}
