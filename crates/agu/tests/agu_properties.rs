//! Property tests on the address generators themselves: conflict-freedom
//! and address-range discipline over random machine/kernel geometry.

use npcgra_agu::{AccessKind, DwcGeneralAgu, DwcS1Agu, PwcAgu, TileClock, TilePos};
use proptest::prelude::*;

/// Drive a clock through an AGU's phase structure, calling `f` each cycle.
fn drive(phase_len: impl Fn(u64) -> Option<u64>, mut f: impl FnMut(TileClock)) {
    let mut clock = TileClock::start();
    let mut remaining = phase_len(0).expect("phase 0");
    loop {
        f(clock);
        remaining -= 1;
        if remaining == 0 {
            match phase_len(clock.t_wrap + 1) {
                Some(len) => {
                    clock.step(true);
                    remaining = len;
                }
                None => break,
            }
        } else {
            clock.step(false);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Algorithm 2's H-AGUs never collide on a bank, for any (K, S, N_r)
    /// and any tile position — the §5.2 proof, checked exhaustively per
    /// case.
    #[test]
    fn dwc_general_h_agus_disjoint(
        k in 1usize..6, s in 1usize..4, nr in 2usize..6, nc in 2usize..6,
        tid_r in 0usize..3, tid_c in 0usize..3,
    ) {
        let agu = DwcGeneralAgu { k, s, nr, nc, addr_ifm: 0, addr_ofm: 10_000, addr_w: 0 };
        let mut pos = TilePos::first(4, 4);
        pos.tid_r = tid_r;
        pos.tid_c = tid_c;
        let mut conflict = None;
        drive(|w| agu.phase_len(w), |clock| {
            let mut hit = vec![0u8; nr];
            for r in 0..nr {
                if let Some(req) = agu.h_request(clock, pos, r) {
                    if req.kind == AccessKind::Load {
                        hit[req.bank] += 1;
                    }
                }
            }
            if hit.iter().any(|&n| n > 1) {
                conflict = Some((clock.t_wrap, clock.t_wcycle, hit.clone()));
            }
        });
        prop_assert!(conflict.is_none(), "{conflict:?}");
    }

    /// Algorithm 3's H-AGUs likewise, for any K.
    #[test]
    fn dwc_s1_h_agus_disjoint(
        k in 1usize..6, nr in 2usize..6, nc in 2usize..6,
        tid_r in 0usize..3, tid_c in 0usize..3,
    ) {
        let agu = DwcS1Agu { k, nr, nc, addr_ifm: 0, addr_ofm: 10_000, addr_vm: 0 };
        let mut pos = TilePos::first(4, 4);
        pos.tid_r = tid_r;
        pos.tid_c = tid_c;
        let mut conflict = false;
        drive(|w| agu.phase_len(w), |clock| {
            let mut hit = vec![0u8; nr];
            for r in 0..nr {
                if let Some(req) = agu.h_request(clock, pos, r) {
                    if req.kind == AccessKind::Load {
                        hit[req.bank] += 1;
                    }
                }
            }
            conflict |= hit.iter().any(|&n| n > 1);
        });
        prop_assert!(!conflict);
    }

    /// PWC load addresses stay inside the block's IFM region and store
    /// addresses inside the OFM region, strictly ordered per port.
    #[test]
    fn pwc_addresses_stay_in_their_regions(
        ni in 1usize..64, nc in 2usize..6, b_r in 1usize..4, b_c in 1usize..4,
        tid_r_raw in 0usize..16, tid_c_raw in 0usize..16,
    ) {
        let addr_ofm = b_r * ni;
        let agu = PwcAgu { ni, nc, addr_ifm: 0, addr_ofm, addr_w: 0 };
        let mut pos = TilePos::first(b_r, b_c);
        pos.tid_r = tid_r_raw % b_r;
        pos.tid_c = tid_c_raw % b_c;
        drive(|w| agu.phase_len(w), |clock| {
            for r in 0..4 {
                if let Some(req) = agu.h_request(clock, pos, r) {
                    match req.kind {
                        AccessKind::Load => assert!(req.offset < addr_ofm, "load {} outside IFM region {addr_ofm}", req.offset),
                        AccessKind::Store => {
                            assert!(req.offset >= addr_ofm, "store {} inside IFM region", req.offset);
                            assert!(req.offset < addr_ofm + b_r * b_c * nc, "store {} past OFM region", req.offset);
                        }
                    }
                }
            }
        });
    }

    /// The GRF index sequence of the stride-1 schedule visits each of the
    /// K² taps exactly once, in an order whose row index never decreases.
    #[test]
    fn dwc_s1_grf_walks_rows_monotonically(k in 1usize..6, nr in 2usize..5, nc in 2usize..5) {
        let agu = DwcS1Agu { k, nr, nc, addr_ifm: 0, addr_ofm: 0, addr_vm: 0 };
        let mut seq = Vec::new();
        drive(|w| agu.phase_len(w), |clock| {
            if let Some(i) = agu.grf_index(clock) {
                seq.push(i);
            }
        });
        let mut sorted = seq.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..k * k).collect::<Vec<_>>());
        let rows: Vec<usize> = seq.iter().map(|i| i / k).collect();
        prop_assert!(rows.windows(2).all(|w| w[0] <= w[1]), "rows {rows:?}");
    }
}
