//! Property tests for the wire codec: round-trip fidelity for arbitrary
//! well-formed frames, and the adversarial contract for arbitrary hostile
//! byte streams — a typed [`WireError`] or "need more bytes", never a
//! panic, never a desynchronised frame boundary.

use npcgra_net::frame::{self, code, encode_frame, FrameDecoder, WireFrame, WireReply, WireRequest, WireResponse};
use proptest::prelude::*;

/// Arbitrary well-formed request frames (shapes kept small so a case is
/// cheap; the word vector is derived from the shape so the grammar's
/// shape·len agreement holds by construction).
fn arb_request() -> impl Strategy<Value = WireFrame> {
    (
        (
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(any::<u8>(), 0..32),
            0u8..3,
        ),
        (any::<u32>(), any::<u32>()),
        (1u16..5, 1u16..6, 1u16..6),
        any::<i16>(),
    )
        .prop_map(|((tag, idem, token, class), (deadline_ms, model), (c, h, w), seed)| {
            let n = c as usize * h as usize * w as usize;
            let words = (0..n).map(|i| seed.wrapping_add(i as i16)).collect();
            WireFrame::Request(WireRequest {
                tag,
                idem,
                token,
                class,
                deadline_ms,
                model,
                shape: (c, h, w),
                words,
            })
        })
}

/// Printable-ASCII messages (the vendored proptest has no regex
/// strategies).
fn arb_message() -> impl Strategy<Value = String> {
    proptest::collection::vec(32u8..127, 0..40).prop_map(|b| String::from_utf8(b).expect("printable ascii"))
}

/// Arbitrary well-formed reply / error / bye frames.
fn arb_other() -> impl Strategy<Value = WireFrame> {
    prop_oneof![
        (
            (any::<u64>(), any::<u64>()),
            (any::<u16>(), any::<u16>(), any::<u64>()),
            (1u16..4, 1u16..4, 1u16..4)
        )
            .prop_map(|((tag, request_id), (batch, worker, latency_us), (c, h, w))| {
                let n = c as usize * h as usize * w as usize;
                WireFrame::Reply(WireReply {
                    tag,
                    request_id,
                    result: Ok(WireResponse {
                        batch,
                        worker,
                        latency_us,
                        shape: (c, h, w),
                        words: (0..n as i16).collect(),
                    }),
                })
            }),
        (any::<u64>(), any::<u64>(), 1u8..9, arb_message()).prop_map(|(tag, request_id, code, message)| {
            WireFrame::Reply(WireReply {
                tag,
                request_id,
                result: Err((code, message)),
            })
        }),
        (1u8..9, arb_message()).prop_map(|(code, message)| WireFrame::Error { code, message }),
        Just(WireFrame::Bye),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every well-formed frame round-trips bit-exactly, whole or split
    /// into arbitrary chunk sizes.
    #[test]
    fn roundtrip_any_frame(frame in prop_oneof![arb_request(), arb_other()], chunk in 1usize..64) {
        let mut bytes = Vec::new();
        encode_frame(&frame, &mut bytes);
        let mut d = FrameDecoder::new(1 << 20);
        let mut got = None;
        for piece in bytes.chunks(chunk) {
            d.push(piece);
            if let Some(f) = d.next().expect("well-formed stream") {
                prop_assert!(got.is_none(), "one frame in, one frame out");
                got = Some(f);
            }
        }
        prop_assert_eq!(got.expect("frame completed"), frame);
        prop_assert!(!d.mid_frame());
    }

    /// Back-to-back frames on one stream decode in order with no
    /// boundary slip.
    #[test]
    fn pipelined_frames_keep_their_boundaries(frames in proptest::collection::vec(arb_request(), 1..5)) {
        let mut bytes = Vec::new();
        for f in &frames {
            encode_frame(f, &mut bytes);
        }
        let mut d = FrameDecoder::new(1 << 20);
        d.push(&bytes);
        for f in &frames {
            prop_assert_eq!(&d.next().unwrap().expect("next frame"), f);
        }
        prop_assert!(d.next().unwrap().is_none());
        prop_assert!(!d.mid_frame());
    }

    /// Arbitrary hostile bytes: the decoder never panics — each poll is a
    /// frame, "need more", or a typed error that then repeats verbatim
    /// (poisoned decoder, connection closes).
    #[test]
    fn random_bytes_never_panic(stream in proptest::collection::vec(any::<u8>(), 0..256), chunk in 1usize..32) {
        let mut d = FrameDecoder::new(4096);
        let mut poisoned = None;
        for piece in stream.chunks(chunk) {
            d.push(piece);
            loop {
                match d.next() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    Err(e) => {
                        if let Some(first) = poisoned {
                            prop_assert_eq!(e, first, "poisoned decoder must repeat its first error");
                        }
                        poisoned = Some(e);
                        break;
                    }
                }
            }
        }
    }

    /// A truncated frame is not an error: the decoder reports mid-frame
    /// (the slow-loris window) and never produces output.
    #[test]
    fn truncation_waits_rather_than_errors(frame in arb_request(), cut in 1usize..17) {
        let mut bytes = Vec::new();
        encode_frame(&frame, &mut bytes);
        let keep = bytes.len() - cut.min(bytes.len() - 4); // keep ≥ the magic+version prefix
        let mut d = FrameDecoder::new(1 << 20);
        d.push(&bytes[..keep]);
        prop_assert_eq!(d.next().expect("truncation is not malformed"), None);
        prop_assert!(d.mid_frame());
    }

    /// Any single bit flip in an encoded frame surfaces as a typed error —
    /// or, for flips in the length field that only enlarge the frame, as
    /// "need more bytes" (the checksum catches it the moment the inflated
    /// payload would complete). Never a silently different frame: the
    /// checksum covers the header prefix too, so kind/len flips can't
    /// smuggle a reinterpreted payload through.
    #[test]
    fn bit_flips_never_smuggle_a_frame(frame in arb_request(), bit in any::<usize>()) {
        let mut bytes = Vec::new();
        encode_frame(&frame, &mut bytes);
        let target = bit % (bytes.len() * 8);
        bytes[target / 8] ^= 1 << (target % 8);
        let mut d = FrameDecoder::new(1 << 20);
        d.push(&bytes);
        match d.next() {
            Ok(Some(got)) => prop_assert!(false, "a flipped frame decoded cleanly: {:?}", got),
            Ok(None) => prop_assert!(d.mid_frame(), "length-inflating flip waits for more bytes"),
            Err(_) => {} // typed rejection: the designed outcome
        }
    }
}

/// A flip confined to payload bytes is always a `Checksum` error
/// specifically (deterministic spot check riding alongside the
/// properties).
#[test]
fn payload_flip_is_a_checksum_error() {
    let mut bytes = Vec::new();
    encode_frame(
        &WireFrame::Error {
            code: code::MALFORMED,
            message: "x".into(),
        },
        &mut bytes,
    );
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    let mut d = FrameDecoder::new(4096);
    d.push(&bytes);
    assert!(matches!(d.next().unwrap_err(), frame::WireError::Checksum { .. }));
}
