//! Reconnect-with-resume over a journaled serving core: keyed requests
//! that lost their connection (and their server) to a hard crash are
//! re-sent by [`NetClient::reconnect`] with the same tag and idempotency
//! key, the recovered server re-executes each exactly once, and the
//! replies land bit-exact — redeemable out of order through the client's
//! parked-reply table.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use npcgra_net::{NetClient, NetConfig, NetServer};
use npcgra_nn::{reference, ConvLayer, Tensor};
use npcgra_serve::{JournalConfig, Priority, ServeConfig, Server};

fn temp_journal(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("npcgra-jrnl-{}-{}.log", tag, std::process::id()));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(path.with_extension("log.compact"));
    path
}

#[test]
fn reconnect_resumes_keyed_requests_across_a_server_crash() {
    let jpath = temp_journal("net-resume");
    let layer = ConvLayer::depthwise("dw", 2, 8, 8, 3, 1, 1);
    let weights = layer.random_weights(7);
    let inputs: Vec<Tensor> = (0..2).map(|i| Tensor::random(2, 8, 8, 40 + i)).collect();
    let goldens: Vec<Tensor> = inputs
        .iter()
        .map(|ifm| reference::run_layer(&layer, ifm, &weights).unwrap())
        .collect();

    // First life: zero workers, so keyed submits admit durably (fsync per
    // record) but never complete — the crash lands mid-flight by
    // construction, exactly the window the journal exists for.
    let jcfg = JournalConfig::new(&jpath).with_fsync_every(1);
    let (server, _) = Server::start_with_journal(ServeConfig::default().with_workers(0), jcfg).unwrap();
    server.register("dw", layer.clone(), weights.clone()).unwrap();
    server.replay_recovered().unwrap();
    let server = Arc::new(server);
    let net = NetServer::start(
        Arc::clone(&server),
        NetConfig::default().with_drain_timeout(Duration::from_millis(50)),
    )
    .unwrap();
    let mut client = NetClient::connect(net.local_addr(), b"").unwrap();
    let tag0 = client
        .submit_idem(0, &inputs[0], Priority::Interactive, None, 0x5EED_0001)
        .unwrap();
    let tag1 = client
        .submit_idem(0, &inputs[1], Priority::Interactive, None, 0x5EED_0002)
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().submitted < 2 {
        assert!(Instant::now() < deadline, "keyed submits never reached admission");
        std::thread::sleep(Duration::from_millis(1));
    }
    let _ = net.shutdown();
    let server = Arc::try_unwrap(server).unwrap_or_else(|_| panic!("front-end still holds the core"));
    let _ = server.hard_crash(0);

    // Second life: recover the journal, re-enqueue the two admitted
    // requests, and serve from a fresh port. The client re-sends both
    // keyed requests verbatim; the reservations left by replay collapse
    // the retries onto the recovered executions.
    let (server, report) =
        Server::start_with_journal(ServeConfig::default().with_workers(1), JournalConfig::new(&jpath)).unwrap();
    assert_eq!(report.replayed, 2, "both admitted requests must survive the crash");
    server.register("dw", layer, weights).unwrap();
    assert_eq!(server.replay_recovered().unwrap(), 2);
    let server = Arc::new(server);
    let net = NetServer::start(Arc::clone(&server), NetConfig::default()).unwrap();
    assert_eq!(
        client.reconnect(net.local_addr()).unwrap(),
        2,
        "every unreplied keyed request must resume"
    );
    // Redeem out of order: waiting on the second tag first parks the
    // first reply, which must stay redeemable afterwards.
    let r1 = client.recv_tag(tag1, Duration::from_secs(30)).unwrap();
    assert_eq!(
        r1.result.expect("resumed request must succeed").tensor().unwrap(),
        goldens[1],
        "recovered execution diverged"
    );
    let r0 = client.recv_tag(tag0, Duration::from_secs(30)).unwrap();
    assert_eq!(r0.result.expect("parked reply must redeem").tensor().unwrap(), goldens[0]);
    let _ = net.shutdown();
    let server = Arc::try_unwrap(server).unwrap_or_else(|_| panic!("front-end still holds the core"));
    let stats = server.shutdown();
    assert_eq!(stats.duplicate_executions, 0, "exactly-once violated");
    assert_eq!(stats.completed, 2, "each key executes exactly once across both lives");
    let _ = std::fs::remove_file(&jpath);
}
