//! Front-end counters and their snapshot.
//!
//! Same discipline as the serving core's [`npcgra_serve::StatsSnapshot`]:
//! hot-path increments are relaxed atomics, snapshot reads are `Acquire`,
//! and the snapshot is a plain owned struct so tests and benches can
//! assert on it after the reactor thread is gone. Per-*tenant* counters
//! deliberately do not live here — they are part of the serving core's
//! snapshot (one place tells the whole story); these are per-*front-end*
//! totals.

use std::sync::atomic::{AtomicU64, Ordering};

/// One relaxed-increment, acquire-read counter.
#[derive(Debug, Default)]
pub(crate) struct Counter(AtomicU64);

impl Counter {
    pub(crate) fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }
    pub(crate) fn set(&self, n: u64) {
        self.0.store(n, Ordering::Release);
    }
    pub(crate) fn get(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }
}

/// Live front-end counters, shared between the reactor thread and
/// whoever holds the [`NetServer`](crate::NetServer) handle.
#[derive(Debug, Default)]
pub(crate) struct NetCounters {
    pub(crate) accepted: Counter,
    pub(crate) closed: Counter,
    pub(crate) rejected_conns: Counter,
    pub(crate) frames_rx: Counter,
    pub(crate) frames_tx: Counter,
    pub(crate) requests_rx: Counter,
    pub(crate) replies_tx: Counter,
    pub(crate) admitted: Counter,
    pub(crate) rejected_malformed: Counter,
    pub(crate) rejected_bad_token: Counter,
    pub(crate) rejected_rate_limited: Counter,
    pub(crate) rejected_quota: Counter,
    pub(crate) rejected_backpressure: Counter,
    pub(crate) rejected_draining: Counter,
    pub(crate) rejected_serve: Counter,
    pub(crate) evicted_slow_loris: Counter,
    pub(crate) evicted_idle: Counter,
    pub(crate) evicted_write_stall: Counter,
    pub(crate) peer_closed: Counter,
    pub(crate) peer_resets: Counter,
    pub(crate) io_errors: Counter,
    pub(crate) kicked: Counter,
    pub(crate) midflight_disconnects: Counter,
    pub(crate) tombstoned_inflight: Counter,
    pub(crate) bytes_rx: Counter,
    pub(crate) bytes_tx: Counter,
    /// Gauge: connections currently owned by the reactor.
    pub(crate) active_conns: Counter,
    /// Gauge: unflushed reply bytes across all connections.
    pub(crate) write_backlog: Counter,
    /// Gauge: current net backpressure rung (brownout-ladder step index).
    pub(crate) pressure_step: Counter,
}

impl NetCounters {
    pub(crate) fn snapshot(&self) -> NetStats {
        // Sinks first (Acquire), the source counters last, mirroring the
        // serving core's capture order so `accepted ≥ closed` and
        // `requests_rx ≥ admitted + rejected_*` hold in any snapshot.
        let closed = self.closed.get();
        let admitted = self.admitted.get();
        let replies_tx = self.replies_tx.get();
        NetStats {
            closed,
            admitted,
            replies_tx,
            rejected_conns: self.rejected_conns.get(),
            frames_tx: self.frames_tx.get(),
            rejected_malformed: self.rejected_malformed.get(),
            rejected_bad_token: self.rejected_bad_token.get(),
            rejected_rate_limited: self.rejected_rate_limited.get(),
            rejected_quota: self.rejected_quota.get(),
            rejected_backpressure: self.rejected_backpressure.get(),
            rejected_draining: self.rejected_draining.get(),
            rejected_serve: self.rejected_serve.get(),
            evicted_slow_loris: self.evicted_slow_loris.get(),
            evicted_idle: self.evicted_idle.get(),
            evicted_write_stall: self.evicted_write_stall.get(),
            peer_closed: self.peer_closed.get(),
            peer_resets: self.peer_resets.get(),
            io_errors: self.io_errors.get(),
            kicked: self.kicked.get(),
            midflight_disconnects: self.midflight_disconnects.get(),
            tombstoned_inflight: self.tombstoned_inflight.get(),
            bytes_rx: self.bytes_rx.get(),
            bytes_tx: self.bytes_tx.get(),
            active_conns: self.active_conns.get(),
            write_backlog: self.write_backlog.get(),
            pressure_step: self.pressure_step.get(),
            frames_rx: self.frames_rx.get(),
            requests_rx: self.requests_rx.get(),
            accepted: self.accepted.get(),
        }
    }
}

/// A point-in-time copy of the front-end counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections torn down (any reason).
    pub closed: u64,
    /// Connections refused at accept (connection cap).
    pub rejected_conns: u64,
    /// Complete frames decoded from clients.
    pub frames_rx: u64,
    /// Frames written to clients.
    pub frames_tx: u64,
    /// Request frames received.
    pub requests_rx: u64,
    /// Reply frames written (success or typed rejection).
    pub replies_tx: u64,
    /// Requests admitted into the serving core.
    pub admitted: u64,
    /// Connections that broke the wire grammar.
    pub rejected_malformed: u64,
    /// Requests with an unknown tenant token.
    pub rejected_bad_token: u64,
    /// Requests shed by a tenant token bucket.
    pub rejected_rate_limited: u64,
    /// Requests shed by a tenant in-flight quota.
    pub rejected_quota: u64,
    /// Requests shed by net-level backpressure.
    pub rejected_backpressure: u64,
    /// Requests refused because the front-end was draining.
    pub rejected_draining: u64,
    /// Requests the serving core rejected synchronously.
    pub rejected_serve: u64,
    /// Connections evicted for a half-frame older than the read timeout.
    pub evicted_slow_loris: u64,
    /// Connections evicted for inactivity.
    pub evicted_idle: u64,
    /// Connections evicted for refusing to drain replies.
    pub evicted_write_stall: u64,
    /// Peers that closed cleanly.
    pub peer_closed: u64,
    /// Peers that reset/aborted the stream.
    pub peer_resets: u64,
    /// Connections dropped on other I/O errors.
    pub io_errors: u64,
    /// Connections force-closed at the drain deadline.
    pub kicked: u64,
    /// Disconnects that abandoned at least one in-flight request.
    pub midflight_disconnects: u64,
    /// In-flight tickets dropped to reply-slot tombstones.
    pub tombstoned_inflight: u64,
    /// Raw bytes read from clients.
    pub bytes_rx: u64,
    /// Raw bytes written to clients.
    pub bytes_tx: u64,
    /// Gauge: live connections (0 after a completed shutdown).
    pub active_conns: u64,
    /// Gauge: unflushed reply bytes across all connections.
    pub write_backlog: u64,
    /// Gauge: net backpressure rung (0 = Normal … 4 = Drain).
    pub pressure_step: u64,
}

impl std::fmt::Display for NetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "net: conns {} accepted / {} closed / {} refused ({} live), frames {} in / {} out",
            self.accepted, self.closed, self.rejected_conns, self.active_conns, self.frames_rx, self.frames_tx
        )?;
        writeln!(
            f,
            "     requests {} in → {} admitted, shed: {} malformed, {} bad-token, {} rate, {} quota, {} backpressure, {} draining, {} serve",
            self.requests_rx,
            self.admitted,
            self.rejected_malformed,
            self.rejected_bad_token,
            self.rejected_rate_limited,
            self.rejected_quota,
            self.rejected_backpressure,
            self.rejected_draining,
            self.rejected_serve,
        )?;
        write!(
            f,
            "     evictions: {} slow-loris, {} idle, {} write-stall; {} mid-flight disconnects ({} tombstoned), {} peer resets",
            self.evicted_slow_loris,
            self.evicted_idle,
            self.evicted_write_stall,
            self.midflight_disconnects,
            self.tombstoned_inflight,
            self.peer_resets,
        )
    }
}
