//! The NP-CGRA wire protocol: length-prefixed, checksummed frames.
//!
//! Every frame is a fixed 17-byte header followed by a bounded payload:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "NPC" + version byte (currently b'1')
//! 4       1     kind   1=Request 2=Reply 3=Error 4=Bye
//! 5       4     len    payload length, little-endian, bounded
//! 9       8     check  FNV-1a 64, little-endian
//! 17      len   payload
//! ```
//!
//! The checksum covers the nine header bytes *before* it plus the whole
//! payload, so a bit flip anywhere in a frame — kind, length, payload —
//! is caught; there is no unprotected byte a corruption can hide in.
//!
//! The header is deliberately rigid: a stream that produces a bad magic,
//! an unknown version or kind, an oversized length, or a checksum mismatch
//! is *unrecoverable* — with a corrupted length prefix there is no
//! trustworthy frame boundary left to resynchronise on, so the decoder
//! poisons itself and the connection closes after a typed [`WireError`]
//! is reported. Truncation is not an error: the decoder simply waits for
//! more bytes, and the connection layer's read timeout decides when a
//! half-frame has lingered long enough to be a slow-loris.
//!
//! Payload grammars (all integers little-endian):
//!
//! ```text
//! Request: tag u64 | idem u64 | token u8-len + bytes | class u8
//!        | deadline_ms u32 | model u32 | c u16 | h u16 | w u16
//!        | c*h*w words (i16)
//! Reply:   tag u64 | request_id u64 | status u8
//!          status 0: batch u16 | worker u16 | latency_us u64
//!                  | c u16 | h u16 | w u16 | c*h*w words (i16)
//!          else:     message u16-len + utf8
//! Error:   code u8 | message u16-len + utf8         (then the peer closes)
//! Bye:     (empty)                                   (graceful drain notice)
//! ```
//!
//! Decoding is strict: every length is bounds-checked, the payload must be
//! consumed exactly (no trailing bytes), and malformed content surfaces as
//! [`WireError::BadPayload`] — never a panic, never an out-of-bounds read.

use npcgra_nn::{Tensor, Word};

/// Protocol magic: `b"NPC"` followed by the version byte.
pub const MAGIC: [u8; 3] = *b"NPC";
/// Current (and only) protocol version byte.
pub const VERSION: u8 = b'1';
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 17;

/// Frame kind byte for a client request.
pub const KIND_REQUEST: u8 = 1;
/// Frame kind byte for a server reply.
pub const KIND_REPLY: u8 = 2;
/// Frame kind byte for a fatal connection-level error notice.
pub const KIND_ERROR: u8 = 3;
/// Frame kind byte for a graceful-close notice.
pub const KIND_BYE: u8 = 4;

/// Reply status / error-frame codes. `0` is success; everything else is a
/// typed rejection the client can match on without parsing the message.
pub mod code {
    /// Request completed; the reply carries the output tensor.
    pub const OK: u8 = 0;
    /// The frame violated the wire grammar (the connection closes).
    pub const MALFORMED: u8 = 1;
    /// The tenant token matched no registered tenant.
    pub const BAD_TOKEN: u8 = 2;
    /// The tenant's token bucket was empty.
    pub const RATE_LIMITED: u8 = 3;
    /// The tenant's in-flight quota was full.
    pub const QUOTA: u8 = 4;
    /// Net-level backpressure shed the request before admission.
    pub const BACKPRESSURE: u8 = 5;
    /// The server is draining; no new work is accepted.
    pub const DRAINING: u8 = 6;
    /// The serving core rejected or failed the request ([`ServeError`]
    /// carried as text; `request_id` still identifies the attempt).
    ///
    /// [`ServeError`]: npcgra_serve::ServeError
    pub const SERVE: u8 = 7;
    /// The connection was evicted (slow-loris, idle or write-stall).
    pub const EVICTED: u8 = 8;
}

/// A decoded frame, either direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireFrame {
    /// A client inference request.
    Request(WireRequest),
    /// A server reply (success or typed per-request rejection).
    Reply(WireReply),
    /// A fatal connection-level error; the sender closes after this.
    Error {
        /// One of the [`code`] constants.
        code: u8,
        /// Human-readable detail.
        message: String,
    },
    /// Graceful-close notice (server drain, or client done).
    Bye,
}

/// A client inference request as carried on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireRequest {
    /// Client-chosen correlation tag, echoed verbatim in the reply.
    pub tag: u64,
    /// Client idempotency key; 0 = none. A journaled server collapses
    /// retries carrying the same non-zero key into one execution and
    /// redelivers the remembered reply bit-exactly (see
    /// [`npcgra_serve::journal`]).
    pub idem: u64,
    /// Tenant authentication token (opaque bytes, ≤ 255).
    pub token: Vec<u8>,
    /// Priority class: 0 Interactive, 1 Batch, 2 BestEffort.
    pub class: u8,
    /// Start-execution deadline in milliseconds; 0 = none.
    pub deadline_ms: u32,
    /// Registered model index on the server.
    pub model: u32,
    /// Input shape `(channels, height, width)`.
    pub shape: (u16, u16, u16),
    /// Input words, row-major as [`Tensor::as_slice`] lays them out.
    pub words: Vec<Word>,
}

impl WireRequest {
    /// Rebuild the input tensor this request carries.
    ///
    /// Returns `None` when the word count does not match the shape (the
    /// decoder already enforces this, so `None` only means the struct was
    /// built by hand inconsistently).
    #[must_use]
    pub fn tensor(&self) -> Option<Tensor> {
        let (c, h, w) = self.shape;
        let (c, h, w) = (c as usize, h as usize, w as usize);
        if c * h * w != self.words.len() {
            return None;
        }
        let mut t = Tensor::zeros(c, h, w);
        t.as_mut_slice().copy_from_slice(&self.words);
        Some(t)
    }
}

/// A server reply as carried on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireReply {
    /// The request's correlation tag, echoed.
    pub tag: u64,
    /// Server-assigned request id (0 when the request never reached the
    /// serving core's admission — e.g. a rate-limited tenant).
    pub request_id: u64,
    /// The outcome: an output, or a `(code, message)` rejection.
    pub result: Result<WireResponse, (u8, String)>,
}

/// The success arm of a [`WireReply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireResponse {
    /// How many requests the executing batch coalesced.
    pub batch: u16,
    /// Which worker shard ran the batch.
    pub worker: u16,
    /// Admission-to-reply latency in microseconds (saturating).
    pub latency_us: u64,
    /// Output shape `(channels, height, width)`.
    pub shape: (u16, u16, u16),
    /// Output words.
    pub words: Vec<Word>,
}

impl WireResponse {
    /// Rebuild the output tensor; `None` on an inconsistent hand-built
    /// struct (the decoder enforces shape·len agreement).
    #[must_use]
    pub fn tensor(&self) -> Option<Tensor> {
        let (c, h, w) = self.shape;
        let (c, h, w) = (c as usize, h as usize, w as usize);
        if c * h * w != self.words.len() {
            return None;
        }
        let mut t = Tensor::zeros(c, h, w);
        t.as_mut_slice().copy_from_slice(&self.words);
        Some(t)
    }
}

/// Why a byte stream failed to decode. Every variant is fatal to the
/// connection: with the length prefix untrusted there is no boundary to
/// resynchronise on, so the policy is *typed error, then close*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The first three header bytes were not `b"NPC"`.
    BadMagic {
        /// The bytes actually seen.
        got: [u8; 3],
    },
    /// The version byte was not [`VERSION`].
    BadVersion {
        /// The version byte actually seen.
        got: u8,
    },
    /// The kind byte named no known frame kind.
    BadKind {
        /// The kind byte actually seen.
        got: u8,
    },
    /// The declared payload length exceeded the configured bound.
    Oversize {
        /// Declared payload length.
        len: u32,
        /// The decoder's configured maximum.
        max: u32,
    },
    /// The payload checksum did not match the header's.
    Checksum {
        /// Checksum the header declared.
        declared: u64,
        /// Checksum computed over the received payload.
        computed: u64,
    },
    /// The payload violated its grammar (short field, trailing bytes,
    /// shape/word-count mismatch, invalid UTF-8, token over 255 bytes…).
    BadPayload {
        /// Which rule the payload broke.
        detail: &'static str,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic { got } => write!(f, "bad magic {got:02x?} (want \"NPC\")"),
            WireError::BadVersion { got } => write!(f, "unsupported protocol version {got:#04x}"),
            WireError::BadKind { got } => write!(f, "unknown frame kind {got}"),
            WireError::Oversize { len, max } => write!(f, "frame payload {len} B exceeds bound {max} B"),
            WireError::Checksum { declared, computed } => {
                write!(
                    f,
                    "payload checksum mismatch (header {declared:#018x}, computed {computed:#018x})"
                )
            }
            WireError::BadPayload { detail } => write!(f, "malformed payload: {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

/// FNV-1a 64-bit over `bytes` — the frame checksum. Not cryptographic;
/// it exists to catch corruption (and the chaos injector's bit flips),
/// not adversaries, exactly like the simulator's ABFT checksums.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_update(0xcbf2_9ce4_8422_2325, bytes)
}

/// Continue an FNV-1a 64 hash over more bytes (the frame checksum chains
/// the header prefix and the payload without concatenating them).
#[must_use]
pub fn fnv1a_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encode one frame, appending header + payload to `out`.
///
/// # Panics
///
/// Panics if a hand-built frame violates its own grammar (token > 255
/// bytes, word count disagreeing with shape, message > 64 KiB): encoding
/// garbage would poison the peer, so that is a caller bug, not a wire
/// condition.
pub fn encode_frame(frame: &WireFrame, out: &mut Vec<u8>) {
    let mut payload = Vec::new();
    let kind = match frame {
        WireFrame::Request(rq) => {
            assert!(rq.token.len() <= u8::MAX as usize, "tenant token over 255 bytes");
            let (c, h, w) = rq.shape;
            assert_eq!(
                c as usize * h as usize * w as usize,
                rq.words.len(),
                "request word count disagrees with shape"
            );
            put_u64(&mut payload, rq.tag);
            put_u64(&mut payload, rq.idem);
            payload.push(rq.token.len() as u8);
            payload.extend_from_slice(&rq.token);
            payload.push(rq.class);
            put_u32(&mut payload, rq.deadline_ms);
            put_u32(&mut payload, rq.model);
            put_u16(&mut payload, c);
            put_u16(&mut payload, h);
            put_u16(&mut payload, w);
            for &word in &rq.words {
                payload.extend_from_slice(&word.to_le_bytes());
            }
            KIND_REQUEST
        }
        WireFrame::Reply(rp) => {
            put_u64(&mut payload, rp.tag);
            put_u64(&mut payload, rp.request_id);
            match &rp.result {
                Ok(resp) => {
                    let (c, h, w) = resp.shape;
                    assert_eq!(
                        c as usize * h as usize * w as usize,
                        resp.words.len(),
                        "reply word count disagrees with shape"
                    );
                    payload.push(code::OK);
                    put_u16(&mut payload, resp.batch);
                    put_u16(&mut payload, resp.worker);
                    put_u64(&mut payload, resp.latency_us);
                    put_u16(&mut payload, c);
                    put_u16(&mut payload, h);
                    put_u16(&mut payload, w);
                    for &word in &resp.words {
                        payload.extend_from_slice(&word.to_le_bytes());
                    }
                }
                Err((code, message)) => {
                    assert_ne!(*code, code::OK, "error reply with OK status");
                    payload.push(*code);
                    put_message(&mut payload, message);
                }
            }
            KIND_REPLY
        }
        WireFrame::Error { code, message } => {
            payload.push(*code);
            put_message(&mut payload, message);
            KIND_ERROR
        }
        WireFrame::Bye => KIND_BYE,
    };
    let head = out.len();
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(kind);
    put_u32(out, payload.len() as u32);
    let check = fnv1a_update(fnv1a(&out[head..head + 9]), &payload);
    put_u64(out, check);
    out.extend_from_slice(&payload);
}

fn put_message(payload: &mut Vec<u8>, message: &str) {
    assert!(message.len() <= u16::MAX as usize, "wire message over 64 KiB");
    put_u16(payload, message.len() as u16);
    payload.extend_from_slice(message.as_bytes());
}

/// A strict little-endian payload reader: every take is bounds-checked
/// and the caller must [`finish`](Reader::finish) to reject trailing
/// bytes.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, at: 0 }
    }
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.buf.len());
        let end = end.ok_or(WireError::BadPayload { detail: what })?;
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }
    fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }
    fn u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
    fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }
    fn words(&mut self, count: usize, what: &'static str) -> Result<Vec<Word>, WireError> {
        let bytes = count.checked_mul(2).ok_or(WireError::BadPayload { detail: what })?;
        let raw = self.take(bytes, what)?;
        Ok(raw.chunks_exact(2).map(|p| Word::from_le_bytes([p[0], p[1]])).collect())
    }
    fn message(&mut self) -> Result<String, WireError> {
        let len = self.u16("message length")? as usize;
        let raw = self.take(len, "message body")?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::BadPayload {
            detail: "message not UTF-8",
        })
    }
    fn finish(self) -> Result<(), WireError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::BadPayload {
                detail: "trailing bytes after payload",
            })
        }
    }
}

fn decode_payload(kind: u8, payload: &[u8]) -> Result<WireFrame, WireError> {
    let mut r = Reader::new(payload);
    let frame = match kind {
        KIND_REQUEST => {
            let tag = r.u64("request tag")?;
            let idem = r.u64("idempotency key")?;
            let token_len = r.u8("token length")? as usize;
            let token = r.take(token_len, "token body")?.to_vec();
            let class = r.u8("priority class")?;
            if class > 2 {
                return Err(WireError::BadPayload {
                    detail: "priority class out of range",
                });
            }
            let deadline_ms = r.u32("deadline")?;
            let model = r.u32("model id")?;
            let c = r.u16("channels")?;
            let h = r.u16("height")?;
            let w = r.u16("width")?;
            let count = c as usize * h as usize * w as usize;
            let words = r.words(count, "input words")?;
            WireFrame::Request(WireRequest {
                tag,
                idem,
                token,
                class,
                deadline_ms,
                model,
                shape: (c, h, w),
                words,
            })
        }
        KIND_REPLY => {
            let tag = r.u64("reply tag")?;
            let request_id = r.u64("request id")?;
            let status = r.u8("status")?;
            let result = if status == code::OK {
                let batch = r.u16("batch size")?;
                let worker = r.u16("worker")?;
                let latency_us = r.u64("latency")?;
                let c = r.u16("channels")?;
                let h = r.u16("height")?;
                let w = r.u16("width")?;
                let count = c as usize * h as usize * w as usize;
                let words = r.words(count, "output words")?;
                Ok(WireResponse {
                    batch,
                    worker,
                    latency_us,
                    shape: (c, h, w),
                    words,
                })
            } else {
                Err((status, r.message()?))
            };
            WireFrame::Reply(WireReply { tag, request_id, result })
        }
        KIND_ERROR => {
            let code = r.u8("error code")?;
            let message = r.message()?;
            WireFrame::Error { code, message }
        }
        KIND_BYE => WireFrame::Bye,
        other => return Err(WireError::BadKind { got: other }),
    };
    r.finish()?;
    Ok(frame)
}

/// Incremental frame decoder over an untrusted byte stream.
///
/// Feed raw socket reads with [`push`](FrameDecoder::push), pop complete
/// frames with [`next`](FrameDecoder::next). The first [`WireError`]
/// poisons the decoder permanently — the connection must close (see the
/// module docs for why resynchronisation is off the table).
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by decoded frames.
    at: usize,
    max_payload: u32,
    poisoned: Option<WireError>,
}

impl FrameDecoder {
    /// A decoder that rejects payloads over `max_payload` bytes.
    #[must_use]
    pub fn new(max_payload: u32) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            at: 0,
            max_payload,
            poisoned: None,
        }
    }

    /// Append raw bytes read from the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact lazily so a long-lived connection doesn't grow its
        // buffer without bound while staying O(1) amortised.
        if self.at > 0 && self.at >= self.buf.len() / 2 {
            self.buf.drain(..self.at);
            self.at = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// True while a frame has started arriving but not finished — the
    /// window the slow-loris read timeout measures.
    #[must_use]
    pub fn mid_frame(&self) -> bool {
        self.buf.len() > self.at
    }

    /// Bytes buffered but not yet decoded.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.at
    }

    /// Pop the next complete frame.
    ///
    /// `Ok(None)` means "need more bytes".
    ///
    /// # Errors
    ///
    /// Any [`WireError`] is fatal: this decoder is poisoned and every
    /// further call returns the same error.
    #[allow(clippy::should_implement_trait)] // fallible, non-iterator poll
    pub fn next(&mut self) -> Result<Option<WireFrame>, WireError> {
        if let Some(e) = self.poisoned {
            return Err(e);
        }
        match self.try_next() {
            Ok(v) => Ok(v),
            Err(e) => {
                self.poisoned = Some(e);
                Err(e)
            }
        }
    }

    fn try_next(&mut self) -> Result<Option<WireFrame>, WireError> {
        let avail = &self.buf[self.at..];
        if avail.len() < HEADER_LEN {
            // Header bytes present so far must still be a magic prefix:
            // rejecting garbage at byte 1 instead of byte 17 keeps a
            // hostile half-open connection from parking junk for free.
            let n = avail.len().min(3);
            if avail[..n] != MAGIC[..n] {
                let mut got = [0u8; 3];
                got[..n].copy_from_slice(&avail[..n]);
                return Err(WireError::BadMagic { got });
            }
            return Ok(None);
        }
        if avail[..3] != MAGIC {
            return Err(WireError::BadMagic {
                got: [avail[0], avail[1], avail[2]],
            });
        }
        if avail[3] != VERSION {
            return Err(WireError::BadVersion { got: avail[3] });
        }
        let kind = avail[4];
        if !(KIND_REQUEST..=KIND_BYE).contains(&kind) {
            return Err(WireError::BadKind { got: kind });
        }
        let len = u32::from_le_bytes([avail[5], avail[6], avail[7], avail[8]]);
        if len > self.max_payload {
            return Err(WireError::Oversize {
                len,
                max: self.max_payload,
            });
        }
        let declared = u64::from_le_bytes([
            avail[9], avail[10], avail[11], avail[12], avail[13], avail[14], avail[15], avail[16],
        ]);
        let total = HEADER_LEN + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let payload = &avail[HEADER_LEN..total];
        let computed = fnv1a_update(fnv1a(&avail[..9]), payload);
        if computed != declared {
            return Err(WireError::Checksum { declared, computed });
        }
        let frame = decode_payload(kind, payload)?;
        self.at += total;
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: &WireFrame) -> WireFrame {
        let mut bytes = Vec::new();
        encode_frame(frame, &mut bytes);
        let mut d = FrameDecoder::new(1 << 20);
        d.push(&bytes);
        let got = d.next().expect("decode").expect("complete frame");
        assert!(d.next().expect("no second frame").is_none());
        assert!(!d.mid_frame());
        got
    }

    fn sample_request() -> WireFrame {
        WireFrame::Request(WireRequest {
            tag: 7,
            idem: 0xFEED,
            token: b"tenant-a".to_vec(),
            class: 1,
            deadline_ms: 250,
            model: 3,
            shape: (2, 3, 4),
            words: (0..24).map(|i| i as Word - 12).collect(),
        })
    }

    #[test]
    fn request_roundtrips() {
        let f = sample_request();
        assert_eq!(roundtrip(&f), f);
    }

    #[test]
    fn reply_ok_and_error_roundtrip() {
        let ok = WireFrame::Reply(WireReply {
            tag: 9,
            request_id: 41,
            result: Ok(WireResponse {
                batch: 4,
                worker: 1,
                latency_us: 12345,
                shape: (1, 2, 2),
                words: vec![1, -2, 3, -4],
            }),
        });
        assert_eq!(roundtrip(&ok), ok);
        let err = WireFrame::Reply(WireReply {
            tag: 9,
            request_id: 0,
            result: Err((code::RATE_LIMITED, "tenant-a over rate".into())),
        });
        assert_eq!(roundtrip(&err), err);
        let notice = WireFrame::Error {
            code: code::MALFORMED,
            message: "bad magic".into(),
        };
        assert_eq!(roundtrip(&notice), notice);
        assert_eq!(roundtrip(&WireFrame::Bye), WireFrame::Bye);
    }

    #[test]
    fn split_delivery_reassembles() {
        let mut bytes = Vec::new();
        encode_frame(&sample_request(), &mut bytes);
        let mut d = FrameDecoder::new(1 << 20);
        for chunk in bytes.chunks(3) {
            assert!(d.next().expect("no error mid-frame").is_none() || chunk.is_empty());
            d.push(chunk);
        }
        assert_eq!(d.next().unwrap().unwrap(), sample_request());
    }

    #[test]
    fn bad_magic_is_fatal_and_sticky() {
        let mut d = FrameDecoder::new(64);
        d.push(b"GET / HTTP/1.1\r\n");
        let e = d.next().unwrap_err();
        assert!(matches!(e, WireError::BadMagic { .. }));
        assert_eq!(d.next().unwrap_err(), e, "poisoned decoder repeats its error");
    }

    #[test]
    fn early_garbage_rejected_before_full_header() {
        let mut d = FrameDecoder::new(64);
        d.push(b"XX");
        assert!(matches!(d.next().unwrap_err(), WireError::BadMagic { .. }));
    }

    #[test]
    fn oversize_checksum_kind_version_all_typed() {
        // Oversize: declared len beyond bound.
        let mut bytes = Vec::new();
        encode_frame(&WireFrame::Bye, &mut bytes);
        let mut big = bytes.clone();
        big[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut d = FrameDecoder::new(1024);
        d.push(&big);
        assert!(matches!(d.next().unwrap_err(), WireError::Oversize { .. }));

        // Checksum: flip a payload bit of a request.
        let mut bytes = Vec::new();
        encode_frame(&sample_request(), &mut bytes);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let mut d = FrameDecoder::new(1 << 20);
        d.push(&bytes);
        assert!(matches!(d.next().unwrap_err(), WireError::Checksum { .. }));

        // Kind.
        let mut bytes = Vec::new();
        encode_frame(&WireFrame::Bye, &mut bytes);
        bytes[4] = 99;
        let mut d = FrameDecoder::new(64);
        d.push(&bytes);
        assert!(matches!(d.next().unwrap_err(), WireError::BadKind { got: 99 }));

        // Version.
        let mut bytes = Vec::new();
        encode_frame(&WireFrame::Bye, &mut bytes);
        bytes[3] = b'9';
        let mut d = FrameDecoder::new(64);
        d.push(&bytes);
        assert!(matches!(d.next().unwrap_err(), WireError::BadVersion { got: b'9' }));
    }

    #[test]
    fn trailing_payload_bytes_rejected() {
        // Hand-build a Bye with one extra payload byte and a valid checksum.
        let payload = [0u8];
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(KIND_BYE);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&fnv1a_update(fnv1a(&bytes[..9]), &payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let mut d = FrameDecoder::new(64);
        d.push(&bytes);
        assert!(matches!(d.next().unwrap_err(), WireError::BadPayload { .. }));
    }

    #[test]
    fn shape_word_count_mismatch_rejected() {
        // A request whose declared shape implies more words than carried.
        let rq = WireRequest {
            tag: 1,
            idem: 0,
            token: vec![],
            class: 0,
            deadline_ms: 0,
            model: 0,
            shape: (1, 1, 1),
            words: vec![5],
        };
        let mut bytes = Vec::new();
        encode_frame(&WireFrame::Request(rq), &mut bytes);
        // Grow the declared width without adding words; refresh checksum so
        // only the grammar check can object.
        let w_off = HEADER_LEN + 8 + 8 + 1 + 1 + 4 + 4 + 4;
        bytes[w_off..w_off + 2].copy_from_slice(&4u16.to_le_bytes());
        let payload = bytes[HEADER_LEN..].to_vec();
        let check = fnv1a_update(fnv1a(&bytes[..9]), &payload);
        bytes[9..17].copy_from_slice(&check.to_le_bytes());
        let mut d = FrameDecoder::new(1 << 20);
        d.push(&bytes);
        assert!(matches!(d.next().unwrap_err(), WireError::BadPayload { .. }));
    }
}
