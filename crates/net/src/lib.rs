//! `npcgra-net` — a multi-tenant TCP front-end for the NP-CGRA inference
//! server.
//!
//! The serving core ([`npcgra_serve`]) is integrity-checked, overload-
//! controlled and gray-failure-hardened, but only in-process callers can
//! reach it. This crate puts a socket boundary in front of the
//! submit/ticket API and gives the network path the same treatment the
//! compute path already has — typed failures, deterministic fault
//! injection, and nothing that can panic or leak on hostile input:
//!
//! * **Wire protocol** ([`frame`]) — length-prefixed, FNV-checksummed,
//!   versioned frames with a bounded payload; malformed, truncated or
//!   oversized input becomes a typed [`WireError`](frame::WireError)
//!   notice followed by a close, never a desync.
//! * **Reactor** ([`NetServer`]) — a hand-rolled non-blocking readiness
//!   loop over `std::net` (no tokio/mio: the build is offline). One
//!   thread owns every connection; per-tick work is bounded by
//!   `WouldBlock` everywhere.
//! * **Tenants** ([`tenant`]) — per-tenant auth tokens, token-bucket
//!   rate limits and in-flight quotas, gated *before* the serving core's
//!   admission so a hostile tenant spends its own budget, not the queue.
//!   Outcomes land in the serving core's per-tenant counters
//!   ([`npcgra_serve::StatsSnapshot::tenants`]).
//! * **Backpressure** — write backlog and accept pressure map onto the
//!   serving core's [`BrownoutLevel`] ladder ([`pressure_level`]), and
//!   net-side shedding follows the same lowest-class-first discipline
//!   ([`net_sheds`]).
//! * **Connection chaos** ([`chaos`]) — a seeded, pure-hash injector in
//!   the style of `sim::fault`: byte corruption, partial writes, stalled
//!   reads and mid-flight resets, bit-identical per seed.
//! * **Timeout evictions** — read (slow-loris), write (stalled peer) and
//!   idle timeouts; a disconnect with requests in flight resolves through
//!   the serving core's reply-slot tombstones, so nothing leaks.
//!
//! Every [`NetConfig`] knob defaults off/unbound: a deployment that never
//! starts a front-end behaves identically to one built before this crate
//! existed.
//!
//! ```
//! use std::sync::Arc;
//! use npcgra_nn::{ConvLayer, Tensor};
//! use npcgra_serve::{Priority, ServeConfig, Server};
//! use npcgra_net::{NetClient, NetConfig, NetServer};
//!
//! let server = Arc::new(Server::start(ServeConfig::default().with_workers(1)));
//! let layer = ConvLayer::depthwise("dw", 3, 8, 8, 3, 1, 1);
//! let weights = layer.random_weights(1);
//! server.register("demo", layer, weights).unwrap();
//!
//! let net = NetServer::start(Arc::clone(&server), NetConfig::default()).unwrap();
//! let mut client = NetClient::connect(net.local_addr(), b"").unwrap();
//! let reply = client
//!     .call(0, &Tensor::random(3, 8, 8, 2), Priority::Interactive, None,
//!           std::time::Duration::from_secs(30))
//!     .unwrap();
//! assert!(reply.result.is_ok());
//! drop(client);
//! let stats = net.shutdown();
//! assert_eq!(stats.admitted, 1);
//! assert_eq!(stats.active_conns, 0, "no leaked connections");
//! let server = Arc::try_unwrap(server).unwrap_or_else(|_| panic!("net front-end still holds the server"));
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub(crate) mod conn;
pub mod frame;
pub(crate) mod reactor;
pub(crate) mod stats;
pub mod tenant;

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use npcgra_serve::{BrownoutLevel, Priority, Server};

pub use chaos::{ChaosAction, NetChaos, NetChaosConfig};
pub use client::{ClientError, NetClient};
pub use frame::{WireError, WireFrame, WireReply, WireRequest, WireResponse};
pub use stats::NetStats;
pub use tenant::{TenantDenied, TenantSpec};

use reactor::ReactorShared;
use tenant::TenantRegistry;

/// Front-end configuration. Every limit defaults off/unbound; the only
/// always-on protections are protocol-inherent (frame checksum, payload
/// bound, typed-error-then-close on malformed input).
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// Listen address. Default `127.0.0.1:0` (loopback, ephemeral port —
    /// read the bound port from [`NetServer::local_addr`]).
    pub addr: SocketAddr,
    /// Maximum concurrent connections; `0` = unbounded. Beyond the cap,
    /// accepts get a typed backpressure notice and an immediate close.
    pub max_conns: usize,
    /// Maximum frame payload size the decoder accepts.
    pub max_frame_bytes: u32,
    /// Evict a connection whose half-received frame is older than this
    /// (the slow-loris guard). `None` = off.
    pub read_timeout: Option<Duration>,
    /// Evict a connection that has refused to drain replies this long.
    /// `None` = off.
    pub write_timeout: Option<Duration>,
    /// Close a connection with no traffic and nothing in flight after
    /// this long. `None` = off.
    pub idle_timeout: Option<Duration>,
    /// Total unflushed reply bytes across connections at which the
    /// backpressure ladder starts climbing ([`pressure_level`]); `0` =
    /// unbounded.
    pub write_backlog_limit: usize,
    /// How long shutdown keeps delivering replies for admitted work
    /// before force-closing stragglers.
    pub drain_timeout: Duration,
    /// Reactor tick (poll cadence). Smaller is lower latency, more CPU.
    pub tick: Duration,
    /// Registered tenants. Empty = auth disabled, no limits (defaults-off).
    pub tenants: Vec<TenantSpec>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            max_conns: 0,
            max_frame_bytes: 1 << 24,
            read_timeout: None,
            write_timeout: None,
            idle_timeout: None,
            write_backlog_limit: 0,
            drain_timeout: Duration::from_secs(5),
            tick: Duration::from_micros(500),
            tenants: Vec::new(),
        }
    }
}

impl NetConfig {
    /// Set the listen address.
    #[must_use]
    pub fn with_addr(mut self, addr: SocketAddr) -> Self {
        self.addr = addr;
        self
    }
    /// Set the connection cap.
    #[must_use]
    pub fn with_max_conns(mut self, max: usize) -> Self {
        self.max_conns = max;
        self
    }
    /// Set the frame payload bound.
    #[must_use]
    pub fn with_max_frame_bytes(mut self, max: u32) -> Self {
        self.max_frame_bytes = max;
        self
    }
    /// Set the slow-loris read timeout.
    #[must_use]
    pub fn with_read_timeout(mut self, t: Option<Duration>) -> Self {
        self.read_timeout = t;
        self
    }
    /// Set the write-stall timeout.
    #[must_use]
    pub fn with_write_timeout(mut self, t: Option<Duration>) -> Self {
        self.write_timeout = t;
        self
    }
    /// Set the idle timeout.
    #[must_use]
    pub fn with_idle_timeout(mut self, t: Option<Duration>) -> Self {
        self.idle_timeout = t;
        self
    }
    /// Set the write-backlog backpressure limit.
    #[must_use]
    pub fn with_write_backlog_limit(mut self, bytes: usize) -> Self {
        self.write_backlog_limit = bytes;
        self
    }
    /// Set the shutdown drain bound.
    #[must_use]
    pub fn with_drain_timeout(mut self, t: Duration) -> Self {
        self.drain_timeout = t;
        self
    }
    /// Set the reactor tick.
    #[must_use]
    pub fn with_tick(mut self, t: Duration) -> Self {
        self.tick = t;
        self
    }
    /// Add a tenant.
    #[must_use]
    pub fn with_tenant(mut self, spec: TenantSpec) -> Self {
        self.tenants.push(spec);
        self
    }
}

/// Map write backlog and accept pressure onto the serving core's brownout
/// ladder. Either signal alone can climb the ladder; the higher rung wins.
///
/// * backlog ≥ 25 % of the limit → [`BrownoutLevel::ShedBestEffort`],
///   ≥ 50 % → [`BrownoutLevel::CapBatch`], ≥ 100 % →
///   [`BrownoutLevel::RejectUncached`] (net: only Interactive admitted).
/// * connections ≥ 75 % of the cap → `ShedBestEffort`, ≥ 90 % →
///   `CapBatch`; *at* the cap new connections are refused outright at
///   accept, so the ladder never needs `Drain` from this signal.
///
/// A zero limit disables that signal (the defaults-off posture).
#[must_use]
pub fn pressure_level(backlog: usize, backlog_limit: usize, conns: usize, max_conns: usize) -> BrownoutLevel {
    let from_backlog = if backlog_limit == 0 {
        BrownoutLevel::Normal
    } else if backlog >= backlog_limit {
        BrownoutLevel::RejectUncached
    } else if backlog * 2 >= backlog_limit {
        BrownoutLevel::CapBatch
    } else if backlog * 4 >= backlog_limit {
        BrownoutLevel::ShedBestEffort
    } else {
        BrownoutLevel::Normal
    };
    let from_conns = if max_conns == 0 {
        BrownoutLevel::Normal
    } else if conns * 10 >= max_conns * 9 {
        BrownoutLevel::CapBatch
    } else if conns * 4 >= max_conns * 3 {
        BrownoutLevel::ShedBestEffort
    } else {
        BrownoutLevel::Normal
    };
    from_backlog.max(from_conns)
}

/// Which classes the *net* layer sheds at each brownout rung. The net
/// layer has no batches to cap and no program cache to consult, so the
/// middle rungs translate to the analogous pressure relief — shedding the
/// next class down: `ShedBestEffort` sheds best-effort, `CapBatch` and
/// `RejectUncached` shed everything but interactive, `Drain` sheds all.
#[must_use]
pub fn net_sheds(level: BrownoutLevel, class: Priority) -> bool {
    match level {
        BrownoutLevel::Normal => false,
        BrownoutLevel::ShedBestEffort => class == Priority::BestEffort,
        BrownoutLevel::CapBatch | BrownoutLevel::RejectUncached => class != Priority::Interactive,
        BrownoutLevel::Drain => true,
    }
}

/// A running front-end: one reactor thread serving one listener.
///
/// Dropping the handle (or calling [`shutdown`](NetServer::shutdown))
/// drains gracefully: admitted work keeps its replies until
/// [`drain_timeout`](NetConfig::drain_timeout), then stragglers are
/// force-closed and their tickets tombstone. The reactor thread is always
/// joined — a completed shutdown leaves zero connection threads.
#[derive(Debug)]
pub struct NetServer {
    addr: SocketAddr,
    shared: Arc<ReactorShared>,
    handle: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Bind `config.addr` and start the reactor thread over `server`.
    ///
    /// # Errors
    ///
    /// Propagates bind/configure socket errors.
    pub fn start(server: Arc<Server>, config: NetConfig) -> io::Result<NetServer> {
        let listener = TcpListener::bind(config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ReactorShared {
            counters: stats::NetCounters::default(),
            shutdown: AtomicBool::new(false),
        });
        // Tenant stats handles must exist before the reactor starts so the
        // serving core's snapshot lists every tenant from the first tick.
        let handles = config.tenants.iter().map(|t| server.register_tenant(&t.name)).collect();
        let reactor_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("npcgra-net-reactor".to_string())
            .spawn(move || {
                let mut tenants = TenantRegistry::new(&config.tenants, handles, std::time::Instant::now());
                reactor::run(&reactor_shared, &listener, &server, &config, &mut tenants);
            })
            .map_err(io::Error::other)?;
        Ok(NetServer {
            addr,
            shared,
            handle: Some(handle),
        })
    }

    /// The bound listen address (the real port when `addr` asked for 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A live snapshot of the front-end counters.
    #[must_use]
    pub fn stats(&self) -> NetStats {
        self.shared.counters.snapshot()
    }

    /// Drain and stop: no new connections, admitted work keeps its
    /// replies until the drain bound, then the reactor thread is joined.
    /// Returns the final counters (with `active_conns == 0`).
    #[must_use]
    pub fn shutdown(mut self) -> NetStats {
        self.stop();
        self.shared.counters.snapshot()
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_off_or_unbound() {
        let cfg = NetConfig::default();
        assert_eq!(cfg.max_conns, 0);
        assert_eq!(cfg.read_timeout, None);
        assert_eq!(cfg.write_timeout, None);
        assert_eq!(cfg.idle_timeout, None);
        assert_eq!(cfg.write_backlog_limit, 0);
        assert!(cfg.tenants.is_empty());
    }

    #[test]
    fn pressure_ladder_monotone_and_off_by_default() {
        // Both signals disabled: always Normal.
        assert_eq!(pressure_level(usize::MAX / 2, 0, usize::MAX / 2, 0), BrownoutLevel::Normal);
        // Backlog signal.
        assert_eq!(pressure_level(0, 1000, 0, 0), BrownoutLevel::Normal);
        assert_eq!(pressure_level(250, 1000, 0, 0), BrownoutLevel::ShedBestEffort);
        assert_eq!(pressure_level(500, 1000, 0, 0), BrownoutLevel::CapBatch);
        assert_eq!(pressure_level(1000, 1000, 0, 0), BrownoutLevel::RejectUncached);
        // Connection signal.
        assert_eq!(pressure_level(0, 0, 74, 100), BrownoutLevel::Normal);
        assert_eq!(pressure_level(0, 0, 75, 100), BrownoutLevel::ShedBestEffort);
        assert_eq!(pressure_level(0, 0, 90, 100), BrownoutLevel::CapBatch);
        // Higher rung wins.
        assert_eq!(pressure_level(1000, 1000, 75, 100), BrownoutLevel::RejectUncached);
    }

    #[test]
    fn net_shedding_is_lowest_class_first() {
        use Priority::*;
        for class in [Interactive, Batch, BestEffort] {
            assert!(!net_sheds(BrownoutLevel::Normal, class));
            assert!(net_sheds(BrownoutLevel::Drain, class));
        }
        assert!(!net_sheds(BrownoutLevel::ShedBestEffort, Interactive));
        assert!(!net_sheds(BrownoutLevel::ShedBestEffort, Batch));
        assert!(net_sheds(BrownoutLevel::ShedBestEffort, BestEffort));
        assert!(!net_sheds(BrownoutLevel::CapBatch, Interactive));
        assert!(net_sheds(BrownoutLevel::CapBatch, Batch));
        assert!(net_sheds(BrownoutLevel::RejectUncached, BestEffort));
    }
}
