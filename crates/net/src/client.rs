//! A small blocking client for the wire protocol.
//!
//! This is the load-generation and test side of the crate: benches and
//! chaos soaks open one [`NetClient`] per simulated user connection,
//! submit requests, and redeem replies by tag. The client is also where
//! the [`NetChaos`](crate::chaos::NetChaos) injector plugs in — chaos is
//! an *attacker-side* behaviour (corrupt frames, half-written frames,
//! stalled reads, mid-flight hangups), and the server under test must
//! survive all of it.

use std::collections::HashMap;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use npcgra_nn::{Tensor, Word};
use npcgra_serve::Priority;

use crate::chaos::{ChaosAction, NetChaos};
use crate::frame::{encode_frame, FrameDecoder, WireError, WireFrame, WireReply, WireRequest};

/// What a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (includes chaos-injected resets).
    Io(io::Error),
    /// The server's byte stream failed to decode (should never happen
    /// against a healthy server — this is a test assertion surface).
    Wire(WireError),
    /// The server sent a fatal connection-level error notice.
    ServerClosed {
        /// The notice's [`code`](crate::frame::code) constant.
        code: u8,
        /// The notice's message.
        message: String,
    },
    /// No reply arrived within the wait bound.
    Timeout,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Wire(e) => write!(f, "server stream malformed: {e}"),
            ClientError::ServerClosed { code, message } => {
                write!(f, "server closed the connection (code {code}): {message}")
            }
            ClientError::Timeout => write!(f, "no reply in time"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A keyed request remembered until its reply lands, so a
/// [`reconnect`](NetClient::reconnect) can re-send it verbatim — same
/// tag, same idempotency key — and the journaled server collapses the
/// retry into the original execution.
struct Resumable {
    idem: u64,
    model: u32,
    class: Priority,
    deadline: Option<Duration>,
    shape: (u16, u16, u16),
    words: Vec<Word>,
}

/// One blocking connection to a front-end.
pub struct NetClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    token: Vec<u8>,
    next_tag: u64,
    chaos: Option<NetChaos>,
    /// Replies that arrived while waiting for a different tag.
    pending: HashMap<u64, WireReply>,
    /// Keyed requests still owed a reply, by tag (resume set).
    inflight: HashMap<u64, Resumable>,
    /// Chaos `StallRead`: don't read the socket before this instant.
    read_gate: Option<Instant>,
    /// A chaos reset hard-closed the stream; all further calls fail.
    dead: bool,
}

impl NetClient {
    /// Connect and present `token` on every request.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from connect/configure.
    pub fn connect(addr: SocketAddr, token: &[u8]) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(NetClient {
            stream,
            decoder: FrameDecoder::new(1 << 24),
            token: token.to_vec(),
            next_tag: 1,
            chaos: None,
            pending: HashMap::new(),
            inflight: HashMap::new(),
            read_gate: None,
            dead: false,
        })
    }

    /// Attach a chaos injector to this connection's write path.
    #[must_use]
    pub fn with_chaos(mut self, chaos: NetChaos) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Submit one request; returns the correlation tag to redeem with
    /// [`recv_tag`](Self::recv_tag). With chaos attached the frame may be
    /// corrupted, split, stalled or the connection reset — exactly the
    /// point.
    ///
    /// # Errors
    ///
    /// Socket errors; a chaos reset surfaces as `ConnectionReset`.
    pub fn submit(&mut self, model: u32, input: &Tensor, class: Priority, deadline: Option<Duration>) -> io::Result<u64> {
        self.submit_idem(model, input, class, deadline, 0)
    }

    /// Submit one request under a client idempotency key (0 = none).
    ///
    /// A non-zero key does two things: the journaled server collapses any
    /// retry of the key into one execution, and this client remembers the
    /// request until its reply lands so [`reconnect`](Self::reconnect)
    /// can re-send it — same tag, same key — after a connection or server
    /// loss.
    ///
    /// # Errors
    ///
    /// Socket errors; a chaos reset surfaces as `ConnectionReset`.
    pub fn submit_idem(
        &mut self,
        model: u32,
        input: &Tensor,
        class: Priority,
        deadline: Option<Duration>,
        idem: u64,
    ) -> io::Result<u64> {
        let tag = self.next_tag;
        self.next_tag += 1;
        let (c, h, w) = input.shape();
        let shape = (c as u16, h as u16, w as u16);
        let words = input.as_slice().to_vec();
        if idem != 0 {
            self.inflight.insert(
                tag,
                Resumable {
                    idem,
                    model,
                    class,
                    deadline,
                    shape,
                    words: words.clone(),
                },
            );
        }
        let frame = WireFrame::Request(WireRequest {
            tag,
            idem,
            token: self.token.clone(),
            class: class.index() as u8,
            deadline_ms: deadline.map_or(0, |d| u32::try_from(d.as_millis()).unwrap_or(u32::MAX)),
            model,
            shape,
            words,
        });
        self.send_frame(&frame)?;
        Ok(tag)
    }

    /// Replace the dead stream with a fresh connection and re-send every
    /// keyed request still owed a reply — same tag, same idempotency key,
    /// so the journaled server deduplicates, parks, or re-admits each one
    /// without double-executing. Parked replies for other tags survive;
    /// the decoder and chaos read-gate reset with the stream. Returns how
    /// many requests were resumed.
    ///
    /// # Errors
    ///
    /// Socket errors from connect/configure/re-send. On a re-send error
    /// the remaining requests stay in the resume set for the next try.
    pub fn reconnect(&mut self, addr: SocketAddr) -> io::Result<usize> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        self.stream = stream;
        self.decoder = FrameDecoder::new(1 << 24);
        self.read_gate = None;
        self.dead = false;
        let mut tags: Vec<u64> = self.inflight.keys().copied().collect();
        tags.sort_unstable();
        for tag in &tags {
            let r = &self.inflight[tag];
            let frame = WireFrame::Request(WireRequest {
                tag: *tag,
                idem: r.idem,
                token: self.token.clone(),
                class: r.class.index() as u8,
                deadline_ms: r.deadline.map_or(0, |d| u32::try_from(d.as_millis()).unwrap_or(u32::MAX)),
                model: r.model,
                shape: r.shape,
                words: r.words.clone(),
            });
            let mut bytes = Vec::new();
            encode_frame(&frame, &mut bytes);
            // Resume writes bypass chaos: the injector models a hostile
            // first attempt, and a mangled resume would just loop forever.
            self.stream.write_all(&bytes)?;
        }
        Ok(tags.len())
    }

    /// Encode and write one frame, applying chaos if attached.
    ///
    /// # Errors
    ///
    /// Socket errors; a chaos reset surfaces as `ConnectionReset`.
    pub fn send_frame(&mut self, frame: &WireFrame) -> io::Result<()> {
        let mut bytes = Vec::new();
        encode_frame(frame, &mut bytes);
        self.send_raw_chaos(bytes)
    }

    /// Write raw bytes verbatim (malformed-frame tests).
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.check_alive()?;
        self.stream.write_all(bytes)
    }

    fn check_alive(&self) -> io::Result<()> {
        if self.dead {
            return Err(io::Error::new(ErrorKind::ConnectionReset, "chaos reset this connection"));
        }
        Ok(())
    }

    fn send_raw_chaos(&mut self, mut bytes: Vec<u8>) -> io::Result<()> {
        self.check_alive()?;
        let action = match &mut self.chaos {
            Some(c) => c.next_action(),
            None => ChaosAction::None,
        };
        match action {
            ChaosAction::None => self.stream.write_all(&bytes),
            ChaosAction::CorruptBit { offset, bit } => {
                let at = (offset % bytes.len() as u64) as usize;
                bytes[at] ^= 1 << bit;
                self.stream.write_all(&bytes)
            }
            ChaosAction::PartialWrite { prefix, stall } => {
                let split = 1 + (prefix % (bytes.len().max(2) as u64 - 1)) as usize;
                self.stream.write_all(&bytes[..split])?;
                self.stream.flush()?;
                std::thread::sleep(stall);
                self.stream.write_all(&bytes[split..])
            }
            ChaosAction::StallRead { stall } => {
                self.stream.write_all(&bytes)?;
                self.read_gate = Some(Instant::now() + stall);
                Ok(())
            }
            ChaosAction::Reset { prefix } => {
                // Write a truncated prefix, then hang up mid-frame: the
                // server sees EOF with a half-frame buffered and in-flight
                // work to tombstone.
                let cut = (prefix % bytes.len() as u64) as usize;
                if cut > 0 {
                    let _ = self.stream.write_all(&bytes[..cut]);
                }
                let _ = self.stream.shutdown(Shutdown::Both);
                self.dead = true;
                Err(io::Error::new(ErrorKind::ConnectionReset, "chaos reset this connection"))
            }
        }
    }

    /// Announce a graceful close.
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn bye(&mut self) -> io::Result<()> {
        self.send_frame(&WireFrame::Bye)
    }

    /// Hard-close the connection (mid-flight-disconnect tests).
    pub fn hangup(&mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
        self.dead = true;
    }

    /// Wait (up to `timeout`) for the reply carrying `tag`. Replies to
    /// other tags arriving first are parked and redeemable later — the
    /// protocol allows out-of-order completion.
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] when nothing arrived in time, otherwise
    /// the socket/wire/server failure.
    pub fn recv_tag(&mut self, tag: u64, timeout: Duration) -> Result<WireReply, ClientError> {
        if let Some(r) = self.pending.remove(&tag) {
            self.inflight.remove(&tag);
            return Ok(r);
        }
        let deadline = Instant::now() + timeout;
        loop {
            match self.recv_frame_until(deadline)? {
                WireFrame::Reply(r) => {
                    // The reply settles the tag: it leaves the resume set
                    // whether redeemed now or parked for later.
                    self.inflight.remove(&r.tag);
                    if r.tag == tag {
                        return Ok(r);
                    }
                    self.pending.insert(r.tag, r);
                }
                WireFrame::Error { code, message } => {
                    return Err(ClientError::ServerClosed { code, message });
                }
                WireFrame::Bye => {
                    // Server is draining; replies for admitted work may
                    // still follow, so keep reading.
                }
                WireFrame::Request(_) => {
                    return Err(ClientError::Wire(WireError::BadKind {
                        got: crate::frame::KIND_REQUEST,
                    }));
                }
            }
        }
    }

    /// Read the next frame of any kind before `deadline`.
    fn recv_frame_until(&mut self, deadline: Instant) -> Result<WireFrame, ClientError> {
        self.check_alive()?;
        if let Some(gate) = self.read_gate.take() {
            // Chaos stalled-read: sit on the socket without draining it.
            let now = Instant::now();
            if gate > now {
                std::thread::sleep(gate - now);
            }
        }
        let mut buf = [0u8; 4096];
        loop {
            if let Some(frame) = self.decoder.next().map_err(ClientError::Wire)? {
                return Ok(frame);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ClientError::Timeout);
            }
            self.stream.set_read_timeout(Some(deadline - now))?;
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    return Err(ClientError::Io(io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "server closed the stream",
                    )))
                }
                Ok(n) => self.decoder.push(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Err(ClientError::Timeout)
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
    }

    /// Submit and wait for that request's reply (the simple RPC shape).
    ///
    /// # Errors
    ///
    /// As [`submit`](Self::submit) and [`recv_tag`](Self::recv_tag).
    pub fn call(
        &mut self,
        model: u32,
        input: &Tensor,
        class: Priority,
        deadline: Option<Duration>,
        wait: Duration,
    ) -> Result<WireReply, ClientError> {
        let tag = self.submit(model, input, class, deadline)?;
        self.recv_tag(tag, wait)
    }
}
