//! Per-connection state machine.
//!
//! One [`Conn`] owns one non-blocking [`TcpStream`] and runs the same
//! cycle every reactor tick: drain readable bytes into the frame decoder,
//! handle complete frames (tenant gates → serving-core submit), poll
//! in-flight tickets without blocking, enforce the read/write/idle
//! timeouts, and flush the write buffer. Nothing in here blocks and
//! nothing panics on peer behaviour: every malformed input becomes a
//! typed [`WireError`](crate::frame::WireError) notice followed by a
//! close, and every abandoned in-flight request resolves through the
//! serving core's reply-slot tombstones (dropping the [`Ticket`] *is*
//! the cleanup — a late reply is counted, not leaked).
//!
//! Lifecycle:
//!
//! ```text
//! Running ──Bye/server drain──▶ Draining ──inflight empty──▶ Closing ──flushed──▶ gone
//!    │
//!    └─WireError / timeout eviction──────────────────────────▶ Closing
//! ```
//!
//! `Draining` stops accepting new requests but still delivers replies for
//! work already admitted; `Closing` only flushes buffered output (the
//! typed error notice, usually) and abandons in-flight tickets to their
//! tombstones.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use npcgra_nn::Tensor;
use npcgra_serve::{Priority, ServeError, Server, Ticket};

use crate::frame::{code, encode_frame, FrameDecoder, WireFrame, WireReply, WireRequest, WireResponse};
use crate::stats::NetCounters;
use crate::tenant::{TenantDenied, TenantIdx, TenantRegistry};
use crate::{net_sheds, NetConfig};

/// Why a connection left the reactor (for stats and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// The peer closed or reset the stream.
    Peer,
    /// The stream produced a fatal I/O error.
    Io,
    /// The peer broke the wire grammar; a typed notice was sent.
    Malformed,
    /// Evicted: a frame sat half-received past the read timeout.
    SlowLoris,
    /// Evicted: the peer stopped draining replies past the write timeout.
    WriteStall,
    /// Evicted: no traffic for the idle timeout.
    Idle,
    /// Ordinary end of life: all buffered output flushed after a drain.
    Done,
    /// The reactor force-closed it (drain deadline at shutdown).
    Kicked,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    Running,
    Draining,
    Closing,
}

/// One admitted request waiting for its reply.
struct Inflight {
    tag: u64,
    request_id: u64,
    ticket: Ticket,
    tenant: Option<TenantIdx>,
}

/// Everything a connection needs from the reactor for one tick.
pub(crate) struct Ctx<'a> {
    pub(crate) server: &'a Server,
    pub(crate) tenants: &'a mut TenantRegistry,
    pub(crate) counters: &'a NetCounters,
    pub(crate) cfg: &'a NetConfig,
    /// Net-level backpressure rung in force this tick.
    pub(crate) level: npcgra_serve::BrownoutLevel,
    pub(crate) now: Instant,
}

/// The per-connection state machine; see the module docs.
pub(crate) struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    out: Vec<u8>,
    out_at: usize,
    inflight: Vec<Inflight>,
    state: ConnState,
    /// Last moment the peer made observable progress (bytes either way).
    last_activity: Instant,
    /// When the currently half-received frame started arriving.
    mid_frame_since: Option<Instant>,
    /// Last moment a write drained at least one byte while output waited.
    last_write_progress: Instant,
    /// Tenant this connection last authenticated as (for eviction stats).
    tenant_hint: Option<TenantIdx>,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, max_payload: u32, now: Instant) -> Self {
        Conn {
            stream,
            decoder: FrameDecoder::new(max_payload),
            out: Vec::new(),
            out_at: 0,
            inflight: Vec::new(),
            state: ConnState::Running,
            last_activity: now,
            mid_frame_since: None,
            last_write_progress: now,
            tenant_hint: None,
        }
    }

    /// Unflushed output bytes (the reactor's backpressure signal).
    pub(crate) fn backlog(&self) -> usize {
        self.out.len() - self.out_at
    }

    /// Move to `Draining`: no new requests, finish what's admitted. Sends
    /// a Bye so a well-behaved client stops submitting.
    pub(crate) fn begin_drain(&mut self) {
        if self.state == ConnState::Running {
            encode_frame(&WireFrame::Bye, &mut self.out);
            self.state = ConnState::Draining;
        }
    }

    /// Abandon the connection now: release tenant slots and drop tickets
    /// (their reply slots tombstone, so late replies are counted, never
    /// leaked). Must be called exactly once, when the reactor removes the
    /// connection.
    pub(crate) fn teardown(&mut self, ctx: &mut Ctx<'_>, reason: CloseReason) {
        if !self.inflight.is_empty() && reason != CloseReason::Done {
            ctx.counters.midflight_disconnects.add(1);
            ctx.counters.tombstoned_inflight.add(self.inflight.len() as u64);
        }
        for f in self.inflight.drain(..) {
            if let Some(t) = f.tenant {
                ctx.tenants.release(t);
            }
            drop(f.ticket); // tombstones the reply slot
        }
        let c = ctx.counters;
        match reason {
            CloseReason::Peer => c.peer_closed.add(1),
            CloseReason::Io => c.io_errors.add(1),
            CloseReason::Malformed => {}
            CloseReason::SlowLoris => {
                c.evicted_slow_loris.add(1);
                if let Some(t) = self.tenant_hint {
                    ctx.tenants.stats(t).note_evicted_slow_loris();
                }
            }
            CloseReason::WriteStall => c.evicted_write_stall.add(1),
            CloseReason::Idle => c.evicted_idle.add(1),
            CloseReason::Done => {}
            CloseReason::Kicked => c.kicked.add(1),
        }
        c.closed.add(1);
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }

    /// Run one tick. `Some(reason)` means the reactor must tear the
    /// connection down and drop it.
    pub(crate) fn poll(&mut self, ctx: &mut Ctx<'_>) -> Option<CloseReason> {
        if let Some(r) = self.read_and_handle(ctx) {
            return Some(r);
        }
        self.poll_tickets(ctx);
        if let Some(r) = self.check_timeouts(ctx) {
            return Some(r);
        }
        if let Some(r) = self.flush(ctx) {
            return Some(r);
        }
        // Draining and nothing left to do → flush-and-go.
        if self.state != ConnState::Running && self.inflight.is_empty() && self.backlog() == 0 {
            return Some(CloseReason::Done);
        }
        None
    }

    fn read_and_handle(&mut self, ctx: &mut Ctx<'_>) -> Option<CloseReason> {
        if self.state == ConnState::Closing {
            return None; // output-only from here
        }
        let mut buf = [0u8; 4096];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    // EOF. A clean close with nothing half-sent and nothing
                    // owed is just the peer being done.
                    return Some(CloseReason::Peer);
                }
                Ok(n) => {
                    ctx.counters.bytes_rx.add(n as u64);
                    self.last_activity = ctx.now;
                    self.decoder.push(&buf[..n]);
                    if let Some(r) = self.drain_frames(ctx) {
                        return Some(r);
                    }
                    if self.state == ConnState::Closing {
                        return None;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == ErrorKind::ConnectionReset || e.kind() == ErrorKind::ConnectionAborted => {
                    ctx.counters.peer_resets.add(1);
                    return Some(CloseReason::Peer);
                }
                Err(_) => return Some(CloseReason::Io),
            }
        }
        // Track how long the current half-frame has been pending; the
        // clock starts when the first byte of an incomplete frame lands.
        self.mid_frame_since = if self.decoder.mid_frame() {
            self.mid_frame_since.or(Some(ctx.now))
        } else {
            None
        };
        None
    }

    fn drain_frames(&mut self, ctx: &mut Ctx<'_>) -> Option<CloseReason> {
        loop {
            match self.decoder.next() {
                Ok(Some(frame)) => {
                    ctx.counters.frames_rx.add(1);
                    self.handle_frame(ctx, frame);
                    if self.state == ConnState::Closing {
                        return None; // flush the notice, then die
                    }
                }
                Ok(None) => return None,
                Err(e) => {
                    // Typed error, then close: with the length prefix
                    // untrusted there is no boundary to resync on.
                    ctx.counters.rejected_malformed.add(1);
                    encode_frame(
                        &WireFrame::Error {
                            code: code::MALFORMED,
                            message: e.to_string(),
                        },
                        &mut self.out,
                    );
                    ctx.counters.frames_tx.add(1);
                    self.state = ConnState::Closing;
                    return None;
                }
            }
        }
    }

    fn handle_frame(&mut self, ctx: &mut Ctx<'_>, frame: WireFrame) {
        match frame {
            WireFrame::Request(rq) => {
                if self.state != ConnState::Running {
                    self.reject(ctx, rq.tag, code::DRAINING, "server draining");
                    ctx.counters.rejected_draining.add(1);
                    return;
                }
                self.handle_request(ctx, rq);
            }
            WireFrame::Bye => {
                // Client is done submitting; deliver what's in flight,
                // then close from our side.
                self.state = ConnState::Draining;
            }
            WireFrame::Reply(_) | WireFrame::Error { .. } => {
                // Only servers speak these; a client sending one is a
                // protocol violation.
                ctx.counters.rejected_malformed.add(1);
                encode_frame(
                    &WireFrame::Error {
                        code: code::MALFORMED,
                        message: "client sent a server-only frame kind".to_string(),
                    },
                    &mut self.out,
                );
                ctx.counters.frames_tx.add(1);
                self.state = ConnState::Closing;
            }
        }
    }

    fn handle_request(&mut self, ctx: &mut Ctx<'_>, rq: WireRequest) {
        ctx.counters.requests_rx.add(1);
        // 1. Auth (skipped entirely when no tenants are configured).
        let tenant = if ctx.tenants.is_open() {
            None
        } else {
            match ctx.tenants.lookup(&rq.token) {
                Some(idx) => {
                    self.tenant_hint = Some(idx);
                    Some(idx)
                }
                None => {
                    ctx.counters.rejected_bad_token.add(1);
                    self.reject(ctx, rq.tag, code::BAD_TOKEN, "unknown tenant token");
                    return;
                }
            }
        };
        let class = Priority::from_index(rq.class as usize);
        // 2. Net backpressure: write-stalled sockets and accept pressure
        //    shed here, before a doomed request can consume queue capacity
        //    or a rate token.
        if net_sheds(ctx.level, class) {
            ctx.counters.rejected_backpressure.add(1);
            if let Some(t) = tenant {
                ctx.tenants.stats(t).note_rejected();
            }
            self.reject(
                ctx,
                rq.tag,
                code::BACKPRESSURE,
                &format!("net backpressure ({:?}) shed {class} request", ctx.level),
            );
            return;
        }
        // 3. Tenant rate + quota.
        if let Some(t) = tenant {
            match ctx.tenants.admit(t, ctx.now) {
                Ok(()) => {}
                Err(TenantDenied::RateLimited) => {
                    ctx.counters.rejected_rate_limited.add(1);
                    self.reject(ctx, rq.tag, code::RATE_LIMITED, "tenant over sustained rate");
                    return;
                }
                Err(TenantDenied::QuotaExceeded) => {
                    ctx.counters.rejected_quota.add(1);
                    self.reject(ctx, rq.tag, code::QUOTA, "tenant in-flight quota full");
                    return;
                }
                Err(TenantDenied::BadToken) => unreachable!("token resolved above"),
            }
        }
        // 4. Serving-core admission. The decoder guaranteed word count ==
        //    shape product, so `tensor()` cannot fail here.
        let Some(input) = rq.tensor() else {
            if let Some(t) = tenant {
                ctx.tenants.release(t);
            }
            self.reject(ctx, rq.tag, code::MALFORMED, "shape/word-count mismatch");
            return;
        };
        let deadline = (rq.deadline_ms > 0).then(|| Duration::from_millis(u64::from(rq.deadline_ms)));
        let model = npcgra_serve::ModelId::from_index(rq.model as usize);
        // The idempotency key rides through verbatim: on a journaled
        // server a retried key is deduplicated or parked on the in-flight
        // owner; on a journal-less server it is ignored entirely.
        match ctx.server.submit_idem(model, input, deadline, class, rq.idem) {
            Ok(ticket) => {
                if let Some(t) = tenant {
                    ctx.tenants.stats(t).note_admitted();
                }
                ctx.counters.admitted.add(1);
                self.inflight.push(Inflight {
                    tag: rq.tag,
                    request_id: ticket.request_id(),
                    ticket,
                    tenant,
                });
            }
            Err(e) => {
                if let Some(t) = tenant {
                    ctx.tenants.release(t);
                    ctx.tenants.stats(t).note_rejected();
                }
                ctx.counters.rejected_serve.add(1);
                self.send_reply(
                    ctx,
                    WireReply {
                        tag: rq.tag,
                        request_id: 0,
                        result: Err((code::SERVE, e.to_string())),
                    },
                );
            }
        }
    }

    fn reject(&mut self, ctx: &mut Ctx<'_>, tag: u64, code: u8, message: &str) {
        self.send_reply(
            ctx,
            WireReply {
                tag,
                request_id: 0,
                result: Err((code, message.to_string())),
            },
        );
    }

    fn send_reply(&mut self, ctx: &mut Ctx<'_>, reply: WireReply) {
        encode_frame(&WireFrame::Reply(reply), &mut self.out);
        ctx.counters.frames_tx.add(1);
        ctx.counters.replies_tx.add(1);
    }

    /// Resolve whatever tickets are ready, without blocking: a zero
    /// timeout turns [`Ticket::wait_timeout`] into a try-take, and
    /// [`ServeError::ReplyTimeout`] is the "still pending" answer.
    fn poll_tickets(&mut self, ctx: &mut Ctx<'_>) {
        let mut i = 0;
        while i < self.inflight.len() {
            let outcome = self.inflight[i].ticket.wait_timeout(Duration::ZERO);
            if matches!(outcome, Err(ServeError::ReplyTimeout { .. })) {
                i += 1;
                continue;
            }
            let f = self.inflight.swap_remove(i);
            if let Some(t) = f.tenant {
                ctx.tenants.release(t);
            }
            let result = match outcome {
                Ok(resp) => Ok(WireResponse {
                    batch: resp.batch_size.min(u16::MAX as usize) as u16,
                    worker: resp.worker.min(u16::MAX as usize) as u16,
                    latency_us: u64::try_from(resp.latency.as_micros()).unwrap_or(u64::MAX),
                    shape: shape_u16(&resp.output),
                    words: resp.output.as_slice().to_vec(),
                }),
                Err(e) => Err((code::SERVE, e.for_request(f.request_id).to_string())),
            };
            self.send_reply(
                ctx,
                WireReply {
                    tag: f.tag,
                    request_id: f.request_id,
                    result,
                },
            );
        }
    }

    fn check_timeouts(&mut self, ctx: &mut Ctx<'_>) -> Option<CloseReason> {
        let cfg = ctx.cfg;
        if let (Some(limit), Some(since)) = (cfg.read_timeout, self.mid_frame_since) {
            if ctx.now.saturating_duration_since(since) > limit {
                return Some(CloseReason::SlowLoris);
            }
        }
        if let Some(limit) = cfg.write_timeout {
            if self.backlog() > 0 && ctx.now.saturating_duration_since(self.last_write_progress) > limit {
                return Some(CloseReason::WriteStall);
            }
        }
        if let Some(limit) = cfg.idle_timeout {
            if self.state == ConnState::Running
                && self.inflight.is_empty()
                && self.backlog() == 0
                && !self.decoder.mid_frame()
                && ctx.now.saturating_duration_since(self.last_activity) > limit
            {
                return Some(CloseReason::Idle);
            }
        }
        None
    }

    fn flush(&mut self, ctx: &mut Ctx<'_>) -> Option<CloseReason> {
        while self.out_at < self.out.len() {
            match self.stream.write(&self.out[self.out_at..]) {
                Ok(0) => return Some(CloseReason::Peer),
                Ok(n) => {
                    ctx.counters.bytes_tx.add(n as u64);
                    self.out_at += n;
                    self.last_write_progress = ctx.now;
                    self.last_activity = ctx.now;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == ErrorKind::ConnectionReset || e.kind() == ErrorKind::BrokenPipe => {
                    ctx.counters.peer_resets.add(1);
                    return Some(CloseReason::Peer);
                }
                Err(_) => return Some(CloseReason::Io),
            }
        }
        if self.out_at == self.out.len() {
            self.out.clear();
            self.out_at = 0;
            if self.state == ConnState::Closing {
                return Some(CloseReason::Malformed);
            }
        } else if self.out_at > 0 && self.out_at >= self.out.len() / 2 {
            self.out.drain(..self.out_at);
            self.out_at = 0;
        }
        None
    }
}

fn shape_u16(t: &Tensor) -> (u16, u16, u16) {
    let (c, h, w) = t.shape();
    (
        c.min(u16::MAX as usize) as u16,
        h.min(u16::MAX as usize) as u16,
        w.min(u16::MAX as usize) as u16,
    )
}
