//! Per-tenant authentication, token-bucket rate limiting and in-flight
//! quotas.
//!
//! A tenant is a named principal with an opaque auth token; every wire
//! request carries a token, and the [`TenantRegistry`] decides at frame
//! time whether the request may even reach the serving core's admission:
//!
//! 1. **Auth** — the token must match a registered tenant (unless the
//!    registry is empty, in which case the front-end runs open, the
//!    defaults-off posture).
//! 2. **Rate** — a token bucket of `rate_per_sec` tokens with `burst`
//!    capacity; an empty bucket rejects with
//!    [`code::RATE_LIMITED`](crate::frame::code::RATE_LIMITED). Zero rate
//!    means unlimited.
//! 3. **Quota** — at most `max_inflight` unresolved requests per tenant;
//!    each resolution (reply, shed, or disconnect tombstone) releases a
//!    slot. Zero means unbounded.
//!
//! These gates run *before* the serving core's priority/brownout ladder:
//! a tenant over its budget is the tenant's problem and must not consume
//! queue capacity that well-behaved tenants are entitled to. Outcomes are
//! mirrored into the serving core's per-tenant counters
//! ([`npcgra_serve::TenantHandle`]) so one [`StatsSnapshot`] tells the
//! whole story.
//!
//! [`StatsSnapshot`]: npcgra_serve::StatsSnapshot

use std::time::Instant;

use npcgra_serve::TenantHandle;

/// Static description of one tenant, part of [`NetConfig`](crate::NetConfig).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant name (stats key).
    pub name: String,
    /// Opaque auth token the tenant presents on every request (≤ 255 bytes).
    pub token: Vec<u8>,
    /// Sustained admission rate in requests/second; `0.0` = unlimited.
    pub rate_per_sec: f64,
    /// Token-bucket burst capacity (requests admitted back-to-back from a
    /// full bucket). Ignored when `rate_per_sec` is 0.
    pub burst: u32,
    /// Maximum unresolved requests in flight; `0` = unbounded.
    pub max_inflight: u32,
}

impl TenantSpec {
    /// An unlimited tenant: authenticated but never rate-limited or
    /// quota-bound.
    #[must_use]
    pub fn open(name: &str, token: &[u8]) -> Self {
        TenantSpec {
            name: name.to_string(),
            token: token.to_vec(),
            rate_per_sec: 0.0,
            burst: 0,
            max_inflight: 0,
        }
    }

    /// Set the sustained rate and burst.
    #[must_use]
    pub fn with_rate(mut self, per_sec: f64, burst: u32) -> Self {
        self.rate_per_sec = per_sec;
        self.burst = burst;
        self
    }

    /// Set the in-flight quota.
    #[must_use]
    pub fn with_max_inflight(mut self, max: u32) -> Self {
        self.max_inflight = max;
        self
    }
}

/// Why a tenant gate refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantDenied {
    /// The token matched no registered tenant.
    BadToken,
    /// The tenant's token bucket was empty.
    RateLimited,
    /// The tenant's in-flight quota was full.
    QuotaExceeded,
}

/// A classic token bucket: `rate` tokens/second refill, capped at `burst`.
#[derive(Debug)]
struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    refilled: Instant,
}

impl TokenBucket {
    fn new(rate: f64, burst: u32, now: Instant) -> Self {
        let burst = f64::from(burst.max(1));
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            refilled: now,
        }
    }

    fn try_take(&mut self, now: Instant) -> bool {
        let dt = now.saturating_duration_since(self.refilled).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        self.refilled = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Runtime state for one tenant: spec, bucket, in-flight count and the
/// serving core's stats handle.
#[derive(Debug)]
pub(crate) struct TenantGate {
    pub(crate) spec: TenantSpec,
    bucket: Option<TokenBucket>,
    inflight: u32,
    pub(crate) stats: TenantHandle,
}

/// Index of a tenant inside the registry (stable for the front-end's life).
pub(crate) type TenantIdx = usize;

/// All tenants the front-end knows, keyed by token at frame time.
///
/// Owned by the single reactor thread, so interior mutability is not
/// needed; the shared, lock-free view lives in the serving core's
/// per-tenant counters.
#[derive(Debug, Default)]
pub(crate) struct TenantRegistry {
    gates: Vec<TenantGate>,
}

impl TenantRegistry {
    pub(crate) fn new(specs: &[TenantSpec], handles: Vec<TenantHandle>, now: Instant) -> Self {
        assert_eq!(specs.len(), handles.len());
        let gates = specs
            .iter()
            .zip(handles)
            .map(|(spec, stats)| TenantGate {
                bucket: (spec.rate_per_sec > 0.0).then(|| TokenBucket::new(spec.rate_per_sec, spec.burst, now)),
                inflight: 0,
                spec: spec.clone(),
                stats,
            })
            .collect();
        TenantRegistry { gates }
    }

    /// True when no tenants are configured: the front-end runs open and
    /// every token is accepted without limits (the defaults-off posture).
    pub(crate) fn is_open(&self) -> bool {
        self.gates.is_empty()
    }

    pub(crate) fn lookup(&self, token: &[u8]) -> Option<TenantIdx> {
        self.gates.iter().position(|g| g.spec.token == token)
    }

    /// Apply the rate and quota gates, charging one in-flight slot on
    /// success. The caller must pair every `Ok` with a later
    /// [`release`](Self::release).
    pub(crate) fn admit(&mut self, idx: TenantIdx, now: Instant) -> Result<(), TenantDenied> {
        let gate = &mut self.gates[idx];
        if let Some(bucket) = &mut gate.bucket {
            if !bucket.try_take(now) {
                gate.stats.note_rate_limited();
                return Err(TenantDenied::RateLimited);
            }
        }
        if gate.spec.max_inflight > 0 && gate.inflight >= gate.spec.max_inflight {
            gate.stats.note_rejected();
            return Err(TenantDenied::QuotaExceeded);
        }
        gate.inflight += 1;
        Ok(())
    }

    /// Release the in-flight slot charged by a successful `admit`.
    pub(crate) fn release(&mut self, idx: TenantIdx) {
        let gate = &mut self.gates[idx];
        debug_assert!(gate.inflight > 0, "release without admit");
        gate.inflight = gate.inflight.saturating_sub(1);
    }

    /// The stats handle for tenant `idx`.
    pub(crate) fn stats(&self, idx: TenantIdx) -> &TenantHandle {
        &self.gates[idx].stats
    }

    /// Total unresolved requests across all tenants (leak check).
    pub(crate) fn total_inflight(&self) -> u32 {
        self.gates.iter().map(|g| g.inflight).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn registry(specs: &[TenantSpec]) -> (TenantRegistry, npcgra_serve::Server) {
        let server = npcgra_serve::Server::start(npcgra_serve::ServeConfig::default().with_workers(0));
        let handles = specs.iter().map(|s| server.register_tenant(&s.name)).collect();
        (TenantRegistry::new(specs, handles, Instant::now()), server)
    }

    #[test]
    fn empty_registry_is_open() {
        let (reg, server) = registry(&[]);
        assert!(reg.is_open());
        assert!(reg.lookup(b"anything").is_none());
        drop(server.shutdown());
    }

    #[test]
    fn token_lookup_and_quota() {
        let specs = [TenantSpec::open("a", b"tok-a").with_max_inflight(2)];
        let (mut reg, server) = registry(&specs);
        let idx = reg.lookup(b"tok-a").unwrap();
        assert!(reg.lookup(b"tok-b").is_none());
        let now = Instant::now();
        assert_eq!(reg.admit(idx, now), Ok(()));
        assert_eq!(reg.admit(idx, now), Ok(()));
        assert_eq!(reg.admit(idx, now), Err(TenantDenied::QuotaExceeded));
        reg.release(idx);
        assert_eq!(reg.admit(idx, now), Ok(()));
        assert_eq!(reg.total_inflight(), 2);
        reg.release(idx);
        reg.release(idx);
        assert_eq!(reg.total_inflight(), 0);
        let stats = server.shutdown();
        let t = &stats.tenants[0];
        assert_eq!((t.name.as_str(), t.rejected), ("a", 1));
    }

    #[test]
    fn token_bucket_limits_and_refills() {
        let specs = [TenantSpec::open("b", b"tok-b").with_rate(1000.0, 2)];
        let (mut reg, server) = registry(&specs);
        let idx = reg.lookup(b"tok-b").unwrap();
        let now = Instant::now();
        // Burst of 2 from a full bucket, then empty.
        assert_eq!(reg.admit(idx, now), Ok(()));
        assert_eq!(reg.admit(idx, now), Ok(()));
        assert_eq!(reg.admit(idx, now), Err(TenantDenied::RateLimited));
        // 1000/s refills one token per millisecond.
        assert_eq!(reg.admit(idx, now + Duration::from_millis(2)), Ok(()));
        let stats = server.shutdown();
        assert_eq!(stats.tenants[0].rate_limited, 1);
    }

    #[test]
    fn zero_rate_is_unlimited() {
        let specs = [TenantSpec::open("c", b"tok-c")];
        let (mut reg, server) = registry(&specs);
        let idx = reg.lookup(b"tok-c").unwrap();
        let now = Instant::now();
        for _ in 0..10_000 {
            assert_eq!(reg.admit(idx, now), Ok(()));
        }
        drop(server.shutdown());
    }
}
