//! Deterministic network chaos injection.
//!
//! [`NetChaos`] is the wire-level sibling of the simulator's
//! [`FaultPlan`](npcgra_sim::FaultPlan): every draw is a pure hash of
//! `(seed, connection ordinal, frame ordinal)`, so a whole chaos soak is
//! **bit-identical across executions with the same seed**, while every
//! connection and every frame sees an independent draw — exactly how a
//! flaky network behaves in time.
//!
//! The injector sits on the *client* side of a connection (the attacker
//! model: the server must survive whatever the link or a hostile peer
//! does) and perturbs one frame write at a time:
//!
//! * **Byte corruption** — flip one bit of the encoded frame. The frame
//!   checksum (or magic) catches it; the server must answer with a typed
//!   [`WireError`](crate::frame::WireError) notice and close, never
//!   desync or panic.
//! * **Partial write + stall** — write a prefix, stall, then finish: the
//!   slow-loris shape. Short stalls must be tolerated (reassembly);
//!   stalls past the read timeout must get the connection evicted.
//! * **Stalled read** — the client stops draining replies, backing the
//!   server's write buffer up against the write-stall timeout.
//! * **Reset** — drop the connection mid-frame (a prefix is written, then
//!   a hard close), which must resolve in-flight tickets to tombstones
//!   without leaking reply slots.
//!
//! Rates are per-frame Bernoulli probabilities; with all rates zero the
//! injector is inert and the write path is byte-identical to no injector
//! at all (asserted by the zero-chaos control phase in CI).

use std::time::Duration;

/// Per-frame chaos rates; all zero (the default) is inert.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetChaosConfig {
    /// Seed for every draw; same seed → same chaos, bit for bit.
    pub seed: u64,
    /// Probability a frame has one bit flipped in transit.
    pub corrupt_rate: f64,
    /// Probability a frame is written in two halves with a stall between.
    pub partial_rate: f64,
    /// Probability the client stalls *reading* replies after a frame.
    pub stall_read_rate: f64,
    /// Probability the connection is hard-reset mid-frame.
    pub reset_rate: f64,
    /// How long partial-write and stalled-read stalls last.
    pub stall: Duration,
}

impl Default for NetChaosConfig {
    fn default() -> Self {
        NetChaosConfig {
            seed: 0,
            corrupt_rate: 0.0,
            partial_rate: 0.0,
            stall_read_rate: 0.0,
            reset_rate: 0.0,
            stall: Duration::from_millis(50),
        }
    }
}

impl NetChaosConfig {
    /// Whether any chaos can fire.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.corrupt_rate > 0.0 || self.partial_rate > 0.0 || self.stall_read_rate > 0.0 || self.reset_rate > 0.0
    }
}

/// What the injector decided to do to one frame write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Write the frame untouched.
    None,
    /// Flip bit `bit` of byte `offset % frame_len` before writing.
    CorruptBit {
        /// Raw offset entropy; reduce modulo the frame length.
        offset: u64,
        /// Bit position within the byte, 0–7.
        bit: u8,
    },
    /// Write `prefix % (frame_len - 1) + 1` bytes, stall, then the rest.
    PartialWrite {
        /// Raw split-point entropy; reduce modulo the frame length.
        prefix: u64,
        /// Stall between the halves.
        stall: Duration,
    },
    /// Write the frame, then stop reading replies for `stall`.
    StallRead {
        /// How long to stop draining replies.
        stall: Duration,
    },
    /// Write `prefix % frame_len` bytes, then hard-close the connection.
    Reset {
        /// Raw truncation-point entropy; reduce modulo the frame length.
        prefix: u64,
    },
}

/// `splitmix64` — the same mixer `sim::fault` uses for its point hashes.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Pure per-point hash: `(seed, conn, frame)` → 64 mixed bits.
fn point_hash(seed: u64, conn: u64, frame: u64) -> u64 {
    let mut x = splitmix64(seed ^ 0x4E45_5443_4841_4F53); // "NETCHAOS"
    x = splitmix64(x ^ conn);
    x = splitmix64(x ^ frame);
    x
}

/// Map 53 hash bits to a uniform draw in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// The per-connection chaos stream: one [`ChaosAction`] draw per frame.
#[derive(Debug, Clone)]
pub struct NetChaos {
    cfg: NetChaosConfig,
    conn: u64,
    frame: u64,
}

impl NetChaos {
    /// The injector for connection ordinal `conn`.
    #[must_use]
    pub fn for_conn(cfg: NetChaosConfig, conn: u64) -> Self {
        NetChaos { cfg, conn, frame: 0 }
    }

    /// Draw the action for the next frame write. Pure in
    /// `(seed, conn, frame ordinal)`: re-running the same connection
    /// replays the same actions in the same order.
    pub fn next_action(&mut self) -> ChaosAction {
        let h = point_hash(self.cfg.seed, self.conn, self.frame);
        self.frame += 1;
        // Independent sub-draws off one point hash, checked in a fixed
        // order (reset is the most destructive, so it wins ties).
        let entropy = splitmix64(h ^ 0x0FF5);
        if unit(splitmix64(h ^ 0x1)) < self.cfg.reset_rate {
            return ChaosAction::Reset { prefix: entropy };
        }
        if unit(splitmix64(h ^ 0x2)) < self.cfg.corrupt_rate {
            return ChaosAction::CorruptBit {
                offset: entropy,
                bit: (h >> 5) as u8 & 7,
            };
        }
        if unit(splitmix64(h ^ 0x3)) < self.cfg.partial_rate {
            return ChaosAction::PartialWrite {
                prefix: entropy,
                stall: self.cfg.stall,
            };
        }
        if unit(splitmix64(h ^ 0x4)) < self.cfg.stall_read_rate {
            return ChaosAction::StallRead { stall: self.cfg.stall };
        }
        ChaosAction::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64) -> NetChaosConfig {
        NetChaosConfig {
            seed,
            corrupt_rate: 0.2,
            partial_rate: 0.2,
            stall_read_rate: 0.2,
            reset_rate: 0.1,
            stall: Duration::from_millis(1),
        }
    }

    #[test]
    fn deterministic_in_the_seed() {
        let draw = |seed| {
            let mut c = NetChaos::for_conn(cfg(seed), 3);
            (0..64).map(|_| c.next_action()).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8), "different seeds must differ somewhere");
    }

    #[test]
    fn connections_draw_independently() {
        let stream = |conn| {
            let mut c = NetChaos::for_conn(cfg(5), conn);
            (0..64).map(|_| c.next_action()).collect::<Vec<_>>()
        };
        assert_ne!(stream(0), stream(1));
    }

    #[test]
    fn zero_rates_are_inert() {
        let mut c = NetChaos::for_conn(NetChaosConfig::default(), 0);
        assert!(!NetChaosConfig::default().enabled());
        for _ in 0..1000 {
            assert_eq!(c.next_action(), ChaosAction::None);
        }
    }

    #[test]
    fn rates_roughly_respected() {
        let mut c = NetChaos::for_conn(
            NetChaosConfig {
                seed: 11,
                corrupt_rate: 0.5,
                ..NetChaosConfig::default()
            },
            0,
        );
        let hits = (0..2000)
            .filter(|_| matches!(c.next_action(), ChaosAction::CorruptBit { .. }))
            .count();
        assert!((800..1200).contains(&hits), "~50% corruption expected, got {hits}/2000");
    }
}
