//! The single-threaded non-blocking reactor.
//!
//! No epoll, no mio, no async runtime (the build is offline): the reactor
//! is a poll-style readiness loop over `std::net` sockets in non-blocking
//! mode. Each tick it accepts pending connections, computes the net
//! backpressure rung from write backlog and accept pressure, runs every
//! connection's state machine once (reads, frames, ticket polls,
//! timeouts, writes all bounded by `WouldBlock`), then parks for the
//! configured tick. O(connections) per tick is the honest cost of
//! portability here, and at loopback benchmark scale (hundreds of
//! connections, sub-millisecond ticks) it is far from the bottleneck —
//! the simulator is.
//!
//! Shutdown is a drain, not a guillotine: on the shutdown flag the
//! reactor stops accepting, sends every connection a Bye, keeps
//! delivering replies for already-admitted work until
//! [`drain_timeout`](crate::NetConfig::drain_timeout), then force-closes
//! stragglers (their tickets resolve to tombstones — nothing leaks either
//! way).

use std::io::{ErrorKind, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use npcgra_serve::{BrownoutLevel, Server};

use crate::conn::{CloseReason, Conn, Ctx};
use crate::frame::{code, encode_frame, WireFrame};
use crate::stats::NetCounters;
use crate::tenant::TenantRegistry;
use crate::{pressure_level, NetConfig};

#[derive(Debug)]
pub(crate) struct ReactorShared {
    pub(crate) counters: NetCounters,
    pub(crate) shutdown: AtomicBool,
}

fn level_step(level: BrownoutLevel) -> u64 {
    BrownoutLevel::ALL.iter().position(|&l| l == level).unwrap_or(0) as u64
}

/// The reactor body; runs on its own thread until drained.
pub(crate) fn run(
    shared: &Arc<ReactorShared>,
    listener: &TcpListener,
    server: &Arc<Server>,
    cfg: &NetConfig,
    tenants: &mut TenantRegistry,
) {
    let counters = &shared.counters;
    let mut conns: Vec<Conn> = Vec::new();
    let mut draining_since: Option<Instant> = None;
    loop {
        let now = Instant::now();
        let draining = shared.shutdown.load(Ordering::Acquire);
        if draining && draining_since.is_none() {
            draining_since = Some(now);
            // Flush-and-fsync the admission journal before any Bye goes
            // out: every admit whose ticket a client holds is durable by
            // the time it learns the server is leaving, so a clean drain
            // is always a zero-replay restart.
            server.flush_journal();
            for c in &mut conns {
                c.begin_drain();
            }
        }
        if !draining {
            accept_pending(listener, &mut conns, cfg, counters, now);
        }
        let backlog: usize = conns.iter().map(Conn::backlog).sum();
        let level = if draining {
            BrownoutLevel::Drain
        } else {
            pressure_level(backlog, cfg.write_backlog_limit, conns.len(), cfg.max_conns)
        };
        counters.write_backlog.set(backlog as u64);
        counters.pressure_step.set(level_step(level));

        let mut i = 0;
        while i < conns.len() {
            let mut ctx = Ctx {
                server,
                tenants,
                counters,
                cfg,
                level,
                now,
            };
            if let Some(reason) = conns[i].poll(&mut ctx) {
                let mut conn = conns.swap_remove(i);
                conn.teardown(&mut ctx, reason);
            } else {
                i += 1;
            }
        }
        counters.active_conns.set(conns.len() as u64);

        if draining {
            if conns.is_empty() {
                break;
            }
            let expired = draining_since.is_some_and(|s| now.saturating_duration_since(s) > cfg.drain_timeout);
            if expired {
                for mut conn in conns.drain(..) {
                    let mut ctx = Ctx {
                        server,
                        tenants,
                        counters,
                        cfg,
                        level,
                        now,
                    };
                    conn.teardown(&mut ctx, CloseReason::Kicked);
                }
                counters.active_conns.set(0);
                break;
            }
        }
        std::thread::sleep(cfg.tick);
    }
    debug_assert_eq!(tenants.total_inflight(), 0, "tenant in-flight slots leaked past drain");
}

fn accept_pending(listener: &TcpListener, conns: &mut Vec<Conn>, cfg: &NetConfig, counters: &NetCounters, now: Instant) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                if cfg.max_conns > 0 && conns.len() >= cfg.max_conns {
                    // Over the cap: a best-effort typed notice, then close.
                    // The fresh socket's send buffer is empty, so the small
                    // frame nearly always fits in one non-blocking write.
                    counters.rejected_conns.add(1);
                    let mut notice = Vec::new();
                    encode_frame(
                        &WireFrame::Error {
                            code: code::BACKPRESSURE,
                            message: format!("connection cap {} reached", cfg.max_conns),
                        },
                        &mut notice,
                    );
                    let mut s = stream;
                    let _ = s.write(&notice);
                    continue;
                }
                counters.accepted.add(1);
                conns.push(Conn::new(stream, cfg.max_frame_bytes, now));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            // Transient accept errors (peer gone before accept, fd
            // pressure): skip this tick rather than kill the front-end.
            Err(_) => break,
        }
    }
}
