//! Regenerate Table 3: the closed-form tile/block/layer latency models,
//! cross-checked against the cycle-accurate simulator on a sample layer.
//!
//! ```text
//! cargo run --release -p npcgra-eval --bin table3
//! ```

use npcgra_arch::CgraSpec;
use npcgra_kernels::{perf, BlockCfg, DwcGeneralMapping, DwcS1Mapping, PwcMapping, TileMapping};
use npcgra_nn::{ConvLayer, Tensor};
use npcgra_sim::run_layer;

fn main() {
    let spec = CgraSpec::np_cgra(4, 4);
    let (nr, nc) = (spec.rows, spec.cols);

    println!("Table 3: performance analysis (4x4 machine, lambda made explicit)");
    println!();
    println!("{:<16} {:>28} {:>12}", "Mapping", "Tile latency formula", "cycles");
    let ni = 32;
    let k = 3;
    println!(
        "{:<16} {:>28} {:>12}",
        "PWC",
        format!("N_i + lambda = {ni} + {}", nc + 1),
        PwcMapping::new(ni, &spec, 0).tile_latency()
    );
    for s in [1usize, 2] {
        println!(
            "{:<16} {:>28} {:>12}",
            format!("DWC general S={s}"),
            format!("K((N_c-1)S+K)+lambda = {}", k * ((nc - 1) * s + k) + nc + 1),
            DwcGeneralMapping::new(k, s, &spec, 0).tile_latency()
        );
    }
    println!(
        "{:<16} {:>28} {:>12}",
        "DWC optimized",
        format!("K^2+2N_c+1 = {}", k * k + 2 * nc + 1),
        DwcS1Mapping::new(k, &spec, 0).tile_latency()
    );

    // Layer-latency formulas vs the cycle-accurate simulator.
    println!();
    println!("layer-latency formulas vs cycle-accurate simulation:");
    let pw = ConvLayer::pointwise("pw", 16, 24, 12, 12);
    let dw1 = ConvLayer::depthwise("dw-s1", 4, 20, 20, 3, 1, 1);
    let dw2 = ConvLayer::depthwise("dw-s2", 4, 20, 20, 3, 2, 1);

    let cfg_pw = BlockCfg::choose_pwc(&spec, pw.in_channels(), pw.out_w(), pw.out_channels());
    check("PWC", perf::pwc_layer_cycles(&pw, &spec, cfg_pw), &pw, &spec);
    let cfg1 = BlockCfg::choose_dwc(&spec, 3, 1, dw1.out_h(), dw1.out_w());
    check("DWC optimized", perf::dwc_s1_layer_cycles(&dw1, &spec, cfg1), &dw1, &spec);
    let cfg2 = BlockCfg::choose_dwc(&spec, 3, 2, dw2.out_h(), dw2.out_w());
    check("DWC general", perf::dwc_general_layer_cycles(&dw2, &spec, cfg2), &dw2, &spec);
    println!("({nr}x{nc} machine; formulas and simulation agree exactly by construction)");
}

fn check(name: &str, formula: u64, layer: &ConvLayer, spec: &CgraSpec) {
    let ifm = Tensor::random(layer.in_channels(), layer.in_h(), layer.in_w(), 1);
    let w = layer.random_weights(2);
    let (_, rep) = run_layer(layer, &ifm, &w, spec).expect("layer runs");
    let status = if formula == rep.compute_cycles { "OK" } else { "MISMATCH" };
    println!(
        "  {name:<16} formula {formula:>9} cycles, simulated {:>9} compute cycles  [{status}]",
        rep.compute_cycles
    );
}
