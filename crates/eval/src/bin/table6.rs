//! Regenerate Table 6: the cross-architecture comparison — Eyeriss,
//! Eyeriss v2, Auto-tuning, SDT-CGRA (literature records) vs NP-CGRA
//! (our simulator + area model).
//!
//! ```text
//! cargo run --release -p npcgra-eval --bin table6
//! ```

use npcgra::nn::models;
use npcgra::{adp, LayerReport, NpCgra};
use npcgra_area::all_comparators;

fn main() {
    let machine = NpCgra::table4();
    let spec = *machine.spec();
    let area = machine.area().total();

    // NP-CGRA measured rows.
    let v1 = models::mobilenet_v1(0.5, 128);
    let v1_dsc = machine.time_model_dsc(&v1).expect("v1 maps");
    let v2 = models::mobilenet_v2(1.0, 224);
    let v2_dsc = machine.time_model_dsc(&v2).expect("v2 maps");
    let alex = models::alexnet();
    let alex_reports: Vec<LayerReport> = alex
        .conv_layers()
        .map(|l| machine.time_layer(l).expect("alexnet maps"))
        .collect();
    let alex_ms: f64 = alex_reports.iter().map(LayerReport::ms).sum();

    println!("Table 6: comparison with previous CGRA and DPU implementations");
    println!("(comparator rows are reported literature values, as in the paper)");
    println!();
    println!(
        "{:<28} {:>10} {:>10} {:>12} {:>9} {:>10}",
        "", "Eyeriss", "Eyeriss-v2", "Auto-tuning", "SDT-CGRA", "NP-CGRA"
    );

    let comps = all_comparators();
    let row = |label: &str, f: &dyn Fn(&npcgra_area::Comparator) -> String, ours: String| {
        print!("{label:<28}");
        for c in &comps {
            print!(" {:>10}", f(c));
        }
        println!(" {ours:>10}");
    };

    row(
        "Technology",
        &|c| format!("{} ({}nm)", c.technology, c.node.0),
        "CGRA (65nm)".into(),
    );
    row(
        "Clock (MHz)",
        &|c| format!("{:.0}", c.clock_mhz),
        format!("{:.0}", spec.clock_hz / 1e6),
    );
    row(
        "#PEs (#Ops/cycle)",
        &|c| format!("{} ({})", c.pes, c.ops_per_cycle),
        format!("{} ({})", spec.num_pes(), spec.peak_ops_per_cycle()),
    );
    row(
        "Data width (bits)",
        &|c| format!("{}", c.data_bits),
        format!("{}", spec.word_bytes * 8),
    );
    row(
        "On-chip memory (kB)",
        &|c| format!("{:.1}", c.onchip_kb),
        format!("{}", spec.total_local_mem_bytes() / 1024),
    );
    row(
        "Reported area (mm^2)",
        &|c| format!("{:.2}", c.reported_area_mm2),
        format!("{area:.2}"),
    );
    row(
        "Converted area (mm^2)",
        &|c| format!("{:.2}", c.converted_area_mm2()),
        format!("{area:.2}"),
    );
    row(
        "MobileNet V1 DSC (ms)",
        &|c| c.mobilenet_v1_dsc_ms.map_or("-".into(), |v| format!("{v:.2}")),
        format!("{:.2}", v1_dsc.ms()),
    );
    row("MobileNet V2 DSC (ms)", &|_| "-".into(), format!("{:.2}", v2_dsc.ms()));
    row(
        "MobileNet V1 ADP",
        &|c| c.mobilenet_v1_adp().map_or("-".into(), |v| format!("{v:.2}")),
        format!("{:.2}", adp(area, v1_dsc.ms()).value()),
    );
    row(
        "AlexNet conv (ms)",
        &|c| c.alexnet_conv_ms.map_or("-".into(), |v| format!("{v:.2}")),
        format!("{alex_ms:.2}"),
    );
    row(
        "AlexNet ADP",
        &|c| c.alexnet_adp().map_or("-".into(), |v| format!("{v:.2}")),
        format!("{:.2}", adp(area, alex_ms).value()),
    );

    println!();
    println!("paper NP-CGRA column: V1 4.01 ms / ADP 8.60, V2 18.06 ms, AlexNet 40.07 ms / ADP 87.28");
    println!("(AlexNet latency includes the ARM host im2col time; its area is not in the ADP, as in the paper)");
}
