//! Per-layer energy estimates for the Table 5 layers (beyond-paper
//! experiment; the paper motivates CGRAs with energy efficiency but
//! reports no energy numbers).
//!
//! ```text
//! cargo run --release -p npcgra-eval --bin energy_table
//! ```

use npcgra::area::EnergyModel;
use npcgra::nn::models;
use npcgra::sim::{estimate_layer_energy, MappingKind};
use npcgra::{CgraSpec, Tensor};

fn main() {
    let spec = CgraSpec::np_cgra(4, 4);
    let model = EnergyModel::nm65();
    let (pw, dw1, dw2) = models::table5_layers();

    println!("Energy estimates (uJ), Table 5 layers on the 4x4 machine");
    println!("(65 nm / 16-bit first-order model; matmul-DWC column shows the cost of");
    println!(" forgoing the operand reuse network)");
    println!();
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "layer", "compute", "idle", "SRAM", "DRAM", "total", "vs matmul"
    );

    for layer in [&pw, &dw1, &dw2] {
        let ifm = Tensor::random(layer.in_channels(), layer.in_h(), layer.in_w(), 1);
        let w = layer.random_weights(2);
        let ours = estimate_layer_energy(layer, &ifm, &w, &spec, MappingKind::Auto, &model).expect("maps");
        let alt = match layer.kind() {
            npcgra::ConvKind::Depthwise => {
                let m = estimate_layer_energy(layer, &ifm, &w, &spec, MappingKind::MatmulDwc, &model).expect("maps");
                format!("{:.2}x", m.total_uj() / ours.total_uj())
            }
            _ => "-".into(),
        };
        println!(
            "{:<10} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>12}",
            layer.name(),
            ours.compute_uj,
            ours.idle_uj,
            ours.sram_uj,
            ours.dram_uj,
            ours.total_uj(),
            alt
        );
    }
    println!();
    println!("off-chip DRAM dominates DWC energy (the low arithmetic-intensity story of");
    println!("the paper's introduction, in joules); the matmul-DWC path pays extra SRAM");
    println!("and DRAM energy for its im2col duplication.");
}
