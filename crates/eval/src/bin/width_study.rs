//! Datapath-width study (§2.3's "the width of datapath is trivially
//! configurable at design time"): how 8/16/32-bit variants of the 8×8
//! NP-CGRA trade area, DMA bandwidth pressure and MobileNet latency.
//!
//! ```text
//! cargo run --release -p npcgra-eval --bin width_study
//! ```

use npcgra::nn::models;
use npcgra::{AreaModel, CgraSpec, NpCgra};

fn main() {
    println!("Datapath-width study: 8x8 NP-CGRA at 500 MHz, MobileNet V1 (0.5/128) DSC");
    println!("(functional datapath is 16-bit; width enters the DMA volume, the SRAM");
    println!(" capacity-in-words, and the 65nm/16-bit area conversion)");
    println!();
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>14}",
        "width", "area mm^2", "DSC ms", "ADP", "DMA bytes/elem"
    );

    let v1 = models::mobilenet_v1(0.5, 128);
    let base_area = AreaModel::calibrated().total(&CgraSpec::table4());
    for bits in [8u32, 16, 32] {
        let mut spec = CgraSpec::table4();
        spec.word_bytes = bits as usize / 8;
        let machine = NpCgra::new(spec);
        let total = machine.time_model_dsc(&v1).expect("maps");
        // Area scales linearly with datapath width (the paper's own
        // conversion convention).
        let area = base_area * f64::from(bits) / 16.0;
        println!(
            "{:<8} {:>12.2} {:>12.3} {:>12.2} {:>14}",
            format!("{bits}-bit"),
            area,
            total.ms(),
            area * total.ms(),
            spec.word_bytes
        );
    }
    println!();
    println!("narrower words shrink area and off-chip traffic; the 16-bit point is the");
    println!("paper's Table 4 machine. (8-bit accuracy effects are out of scope, as in");
    println!("the paper: 'we do not consider aggressive quantization'.)");
}
