//! Regenerate the schedule figures (Figs. 1, 5, 6): per-cycle phase and
//! operand-source tables for each mapping on the paper's 2×2 examples.
//! (For a full per-PE instruction dump, run `cargo run --example
//! schedule_viewer`.)
//!
//! ```text
//! cargo run --release -p npcgra-eval --bin fig_schedules
//! ```

use npcgra_agu::dwc_s1::S1Phase;
use npcgra_agu::{DwcGeneralAgu, DwcS1Agu, PwcAgu, TileClock, TilePos};

fn drive<F: FnMut(u64, TileClock)>(phase_len: impl Fn(u64) -> Option<u64>, mut f: F) {
    let mut clock = TileClock::start();
    let mut remaining = phase_len(0).expect("phase 0");
    let mut cycle = 0;
    loop {
        f(cycle, clock);
        cycle += 1;
        remaining -= 1;
        if remaining == 0 {
            match phase_len(clock.t_wrap + 1) {
                Some(len) => {
                    clock.step(true);
                    remaining = len;
                }
                None => break,
            }
        } else {
            clock.step(false);
        }
    }
}

fn main() {
    let pos = TilePos::first(1, 1);

    println!("Fig. 1: PWC tile on a 2x2 (N_i = 9): H-bus feeds rows, V-bus feeds columns");
    let pwc = PwcAgu {
        ni: 9,
        nc: 2,
        addr_ifm: 0,
        addr_ofm: 100,
        addr_w: 0,
    };
    drive(
        |w| pwc.phase_len(w),
        |t, c| {
            let h: Vec<String> = (0..2)
                .map(|r| pwc.h_request(c, pos, r).map_or("-".into(), |q| q.to_string()))
                .collect();
            let v: Vec<String> = (0..2)
                .map(|k| pwc.v_request(c, pos, k).map_or("-".into(), |q| q.to_string()))
                .collect();
            println!("  T={t:>2}  H[{}]  V[{}]", h.join(" "), v.join(" "));
        },
    );

    println!();
    println!("Fig. 5: DWC general tile (K = 3, S = 2) on a 2x2: active kernel taps per column");
    let gen = DwcGeneralAgu {
        k: 3,
        s: 2,
        nr: 2,
        nc: 2,
        addr_ifm: 0,
        addr_ofm: 100,
        addr_w: 0,
    };
    drive(
        |w| gen.phase_len(w),
        |t, c| {
            let taps: Vec<String> = (0..2)
                .map(|col| gen.active_tap(c, col).map_or("-".into(), |kx| format!("W{},{kx}", c.t_wrap)))
                .collect();
            println!("  T={t:>2}  col taps [{}]", taps.join(" "));
        },
    );

    println!();
    println!("Fig. 6: DWC stride-1 tile (K = 3) on a 2x2: EE/SS/EW phase walk");
    let s1 = DwcS1Agu {
        k: 3,
        nr: 2,
        nc: 2,
        addr_ifm: 0,
        addr_ofm: 100,
        addr_vm: 0,
    };
    drive(
        |w| s1.phase_len(w),
        |t, c| {
            let phase = match s1.phase(c) {
                S1Phase::Prologue => "prologue (H-bus -> ORN shift west)".to_string(),
                S1Phase::ExpandEast { ky, kx } => format!("EE  W{ky},{kx} (east col loads H-bus)"),
                S1Phase::ShiftSouth { ky, kx } => format!("SS  W{ky},{kx} (south row loads V-bus)"),
                S1Phase::ExpandWest { ky, kx } => format!("EW  W{ky},{kx} (west col loads H-bus)"),
                S1Phase::Bubble => "bubble".to_string(),
                S1Phase::Store(j) => format!("store column {j}"),
            };
            println!("  T={t:>2}  {phase}");
        },
    );
    println!();
    println!("GRF broadcast order (boustrophedon): W00 W01 W02 | W12 W11 W10 | W20 W21 W22");
}
