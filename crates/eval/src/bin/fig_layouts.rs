//! Regenerate the data-layout figures (Figs. 9–11): bank assignment and
//! in-bank placement for PWC H-MEM, DWC-general H-MEM and DWC-S1 V-MEM.
//!
//! ```text
//! cargo run --release -p npcgra-eval --bin fig_layouts
//! ```

use npcgra_kernels::{layout, BlockCfg};
use npcgra_nn::Tensor;

fn main() {
    fig9();
    fig10();
    fig11();
}

/// Fig. 9: PWC IFM in H-MEM — pixel p's channel vector in bank p mod N_r.
fn fig9() {
    println!("Fig. 9: PWC IFM layout in H-MEM (3 banks, N_i = 4, pixels X0..X8)");
    let ni = 4;
    // Encode pixel.channel as p*10 + i for readability.
    let ifm = Tensor::from_fn(ni, 1, 9, |i, _, p| (p * 10 + i) as i16);
    let (banks, addr_ofm) = layout::pwc_h_image(&ifm, 0, 0, BlockCfg { b_r: 3, b_c: 1 }, 3, 2);
    for (b, bank) in banks.iter().enumerate() {
        let words: Vec<String> = bank[..addr_ofm].iter().map(|w| format!("X{},{}", w / 10, w % 10)).collect();
        println!("  bank {b}: {}", words.join(" "));
    }
    println!();
}

/// Fig. 10: DWC (S=2) IFM in H-MEM — each run of S rows to the next bank.
fn fig10() {
    println!("Fig. 10: DWC-general IFM layout in H-MEM (S = 2, 3 banks, K = 3)");
    // Encode row y, col x as (y+1)*16 + x so unfilled words (0) are distinct.
    let padded = Tensor::from_fn(1, 8, 8, |_, y, x| ((y + 1) * 16 + x) as i16);
    let (banks, addr_ofm) = layout::dwc_general_h_image(&padded, 0, 0, 0, BlockCfg { b_r: 1, b_c: 1 }, 3, 3, 3, 2);
    for (b, bank) in banks.iter().enumerate() {
        let words: Vec<String> = bank[..addr_ofm]
            .iter()
            .map(|&w| {
                if w == 0 {
                    "----".into()
                } else {
                    format!("X{},{}", w / 16 - 1, w % 16)
                }
            })
            .collect();
        println!("  bank {b}: {}", words.join(" "));
    }
    println!();
}

/// Fig. 11: DWC-S1 SS data in V-MEM — the N_c-strided elements each SS
/// cycle broadcasts.
fn fig11() {
    println!("Fig. 11: DWC stride-1 SS data in V-MEM (3x3 array, K = 3, B_c = 3)");
    let padded = Tensor::from_fn(1, 11, 11, |_, y, x| (y * 16 + x) as i16);
    let banks = layout::dwc_s1_v_image(&padded, 0, 0, 0, BlockCfg { b_r: 1, b_c: 3 }, 3, 3, 3);
    for (b, bank) in banks.iter().enumerate() {
        let words: Vec<String> = bank.iter().map(|w| format!("X{},{}", w / 16, w % 16)).collect();
        println!("  bank {b}: {}", words.join(" "));
    }
    println!();
    println!("(compare the paper's Fig. 11b: bank 0 holds X3,2 X3,5 X3,8 X4,0 X4,3 X4,6)");
}
