//! Regenerate Fig. 12: the synthesis-area comparison of the baseline and
//! NP-CGRA 8×8 machines, by component.
//!
//! ```text
//! cargo run --release -p npcgra-eval --bin fig12
//! ```

use npcgra_arch::CgraSpec;
use npcgra_area::model::baseline_like;
use npcgra_area::{AreaBreakdown, AreaModel};

fn main() {
    let model = AreaModel::calibrated();
    let base = model.breakdown(&baseline_like(8, 8));
    let np = model.breakdown(&CgraSpec::np_cgra(8, 8));

    println!("Fig. 12: area comparison, 8x8 machines at 65 nm / 500 MHz (mm^2)");
    println!();
    println!("{:<14} {:>10} {:>10} {:>8}", "Component", "Baseline", "NP-CGRA", "delta");
    component("SRAM", base.sram, np.sram);
    component("PE array", base.pe_array, np.pe_array);
    component("AGUs", base.agus, np.agus);
    component("Controller", base.controller, np.controller);
    component("GRF+WeightBuf", base.grf, np.grf);
    println!("{:-<44}", "");
    component("Total", base.total(), np.total());
    println!();
    println!(
        "total overhead: {:.1} % (paper: 22.2 %)",
        (np.total() / base.total() - 1.0) * 100.0
    );
    println!(
        "core overhead:  {:.1} % over the baseline core",
        (np.core() / base.core() - 1.0) * 100.0
    );
    bars("baseline", &base);
    bars("np-cgra ", &np);
    println!();
    println!("critical path: 1.23 ns baseline vs 1.65 ns NP-CGRA chained (paper synthesis);");
    println!("both meet the 2 ns / 500 MHz evaluation target.");
}

fn component(name: &str, b: f64, n: f64) {
    println!("{name:<14} {b:>10.3} {n:>10.3} {:>+8.3}", n - b);
}

fn bars(name: &str, a: &AreaBreakdown) {
    let scale = 30.0 / 2.2;
    let seg = |v: f64, ch: char| ch.to_string().repeat((v * scale).round() as usize);
    println!(
        "{name} |{}{}{}{}{}| {:.2} mm^2  (#=SRAM, P=PEs, A=AGU, C=ctrl, G=GRF)",
        seg(a.sram, '#'),
        seg(a.pe_array, 'P'),
        seg(a.agus, 'A'),
        seg(a.controller, 'C'),
        seg(a.grf, 'G'),
        a.total()
    );
}
