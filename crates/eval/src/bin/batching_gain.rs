//! Quantify the §5.4 channel-batching extension on MobileNet V2's DWC
//! layers (beyond-paper experiment).
//!
//! ```text
//! cargo run --release -p npcgra-eval --bin batching_gain
//! ```

use npcgra::nn::models;
use npcgra::sim::{time_layer, MappingKind};
use npcgra::{ConvKind, NpCgra};

fn main() {
    let machine = NpCgra::table4();
    let v2 = models::mobilenet_v2(1.0, 224);
    println!("MobileNet V2 DWC layers: per-channel (paper) vs channel-batched (§5.4 extension)");
    println!("{:<14} {:>10} {:>10} {:>8}", "layer", "plain ms", "batch ms", "gain");
    let mut plain_total = 0.0;
    let mut batch_total = 0.0;
    for layer in v2.dsc_layers() {
        if layer.kind() != ConvKind::Depthwise || layer.s() != 1 {
            let r = time_layer(layer, machine.spec(), MappingKind::Auto).expect("maps");
            plain_total += r.ms();
            batch_total += r.ms();
            continue;
        }
        let plain = time_layer(layer, machine.spec(), MappingKind::Auto).expect("maps");
        let batched = time_layer(layer, machine.spec(), MappingKind::BatchedDwcS1).expect("maps");
        if batched.ms() < plain.ms() * 0.99 {
            println!(
                "{:<14} {:>10.4} {:>10.4} {:>7.2}x",
                layer.name(),
                plain.ms(),
                batched.ms(),
                plain.ms() / batched.ms()
            );
        }
        plain_total += plain.ms();
        batch_total += plain.ms().min(batched.ms());
    }
    println!("{:-<46}", "");
    println!(
        "V2 DSC total: {plain_total:.2} ms -> {batch_total:.2} ms ({:.2}x)",
        plain_total / batch_total
    );
}
