fn main() {
    use npcgra_baseline::CcfModel;
    use npcgra_nn::models::table5_layers;
    let (pw, dw1, dw2) = table5_layers();
    let m = CcfModel::table5();
    for l in [&pw, &dw1, &dw2] {
        let r = m.compile_layer(l);
        println!(
            "{}: II={} {:.2} ms util {:.2}% occ {:.1}% makespan {}",
            l.name(),
            r.ii,
            r.seconds * 1e3,
            r.utilization * 100.0,
            r.occupancy * 100.0,
            r.schedule.makespan
        );
    }
}
