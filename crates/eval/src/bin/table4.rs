//! Regenerate Table 4: the NP-CGRA specification, derived from the
//! architecture model (not restated constants — the configuration-memory
//! and Weight-Buffer sizes are computed from the instruction format and
//! GRF geometry).
//!
//! ```text
//! cargo run --release -p npcgra-eval --bin table4
//! ```

use npcgra_arch::{CgraSpec, WeightBuffer};

fn main() {
    let s = CgraSpec::table4();
    println!("Table 4: NP-CGRA specifications");
    println!("{:<28} {} ({}x{})", "Number of PEs", s.num_pes(), s.rows, s.cols);
    println!("{:<28} {}-bit", "Word size", s.word_bytes * 8);
    println!("{:<28} {:.0} MHz", "Clock frequency", s.clock_hz / 1e6);
    println!("{:<28} {:.1} GB/s", "Off-chip memory bandwidth", s.dram_bandwidth / 1e9);
    println!("{:<28} {} cycles", "DMA latency", s.dma_latency_cycles);
    println!(
        "{:<28} {} KB (x{} sets)",
        "H-MEM size (= V-MEM size)",
        s.hmem_bytes / 1024,
        s.mem_sets
    );
    println!(
        "{:<28} {} bytes ({} x 32 contexts / 8; {} bits/cycle = 36 x {} + 8)",
        "Configuration memory size",
        s.config_mem_bytes(),
        s.config_bits_per_cycle(),
        s.config_bits_per_cycle(),
        s.num_pes()
    );
    let wb = WeightBuffer::table4();
    println!(
        "{:<28} {} bytes (64 x 3x3 16-bit kernels)",
        "Weight buffer size",
        wb.capacity_bytes(9)
    );
    println!();
    println!("(paper row-for-row: 64 PEs, 16-bit, 500 MHz, 12.5 GB/s, 200 cycles,");
    println!(" 39 KB x2, 9248 bytes, 1152 bytes)");
}
