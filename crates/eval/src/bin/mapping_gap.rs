//! §6.2's scaling claim: "We expect the difference to increase for larger
//! CGRA sizes." Sweep the array from 2×2 to 16×16 and compare the PWC
//! mapping-efficiency gap between CCF-on-baseline and NP-CGRA.
//!
//! ```text
//! cargo run --release -p npcgra-eval --bin mapping_gap
//! ```

use npcgra::nn::models;
use npcgra::sim::{time_layer, MappingKind};
use npcgra::CgraSpec;
use npcgra_baseline::CcfModel;

fn main() {
    let (pw, _, _) = models::table5_layers();
    println!("PWC mapping-efficiency gap vs array size (MobileNet pw1, 500 MHz)");
    println!(
        "{:<8} {:>12} {:>12} {:>10} {:>12} {:>10}",
        "array", "CCF ms", "ours ms", "speedup", "CCF util%", "our util%"
    );
    for n in [2usize, 4, 8, 16] {
        let spec = CgraSpec::np_cgra(n, n);
        let ccf = CcfModel {
            rows: n,
            cols: n,
            clock_hz: 500e6,
        }
        .compile_layer(&pw);
        let ours = time_layer(&pw, &spec, MappingKind::Auto).expect("maps");
        println!(
            "{:<8} {:>12.2} {:>12.3} {:>9.1}x {:>12.2} {:>10.2}",
            format!("{n}x{n}"),
            ccf.seconds * 1e3,
            ours.ms(),
            ccf.seconds / ours.seconds(),
            ccf.utilization * 100.0,
            ours.utilization() * 100.0
        );
    }
    println!();
    println!("the paper's expectation holds: CCF cannot use the extra PEs (its II is set");
    println!("by the loop body, not the array), while the 2-D mapping keeps scaling.");
}
