//! Regenerate Table 5: the MobileNet DSC comparison on the 4×4 machine —
//! CCF on the baseline CGRA vs matmul-based DWC vs the paper's mappings,
//! in latency, utilization and ADP.
//!
//! ```text
//! cargo run --release -p npcgra-eval --bin table5
//! ```

use npcgra_arch::CgraSpec;
use npcgra_area::model::baseline_like;
use npcgra_area::{adp, AreaModel};
use npcgra_baseline::CcfModel;
use npcgra_nn::models::table5_layers;
use npcgra_sim::{time_layer, MappingKind};

fn main() {
    let spec = {
        let mut s = CgraSpec::np_cgra(4, 4);
        // Keep the Table 4 memory budget split across the smaller array.
        s.hmem_bytes = 39 * 1024;
        s.vmem_bytes = 39 * 1024;
        s
    };
    let area_model = AreaModel::calibrated();
    let np_area = area_model.total(&spec);
    let base_area = area_model.total(&baseline_like(4, 4));

    let (pw, dw1, dw2) = table5_layers();
    let ccf = CcfModel::table5();

    println!("Table 5: MobileNet DSC result (4x4 machines @ 500 MHz)");
    println!("paper reference rows are quoted in brackets.");
    println!();
    println!(
        "{:<12} {:>22} {:>22} {:>22}",
        "Metric/Layer", "CCF", "Matmul DWC", "Our mapping"
    );

    let fmt = |ms: f64, util: f64| format!("{ms:>8.2} ms {:>5.2}%", util * 100.0);

    // Latency + utilization.
    for (layer, paper) in [
        (&pw, ["78.91 (8.14)", "3.72 (86.42)", "3.72 (86.42)"]),
        (&dw1, ["11.10 (8.14)", "2.82 (16.04)", "0.92 (49.00)"]),
        (&dw2, ["7.74 (5.83)", "1.41 (16.01)", "0.81 (28.00)"]),
    ] {
        let c = ccf.compile_layer(layer);
        let matmul = match layer.kind() {
            npcgra_nn::ConvKind::Pointwise => time_layer(layer, &spec, MappingKind::Auto).expect("pwc maps"),
            _ => time_layer(layer, &spec, MappingKind::MatmulDwc).expect("matmul maps"),
        };
        let ours = time_layer(layer, &spec, MappingKind::Auto).expect("maps");
        println!(
            "{:<12} {:>22} {:>22} {:>22}",
            layer.name(),
            fmt(c.seconds * 1e3, c.utilization),
            fmt(matmul.ms(), matmul.utilization()),
            fmt(ours.ms(), ours.utilization()),
        );
        println!("{:<12} {:>22} {:>22} {:>22}", "  [paper]", paper[0], paper[1], paper[2]);
    }

    // ADP.
    println!();
    println!(
        "{:<12} {:>22} {:>22} {:>22}",
        "ADP (mm^2*ms)", "CCF", "Matmul DWC", "Our mapping"
    );
    for (layer, paper) in [
        (&pw, ["122.48", "6.83", "6.83"]),
        (&dw1, ["17.22", "5.17", "1.69"]),
        (&dw2, ["12.02", "2.59", "1.48"]),
    ] {
        let c = ccf.compile_layer(layer);
        let matmul = match layer.kind() {
            npcgra_nn::ConvKind::Pointwise => time_layer(layer, &spec, MappingKind::Auto).expect("pwc maps"),
            _ => time_layer(layer, &spec, MappingKind::MatmulDwc).expect("matmul maps"),
        };
        let ours = time_layer(layer, &spec, MappingKind::Auto).expect("maps");
        println!(
            "{:<12} {:>22.2} {:>22.2} {:>22.2}",
            layer.name(),
            adp(base_area, c.seconds * 1e3).value(),
            adp(np_area, matmul.ms()).value(),
            adp(np_area, ours.ms()).value(),
        );
        println!("{:<12} {:>22} {:>22} {:>22}", "  [paper]", paper[0], paper[1], paper[2]);
    }

    println!();
    println!(
        "areas: baseline {base_area:.3} mm^2, NP-CGRA {np_area:.3} mm^2 (+{:.1}%)",
        (np_area / base_area - 1.0) * 100.0
    );
}
