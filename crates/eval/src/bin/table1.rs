//! Regenerate Table 1: theoretical minimum latency (ms) over the seven
//! MobileNet-V2 DWC layers for the baseline 4×4 CGRA, the enhanced 8×8
//! CGRA and Eyeriss.
//!
//! ```text
//! cargo run --release -p npcgra-eval --bin table1
//! ```

use npcgra_baseline::{baseline_4x4, enhanced_8x8, eyeriss_168, min_latency, ArchPoint, ReuseScenario};
use npcgra_nn::models::mobilenet_v2_table1_dwc_layers;

fn main() {
    let layers = mobilenet_v2_table1_dwc_layers();
    println!("Table 1: theoretical min latency (ms), sum of 7 MobileNet-V2 DWC layers");
    println!("(paper rows: baseline 1.68 / 0.75~4.10 / 1.68~4.10; enhanced 0.21/0.19/0.21; Eyeriss 0.20/0.23/0.23)");
    println!();
    println!(
        "{:<22} {:>10} {:>16} {:>14}",
        "Architecture", "Compute", "L1 transfer", "Layer latency"
    );
    for arch in [baseline_4x4(), enhanced_8x8(), eyeriss_168()] {
        print_row(&arch, &layers);
    }
    println!();
    println!("note: absolute values carry a ~1.3x offset vs the paper from layer-shape");
    println!("accounting (see EXPERIMENTS.md); the ratios and bottleneck structure match.");
}

fn print_row(arch: &ArchPoint, layers: &[npcgra_nn::ConvLayer]) {
    let most = min_latency(arch, layers, ReuseScenario::Most);
    let least = min_latency(arch, layers, ReuseScenario::Least);
    let l1 = format!("{:.2} ~ {:.2}", most.l1_s * 1e3, least.l1_s * 1e3);
    let lat = format!("{:.2} ~ {:.2}", most.latency_ms(), least.latency_ms());
    println!("{:<22} {:>10.2} {:>16} {:>14}", arch.name, most.compute_s * 1e3, l1, lat);
}
