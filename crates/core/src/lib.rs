//! # NP-CGRA
//!
//! A production-quality Rust reproduction of *"NP-CGRA: Extending CGRAs for
//! Efficient Processing of Light-weight Deep Neural Networks"* (DATE 2021):
//! a coarse-grained reconfigurable array extended with a crossbar-style
//! memory bus (H-MEM/V-MEM + V-busses), dual-mode MAC units, and an operand
//! reuse network, together with the paper's mapping schemes for pointwise
//! and depthwise convolution.
//!
//! This facade crate re-exports the subsystem crates and offers a
//! high-level entry point, [`NpCgra`]:
//!
//! ```
//! use npcgra::{NpCgra, ConvLayer, Tensor, reference};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 4×4 NP-CGRA (the Table 5 configuration).
//! let machine = NpCgra::new_4x4();
//!
//! // A small depthwise layer with real data.
//! let layer = ConvLayer::depthwise("dw", 4, 16, 16, 3, 1, 1);
//! let ifm = Tensor::random(4, 16, 16, 7);
//! let weights = layer.random_weights(8);
//!
//! // Run it cycle-accurately and check against the golden reference.
//! let (ofm, report) = machine.run_layer(&layer, &ifm, &weights)?;
//! assert_eq!(ofm, reference::run_layer(&layer, &ifm, &weights)?);
//! println!("{report}");
//! # Ok(())
//! # }
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`nn`] | tensors, layer descriptors, golden convolutions, model tables |
//! | [`arch`] | PE datapath, dual-mode MAC, ORN, GRF, instruction format, machine specs |
//! | [`mem`] | banked H-MEM/V-MEM with crossbar + conflict checking, DMA |
//! | [`agu`] | controller counters and the Algorithm 1–3 address generators |
//! | [`kernels`] | data layouts (Figs. 9–11), tiling, the four mappings |
//! | [`sim`] | the cycle-accurate machine and layer runners |
//! | [`baseline`] | CCF compiler model and the Table 1 analysis |
//! | [`area`] | calibrated area model, scaling, ADP, Table 6 comparators |
//! | [`serve`] | sharded, batching inference server over the simulator |
//! | [`net`] | multi-tenant TCP front-end: wire protocol, reactor, tenant limits, net chaos |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use npcgra_agu as agu;
pub use npcgra_arch as arch;
pub use npcgra_area as area;
pub use npcgra_baseline as baseline;
pub use npcgra_kernels as kernels;
pub use npcgra_mem as mem;
pub use npcgra_net as net;
pub use npcgra_nn as nn;
pub use npcgra_serve as serve;
pub use npcgra_sim as sim;

pub use npcgra_arch::{CgraFeatures, CgraSpec};
pub use npcgra_area::{adp, Adp, AreaBreakdown, AreaModel};
pub use npcgra_nn::{reference, ConvKind, ConvLayer, Matrix, Model, Tensor};
pub use npcgra_serve::{ServeConfig, ServeError, Server};
pub use npcgra_sim::{CompiledLayer, LayerReport, Machine, MappingKind, SimError};

use npcgra_nn::ConvKind as Kind;

/// A configured NP-CGRA machine with its area model: the one-stop API for
/// running layers and models and computing efficiency metrics.
#[derive(Debug, Clone)]
pub struct NpCgra {
    spec: CgraSpec,
    area: AreaModel,
}

impl NpCgra {
    /// A machine from an explicit spec.
    #[must_use]
    pub fn new(spec: CgraSpec) -> Self {
        NpCgra {
            spec,
            area: AreaModel::calibrated(),
        }
    }

    /// The Table 4 machine: 8×8 NP-CGRA at 500 MHz.
    #[must_use]
    pub fn table4() -> Self {
        NpCgra::new(CgraSpec::table4())
    }

    /// The 4×4 machine used for the Table 5 comparison (CCF's flow limits
    /// that experiment to 4×4).
    #[must_use]
    pub fn new_4x4() -> Self {
        NpCgra::new(CgraSpec::np_cgra(4, 4))
    }

    /// The machine specification.
    #[must_use]
    pub fn spec(&self) -> &CgraSpec {
        &self.spec
    }

    /// The area model in use.
    #[must_use]
    pub fn area_model(&self) -> &AreaModel {
        &self.area
    }

    /// Component-area breakdown of this machine.
    #[must_use]
    pub fn area(&self) -> AreaBreakdown {
        self.area.breakdown(&self.spec)
    }

    /// Run one layer functionally on the cycle-accurate simulator.
    ///
    /// Dispatches to the paper's best mapping for the layer kind; standard
    /// convolution is lowered through im2col to the PWC mapping (with the
    /// host im2col time charged to the report).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the layer cannot be mapped or a hardware
    /// rule is violated during simulation.
    pub fn run_layer(&self, layer: &ConvLayer, ifm: &Tensor, weights: &Tensor) -> Result<(Tensor, LayerReport), SimError> {
        if layer.kind() == Kind::Standard {
            npcgra_sim::run_standard_via_im2col(layer, ifm, weights, &self.spec)
        } else {
            npcgra_sim::run_layer(layer, ifm, weights, &self.spec)
        }
    }

    /// Timing-only estimate of one layer (identical cycle accounting to
    /// [`NpCgra::run_layer`], no data movement).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the layer cannot be mapped.
    pub fn time_layer(&self, layer: &ConvLayer) -> Result<LayerReport, SimError> {
        npcgra_sim::time_layer(layer, &self.spec, MappingKind::Auto)
    }

    /// Time every layer of a model; returns per-layer reports in order.
    ///
    /// # Errors
    ///
    /// Returns the first mapping failure.
    pub fn time_model(&self, model: &Model) -> Result<Vec<LayerReport>, SimError> {
        model.layers().iter().map(|l| self.time_layer(l)).collect()
    }

    /// Time only a model's DSC (depthwise + pointwise) layers — the paper's
    /// "DSC runtime" metric.
    ///
    /// # Errors
    ///
    /// Returns the first mapping failure.
    pub fn time_model_dsc(&self, model: &Model) -> Result<LayerReport, SimError> {
        let reports: Vec<LayerReport> = model.dsc_layers().map(|l| self.time_layer(l)).collect::<Result<_, _>>()?;
        Ok(LayerReport::total(&format!("{} (DSC)", model.name()), &reports))
    }

    /// The ADP of a measured report on this machine.
    #[must_use]
    pub fn adp_of(&self, report: &LayerReport) -> Adp {
        adp(self.area().total(), report.ms())
    }

    /// General matrix multiplication `A (m×k) × B (k×n)` on the array.
    ///
    /// PWC *is* matmul (§3.2), so any matrix product runs through the same
    /// output-stationary mapping: `A`'s rows become pixels, the shared `k`
    /// dimension streams over the busses, and `B`'s columns become output
    /// channels. This is the paper's concluding claim — "many [machine
    /// learning algorithms and digital filters] are based on matrix
    /// multiplication and convolution" — as an API.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the reduction dimension cannot fit local
    /// memory or a hardware rule is violated.
    pub fn matmul(&self, a: &Matrix, b: &Matrix) -> Result<(Matrix, LayerReport), SimError> {
        assert_eq!(a.cols(), b.rows(), "matmul dimension mismatch");
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let layer = ConvLayer::pointwise("matmul", k, n, 1, m);
        // A's rows are the "pixels" (CHW: channel = shared dim).
        let ifm = Tensor::from_fn(k, 1, m, |i, _, p| a.get(p, i));
        let weights = Tensor::from_fn(n, 1, k, |o, _, i| b.get(i, o));
        let (ofm, report) = npcgra_sim::run_layer(&layer, &ifm, &weights, &self.spec)?;
        let out = Matrix::from_fn(m, n, |r, c| ofm.get(c, 0, r));
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_runs_a_layer() {
        let m = NpCgra::new_4x4();
        let layer = ConvLayer::pointwise("pw", 6, 6, 4, 4);
        let ifm = Tensor::random(6, 4, 4, 1);
        let w = layer.random_weights(2);
        let (ofm, report) = m.run_layer(&layer, &ifm, &w).unwrap();
        assert_eq!(ofm, reference::run_layer(&layer, &ifm, &w).unwrap());
        assert!(report.cycles > 0);
    }

    #[test]
    fn facade_times_a_model_dsc() {
        let m = NpCgra::table4();
        let model = npcgra_nn::models::mobilenet_v1(0.25, 32);
        let total = m.time_model_dsc(&model).unwrap();
        assert!(total.cycles > 0);
        assert!(total.macs > 0);
    }

    #[test]
    fn adp_uses_machine_area() {
        let m = NpCgra::table4();
        let mut r = LayerReport::for_spec("x", m.spec());
        r.cycles = 500_000; // 1 ms
        let a = m.adp_of(&r);
        assert!((a.area_mm2 - 2.14).abs() < 0.02);
        assert!((a.value() - 2.14).abs() < 0.03);
    }
}
