//! Area-delay product, the paper's primary cost-efficiency metric.

/// One ADP data point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adp {
    /// Area in mm² (65 nm / 16-bit equivalent).
    pub area_mm2: f64,
    /// Latency in milliseconds.
    pub latency_ms: f64,
}

impl Adp {
    /// The product in mm²·ms.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.area_mm2 * self.latency_ms
    }

    /// Improvement factor of `self` over `other` (how many times smaller
    /// `self`'s ADP is).
    #[must_use]
    pub fn improvement_over(&self, other: &Adp) -> f64 {
        other.value() / self.value()
    }
}

/// Convenience constructor.
#[must_use]
pub fn adp(area_mm2: f64, latency_ms: f64) -> Adp {
    Adp { area_mm2, latency_ms }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_pwc_improvement_is_about_18x() {
        // Paper §6.2: 122.48 vs 6.83 mm²·ms ≈ 17.9× ADP reduction for PWC.
        let ccf = adp(1.5522, 78.91);
        let ours = adp(1.836, 3.72);
        let gain = ours.improvement_over(&ccf);
        assert!((17.0..19.0).contains(&gain), "gain {gain}");
    }

    #[test]
    fn table5_dwc_improvements() {
        // DWC S=1: 17.22 → 1.69 ≈ 10.2×; DWC S=2: 12.02 → 1.48 ≈ 8.1×.
        let g1 = adp(1.836, 0.92).improvement_over(&adp(1.5522, 11.10));
        assert!((9.0..11.5).contains(&g1), "S=1 gain {g1}");
        let g2 = adp(1.836, 0.81).improvement_over(&adp(1.5522, 7.74));
        assert!((7.0..9.0).contains(&g2), "S=2 gain {g2}");
    }

    #[test]
    fn value_is_product() {
        assert!((adp(2.0, 3.0).value() - 6.0).abs() < 1e-12);
    }
}
