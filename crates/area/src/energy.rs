//! A first-order energy model (beyond-paper extension).
//!
//! The paper motivates CGRAs with "high energy efficiency" but reports no
//! energy numbers; this model makes the claim quantitative. Per-event
//! energies follow the well-known 45 nm survey numbers (Horowitz,
//! ISSCC'14: 16-bit multiply ≈ 1 pJ at 45 nm; SRAM ≈ an order of magnitude
//! above arithmetic; DRAM two orders above SRAM), scaled to 65 nm (≈1.8×
//! capacitance) and the paper's 16-bit datapath. These are *relative*
//! constants: the interesting outputs are ratios and breakdowns, not
//! absolute joules.

/// Per-event energies in picojoules at 65 nm / 16-bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// One 16-bit MAC (multiply + accumulate) on a PE.
    pub mac_pj: f64,
    /// One idle-PE cycle (clocking, configuration fetch share).
    pub pe_idle_pj: f64,
    /// One word read or written at a 4–5 KB SRAM bank (H-MEM/V-MEM).
    pub sram_access_pj: f64,
    /// One GRF broadcast read.
    pub grf_read_pj: f64,
    /// One word moved over the off-chip interface.
    pub dram_word_pj: f64,
}

impl EnergyModel {
    /// The calibrated 65 nm / 16-bit constants.
    #[must_use]
    pub fn nm65() -> Self {
        EnergyModel {
            mac_pj: 2.0,
            pe_idle_pj: 0.2,
            sram_access_pj: 5.0,
            grf_read_pj: 0.5,
            dram_word_pj: 320.0,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::nm65()
    }
}

/// Event counts for one layer (or block), as measured by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessCounts {
    /// MAC operations.
    pub macs: u64,
    /// PE-cycles spent idle (`PEs × cycles − macs`).
    pub idle_pe_cycles: u64,
    /// H-MEM + V-MEM accesses (reads + writes).
    pub sram_accesses: u64,
    /// GRF broadcast reads.
    pub grf_reads: u64,
    /// Off-chip words moved (both directions).
    pub dram_words: u64,
}

/// An energy estimate, by component.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// PE arithmetic energy (µJ).
    pub compute_uj: f64,
    /// Idle/clocking energy (µJ).
    pub idle_uj: f64,
    /// On-chip SRAM energy (µJ).
    pub sram_uj: f64,
    /// GRF energy (µJ).
    pub grf_uj: f64,
    /// Off-chip DRAM energy (µJ).
    pub dram_uj: f64,
}

impl EnergyBreakdown {
    /// Total energy in microjoules.
    #[must_use]
    pub fn total_uj(&self) -> f64 {
        self.compute_uj + self.idle_uj + self.sram_uj + self.grf_uj + self.dram_uj
    }

    /// On-chip fraction of total energy.
    #[must_use]
    pub fn onchip_fraction(&self) -> f64 {
        1.0 - self.dram_uj / self.total_uj()
    }

    /// Energy-delay product in µJ·ms, the joint efficiency metric
    /// complementing the paper's ADP.
    #[must_use]
    pub fn edp(&self, latency_ms: f64) -> f64 {
        self.total_uj() * latency_ms
    }
}

impl EnergyModel {
    /// Estimate the energy of the counted events.
    #[must_use]
    pub fn estimate(&self, counts: &AccessCounts) -> EnergyBreakdown {
        let pj = 1e-6; // pJ → µJ
        EnergyBreakdown {
            compute_uj: counts.macs as f64 * self.mac_pj * pj,
            idle_uj: counts.idle_pe_cycles as f64 * self.pe_idle_pj * pj,
            sram_uj: counts.sram_accesses as f64 * self.sram_access_pj * pj,
            grf_uj: counts.grf_reads as f64 * self.grf_read_pj * pj,
            dram_uj: counts.dram_words as f64 * self.dram_word_pj * pj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts() -> AccessCounts {
        AccessCounts {
            macs: 1_000_000,
            idle_pe_cycles: 200_000,
            sram_accesses: 300_000,
            grf_reads: 10_000,
            dram_words: 50_000,
        }
    }

    #[test]
    fn totals_sum_components() {
        let b = EnergyModel::nm65().estimate(&counts());
        let sum = b.compute_uj + b.idle_uj + b.sram_uj + b.grf_uj + b.dram_uj;
        assert!((b.total_uj() - sum).abs() < 1e-12);
    }

    #[test]
    fn dram_dominates_per_word() {
        // The hierarchy must hold: DRAM >> SRAM >> MAC >> idle, per event.
        let m = EnergyModel::nm65();
        assert!(m.dram_word_pj > 10.0 * m.sram_access_pj);
        assert!(m.sram_access_pj > m.mac_pj);
        assert!(m.mac_pj > m.pe_idle_pj);
    }

    #[test]
    fn reuse_saves_energy() {
        // Halving SRAM traffic at constant work reduces total energy.
        let m = EnergyModel::nm65();
        let base = counts();
        let mut reused = base;
        reused.sram_accesses /= 2;
        assert!(m.estimate(&reused).total_uj() < m.estimate(&base).total_uj());
    }

    #[test]
    fn edp_is_energy_times_delay() {
        let b = EnergyModel::nm65().estimate(&counts());
        assert!((b.edp(2.0) - 2.0 * b.total_uj()).abs() < 1e-9);
    }

    #[test]
    fn onchip_fraction_bounds() {
        let b = EnergyModel::nm65().estimate(&counts());
        assert!((0.0..=1.0).contains(&b.onchip_fraction()));
    }
}
