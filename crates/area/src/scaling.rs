//! Technology and word-width conversion (§6.4–6.5).
//!
//! To compare areas across process nodes and datapath widths, the paper
//! converts every reported area to a 65 nm / 16-bit equivalent: area scales
//! with the square of the feature-size ratio and linearly with datapath
//! width (halving 8-bit to 16-bit doubles it, which the paper calls
//! conservative for Eyeriss v2).

/// A process node in nanometres.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TechNode(pub u32);

impl TechNode {
    /// The paper's reference node.
    pub const REFERENCE: TechNode = TechNode(65);

    /// Area multiplier to convert *from* this node *to* the reference.
    #[must_use]
    pub fn to_reference_factor(self) -> f64 {
        let r = f64::from(TechNode::REFERENCE.0) / f64::from(self.0);
        r * r
    }
}

/// Convert a reported area to the 65 nm / 16-bit equivalent.
#[must_use]
pub fn convert_area(reported_mm2: f64, node: TechNode, data_bits: u32) -> f64 {
    reported_mm2 * node.to_reference_factor() * 16.0 / f64::from(data_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_node_same_width_identity() {
        assert!((convert_area(2.14, TechNode(65), 16) - 2.14).abs() < 1e-12);
    }

    #[test]
    fn sdt_cgra_conversion_matches_table6() {
        // 5.19 mm² at 55 nm, 16-bit → 7.25 mm² (Table 6).
        let a = convert_area(5.19, TechNode(55), 16);
        assert!((a - 7.25).abs() < 0.01, "converted {a}");
    }

    #[test]
    fn eyeriss_v2_width_conversion_matches_table6() {
        // ≥12.25 mm² at 65 nm, 8-bit → ≥24.50 mm² (Table 6).
        let a = convert_area(12.25, TechNode(65), 8);
        assert!((a - 24.50).abs() < 0.01, "converted {a}");
    }

    #[test]
    fn smaller_node_scales_up() {
        // 32 nm → 65 nm multiplies by (65/32)² ≈ 4.13.
        let f = TechNode(32).to_reference_factor();
        assert!((f - 4.126).abs() < 0.01);
    }
}
