//! The calibrated component-area model.

use npcgra_arch::{CgraFeatures, CgraSpec};

/// Per-component areas of one machine instance, in mm² at 65 nm / 16-bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBreakdown {
    /// On-chip SRAM (H-MEM + V-MEM, all sets, plus configuration memory).
    pub sram: f64,
    /// The PE array.
    pub pe_array: f64,
    /// Address generation units (zero on the baseline).
    pub agus: f64,
    /// Controller (iterators, configuration sequencing).
    pub controller: f64,
    /// GRF + Weight Buffer (zero on the baseline).
    pub grf: f64,
}

impl AreaBreakdown {
    /// Total area in mm².
    #[must_use]
    pub fn total(&self) -> f64 {
        self.sram + self.pe_array + self.agus + self.controller + self.grf
    }

    /// Core (non-SRAM) area in mm².
    #[must_use]
    pub fn core(&self) -> f64 {
        self.total() - self.sram
    }
}

/// The component-area model, calibrated to the paper's synthesis results.
///
/// # Example
///
/// ```
/// use npcgra_arch::CgraSpec;
/// use npcgra_area::AreaModel;
///
/// let model = AreaModel::calibrated();
/// let np = model.breakdown(&CgraSpec::np_cgra(8, 8));
/// assert!((np.total() - 2.14).abs() < 0.02); // Table 6's 2.14 mm²
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// SRAM density in mm² per KB at 65 nm, 16-bit words (CACTI-class).
    pub sram_mm2_per_kb: f64,
    /// Baseline PE area (homogeneous MUL/ADD PE with mesh muxes).
    pub pe_baseline: f64,
    /// Added PE area for NP-CGRA (wider input muxes, dual-mode MAC
    /// chaining, ORN muxes) — "modest" per §6.3.
    pub pe_extension: f64,
    /// One AGU (the largest core-side increase per §6.3).
    pub agu: f64,
    /// Baseline controller.
    pub controller_baseline: f64,
    /// Added controller logic on NP-CGRA (the AGU-shared iterators).
    pub controller_extension: f64,
    /// GRF + Weight Buffer.
    pub grf: f64,
}

impl AreaModel {
    /// The calibration that reproduces the four observable totals (see the
    /// crate docs) exactly.
    #[must_use]
    pub fn calibrated() -> Self {
        AreaModel {
            sram_mm2_per_kb: 0.009_427_6,
            pe_baseline: 0.004_146,
            pe_extension: 0.000_3,
            agu: 0.011_32,
            controller_baseline: 0.015,
            controller_extension: 0.168_6,
            grf: 0.02,
        }
    }

    /// SRAM area for `bytes` of on-chip memory.
    #[must_use]
    pub fn sram_area(&self, bytes: usize) -> f64 {
        self.sram_mm2_per_kb * bytes as f64 / 1024.0
    }

    /// Full breakdown for a machine spec. The baseline machine and NP-CGRA
    /// carry the same *total* local-memory capacity (§3.2: "we set the
    /// combined size of V-MEM and H-MEM equal to that of the baseline
    /// CGRA's local memory"), so SRAM area depends only on capacity.
    #[must_use]
    pub fn breakdown(&self, spec: &CgraSpec) -> AreaBreakdown {
        let extended = spec.features != CgraFeatures::none();
        let pes = spec.num_pes() as f64;
        let pe = self.pe_baseline + if extended { self.pe_extension } else { 0.0 };
        let num_agus = if extended { spec.read_ports() as f64 } else { 0.0 };
        AreaBreakdown {
            sram: self.sram_area(spec.total_local_mem_bytes()),
            pe_array: pes * pe,
            agus: num_agus * self.agu,
            controller: self.controller_baseline + if extended { self.controller_extension } else { 0.0 },
            grf: if extended { self.grf } else { 0.0 },
        }
    }

    /// Total area of a machine in mm².
    #[must_use]
    pub fn total(&self, spec: &CgraSpec) -> f64 {
        self.breakdown(spec).total()
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel::calibrated()
    }
}

/// The baseline machine with the *same* total local memory as NP-CGRA
/// (the area comparisons of §6.2/§6.3 hold memory capacity constant).
#[must_use]
pub fn baseline_like(rows: usize, cols: usize) -> CgraSpec {
    let mut spec = CgraSpec::baseline(rows, cols);
    // 2 × 39 KB × 2 sets, matching Table 4's memory budget.
    spec.hmem_bytes = 2 * 39 * 1024;
    spec.vmem_bytes = 0;
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AreaModel {
        AreaModel::calibrated()
    }

    #[test]
    fn reproduces_np_cgra_8x8_total() {
        let a = model().total(&CgraSpec::np_cgra(8, 8));
        assert!((a - 2.14).abs() < 0.01, "8x8 NP-CGRA area {a}");
    }

    #[test]
    fn reproduces_baseline_areas() {
        let b8 = model().total(&baseline_like(8, 8));
        assert!((b8 - 1.751).abs() < 0.01, "8x8 baseline {b8}");
        let b4 = model().total(&baseline_like(4, 4));
        assert!((b4 - 1.552).abs() < 0.01, "4x4 baseline {b4}");
    }

    #[test]
    fn overhead_percentages_match_paper() {
        // §6.3: 22.2 % total overhead at 8×8; §6.2: ~18 % at 4×4.
        let m = model();
        let oh8 = m.total(&CgraSpec::np_cgra(8, 8)) / m.total(&baseline_like(8, 8)) - 1.0;
        assert!((oh8 - 0.222).abs() < 0.01, "8x8 overhead {oh8}");
        let np4 = {
            let mut s = CgraSpec::np_cgra(4, 4);
            s.hmem_bytes = 39 * 1024;
            s.vmem_bytes = 39 * 1024;
            m.total(&s)
        };
        let oh4 = np4 / m.total(&baseline_like(4, 4)) - 1.0;
        assert!((oh4 - 0.18).abs() < 0.02, "4x4 overhead {oh4}");
    }

    #[test]
    fn sram_dominates() {
        // Fig. 12: total area is dominated by SRAM on both machines.
        let m = model();
        for spec in [CgraSpec::np_cgra(8, 8), baseline_like(8, 8)] {
            let b = m.breakdown(&spec);
            assert!(b.sram > 0.6 * b.total(), "{spec:?}: sram {} of {}", b.sram, b.total());
        }
    }

    #[test]
    fn agus_are_largest_core_increase() {
        // §6.3: "The largest core increase comes from AGUs."
        let m = model();
        let np = m.breakdown(&CgraSpec::np_cgra(8, 8));
        let base = m.breakdown(&baseline_like(8, 8));
        let d_pe = np.pe_array - base.pe_array;
        let d_ctrl = np.controller - base.controller;
        assert!(np.agus > d_pe, "AGU {} vs PE increase {}", np.agus, d_pe);
        assert!(np.agus > d_ctrl, "AGU {} vs controller increase {}", np.agus, d_ctrl);
        assert!(np.agus > np.grf);
    }

    #[test]
    fn pe_increase_is_modest() {
        let m = model();
        let ratio = (m.pe_baseline + m.pe_extension) / m.pe_baseline;
        assert!(ratio < 1.15, "PE increase {ratio}");
    }

    #[test]
    fn table5_adps_reproduce() {
        // ADP = area × latency with the paper's latencies:
        // CCF PWC 122.48 = 1.552 × 78.91; ours 6.83 = 1.836 × 3.72.
        let m = model();
        let base4 = m.total(&baseline_like(4, 4));
        assert!((base4 * 78.91 - 122.48).abs() < 1.5, "{}", base4 * 78.91);
        let mut np4 = CgraSpec::np_cgra(4, 4);
        np4.hmem_bytes = 39 * 1024;
        np4.vmem_bytes = 39 * 1024;
        let a4 = m.total(&np4);
        assert!((a4 * 3.72 - 6.83).abs() < 0.1, "{}", a4 * 3.72);
    }

    #[test]
    fn sram_scales_linearly() {
        let m = model();
        assert!((m.sram_area(2 * 39 * 1024) - 2.0 * m.sram_area(39 * 1024)).abs() < 1e-12);
    }
}
