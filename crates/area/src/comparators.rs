//! Literature comparator records for Table 6.
//!
//! The paper compares against *reported* numbers from the cited papers (it
//! did not re-implement Eyeriss or SDT-CGRA); we encode the same records.
//! Runtimes are as reported; areas carry their process node and datapath
//! width so [`crate::convert_area`] can produce the 65 nm/16-bit column.

use crate::scaling::{convert_area, TechNode};

/// One architecture row of Table 6.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparator {
    /// Display name.
    pub name: &'static str,
    /// "ASIC" or "CGRA".
    pub technology: &'static str,
    /// Process node.
    pub node: TechNode,
    /// Clock in MHz.
    pub clock_mhz: f64,
    /// Number of PEs.
    pub pes: u32,
    /// Peak ops per cycle.
    pub ops_per_cycle: u32,
    /// Datapath width in bits.
    pub data_bits: u32,
    /// On-chip data memory in KB.
    pub onchip_kb: f64,
    /// Reported area in mm².
    pub reported_area_mm2: f64,
    /// Override for the converted-area column (used when the paper carries
    /// an assumed area through unconverted, as for Auto-tuning).
    pub converted_override: Option<f64>,
    /// MobileNet V1 DSC runtime in ms (if reported).
    pub mobilenet_v1_dsc_ms: Option<f64>,
    /// AlexNet conv runtime in ms (if reported).
    pub alexnet_conv_ms: Option<f64>,
}

impl Comparator {
    /// Area converted to the 65 nm / 16-bit equivalent.
    #[must_use]
    pub fn converted_area_mm2(&self) -> f64 {
        self.converted_override
            .unwrap_or_else(|| convert_area(self.reported_area_mm2, self.node, self.data_bits))
    }

    /// AlexNet ADP (converted area × reported runtime), if available.
    #[must_use]
    pub fn alexnet_adp(&self) -> Option<f64> {
        self.alexnet_conv_ms.map(|ms| ms * self.converted_area_mm2())
    }

    /// MobileNet V1 DSC ADP, if available.
    #[must_use]
    pub fn mobilenet_v1_adp(&self) -> Option<f64> {
        self.mobilenet_v1_dsc_ms.map(|ms| ms * self.converted_area_mm2())
    }
}

/// Eyeriss (Chen et al., JSSC'16).
#[must_use]
pub fn eyeriss() -> Comparator {
    Comparator {
        name: "Eyeriss",
        technology: "ASIC",
        node: TechNode(65),
        clock_mhz: 200.0,
        pes: 168,
        ops_per_cycle: 336,
        data_bits: 16,
        onchip_kb: 108.0,
        reported_area_mm2: 12.25,
        converted_override: None,
        mobilenet_v1_dsc_ms: None,
        alexnet_conv_ms: Some(28.82),
    }
}

/// Eyeriss v2 (Chen et al., JETCAS'19); area assumed equal to Eyeriss as in
/// the paper (gate count only was reported), 8-bit datapath.
#[must_use]
pub fn eyeriss_v2() -> Comparator {
    Comparator {
        name: "Eyeriss-v2",
        technology: "ASIC",
        node: TechNode(65),
        clock_mhz: 200.0,
        pes: 192,
        ops_per_cycle: 768,
        data_bits: 8,
        onchip_kb: 192.0,
        reported_area_mm2: 12.25,
        converted_override: None,
        mobilenet_v1_dsc_ms: Some(0.78),
        alexnet_conv_ms: Some(9.79),
    }
}

/// The auto-tuning CGRA compiler approach (Bae et al., TCAD'18); area
/// assumed equal to the 4×4 baseline CGRA per the Table 6 footnote.
#[must_use]
pub fn auto_tuning() -> Comparator {
    Comparator {
        name: "Auto-tuning",
        technology: "CGRA",
        node: TechNode(32),
        clock_mhz: 500.0,
        pes: 16,
        ops_per_cycle: 16,
        data_bits: 32,
        onchip_kb: 320.0,
        // The paper carries the assumed 4×4-baseline area (1.55 mm²,
        // precisely our calibrated 1.5522) through *without* node
        // conversion, since it is an assumption rather than a report.
        reported_area_mm2: 1.55,
        converted_override: Some(1.5522),
        mobilenet_v1_dsc_ms: None,
        alexnet_conv_ms: Some(990.0),
    }
}

/// SDT-CGRA (Fan et al., TVLSI'18).
#[must_use]
pub fn sdt_cgra() -> Comparator {
    Comparator {
        name: "SDT-CGRA",
        technology: "CGRA",
        node: TechNode(55),
        clock_mhz: 450.0,
        pes: 25,
        ops_per_cycle: 205,
        data_bits: 16,
        onchip_kb: 54.6,
        reported_area_mm2: 5.19,
        converted_override: None,
        mobilenet_v1_dsc_ms: None,
        alexnet_conv_ms: Some(23.24),
    }
}

/// All Table 6 comparator rows (NP-CGRA itself comes from our simulator and
/// area model).
#[must_use]
pub fn all_comparators() -> Vec<Comparator> {
    vec![eyeriss(), eyeriss_v2(), auto_tuning(), sdt_cgra()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_converted_areas() {
        assert!((eyeriss().converted_area_mm2() - 12.25).abs() < 0.01);
        assert!((eyeriss_v2().converted_area_mm2() - 24.50).abs() < 0.01);
        assert!((sdt_cgra().converted_area_mm2() - 7.25).abs() < 0.01);
    }

    #[test]
    fn auto_tuning_area_is_carried_unscaled() {
        // The Table 6 footnote value is an assumption, not a measurement:
        // the tabulated converted area equals the 4×4 baseline's.
        let a = auto_tuning();
        assert!((a.converted_area_mm2() - 1.5522).abs() < 1e-9);
    }

    #[test]
    fn table6_adps() {
        // Eyeriss AlexNet ADP 353.03; Eyeriss v2 239.96 and MobileNet 19.11;
        // Auto-tuning 1536.68; SDT-CGRA 168.59.
        assert!((eyeriss().alexnet_adp().unwrap() - 353.03).abs() < 0.5);
        assert!((eyeriss_v2().alexnet_adp().unwrap() - 239.96).abs() < 0.5);
        assert!((eyeriss_v2().mobilenet_v1_adp().unwrap() - 19.11).abs() < 0.1);
        assert!((auto_tuning().alexnet_adp().unwrap() - 1536.68).abs() < 1.0);
        assert!((sdt_cgra().alexnet_adp().unwrap() - 168.59).abs() < 0.5);
    }

    #[test]
    fn four_rows_present() {
        assert_eq!(all_comparators().len(), 4);
    }
}
